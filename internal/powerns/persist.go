package powerns

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// Model persistence: operators train once on a calibration host and ship
// the model to the fleet (the cloud package deploys this way). The format
// is plain JSON of the regression coefficients.

// modelWire is the serialized form.
type modelWire struct {
	Version int          `json:"version"`
	Core    *stats.Model `json:"core"`
	DRAM    *stats.Model `json:"dram"`
	Lambda  float64      `json:"lambda"`
}

const modelWireVersion = 1

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(modelWire{
		Version: modelWireVersion,
		Core:    m.Core,
		DRAM:    m.DRAM,
		Lambda:  m.Lambda,
	}); err != nil {
		return fmt.Errorf("powerns: save model: %w", err)
	}
	return nil
}

// LoadModel reads a model previously written by Save, validating shape.
func LoadModel(r io.Reader) (*Model, error) {
	var w modelWire
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("powerns: load model: %w", err)
	}
	if w.Version != modelWireVersion {
		return nil, fmt.Errorf("powerns: unsupported model version %d", w.Version)
	}
	if w.Core == nil || w.DRAM == nil {
		return nil, fmt.Errorf("powerns: model missing regressions")
	}
	if len(w.Core.Coef) != 3 {
		return nil, fmt.Errorf("powerns: core model has %d coefficients, want 3", len(w.Core.Coef))
	}
	if len(w.DRAM.Coef) != 1 {
		return nil, fmt.Errorf("powerns: DRAM model has %d coefficients, want 1", len(w.DRAM.Coef))
	}
	return &Model{Core: w.Core, DRAM: w.DRAM, Lambda: w.Lambda}, nil
}
