package powerns

import (
	"repro/internal/pseudofs"
)

// Section VII-B concedes that "some system resources are still difficult to
// be partitioned, e.g., interrupts, scheduling information, and
// temperature." This file is the proof of concept that temperature yields
// to the same modeling approach as power: the per-container energy
// attribution the namespace already computes drives a per-container
// thermal model, and the coretemp files answer with the temperature the
// container's own workload would produce on an otherwise-idle machine.
//
// With the thermal namespace installed, the temperature covert channel —
// the last survivor in the covert survey — goes dark.

// ThermalNamespace virtualizes the coretemp sensors per container, driven
// by a power Namespace's attribution. Create with NewThermal and install
// with InstallThermal (or via Namespace.InstallAll).
type ThermalNamespace struct {
	ns *Namespace
	// R and ambient mirror the host's thermal physics so a container
	// running alone would see realistic values.
	ambientC    float64
	thermalResC float64
	idleCoreW   float64
	cores       float64
}

// NewThermal builds the thermal namespace over the power namespace.
func NewThermal(ns *Namespace) *ThermalNamespace {
	cfg := ns.k.Meter().Config()
	return &ThermalNamespace{
		ns:          ns,
		ambientC:    cfg.AmbientC,
		thermalResC: cfg.ThermalResC,
		idleCoreW:   cfg.IdleCoreW,
		cores:       float64(cfg.Cores),
	}
}

// InstallThermal activates the namespace on the pseudo filesystem.
func (t *ThermalNamespace) InstallThermal(fs *pseudofs.FS) {
	fs.SetThermalProvider(t)
}

// CoreTempC implements pseudofs.ThermalProvider. The host sees the physical
// sensors; a registered container sees the temperature its own attributed
// power would produce; unregistered containers see the idle floor.
//
// The output is quantized to the DTS's physical 1 °C resolution. This is
// not cosmetic: the container's attributed power carries Formula 3's
// calibration residual, which wiggles with *host* load — at millidegree
// resolution that residual is itself a decodable covert channel (our covert
// survey found it: the first unquantized implementation delivered the
// sender's bits perfectly inverted). Quantization destroys the sub-degree
// signal while keeping the interface honest to real hardware.
func (t *ThermalNamespace) CoreTempC(v pseudofs.View, core int) (float64, error) {
	if v.IsHost() {
		return t.physical(core), nil
	}
	t.ns.mu.Lock()
	defer t.ns.mu.Unlock()
	t.ns.update()
	idleTemp := t.ambientC + t.thermalResC*t.idleCoreW
	a, ok := t.ns.containers[v.CgroupPath]
	if !ok {
		return quantizeC(idleTemp), nil
	}
	// Dynamic power above the container's idle share, spread evenly over
	// the cores the container could use — the temperature of a machine
	// running only this container.
	idleShareW := t.idleCoreW + t.ns.model.DRAM.Intercept + t.ns.model.Lambda
	dyn := a.lastW - idleShareW
	if dyn < 0 {
		dyn = 0
	}
	return quantizeC(idleTemp + t.thermalResC*dyn), nil
}

// quantizeC rounds to whole degrees, the DTS hardware resolution.
func quantizeC(c float64) float64 {
	return float64(int(c + 0.5))
}

// physical mirrors the raw sensor logic (max over cores for the package).
func (t *ThermalNamespace) physical(core int) float64 {
	m := t.ns.k.Meter()
	if core < 0 {
		var max float64
		for c := 0; c < int(t.cores); c++ {
			if v := m.CoreTempC(c); v > max {
				max = v
			}
		}
		return max
	}
	return m.CoreTempC(core)
}

// InstallAll activates both the power and thermal namespaces on the host's
// pseudo filesystem — the full stage-2+ virtualization of the leaky sensor
// surfaces.
func (ns *Namespace) InstallAll(fs *pseudofs.FS) *ThermalNamespace {
	ns.Install(fs)
	t := NewThermal(ns)
	t.InstallThermal(fs)
	return t
}

// Interface compliance.
var (
	_ pseudofs.ThermalProvider = (*ThermalNamespace)(nil)
	_ pseudofs.EnergyProvider  = (*Namespace)(nil)
)
