package powerns

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/kernel"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

func thermalWorld(t *testing.T) (*kernel.Kernel, *container.Container, *container.Container) {
	t.Helper()
	m := trainDefault(t)
	k := kernel.New(kernel.Options{Hostname: "thermal", Seed: 61})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	busy := rt.Create("busy")
	spy := rt.Create("spy")
	ns := New(k, m)
	ns.Register(busy.CgroupPath)
	ns.Register(spy.CgroupPath)
	ns.InstallAll(fs)
	return k, busy, spy
}

func readTemp(t *testing.T, c *container.Container, n int) float64 {
	t.Helper()
	raw, err := c.ReadFile("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp" + strconv.Itoa(n) + "_input")
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v / 1000
}

func TestThermalNamespaceIsolatesSpy(t *testing.T) {
	k, busy, spy := thermalWorld(t)
	for i := 0; i < 30; i++ {
		k.Tick(k.Now()+1, 1)
	}
	spyIdle := readTemp(t, spy, 3)

	busy.RunPinned(workload.Prime, []int{1, 2, 3, 4})
	for i := 0; i < 180; i++ {
		k.Tick(k.Now()+1, 1)
	}
	// Physical core 2 is hot...
	physical := k.Meter().CoreTempC(2)
	if physical < spyIdle+5 {
		t.Fatalf("physical core never heated: %.1f vs idle %.1f", physical, spyIdle)
	}
	// ...but the spy's view stays at its own (idle) temperature.
	spyBusyView := readTemp(t, spy, 3)
	if spyBusyView > spyIdle+1.5 {
		t.Fatalf("spy sees the neighbour's heat: %.1f °C (idle was %.1f)", spyBusyView, spyIdle)
	}
	// The busy container sees ITS load reflected.
	busyView := readTemp(t, busy, 3)
	if busyView < spyBusyView+3 {
		t.Fatalf("busy container view %.1f not above spy's %.1f", busyView, spyBusyView)
	}
}

func TestUnregisteredContainerSeesIdleTemp(t *testing.T) {
	m := trainDefault(t)
	k := kernel.New(kernel.Options{Hostname: "thermal2", Seed: 62})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	orphan := rt.Create("orphan")
	hog := rt.Create("hog")
	ns := New(k, m)
	ns.Register(hog.CgroupPath)
	ns.InstallAll(fs)
	hog.Run(workload.Prime, 8)
	for i := 0; i < 120; i++ {
		k.Tick(k.Now()+1, 1)
	}
	cfg := k.Meter().Config()
	idleTemp := cfg.AmbientC + cfg.ThermalResC*cfg.IdleCoreW
	got := readTemp(t, orphan, 2)
	if got > idleTemp+0.5 {
		t.Fatalf("orphan temp %.1f above idle floor %.1f", got, idleTemp)
	}
}
