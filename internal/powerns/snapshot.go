package powerns

import (
	"repro/internal/perfcount"
	"repro/internal/power"
)

// NamespaceState is a point-in-time capture of a Namespace for the world
// snapshot machinery. The accounting is lazily advanced on reads, so its
// cursor (lastUpdate, lastRaw, lastHostC) and every per-container account
// are world state that must rewind with the kernel. rawSource is structural
// (installed at world build) and is not captured.
type NamespaceState struct {
	calibrate  bool
	lastUpdate float64
	lastRaw    map[power.Domain]uint64
	lastHostC  perfcount.Counters
	containers map[string]acctSnap
}

type acctSnap struct {
	lastC     perfcount.Counters
	energy    map[power.Domain]float64
	budgetW   float64
	lastW     float64
	lastCPUNS float64
}

// Snapshot captures the namespace's mutable state.
func (ns *Namespace) Snapshot() *NamespaceState {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	s := &NamespaceState{
		calibrate:  ns.calibrate,
		lastUpdate: ns.lastUpdate,
		lastRaw:    make(map[power.Domain]uint64, len(ns.lastRaw)),
		lastHostC:  ns.lastHostC,
		containers: make(map[string]acctSnap, len(ns.containers)),
	}
	for d, v := range ns.lastRaw {
		s.lastRaw[d] = v
	}
	for path, a := range ns.containers {
		e := make(map[power.Domain]float64, len(a.energy))
		for d, v := range a.energy {
			e[d] = v
		}
		s.containers[path] = acctSnap{
			lastC: a.lastC, energy: e,
			budgetW: a.budgetW, lastW: a.lastW, lastCPUNS: a.lastCPUNS,
		}
	}
	return s
}

// Restore rewinds the namespace to the captured state. Containers
// registered after the capture are dropped, exactly as a fresh world would
// not know them.
func (ns *Namespace) Restore(s *NamespaceState) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.calibrate = s.calibrate
	ns.lastUpdate = s.lastUpdate
	for d, v := range s.lastRaw {
		ns.lastRaw[d] = v
	}
	ns.lastHostC = s.lastHostC
	for path := range ns.containers {
		if _, ok := s.containers[path]; !ok {
			delete(ns.containers, path)
		}
	}
	for path, snap := range s.containers {
		a, ok := ns.containers[path]
		if !ok {
			a = &acct{path: path}
			ns.containers[path] = a
		}
		a.lastC = snap.lastC
		if a.energy == nil {
			a.energy = make(map[power.Domain]float64, len(snap.energy))
		}
		for d, v := range snap.energy {
			a.energy[d] = v
		}
		a.budgetW, a.lastW, a.lastCPUNS = snap.budgetW, snap.lastW, snap.lastCPUNS
	}
}
