package powerns

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/perfcount"
	"repro/internal/power"
	"repro/internal/pseudofs"
)

// wrapCalibrationFactor bounds how far a wrap-classified raw-counter delta
// may exceed the modeled host energy before the interval's calibration is
// rejected as a disguised counter reset (see update).
const wrapCalibrationFactor = 10

// Namespace is one host's power-based namespace: it partitions the host's
// RAPL energy among containers and serves per-container counters through
// the unchanged energy_uj interface. Create with New, attach containers
// with Register, and activate with Install.
//
// Concurrency: a container-context energy_uj read lazily advances the
// accounting (update), which mutates namespace state — the one read
// handler in the tree with side effects. All entry points therefore
// serialize on an internal mutex, so parallel cross-validation of a
// defended host is race-free; the accounting itself advances at most once
// per simulated instant, so results do not depend on which reader arrives
// first. Register/Unregister remain clock-thread-only operations.
type Namespace struct {
	k     *kernel.Kernel
	model *Model

	// mu serializes the lazily-updating read path (EnergyUJ, Meter,
	// LastPower, and the thermal namespace's CoreTempC).
	mu sync.Mutex

	// Calibration toggle for the ablation study: when false, raw modeled
	// energy is returned without Formula 3's rescaling.
	calibrate bool

	// rawSource reads the raw RAPL counters used for Formula 3
	// calibration; it defaults to the host meter. A chaos harness swaps in
	// a perturbed source (SetRawSource) to exercise the glitch-rejection
	// path below.
	rawSource func(power.Domain) uint64

	lastUpdate float64
	lastRaw    map[power.Domain]uint64
	lastHostC  perfcount.Counters

	containers map[string]*acct
}

// acct is one container's accounting state.
type acct struct {
	path   string
	lastC  perfcount.Counters
	energy map[power.Domain]float64 // accumulated µJ per domain

	// Budget enforcement state (budget.go).
	budgetW   float64
	lastW     float64
	lastCPUNS float64
}

// New creates a power-based namespace for the host using a trained model.
func New(k *kernel.Kernel, model *Model) *Namespace {
	ns := &Namespace{
		k:          k,
		model:      model,
		calibrate:  true,
		rawSource:  k.Meter().EnergyUJ,
		lastRaw:    make(map[power.Domain]uint64, 3),
		containers: make(map[string]*acct),
	}
	for _, d := range []power.Domain{power.Package, power.Core, power.DRAM} {
		ns.lastRaw[d] = ns.rawSource(d)
	}
	ns.lastHostC, _ = k.Perf().Read("/")
	ns.lastUpdate = k.Now()
	return ns
}

// SetCalibration toggles Formula 3's on-the-fly calibration (ablation).
func (ns *Namespace) SetCalibration(on bool) { ns.calibrate = on }

// SetRawSource swaps the raw-counter read path used for calibration and
// resynchronizes the last-seen readings from the new source. Chaos
// harnesses install a perturbed source here; production code never calls
// it.
func (ns *Namespace) SetRawSource(read func(power.Domain) uint64) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.rawSource = read
	for _, d := range []power.Domain{power.Package, power.Core, power.DRAM} {
		ns.lastRaw[d] = read(d)
	}
}

// Install activates the namespace on the host's pseudo filesystem: all
// subsequent energy_uj reads route through it.
func (ns *Namespace) Install(fs *pseudofs.FS) { fs.SetEnergyProvider(ns) }

// Register starts accounting for a container cgroup. The paper initializes
// perf_events at namespace creation with owner TASK_TOMBSTONE; here the
// cgroup's perf group already exists (the runtime created it) and we
// snapshot its current counters as the zero point.
func (ns *Namespace) Register(cgroupPath string) {
	c, _ := ns.k.Perf().Read(cgroupPath)
	ns.containers[cgroupPath] = &acct{
		path:   cgroupPath,
		lastC:  c,
		energy: map[power.Domain]float64{power.Package: 0, power.Core: 0, power.DRAM: 0},
		// Snapshot cpuacct so the budget enforcer's first interval does
		// not divide a lifetime counter by one interval.
		lastCPUNS: ns.k.Cgroup(cgroupPath).CPUUsageNS,
	}
}

// Unregister stops accounting for a container.
func (ns *Namespace) Unregister(cgroupPath string) {
	delete(ns.containers, cgroupPath)
}

// update advances the per-container energy accounts to the current kernel
// time: collect counter deltas, model each container's energy, and
// calibrate against the raw RAPL delta (Formula 3). Callers must hold
// ns.mu. The per-container attributions are mutually independent, so the
// map iteration order cannot affect the outcome.
func (ns *Namespace) update() {
	now := ns.k.Now()
	dt := now - ns.lastUpdate
	if dt <= 0 {
		return
	}
	ns.lastUpdate = now

	hostC, _ := ns.k.Perf().Read("/")
	hostDelta := hostC.Sub(ns.lastHostC)
	ns.lastHostC = hostC

	type contDelta struct {
		a *acct
		c perfcount.Counters
	}
	deltas := make([]contDelta, 0, len(ns.containers))
	for _, a := range ns.containers {
		cur, ok := ns.k.Perf().Read(a.path)
		if !ok {
			continue
		}
		deltas = append(deltas, contDelta{a: a, c: cur.Sub(a.lastC)})
		a.lastC = cur
	}

	maxR := ns.k.Meter().MaxEnergyRangeUJ()
	for _, d := range []power.Domain{power.Package, power.Core, power.DRAM} {
		raw := ns.rawSource(d)
		rawDeltaU, kind := power.CounterDeltaKind(ns.lastRaw[d], raw, maxR)
		rawDelta := float64(rawDeltaU) // µJ
		ns.lastRaw[d] = raw

		// Glitch-sample rejection: a counter reset or regression makes
		// this interval's raw delta meaningless (a reset's delta only
		// covers the time since the restart; a regression's is zero).
		// Scaling the model by it would smear the error across every
		// container, so the interval falls back to pure model attribution
		// — Formula 2 without Formula 3 — and calibration resumes on the
		// next clean delta. This is what keeps ξ < 0.05 under chaos.
		calibrate := ns.calibrate && kind != power.DeltaReset && kind != power.DeltaRegression

		mHost := ns.model.Energy(d, hostDelta, dt) * 1e6 // µJ

		// A reset caught near the counter ceiling masquerades as a wrap
		// with delta maxRange−prev — orders of magnitude beyond anything
		// the host could burn. The namespace holds its own reference for
		// what the interval should have cost (Formula 2's host estimate),
		// so a wrap-classified raw delta wildly above it is rejected the
		// same way. Clean wraps sit within model error of mHost and are
		// untouched.
		if kind == power.DeltaWrapped && mHost > 0 && rawDelta > wrapCalibrationFactor*mHost {
			calibrate = false
		}
		for _, cd := range deltas {
			mCont := ns.model.Energy(d, cd.c, dt) * 1e6
			if mCont < 0 {
				mCont = 0
			}
			attributed := mCont
			if calibrate && mHost > 0 {
				attributed = mCont / mHost * rawDelta
			}
			cd.a.energy[d] += attributed
			if d == budgetDomain {
				ns.attributePower(cd.a, attributed, dt)
			}
		}
	}
}

// EnergyUJ implements pseudofs.EnergyProvider. Host-context reads see the
// raw hardware counter; container reads see only their partitioned energy.
// Containers that were never registered read zero forever — they have no
// power namespace and therefore no power visibility.
func (ns *Namespace) EnergyUJ(v pseudofs.View, d power.Domain) (uint64, error) {
	if v.IsHost() {
		return ns.k.Meter().EnergyUJ(d), nil
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.update()
	a, ok := ns.containers[v.CgroupPath]
	if !ok {
		return 0, nil
	}
	uj := a.energy[d]
	max := float64(ns.k.Meter().MaxEnergyRangeUJ())
	for uj >= max {
		uj -= max
	}
	return uint64(uj), nil
}

// Meter reads a container's current accumulated energy in µJ (package
// domain) without the pseudo-fs round trip.
func (ns *Namespace) Meter(cgroupPath string) (float64, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.update()
	a, ok := ns.containers[cgroupPath]
	if !ok {
		return 0, fmt.Errorf("powerns: %s not registered", cgroupPath)
	}
	return a.energy[power.Package], nil
}

// Registered returns the number of containers under accounting.
func (ns *Namespace) Registered() int { return len(ns.containers) }
