package powerns

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/kernel"
	"repro/internal/perfcount"
	"repro/internal/power"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

func trainDefault(t *testing.T) *Model {
	t.Helper()
	m, samples, err := Train(TrainOptions{Seed: 42})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	return m
}

func TestTrainFitsWell(t *testing.T) {
	m := trainDefault(t)
	if m.Core.R2 < 0.98 {
		t.Fatalf("core model R² = %.4f, want ≥ 0.98", m.Core.R2)
	}
	if m.DRAM.R2 < 0.98 {
		t.Fatalf("DRAM model R² = %.4f, want ≥ 0.98", m.DRAM.R2)
	}
	if m.Lambda <= 0 {
		t.Fatalf("λ = %g, want positive uncore power", m.Lambda)
	}
	// α (core idle) and γ (DRAM idle) should be near the physical idle
	// powers of the default config.
	cfg := power.DefaultConfig()
	if math.Abs(m.Core.Intercept-cfg.IdleCoreW) > 3 {
		t.Fatalf("α = %.2f, want ≈ %.1f", m.Core.Intercept, cfg.IdleCoreW)
	}
	if math.Abs(m.DRAM.Intercept-cfg.IdleDRAMW) > 1.5 {
		t.Fatalf("γ = %.2f, want ≈ %.1f", m.DRAM.Intercept, cfg.IdleDRAMW)
	}
}

func TestFig6CoreLinearity(t *testing.T) {
	// For each modeling benchmark, core energy per second must be linear
	// in retired instructions with a benchmark-specific slope (Fig. 6).
	_, samples, err := Train(TrainOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	slopes := map[string]float64{}
	for _, prof := range workload.ModelingSet() {
		var xs, ys []float64
		for _, s := range samples {
			if s.Profile != prof.Name {
				continue
			}
			xs = append(xs, s.Counters.Instructions)
			ys = append(ys, s.ECoreJ)
		}
		slope, _, r2, err := linearFit(xs, ys)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if r2 < 0.98 {
			t.Fatalf("%s: core energy vs instructions R² = %.3f", prof.Name, r2)
		}
		slopes[prof.Name] = slope
	}
	// Slopes must differ by benchmark (the gradients of Fig. 6 change with
	// application type): libquantum's J/instruction far above prime's.
	if slopes["462.libquantum"] < slopes["prime"]*1.3 {
		t.Fatalf("libquantum slope %.3g not above prime %.3g", slopes["462.libquantum"], slopes["prime"])
	}
}

func TestFig7DRAMLinearity(t *testing.T) {
	_, samples, err := Train(TrainOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []float64
	for _, s := range samples {
		xs = append(xs, s.Counters.CacheMisses)
		ys = append(ys, s.EDRAMJ)
	}
	_, _, r2, err := linearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.98 {
		t.Fatalf("DRAM energy vs cache misses R² = %.3f across ALL benchmarks", r2)
	}
}

// linearFit is a tiny local wrapper to avoid importing stats in tests.
func linearFit(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	type fitter interface{}
	_ = fitter(nil)
	// Reuse the stats package through the model fit path: simple OLS here.
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, 0, errNotEnough
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errNotEnough
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		d := ys[i] - (slope*xs[i] + intercept)
		ssRes += d * d
	}
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else {
		r2 = 1
	}
	return slope, intercept, r2, nil
}

var errNotEnough = strconv.ErrRange

// evalHost builds a host + container with the namespace installed and the
// given workload running on 4 cores.
func evalHost(t *testing.T, m *Model, prof workload.Profile, seed int64) (*kernel.Kernel, *Namespace, *container.Container) {
	t.Helper()
	k := kernel.New(kernel.Options{Hostname: "eval", Seed: seed})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	c := rt.Create("bench")
	ns := New(k, m)
	ns.Register(c.CgroupPath)
	ns.Install(fs)
	c.Run(prof, 4)
	return k, ns, c
}

func TestFig8AccuracyOnSPECSubset(t *testing.T) {
	// The headline defense-accuracy claim: modeled container power within
	// ξ < 0.05 of ground truth for every evaluation benchmark (disjoint
	// from the training set).
	m := trainDefault(t)
	for _, prof := range workload.SPECSubset() {
		k, ns, c := evalHost(t, m, prof, 100)
		// Warm up one interval, then measure 30 s.
		k.Tick(1, 1)
		startRaw := k.Meter().EnergyUJ(power.Package)
		startCont, err := ns.Meter(c.CgroupPath)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 30; s++ {
			k.Tick(float64(s+2), 1)
		}
		endCont, err := ns.Meter(c.CgroupPath)
		if err != nil {
			t.Fatal(err)
		}
		endRaw := k.Meter().EnergyUJ(power.Package)

		eRAPL := float64(power.CounterDelta(startRaw, endRaw, k.Meter().MaxEnergyRangeUJ()))
		mCont := endCont - startCont
		xi := math.Abs(eRAPL-mCont) / eRAPL
		if xi > 0.05 {
			t.Errorf("%s: ξ = %.4f, want < 0.05", prof.Name, xi)
		}
	}
}

func TestUncalibratedModelStillClose(t *testing.T) {
	// Without Formula 3, pure regression output should still be within
	// ~15% on unseen benchmarks — calibration then removes the residual.
	m := trainDefault(t)
	for _, prof := range []workload.Profile{workload.SPECSubset()[0], workload.SPECSubset()[4]} {
		k, ns, c := evalHost(t, m, prof, 101)
		ns.SetCalibration(false)
		k.Tick(1, 1)
		startRaw := k.Meter().EnergyUJ(power.Package)
		startCont, _ := ns.Meter(c.CgroupPath)
		for s := 0; s < 30; s++ {
			k.Tick(float64(s+2), 1)
		}
		endCont, _ := ns.Meter(c.CgroupPath)
		endRaw := k.Meter().EnergyUJ(power.Package)
		eRAPL := float64(power.CounterDelta(startRaw, endRaw, k.Meter().MaxEnergyRangeUJ()))
		xi := math.Abs(eRAPL-(endCont-startCont)) / eRAPL
		if xi > 0.15 {
			t.Errorf("%s: uncalibrated ξ = %.4f, want < 0.15", prof.Name, xi)
		}
	}
}

func TestFig9Transparency(t *testing.T) {
	// Container 2 (idle) must be unaware of container 1's workload: its
	// virtualized power stays flat while the host surges.
	m := trainDefault(t)
	k := kernel.New(kernel.Options{Hostname: "sec", Seed: 102})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	busy := rt.Create("busy")
	idle := rt.Create("idle")
	ns := New(k, m)
	ns.Register(busy.CgroupPath)
	ns.Register(idle.CgroupPath)
	ns.Install(fs)

	readUJ := func(c *container.Container) float64 {
		raw, err := c.ReadFile("/sys/class/powercap/intel-rapl:0/energy_uj")
		if err != nil {
			t.Fatal(err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	// Phase 1: both idle, 10 s.
	for s := 0; s < 10; s++ {
		k.Tick(float64(s+1), 1)
	}
	busy0, idle0 := readUJ(busy), readUJ(idle)
	hostPower0 := k.Meter().Power(power.Package)

	// Phase 2: container 1 runs 401.bzip2 on 8 cores for 50 s (the
	// paper's Fig. 9 workload).
	prof, _ := workload.ByName("401.bzip2")
	busy.Run(prof, 8)
	for s := 10; s < 60; s++ {
		k.Tick(float64(s+1), 1)
	}
	busy1, idle1 := readUJ(busy), readUJ(idle)
	hostPower1 := k.Meter().Power(power.Package)

	if hostPower1 < hostPower0+20 {
		t.Fatalf("host power did not surge: %.1f -> %.1f W", hostPower0, hostPower1)
	}
	busyW := (busy1 - busy0) / 1e6 / 50
	idleW := (idle1 - idle0) / 1e6 / 50
	if busyW < 20 {
		t.Fatalf("busy container sees only %.1f W", busyW)
	}
	if idleW > 0.25*busyW {
		t.Fatalf("idle container sees %.1f W of the neighbour's %.1f W — not isolated", idleW, busyW)
	}
}

func TestWithoutNamespaceAttackerSeesHost(t *testing.T) {
	// The contrast case: stock kernel (no power namespace) lets the idle
	// container watch the host surge.
	k := kernel.New(kernel.Options{Hostname: "leaky", Seed: 103})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	busy := rt.Create("busy")
	spy := rt.Create("spy")

	read := func() float64 {
		raw, err := spy.ReadFile("/sys/class/powercap/intel-rapl:0/energy_uj")
		if err != nil {
			t.Fatal(err)
		}
		v, _ := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		return v
	}
	k.Tick(1, 1)
	e0 := read()
	k.Tick(2, 1)
	idleDelta := read() - e0
	busy.Run(workload.Prime, 8)
	k.Tick(3, 1)
	e1 := read()
	k.Tick(4, 1)
	busyDelta := read() - e1
	if busyDelta < idleDelta*1.5 {
		t.Fatalf("stock kernel should leak the surge: idle %.0f µJ/s vs busy %.0f µJ/s", idleDelta, busyDelta)
	}
}

func TestEnergyAccountsAreMonotoneAndSeparate(t *testing.T) {
	m := trainDefault(t)
	k, ns, c := evalHost(t, m, workload.Prime, 104)
	other := "/docker/ghost"
	k.Perf().CreateGroup(other)
	ns.Register(other)
	var prev float64
	for s := 0; s < 20; s++ {
		k.Tick(float64(s+1), 1)
		e, err := ns.Meter(c.CgroupPath)
		if err != nil {
			t.Fatal(err)
		}
		if e < prev {
			t.Fatalf("container energy went backwards: %g < %g", e, prev)
		}
		prev = e
	}
	ghost, _ := ns.Meter(other)
	if ghost >= prev {
		t.Fatal("idle cgroup charged as much as the busy one")
	}
	if ns.Registered() != 2 {
		t.Fatalf("registered = %d", ns.Registered())
	}
	ns.Unregister(other)
	if _, err := ns.Meter(other); err == nil {
		t.Fatal("unregistered cgroup should error")
	}
}

func TestUnregisteredContainerReadsZero(t *testing.T) {
	m := trainDefault(t)
	k := kernel.New(kernel.Options{Seed: 105})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	c := rt.Create("orphan")
	New(k, m).Install(fs)
	k.Tick(1, 1)
	raw, err := c.ReadFile("/sys/class/powercap/intel-rapl:0/energy_uj")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(raw) != "0" {
		t.Fatalf("orphan reads %q, want 0", raw)
	}
}

func TestHostViewStillSeesRawCounter(t *testing.T) {
	m := trainDefault(t)
	k, ns, _ := evalHost(t, m, workload.Prime, 106)
	_ = ns
	k.Tick(1, 1)
	hv := pseudofs.HostView(k)
	// EnergyUJ via provider for the host must equal the meter.
	got, err := ns.EnergyUJ(hv, power.Package)
	if err != nil {
		t.Fatal(err)
	}
	if got != k.Meter().EnergyUJ(power.Package) {
		t.Fatal("host view must bypass virtualization")
	}
}

func TestAblationFeatureMask(t *testing.T) {
	// Instructions-only model (the naive CPU-utilization-style model the
	// paper improves upon) must fit worse than the full Formula 2 model.
	full, _, err := Train(TrainOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	naive, _, err := Train(TrainOptions{Seed: 9, CoreFeatureMask: []bool{true, false, false}})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Core.R2 >= full.Core.R2 {
		t.Fatalf("naive R² %.4f should trail full model %.4f", naive.Core.R2, full.Core.R2)
	}
	// The expanded naive model still predicts with 3 features.
	if got := naive.CoreEnergy(fullCounters(), 1); math.IsNaN(got) {
		t.Fatal("masked model cannot predict")
	}
}

func fullCounters() perfcount.Counters {
	return perfcount.Counters{Instructions: 1e10, Cycles: 1e10, CacheMisses: 1e7, BranchMisses: 1e7}
}

func TestTrainErrorsOnEmpty(t *testing.T) {
	if _, err := fit(nil, nil); err == nil {
		t.Fatal("fit(nil) should fail")
	}
}
