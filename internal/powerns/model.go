// Package powerns implements the paper's defense: a power-based namespace
// (Section V-B, Fig. 5) that presents per-container energy usage through
// the *unchanged* RAPL sysfs interface.
//
// The three components of the paper's workflow map directly onto this
// package:
//
//   - data collection: per-container perf_event cgroup counters (retired
//     instructions, cycles, cache misses, branch misses) read from
//     internal/perfcount;
//   - power modeling (Formula 2): M_core = F(CM/C, BM/C)·I + α fitted by
//     multiple linear regression, M_dram = β·CM + γ, M_package = M_core +
//     M_dram + λ;
//   - on-the-fly calibration (Formula 3): E_container = M_container /
//     M_host · E_RAPL, applied on every read so modeling error cancels
//     against the hardware counter.
//
// Install a trained Namespace into a host's pseudo-filesystem with Install;
// from then on containers reading energy_uj receive their own partitioned
// energy, and the synergistic power attack's monitor goes blind.
package powerns

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/kernel"
	"repro/internal/perfcount"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Model is the fitted per-interval energy model of Formula 2. Energies are
// Joules; intercepts are Watts (Joules per second) so predictions scale
// with the accounting interval.
type Model struct {
	// Core predicts E_core from [I, (CM/C)·I, (BM/C)·I]; the regression
	// intercept is α (idle core Watts).
	Core *stats.Model
	// DRAM predicts E_dram from [CM]; the intercept is γ.
	DRAM *stats.Model
	// Lambda is the package residual (uncore Watts) beyond core + DRAM.
	Lambda float64
}

// coreFeatures builds the Formula 2 feature vector for one counter delta.
func coreFeatures(c perfcount.Counters) []float64 {
	return []float64{
		c.Instructions,
		c.CacheMissRate() * c.Instructions,
		c.BranchMissRate() * c.Instructions,
	}
}

// CoreEnergy predicts core energy (J) for counters accumulated over dt
// seconds.
func (m *Model) CoreEnergy(c perfcount.Counters, dt float64) float64 {
	e := m.Core.Predict(coreFeatures(c))
	// The fitted intercept absorbed one sampling interval of idle power;
	// rescale it to dt.
	return e + m.Core.Intercept*(dt-1)
}

// DRAMEnergy predicts DRAM energy (J) over dt seconds.
func (m *Model) DRAMEnergy(c perfcount.Counters, dt float64) float64 {
	return m.DRAM.Predict([]float64{c.CacheMisses}) + m.DRAM.Intercept*(dt-1)
}

// PackageEnergy predicts package energy (J) over dt seconds.
func (m *Model) PackageEnergy(c perfcount.Counters, dt float64) float64 {
	return m.CoreEnergy(c, dt) + m.DRAMEnergy(c, dt) + m.Lambda*dt
}

// Energy dispatches on the RAPL domain.
func (m *Model) Energy(d power.Domain, c perfcount.Counters, dt float64) float64 {
	switch d {
	case power.Core:
		return m.CoreEnergy(c, dt)
	case power.DRAM:
		return m.DRAMEnergy(c, dt)
	default:
		return m.PackageEnergy(c, dt)
	}
}

// Sample is one training observation: one second of one benchmark run.
type Sample struct {
	Profile  string
	Counters perfcount.Counters
	ECoreJ   float64
	EDRAMJ   float64
	EPkgJ    float64
}

// TrainOptions configures model fitting.
type TrainOptions struct {
	// Profiles are the modeling benchmarks (default: workload.ModelingSet,
	// the paper's idle loop / Prime / libquantum / stress).
	Profiles []workload.Profile
	// Intensities are core counts per run (default 1,2,4,6,8 on the
	// training host).
	Intensities []float64
	// SecondsPerRun is the sampling length per (profile, intensity).
	SecondsPerRun int
	// Power is the host physics to train against.
	Power power.Config
	// Seed makes training deterministic.
	Seed int64
	// CoreFeatureMask disables regression features for the ablation study
	// (nil = all three of Formula 2; e.g. {true,false,false} =
	// instructions-only, the naive model Xu et al. refute).
	CoreFeatureMask []bool
	// Chaos, when enabled, perturbs the training host's energy-counter
	// reads (resets + quantization) through a deterministic chaos.Counters
	// stream. Training rejects samples whose counter delta was flagged as
	// a reset or regression instead of regressing on garbage.
	Chaos chaos.Spec
}

func (o *TrainOptions) fillDefaults() {
	if len(o.Profiles) == 0 {
		o.Profiles = workload.ModelingSet()
	}
	if len(o.Intensities) == 0 {
		o.Intensities = []float64{1, 2, 4, 6, 8}
	}
	if o.SecondsPerRun == 0 {
		o.SecondsPerRun = 30
	}
}

// Train fits the Formula 2 model by running each modeling benchmark at each
// intensity on a dedicated training host and regressing observed RAPL
// energy deltas on perf counter deltas. It returns the model plus the raw
// samples (the points of Figs. 6–7).
//
// With opts.Chaos enabled, counter reads pass through a deterministic
// fault stream (resets-to-zero, quantization). Glitch-sample rejection
// drops any observation whose delta on *any* domain was classified as a
// reset or regression — one poisoned row would otherwise bias the whole
// regression and everything downstream (Fig. 8's ξ, the defended fleet).
func Train(opts TrainOptions) (*Model, []Sample, error) {
	opts.fillDefaults()
	var samples []Sample
	var ctr *chaos.Counters
	if opts.Chaos.Enabled() {
		ctr = chaos.NewCounters(opts.Chaos.Config())
	}

	for _, prof := range opts.Profiles {
		for _, cores := range opts.Intensities {
			k := kernel.New(kernel.Options{
				Hostname: "trainer", Seed: opts.Seed, Power: opts.Power,
			})
			demand, rates := prof.Scaled(cores)
			k.Spawn(prof.Name, k.InitNS(), "/", demand, rates)

			maxR := k.Meter().MaxEnergyRangeUJ()
			read := k.Meter().EnergyUJ
			if ctr != nil {
				// One fault stream per (profile, intensity) training
				// kernel, split by name so streams are independent of run
				// order.
				salt := fmt.Sprintf("train/%s/%g", prof.Name, cores)
				read = chaos.WrapRawSource(k.Meter().EnergyUJ, ctr, salt, maxR)
			}

			var prevC perfcount.Counters
			prevCore := read(power.Core)
			prevDRAM := read(power.DRAM)
			prevPkg := read(power.Package)

			for s := 0; s < opts.SecondsPerRun; s++ {
				k.Tick(float64(s+1), 1)
				cur, _ := k.Perf().Read("/")
				curCore := read(power.Core)
				curDRAM := read(power.DRAM)
				curPkg := read(power.Package)
				dCore, kCore := power.CounterDeltaKind(prevCore, curCore, maxR)
				dDRAM, kDRAM := power.CounterDeltaKind(prevDRAM, curDRAM, maxR)
				dPkg, kPkg := power.CounterDeltaKind(prevPkg, curPkg, maxR)
				dC := cur.Sub(prevC)
				prevC, prevCore, prevDRAM, prevPkg = cur, curCore, curDRAM, curPkg
				if glitched(kCore) || glitched(kDRAM) || glitched(kPkg) {
					continue // glitch-sample rejection
				}
				// A reset caught near the counter ceiling is classified as
				// a wrap with delta maxRange−prev — a phantom kilojoule
				// observation that would dominate the least-squares fit.
				// No training host burns anywhere near maxPlausibleTrainW,
				// so any domain delta above it disqualifies the sample.
				if implausible(dCore) || implausible(dDRAM) || implausible(dPkg) {
					continue
				}
				samples = append(samples, Sample{
					Profile:  prof.Name,
					Counters: dC,
					ECoreJ:   float64(dCore) / 1e6,
					EDRAMJ:   float64(dDRAM) / 1e6,
					EPkgJ:    float64(dPkg) / 1e6,
				})
			}
		}
	}

	model, err := fit(samples, opts.CoreFeatureMask)
	if err != nil {
		return nil, samples, err
	}
	return model, samples, nil
}

// glitched reports whether a delta classification disqualifies a training
// sample.
func glitched(k power.DeltaKind) bool {
	return k == power.DeltaReset || k == power.DeltaRegression
}

// maxPlausibleTrainW is a generous physics ceiling on one training host's
// per-domain power: the busiest benchmark draws well under 200 W, so any
// one-second delta implying more than this is a disguised counter reset,
// not data.
const maxPlausibleTrainW = 2000

// implausible reports whether a one-second energy delta (µJ) exceeds the
// training host's physics ceiling.
func implausible(deltaUJ uint64) bool {
	return float64(deltaUJ)/1e6 > maxPlausibleTrainW
}

// fit runs the regressions of Formula 2 over the samples.
func fit(samples []Sample, mask []bool) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("powerns: no training samples")
	}
	var coreX [][]float64
	var coreY, dramY []float64
	var dramX [][]float64
	var pkgResidual float64
	for _, s := range samples {
		f := coreFeatures(s.Counters)
		f = applyMask(f, mask)
		coreX = append(coreX, f)
		coreY = append(coreY, s.ECoreJ)
		dramX = append(dramX, []float64{s.Counters.CacheMisses})
		dramY = append(dramY, s.EDRAMJ)
		pkgResidual += s.EPkgJ - s.ECoreJ - s.EDRAMJ
	}
	coreM, err := stats.Fit(coreX, coreY)
	if err != nil {
		return nil, fmt.Errorf("powerns: fit core model: %w", err)
	}
	dramM, err := stats.Fit(dramX, dramY)
	if err != nil {
		return nil, fmt.Errorf("powerns: fit DRAM model: %w", err)
	}
	m := &Model{
		Core:   coreM,
		DRAM:   dramM,
		Lambda: pkgResidual / float64(len(samples)),
	}
	if mask != nil {
		m.Core = maskedModel{inner: coreM, mask: mask}.expand()
	}
	return m, nil
}

// applyMask zeroes out disabled features (keeping dimensionality stable
// would make the regression singular, so we drop columns instead).
func applyMask(f []float64, mask []bool) []float64 {
	if mask == nil {
		return f
	}
	out := make([]float64, 0, len(f))
	for i, v := range f {
		if i < len(mask) && mask[i] {
			out = append(out, v)
		}
	}
	return out
}

// maskedModel re-expands a regression fitted on a feature subset back to
// the full three-feature space so Model.CoreEnergy can keep using
// coreFeatures unchanged.
type maskedModel struct {
	inner *stats.Model
	mask  []bool
}

func (m maskedModel) expand() *stats.Model {
	coef := make([]float64, 3)
	j := 0
	for i := 0; i < 3; i++ {
		if i < len(m.mask) && m.mask[i] {
			coef[i] = m.inner.Coef[j]
			j++
		}
	}
	return &stats.Model{Intercept: m.inner.Intercept, Coef: coef, R2: m.inner.R2, RMSE: m.inner.RMSE, N: m.inner.N}
}
