package powerns

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/perfcount"
	"repro/internal/power"
)

func TestModelRoundTrip(t *testing.T) {
	m := trainDefault(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := perfcount.Counters{Instructions: 1e10, Cycles: 1.1e10, CacheMisses: 2e7, BranchMisses: 3e7}
	for _, d := range []power.Domain{power.Package, power.Core, power.DRAM} {
		if a, b := m.Energy(d, c, 1), got.Energy(d, c, 1); a != b {
			t.Fatalf("%v energy changed across round trip: %g vs %g", d, a, b)
		}
	}
}

func TestLoadModelValidation(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"wrong version": `{"version":99,"core":{"Coef":[1,2,3]},"dram":{"Coef":[1]}}`,
		"missing core":  `{"version":1,"dram":{"Coef":[1]}}`,
		"bad core dims": `{"version":1,"core":{"Coef":[1]},"dram":{"Coef":[1]}}`,
		"bad dram dims": `{"version":1,"core":{"Coef":[1,2,3]},"dram":{"Coef":[1,2]}}`,
	}
	for name, payload := range cases {
		if _, err := LoadModel(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
