package powerns

import (
	"fmt"
	"math"

	"repro/internal/power"
)

// The paper motivates the power-based namespace beyond defense: "with
// per-container power usage statistics at hand, we can dynamically throttle
// the computing power (or increase the usage fee) of containers that exceed
// their predefined power thresholds." This file implements that enforcement
// loop: a per-container power budget realized through the cgroup CPU quota
// (CFS bandwidth control), driven by the namespace's own attribution.

// SetPowerBudget assigns a package-power budget in Watts to a registered
// container; 0 removes the budget and lifts any throttle. It returns an
// error for unregistered cgroups.
func (ns *Namespace) SetPowerBudget(cgroupPath string, watts float64) error {
	a, ok := ns.containers[cgroupPath]
	if !ok {
		return fmt.Errorf("powerns: %s not registered", cgroupPath)
	}
	a.budgetW = watts
	if watts <= 0 {
		ns.k.Cgroup(cgroupPath).QuotaCores = 0
	}
	return nil
}

// PowerBudget returns the configured budget (0 = none).
func (ns *Namespace) PowerBudget(cgroupPath string) float64 {
	if a, ok := ns.containers[cgroupPath]; ok {
		return a.budgetW
	}
	return 0
}

// LastPower returns the container's attributed package power (W) over the
// most recent accounting interval — the metering hook for power-aware
// billing.
func (ns *Namespace) LastPower(cgroupPath string) (float64, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.update()
	a, ok := ns.containers[cgroupPath]
	if !ok {
		return 0, fmt.Errorf("powerns: %s not registered", cgroupPath)
	}
	return a.lastW, nil
}

// enforceBudget runs the proportional throttle controller for one container
// after its interval power has been attributed. It adjusts the cgroup CPU
// quota so the container's power converges below its budget, and relaxes
// the quota when headroom returns.
func (ns *Namespace) enforceBudget(a *acct, dt float64) {
	if a.budgetW <= 0 || a.lastW <= 0 {
		return
	}
	cg := ns.k.Cgroup(a.path)
	cores := float64(ns.k.Options().Cores)

	// Effective cores consumed over the interval, from cpuacct.
	usedCores := (cg.CPUUsageNS - a.lastCPUNS) / 1e9 / dt
	a.lastCPUNS = cg.CPUUsageNS
	if usedCores <= 0 {
		return
	}

	switch {
	case a.lastW > a.budgetW:
		// Over budget: scale the quota proportionally to the overshoot.
		target := usedCores * a.budgetW / a.lastW
		cg.QuotaCores = math.Max(0.05, target)
	case cg.QuotaCores > 0 && a.lastW < a.budgetW*0.9:
		// Headroom: relax by 10% per interval, remove when unconstraining.
		cg.QuotaCores *= 1.1
		if cg.QuotaCores >= cores {
			cg.QuotaCores = 0
		}
	}
}

// attributePower records the interval's package power on the account (used
// by update) and runs enforcement.
func (ns *Namespace) attributePower(a *acct, pkgDeltaUJ, dt float64) {
	a.lastW = pkgDeltaUJ / 1e6 / dt
	ns.enforceBudget(a, dt)
}

// Domain helper kept close to the budget logic: package is the billed and
// budgeted domain.
var budgetDomain = power.Package
