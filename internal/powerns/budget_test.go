package powerns

import (
	"testing"

	"repro/internal/container"
	"repro/internal/kernel"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

// budgetWorld builds a host with a namespaced, budget-eligible container.
func budgetWorld(t *testing.T, seed int64) (*kernel.Kernel, *Namespace, *container.Container, *container.Container) {
	t.Helper()
	m := trainDefault(t)
	k := kernel.New(kernel.Options{Hostname: "budget", Seed: seed})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	hog := rt.Create("hog")
	peer := rt.Create("peer")
	ns := New(k, m)
	ns.Register(hog.CgroupPath)
	ns.Register(peer.CgroupPath)
	ns.Install(fs)
	return k, ns, hog, peer
}

// drive advances the kernel one second at a time, touching the namespace so
// the enforcement loop runs every interval.
func drive(k *kernel.Kernel, ns *Namespace, seconds int) {
	for i := 0; i < seconds; i++ {
		k.Tick(k.Now()+1, 1)
		ns.update()
	}
}

func TestSetPowerBudgetValidation(t *testing.T) {
	_, ns, hog, _ := budgetWorld(t, 1)
	if err := ns.SetPowerBudget("/nope", 50); err == nil {
		t.Fatal("unregistered cgroup should be rejected")
	}
	if err := ns.SetPowerBudget(hog.CgroupPath, 30); err != nil {
		t.Fatal(err)
	}
	if got := ns.PowerBudget(hog.CgroupPath); got != 30 {
		t.Fatalf("budget = %g", got)
	}
	if got := ns.PowerBudget("/nope"); got != 0 {
		t.Fatalf("unknown budget = %g", got)
	}
}

func TestBudgetThrottlesOverconsumer(t *testing.T) {
	k, ns, hog, _ := budgetWorld(t, 2)
	hog.Run(workload.Prime, 8) // ~80+ W unthrottled

	drive(k, ns, 5)
	unthrottled, err := ns.LastPower(hog.CgroupPath)
	if err != nil {
		t.Fatal(err)
	}
	if unthrottled < 50 {
		t.Fatalf("unthrottled power only %.1f W", unthrottled)
	}

	const budget = 40.0
	if err := ns.SetPowerBudget(hog.CgroupPath, budget); err != nil {
		t.Fatal(err)
	}
	drive(k, ns, 40)
	throttled, err := ns.LastPower(hog.CgroupPath)
	if err != nil {
		t.Fatal(err)
	}
	if throttled > budget*1.15 {
		t.Fatalf("power %.1f W still far above the %.0f W budget", throttled, budget)
	}
	// The throttle is visible as a cgroup quota.
	if q := k.Cgroup(hog.CgroupPath).QuotaCores; q <= 0 || q >= 8 {
		t.Fatalf("quota = %g, want a real cap", q)
	}
}

func TestBudgetDoesNotAffectPeers(t *testing.T) {
	k, ns, hog, peer := budgetWorld(t, 3)
	hog.Run(workload.Prime, 6)
	peer.Run(workload.Prime, 2)
	if err := ns.SetPowerBudget(hog.CgroupPath, 30); err != nil {
		t.Fatal(err)
	}
	drive(k, ns, 40)
	peerW, err := ns.LastPower(peer.CgroupPath)
	if err != nil {
		t.Fatal(err)
	}
	// Peer runs 2 cores of Prime ≈ 20+ W plus its idle share, unthrottled.
	if peerW < 15 {
		t.Fatalf("peer throttled by neighbour's budget: %.1f W", peerW)
	}
	if q := k.Cgroup(peer.CgroupPath).QuotaCores; q != 0 {
		t.Fatalf("peer quota = %g, want unlimited", q)
	}
}

func TestBudgetRelaxesWhenDemandDrops(t *testing.T) {
	k, ns, hog, _ := budgetWorld(t, 4)
	task := hog.Run(workload.Prime, 8)
	if err := ns.SetPowerBudget(hog.CgroupPath, 35); err != nil {
		t.Fatal(err)
	}
	drive(k, ns, 30)
	if q := k.Cgroup(hog.CgroupPath).QuotaCores; q <= 0 {
		t.Fatal("expected an active throttle")
	}
	// Workload becomes light: one core.
	hog.Stop(task)
	hog.Run(workload.IdleLoop, 0.5)
	drive(k, ns, 80)
	if q := k.Cgroup(hog.CgroupPath).QuotaCores; q != 0 {
		t.Fatalf("quota = %g, want fully relaxed after demand dropped", q)
	}
}

func TestBudgetRemoval(t *testing.T) {
	k, ns, hog, _ := budgetWorld(t, 5)
	hog.Run(workload.Prime, 8)
	if err := ns.SetPowerBudget(hog.CgroupPath, 30); err != nil {
		t.Fatal(err)
	}
	drive(k, ns, 20)
	if err := ns.SetPowerBudget(hog.CgroupPath, 0); err != nil {
		t.Fatal(err)
	}
	if q := k.Cgroup(hog.CgroupPath).QuotaCores; q != 0 {
		t.Fatalf("quota = %g after budget removal", q)
	}
	drive(k, ns, 10)
	w, _ := ns.LastPower(hog.CgroupPath)
	if w < 50 {
		t.Fatalf("power %.1f W did not recover after budget removal", w)
	}
}

func TestLastPowerUnregistered(t *testing.T) {
	_, ns, _, _ := budgetWorld(t, 6)
	if _, err := ns.LastPower("/ghost"); err == nil {
		t.Fatal("expected error for unregistered cgroup")
	}
}
