package policy

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

// Phase is the canary rollout state machine:
//
//	pending → canary → promoting → done
//	            └──────→ rolled_back
//
// The only transition out of canary other than promotion is rollback, and
// rollback is terminal: a policy that broke a benign read once does not
// get retried without re-synthesis.
type Phase string

// Rollout phases.
const (
	PhasePending    Phase = "pending"
	PhaseCanary     Phase = "canary"
	PhasePromoting  Phase = "promoting"
	PhaseDone       Phase = "done"
	PhaseRolledBack Phase = "rolled_back"
)

// Event is one observation the rollout controller emits while it runs.
// Channel != "" marks a verdict event (a channel's fleet-worst availability
// at this epoch, with its previous value when it changed); Channel == ""
// marks a phase transition. Epoch is the world's FS-wide source epoch at
// emission — the same counter the incremental engine keys its caches by,
// so a watcher can correlate verdict flips with world changes.
type Event struct {
	Phase        Phase
	Epoch        uint64
	Channel      string
	Availability string
	Previous     string
	Changed      bool
	Reason       string
}

// RolloutConfig tunes the canary controller. The zero value selects the
// defaults.
type RolloutConfig struct {
	// CanaryPercent is the share of the fleet the policy applies to first
	// (default 20, clamped to [1,100]). The canary set is chosen by
	// ranking cluster.KeyHash("provider|name") — consistent with the scan
	// ring's placement, and stable as the fleet grows.
	CanaryPercent int
	// HealthyEpochs is how many consecutive healthy canary epochs promote
	// the policy to the whole fleet (default 3).
	HealthyEpochs int
	// TicksPerEpoch is how many 1-second world ticks one epoch spans
	// (default 5).
	TicksPerEpoch int
	// Workers bounds validation/capture fan-out (default 1).
	Workers int
}

func (c RolloutConfig) canaryPercent() int {
	switch {
	case c.CanaryPercent <= 0:
		return 20
	case c.CanaryPercent > 100:
		return 100
	}
	return c.CanaryPercent
}

func (c RolloutConfig) healthyEpochs() int {
	if c.HealthyEpochs <= 0 {
		return 3
	}
	return c.HealthyEpochs
}

func (c RolloutConfig) ticksPerEpoch() int {
	if c.TicksPerEpoch <= 0 {
		return 5
	}
	return c.TicksPerEpoch
}

func (c RolloutConfig) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

// Result is the terminal outcome of one rollout.
type Result struct {
	Phase      Phase `json:"phase"`
	Epochs     int   `json:"epochs"`
	CanarySize int   `json:"canary_size"`
	FleetSize  int   `json:"fleet_size"`
	// ChannelsClosed / ChannelsLeaking summarize the fleet-worst Table I
	// availability after the rollout finished (done) or was reverted
	// (rolled_back — leaking counts then reflect the restored baseline).
	ChannelsClosed  int      `json:"channels_closed"`
	ChannelsLeaking int      `json:"channels_leaking"`
	BenignFailures  []string `json:"benign_failures,omitempty"`
	Reason          string   `json:"reason,omitempty"`
}

// Fleet is a provider's container fleet on one simulated host, the target
// a policy rolls out to. It owns the world, an incremental engine over the
// host mount, and the benign workload suite the health check replays.
type Fleet struct {
	provider string
	seed     int64
	dc       *cloud.Datacenter
	srv      *cloud.Server
	eng      *engine.Engine
	conts    []*container.Container
	specs    []workload.TraceSpec
}

// NewFleet launches n tenant containers of the provider profile on one
// server and advances the world to the canonical observation instant.
func NewFleet(p cloud.ProviderProfile, spec chaos.Spec, seed int64, n int) (*Fleet, error) {
	if seed == 0 {
		seed = DefaultSeed
	}
	if n <= 0 {
		return nil, fmt.Errorf("policy: fleet needs at least 1 container, got %d", n)
	}
	dc := cloud.New(cloud.Config{
		Racks:          1,
		ServersPerRack: 1,
		CoresPerServer: n + 4, // room for the fleet plus background load
		Seed:           seed,
		Provider:       &p,
		Chaos:          spec,
	})
	f := &Fleet{provider: p.Name, seed: seed, dc: dc, specs: workload.BenignSuite(seed)}
	for i := 0; i < n; i++ {
		srv, c, err := dc.Launch("tenant", fmt.Sprintf("tenant-%02d", i), 1)
		if err != nil {
			return nil, fmt.Errorf("policy: launch tenant %d: %w", i, err)
		}
		f.srv = srv
		f.conts = append(f.conts, c)
	}
	dc.Clock.Run(30, 1)
	f.eng = engine.New(f.srv.HostMount())
	return f, nil
}

// Size returns the fleet's container count.
func (f *Fleet) Size() int { return len(f.conts) }

// Epoch returns the world's FS-wide source epoch (stamped on events).
func (f *Fleet) Epoch() uint64 { return f.srv.FS.Epoch() }

// Canaries returns the indices of the pct% canary set: the containers with
// the lowest cluster.KeyHash("provider|name"), at least one. Because the
// ranking hashes the same keys the scan ring partitions by, the canary set
// is stable as the fleet grows and consistent with worker placement.
func (f *Fleet) Canaries(pct int) []int {
	type ranked struct {
		hash uint64
		idx  int
	}
	rs := make([]ranked, len(f.conts))
	for i, c := range f.conts {
		rs[i] = ranked{hash: cluster.KeyHash(f.provider + "|" + c.Name), idx: i}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].hash != rs[j].hash {
			return rs[i].hash < rs[j].hash
		}
		return rs[i].idx < rs[j].idx
	})
	n := (pct*len(f.conts) + 99) / 100
	if n < 1 {
		n = 1
	}
	if n > len(f.conts) {
		n = len(f.conts)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = rs[i].idx
	}
	sort.Ints(out)
	return out
}

// worstAvail cross-validates the given containers in one batched engine
// pass and returns each Table I channel's fleet-worst availability (the
// most leaking verdict across the set).
func (f *Fleet) worstAvail(indices []int, workers int) map[string]core.Availability {
	mounts := make([]*pseudofs.Mount, len(indices))
	for i, idx := range indices {
		mounts[i] = f.conts[idx].Mount()
	}
	channels := core.TableIChannels()
	worst := make(map[string]core.Availability, len(channels))
	for _, ch := range channels {
		worst[ch.Name] = core.Unavailable // explicit ○ entry even when nothing leaks
	}
	for _, findings := range f.eng.FleetValidate(mounts, workers) {
		for _, rep := range core.RollUp(channels, findings) {
			if rep.Availability > worst[rep.Channel.Name] {
				worst[rep.Channel.Name] = rep.Availability
			}
		}
	}
	return worst
}

// benignSurface replays the benign suite through the given containers and
// returns the merged successful read counts.
func (f *Fleet) benignSurface(indices []int, workers int) map[string]int {
	merged := make(map[string]int)
	for _, idx := range indices {
		for _, tr := range workload.CaptureAll(f.conts[idx].Mount(), f.specs, f.seed, workers) {
			for path, n := range tr.Reads {
				merged[path] += n
			}
		}
	}
	return merged
}

// newFailures returns paths readable at baseline but unreadable now.
func newFailures(baseline, now map[string]int) []string {
	var out []string
	for path, n := range baseline {
		if n > 0 && now[path] == 0 {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// emitVerdicts reports each channel's availability against the previous
// epoch's and updates last in place. Channels iterate in registry order so
// the event stream is deterministic.
func (f *Fleet) emitVerdicts(phase Phase, avail, last map[string]core.Availability, emit func(Event)) {
	epoch := f.Epoch()
	for _, ch := range core.TableIChannels() {
		cur, prev := avail[ch.Name], last[ch.Name]
		ev := Event{
			Phase:        phase,
			Epoch:        epoch,
			Channel:      ch.Name,
			Availability: cur.String(),
			Changed:      cur != prev,
		}
		if ev.Changed {
			ev.Previous = prev.String()
		}
		emit(ev)
		last[ch.Name] = cur
	}
}

// Rollout applies the policy to the canary set, watches verdicts and
// benign replays across world epochs, and either promotes the policy to
// the whole fleet after cfg.HealthyEpochs healthy epochs or rolls the
// canaries back on the first benign read the policy breaks. Events stream
// through emit (may be nil) as the controller observes them; leaksd maps
// them onto the /v1/events SSE feed.
func (f *Fleet) Rollout(pol Policy, cfg RolloutConfig, emit func(Event)) (Result, error) {
	if emit == nil {
		emit = func(Event) {}
	}
	rules, err := pol.PseudoRules()
	if err != nil {
		return Result{}, err
	}
	canaries := f.Canaries(cfg.canaryPercent())
	all := make([]int, len(f.conts))
	for i := range all {
		all[i] = i
	}
	res := Result{
		Phase:      PhasePending,
		CanarySize: len(canaries),
		FleetSize:  len(f.conts),
	}
	workers := cfg.workers()

	// Baseline: fleet-worst verdicts and the benign surface the health
	// check compares against, both captured before any policy applies.
	last := f.worstAvail(all, workers)
	baseline := f.benignSurface(all, workers)
	wasLeaking := make(map[string]bool, len(last))
	for ch, a := range last {
		wasLeaking[ch] = a != core.Unavailable
	}

	emit(Event{Phase: PhaseCanary, Epoch: f.Epoch()})
	res.Phase = PhaseCanary
	for _, idx := range canaries {
		f.conts[idx].ApplyPolicy(pol.Name(), rules)
	}
	for epoch := 1; epoch <= cfg.healthyEpochs(); epoch++ {
		f.dc.Clock.Run(f.dc.Clock.Now()+float64(cfg.ticksPerEpoch()), 1)
		res.Epochs = epoch
		f.emitVerdicts(PhaseCanary, f.worstAvail(canaries, workers), last, emit)
		replay := f.benignSurface(canaries, workers)
		if failures := newFailures(baseline, replay); len(failures) > 0 {
			for _, idx := range canaries {
				f.conts[idx].RevertPolicy()
			}
			res.Phase = PhaseRolledBack
			res.BenignFailures = failures
			res.Reason = fmt.Sprintf("benign read broken on canary: %s", failures[0])
			restored := f.worstAvail(all, workers)
			res.ChannelsClosed, res.ChannelsLeaking = closureCounts(restored, wasLeaking)
			emit(Event{Phase: PhaseRolledBack, Epoch: f.Epoch(), Reason: res.Reason})
			return res, nil
		}
	}

	emit(Event{Phase: PhasePromoting, Epoch: f.Epoch()})
	res.Phase = PhasePromoting
	for _, idx := range all {
		f.conts[idx].ApplyPolicy(pol.Name(), rules)
	}
	f.dc.Clock.Run(f.dc.Clock.Now()+float64(cfg.ticksPerEpoch()), 1)
	res.Epochs++
	final := f.worstAvail(all, workers)
	f.emitVerdicts(PhasePromoting, final, last, emit)
	if failures := newFailures(baseline, f.benignSurface(all, workers)); len(failures) > 0 {
		for _, idx := range all {
			f.conts[idx].RevertPolicy()
		}
		res.Phase = PhaseRolledBack
		res.BenignFailures = failures
		res.Reason = fmt.Sprintf("benign read broken on promotion: %s", failures[0])
		restored := f.worstAvail(all, workers)
		res.ChannelsClosed, res.ChannelsLeaking = closureCounts(restored, wasLeaking)
		emit(Event{Phase: PhaseRolledBack, Epoch: f.Epoch(), Reason: res.Reason})
		return res, nil
	}
	res.Phase = PhaseDone
	res.ChannelsClosed, res.ChannelsLeaking = closureCounts(final, wasLeaking)
	emit(Event{Phase: PhaseDone, Epoch: f.Epoch()})
	return res, nil
}

// closureCounts summarizes a fleet-worst availability map: closed counts
// channels that leaked at baseline and read ○ now; leaking counts channels
// still ● / ◐.
func closureCounts(avail map[string]core.Availability, wasLeaking map[string]bool) (closed, leaking int) {
	for ch, a := range avail {
		if a == core.Unavailable {
			if wasLeaking[ch] {
				closed++
			}
		} else {
			leaking++
		}
	}
	return closed, leaking
}
