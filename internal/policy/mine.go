package policy

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/workload"
)

// DefaultSeed is the canonical mining/verification world seed, the same
// instant the inspection experiments freeze at
// (experiments.DefaultInspectSeed).
const DefaultSeed int64 = 0x1ea4

// Options tunes mining and synthesis. The zero value selects the defaults.
type Options struct {
	// Containers is how many benign tenant containers the miner replays
	// the workload suite through (default 3). More containers widen the
	// observed surface — e.g. per-container veth names — without changing
	// the per-path outcomes for the shared pseudo-files.
	Containers int
	// Workers bounds the capture/validation fan-out (default 1; <=0 is 1).
	Workers int
	// Chaos optionally injects the transient/dead-sensor fault layer the
	// capture retries must ride out.
	Chaos chaos.Spec
}

func (o Options) containers() int {
	if o.Containers <= 0 {
		return 3
	}
	return o.Containers
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// MinedTrace is the merged benign read surface of one provider world: what
// a synthesized policy must keep readable.
type MinedTrace struct {
	Provider   string `json:"provider"`
	Seed       int64  `json:"seed"`
	Containers int    `json:"containers"`
	Workloads  int    `json:"workloads"`
	// Benign maps each pseudo-file path some benign workload successfully
	// read to the total successful read count across all containers and
	// workloads.
	Benign map[string]int `json:"benign"`
	// BaselineBroken lists paths the suite wanted but could never read
	// under the provider's own policy — pre-existing breakage a new policy
	// is not charged for (and not constrained by).
	BaselineBroken []string `json:"baseline_broken,omitempty"`
}

// Needs reports whether the benign surface depends on the path.
func (t MinedTrace) Needs(path string) bool { return t.Benign[path] > 0 }

// world is one single-server provider world: the probe container the
// detector cross-validates plus the benign tenants the miner replays
// workloads through. The shape matches experiments.NewInspectSession so a
// policy synthesized here closes exactly the channels leaksd reports.
type world struct {
	dc      *cloud.Datacenter
	srv     *cloud.Server
	probe   *container.Container
	tenants []*container.Container
}

// newWorld builds the provider world at the canonical 30-tick observation
// instant: one server, one probe, n benign tenants.
func newWorld(p cloud.ProviderProfile, spec chaos.Spec, seed int64, tenants int) (*world, error) {
	if seed == 0 {
		seed = DefaultSeed
	}
	dc := cloud.New(cloud.Config{
		Racks:          1,
		ServersPerRack: 1,
		Seed:           seed,
		Provider:       &p,
		Chaos:          spec,
	})
	srv, probe, err := dc.Launch("inspector", "probe", 1)
	if err != nil {
		return nil, fmt.Errorf("policy: launch probe: %w", err)
	}
	w := &world{dc: dc, srv: srv, probe: probe}
	for i := 0; i < tenants; i++ {
		_, c, err := dc.Launch("tenant", fmt.Sprintf("benign-%02d", i), 1)
		if err != nil {
			return nil, fmt.Errorf("policy: launch tenant %d: %w", i, err)
		}
		w.tenants = append(w.tenants, c)
	}
	dc.Clock.Run(30, 1)
	return w, nil
}

// advance drives the world forward by 1-second ticks (canary epochs).
func (w *world) advance(ticks int) {
	w.dc.Clock.Run(w.dc.Clock.Now()+float64(ticks), 1)
}

// mine replays the benign suite through every tenant container and merges
// the outcomes. A path lands in Benign if any container's capture read it
// successfully; a path every capture failed on is baseline breakage.
func (w *world) mine(provider string, seed int64, workers int) MinedTrace {
	specs := workload.BenignSuite(seed)
	t := MinedTrace{
		Provider:   provider,
		Seed:       seed,
		Containers: len(w.tenants),
		Workloads:  len(specs),
		Benign:     make(map[string]int),
	}
	failed := make(map[string]bool)
	for _, c := range w.tenants {
		for _, tr := range workload.CaptureAll(c.Mount(), specs, seed, workers) {
			for path, n := range tr.Reads {
				t.Benign[path] += n
			}
			for path := range tr.Failures {
				failed[path] = true
			}
		}
	}
	for path := range failed {
		if t.Benign[path] == 0 {
			t.BaselineBroken = append(t.BaselineBroken, path)
		}
	}
	sort.Strings(t.BaselineBroken)
	return t
}

// MineBenign builds the provider world and returns its merged benign read
// surface — the standalone entry point for inspecting what the synthesizer
// would constrain itself by.
func MineBenign(p cloud.ProviderProfile, seed int64, opts Options) (MinedTrace, error) {
	if seed == 0 {
		seed = DefaultSeed
	}
	w, err := newWorld(p, opts.Chaos, seed, opts.containers())
	if err != nil {
		return MinedTrace{}, err
	}
	return w.mine(p.Name, seed, opts.workers()), nil
}

// BenignPaths flattens the trace's benign surface to a sorted path list
// (the form stored on a synthesized Policy).
func (t MinedTrace) BenignPaths() []string {
	out := make([]string, 0, len(t.Benign))
	for path := range t.Benign {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}
