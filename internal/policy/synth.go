package policy

import (
	"sort"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/pseudofs"
)

// Synthesize mines the provider's benign read surface and generates the
// minimal ordered rule set that closes every Table I channel the detector
// finds leaking in that world:
//
//   - a channel pattern no benign workload reads under gets one Deny over
//     the whole pattern — the cheapest closure, and breakage-free by
//     construction;
//   - a channel pattern on the benign surface gets per-path rules: Empty
//     (read succeeds, content masked) for paths the benign trace needs,
//     Deny for the rest.
//
// Empty rules order ahead of Deny rules so first-match-wins keeps the
// benign surface readable even where a broad Deny glob overlaps it. Each
// rule records the covered paths' kernel-subsystem dependency masks
// (pseudofs.Dep), linking the policy to the epoch machinery that decides
// when it must be re-verified. Output is a pure function of (provider,
// chaos, seed, opts): byte-deterministic.
func Synthesize(p cloud.ProviderProfile, seed int64, opts Options) (Policy, error) {
	if seed == 0 {
		seed = DefaultSeed
	}
	w, err := newWorld(p, opts.Chaos, seed, opts.containers())
	if err != nil {
		return Policy{}, err
	}
	eng := engine.New(w.srv.HostMount())
	findings := eng.ValidateWorkers(w.probe.Mount(), opts.workers())
	mined := w.mine(p.Name, seed, opts.workers())
	rules := synthesize(w.srv.FS, core.TableIChannels(), findings, mined)
	return Policy{
		Provider:    p.Name,
		Seed:        seed,
		Rules:       rules,
		BenignPaths: mined.BenignPaths(),
	}, nil
}

// leaking reports whether a finding still exposes host kernel state: an
// identical or filtered match, or a volatile read of host data. These are
// exactly the statuses RollUp counts toward a channel's availability.
func leaking(s core.FileStatus) bool {
	return s == core.Identical || s == core.Partial || s == core.Volatile
}

// synthesize is the pure rule generator: detector findings plus the mined
// benign surface in, ordered rules out.
func synthesize(fs *pseudofs.FS, channels []core.Channel, findings []core.Finding, mined MinedTrace) []Rule {
	type draft struct {
		rule  Rule
		order int // emission index, tie-broken by pattern for determinism
	}
	drafts := make(map[string]draft) // pattern+action → first draft
	emit := func(r Rule) {
		key := string(r.Action) + " " + r.Pattern
		if _, ok := drafts[key]; ok {
			return
		}
		drafts[key] = draft{rule: r, order: len(drafts)}
	}

	for _, ch := range channels {
		for _, pat := range ch.Paths {
			var leaks []core.Finding
			benignUnder := false
			for _, f := range findings {
				if !pseudofs.Match(pat, f.Path) {
					continue
				}
				if leaking(f.Status) {
					leaks = append(leaks, f)
				}
			}
			for path := range mined.Benign {
				if pseudofs.Match(pat, path) {
					benignUnder = true
					break
				}
			}
			if len(leaks) == 0 {
				continue // pattern already closed (or absent) in this world
			}
			if !benignUnder {
				var mask kernel.SubsystemMask
				for _, f := range leaks {
					mask |= fs.Dep(f.Path).Mask
				}
				emit(Rule{
					Pattern:    pat,
					Action:     ActionDeny,
					Channel:    ch.Name,
					Subsystems: maskString(mask),
				})
				continue
			}
			for _, f := range leaks {
				action := ActionDeny
				if mined.Needs(f.Path) {
					action = ActionEmpty
				}
				emit(Rule{
					Pattern:    f.Path,
					Action:     action,
					Channel:    ch.Name,
					Subsystems: maskString(fs.Dep(f.Path).Mask),
				})
			}
		}
	}

	out := make([]Rule, 0, len(drafts))
	ordered := make([]draft, 0, len(drafts))
	for _, d := range drafts {
		ordered = append(ordered, d)
	}
	// Empty before Deny (the ordering invariant PseudoRules relies on),
	// then registry emission order so the policy reads like Table I.
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if (a.rule.Action == ActionEmpty) != (b.rule.Action == ActionEmpty) {
			return a.rule.Action == ActionEmpty
		}
		if a.order != b.order {
			return a.order < b.order
		}
		return a.rule.Pattern < b.rule.Pattern
	})
	for _, d := range ordered {
		out = append(out, d.rule)
	}
	return out
}
