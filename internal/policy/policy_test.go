package policy

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cloud"
)

// TestGenerateCC1 is the subsystem's end-to-end acceptance check: on the
// CC1 profile the synthesized policy must close at least 90% of the
// leaking Table I channels without breaking a single benign-workload read.
func TestGenerateCC1(t *testing.T) {
	pol, rep, err := Generate(cloud.CC1(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Rules) == 0 {
		t.Fatal("synthesized policy has no rules")
	}
	if rep.LeakingBefore == 0 {
		t.Fatal("CC1 world reports nothing leaking — detector broken")
	}
	if rep.Closure < 0.9 {
		t.Fatalf("closure %.2f < 0.90\n%s", rep.Closure, rep)
	}
	if len(rep.BenignFailures) != 0 {
		t.Fatalf("policy broke benign reads: %v", rep.BenignFailures)
	}
	// The ordering invariant: every empty rule precedes every deny rule,
	// so first-match-wins keeps the benign surface readable under broad
	// deny globs.
	seenDeny := false
	for _, r := range pol.Rules {
		switch r.Action {
		case ActionDeny:
			seenDeny = true
		case ActionEmpty:
			if seenDeny {
				t.Fatalf("empty rule %s ordered after a deny rule", r.Pattern)
			}
		}
		if r.Channel == "" {
			t.Fatalf("rule %s has no channel provenance", r.Pattern)
		}
		if r.Subsystems == "" {
			t.Fatalf("rule %s has no subsystem tag", r.Pattern)
		}
	}
}

// TestGenerateDeterministic: the whole pipeline is a pure function of
// (provider, seed, opts) — policies and reports are byte-identical across
// runs.
func TestGenerateDeterministic(t *testing.T) {
	polA, repA, err := Generate(cloud.CC1(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	polB, repB, err := Generate(cloud.CC1(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	encA, _ := polA.Encode()
	encB, _ := polB.Encode()
	if !bytes.Equal(encA, encB) {
		t.Fatal("synthesized policies differ across runs")
	}
	ja, _ := json.Marshal(repA)
	jb, _ := json.Marshal(repB)
	if !bytes.Equal(ja, jb) {
		t.Fatal("verification reports differ across runs")
	}
}

// TestSynthesisWorkersDeterministic: fanning mining and validation out
// over a worker pool must not change a byte of the synthesized policy.
func TestSynthesisWorkersDeterministic(t *testing.T) {
	serial, err := Synthesize(cloud.CC1(), 0, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := Synthesize(cloud.CC1(), 0, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := serial.Encode()
	b, _ := fanned.Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("policy differs between workers=1 and workers=8")
	}
}

// TestGenerateUnderChaos: the retry budgets in mining and validation ride
// out a transiently faulty observation surface; synthesis still closes
// channels without phantom benign breakage.
func TestGenerateUnderChaos(t *testing.T) {
	_, rep, err := Generate(cloud.CC1(), 0, Options{Chaos: chaos.Spec{Rate: 0.02, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Closure < 0.9 {
		t.Fatalf("closure under chaos %.2f < 0.90\n%s", rep.Closure, rep)
	}
	if len(rep.BenignFailures) != 0 {
		t.Fatalf("chaos run reports benign failures: %v", rep.BenignFailures)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pol, err := Synthesize(cloud.CC2(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := pol.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, _ := back.Encode()
	if !bytes.Equal(enc, enc2) {
		t.Fatal("policy does not round-trip through JSON")
	}
}

func TestDecodeRejectsBadPolicies(t *testing.T) {
	if _, err := Decode([]byte(`{"provider":"x","seed":1,"rules":[{"pattern":"/proc/stat","action":"explode"}]}`)); err == nil {
		t.Fatal("unknown action accepted")
	}
	if _, err := Decode([]byte(`{"provider":"x","bogus":true,"rules":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Decode([]byte(`{"provider":"x","rules":[{"pattern":"","action":"deny"}]}`)); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestMineBenign(t *testing.T) {
	tr, err := MineBenign(cloud.CC1(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Benign) == 0 {
		t.Fatal("mined no benign reads")
	}
	for _, must := range []string{"/proc/cpuinfo", "/proc/meminfo", "/proc/stat"} {
		if !tr.Needs(must) {
			t.Fatalf("benign surface missing %s", must)
		}
	}
	// CC1 masks /proc/sched_debug; that path is not in any benign intent
	// set, so it must not appear as baseline breakage either.
	for _, p := range tr.BaselineBroken {
		if strings.Contains(p, "sched_debug") {
			t.Fatalf("unexpected baseline breakage: %s", p)
		}
	}
}
