package policy

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/kernel"
	"repro/internal/pseudofs"
)

// Action is what a policy rule does to reads matching its pattern.
// "empty" masks content while letting the read succeed (a bind-mounted
// empty file); "deny" fails the read with EACCES. The distinction is the
// heart of minimal synthesis: both flip a channel's verdict to masked, but
// only "empty" keeps the benign reads under the pattern working.
type Action string

// The two actions a synthesized rule can take.
const (
	ActionDeny  Action = "deny"
	ActionEmpty Action = "empty"
)

// pseudo converts the serialized action to the pseudofs rule action.
func (a Action) pseudo() (pseudofs.Action, error) {
	switch a {
	case ActionDeny:
		return pseudofs.Deny, nil
	case ActionEmpty:
		return pseudofs.Empty, nil
	default:
		return 0, fmt.Errorf("policy: unknown action %q", a)
	}
}

// Rule is one ordered masking rule of a policy. First match wins when the
// policy is applied, exactly like pseudofs.Policy.
type Rule struct {
	// Pattern is a pseudofs glob ('*' within a segment, trailing "/**").
	Pattern string `json:"pattern"`
	// Action is "deny" or "empty".
	Action Action `json:"action"`
	// Channel names the Table I channel this rule closes (provenance).
	Channel string `json:"channel,omitempty"`
	// Subsystems lists the kernel dirty-tracking subsystems the covered
	// paths render from (pseudofs.Dep masks), tying the rule to the epoch
	// machinery that re-validates it after world changes.
	Subsystems string `json:"subsystems,omitempty"`
}

// Policy is a synthesized (or hand-written) masking policy for one
// provider profile.
type Policy struct {
	// Provider is the cloud profile the policy was synthesized against.
	Provider string `json:"provider"`
	// Seed is the world seed used during mining and synthesis.
	Seed int64 `json:"seed"`
	// Rules are the ordered masking rules: every "empty" rule sorts ahead
	// of every "deny" rule so first-match-wins keeps the benign surface
	// readable even where a broad deny glob overlaps it.
	Rules []Rule `json:"rules"`
	// BenignPaths is the mined benign read surface the policy was
	// constrained by (successful reads only, baseline-broken excluded).
	BenignPaths []string `json:"benign_paths,omitempty"`
}

// PseudoRules converts the policy to pseudofs rules, preserving order.
func (p Policy) PseudoRules() ([]pseudofs.Rule, error) {
	out := make([]pseudofs.Rule, 0, len(p.Rules))
	for _, r := range p.Rules {
		if r.Pattern == "" {
			return nil, fmt.Errorf("policy: rule with empty pattern")
		}
		do, err := r.Action.pseudo()
		if err != nil {
			return nil, err
		}
		out = append(out, pseudofs.Rule{Pattern: r.Pattern, Do: do})
	}
	return out, nil
}

// Name returns the applied-policy name: distinct per provider so mounts
// carrying different synthesized policies are distinguishable.
func (p Policy) Name() string { return "synthesized/" + p.Provider }

// Encode renders the policy as deterministic, indented JSON (trailing
// newline included) — the on-disk format defensebench -policy reads.
func (p Policy) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a policy from its JSON form, rejecting unknown fields so a
// typo'd hand-written policy fails loudly instead of silently no-opping.
func Decode(data []byte) (Policy, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return Policy{}, fmt.Errorf("policy: decode: %w", err)
	}
	if _, err := p.PseudoRules(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// LoadFile reads and decodes a policy file.
func LoadFile(path string) (Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Policy{}, fmt.Errorf("policy: %w", err)
	}
	return Decode(data)
}

// maskString renders a subsystem mask the way the Rule.Subsystems field
// stores it: sorted subsystem names joined by "|", or "static" for the
// zero mask (immutable files).
func maskString(mask kernel.SubsystemMask) string {
	if mask == 0 {
		return "static"
	}
	var names []string
	for s := kernel.Subsystem(0); s < kernel.NumSubsystems; s++ {
		if mask&(1<<s) != 0 {
			names = append(names, s.String())
		}
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}
