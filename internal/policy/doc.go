// Package policy closes the loop the paper opens: the detector
// (internal/core, internal/engine) finds the procfs/sysfs channels of
// Table I leaking; this package generates the masking policy that closes
// them — automatically, minimally, and without breaking the benign
// workloads a provider actually hosts — and rolls it out through leaksd
// with a staged canary.
//
// The pipeline has four stages, in the spirit of sandbox mining (Le Blanc
// et al.'s BEACON and Zeller's "Mining Sandboxes": observe what benign
// runs need, forbid the rest):
//
//	mining       Benign workload runs (the seeded power virus and the
//	             UnixBench suite, internal/workload) replay their
//	             pseudo-file read intents through real container mounts;
//	             the union of successful reads is the benign surface a
//	             policy must not deny. Reads already failing under the
//	             provider's own policy are recorded as baseline-broken
//	             and excluded — a policy is not charged for pre-existing
//	             breakage.
//	synthesis    For every Table I channel the engine finds leaking, emit
//	             the narrowest rule that closes it: a channel whose paths
//	             nobody benign reads gets one Deny over the channel
//	             pattern; a channel on the benign surface gets per-path
//	             rules — Empty (read succeeds, content masked) where a
//	             benign trace needs the read, Deny elsewhere. Empty rules
//	             order ahead of Deny patterns so first-match-wins keeps
//	             the benign surface readable. Each rule records the
//	             kernel subsystems (pseudofs.Dep masks) of the paths it
//	             covers, tying the policy to the epoch machinery that
//	             will re-validate it.
//	verification Two worlds from the same seed: the baseline probe and a
//	             probe with the policy applied. A channel is closed iff
//	             its verdict flips to ○ (non-leaking); benign suites
//	             replay under the policy and every read that succeeded at
//	             baseline must still succeed. Deterministic worlds make
//	             the whole check byte-reproducible.
//	canary       A Fleet of a provider's containers applies the policy to
//	             k% first — chosen by ranking cluster.KeyHash
//	             ("provider|name"), consistent with the scan-partitioning
//	             ring — then watches verdicts and benign replays across
//	             world epochs. Any new benign-read failure rolls the
//	             canary back; surviving HealthyEpochs promotes the policy
//	             to the whole fleet.
//
// leaksd exposes the pipeline as the /v1/policies surface (see
// internal/service); defensebench -policy evaluates a saved policy
// offline against the defense stage grid.
package policy
