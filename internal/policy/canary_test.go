package policy

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/cluster"
)

func TestCanariesRankedByRingHash(t *testing.T) {
	f, err := NewFleet(cloud.CC1(), chaos.Spec{}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Canaries(20)
	if len(got) != 2 { // ceil(20% of 10)
		t.Fatalf("canary size %d, want 2", len(got))
	}
	// The set must be the two lowest KeyHash("provider|name") containers —
	// the same placement function the scan ring partitions by.
	type ranked struct {
		hash uint64
		idx  int
	}
	var rs []ranked
	for i, c := range f.conts {
		rs = append(rs, ranked{cluster.KeyHash(f.provider + "|" + c.Name), i})
	}
	for _, idx := range got {
		below := 0
		for _, r := range rs {
			if r.hash < rs[idx].hash {
				below++
			}
		}
		if below >= 2 {
			t.Fatalf("container %d is not among the 2 lowest hashes", idx)
		}
	}
	// Deterministic and clamped.
	if !reflect.DeepEqual(got, f.Canaries(20)) {
		t.Fatal("canary selection not deterministic")
	}
	if n := len(f.Canaries(1)); n != 1 {
		t.Fatalf("1%% of 10 containers should clamp to 1 canary, got %d", n)
	}
	if n := len(f.Canaries(100)); n != 10 {
		t.Fatalf("100%% should select the whole fleet, got %d", n)
	}
}

// TestRolloutPromotes is the happy path: a correctly synthesized policy
// survives the canary epochs, promotes to the whole fleet, and ends with
// the channels closed and zero benign breakage.
func TestRolloutPromotes(t *testing.T) {
	pol, err := Synthesize(cloud.CC1(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(cloud.CC1(), chaos.Spec{}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	res, err := f.Rollout(pol, RolloutConfig{}, func(e Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase != PhaseDone {
		t.Fatalf("rollout ended in %s (reason %q), want done", res.Phase, res.Reason)
	}
	if res.CanarySize != 1 || res.FleetSize != 5 {
		t.Fatalf("canary/fleet = %d/%d, want 1/5", res.CanarySize, res.FleetSize)
	}
	if len(res.BenignFailures) != 0 {
		t.Fatalf("benign failures: %v", res.BenignFailures)
	}
	if res.ChannelsClosed == 0 {
		t.Fatal("rollout closed no channels")
	}
	if res.ChannelsLeaking > res.ChannelsClosed/9 { // ≥90% closure
		t.Fatalf("still leaking %d channels vs %d closed", res.ChannelsLeaking, res.ChannelsClosed)
	}
	// The event stream walks the state machine in order and stamps the
	// world's source epoch on every event.
	var phases []Phase
	var lastEpoch uint64
	for _, e := range events {
		if e.Channel == "" {
			phases = append(phases, e.Phase)
		}
		if e.Epoch < lastEpoch {
			t.Fatalf("event epoch went backwards: %d after %d", e.Epoch, lastEpoch)
		}
		lastEpoch = e.Epoch
	}
	want := []Phase{PhaseCanary, PhasePromoting, PhaseDone}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("phase transitions %v, want %v", phases, want)
	}
	// Verdict flips were observed: at least one channel changed from its
	// leaking baseline during the canary watch.
	sawFlip := false
	for _, e := range events {
		if e.Channel != "" && e.Changed {
			sawFlip = true
			if e.Previous == "" {
				t.Fatalf("changed verdict for %s missing previous value", e.Channel)
			}
		}
	}
	if !sawFlip {
		t.Fatal("no verdict change observed during rollout")
	}
}

// TestRolloutAutoRollback injects a policy that denies a pseudo-file every
// benign workload needs at startup; the first canary health check must
// catch the breakage, revert the canaries, and end in rolled_back.
func TestRolloutAutoRollback(t *testing.T) {
	bad := Policy{
		Provider: "cc1",
		Seed:     DefaultSeed,
		Rules: []Rule{
			{Pattern: "/proc/cpuinfo", Action: ActionDeny, Channel: "/proc/cpuinfo"},
		},
	}
	f, err := NewFleet(cloud.CC1(), chaos.Spec{}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	res, err := f.Rollout(bad, RolloutConfig{}, func(e Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase != PhaseRolledBack {
		t.Fatalf("rollout ended in %s, want rolled_back", res.Phase)
	}
	if len(res.BenignFailures) == 0 || res.BenignFailures[0] != "/proc/cpuinfo" {
		t.Fatalf("benign failures %v, want [/proc/cpuinfo ...]", res.BenignFailures)
	}
	if res.Reason == "" {
		t.Fatal("rollback carries no reason")
	}
	if res.Epochs != 1 {
		t.Fatalf("rollback after %d epochs, want 1 (first health check)", res.Epochs)
	}
	// Rollback restored the creation-time policy: the broken path reads
	// again in every container.
	for i, c := range f.conts {
		if _, err := c.ReadFile("/proc/cpuinfo"); err != nil {
			t.Fatalf("container %d still broken after rollback: %v", i, err)
		}
	}
	last := events[len(events)-1]
	if last.Phase != PhaseRolledBack || last.Reason == "" {
		t.Fatalf("final event %+v, want rolled_back with reason", last)
	}
}

// TestRolloutUnderChaos: transient faults must not trip the rollback — the
// capture retries absorb them, and a good policy still promotes.
func TestRolloutUnderChaos(t *testing.T) {
	pol, err := Synthesize(cloud.CC1(), 0, Options{Chaos: chaos.Spec{Rate: 0.02, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(cloud.CC1(), chaos.Spec{Rate: 0.02, Seed: 5}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Rollout(pol, RolloutConfig{Workers: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase != PhaseDone {
		t.Fatalf("chaos rollout ended in %s (reason %q, failures %v), want done",
			res.Phase, res.Reason, res.BenignFailures)
	}
}
