package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
)

// ChannelOutcome is one channel's verdict flip under a verified policy.
type ChannelOutcome struct {
	Channel string `json:"channel"`
	// Before/After are Table I availability glyphs (● ◐ ○).
	Before string `json:"before"`
	After  string `json:"after"`
	// Closed means the channel leaked at baseline and reads ○ under the
	// policy — the only transition that counts as closure.
	Closed bool `json:"closed"`
}

// Report is the outcome of verifying one policy against its provider
// world: per-channel verdict flips plus the benign-breakage check.
type Report struct {
	Provider      string  `json:"provider"`
	Seed          int64   `json:"seed"`
	Rules         int     `json:"rules"`
	ChannelsTotal int     `json:"channels_total"`
	LeakingBefore int     `json:"leaking_before"`
	Closed        int     `json:"closed"`
	Closure       float64 `json:"closure"`
	// BenignFailures lists paths the benign suite read successfully at
	// baseline but can no longer read under the policy. A correct
	// synthesis keeps this empty; the canary controller rolls back on the
	// first entry.
	BenignFailures []string         `json:"benign_failures,omitempty"`
	Channels       []ChannelOutcome `json:"channels"`
}

// Verify checks a policy against a fresh provider world built from the
// same seed: the probe is cross-validated before and after the policy is
// applied (a channel is closed iff its verdict flips to ○), and the benign
// suite replays under the policy (every read that succeeded at baseline
// must still succeed). The world is frozen between the two passes, so the
// comparison isolates the policy — and the whole report is
// byte-deterministic for fixed inputs.
func Verify(p cloud.ProviderProfile, pol Policy, seed int64, opts Options) (Report, error) {
	if seed == 0 {
		seed = DefaultSeed
	}
	rules, err := pol.PseudoRules()
	if err != nil {
		return Report{}, err
	}
	w, err := newWorld(p, opts.Chaos, seed, opts.containers())
	if err != nil {
		return Report{}, err
	}
	eng := engine.New(w.srv.HostMount())
	channels := core.TableIChannels()
	before := core.RollUp(channels, eng.ValidateWorkers(w.probe.Mount(), opts.workers()))
	baseline := w.mine(p.Name, seed, opts.workers())

	w.probe.ApplyPolicy(pol.Name(), rules)
	for _, c := range w.tenants {
		c.ApplyPolicy(pol.Name(), rules)
	}
	after := core.RollUp(channels, eng.ValidateWorkers(w.probe.Mount(), opts.workers()))
	replay := w.mine(p.Name, seed, opts.workers())

	rep := Report{
		Provider:      p.Name,
		Seed:          seed,
		Rules:         len(pol.Rules),
		ChannelsTotal: len(channels),
	}
	for i, b := range before {
		a := after[i]
		out := ChannelOutcome{
			Channel: b.Channel.Name,
			Before:  b.Availability.String(),
			After:   a.Availability.String(),
		}
		if b.Availability != core.Unavailable {
			rep.LeakingBefore++
			if a.Availability == core.Unavailable {
				out.Closed = true
				rep.Closed++
			}
		}
		rep.Channels = append(rep.Channels, out)
	}
	if rep.LeakingBefore > 0 {
		rep.Closure = float64(rep.Closed) / float64(rep.LeakingBefore)
	} else {
		rep.Closure = 1
	}
	for path := range baseline.Benign {
		if replay.Benign[path] == 0 {
			rep.BenignFailures = append(rep.BenignFailures, path)
		}
	}
	sort.Strings(rep.BenignFailures)
	return rep, nil
}

// Generate is the full pipeline: synthesize a policy for the provider,
// then verify it in a fresh world from the same seed.
func Generate(p cloud.ProviderProfile, seed int64, opts Options) (Policy, Report, error) {
	pol, err := Synthesize(p, seed, opts)
	if err != nil {
		return Policy{}, Report{}, err
	}
	rep, err := Verify(p, pol, seed, opts)
	if err != nil {
		return Policy{}, Report{}, err
	}
	return pol, rep, nil
}

// String renders the report as the verification table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "POLICY VERIFICATION: %s (seed %#x, %d rules)\n", r.Provider, r.Seed, r.Rules)
	fmt.Fprintf(&b, "  closed %d of %d leaking channels (%.0f%%), benign failures: %d\n",
		r.Closed, r.LeakingBefore, r.Closure*100, len(r.BenignFailures))
	fmt.Fprintf(&b, "  %-36s %-6s %-6s %s\n", "Channel", "Before", "After", "Closed")
	for _, c := range r.Channels {
		mark := ""
		if c.Closed {
			mark = "✓"
		}
		fmt.Fprintf(&b, "  %-36s %-6s %-6s %s\n", c.Channel, c.Before, c.After, mark)
	}
	for _, p := range r.BenignFailures {
		fmt.Fprintf(&b, "  BROKEN benign read: %s\n", p)
	}
	return b.String()
}
