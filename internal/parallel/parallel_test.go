package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(workers, items, func(i, v int) (string, error) {
			return fmt.Sprintf("%d->%d", i, v*v), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(items) {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, s := range out {
			if want := fmt.Sprintf("%d->%d", i, i*i); s != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, s, want)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	items := make([]float64, 257)
	for i := range items {
		items[i] = float64(i) * 0.1
	}
	run := func(workers int) []float64 {
		out, err := Map(workers, items, func(i int, v float64) (float64, error) {
			return v*v + float64(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 7, 16} {
		par := run(w)
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", w, i, par[i], serial[i])
			}
		}
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 4} {
		out, err := Map(workers, items, func(i, v int) (int, error) {
			if v == 3 {
				return 0, fmt.Errorf("task %d: %w", v, boom)
			}
			return v, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: results must be discarded on error", workers)
		}
	}
}

func TestMapCancelsAfterFirstError(t *testing.T) {
	// With one worker, dispatch is strictly in order: the error at index 2
	// must prevent every later task from running at all.
	var ran atomic.Int64
	_, err := Map(1, []int{0, 1, 2, 3, 4, 5}, func(i, v int) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return v, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d tasks after cancellation, want 3", got)
	}
}

func TestMapPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, []int{0, 1, 2}, func(i, v int) (int, error) {
			if i == 1 {
				panic("kaboom")
			}
			return v, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 1 {
			t.Fatalf("workers=%d: panic index = %d, want 1", workers, pe.Index)
		}
		if !strings.Contains(pe.Error(), "kaboom") {
			t.Fatalf("workers=%d: panic error %q lacks value", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error lacks stack", workers)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int64{1, 2, 3, 4, 5}
	if err := ForEach(4, items, func(i int, v int64) error {
		sum.Add(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d, want 15", sum.Load())
	}
	if err := ForEach(4, items, func(i int, v int64) error {
		if v == 3 {
			return errors.New("nope")
		}
		return nil
	}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMapSettleRunsEverythingAndMarksFailures(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	for _, workers := range []int{1, 3} {
		var ran atomic.Int64
		out, errs := MapSettle(workers, items, func(i, v int) (int, error) {
			ran.Add(1)
			if v%2 == 1 {
				return 0, fmt.Errorf("odd %d", v)
			}
			if v == 4 {
				panic("four")
			}
			return v * 10, nil
		})
		if got := ran.Load(); got != int64(len(items)) {
			t.Fatalf("workers=%d: ran %d of %d tasks", workers, got, len(items))
		}
		for i, v := range items {
			switch {
			case v == 4:
				var pe *PanicError
				if !errors.As(errs[i], &pe) {
					t.Fatalf("workers=%d: errs[%d] = %v, want panic error", workers, i, errs[i])
				}
			case v%2 == 1:
				if errs[i] == nil {
					t.Fatalf("workers=%d: errs[%d] = nil, want error", workers, i)
				}
			default:
				if errs[i] != nil || out[i] != v*10 {
					t.Fatalf("workers=%d: out[%d]=%d errs[%d]=%v", workers, i, out[i], i, errs[i])
				}
			}
		}
		if err := FirstError(errs); err == nil || !strings.Contains(err.Error(), "odd 1") {
			t.Fatalf("workers=%d: FirstError = %v, want lowest-index failure", workers, err)
		}
	}
	if err := FirstError([]error{nil, nil}); err != nil {
		t.Fatalf("FirstError over successes = %v", err)
	}
}

func TestWorkersClamping(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	// On a GOMAXPROCS=1 host every multi-worker request degrades to the
	// serial fast path (no concurrency is possible, only fan-out overhead).
	wantWide := func(n int) int {
		if runtime.GOMAXPROCS(0) == 1 {
			return 1
		}
		return n
	}
	if got := Workers(5); got != wantWide(5) {
		t.Fatalf("Workers(5) = %d, want %d", got, wantWide(5))
	}
	if got := Workers(10 * MaxWorkers); got != wantWide(MaxWorkers) {
		t.Fatalf("Workers(big) = %d, want cap %d", got, wantWide(MaxWorkers))
	}
	if got := clampToTasks(16, 3); got != wantWide(3) {
		t.Fatalf("clampToTasks(16,3) = %d, want %d", got, wantWide(3))
	}
	if got := clampToTasks(2, 0); got != 1 {
		t.Fatalf("clampToTasks(2,0) = %d, want 1", got)
	}
}

func TestMapEmptyInput(t *testing.T) {
	out, err := Map(8, nil, func(i int, v struct{}) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}
