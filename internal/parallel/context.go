package parallel

import "context"

// Context-aware variants of the pool combinators. They obey the same
// determinism contract as their plain counterparts — a context that is
// never cancelled changes nothing about dispatch order or results — and
// add one property the long-running service layer (cmd/leaksd) needs:
// cancelling the context stops the pool from *dispatching* further tasks.
// Tasks already running finish their current item (worlds are
// share-nothing; there is no safe way to abort one mid-tick), so a
// cancelled sweep returns promptly after at most `workers` in-flight
// items complete, instead of orphaning a six-cloud inspection behind a
// dead HTTP client.
//
// Cancellation is reported as ctx.Err() (wrapped task errors win if a
// task failed first). Results computed before cancellation are discarded
// by MapCtx (matching Map's error semantics) and kept by MapSettleCtx
// with per-index ctx.Err() entries for the never-dispatched tail.

// MapCtx is Map with cooperative cancellation: before each task is
// dispatched the context is polled, and a cancelled context stops
// dispatch. fn receives the context so long tasks can poll it themselves.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(context.Context, int, T) (R, error)) ([]R, error) {
	out, err := Map(workers, items, func(i int, item T) (R, error) {
		if cerr := ctx.Err(); cerr != nil {
			var zero R
			return zero, cerr
		}
		return fn(ctx, i, item)
	})
	if err != nil {
		// Prefer the context error when cancellation raced a task error:
		// callers branch on errors.Is(err, context.Canceled) to distinguish
		// an aborted sweep from a broken one.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	return out, nil
}

// ForEachCtx is MapCtx without results.
func ForEachCtx[T any](ctx context.Context, workers int, items []T, fn func(context.Context, int, T) error) error {
	_, err := MapCtx(ctx, workers, items, func(ctx context.Context, i int, item T) (struct{}, error) {
		return struct{}{}, fn(ctx, i, item)
	})
	return err
}

// MapSettleCtx is MapSettle with cooperative cancellation: tasks
// dispatched before cancellation run to completion and keep their
// results; tasks reached after cancellation are skipped with ctx.Err()
// recorded at their index. Unlike MapSettle there *is* a way to stop the
// sweep early — but never a way to lose a finished task's result.
func MapSettleCtx[T, R any](ctx context.Context, workers int, items []T, fn func(context.Context, int, T) (R, error)) ([]R, []error) {
	return MapSettle(workers, items, func(i int, item T) (R, error) {
		if cerr := ctx.Err(); cerr != nil {
			var zero R
			return zero, cerr
		}
		return fn(ctx, i, item)
	})
}
