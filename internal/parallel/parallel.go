// Package parallel is the repository's deterministic fan-out layer: a
// dependency-free bounded worker pool with order-preserving Map/ForEach
// combinators, first-error cancellation, and panic capture.
//
// Every headline experiment in this reproduction is an embarrassingly
// parallel outer loop — one datacenter per cloud provider (Table I), one
// seeded world per sweep point (Fig. 3), one pseudo-file per
// cross-validation probe. This package fans those loops out across cores
// under a strict determinism contract:
//
//   - Inputs are dispatched by index from a single atomic cursor; outputs
//     are written to the result slot of the same index, so the output order
//     is always the input order regardless of completion order.
//   - Reductions over Map results must iterate the returned slice in order
//     (never accumulate inside workers), which keeps floating-point sums
//     bit-identical to the serial loop.
//   - Tasks must be share-nothing (their own world, their own RNG seeded
//     from the task index) or read-only over frozen state; see
//     ARCHITECTURE.md's "Concurrency & determinism contract".
//
// Under that contract, Map(1, …) and Map(8, …) produce byte-identical
// results — a property the differential tests in internal/experiments
// enforce for the paper's tables and figures.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers caps the pool size to keep goroutine fan-out bounded even on
// very wide hosts; sweeps in this repository have at most a few dozen
// independent tasks.
const MaxWorkers = 64

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0) (the -j default in the cmd/ binaries), and the
// result is clamped to [1, MaxWorkers].
func Workers(requested int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > MaxWorkers {
		w = MaxWorkers
	}
	// A pool wider than the scheduler can never run two tasks at once: on a
	// GOMAXPROCS=1 host every extra worker is pure fan-out overhead
	// (goroutine startup, cursor contention), which is how the "parallel"
	// benchmarks regressed below their serial twins on 1-CPU runners.
	// Degrade to the serial fast path; the determinism contract makes the
	// output byte-identical either way.
	if w > 1 && runtime.GOMAXPROCS(0) == 1 {
		w = 1
	}
	return w
}

// clampToTasks additionally bounds the pool by the number of tasks; a pool
// larger than the task count only burns goroutine startup.
func clampToTasks(workers, tasks int) int {
	w := Workers(workers)
	if tasks < 1 {
		return 1
	}
	if w > tasks {
		w = tasks
	}
	return w
}

// PanicError converts a worker panic into an ordinary error carrying the
// originating task index and the captured stack, so a panicking sweep point
// fails the sweep instead of crashing the process.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// call invokes fn(i, item) with panic capture.
func call[T, R any](i int, item T, fn func(int, T) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Index: i, Value: p, Stack: stack()}
		}
	}()
	return fn(i, item)
}

// stack returns the current goroutine's stack trace.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Map applies fn to every item on a bounded worker pool and returns the
// results in input order. Serial execution (workers == 1) runs in the
// calling goroutine with no pool at all, so the serial path is exactly the
// plain loop it replaces.
//
// On failure, Map cancels: tasks not yet dispatched are skipped, already
// running tasks complete, and the returned error is the failing error with
// the lowest task index among those that ran (with cancellation, *which*
// tasks ran can depend on scheduling; under the share-nothing contract each
// task's own error is deterministic). Results are discarded on error.
func Map[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return []R{}, nil
	}
	w := clampToTasks(workers, n)
	out := make([]R, n)
	if w == 1 {
		for i, item := range items {
			r, err := call(i, item, fn)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := call(i, items[i], fn)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ForEach is Map without results: it runs fn over every index on the pool
// with the same cancellation and panic-capture semantics.
func ForEach[T any](workers int, items []T, fn func(int, T) error) error {
	_, err := Map(workers, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}

// MapSettle applies fn to every item with no cancellation: all tasks run to
// completion (panics included, converted to *PanicError), and the per-index
// error slice reports each task's outcome. Use it for sweeps where one
// broken world must not kill the others — e.g. the six-cloud Table I
// inspection returning partial results with the failing provider marked.
func MapSettle[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, []error) {
	n := len(items)
	out := make([]R, n)
	errs := make([]error, n)
	if n == 0 {
		return out, errs
	}
	w := clampToTasks(workers, n)
	if w == 1 {
		for i, item := range items {
			out[i], errs[i] = call(i, item, fn)
		}
		return out, errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = call(i, items[i], fn)
			}
		}()
	}
	wg.Wait()
	return out, errs
}

// FirstError returns the lowest-index non-nil error of a MapSettle error
// slice, or nil when every task succeeded.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
