// Package fastrand provides a deterministic pseudo-random generator whose
// output stream is bit-identical to the standard library's
// math/rand.New(rand.NewSource(seed)) generator, but without interface
// dispatch or locking, and with all methods eligible for inlining into hot
// loops.
//
// # Why a replica instead of math/rand
//
// The simulation kernel draws roughly 850 jitter values per server tick; a
// Fig. 3 world performs on the order of 10^8 draws. Every one of those
// draws must reproduce math/rand's sequence exactly, because the values
// feed rendered pseudo-file counters that are covered by the repo's
// byte-identity contract. math/rand's *Rand routes every call through a
// Source64 interface and (for the default source) a mutex-free but
// devirtualization-hostile call chain. This package re-implements the same
// additive lagged-Fibonacci generator (x_i = x_{i-273} + x_{i-607} mod 2^64)
// as a concrete struct with value-receiver-free, branch-light methods.
//
// # Seeding without the cooked table
//
// math/rand seeds its 607-word state vector from an internal precomputed
// table (rngCooked) that is produced by ~7.8e12 warm-up iterations at
// package generation time; it is not practical to recompute and not
// exported. Instead of vendoring that table, New reconstructs the state
// through the public API: it creates rand.NewSource(seed) and draws 607
// Uint64 values. Because the generator's state is a sliding window over
// its own output, those 607 outputs ARE the full post-draw state: output
// i (0-based) lands at vec[(333-i) mod 607], and after exactly 607 draws
// the tap/feed indices return to their initial positions. New then runs
// the recurrence BACKWARD 607 steps (vec[feed] -= vec[tap]; advance
// indices) to recover the pre-draw state, so the replica's very first
// native draw is stdlib draw 0 and Uint64 needs no replay branch.
//
// Equivalence for every exported method is enforced by property tests in
// fastrand_test.go across seeds and interleaved method sequences.
//
// # Concurrency
//
// A *Rand is not safe for concurrent use. The simulation substrate gives
// each server its own generator and ticks servers on disjoint shards, so
// no sharing occurs (see ARCHITECTURE.md, "tick pipeline").
package fastrand

import "math/rand"

const (
	rngLen = 607
	rngTap = 273
)

// Rand is a drop-in, stream-identical replacement for
// *math/rand.Rand created via rand.New(rand.NewSource(seed)).
type Rand struct {
	tap  int32
	feed int32
	vec  [rngLen]uint64

	// readVal/readPos implement Read's 7-bytes-per-Int63 buffering,
	// mirroring math/rand.Rand exactly.
	readVal int64
	readPos int8
}

// New returns a generator whose stream is bit-identical to
// rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	src := rand.NewSource(seed).(rand.Source64)
	r := &Rand{}
	// Initial positions inside math/rand's rngSource after Seed():
	// tap = 0, feed = rngLen - rngTap = 334. Each Uint64() first
	// decrements both (wrapping), computes x = vec[feed] + vec[tap],
	// stores x at vec[feed] and returns it. So output i sits at index
	// (334 - 1 - i) mod 607 = (333 - i) mod 607, and after 607 outputs
	// tap/feed are back at 0/334 — the drawn window IS the state.
	for i := 0; i < rngLen; i++ {
		j := 333 - i
		if j < 0 {
			j += rngLen
		}
		r.vec[j] = src.Uint64()
	}
	// Undo the 607 draws to recover the pre-draw state. Reverse of a
	// forward step (with indices currently at post-step positions):
	// vec[feed] -= vec[tap], then advance tap and feed by one.
	tap, feed := 0, rngLen-rngTap
	for i := 0; i < rngLen; i++ {
		r.vec[feed] -= r.vec[tap]
		tap++
		if tap >= rngLen {
			tap -= rngLen
		}
		feed++
		if feed >= rngLen {
			feed -= rngLen
		}
	}
	r.tap = int32(tap)
	r.feed = int32(feed)
	return r
}

// Uint64 returns a pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	tap, feed := r.tap-1, r.feed-1
	if tap < 0 {
		tap += rngLen
	}
	if feed < 0 {
		feed += rngLen
	}
	x := r.vec[feed] + r.vec[tap]
	r.vec[feed] = x
	r.tap, r.feed = tap, feed
	return x
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() & (1<<63 - 1)) }

// Uint32 returns a pseudo-random 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Int63() >> 31) }

// Int31 returns a non-negative pseudo-random 31-bit integer.
func (r *Rand) Int31() int32 { return int32(r.Int63() >> 32) }

// Float64 returns a pseudo-random number in the half-open interval
// [0.0, 1.0), matching math/rand's retry-on-1.0 behavior exactly.
//
// The one-in-2^10 retry (float64(2^63-1) and neighbors round up to 2^63,
// so f==1 is reachable) lives in a separate method: keeping the loop out
// of this body keeps Float64 — and its callers like kernel.(*Kernel).jitter
// — within the compiler's inlining budget, which matters at ~850 draws per
// server tick.
func (r *Rand) Float64() float64 {
	// math/rand computes Int63() / 2^63; multiplying by the exactly
	// representable 2^-63 is bit-identical (scaling by a power of two is
	// exact, and no draw can reach the subnormal range) and trades the
	// ~4× slower FDIV for an FMUL.
	f := float64(r.Int63()) * (1.0 / (1 << 63))
	if f == 1 {
		return r.float64Retry()
	}
	return f
}

// float64Retry redraws until the scaled value is below 1. Split out of
// Float64 so the hot path has no loop (see Float64).
func (r *Rand) float64Retry() float64 {
	for {
		f := float64(r.Int63()) * (1.0 / (1 << 63))
		if f != 1 {
			return f
		}
	}
}

// FillFloat64 writes len(dst) consecutive Float64 draws into dst — the
// same values len(dst) Float64 calls would return, in the same order.
//
// The point is register residency: Float64 must commit tap/feed back to
// the struct after every draw (the compiler cannot keep fields cached
// across calls whose surroundings store to arbitrary memory), whereas this
// loop keeps both indices in locals for the whole block. Callers that
// consume a batch of draws with a fixed accumulation shape should prefer
// the fused AddScaledJitter/AddScaledJitter2, which skip the scratch
// buffer entirely; FillFloat64 is the general-purpose block primitive.
func (r *Rand) FillFloat64(dst []float64) {
	tap, feed := int(r.tap), int(r.feed)
	// The generator invariant keeps both indices inside the state vector;
	// asserting it once up front (it cannot fire on a Rand built by New)
	// lets the compiler's bounds-check elimination see that every vec
	// access below is in range instead of checking each of them per draw.
	if uint(tap) >= rngLen || uint(feed) >= rngLen {
		panic("fastrand: corrupt generator state")
	}
	for i := 0; i < len(dst); {
		tap--
		if tap < 0 {
			tap = rngLen - 1
		}
		feed--
		if feed < 0 {
			feed = rngLen - 1
		}
		x := r.vec[feed] + r.vec[tap]
		r.vec[feed] = x
		// Identical to Float64: Int63 scaling with retry-on-1.0. On the
		// one-in-2^10 f==1 draw, simply not advancing i redraws the slot.
		f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
		if f != 1 {
			dst[i] = f
			i++
		}
	}
	r.tap, r.feed = int32(tap), int32(feed)
}

// AddScaledJitter draws len(dst) consecutive Float64 values f and performs
//
//	dst[i] += scale * (1 + (f*2-1)*amp)
//
// consuming exactly the same stream positions as len(dst) Float64 calls.
// This is the simulation kernel's per-CPU jitter fan-out (the expression is
// kernel.jitter's body verbatim, with the row's common factor hoisted as
// scale); fusing the draw with the accumulate keeps the generator state in
// registers AND skips the scratch-buffer round trip a Fill-then-consume
// pair would cost — at ~600 fused draws per 24-core server tick the memory
// traffic is the difference that shows up in Fig. 3 sweeps.
func (r *Rand) AddScaledJitter(dst []float64, scale, amp float64) {
	tap, feed := int(r.tap), int(r.feed)
	if uint(tap) >= rngLen || uint(feed) >= rngLen {
		panic("fastrand: corrupt generator state")
	}
	// Chunked draw loop: between wraps both indices only decrement, so a
	// run of min(tap, feed) draws needs no wrap branches at all. The outer
	// loop handles the (rare) wrap step and any slots a retry left
	// unfilled; the inner loop is pure decrement/load/FMA traffic.
	i := 0
	for i < len(dst) {
		n := tap
		if feed < n {
			n = feed
		}
		if rem := len(dst) - i; n > rem {
			n = rem
		}
		if n <= 0 {
			// One draw with full wrap handling (an index at 0 wraps to
			// rngLen-1 because the decrement happens before use).
			tap--
			if tap < 0 {
				tap = rngLen - 1
			}
			feed--
			if feed < 0 {
				feed = rngLen - 1
			}
			x := r.vec[feed] + r.vec[tap]
			r.vec[feed] = x
			// Identical to Float64: Int63 scaling with retry-on-1.0; a
			// rejected draw simply doesn't advance i.
			f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
			if f != 1 {
				dst[i] += scale * (1 + (f*2-1)*amp)
				i++
			}
			continue
		}
		// Reslicing the two lag windows to exactly n elements lets the
		// compiler drop the per-draw vec bounds checks: m runs [0,n) over
		// slices of length n. The windows alias the same backing array at
		// the generator's tap distance, so writes at higher m are read back
		// at lower m exactly as the in-place form did.
		vt := r.vec[tap-n : tap][:n]
		vf := r.vec[feed-n : feed][:n]
		for m := n - 1; m >= 0; m-- {
			x := vf[m] + vt[m]
			vf[m] = x
			f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
			if f != 1 {
				dst[i] += scale * (1 + (f*2-1)*amp)
				i++
			}
		}
		tap -= n
		feed -= n
	}
	r.tap, r.feed = int32(tap), int32(feed)
}

// AddScaledJitter2 is the paired-stream variant of AddScaledJitter: for
// each index i it draws two consecutive Float64 values f1, f2 and performs
//
//	a[i] += scaleA * (1 + (f1*2-1)*amp)
//	b[i] += scaleB * (1 + (f2*2-1)*amp)
//
// consuming exactly the stream of 2·len(a) Float64 calls in a-then-b
// order. It panics if len(a) != len(b). The kernel's cpuidle residency
// update (usage entry count and time-in-state per CPU, two draws per CPU)
// is the intended caller.
func (r *Rand) AddScaledJitter2(a, b []float64, scaleA, scaleB, amp float64) {
	if len(a) != len(b) {
		panic("fastrand: AddScaledJitter2 slice length mismatch")
	}
	tap, feed := int(r.tap), int(r.feed)
	if uint(tap) >= rngLen || uint(feed) >= rngLen {
		panic("fastrand: corrupt generator state")
	}
	// Chunked like AddScaledJitter, with a two-phase accumulator: phase 0
	// holds the pending usage draw (f1) until phase 1 completes the pair
	// and commits both accumulates in a-then-b order. The chunk budget n
	// counts DRAWS (not pairs), so a mid-chunk retry can never overrun the
	// wrap-free run.
	i := 0
	phase := 0
	var f1 float64
	for i < len(a) {
		n := tap
		if feed < n {
			n = feed
		}
		if rem := 2*(len(a)-i) - phase; n > rem {
			n = rem
		}
		if n <= 0 {
			tap--
			if tap < 0 {
				tap = rngLen - 1
			}
			feed--
			if feed < 0 {
				feed = rngLen - 1
			}
			x := r.vec[feed] + r.vec[tap]
			r.vec[feed] = x
			f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
			if f == 1 {
				continue // retry: redraw the same phase
			}
			if phase == 0 {
				f1, phase = f, 1
			} else {
				a[i] += scaleA * (1 + (f1*2-1)*amp)
				b[i] += scaleB * (1 + (f*2-1)*amp)
				i++
				phase = 0
			}
			continue
		}
		// Resliced lag windows as in AddScaledJitter: bounds-check-free
		// draws, aliasing preserved through the shared backing array.
		vt := r.vec[tap-n : tap][:n]
		vf := r.vec[feed-n : feed][:n]
		for m := n - 1; m >= 0; m-- {
			x := vf[m] + vt[m]
			vf[m] = x
			f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
			if f == 1 {
				continue
			}
			if phase == 0 {
				f1, phase = f, 1
			} else {
				a[i] += scaleA * (1 + (f1*2-1)*amp)
				b[i] += scaleB * (1 + (f*2-1)*amp)
				i++
				phase = 0
			}
		}
		tap -= n
		feed -= n
	}
	r.tap, r.feed = int32(tap), int32(feed)
}

// AddScaledJitterRows is the row-batched form of AddScaledJitter over a
// struct-of-arrays block: dst holds len(scales) consecutive rows of cols
// elements each (len(dst) == cols*len(scales)), and row r receives
//
//	dst[r*cols+c] += scales[r] * (1 + (f*2-1)*amp)
//
// with draws consumed in row-major order — exactly the stream of
// len(scales) sequential AddScaledJitter calls, one per row. Fusing the
// rows into one call keeps tap/feed in registers across the whole block
// (a per-row call must commit them to memory between rows) and turns the
// kernel tick's widest fan-out — 17 interrupt/softirq rows per server —
// into a single pass over one contiguous backing array.
func (r *Rand) AddScaledJitterRows(dst []float64, cols int, scales []float64, amp float64) {
	if len(dst) != cols*len(scales) {
		panic("fastrand: AddScaledJitterRows rows/cols mismatch")
	}
	tap, feed := int(r.tap), int(r.feed)
	if uint(tap) >= rngLen || uint(feed) >= rngLen {
		panic("fastrand: corrupt generator state")
	}
	i := 0
	for row := 0; row < len(scales); row++ {
		scale := scales[row]
		end := i + cols
		for i < end {
			n := tap
			if feed < n {
				n = feed
			}
			if rem := end - i; n > rem {
				n = rem
			}
			if n <= 0 {
				tap--
				if tap < 0 {
					tap = rngLen - 1
				}
				feed--
				if feed < 0 {
					feed = rngLen - 1
				}
				x := r.vec[feed] + r.vec[tap]
				r.vec[feed] = x
				f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
				if f != 1 {
					dst[i] += scale * (1 + (f*2-1)*amp)
					i++
				}
				continue
			}
			// Resliced lag windows as in AddScaledJitter: bounds-check-free
			// draws, aliasing preserved through the shared backing array.
			// The destination window is pre-sliced to n too, and the loop
			// runs optimistically: with no retry, draw n-1-j lands in d[j],
			// a pure induction-variable pairing the compiler proves in
			// bounds on both sides. A retry (probability ~2^-54 per draw)
			// breaks out with the stream position reconciled and lets the
			// outer loop re-chunk — same draws, same order, same sums.
			vt := r.vec[tap-n : tap][:n]
			vf := r.vec[feed-n : feed][:n]
			d := dst[i : i+n][:n]
			j := 0
			for ; j < n; j++ {
				m := n - 1 - j
				x := vf[m] + vt[m]
				vf[m] = x
				f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
				if f == 1 {
					break
				}
				d[j] += scale * (1 + (f*2-1)*amp)
			}
			if j == n {
				i += n
				tap -= n
				feed -= n
				continue
			}
			// Retry at draw j: that draw advanced the lag window but filled
			// no slot; j slots were filled before it.
			i += j
			tap -= j + 1
			feed -= j + 1
		}
	}
	r.tap, r.feed = int32(tap), int32(feed)
}

// AddScaledJitter2Rows is the row-batched form of AddScaledJitter2: ab
// holds len(scaleA) row *pairs* — for pair p, an "a" row at ab[(2p)*cols:]
// and a "b" row at ab[(2p+1)*cols:] — and each column of each pair draws
// two consecutive values f1, f2:
//
//	a[c] += scaleA[p] * (1 + (f1*2-1)*amp)
//	b[c] += scaleB[p] * (1 + (f2*2-1)*amp)
//
// consuming exactly the stream of len(scaleA) sequential AddScaledJitter2
// calls. The kernel's cpuidle update (4 C-states × usage/time rows) is the
// intended caller.
func (r *Rand) AddScaledJitter2Rows(ab []float64, cols int, scaleA, scaleB []float64, amp float64) {
	if len(scaleA) != len(scaleB) {
		panic("fastrand: AddScaledJitter2Rows scale length mismatch")
	}
	if len(ab) != 2*cols*len(scaleA) {
		panic("fastrand: AddScaledJitter2Rows rows/cols mismatch")
	}
	tap, feed := int(r.tap), int(r.feed)
	if uint(tap) >= rngLen || uint(feed) >= rngLen {
		panic("fastrand: corrupt generator state")
	}
	for p := 0; p < len(scaleA); p++ {
		a := ab[2*p*cols : (2*p+1)*cols]
		b := ab[(2*p+1)*cols : (2*p+2)*cols]
		sa, sb := scaleA[p], scaleB[p]
		i := 0
		phase := 0
		var f1 float64
		for i < cols {
			n := tap
			if feed < n {
				n = feed
			}
			if rem := 2*(cols-i) - phase; n > rem {
				n = rem
			}
			if n <= 0 {
				tap--
				if tap < 0 {
					tap = rngLen - 1
				}
				feed--
				if feed < 0 {
					feed = rngLen - 1
				}
				x := r.vec[feed] + r.vec[tap]
				r.vec[feed] = x
				f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
				if f == 1 {
					continue
				}
				if phase == 0 {
					f1, phase = f, 1
				} else {
					a[i] += sa * (1 + (f1*2-1)*amp)
					b[i] += sb * (1 + (f*2-1)*amp)
					i++
					phase = 0
				}
				continue
			}
			// Resliced lag windows as in AddScaledJitter: bounds-check-free
			// draws, aliasing preserved through the shared backing array.
			vt := r.vec[tap-n : tap][:n]
			vf := r.vec[feed-n : feed][:n]
			for m := n - 1; m >= 0; m-- {
				x := vf[m] + vt[m]
				vf[m] = x
				f := float64(int64(x&(1<<63-1))) * (1.0 / (1 << 63))
				if f == 1 {
					continue
				}
				if phase == 0 {
					f1, phase = f, 1
				} else {
					a[i] += sa * (1 + (f1*2-1)*amp)
					b[i] += sb * (1 + (f*2-1)*amp)
					i++
					phase = 0
				}
			}
			tap -= n
			feed -= n
		}
	}
	r.tap, r.feed = int32(tap), int32(feed)
}

// State is an opaque copy of a generator's full stream position — the
// 607-word lag window, the tap/feed indices, and Read's byte buffer. It is
// a plain value: assignment copies it, and no aliasing ties it to the Rand
// it came from. Snapshot/Restore of simulated worlds capture RNG stream
// positions with it.
type State struct {
	r Rand
}

// Save captures the generator's complete state.
func (r *Rand) Save() State { return State{r: *r} }

// Restore rewinds the generator to a previously saved state. The next draw
// after Restore returns exactly what the next draw after Save would have.
func (r *Rand) Restore(s State) { *r = s.r }

// Int31n returns a non-negative pseudo-random number in [0,n).
// It panics if n <= 0. The rejection-sampling structure matches
// math/rand exactly so the consumed stream is identical.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("invalid argument to Int31n")
	}
	if n&(n-1) == 0 { // n is power of two
		return r.Int31() & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	v := r.Int31()
	for v > max {
		v = r.Int31()
	}
	return v % n
}

// Int63n returns a non-negative pseudo-random number in [0,n).
// It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("invalid argument to Int63n")
	}
	if n&(n-1) == 0 { // n is power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Intn returns a non-negative pseudo-random number in [0,n).
// It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(r.Int31n(int32(n)))
	}
	return int(r.Int63n(int64(n)))
}

// Perm returns, as a slice of n ints, a pseudo-random permutation of
// the integers in the half-open interval [0,n).
func (r *Rand) Perm(n int) []int {
	m := make([]int, n)
	// Matches math/rand.(*Rand).Perm: in-loop Fisher-Yates with
	// Intn(i+1) draws starting at i=0.
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// Read generates len(p) random bytes and writes them into p. It always
// returns len(p) and a nil error. The byte stream matches
// math/rand.(*Rand).Read for the same seed and call sequence.
func (r *Rand) Read(p []byte) (n int, err error) {
	pos := r.readPos
	val := r.readVal
	for n = 0; n < len(p); n++ {
		if pos == 0 {
			val = r.Int63()
			pos = 7
		}
		p[n] = byte(val)
		val >>= 8
		pos--
	}
	r.readPos = pos
	r.readVal = val
	return
}
