package fastrand

import (
	"bytes"
	"math/rand"
	"testing"
)

// The whole point of this package is bit-exact equivalence with
// math/rand.New(rand.NewSource(seed)). Every test here compares the
// replica against the stdlib generator method-for-method.

var seeds = []int64{0, 1, 2, 42, -1, 1362, 2026, 0x1ea4, 1 << 40, -987654321}

func TestUint64Equivalence(t *testing.T) {
	for _, seed := range seeds {
		std := rand.New(rand.NewSource(seed))
		fr := New(seed)
		// Cross the 607-draw replay boundary several times.
		for i := 0; i < 4*607; i++ {
			want := std.Uint64()
			got := fr.Uint64()
			if got != want {
				t.Fatalf("seed %d draw %d: Uint64 = %#x, want %#x", seed, i, got, want)
			}
		}
	}
}

func TestScalarMethodEquivalence(t *testing.T) {
	for _, seed := range seeds {
		std := rand.New(rand.NewSource(seed))
		fr := New(seed)
		for i := 0; i < 2000; i++ {
			switch i % 5 {
			case 0:
				if g, w := fr.Int63(), std.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, g, w)
				}
			case 1:
				if g, w := fr.Float64(), std.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, g, w)
				}
			case 2:
				if g, w := fr.Int31(), std.Int31(); g != w {
					t.Fatalf("seed %d draw %d: Int31 = %d, want %d", seed, i, g, w)
				}
			case 3:
				if g, w := fr.Uint32(), std.Uint32(); g != w {
					t.Fatalf("seed %d draw %d: Uint32 = %d, want %d", seed, i, g, w)
				}
			case 4:
				if g, w := fr.Uint64(), std.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, g, w)
				}
			}
		}
	}
}

func TestBoundedEquivalence(t *testing.T) {
	ns := []int{1, 2, 3, 7, 8, 24, 100, 1 << 10, 1<<31 - 1, 1 << 32, 1<<62 + 3}
	for _, seed := range seeds {
		std := rand.New(rand.NewSource(seed))
		fr := New(seed)
		for i := 0; i < 1500; i++ {
			n := ns[i%len(ns)]
			if g, w := fr.Intn(n), std.Intn(n); g != w {
				t.Fatalf("seed %d draw %d: Intn(%d) = %d, want %d", seed, i, n, g, w)
			}
		}
	}
	for _, seed := range seeds {
		std := rand.New(rand.NewSource(seed))
		fr := New(seed)
		for i := 0; i < 500; i++ {
			if g, w := fr.Int31n(int32(3+i)), std.Int31n(int32(3+i)); g != w {
				t.Fatalf("seed %d draw %d: Int31n = %d, want %d", seed, i, g, w)
			}
			if g, w := fr.Int63n(int64(5+i)*7919), std.Int63n(int64(5+i)*7919); g != w {
				t.Fatalf("seed %d draw %d: Int63n = %d, want %d", seed, i, g, w)
			}
		}
	}
}

func TestReadEquivalence(t *testing.T) {
	for _, seed := range seeds {
		std := rand.New(rand.NewSource(seed))
		fr := New(seed)
		// Mixed-size reads exercise the 7-byte carry buffer, including
		// interleaving with scalar draws (which, like stdlib, do NOT
		// reset the carry in math/rand? They don't touch readVal/readPos;
		// stdlib keeps them until the next Seed. We mirror that.)
		sizes := []int{1, 3, 7, 8, 13, 16, 64, 5}
		for i, sz := range sizes {
			wantB := make([]byte, sz)
			gotB := make([]byte, sz)
			std.Read(wantB)
			fr.Read(gotB)
			if !bytes.Equal(gotB, wantB) {
				t.Fatalf("seed %d read %d (size %d): got %x want %x", seed, i, sz, gotB, wantB)
			}
		}
	}
}

func TestPermEquivalence(t *testing.T) {
	for _, seed := range seeds {
		std := rand.New(rand.NewSource(seed))
		fr := New(seed)
		for _, n := range []int{0, 1, 2, 5, 24, 100} {
			want := std.Perm(n)
			got := fr.Perm(n)
			if len(got) != len(want) {
				t.Fatalf("seed %d: Perm(%d) len mismatch", seed, n)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: Perm(%d)[%d] = %d, want %d", seed, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestInterleavedEquivalence drives both generators with the same
// pseudo-randomly chosen method sequence — the strongest guarantee that
// no method consumes a different number of underlying draws.
func TestInterleavedEquivalence(t *testing.T) {
	chooser := rand.New(rand.NewSource(7))
	for _, seed := range seeds {
		std := rand.New(rand.NewSource(seed))
		fr := New(seed)
		buf1 := make([]byte, 11)
		buf2 := make([]byte, 11)
		for i := 0; i < 3000; i++ {
			switch chooser.Intn(6) {
			case 0:
				if fr.Uint64() != std.Uint64() {
					t.Fatalf("seed %d step %d: Uint64 diverged", seed, i)
				}
			case 1:
				if fr.Float64() != std.Float64() {
					t.Fatalf("seed %d step %d: Float64 diverged", seed, i)
				}
			case 2:
				n := 1 + chooser.Intn(1000)
				if fr.Intn(n) != std.Intn(n) {
					t.Fatalf("seed %d step %d: Intn diverged", seed, i)
				}
			case 3:
				if fr.Int63() != std.Int63() {
					t.Fatalf("seed %d step %d: Int63 diverged", seed, i)
				}
			case 4:
				std.Read(buf1)
				fr.Read(buf2)
				if !bytes.Equal(buf1, buf2) {
					t.Fatalf("seed %d step %d: Read diverged", seed, i)
				}
			case 5:
				n := int64(3 + chooser.Intn(1<<20))
				if fr.Int63n(n) != std.Int63n(n) {
					t.Fatalf("seed %d step %d: Int63n diverged", seed, i)
				}
			}
		}
	}
}

func TestFillFloat64Equivalence(t *testing.T) {
	for _, seed := range seeds {
		fr := New(seed)
		std := rand.New(rand.NewSource(seed))
		// Interleave block fills of varying sizes (including 0 and 1)
		// with scalar draws: the block must consume exactly the same
		// stream positions as the equivalent Float64 calls.
		for _, n := range []int{0, 1, 3, 8, 64, 2, 607, 13, 1000} {
			buf := make([]float64, n)
			fr.FillFloat64(buf)
			for i, v := range buf {
				if want := std.Float64(); v != want {
					t.Fatalf("seed %d block %d index %d: got %v want %v", seed, n, i, v, want)
				}
			}
			if got, want := fr.Float64(), std.Float64(); got != want {
				t.Fatalf("seed %d after block %d: scalar draw diverged (got %v want %v)", seed, n, got, want)
			}
		}
	}
}

func TestAddScaledJitterEquivalence(t *testing.T) {
	for _, seed := range seeds {
		fr := New(seed)
		std := rand.New(rand.NewSource(seed))
		for _, n := range []int{0, 1, 8, 24, 3, 607, 100} {
			scale, amp := 3.25, 0.1
			got := make([]float64, n)
			want := make([]float64, n)
			for i := range got {
				got[i] = float64(i) * 0.5 // non-zero accumulators
				want[i] = float64(i) * 0.5
			}
			fr.AddScaledJitter(got, scale, amp)
			for i := range want {
				want[i] += scale * (1 + (std.Float64()*2-1)*amp)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d n %d index %d: got %v want %v", seed, n, i, got[i], want[i])
				}
			}
			// Stream positions must line up afterwards too.
			if g, w := fr.Float64(), std.Float64(); g != w {
				t.Fatalf("seed %d after n %d: scalar draw diverged", seed, n)
			}
		}
	}
}

func TestAddScaledJitter2Equivalence(t *testing.T) {
	for _, seed := range seeds {
		fr := New(seed)
		std := rand.New(rand.NewSource(seed))
		for _, n := range []int{0, 1, 8, 24, 304, 5} {
			sa, sb, amp := 0.75, 1.5e6, 0.05
			gotA := make([]float64, n)
			gotB := make([]float64, n)
			wantA := make([]float64, n)
			wantB := make([]float64, n)
			for i := 0; i < n; i++ {
				gotA[i], wantA[i] = 2.0, 2.0
				gotB[i], wantB[i] = 7.0, 7.0
			}
			fr.AddScaledJitter2(gotA, gotB, sa, sb, amp)
			for i := 0; i < n; i++ {
				wantA[i] += sa * (1 + (std.Float64()*2-1)*amp)
				wantB[i] += sb * (1 + (std.Float64()*2-1)*amp)
			}
			for i := 0; i < n; i++ {
				if gotA[i] != wantA[i] || gotB[i] != wantB[i] {
					t.Fatalf("seed %d n %d index %d: got (%v,%v) want (%v,%v)",
						seed, n, i, gotA[i], gotB[i], wantA[i], wantB[i])
				}
			}
			if g, w := fr.Float64(), std.Float64(); g != w {
				t.Fatalf("seed %d after n %d: scalar draw diverged", seed, n)
			}
		}
	}
}

func BenchmarkStdlibFloat64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Float64()
	}
	_ = s
}

func BenchmarkFastrandFloat64(b *testing.B) {
	r := New(1)
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Float64()
	}
	_ = s
}

func TestAddScaledJitterRowsEquivalence(t *testing.T) {
	for _, seed := range seeds {
		fr := New(seed)
		std := rand.New(rand.NewSource(seed))
		for _, shape := range []struct{ rows, cols int }{
			{0, 8}, {1, 1}, {1, 24}, {17, 24}, {5, 3}, {3, 607}, {2, 304},
		} {
			scales := make([]float64, shape.rows)
			for i := range scales {
				scales[i] = 0.5 + float64(i)*1.75
			}
			got := make([]float64, shape.rows*shape.cols)
			want := make([]float64, shape.rows*shape.cols)
			for i := range got {
				got[i] = float64(i) * 0.25
				want[i] = got[i]
			}
			fr.AddScaledJitterRows(got, shape.cols, scales, 0.1)
			for r := 0; r < shape.rows; r++ {
				for c := 0; c < shape.cols; c++ {
					want[r*shape.cols+c] += scales[r] * (1 + (std.Float64()*2-1)*0.1)
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d shape %dx%d index %d: got %v want %v",
						seed, shape.rows, shape.cols, i, got[i], want[i])
				}
			}
			if g, w := fr.Float64(), std.Float64(); g != w {
				t.Fatalf("seed %d after %dx%d: scalar draw diverged", seed, shape.rows, shape.cols)
			}
		}
	}
}

func TestAddScaledJitter2RowsEquivalence(t *testing.T) {
	for _, seed := range seeds {
		fr := New(seed)
		std := rand.New(rand.NewSource(seed))
		for _, shape := range []struct{ pairs, cols int }{
			{0, 8}, {1, 1}, {4, 24}, {2, 307}, {3, 5},
		} {
			scaleA := make([]float64, shape.pairs)
			scaleB := make([]float64, shape.pairs)
			for i := range scaleA {
				scaleA[i] = 0.75 + float64(i)
				scaleB[i] = 1.5e6 / float64(i+1)
			}
			got := make([]float64, 2*shape.pairs*shape.cols)
			want := make([]float64, len(got))
			for i := range got {
				got[i] = 3.0 + float64(i)
				want[i] = got[i]
			}
			fr.AddScaledJitter2Rows(got, shape.cols, scaleA, scaleB, 0.05)
			for p := 0; p < shape.pairs; p++ {
				a := want[(2*p)*shape.cols : (2*p+1)*shape.cols]
				b := want[(2*p+1)*shape.cols : (2*p+2)*shape.cols]
				for c := 0; c < shape.cols; c++ {
					a[c] += scaleA[p] * (1 + (std.Float64()*2-1)*0.05)
					b[c] += scaleB[p] * (1 + (std.Float64()*2-1)*0.05)
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d shape %dx%d index %d: got %v want %v",
						seed, shape.pairs, shape.cols, i, got[i], want[i])
				}
			}
			if g, w := fr.Float64(), std.Float64(); g != w {
				t.Fatalf("seed %d after %dx%d: scalar draw diverged", seed, shape.pairs, shape.cols)
			}
		}
	}
}

// TestSaveRestoreStreamIdentity pins the snapshot contract: the draw stream
// after Restore replays exactly the stream after Save, across every method
// class (scalars, bounded, Read's byte carry, and the fused block kernels),
// and a single State can be restored any number of times.
func TestSaveRestoreStreamIdentity(t *testing.T) {
	chooser := rand.New(rand.NewSource(11))
	drain := func(r *Rand, n int) []uint64 {
		out := make([]uint64, 0, 4*n)
		buf := make([]byte, 9)
		block := make([]float64, 13)
		for i := 0; i < n; i++ {
			switch chooser.Intn(5) {
			case 0:
				out = append(out, r.Uint64())
			case 1:
				out = append(out, uint64(r.Intn(1000)))
			case 2:
				r.Read(buf)
				for _, b := range buf {
					out = append(out, uint64(b))
				}
			case 3:
				r.FillFloat64(block)
				for _, f := range block {
					out = append(out, uint64(f*1e18))
				}
			case 4:
				for i := range block {
					block[i] = 0
				}
				r.AddScaledJitterRows(block, 13, []float64{2.5}, 0.1)
				for _, f := range block {
					out = append(out, uint64(f*1e18))
				}
			}
		}
		return out
	}
	for _, seed := range seeds {
		r := New(seed)
		// Move to a mid-stream position (including a partial Read carry).
		r.Read(make([]byte, 5))
		r.Uint64()
		s := r.Save()
		chooser.Seed(int64(seed) ^ 0x5a5a)
		want := drain(r, 200)
		for attempt := 0; attempt < 3; attempt++ {
			r.Restore(s)
			chooser.Seed(int64(seed) ^ 0x5a5a)
			got := drain(r, 200)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d restore %d: stream diverged at draw %d", seed, attempt, i)
				}
			}
		}
	}
}
