package power

// Snapshot/Restore support for the world snapshot machinery: the meter and
// governor are pure state machines (no RNG), so a capture is a plain value
// copy of their mutable fields. Configs are immutable after New and are not
// captured; Restore must be applied to the same instance (or one built from
// the same config).

// MeterState is a point-in-time capture of a Meter.
type MeterState struct {
	energyUJ [4]float64
	lastW    [4]float64
	tempC    []float64
	limitW   float64
}

// Snapshot captures the meter's mutable state.
func (m *Meter) Snapshot() MeterState {
	return MeterState{
		energyUJ: m.energyUJ,
		lastW:    m.lastW,
		tempC:    append([]float64(nil), m.tempC...),
		limitW:   m.limitW,
	}
}

// Restore rewinds the meter to the captured state.
func (m *Meter) Restore(s MeterState) {
	m.energyUJ = s.energyUJ
	m.lastW = s.lastW
	copy(m.tempC, s.tempC)
	m.limitW = s.limitW
}

// GovernorState is a point-in-time capture of a Governor.
type GovernorState struct {
	cur        []float64
	kHz        []uint64
	trans      []uint64
	totalTrans uint64
}

// Snapshot captures the governor's mutable state.
func (g *Governor) Snapshot() GovernorState {
	return GovernorState{
		cur:        append([]float64(nil), g.cur...),
		kHz:        append([]uint64(nil), g.kHz...),
		trans:      append([]uint64(nil), g.trans...),
		totalTrans: g.totalTrans,
	}
}

// Restore rewinds the governor to the captured state.
func (g *Governor) Restore(s GovernorState) {
	copy(g.cur, s.cur)
	copy(g.kHz, s.kHz)
	copy(g.trans, s.trans)
	g.totalTrans = s.totalTrans
}
