package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/perfcount"
)

// busyRates is a plausible all-core compute-bound activity vector.
func busyRates() perfcount.Rates {
	return perfcount.Rates{
		Instructions: 2.4e10, // 8 cores × 3 GIPS
		Cycles:       2.72e10,
		CacheMisses:  4e7,
		CacheRefs:    8e8,
		BranchMisses: 1.2e8,
		BranchRefs:   4.8e9,
	}
}

func TestDomainString(t *testing.T) {
	if Package.String() != "package" || Core.String() != "core" || DRAM.String() != "dram" {
		t.Fatal("domain names wrong")
	}
	if Domain(99).String() == "" {
		t.Fatal("unknown domain should still print")
	}
}

func TestIdlePowerIsFloor(t *testing.T) {
	m := New(Config{})
	m.Step(perfcount.Rates{}, 1, nil)
	idle := m.Power(Package)
	want := m.Config().IdleCoreW + m.Config().IdleDRAMW + m.Config().UncoreW
	if math.Abs(idle-want) > 0.5 {
		t.Fatalf("idle package power = %g, want ≈ %g", idle, want)
	}
	if m.WallPower() <= idle {
		t.Fatal("wall power must include platform overhead")
	}
}

func TestBusyPowerExceedsIdleAndIsPlausible(t *testing.T) {
	m := New(Config{})
	m.Step(busyRates(), 1, nil)
	p := m.Power(Package)
	if p < 30 || p > 120 {
		t.Fatalf("busy package power = %g W, want a plausible 30–120 W", p)
	}
	if m.Power(Core) <= 0 || m.Power(DRAM) <= 0 {
		t.Fatal("domain powers must be positive")
	}
	if got := m.Power(Core) + m.Power(DRAM) + m.Config().UncoreW; math.Abs(got-p) > 1e-9 {
		t.Fatalf("package (%g) != core+dram+uncore (%g)", p, got)
	}
}

func TestEnergyAccumulatesLinearly(t *testing.T) {
	m := New(Config{})
	r := busyRates()
	m.Step(r, 1, nil)
	e1 := m.EnergyUJ(Package)
	m.Step(r, 1, nil)
	e2 := m.EnergyUJ(Package)
	d1 := float64(e1)
	d2 := float64(e2 - e1)
	// Second step may be slightly higher from leakage warm-up, but within 10%.
	if d2 < d1*0.9 || d2 > d1*1.2 {
		t.Fatalf("energy deltas diverge: first=%g second=%g", d1, d2)
	}
}

func TestCoreEnergyLinearInInstructions(t *testing.T) {
	// Fig. 6's premise: for a fixed microarchitectural mix, core energy is
	// linear in retired instructions.
	base := busyRates()
	var xs, ys []float64
	for _, k := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		m := New(Config{})
		m.Step(base.Times(k), 1, nil)
		xs = append(xs, base.Instructions*k)
		ys = append(ys, float64(m.EnergyUJ(Core)))
	}
	// Check near-perfect linearity via correlation of successive slopes.
	slope0 := (ys[1] - ys[0]) / (xs[1] - xs[0])
	for i := 2; i < len(xs); i++ {
		s := (ys[i] - ys[i-1]) / (xs[i] - xs[i-1])
		if math.Abs(s-slope0)/slope0 > 0.05 {
			t.Fatalf("slope %d = %g deviates from %g", i, s, slope0)
		}
	}
}

func TestDRAMEnergyLinearInCacheMisses(t *testing.T) {
	// Fig. 7's premise.
	m := New(Config{})
	r := busyRates()
	m.Step(r, 1, nil)
	e1 := float64(m.EnergyUJ(DRAM))
	r2 := r
	r2.CacheMisses *= 3
	m2 := New(Config{})
	m2.Step(r2, 1, nil)
	e2 := float64(m2.EnergyUJ(DRAM))
	idle := m.Config().IdleDRAMW * 1e6
	ratio := (e2 - idle) / (e1 - idle)
	if math.Abs(ratio-3) > 0.05 {
		t.Fatalf("DRAM dynamic energy ratio = %g, want ≈ 3", ratio)
	}
}

func TestCounterWraps(t *testing.T) {
	m := New(Config{MaxEnergyRangeUJ: 200e6}) // wrap at 200 J
	r := busyRates()
	var wrapped bool
	var prev uint64
	for i := 0; i < 60; i++ {
		m.Step(r, 1, nil)
		cur := m.EnergyUJ(Package)
		if cur < prev {
			wrapped = true
		}
		if cur >= 200e6 {
			t.Fatalf("counter %d exceeded max range", cur)
		}
		prev = cur
	}
	if !wrapped {
		t.Fatal("counter never wrapped within 60 busy seconds at 200 J range")
	}
}

func TestCounterDelta(t *testing.T) {
	if d := CounterDelta(100, 150, 1000); d != 50 {
		t.Fatalf("no-wrap delta = %d", d)
	}
	if d := CounterDelta(900, 100, 1000); d != 200 {
		t.Fatalf("wrap delta = %d", d)
	}
	if d := CounterDelta(0, 0, 1000); d != 0 {
		t.Fatalf("zero delta = %d", d)
	}
}

func TestCounterDeltaKind(t *testing.T) {
	const max = uint64(1) << 38
	cases := []struct {
		name      string
		prev, cur uint64
		wantDelta uint64
		wantKind  DeltaKind
	}{
		{"forward", 100, 150, 50, DeltaForward},
		{"forward-zero", 7, 7, 0, DeltaForward},
		{"wrap-small", max - 100, 100, 200, DeltaWrapped},
		{"wrap-at-half", max / 4, 3 * max / 4, max / 2, DeltaForward},
		// A reset-to-zero after substantial accumulation: the old code
		// called this a wrap and fabricated a delta of max-prev+cur ≈ max.
		{"reset-to-zero", max / 2, 0, 0, DeltaReset},
		{"reset-near-zero", 3 * max / 4, 1000, 1000, DeltaReset},
		// A tiny backward step (stale read) is neither wrap nor reset.
		{"regression", 1_000_000_000, 1_000_000_000 - 100, 0, DeltaRegression},
		{"regression-at-epsilon", max / 2, max/2 - (max >> 16), 0, DeltaRegression},
	}
	for _, c := range cases {
		d, k := CounterDeltaKind(c.prev, c.cur, max)
		if d != c.wantDelta || k != c.wantKind {
			t.Errorf("%s: CounterDeltaKind(%d, %d) = (%d, %v), want (%d, %v)",
				c.name, c.prev, c.cur, d, k, c.wantDelta, c.wantKind)
		}
	}
}

func TestCounterDeltaResetNotNearMaxRange(t *testing.T) {
	// Regression test for the reset bug: a counter reset must never be
	// reported as a near-maxRange consumption.
	const max = uint64(1) << 38
	for _, prev := range []uint64{max / 2, 3 * max / 4, max - 1} {
		for _, cur := range []uint64{0, 1, 50_000} {
			d := CounterDelta(prev, cur, max)
			if d > max/4 {
				t.Errorf("CounterDelta(%d, %d, max) = %d: reset read as giant wrap", prev, cur, d)
			}
		}
	}
}

func TestCounterDeltaProperty(t *testing.T) {
	// Property 1: for any prev and a consumption a live sampler could
	// actually see between two reads (well under half the range), reading
	// after consuming recovers consumed exactly, wrap or not.
	f := func(prevRaw, consumedRaw uint32) bool {
		const max = uint64(1) << 30
		prev := uint64(prevRaw) % max
		consumed := uint64(consumedRaw) % (max / 4)
		cur := (prev + consumed) % max
		return CounterDelta(prev, cur, max) == consumed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}

	// Property 2: a reset to a small restart value is classified Reset and
	// its delta is the restart value, provided prev is large enough that
	// neither the wrap nor the regression interpretation is plausible.
	reset := func(prevRaw, restartRaw uint32) bool {
		const max = uint64(1) << 30
		prev := max/2 + uint64(prevRaw)%(max/4) // in [max/2, 3max/4)
		restart := uint64(restartRaw) % (max / 8)
		if restart >= prev-regressionEpsilon(max) {
			return true // not a backward step; out of scope
		}
		d, k := CounterDeltaKind(prev, restart, max)
		if wrap := max - prev + restart; wrap <= max/4 {
			return k == DeltaWrapped && d == wrap
		}
		return k == DeltaReset && d == restart
	}
	if err := quick.Check(reset, nil); err != nil {
		t.Fatal(err)
	}

	// Property 3: small regressions (≤ epsilon) always yield delta 0.
	regress := func(prevRaw uint32, stepRaw uint16) bool {
		const max = uint64(1) << 30
		prev := max/4 + uint64(prevRaw)%(max/2)
		step := uint64(stepRaw) % (regressionEpsilon(max) + 1)
		if step == 0 {
			return true
		}
		d, k := CounterDeltaKind(prev, prev-step, max)
		return k == DeltaRegression && d == 0
	}
	if err := quick.Check(regress, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThermalModelWarmsAndCools(t *testing.T) {
	m := New(Config{})
	amb := m.Config().AmbientC
	if m.CoreTempC(0) != amb {
		t.Fatalf("initial temp = %g, want ambient %g", m.CoreTempC(0), amb)
	}
	for i := 0; i < 120; i++ {
		m.Step(busyRates(), 1, nil)
	}
	hot := m.CoreTempC(0)
	if hot < amb+5 {
		t.Fatalf("busy core only reached %g °C from ambient %g", hot, amb)
	}
	for i := 0; i < 300; i++ {
		m.Step(perfcount.Rates{}, 1, nil)
	}
	// The idle floor is ambient + R·IdleCoreW, not ambient itself.
	floor := amb + m.Config().ThermalResC*m.Config().IdleCoreW
	cool := m.CoreTempC(0)
	if cool > floor+1 {
		t.Fatalf("idle core stayed hot: %g °C (floor %g)", cool, floor)
	}
}

func TestPerCoreShareSkewsTemperature(t *testing.T) {
	m := New(Config{Cores: 4})
	share := []float64{1, 0, 0, 0} // all dynamic power on core 0
	for i := 0; i < 120; i++ {
		m.Step(busyRates().Times(0.25), 1, share)
	}
	if m.CoreTempC(0) <= m.CoreTempC(3)+2 {
		t.Fatalf("pinned core (%g) not hotter than idle core (%g)",
			m.CoreTempC(0), m.CoreTempC(3))
	}
}

func TestCoreTempPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Cores: 2}).CoreTempC(5)
}

func TestStepPanicsOnBadDt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}).Step(perfcount.Rates{}, 0, nil)
}

func TestThrottleCapsPower(t *testing.T) {
	m := New(Config{})
	m.Step(busyRates(), 1, nil)
	uncapped := m.Power(Package)

	m.SetPowerLimit(uncapped * 0.6)
	if m.PowerLimit() != uncapped*0.6 {
		t.Fatal("limit not stored")
	}
	admitted, f := m.Throttle(busyRates())
	if f >= 1 {
		t.Fatalf("throttle factor = %g, want < 1", f)
	}
	m.Step(admitted, 1, nil)
	if m.Power(Package) > uncapped*0.6*1.05 {
		t.Fatalf("capped power %g exceeds limit %g", m.Power(Package), uncapped*0.6)
	}
}

func TestThrottleIdentityWhenUncappedOrUnderLimit(t *testing.T) {
	m := New(Config{})
	r := busyRates()
	got, f := m.Throttle(r)
	if f != 1 || got != r {
		t.Fatal("uncapped throttle must be identity")
	}
	m.SetPowerLimit(10000)
	got, f = m.Throttle(r)
	if f != 1 || got != r {
		t.Fatal("under-limit throttle must be identity")
	}
}

func TestThrottleFloorsAtMinimumDuty(t *testing.T) {
	m := New(Config{})
	m.SetPowerLimit(1) // absurd cap below idle
	_, f := m.Throttle(busyRates())
	if f != 0.05 {
		t.Fatalf("floor factor = %g, want 0.05", f)
	}
}
