package power

import "math"

// GovernorConfig sizes the per-core DVFS model. The zero value of any
// field selects the default, mirroring Config's zero-field defaulting.
type GovernorConfig struct {
	Cores int
	// MinKHz/MaxKHz bound the frequency range (cpuinfo_min_freq /
	// cpuinfo_max_freq). Defaults model an 800 MHz – 3.4 GHz part.
	MinKHz uint64
	MaxKHz uint64
	// StepKHz is the P-state grid: published frequencies are quantized to
	// this quantum, so scaling_cur_freq moves in discrete transitions the
	// way real cpufreq stats count them.
	StepKHz uint64
	// SlewKHzPerSec bounds how fast the continuous target can move — the
	// governor's ramp, which is what makes frequency a *trace* channel
	// (load history, not just instantaneous load).
	SlewKHzPerSec float64
}

// Governor defaults.
const (
	DefaultMinKHz        = 800_000
	DefaultMaxKHz        = 3_400_000
	DefaultStepKHz       = 100_000
	DefaultSlewKHzPerSec = 8_000_000
)

// Governor is the simulated per-core DVFS frequency governor (a
// schedutil-style load follower). The kernel tick pipeline drives Step
// with the same per-core utilizations it derived for CPU-time accounting;
// the governor ramps each core's frequency toward a load-proportional
// target and quantizes to the P-state grid.
//
// Determinism contract: Step is pure arithmetic over its inputs — no RNG
// draws, no feedback into the energy Meter — so adding the governor to a
// tick changes neither the kernel's jitter stream nor any existing
// rendered byte, and its own outputs are byte-identical at any tick-shard
// worker count.
type Governor struct {
	cfg GovernorConfig

	// cur is the continuous (pre-quantization) per-core frequency the slew
	// limiter integrates; kHz holds the published quantized values and
	// trans the per-core transition counters (cpufreq stats total_trans).
	cur        []float64
	kHz        []uint64
	trans      []uint64
	totalTrans uint64
}

// NewGovernor builds a governor with all cores parked at the minimum
// frequency (an idle machine at boot).
func NewGovernor(cfg GovernorConfig) *Governor {
	if cfg.Cores <= 0 {
		cfg.Cores = 8
	}
	if cfg.MinKHz == 0 {
		cfg.MinKHz = DefaultMinKHz
	}
	if cfg.MaxKHz <= cfg.MinKHz {
		cfg.MaxKHz = DefaultMaxKHz
	}
	if cfg.StepKHz == 0 {
		cfg.StepKHz = DefaultStepKHz
	}
	if cfg.SlewKHzPerSec <= 0 {
		cfg.SlewKHzPerSec = DefaultSlewKHzPerSec
	}
	g := &Governor{
		cfg:   cfg,
		cur:   make([]float64, cfg.Cores),
		kHz:   make([]uint64, cfg.Cores),
		trans: make([]uint64, cfg.Cores),
	}
	for i := range g.cur {
		g.cur[i] = float64(cfg.MinKHz)
		g.kHz[i] = cfg.MinKHz
	}
	return g
}

// quantize snaps a continuous frequency onto the P-state grid (nearest
// step, clamped to [min, max]).
func (g *Governor) quantize(f float64) uint64 {
	min, max, step := float64(g.cfg.MinKHz), float64(g.cfg.MaxKHz), float64(g.cfg.StepKHz)
	if f < min {
		f = min
	}
	if f > max {
		f = max
	}
	q := min + math.Round((f-min)/step)*step
	if q > max {
		q = max
	}
	return uint64(q)
}

// Step advances every core one tick: perCore utilizations in [0,1] (the
// schedule section's per-core demand), capFactor the meter's thermal/power
// cap, dt the tick length in simulated seconds. Frequency targets are
// load-proportional; a throttled machine lowers them the same way it
// lowers effective CPU time.
func (g *Governor) Step(perCore []float64, capFactor, dt float64) {
	maxDelta := g.cfg.SlewKHzPerSec * dt
	span := float64(g.cfg.MaxKHz - g.cfg.MinKHz)
	for i := range g.cur {
		util := 0.0
		if i < len(perCore) {
			util = perCore[i] * capFactor
		}
		if util < 0 {
			util = 0
		}
		if util > 1 {
			util = 1
		}
		target := float64(g.cfg.MinKHz) + util*span
		d := target - g.cur[i]
		if d > maxDelta {
			d = maxDelta
		} else if d < -maxDelta {
			d = -maxDelta
		}
		g.cur[i] += d
		if q := g.quantize(g.cur[i]); q != g.kHz[i] {
			g.kHz[i] = q
			g.trans[i]++
			g.totalTrans++
		}
	}
}

// CurKHz returns core's published scaling_cur_freq in kHz. Out-of-range
// cores read as the minimum frequency (absent cores are parked).
func (g *Governor) CurKHz(core int) uint64 {
	if core < 0 || core >= len(g.kHz) {
		return g.cfg.MinKHz
	}
	return g.kHz[core]
}

// Transitions returns core's cpufreq stats total_trans counter.
func (g *Governor) Transitions(core int) uint64 {
	if core < 0 || core >= len(g.trans) {
		return 0
	}
	return g.trans[core]
}

// TotalTransitions sums the per-core transition counters.
func (g *Governor) TotalTransitions() uint64 { return g.totalTrans }

// MinKHz returns cpuinfo_min_freq.
func (g *Governor) MinKHz() uint64 { return g.cfg.MinKHz }

// MaxKHz returns cpuinfo_max_freq.
func (g *Governor) MaxKHz() uint64 { return g.cfg.MaxKHz }

// StepKHz returns the P-state quantum.
func (g *Governor) StepKHz() uint64 { return g.cfg.StepKHz }

// Name returns the governor's scaling_governor identity.
func (g *Governor) Name() string { return "schedutil" }
