package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/perfcount"
)

// boundedRates maps fuzz bytes into a plausible activity vector.
func boundedRates(i, c, cm, bm uint16) perfcount.Rates {
	cycles := 1e9 + float64(c)*1e6
	instr := float64(i) * 1e6
	if instr > cycles*4 {
		instr = cycles * 4
	}
	return perfcount.Rates{
		Instructions: instr,
		Cycles:       cycles,
		CacheMisses:  math.Min(float64(cm)*1e3, instr/10),
		BranchMisses: math.Min(float64(bm)*1e3, instr/10),
	}
}

// TestPropertyPackageIdentity: package power always equals core + DRAM +
// uncore, for any activity.
func TestPropertyPackageIdentity(t *testing.T) {
	f := func(i, c, cm, bm uint16) bool {
		m := New(Config{})
		m.Step(boundedRates(i, c, cm, bm), 1, nil)
		got := m.Power(Core) + m.Power(DRAM) + m.Config().UncoreW
		return math.Abs(got-m.Power(Package)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPowerMonotoneInActivity: scaling activity up never reduces
// any domain's power.
func TestPropertyPowerMonotoneInActivity(t *testing.T) {
	f := func(i, c, cm, bm uint16, kRaw uint8) bool {
		r := boundedRates(i, c, cm, bm)
		k := 1 + float64(kRaw%8)/4 // 1 .. 2.75
		m1 := New(Config{})
		m1.Step(r, 1, nil)
		m2 := New(Config{})
		m2.Step(r.Times(k), 1, nil)
		return m2.Power(Package) >= m1.Power(Package)-1e-9 &&
			m2.Power(Core) >= m1.Power(Core)-1e-9 &&
			m2.Power(DRAM) >= m1.Power(DRAM)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEnergyMatchesPowerIntegral: over any step, the counter delta
// equals power × time (within accumulation rounding).
func TestPropertyEnergyMatchesPowerIntegral(t *testing.T) {
	f := func(i, c uint16, dtRaw uint8) bool {
		dt := float64(dtRaw%50)/10 + 0.1
		r := boundedRates(i, c, 100, 100)
		m := New(Config{})
		before := m.EnergyUJ(Package)
		m.Step(r, dt, nil)
		delta := float64(CounterDelta(before, m.EnergyUJ(Package), m.MaxEnergyRangeUJ()))
		want := m.Power(Package) * dt * 1e6
		return math.Abs(delta-want) <= want*0.01+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyThrottleRespectsLimit: whatever the demand, the admitted
// rates never produce power above the cap (beyond the idle floor).
func TestPropertyThrottleRespectsLimit(t *testing.T) {
	f := func(i, c uint16, limRaw uint8) bool {
		m := New(Config{})
		idle := m.Config().IdleCoreW + m.Config().IdleDRAMW + m.Config().UncoreW
		limit := idle + 5 + float64(limRaw)
		m.SetPowerLimit(limit)
		admitted, factor := m.Throttle(boundedRates(i, c, 200, 200))
		if factor <= 0 || factor > 1 {
			return false
		}
		m.Step(admitted, 1, nil)
		// The 5% duty floor can exceed absurd caps; otherwise obey.
		if factor == 0.05 {
			return true
		}
		return m.Power(Package) <= limit*1.02
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
