// Package power models the host's energy subsystem: an Intel-RAPL-like meter
// with package/core/DRAM domains exposed as accumulating micro-joule
// counters, a digital-temperature-sensor (DTS) thermal model per core, and a
// host-level power cap.
//
// The physics is deliberately *richer* than the defense's fitted model of
// Formula 2: true core power depends on retired instructions scaled by the
// cache- and branch-miss mix, plus a temperature-dependent leakage term the
// regression cannot see. That gives the power-based namespace a realistic
// residual to calibrate away (Fig. 8 evaluates exactly this error), instead
// of letting it trivially invert its own generator.
//
// Counters wrap at MaxEnergyRangeUJ like real RAPL MSRs; consumers (the
// synergistic attack's monitor, the defense's calibration loop) must handle
// wraparound.
package power

import (
	"fmt"
	"math"

	"repro/internal/perfcount"
)

// Domain selects a RAPL accounting domain.
type Domain int

// RAPL domains. Package is the sum of core, DRAM, and uncore energy.
const (
	Package Domain = iota + 1
	Core           // PP0: all cores
	DRAM
)

// String implements fmt.Stringer.
func (d Domain) String() string {
	switch d {
	case Package:
		return "package"
	case Core:
		return "core"
	case DRAM:
		return "dram"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Config parameterizes a host's power physics. DefaultConfig returns values
// calibrated so that a fully-loaded server lands near the paper's observed
// per-server power band (Fig. 2: ~110–150 W per server).
type Config struct {
	Cores int

	// Idle floor, Watts.
	IdleCoreW   float64 // all-core idle power
	IdleDRAMW   float64
	UncoreW     float64 // constant uncore/package overhead (λ's physical origin)
	PlatformW   float64 // non-RAPL platform power (fans, VRs) included in wall power
	AmbientC    float64 // ambient temperature
	ThermalResC float64 // °C per Watt of core power
	ThermalTauS float64 // first-order thermal time constant, seconds
	LeakWPerC   float64 // leakage Watts per °C above ambient (model nonlinearity)

	// Energy per event, Joules. Core energy per instruction is
	// EPIBase + EPICacheStall·(CM/C) + EPIBranchStall·(BM/C), so core
	// energy is linear in instructions with a mix-dependent slope —
	// exactly the structure Figs. 6–7 report.
	EPIBase        float64
	EPICacheStall  float64
	EPIBranchStall float64
	EPJDRAMMiss    float64 // DRAM energy per LLC miss

	// MaxEnergyRangeUJ is the wrap point of the energy counters in
	// micro-joules; 0 selects the default (2^38 µJ ≈ 262 kJ, matching
	// common intel-rapl max_energy_range_uj magnitudes).
	MaxEnergyRangeUJ uint64
}

// DefaultConfig returns the calibrated 8-core server configuration used by
// the experiment harnesses.
func DefaultConfig() Config {
	return Config{
		Cores:            8,
		IdleCoreW:        6,
		IdleDRAMW:        3,
		UncoreW:          8,
		PlatformW:        65,
		AmbientC:         28,
		ThermalResC:      0.55,
		ThermalTauS:      12,
		LeakWPerC:        0.05,
		EPIBase:          1.05e-9,
		EPICacheStall:    60e-9,
		EPIBranchStall:   18e-9,
		EPJDRAMMiss:      11e-9,
		MaxEnergyRangeUJ: 1 << 38,
	}
}

// Meter integrates workload activity into RAPL energy counters and core
// temperatures. Create one per simulated host with New and drive it with
// Step once per clock tick.
type Meter struct {
	cfg Config

	energyUJ [4]float64 // indexed by Domain; fractional accumulation pre-wrap
	lastW    [4]float64 // instantaneous Watts of the most recent step
	tempC    []float64  // per-core temperature
	limitW   float64    // package power cap; 0 = uncapped
}

// New returns a Meter for the given configuration. Zero-valued fields of cfg
// are replaced by DefaultConfig values so callers may override selectively.
func New(cfg Config) *Meter {
	def := DefaultConfig()
	if cfg.Cores == 0 {
		cfg.Cores = def.Cores
	}
	if cfg.IdleCoreW == 0 {
		cfg.IdleCoreW = def.IdleCoreW
	}
	if cfg.IdleDRAMW == 0 {
		cfg.IdleDRAMW = def.IdleDRAMW
	}
	if cfg.UncoreW == 0 {
		cfg.UncoreW = def.UncoreW
	}
	if cfg.PlatformW == 0 {
		cfg.PlatformW = def.PlatformW
	}
	if cfg.AmbientC == 0 {
		cfg.AmbientC = def.AmbientC
	}
	if cfg.ThermalResC == 0 {
		cfg.ThermalResC = def.ThermalResC
	}
	if cfg.ThermalTauS == 0 {
		cfg.ThermalTauS = def.ThermalTauS
	}
	if cfg.LeakWPerC == 0 {
		cfg.LeakWPerC = def.LeakWPerC
	}
	if cfg.EPIBase == 0 {
		cfg.EPIBase = def.EPIBase
	}
	if cfg.EPICacheStall == 0 {
		cfg.EPICacheStall = def.EPICacheStall
	}
	if cfg.EPIBranchStall == 0 {
		cfg.EPIBranchStall = def.EPIBranchStall
	}
	if cfg.EPJDRAMMiss == 0 {
		cfg.EPJDRAMMiss = def.EPJDRAMMiss
	}
	if cfg.MaxEnergyRangeUJ == 0 {
		cfg.MaxEnergyRangeUJ = def.MaxEnergyRangeUJ
	}
	m := &Meter{cfg: cfg, tempC: make([]float64, cfg.Cores)}
	for i := range m.tempC {
		m.tempC[i] = cfg.AmbientC
	}
	return m
}

// Config returns the meter's effective configuration.
func (m *Meter) Config() Config { return m.cfg }

// SetPowerLimit sets the package power cap in Watts (0 disables capping).
// This models host-level RAPL capping, which the paper notes responds
// immediately — unlike rack-level capping's minute-scale lag.
func (m *Meter) SetPowerLimit(w float64) { m.limitW = w }

// PowerLimit returns the configured package cap (0 = uncapped).
func (m *Meter) PowerLimit() float64 { return m.limitW }

// Throttle scales the requested activity so that the resulting package power
// would not exceed the cap. It returns the admitted rates and the applied
// factor in (0,1]. With no cap configured it is the identity.
func (m *Meter) Throttle(agg perfcount.Rates) (perfcount.Rates, float64) {
	if m.limitW <= 0 {
		return agg, 1
	}
	p := m.instPower(agg)
	if p.pkg <= m.limitW {
		return agg, 1
	}
	// Dynamic power scales ~linearly with activity; solve for the factor
	// that brings package power to the cap, flooring at 5% duty.
	idle := m.idlePkgW()
	dyn := p.pkg - idle
	budget := m.limitW - idle
	f := budget / dyn
	if f < 0.05 {
		f = 0.05
	}
	return agg.Times(f), f
}

type instPower struct {
	core, dram, pkg float64
}

func (m *Meter) idlePkgW() float64 {
	return m.cfg.IdleCoreW + m.cfg.IdleDRAMW + m.cfg.UncoreW
}

// instPower computes instantaneous domain power for the given aggregate
// activity, including the temperature-dependent leakage term evaluated at
// the current thermal state.
func (m *Meter) instPower(agg perfcount.Rates) instPower {
	cmr, bmr := 0.0, 0.0
	if agg.Cycles > 0 {
		cmr = agg.CacheMisses / agg.Cycles
		bmr = agg.BranchMisses / agg.Cycles
	}
	epi := m.cfg.EPIBase + m.cfg.EPICacheStall*cmr + m.cfg.EPIBranchStall*bmr
	var leak float64
	for _, t := range m.tempC {
		if d := t - m.cfg.AmbientC; d > 0 {
			leak += m.cfg.LeakWPerC * d / float64(len(m.tempC))
		}
	}
	core := m.cfg.IdleCoreW + epi*agg.Instructions + leak
	dram := m.cfg.IdleDRAMW + m.cfg.EPJDRAMMiss*agg.CacheMisses
	return instPower{
		core: core,
		dram: dram,
		pkg:  core + dram + m.cfg.UncoreW,
	}
}

// Step integrates dt seconds of the given aggregate activity (already summed
// across all tasks on the host) into the energy counters and advances the
// thermal model. perCore optionally distributes utilization for the DTS
// model; pass nil for an even spread.
func (m *Meter) Step(agg perfcount.Rates, dt float64, perCore []float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("power: Step with dt=%g", dt))
	}
	p := m.instPower(agg)
	m.lastW[Core] = p.core
	m.lastW[DRAM] = p.dram
	m.lastW[Package] = p.pkg

	toUJ := dt * 1e6
	m.accumulate(Core, p.core*toUJ)
	m.accumulate(DRAM, p.dram*toUJ)
	m.accumulate(Package, p.pkg*toUJ)

	// Thermal: each core relaxes toward ambient + R·(its share of core
	// dynamic power) with time constant tau.
	n := float64(m.cfg.Cores)
	dyn := p.core - m.cfg.IdleCoreW
	if dyn < 0 {
		dyn = 0
	}
	alpha := 1 - math.Exp(-dt/m.cfg.ThermalTauS)
	for i := range m.tempC {
		share := 1 / n
		if perCore != nil && i < len(perCore) {
			share = perCore[i]
		}
		target := m.cfg.AmbientC + m.cfg.ThermalResC*(m.cfg.IdleCoreW/n+dyn*share)*n
		m.tempC[i] += (target - m.tempC[i]) * alpha
	}
}

func (m *Meter) accumulate(d Domain, uj float64) {
	m.energyUJ[d] += uj
	max := float64(m.cfg.MaxEnergyRangeUJ)
	for m.energyUJ[d] >= max {
		m.energyUJ[d] -= max
	}
}

// EnergyUJ returns the accumulated (wrapping) energy counter for the domain
// in micro-joules, exactly as the energy_uj pseudo-file exposes it.
func (m *Meter) EnergyUJ(d Domain) uint64 { return uint64(m.energyUJ[d]) }

// MaxEnergyRangeUJ returns the counter wrap point, mirroring the
// max_energy_range_uj sysfs file.
func (m *Meter) MaxEnergyRangeUJ() uint64 { return m.cfg.MaxEnergyRangeUJ }

// Power returns the instantaneous power, in Watts, computed by the most
// recent Step for the domain.
func (m *Meter) Power(d Domain) float64 { return m.lastW[d] }

// WallPower returns instantaneous whole-server power: the RAPL package power
// plus the constant platform overhead. Rack PDUs and circuit breakers meter
// this quantity.
func (m *Meter) WallPower() float64 { return m.lastW[Package] + m.cfg.PlatformW }

// CoreTempC returns the DTS temperature of the given core in °C; it panics
// on an out-of-range core index.
func (m *Meter) CoreTempC(core int) float64 {
	if core < 0 || core >= len(m.tempC) {
		panic(fmt.Sprintf("power: core %d out of range [0,%d)", core, len(m.tempC)))
	}
	return m.tempC[core]
}

// DeltaKind classifies what happened to a wrapping energy counter between
// two readings. Real RAPL MSRs do not only wrap: they reset to zero across
// power events (suspend, firmware update, PMU re-init), and flaky read
// paths can return a slightly stale value. The old CounterDelta computed
// every cur < prev as a wrap, which turns a reset into a bogus
// near-maxRange delta — a several-hundred-kJ phantom burn in one sample.
type DeltaKind int

// Delta classifications.
const (
	// DeltaForward: cur >= prev, the ordinary monotone case.
	DeltaForward DeltaKind = iota
	// DeltaWrapped: the counter passed maxRange; the implied consumption
	// maxRange-prev+cur is plausibly small (≤ maxRange/2).
	DeltaWrapped
	// DeltaReset: the counter restarted from (near) zero; the only
	// defensible estimate of consumption since prev is cur itself.
	DeltaReset
	// DeltaRegression: cur is slightly below prev — a stale or torn read,
	// not a wrap and not a reset. The consumed estimate is 0.
	DeltaRegression
)

// String implements fmt.Stringer.
func (k DeltaKind) String() string {
	switch k {
	case DeltaForward:
		return "forward"
	case DeltaWrapped:
		return "wrapped"
	case DeltaReset:
		return "reset"
	case DeltaRegression:
		return "regression"
	default:
		return fmt.Sprintf("DeltaKind(%d)", int(k))
	}
}

// regressionEpsilon is the largest backward step still attributed to a
// stale/torn read rather than a reset: 1/65536 of the counter range
// (≈ 4 mJ at the default 2^38 µJ range — far below one tick of idle burn).
func regressionEpsilon(maxRange uint64) uint64 { return maxRange >> 16 }

// CounterDeltaKind computes the energy consumed between two wrapping
// counter readings and classifies the transition. The heuristic:
//
//   - cur >= prev: forward, delta = cur - prev.
//   - cur < prev and the implied wrap consumption maxRange-prev+cur is
//     ≤ maxRange/4: a genuine wrap. A sampler that keeps up with the
//     counter (ms–s cadence vs. the hours-long wrap period) never consumes
//     a quarter of the range between two reads, so a larger implied
//     consumption means the backward step has another cause.
//   - prev - cur ≤ maxRange>>16: a tiny regression — stale or torn read;
//     delta 0.
//   - otherwise: a reset-to-zero (or near zero); delta = cur, the energy
//     accumulated since the restart.
func CounterDeltaKind(prev, cur, maxRange uint64) (uint64, DeltaKind) {
	if cur >= prev {
		return cur - prev, DeltaForward
	}
	if maxRange > prev {
		if wrap := maxRange - prev + cur; wrap <= maxRange/4 {
			return wrap, DeltaWrapped
		}
	}
	if prev-cur <= regressionEpsilon(maxRange) {
		return 0, DeltaRegression
	}
	return cur, DeltaReset
}

// CounterDelta computes the energy consumed between two wrapping counter
// readings, handling wraps, resets, and small regressions. Attack and
// defense monitors use it when differencing energy_uj samples.
func CounterDelta(prev, cur, maxRange uint64) uint64 {
	d, _ := CounterDeltaKind(prev, cur, maxRange)
	return d
}
