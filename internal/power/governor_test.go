package power

import (
	"testing"
	"testing/quick"
)

func TestGovernorDefaultsAndBoot(t *testing.T) {
	g := NewGovernor(GovernorConfig{})
	if g.MinKHz() != DefaultMinKHz || g.MaxKHz() != DefaultMaxKHz || g.StepKHz() != DefaultStepKHz {
		t.Fatalf("defaults not applied: min=%d max=%d step=%d", g.MinKHz(), g.MaxKHz(), g.StepKHz())
	}
	if g.Name() != "schedutil" {
		t.Fatalf("governor name = %q", g.Name())
	}
	for c := 0; c < 8; c++ {
		if g.CurKHz(c) != DefaultMinKHz {
			t.Fatalf("core %d not parked at boot: %d kHz", c, g.CurKHz(c))
		}
	}
	// Out-of-range cores read as parked, never panic.
	if g.CurKHz(-1) != DefaultMinKHz || g.CurKHz(99) != DefaultMinKHz {
		t.Fatal("out-of-range cores must read as the minimum frequency")
	}
	if g.Transitions(-1) != 0 || g.Transitions(99) != 0 {
		t.Fatal("out-of-range transition counters must read 0")
	}
}

func TestGovernorFollowsLoad(t *testing.T) {
	g := NewGovernor(GovernorConfig{Cores: 2})
	full := []float64{1, 1}
	for i := 0; i < 10; i++ {
		g.Step(full, 1, 1)
	}
	if g.CurKHz(0) != g.MaxKHz() || g.CurKHz(1) != g.MaxKHz() {
		t.Fatalf("saturated cores must reach cpuinfo_max_freq: %d/%d", g.CurKHz(0), g.CurKHz(1))
	}
	for i := 0; i < 10; i++ {
		g.Step(nil, 1, 1) // idle: absent cores read util 0
	}
	if g.CurKHz(0) != g.MinKHz() {
		t.Fatalf("idle core must fall back to cpuinfo_min_freq: %d", g.CurKHz(0))
	}
	if g.TotalTransitions() == 0 || g.Transitions(0) == 0 {
		t.Fatal("ramping up and back down must count P-state transitions")
	}
	if g.TotalTransitions() != g.Transitions(0)+g.Transitions(1) {
		t.Fatal("total transitions must equal the per-core sum")
	}
}

func TestGovernorSlewBoundsRamp(t *testing.T) {
	// One tick may move the continuous target by at most SlewKHzPerSec*dt.
	g := NewGovernor(GovernorConfig{Cores: 1, SlewKHzPerSec: 200_000})
	g.Step([]float64{1}, 1, 1)
	if got := g.CurKHz(0); got != DefaultMinKHz+200_000 {
		t.Fatalf("slew-limited first tick = %d kHz, want %d", got, DefaultMinKHz+200_000)
	}
	g.Step([]float64{1}, 1, 0.5) // half tick, half slew
	if got := g.CurKHz(0); got != DefaultMinKHz+300_000 {
		t.Fatalf("after half tick = %d kHz, want %d", got, DefaultMinKHz+300_000)
	}
}

func TestGovernorCapFactorThrottles(t *testing.T) {
	free := NewGovernor(GovernorConfig{Cores: 1})
	capped := NewGovernor(GovernorConfig{Cores: 1})
	for i := 0; i < 10; i++ {
		free.Step([]float64{1}, 1, 1)
		capped.Step([]float64{1}, 0.5, 1)
	}
	if capped.CurKHz(0) >= free.CurKHz(0) {
		t.Fatalf("thermal cap must lower the frequency target: capped=%d free=%d",
			capped.CurKHz(0), free.CurKHz(0))
	}
}

func TestGovernorDeterministic(t *testing.T) {
	// Step is pure arithmetic: two governors fed the same input sequence
	// publish identical frequencies and transition counts at every tick.
	run := func() *Governor {
		g := NewGovernor(GovernorConfig{Cores: 4})
		utils := [][]float64{
			{0.2, 0.9, 0, 0.5}, {1, 1, 1, 1}, {0, 0.3, 0.7, 0},
			{0.5, 0.5, 0.5, 0.5}, {0, 0, 0, 0},
		}
		for i := 0; i < 40; i++ {
			g.Step(utils[i%len(utils)], 1-float64(i%3)*0.1, 1)
		}
		return g
	}
	a, b := run(), run()
	for c := 0; c < 4; c++ {
		if a.CurKHz(c) != b.CurKHz(c) || a.Transitions(c) != b.Transitions(c) {
			t.Fatalf("core %d diverged: %d/%d vs %d/%d",
				c, a.CurKHz(c), a.Transitions(c), b.CurKHz(c), b.Transitions(c))
		}
	}
	if a.TotalTransitions() != b.TotalTransitions() {
		t.Fatal("total transition counters diverged")
	}
}

func TestGovernorPublishedFrequencyAlwaysOnGrid(t *testing.T) {
	g := NewGovernor(GovernorConfig{Cores: 3})
	f := func(u0, u1, u2, capF, dt float64) bool {
		abs := func(v float64) float64 {
			if v < 0 {
				return -v
			}
			return v
		}
		norm := func(v float64) float64 { return abs(v) - float64(int(abs(v))) } // [0,1)
		g.Step([]float64{norm(u0), norm(u1), norm(u2)}, norm(capF), norm(dt))
		for c := 0; c < 3; c++ {
			khz := g.CurKHz(c)
			if khz < g.MinKHz() || khz > g.MaxKHz() {
				return false
			}
			if (khz-g.MinKHz())%g.StepKHz() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
