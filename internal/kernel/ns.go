package kernel

import "fmt"

// NSType enumerates the seven Linux namespace types.
type NSType int

// Namespace types, in the order the paper introduces them.
const (
	MNT NSType = iota + 1
	UTS
	PID
	NET
	IPC
	USER
	CGROUP
	nsTypeCount = CGROUP
)

// String implements fmt.Stringer.
func (t NSType) String() string {
	switch t {
	case MNT:
		return "mnt"
	case UTS:
		return "uts"
	case PID:
		return "pid"
	case NET:
		return "net"
	case IPC:
		return "ipc"
	case USER:
		return "user"
	case CGROUP:
		return "cgroup"
	default:
		return fmt.Sprintf("NSType(%d)", int(t))
	}
}

// NetDev is a network device visible in a NET namespace; Prio is the
// net_prio cgroup priority assigned to traffic leaving on it.
type NetDev struct {
	Name string
	Prio int
}

// NSSet is the set of namespaces a task is associated with — one of each
// type, plus the namespaced state each type virtualizes. The host's initial
// set is created at boot; each container receives a fresh set.
type NSSet struct {
	ids [nsTypeCount + 1]uint64

	// UTS: per-namespace host name.
	Hostname string

	// NET: devices visible inside this namespace. The init namespace
	// holds the physical devices; containers get lo + a veth leg.
	NetDevs []NetDev

	// PID: translation between host pids and namespace pids. The init
	// namespace uses the identity mapping (pidMap == nil).
	pidMap  map[int]int
	nextPID int

	// CGROUP: the cgroup path this namespace's root is pinned to, as
	// /proc/self/cgroup shows it.
	CgroupRoot string

	// USER: whether root inside maps to an unprivileged host uid.
	RootMapped bool

	// CreatedAt is the kernel time the namespace set was created; a
	// stage-2 uptime fix reports container-relative uptime from it.
	CreatedAt float64

	// BootID is a per-namespace boot identifier a stage-2 fix would
	// return instead of the host's (empty for the init namespace, which
	// uses the kernel's real boot id).
	BootID string

	// IPC: System V shared-memory segments visible in this namespace.
	// Unlike the leaky subsystems, SysV IPC *is* properly namespaced in
	// Linux 4.7 — /proc/sysvipc/shm is the detector's contrast case.
	shm       []ShmSegment
	nextShmID int
}

// ShmSegment is one row of /proc/sysvipc/shm.
type ShmSegment struct {
	Key    int64
	ID     int
	SizeKB uint64
	CPid   int
}

// CreateShm registers a shared-memory segment in the namespace, owned by
// the creating pid (namespace-local).
func (s *NSSet) CreateShm(key int64, sizeKB uint64, cpid int) ShmSegment {
	s.nextShmID++
	seg := ShmSegment{Key: key, ID: s.nextShmID*32768 + 9, SizeKB: sizeKB, CPid: cpid}
	s.shm = append(s.shm, seg)
	return seg
}

// ShmSegments returns the namespace's segments.
func (s *NSSet) ShmSegments() []ShmSegment {
	return append([]ShmSegment(nil), s.shm...)
}

// ID returns the inode-style identifier of the namespace of type t, as
// /proc/self/ns/* would expose it.
func (s *NSSet) ID(t NSType) uint64 { return s.ids[t] }

// IsInit reports whether this is the host's initial namespace set.
func (s *NSSet) IsInit() bool { return s.pidMap == nil }

// TranslatePID maps a host pid into this PID namespace. The second result is
// false when the pid is not visible here (the essence of PID namespacing).
func (s *NSSet) TranslatePID(hostPID int) (int, bool) {
	if s.pidMap == nil {
		return hostPID, true // init ns: identity
	}
	ns, ok := s.pidMap[hostPID]
	return ns, ok
}

// newInitNS builds the host's initial namespaces with the physical network
// devices.
func (k *Kernel) newInitNS() *NSSet {
	s := &NSSet{
		Hostname: k.opts.Hostname,
		NetDevs: []NetDev{
			{Name: "lo"},
			{Name: "eth0"},
			{Name: "eth1"},
			{Name: "docker0"},
		},
		CgroupRoot: "/",
	}
	for t := NSType(1); t <= nsTypeCount; t++ {
		s.ids[t] = k.allocNSID()
	}
	// System daemons hold a few segments on any real host (X, databases,
	// shared caches); containers start with none.
	s.CreateShm(0x51f2e9a1, 4096, 812)
	s.CreateShm(0, 1024, 901)
	k.nsSets = append(k.nsSets, s)
	return s
}

// NewNSSet creates a fresh namespace set for a container with the given UTS
// hostname and cgroup root, mirroring what a container runtime's
// clone(CLONE_NEWNS|…) sequence produces.
func (k *Kernel) NewNSSet(hostname, cgroupRoot string) *NSSet {
	s := &NSSet{
		Hostname: hostname,
		NetDevs: []NetDev{
			{Name: "lo"},
			{Name: "eth0"}, // veth leg renamed inside the container
		},
		pidMap:     make(map[int]int),
		nextPID:    1,
		CgroupRoot: cgroupRoot,
		RootMapped: true,
	}
	for t := NSType(1); t <= nsTypeCount; t++ {
		s.ids[t] = k.allocNSID()
	}
	s.CreatedAt = k.now
	s.BootID = k.genUUID()
	k.nsSets = append(k.nsSets, s)
	k.bump(MaskNS)
	return s
}

func (k *Kernel) allocNSID() uint64 {
	// Linux namespace inode numbers live around 4026531835+.
	const base = 4026531840
	k.nextNSID++
	return base + k.nextNSID
}

// AddHostNetDev registers a device in the init NET namespace — e.g. the
// host-side veth leg a container runtime creates. Its randomized name is
// what makes the (leaky) global device list uniquely identify a host.
func (k *Kernel) AddHostNetDev(name string) {
	k.initNS.NetDevs = append(k.initNS.NetDevs, NetDev{Name: name})
	k.bump(MaskNet | MaskNS)
}

// RemoveHostNetDev deletes a device from the init NET namespace.
func (k *Kernel) RemoveHostNetDev(name string) {
	devs := k.initNS.NetDevs
	for i, d := range devs {
		if d.Name == name {
			k.initNS.NetDevs = append(devs[:i], devs[i+1:]...)
			k.bump(MaskNet | MaskNS)
			return
		}
	}
}

// adoptPID assigns the next namespace pid for a newly spawned host task.
func (s *NSSet) adoptPID(hostPID int) int {
	if s.pidMap == nil {
		return hostPID
	}
	ns := s.nextPID
	s.nextPID++
	s.pidMap[hostPID] = ns
	return ns
}

// releasePID removes a host pid from the namespace mapping.
func (s *NSSet) releasePID(hostPID int) {
	if s.pidMap != nil {
		delete(s.pidMap, hostPID)
	}
}
