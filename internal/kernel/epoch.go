package kernel

// Subsystem partitions the kernel's mutable accounting state into the
// coarse dirty-tracking domains the incremental scan engine (internal/engine)
// cares about. Every mutating entry point bumps the generation counters of
// the subsystems it touches; every pseudo-file handler declares (via
// pseudofs dependency tags) which subsystems its rendering reads. A path's
// render is guaranteed unchanged while the combined epoch of its dependency
// mask is unchanged — the snapshot/generation-counter design of
// procfs-scraping monitors, applied to the simulated kernel.
//
// The granularity is deliberately coarse (five domains, not per-file): a
// false "dirty" only costs a redundant re-render, while a false "clean"
// would violate the engine's byte-identity guarantee. When in doubt a
// mutation site bumps more subsystems, never fewer.
type Subsystem int

// The dirty-tracking subsystems. NumSubsystems bounds the array of
// counters; it is not itself a subsystem.
const (
	SubSched Subsystem = iota // scheduler, tasks, cgroups, interrupts, locks, timers
	SubMem                    // memory zones, VFS, VM counters, block IO, entropy
	SubNet                    // network devices, softnet, net_prio
	SubPower                  // RAPL energy, thermal, cpuidle residency
	SubNS                     // namespace creation/teardown, IPC, hostname
	NumSubsystems
)

// String implements fmt.Stringer.
func (s Subsystem) String() string {
	switch s {
	case SubSched:
		return "sched"
	case SubMem:
		return "mem"
	case SubNet:
		return "net"
	case SubPower:
		return "power"
	case SubNS:
		return "ns"
	default:
		return "subsystem(?)"
	}
}

// SubsystemMask is a bitmask over subsystems; pseudo-file dependency tags
// and mutation sites both use it.
type SubsystemMask uint32

// Mask constants, one bit per subsystem.
const (
	MaskSched SubsystemMask = 1 << SubSched
	MaskMem   SubsystemMask = 1 << SubMem
	MaskNet   SubsystemMask = 1 << SubNet
	MaskPower SubsystemMask = 1 << SubPower
	MaskNS    SubsystemMask = 1 << SubNS
	MaskAll   SubsystemMask = 1<<NumSubsystems - 1
)

// Has reports whether the mask includes subsystem s.
func (m SubsystemMask) Has(s Subsystem) bool { return m&(1<<s) != 0 }

// Epochs is a point-in-time snapshot of the per-subsystem generation
// counters. It is a value type: comparisons are plain ==.
type Epochs [NumSubsystems]uint64

// Combined folds the counters selected by mask into a single comparable
// epoch. Two Combined values over the same mask are equal iff none of the
// masked subsystems were mutated in between — counters only ever increase,
// and the sum of monotone counters is monotone.
func (e Epochs) Combined(mask SubsystemMask) uint64 {
	var sum uint64
	for s := Subsystem(0); s < NumSubsystems; s++ {
		if mask.Has(s) {
			sum += e[s]
		}
	}
	return sum
}

// bump advances the generation counters of every subsystem in mask.
// Mutation normally happens on the clock thread, but one read path can
// reach a bump concurrently (a container energy_uj read triggers lazy
// power accounting, whose budget enforcer adjusts a cgroup quota through
// Cgroup()), so the counters are atomics: bumps never race with the
// engine's Epochs() snapshots.
func (k *Kernel) bump(mask SubsystemMask) {
	for s := Subsystem(0); s < NumSubsystems; s++ {
		if mask.Has(s) {
			k.epochs[s].Add(1)
		}
	}
}

// Touch is the exported escape hatch for mutations performed outside the
// kernel's own entry points (e.g. code that writes NSSet or Cgroup fields
// directly). Callers that mutate kernel-reachable state without going
// through a bumping method must Touch the affected subsystems, or the
// incremental engine may serve stale renders.
func (k *Kernel) Touch(mask SubsystemMask) { k.bump(mask) }

// Epochs returns a snapshot of the per-subsystem generation counters.
// Like every other snapshot accessor it is a pure read, safe from many
// goroutines while the clock is paused.
func (k *Kernel) Epochs() Epochs {
	var e Epochs
	for s := Subsystem(0); s < NumSubsystems; s++ {
		e[s] = k.epochs[s].Load()
	}
	return e
}

// Generation returns the total number of subsystem bumps since boot — a
// single monotone counter that changes whenever anything changed
// (equivalent to Epochs().Combined(MaskAll)).
func (k *Kernel) Generation() uint64 { return k.Epochs().Combined(MaskAll) }
