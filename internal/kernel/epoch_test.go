package kernel

import (
	"testing"

	"repro/internal/perfcount"
)

// delta returns the per-subsystem epoch movement between two snapshots.
func delta(before, after Epochs) Epochs {
	var d Epochs
	for i := range d {
		d[i] = after[i] - before[i]
	}
	return d
}

// moved reports which subsystems moved as a mask.
func moved(before, after Epochs) SubsystemMask {
	var m SubsystemMask
	for s := Subsystem(0); s < NumSubsystems; s++ {
		if after[s] != before[s] {
			m |= 1 << s
		}
	}
	return m
}

func TestEpochBumpPerMutation(t *testing.T) {
	k := New(Options{Hostname: "epoch-host", Seed: 7})
	d := 1.0
	r := perfcount.Rates{}

	cases := []struct {
		name string
		mut  func()
		want SubsystemMask // subsystems that MUST move (supersets allowed: tags are conservative)
	}{
		{"Tick", func() { k.Tick(k.Now()+1, 1) }, MaskSched | MaskMem | MaskNet | MaskPower},
		{"Spawn", func() { k.Spawn("w", k.InitNS(), "/docker/e1", d, r) }, MaskSched | MaskMem},
		{"Cgroup", func() { k.Cgroup("/docker/e2") }, MaskSched | MaskNet},
		{"NewNSSet", func() { k.NewNSSet("tenant", "/docker/e2") }, MaskNS},
		{"AddHostNetDev", func() { k.AddHostNetDev("veth99") }, MaskNet | MaskNS},
		{"RemoveHostNetDev", func() { k.RemoveHostNetDev("veth99") }, MaskNet | MaskNS},
		{"Touch", func() { k.Touch(MaskPower) }, MaskPower},
	}
	for _, tc := range cases {
		before := k.Epochs()
		tc.mut()
		after := k.Epochs()
		got := moved(before, after)
		if got&tc.want != tc.want {
			t.Errorf("%s: moved mask %05b, want at least %05b (delta %v)",
				tc.name, got, tc.want, delta(before, after))
		}
	}
}

func TestEpochExitAndLocks(t *testing.T) {
	k := New(Options{Seed: 3})
	task := k.Spawn("w", k.InitNS(), "/docker/x", 1, perfcount.Rates{})

	before := k.Epochs()
	k.AddFileLock(task, "WRITE", 42)
	if got := moved(before, k.Epochs()); got&MaskSched == 0 {
		t.Errorf("AddFileLock: sched epoch did not move (mask %05b)", got)
	}

	before = k.Epochs()
	k.Exit(task.HostPID)
	if got := moved(before, k.Epochs()); got&(MaskSched|MaskMem) != MaskSched|MaskMem {
		t.Errorf("Exit: moved mask %05b, want sched|mem", got)
	}
}

func TestEpochsMonotoneAndCombined(t *testing.T) {
	k := New(Options{Seed: 5})
	prev := k.Epochs()
	prevAll := prev.Combined(MaskAll)
	for i := 0; i < 10; i++ {
		k.Tick(k.Now()+1, 1)
		k.Cgroup("/docker/loop")
		cur := k.Epochs()
		for s := Subsystem(0); s < NumSubsystems; s++ {
			if cur[s] < prev[s] {
				t.Fatalf("step %d: subsystem %s went backwards: %d -> %d", i, s, prev[s], cur[s])
			}
		}
		all := cur.Combined(MaskAll)
		if all <= prevAll {
			t.Fatalf("step %d: combined epoch not strictly increasing across mutations: %d -> %d", i, prevAll, all)
		}
		prev, prevAll = cur, all
	}

	// Combined over a partial mask sums exactly the selected counters.
	e := k.Epochs()
	want := e[SubSched] + e[SubNet]
	if got := e.Combined(MaskSched | MaskNet); got != want {
		t.Errorf("Combined(sched|net) = %d, want %d", got, want)
	}
	if got := e.Combined(0); got != 0 {
		t.Errorf("Combined(0) = %d, want 0", got)
	}
}

func TestGenerationUnaffectedByReads(t *testing.T) {
	k := New(Options{Seed: 11})
	k.Tick(5, 1)
	gen := k.Generation()
	// A broad sample of read-only views must not move any epoch.
	_ = k.MeminfoSnapshot()
	_ = k.LoadAvgSnapshot()
	_ = k.StatSnapshot()
	_ = k.Tasks()
	_ = k.Cgroups()
	_ = k.HostNetDevices()
	_, _ = k.Uptime()
	if got := k.Generation(); got != gen {
		t.Errorf("read-only views moved the generation: %d -> %d", gen, got)
	}
}

func TestSubsystemAndMaskNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Subsystem(0); s < NumSubsystems; s++ {
		n := s.String()
		if n == "" || seen[n] {
			t.Fatalf("subsystem %d has empty or duplicate name %q", s, n)
		}
		seen[n] = true
		if !MaskAll.Has(s) {
			t.Errorf("MaskAll does not contain %s", n)
		}
	}
	if MaskSched.Has(SubNet) {
		t.Error("MaskSched unexpectedly contains net")
	}
}
