package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/perfcount"
)

// TestPropertyPIDUniquenessUnderChurn spawns and exits tasks in arbitrary
// interleavings and checks the core PID-namespace invariants: host pids are
// unique, namespace pids are unique within a namespace, and the namespaced
// task view is always a subset of the global view.
func TestPropertyPIDUniquenessUnderChurn(t *testing.T) {
	f := func(ops []uint8) bool {
		k := New(Options{Seed: 1})
		ns1 := k.NewNSSet("a", "/a")
		ns2 := k.NewNSSet("b", "/b")
		var live []*Task
		for _, op := range ops {
			switch op % 3 {
			case 0:
				live = append(live, k.Spawn("t", ns1, "/a", 0.1, perfcount.Rates{}))
			case 1:
				live = append(live, k.Spawn("t", ns2, "/b", 0.1, perfcount.Rates{}))
			case 2:
				if len(live) > 0 {
					k.Exit(live[0].HostPID)
					live = live[1:]
				}
			}
		}
		// Host pid uniqueness.
		hostPIDs := map[int]bool{}
		for _, task := range k.Tasks() {
			if hostPIDs[task.HostPID] {
				return false
			}
			hostPIDs[task.HostPID] = true
		}
		// NS pid uniqueness and subset property per namespace.
		for _, ns := range []*NSSet{ns1, ns2} {
			seen := map[int]bool{}
			for _, task := range k.TasksInNS(ns) {
				if seen[task.NSPID] {
					return false
				}
				seen[task.NSPID] = true
				if !hostPIDs[task.HostPID] {
					return false // visible in NS but not globally
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUptimeMonotone checks that uptime and every accumulating
// counter never move backwards under arbitrary positive step sequences.
func TestPropertyUptimeMonotone(t *testing.T) {
	f := func(steps []uint8) bool {
		k := New(Options{Seed: 2})
		k.Spawn("w", k.InitNS(), "/", 2, perfcount.Rates{Instructions: 6e9, Cycles: 6.8e9})
		prevUp, prevIdle := k.Uptime()
		prevStat := k.StatSnapshot()
		for _, s := range steps {
			dt := float64(s%50)/10 + 0.1
			k.Tick(k.Now()+dt, dt)
			up, idle := k.Uptime()
			stat := k.StatSnapshot()
			if up < prevUp || idle < prevIdle {
				return false
			}
			if stat.IntrTotal < prevStat.IntrTotal || stat.CtxtSwitches < prevStat.CtxtSwitches {
				return false
			}
			prevUp, prevIdle, prevStat = up, idle, stat
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySchedulerConservation: busy + idle core-time equals total
// core-time for any demand level.
func TestPropertySchedulerConservation(t *testing.T) {
	f := func(demandRaw uint8) bool {
		demand := float64(demandRaw%16) + 0.5
		k := New(Options{Cores: 8, Seed: 3})
		k.Spawn("w", k.InitNS(), "/", demand, perfcount.Rates{Instructions: 3e9 * demand, Cycles: 3.4e9 * demand})
		_, idle0 := k.Uptime()
		used0 := k.Cgroup("/").CPUUsageNS
		for i := 0; i < 10; i++ {
			k.Tick(k.Now()+1, 1)
		}
		_, idle1 := k.Uptime()
		used1 := k.Cgroup("/").CPUUsageNS
		gotIdle := idle1 - idle0
		gotBusy := (used1 - used0) / 1e9
		total := 8.0 * 10
		return abs(gotIdle+gotBusy-total) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestPropertyQuotaNeverExceeded: cpuacct usage per interval never exceeds
// the cgroup quota.
func TestPropertyQuotaNeverExceeded(t *testing.T) {
	f := func(quotaRaw, demandRaw uint8) bool {
		quota := float64(quotaRaw%8)/2 + 0.5  // 0.5 .. 4
		demand := float64(demandRaw%12) + 0.5 // 0.5 .. 12.5
		k := New(Options{Cores: 8, Seed: 4})
		ns := k.NewNSSet("c", "/c")
		k.Spawn("w", ns, "/c", demand, perfcount.Rates{Instructions: 3e9 * demand, Cycles: 3.4e9 * demand})
		k.Cgroup("/c").QuotaCores = quota
		before := k.Cgroup("/c").CPUUsageNS
		for i := 0; i < 5; i++ {
			k.Tick(k.Now()+1, 1)
		}
		used := (k.Cgroup("/c").CPUUsageNS - before) / 1e9 / 5
		return used <= quota+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
