// Package kernel simulates the slice of the Linux kernel that the paper's
// leakage study depends on: tasks and a CPU scheduler, the seven namespace
// types, cgroup hierarchies (cpuacct, perf_event, net_prio), and the global
// accounting state surfaced through procfs and sysfs — interrupts, softirqs,
// scheduler statistics, memory zones, file locks, timers, the entropy pool,
// loadavg, and uptime.
//
// The crucial design property is that every piece of state exists in two
// forms, mirroring Linux 4.7's *incomplete* container support:
//
//   - global (per-kernel) state reached by handlers that never learned about
//     namespaces — the leakage channels of Table I; and
//   - namespaced state reached through an NSSet — what a correct
//     implementation would expose.
//
// The pseudo-filesystem (internal/pseudofs) builds both kinds of handlers on
// top of this package, and the leakage detector (internal/core) finds the
// difference exactly the way the paper's cross-validation tool does.
package kernel

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/fastrand"
	"repro/internal/perfcount"
	"repro/internal/power"
)

// Options configures a simulated kernel (one per physical host).
type Options struct {
	Hostname      string
	Cores         int
	MemTotalKB    uint64
	Seed          int64
	BootWallClock int64 // Unix seconds of boot, reported as btime in /proc/stat
	KernelVersion string
	CPUModel      string
	CPUMHz        float64
	// WallClockNow is the wall-clock Unix time corresponding to simulated
	// t=0; together with BootWallClock it sets the host's starting uptime.
	WallClockNow int64
	Power        power.Config

	// ReferenceLayout selects the pre-SoA tick layout: every per-CPU
	// accumulator row (irq, softirq, softnet, cpuidle) gets its own
	// standalone slice and the tick drives them through per-row fused
	// calls instead of the row-batched struct-of-arrays kernels. The two
	// layouts are contracted to produce identical bytes; the property
	// suite ticks both side by side and compares every rendered path.
	// Production code never sets this.
	ReferenceLayout bool
}

func (o *Options) fillDefaults() {
	if o.Hostname == "" {
		o.Hostname = "host"
	}
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.MemTotalKB == 0 {
		o.MemTotalKB = 16 * 1024 * 1024 // 16 GiB
	}
	if o.BootWallClock == 0 {
		o.BootWallClock = 1478649600 // fleet install epoch
	}
	if o.KernelVersion == "" {
		o.KernelVersion = "4.7.0-repro"
	}
	if o.CPUModel == "" {
		o.CPUModel = "Intel(R) Core(TM) i7-6700 CPU @ 3.40GHz"
	}
	if o.CPUMHz == 0 {
		o.CPUMHz = 3400.0
	}
	if o.WallClockNow == 0 {
		o.WallClockNow = 1480291200 // 2016-11-28, the paper's check date
	}
	if o.Power.Cores == 0 {
		o.Power.Cores = o.Cores
	}
}

// Kernel is one simulated host kernel. It implements simclock.Ticker; drive
// it from the simulation clock.
//
// Concurrency: Tick, Spawn/Exit, and every other mutating call must stay on
// the single clock thread — the kernel is NOT safe for concurrent
// mutation. The pseudo-filesystem *read* path, however, is safe to run
// from many goroutines while the clock is paused: all snapshot accessors
// are pure reads, and the one volatile read (/proc/sys/kernel/random/uuid)
// draws from a dedicated mutex-guarded RNG so concurrent readers never
// race on — or perturb — the simulation's jitter stream. See
// ARCHITECTURE.md's concurrency contract.
type Kernel struct {
	opts Options

	// rng drives the simulation's jitter stream. It is a fastrand.Rand —
	// bit-identical to math/rand for the same seed, but inlinable: Tick
	// draws ~850 jitter values per step at 24 cores, making this the
	// hottest call site in the whole substrate.
	rng *fastrand.Rand

	// uuidRNG feeds /proc/sys/kernel/random/uuid reads. It is deliberately
	// separate from rng: reads happen concurrently during parallel
	// cross-validation, and must neither race on nor reorder the jitter
	// stream that drives the deterministic simulation.
	uuidMu  sync.Mutex
	uuidRNG *fastrand.Rand

	meter *power.Meter
	freq  *power.Governor
	perf  *perfcount.Monitor

	now        float64 // simulated time (uptime advances with it)
	uptimeBase float64 // uptime already accumulated before t=0
	bootID     string
	initNS     *NSSet
	nextNSID   uint64
	nextPID    int

	// nsSets registers every namespace set ever created on this kernel
	// (init first), so Snapshot can capture and Restore rewind their
	// mutable state (pid maps, device lists, shm tables) in place.
	nsSets []*NSSet

	tasks      map[int]*Task
	cgroups    map[string]*Cgroup
	nextLockID int
	sysLocks   []FileLock
	sysLockSeq uint64

	// taskList mirrors tasks in ascending-pid order and cgroupList mirrors
	// cgroups in creation order; rootCG caches cgroups["/"] (created in New,
	// never removed). Tick iterates the slices instead of the maps: the map
	// versions cost randomized-iteration and string-hash overhead on every
	// tick, and the accumulations they feed are order-invariant (integer
	// counts, and float sums whose stability under Go's randomized map order
	// the byte-identity goldens have always depended on).
	taskList   []*Task
	cgroupList []*Cgroup
	rootCG     *Cgroup

	// Scheduler & CPU accounting.
	cpu          []CPUTimes
	idleCoreSec  float64
	ctxtSwitches float64
	forksTotal   uint64
	load1        float64
	load5        float64
	load15       float64
	lastBusy     float64 // busy core-equivalents of the last tick
	newidleCost  []uint64

	// Interrupt accounting. The PerCPU slices of every IRQ and SoftIRQ are
	// views into jitterRows (see below) unless ReferenceLayout is set.
	irqs     []*IRQ
	softirqs []*SoftIRQ

	// Struct-of-arrays backing for the tick's jitter fan-outs. jitterRows
	// holds len(irqs)+len(softirqs) consecutive rows of Cores elements —
	// irq rows first, then softirq rows, in registration order — followed
	// by one softnet row; idleRows holds usage/time row pairs per cpuidle
	// state. The AoS structs (IRQ.PerCPU, SoftIRQ.PerCPU, IdleState.*,
	// softnetPackets) are subslice views over these arrays, so renderers
	// are layout-oblivious while the tick updates — and Snapshot copies —
	// whole blocks at once. Empty under ReferenceLayout.
	jitterRows []float64
	idleRows   []float64

	// rowScales/idleScaleA/idleScaleB are per-tick scratch for the fused
	// row kernels' per-row leading factors.
	rowScales  []float64
	idleScaleA []float64
	idleScaleB []float64

	// Memory accounting.
	memBaseUsedKB uint64
	cachedKB      float64
	numa          NUMAStats

	// VFS accounting.
	dentries     float64
	dentryUnused float64
	inodes       float64
	inodesFree   float64
	filesOpen    float64
	ext4Groups   []Ext4Group

	// VM & block-IO accounting (channels beyond Table I that the
	// detector discovers on its own).
	pgFaults       float64
	pgAllocs       float64
	sectorsRead    float64
	sectorsWritten float64
	softnetPackets []float64 // per CPU

	// Entropy pool.
	entropyAvail float64

	// cpuidle accounting: per state, usage count and total microseconds.
	idleStates []IdleState

	// schedstat accumulation per cpu (nanoseconds).
	schedRunNS  []float64
	schedWaitNS []float64
	timeslices  []uint64

	// epochs holds the per-subsystem generation counters behind the
	// incremental scan engine's dirty tracking (see epoch.go). Bumped via
	// bump(); atomic because one read path can reach a bump concurrently.
	epochs [NumSubsystems]atomic.Uint64

	// Tick scratch space, reused every step so the hot loop allocates
	// nothing. Safe because Tick runs on a single shard worker and never
	// hands these slices/maps to code that retains them (power.Meter.Step
	// copies what it needs).
	perCoreScratch []float64
	sharesScratch  []float64
	quotaDemand    map[string]float64
	quotaOut       map[string]float64

	// Per-task tick mirrors, gathered once at the top of Tick into
	// contiguous arrays so the three task loops (demand sum, activity
	// aggregation, per-cgroup accounting) read sequential float64 slots
	// instead of chasing *Task pointers and re-resolving quota factors
	// through a string-keyed map each pass. taskDemand[i] mirrors
	// taskList[i].DemandCores; taskQF[i] is the task's quota factor (1
	// when unlimited). Mirrors, not authority: BenignLoad rewrites
	// Task.DemandCores between ticks, so the gather is what keeps the
	// arrays coherent.
	taskDemand []float64
	taskQF     []float64

	// Load-average decay factors, memoized on the last dt seen: the
	// driving clock steps with a constant dt, so the three math.Exp calls
	// per tick collapse to three cached multiplies. Recomputing on a dt
	// change keeps the result bit-identical to the unmemoized form.
	decayDt  float64
	decayA1  float64
	decayA5  float64
	decayA15 float64
}

// CPUTimes is the per-core /proc/stat accounting in USER_HZ(100) ticks.
type CPUTimes struct {
	User, Nice, System, Idle, IOWait, IRQ, SoftIRQ float64
}

// IRQ is one hardware interrupt line with per-CPU counters.
type IRQ struct {
	Name       string // e.g. "0", "24", "LOC"
	Desc       string // e.g. "IO-APIC timer", "eth0"
	PerCPU     []float64
	ratePerSec func(k *Kernel) float64
}

// SoftIRQ is one softirq class with per-CPU counters.
type SoftIRQ struct {
	Name       string
	PerCPU     []float64
	ratePerSec func(k *Kernel) float64
}

// IdleState is one cpuidle C-state with per-CPU usage/time accounting.
type IdleState struct {
	Name         string
	UsagePerCPU  []float64 // entry counts
	TimeUSPerCPU []float64 // cumulative residency, microseconds
}

// NUMAStats is the node-level allocation accounting behind numastat.
type NUMAStats struct {
	Hit, Miss, Foreign, InterleaveHit, LocalNode, OtherNode float64
}

// Ext4Group is one block-group row of /proc/fs/ext4/sda1/mb_groups.
type Ext4Group struct {
	Free  int
	Frags int
	First int
}

// New creates a booted kernel at simulated time zero.
func New(opts Options) *Kernel {
	opts.fillDefaults()
	k := &Kernel{
		opts:    opts,
		rng:     fastrand.New(opts.Seed),
		perf:    perfcount.NewMonitor(),
		tasks:   make(map[int]*Task),
		cgroups: make(map[string]*Cgroup),
		nextPID: 300, // early pids are kernel threads
	}
	k.meter = power.New(opts.Power)
	k.freq = power.NewGovernor(power.GovernorConfig{
		Cores:  opts.Cores,
		MaxKHz: uint64(opts.CPUMHz * 1000),
	})
	k.uuidRNG = fastrand.New(opts.Seed ^ 0x75756964) // "uuid"
	k.bootID = uuidFrom(k.rng)                       // same draw order as always
	if opts.WallClockNow > opts.BootWallClock {
		k.uptimeBase = float64(opts.WallClockNow - opts.BootWallClock)
	}
	k.initNS = k.newInitNS()
	k.cpu = make([]CPUTimes, opts.Cores)
	k.perCoreScratch = make([]float64, opts.Cores)
	k.sharesScratch = make([]float64, opts.Cores)
	k.quotaDemand = make(map[string]float64, 8)
	k.quotaOut = make(map[string]float64, 8)
	k.newidleCost = make([]uint64, opts.Cores)
	k.schedRunNS = make([]float64, opts.Cores)
	k.schedWaitNS = make([]float64, opts.Cores)
	k.timeslices = make([]uint64, opts.Cores)
	k.memBaseUsedKB = opts.MemTotalKB / 10 // kernel + system services
	k.cachedKB = float64(opts.MemTotalKB) * 0.15
	k.entropyAvail = 3000 + float64(k.rng.Intn(800))
	k.dentries = 80000 + float64(k.rng.Intn(20000))
	k.dentryUnused = k.dentries * 0.8
	k.inodes = 60000 + float64(k.rng.Intn(15000))
	k.inodesFree = 500 + float64(k.rng.Intn(300))
	k.filesOpen = 3000 + float64(k.rng.Intn(2000))
	// Historic idle: the host was mostly idle before the simulation window.
	k.idleCoreSec = k.uptimeBase * float64(opts.Cores) * (0.7 + 0.2*k.rng.Float64())
	for i := range k.newidleCost {
		k.newidleCost[i] = uint64(20000 + k.rng.Intn(40000))
	}

	k.irqs = []*IRQ{
		{Name: "0", Desc: "IO-APIC    2-edge      timer", ratePerSec: func(*Kernel) float64 { return 0.01 }},
		{Name: "8", Desc: "IO-APIC    8-edge      rtc0", ratePerSec: func(*Kernel) float64 { return 0.001 }},
		{Name: "24", Desc: "PCI-MSI 1048576-edge      eth0", ratePerSec: func(k *Kernel) float64 { return 200 + 5000*k.lastBusy/float64(k.opts.Cores) }},
		{Name: "25", Desc: "PCI-MSI 512000-edge      ahci[0000:00:17.0]", ratePerSec: func(k *Kernel) float64 { return 50 + 400*k.lastBusy/float64(k.opts.Cores) }},
		{Name: "LOC", Desc: "Local timer interrupts", ratePerSec: func(*Kernel) float64 { return 250 }},
		{Name: "RES", Desc: "Rescheduling interrupts", ratePerSec: func(k *Kernel) float64 { return 30 + 500*k.lastBusy/float64(k.opts.Cores) }},
		{Name: "CAL", Desc: "Function call interrupts", ratePerSec: func(k *Kernel) float64 { return 10 + 100*k.lastBusy/float64(k.opts.Cores) }},
		{Name: "TLB", Desc: "TLB shootdowns", ratePerSec: func(k *Kernel) float64 { return 5 + 200*k.lastBusy/float64(k.opts.Cores) }},
	}
	// (PerCPU rows are bound to the SoA backing — or standalone slices
	// under ReferenceLayout — after the softirq table below.)
	k.softirqs = []*SoftIRQ{
		{Name: "HI", ratePerSec: func(*Kernel) float64 { return 1 }},
		{Name: "TIMER", ratePerSec: func(*Kernel) float64 { return 250 }},
		{Name: "NET_TX", ratePerSec: func(k *Kernel) float64 { return 20 + 1000*k.lastBusy/float64(k.opts.Cores) }},
		{Name: "NET_RX", ratePerSec: func(k *Kernel) float64 { return 200 + 5000*k.lastBusy/float64(k.opts.Cores) }},
		{Name: "BLOCK", ratePerSec: func(k *Kernel) float64 { return 30 + 300*k.lastBusy/float64(k.opts.Cores) }},
		{Name: "TASKLET", ratePerSec: func(*Kernel) float64 { return 5 }},
		{Name: "SCHED", ratePerSec: func(k *Kernel) float64 { return 100 + 400*k.lastBusy/float64(k.opts.Cores) }},
		{Name: "HRTIMER", ratePerSec: func(*Kernel) float64 { return 2 }},
		{Name: "RCU", ratePerSec: func(k *Kernel) float64 { return 150 + 300*k.lastBusy/float64(k.opts.Cores) }},
	}
	k.idleStates = []IdleState{
		{Name: "POLL"}, {Name: "C1"}, {Name: "C3"}, {Name: "C6"},
	}
	if opts.ReferenceLayout {
		// Pre-SoA reference: every row its own allocation.
		for _, irq := range k.irqs {
			irq.PerCPU = make([]float64, opts.Cores)
		}
		for _, s := range k.softirqs {
			s.PerCPU = make([]float64, opts.Cores)
		}
		for i := range k.idleStates {
			k.idleStates[i].UsagePerCPU = make([]float64, opts.Cores)
			k.idleStates[i].TimeUSPerCPU = make([]float64, opts.Cores)
		}
		k.softnetPackets = make([]float64, opts.Cores)
	} else {
		// Struct-of-arrays backing: irq rows, then softirq rows, then the
		// softnet row, in one contiguous block; cpuidle usage/time pairs in
		// a second. The AoS structs alias subslices of these blocks.
		cores := opts.Cores
		jrows := len(k.irqs) + len(k.softirqs)
		k.jitterRows = make([]float64, (jrows+1)*cores)
		row := func(r int) []float64 { return k.jitterRows[r*cores : (r+1)*cores : (r+1)*cores] }
		for i, irq := range k.irqs {
			irq.PerCPU = row(i)
		}
		for i, s := range k.softirqs {
			s.PerCPU = row(len(k.irqs) + i)
		}
		k.softnetPackets = row(jrows)
		k.idleRows = make([]float64, 2*len(k.idleStates)*cores)
		for i := range k.idleStates {
			k.idleStates[i].UsagePerCPU = k.idleRows[(2*i)*cores : (2*i+1)*cores : (2*i+1)*cores]
			k.idleStates[i].TimeUSPerCPU = k.idleRows[(2*i+1)*cores : (2*i+2)*cores : (2*i+2)*cores]
		}
		k.rowScales = make([]float64, jrows)
		k.idleScaleA = make([]float64, len(k.idleStates))
		k.idleScaleB = make([]float64, len(k.idleStates))
	}
	k.ext4Groups = make([]Ext4Group, 16)
	for i := range k.ext4Groups {
		k.ext4Groups[i] = Ext4Group{
			Free:  8000 + k.rng.Intn(24000),
			Frags: 10 + k.rng.Intn(400),
			First: i * 32768,
		}
	}

	// The root cgroup always exists (and is never removed — RemoveCgroup
	// refuses "/" — so the cached pointer stays valid for the kernel's
	// lifetime).
	k.rootCG = &Cgroup{Path: "/"}
	k.cgroups["/"] = k.rootCG
	k.cgroupList = append(k.cgroupList, k.rootCG)
	k.perf.CreateGroup("/")
	return k
}

// Options returns the kernel's effective options.
func (k *Kernel) Options() Options { return k.opts }

// Meter exposes the host power meter (the simulated RAPL hardware).
func (k *Kernel) Meter() *power.Meter { return k.meter }

// Freq exposes the per-core DVFS governor behind the cpufreq sysfs files.
func (k *Kernel) Freq() *power.Governor { return k.freq }

// Perf exposes the perf_event accounting monitor.
func (k *Kernel) Perf() *perfcount.Monitor { return k.perf }

// BootID returns the per-boot random UUID behind
// /proc/sys/kernel/random/boot_id — the paper's strongest co-residence
// indicator.
func (k *Kernel) BootID() string { return k.bootID }

// Now returns seconds since boot (simulated).
func (k *Kernel) Now() float64 { return k.now }

// Uptime returns (uptime, aggregate idle core-seconds) as /proc/uptime
// reports them. Uptime includes the host's pre-simulation age, so hosts
// booted at different wall-clock times report distinct values.
func (k *Kernel) Uptime() (up, idle float64) { return k.uptimeBase + k.now, k.idleCoreSec }

// InitNS returns the host's initial namespace set.
func (k *Kernel) InitNS() *NSSet { return k.initNS }

// genUUID produces an RFC-4122-shaped random UUID. It draws from the
// dedicated uuid RNG under a mutex: /proc/sys/kernel/random/uuid is the one
// pseudo-file whose read is inherently volatile, and parallel
// cross-validation reads it from many goroutines at once. Serializing only
// this draw keeps the read race-free without perturbing k.rng, whose
// consumption order the deterministic simulation depends on.
func (k *Kernel) genUUID() string {
	k.uuidMu.Lock()
	defer k.uuidMu.Unlock()
	return uuidFrom(k.uuidRNG)
}

// uuidFrom formats 16 bytes of rng output as an RFC-4122 UUID.
func uuidFrom(rng *fastrand.Rand) string {
	b := make([]byte, 16)
	rng.Read(b)
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	return fmt.Sprintf("%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// Tick advances the kernel by dt seconds of simulated time. It schedules
// tasks onto cores, integrates power/thermal state, and updates every
// accounting structure surfaced through the pseudo-filesystems. now is the
// global simulation time; the kernel treats its own boot as t=0 of the
// global clock it is driven by.
func (k *Kernel) Tick(now, dt float64) {
	k.now = now
	// A tick mutates scheduler, memory/VFS, network, and power accounting
	// all at once; namespace structure is untouched.
	k.bump(MaskSched | MaskMem | MaskNet | MaskPower)

	// 1. Schedule. First apply per-cgroup CPU quotas (CFS bandwidth
	// control — the throttling lever the power-based namespace's budget
	// enforcement uses), then derive the global speedup factor when the
	// host is oversubscribed, and the aggregate activity vector.
	//
	// quotaF is nil when no cgroup carries a quota (the common case:
	// undefended worlds never set QuotaCores), which skips two map
	// allocations per tick; multiplying by an explicit 1.0 factor and
	// skipping the multiply are bit-identical in IEEE-754, so both paths
	// produce the same bytes.
	quotaF := k.quotaFactors()
	// Gather the per-task mirrors: contiguous demand and quota-factor
	// arrays in taskList order. Every later loop indexes these instead of
	// re-reading Task fields and re-resolving quota factors; multiplying
	// by an explicit 1.0 factor and skipping the multiply are bit-identical
	// in IEEE-754, so the unconditional d*qf form below matches the
	// historical branchy one byte for byte.
	if cap(k.taskDemand) < len(k.taskList) {
		k.taskDemand = make([]float64, len(k.taskList), 2*len(k.taskList)+8)
		k.taskQF = make([]float64, len(k.taskList), 2*len(k.taskList)+8)
	}
	k.taskDemand = k.taskDemand[:len(k.taskList)]
	k.taskQF = k.taskQF[:len(k.taskList)]
	var demand float64
	for i, t := range k.taskList {
		qf := 1.0
		if quotaF != nil {
			qf = quotaF[t.CgroupPath]
		}
		k.taskDemand[i] = t.DemandCores
		k.taskQF[i] = qf
		demand += t.DemandCores * qf
	}
	f := 1.0
	cores := float64(k.opts.Cores)
	if demand > cores {
		f = cores / demand
	}
	busy := demand * f
	k.lastBusy = busy

	var agg perfcount.Rates
	perCore := k.perCoreScratch
	for i := range perCore {
		perCore[i] = 0
	}
	var pinnedLoad float64
	for i, t := range k.taskList {
		tf := f * k.taskQF[i]
		r := t.Rates.Times(tf)
		agg = agg.Plus(r)
		if len(t.Pinned) > 0 {
			share := k.taskDemand[i] * tf / float64(len(t.Pinned))
			for _, c := range t.Pinned {
				if c >= 0 && c < len(perCore) {
					perCore[c] += share
					pinnedLoad += share
				}
			}
		}
	}
	// Spread unpinned load evenly.
	unpinned := busy - pinnedLoad
	if unpinned < 0 {
		unpinned = 0
	}
	for i := range perCore {
		perCore[i] += unpinned / cores
	}
	// Normalize to power-share fractions.
	shares := k.sharesScratch
	for i := range shares {
		shares[i] = 0
	}
	if busy > 0 {
		for i, u := range perCore {
			shares[i] = u / busy
		}
	}

	// 2. Power capping + energy integration.
	admitted, capFactor := k.meter.Throttle(agg)
	k.meter.Step(admitted, dt, shares)
	eff := f * capFactor

	// 3. Per-cgroup accounting: cpuacct cycles and perf counters. The root
	// cgroup receives the whole-host aggregate below, so tasks living
	// directly in "/" are skipped here to avoid double counting.
	for i, t := range k.taskList {
		if t.CgroupPath == "/" {
			continue
		}
		cg := t.cg // cached k.cgroups[t.CgroupPath]; nil after RemoveCgroup
		if cg == nil {
			continue
		}
		teff := eff * k.taskQF[i]
		cpuSec := k.taskDemand[i] * teff * dt
		cg.CPUUsageNS += cpuSec * 1e9
		k.perf.Account(t.CgroupPath, t.Rates.Times(teff).Scale(dt))
	}
	// Root cgroup observes everything (host-wide accounting).
	k.rootCG.CPUUsageNS += busy * capFactor * dt * 1e9
	k.perf.Account("/", agg.Times(capFactor).Scale(dt))

	// 4. CPU time accounting (USER_HZ ticks) and idle bookkeeping.
	idleCores := cores - busy*capFactor
	if idleCores < 0 {
		idleCores = 0
	}
	k.idleCoreSec += idleCores * dt
	hz := 100.0
	for i := range k.cpu {
		util := perCore[i] * capFactor
		if util > 1 {
			util = 1
		}
		k.cpu[i].User += util * 0.92 * dt * hz
		k.cpu[i].System += util * 0.06 * dt * hz
		k.cpu[i].IRQ += util * 0.01 * dt * hz
		k.cpu[i].SoftIRQ += util * 0.01 * dt * hz
		k.cpu[i].Idle += (1 - util) * dt * hz
		k.schedRunNS[i] += util * dt * 1e9
		k.schedWaitNS[i] += util * util * 0.08 * dt * 1e9 // queueing grows with load
		k.timeslices[i] += uint64(util*dt*200) + 1
	}

	// 4b. DVFS: the governor follows the same per-core utilizations the
	// accounting loop just consumed. It sits before section 5 on purpose —
	// Step is RNG-free pure arithmetic, so the jitter stream's draw order
	// (and with it every pre-governor rendered byte) is unchanged.
	k.freq.Step(perCore, capFactor, dt)

	// 5. Interrupts, softirqs, context switches. Two bit-identical
	// transformations keep this section — the widest jitter fan-out of the
	// tick — cheap: the per-CPU share is hoisted out of the inner loops
	// (total/cores is the leading factor of the original left-associated
	// expression), and each row's draw+accumulate is fused into a single
	// fastrand pass (AddScaledJitter applies jitter's expression verbatim
	// while keeping the generator state in registers, with no scratch
	// buffer in between).
	if k.jitterRows != nil {
		// SoA fast path: the 17 irq+softirq rows are consecutive in
		// jitterRows, so one row-batched call covers the whole fan-out with
		// the generator state in registers throughout. Draw order is
		// row-major — identical to the per-row calls of the reference
		// layout.
		for i, irq := range k.irqs {
			k.rowScales[i] = irq.ratePerSec(k) * dt / cores
		}
		for i, s := range k.softirqs {
			k.rowScales[len(k.irqs)+i] = s.ratePerSec(k) * dt / cores
		}
		k.rng.AddScaledJitterRows(k.jitterRows[:len(k.rowScales)*k.opts.Cores], k.opts.Cores, k.rowScales, 0.1)
	} else {
		for _, irq := range k.irqs {
			share := irq.ratePerSec(k) * dt / cores
			k.rng.AddScaledJitter(irq.PerCPU, share, 0.1)
		}
		for _, s := range k.softirqs {
			share := s.ratePerSec(k) * dt / cores
			k.rng.AddScaledJitter(s.PerCPU, share, 0.1)
		}
	}
	k.ctxtSwitches += (300 + 900*busy) * dt

	// 6. Load averages: exponentially-damped toward the runnable count,
	// with the classic 1/5/15-minute constants. The decay factors depend
	// only on dt (constant under a steadily stepping clock), so they are
	// memoized rather than re-derived through math.Exp every tick.
	if dt != k.decayDt || k.decayA1 == 0 {
		k.decayDt = dt
		k.decayA1 = 1 - math.Exp(-dt/(1*60))
		k.decayA5 = 1 - math.Exp(-dt/(5*60))
		k.decayA15 = 1 - math.Exp(-dt/(15*60))
	}
	k.load1 += (demand - k.load1) * k.decayA1
	k.load5 += (demand - k.load5) * k.decayA5
	k.load15 += (demand - k.load15) * k.decayA15

	// 7. cpuidle residency. The per-CPU bases are the leading factors of
	// the original left-associated expressions, hoisted out of the inner
	// loop (bit-identical; saves multiplies and a division per CPU).
	idleFrac := idleCores / cores
	if k.idleRows != nil {
		// SoA fast path: all four usage/time row pairs in one call, draws
		// in state order with usage-then-time pairing per CPU — the exact
		// stream of the four reference AddScaledJitter2 calls.
		for i := range k.idleStates {
			// Deeper states get the longer residencies; POLL gets almost none.
			weight := idleWeights[i]
			k.idleScaleA[i] = idleFrac * weight * 80 * dt
			k.idleScaleB[i] = idleFrac * weight * dt * 1e6 / cores
		}
		k.rng.AddScaledJitter2Rows(k.idleRows, k.opts.Cores, k.idleScaleA, k.idleScaleB, 0.05)
	} else {
		for i := range k.idleStates {
			st := &k.idleStates[i]
			weight := idleWeights[i]
			usage := idleFrac * weight * 80 * dt
			timeUS := idleFrac * weight * dt * 1e6 / cores
			// Two draws per CPU, in the original usage-then-time order,
			// fused with the accumulate (see section 5).
			k.rng.AddScaledJitter2(st.UsagePerCPU, st.TimeUSPerCPU, usage, timeUS, 0.05)
		}
	}

	// 8. Memory & VFS drift.
	k.cachedKB += (20*busy + 5) * dt * k.jitter(0.3)
	if max := float64(k.opts.MemTotalKB) * 0.4; k.cachedKB > max {
		k.cachedKB = max
	}
	k.numa.Hit += (5000 + 200000*busy) * dt
	k.numa.LocalNode = k.numa.Hit
	k.numa.InterleaveHit += 2 * dt
	k.dentries += (40*busy + 2) * dt * k.jitter(0.5)
	k.dentryUnused += (30*busy + 1) * dt * k.jitter(0.5)
	k.inodes += (20*busy + 1) * dt * k.jitter(0.5)
	k.filesOpen += (10*busy - 5 + k.rng.Float64()*10) * dt
	if k.filesOpen < 500 {
		k.filesOpen = 500
	}
	if g := k.rng.Intn(len(k.ext4Groups)); busy > 0.1 {
		k.ext4Groups[g].Free -= k.rng.Intn(5)
		k.ext4Groups[g].Frags += k.rng.Intn(3) - 1
		if k.ext4Groups[g].Free < 0 {
			k.ext4Groups[g].Free = 0
		}
		if k.ext4Groups[g].Frags < 1 {
			k.ext4Groups[g].Frags = 1
		}
	}

	// 8b. VM and block-IO counters: faults and allocations track activity;
	// disk sectors follow the IO-ish share of the load; softnet packets
	// follow network interrupt volume.
	k.pgFaults += (200 + 30000*busy) * dt * k.jitter(0.2)
	k.pgAllocs += (500 + 80000*busy) * dt * k.jitter(0.2)
	k.sectorsRead += (40 + 1500*busy) * dt * k.jitter(0.4)
	k.sectorsWritten += (80 + 2500*busy) * dt * k.jitter(0.4)
	softnet := (25 + 700*busy/cores) * dt
	k.rng.AddScaledJitter(k.softnetPackets, softnet, 0.2)

	// 9. Entropy pool random walk between depletion and refill.
	k.entropyAvail += (k.rng.Float64()*2 - 1) * 120 * dt
	if k.entropyAvail < 180 {
		k.entropyAvail = 180
	}
	if k.entropyAvail > 4096 {
		k.entropyAvail = 4096
	}

	// 10. System lock churn: daemons (dhclient, rsyslog, …) take and drop
	// POSIX locks continuously on a live host, which is what makes
	// /proc/locks a time-varying channel.
	if k.rng.Float64() < 0.2*dt {
		k.sysLockSeq++
		k.sysLocks = append(k.sysLocks, FileLock{
			ID:      -int(k.sysLockSeq), // negative IDs: kernel-internal rows
			Type:    "FLOCK",
			Mode:    "ADVISORY",
			RW:      "WRITE",
			HostPID: 100 + int(k.sysLockSeq)%50,
			Inode:   uint64(k.rng.Intn(1 << 20)),
		})
		if len(k.sysLocks) > 6 {
			k.sysLocks = k.sysLocks[1:]
		}
	}

	// 11. Scheduler-domain balancing cost random walk.
	for i := range k.newidleCost {
		delta := k.rng.Intn(2001) - 1000
		v := int64(k.newidleCost[i]) + int64(delta)
		if v < 5000 {
			v = 5000
		}
		if v > 120000 {
			v = 120000
		}
		k.newidleCost[i] = uint64(v)
	}
}

// quotaFactors computes, per cgroup, the demand scale enforcing its CPU
// quota (1 when unlimited or under quota). It returns nil when no cgroup
// carries a quota at all — callers treat nil as "factor 1 everywhere" —
// so the hot, undefended path builds no maps. When quotas exist, the two
// scratch maps on the Kernel are cleared and reused.
func (k *Kernel) quotaFactors() map[string]float64 {
	hasQuota := false
	for _, cg := range k.cgroupList {
		if cg.QuotaCores > 0 {
			hasQuota = true
			break
		}
	}
	if !hasQuota {
		return nil
	}
	demand := k.quotaDemand
	clear(demand)
	for _, t := range k.taskList {
		demand[t.CgroupPath] += t.DemandCores
	}
	out := k.quotaOut
	clear(out)
	for path, d := range demand {
		out[path] = 1
		cg := k.cgroups[path]
		if cg != nil && cg.QuotaCores > 0 && d > cg.QuotaCores {
			out[path] = cg.QuotaCores / d
		}
	}
	return out
}

// idleWeights is the residency share of each cpuidle state (POLL, C1, C3,
// C6): deeper states get the longer residencies. Package-level so Tick's
// hot loop indexes a constant array instead of building a literal.
var idleWeights = [4]float64{0.01, 0.09, 0.3, 0.6}

// jitter returns a multiplicative noise factor in [1-a, 1+a]. It must stay
// within the compiler's inlining budget (go build -gcflags='-m' reports
// the cost): Tick calls it ~850 times per server step, and the call-frame
// overhead of a non-inlined jitter is measurable at Fig. 3 scale.
func (k *Kernel) jitter(a float64) float64 {
	return 1 + (k.rng.Float64()*2-1)*a
}
