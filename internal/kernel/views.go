package kernel

// This file holds the structured snapshots pseudo-file handlers render.
// Handlers that model Linux's *incomplete* namespacing call the global
// variants; properly-namespaced files use the NS-aware ones.

// Meminfo is the host-wide memory accounting behind /proc/meminfo,
// /proc/zoneinfo, and the per-node sysfs files. All quantities are KiB.
type Meminfo struct {
	TotalKB     uint64
	FreeKB      uint64
	AvailableKB uint64
	BuffersKB   uint64
	CachedKB    uint64
	ActiveKB    uint64
	InactiveKB  uint64
	SwapTotalKB uint64
	SwapFreeKB  uint64
	DirtyKB     uint64
}

// MeminfoSnapshot computes the current global memory state.
func (k *Kernel) MeminfoSnapshot() Meminfo {
	var rss uint64
	for _, t := range k.tasks {
		rss += t.RSSKB
	}
	cached := uint64(k.cachedKB)
	used := k.memBaseUsedKB + rss + cached
	var free uint64
	if used < k.opts.MemTotalKB {
		free = k.opts.MemTotalKB - used
	}
	return Meminfo{
		TotalKB:     k.opts.MemTotalKB,
		FreeKB:      free,
		AvailableKB: free + cached*8/10,
		BuffersKB:   k.memBaseUsedKB / 8,
		CachedKB:    cached,
		ActiveKB:    used * 6 / 10,
		InactiveKB:  used * 3 / 10,
		SwapTotalKB: 2 * 1024 * 1024,
		SwapFreeKB:  2 * 1024 * 1024,
		DirtyKB:     uint64(k.lastBusy * 900),
	}
}

// Zone is one row family of /proc/zoneinfo. Quantities are 4 KiB pages.
type Zone struct {
	Name    string
	Free    uint64
	Min     uint64
	Low     uint64
	High    uint64
	Spanned uint64
	Present uint64
	Managed uint64
}

// ZoneSnapshot derives the physical zone layout from the memory state.
func (k *Kernel) ZoneSnapshot() []Zone {
	mi := k.MeminfoSnapshot()
	totalPages := mi.TotalKB / 4
	freePages := mi.FreeKB / 4
	mk := func(name string, frac float64) Zone {
		span := uint64(float64(totalPages) * frac)
		free := uint64(float64(freePages) * frac)
		return Zone{
			Name:    name,
			Free:    free,
			Min:     span / 256,
			Low:     span / 204,
			High:    span / 170,
			Spanned: span,
			Present: span - span/64,
			Managed: span - span/32,
		}
	}
	return []Zone{
		mk("DMA", 0.001),
		mk("DMA32", 0.18),
		mk("Normal", 0.819),
	}
}

// LoadAvg is the /proc/loadavg snapshot.
type LoadAvg struct {
	Load1, Load5, Load15 float64
	Runnable, Total      int
	LastPID              int
}

// LoadAvgSnapshot returns the current load averages and task counts.
func (k *Kernel) LoadAvgSnapshot() LoadAvg {
	runnable := 0
	for _, t := range k.tasks {
		if t.DemandCores > 0 {
			runnable++
		}
	}
	return LoadAvg{
		Load1:    k.load1,
		Load5:    k.load5,
		Load15:   k.load15,
		Runnable: runnable,
		Total:    len(k.tasks) + 120, // plus resident kernel threads
		LastPID:  k.nextPID,
	}
}

// Stat is the /proc/stat snapshot: per-CPU tick accounting plus global
// event counters.
type Stat struct {
	PerCPU       []CPUTimes
	IntrTotal    uint64
	CtxtSwitches uint64
	BootTime     int64
	Processes    uint64
	ProcsRunning int
}

// StatSnapshot returns the kernel-activity counters.
func (k *Kernel) StatSnapshot() Stat {
	var intr float64
	for _, irq := range k.irqs {
		for _, v := range irq.PerCPU {
			intr += v
		}
	}
	running := 0
	for _, t := range k.tasks {
		if t.DemandCores > 0 {
			running++
		}
	}
	per := make([]CPUTimes, len(k.cpu))
	copy(per, k.cpu)
	return Stat{
		PerCPU:       per,
		IntrTotal:    uint64(intr),
		CtxtSwitches: uint64(k.ctxtSwitches),
		BootTime:     k.opts.BootWallClock,
		Processes:    k.forksTotal,
		ProcsRunning: running + 1,
	}
}

// Interrupts returns the IRQ table (global; /proc/interrupts has no
// namespace awareness).
func (k *Kernel) Interrupts() []*IRQ { return k.irqs }

// SoftIRQs returns the softirq table (global, like /proc/softirqs).
func (k *Kernel) SoftIRQs() []*SoftIRQ { return k.softirqs }

// SchedStatCPU is one cpu row of /proc/schedstat.
type SchedStatCPU struct {
	RunNS      uint64
	WaitNS     uint64
	Timeslices uint64
}

// SchedStatSnapshot returns per-CPU scheduler statistics.
func (k *Kernel) SchedStatSnapshot() []SchedStatCPU {
	out := make([]SchedStatCPU, len(k.schedRunNS))
	for i := range out {
		out[i] = SchedStatCPU{
			RunNS:      uint64(k.schedRunNS[i]),
			WaitNS:     uint64(k.schedWaitNS[i]),
			Timeslices: k.timeslices[i],
		}
	}
	return out
}

// NewidleCost returns the per-CPU max_newidle_lb_cost scheduler-domain
// values.
func (k *Kernel) NewidleCost() []uint64 {
	out := make([]uint64, len(k.newidleCost))
	copy(out, k.newidleCost)
	return out
}

// EntropyAvail returns the current /proc/sys/kernel/random/entropy_avail.
func (k *Kernel) EntropyAvail() int { return int(k.entropyAvail) }

// GenUUID returns a fresh random UUID (/proc/sys/kernel/random/uuid).
func (k *Kernel) GenUUID() string { return k.genUUID() }

// VFSStats is the dentry/inode/file-handle accounting under /proc/sys/fs.
type VFSStats struct {
	Dentries     uint64
	DentryUnused uint64
	Inodes       uint64
	InodesFree   uint64
	FilesOpen    uint64
	FilesMax     uint64
}

// VFSSnapshot returns the VFS object counts.
func (k *Kernel) VFSSnapshot() VFSStats {
	return VFSStats{
		Dentries:     uint64(k.dentries),
		DentryUnused: uint64(k.dentryUnused),
		Inodes:       uint64(k.inodes),
		InodesFree:   uint64(k.inodesFree),
		FilesOpen:    uint64(k.filesOpen),
		FilesMax:     1626526,
	}
}

// Ext4GroupSnapshot returns the mb_groups allocator table.
func (k *Kernel) Ext4GroupSnapshot() []Ext4Group {
	out := make([]Ext4Group, len(k.ext4Groups))
	copy(out, k.ext4Groups)
	return out
}

// NUMASnapshot returns node 0's allocation counters.
func (k *Kernel) NUMASnapshot() NUMAStats { return k.numa }

// IdleStateSnapshot returns the cpuidle state table.
func (k *Kernel) IdleStateSnapshot() []IdleState {
	out := make([]IdleState, len(k.idleStates))
	for i, st := range k.idleStates {
		out[i] = IdleState{
			Name:         st.Name,
			UsagePerCPU:  append([]float64(nil), st.UsagePerCPU...),
			TimeUSPerCPU: append([]float64(nil), st.TimeUSPerCPU...),
		}
	}
	return out
}

// Modules returns the loaded-module list — identical across the fleet,
// which is exactly why the paper ranks /proc/modules useless for
// co-residence despite leaking host configuration.
func (k *Kernel) Modules() []string {
	return []string{
		"nf_conntrack_ipv4 20480 2", "nf_defrag_ipv4 16384 1 nf_conntrack_ipv4",
		"xt_conntrack 16384 1", "nf_conntrack 106496 2",
		"br_netfilter 24576 0", "bridge 126976 1 br_netfilter",
		"stp 16384 1 bridge", "llc 16384 2 stp,bridge",
		"overlay 49152 0", "aufs 245760 0",
		"binfmt_misc 20480 1", "intel_rapl 20480 0",
		"x86_pkg_temp_thermal 16384 0", "coretemp 16384 0",
		"kvm_intel 172032 0", "kvm 544768 1 kvm_intel",
		"irqbypass 16384 1 kvm", "crct10dif_pclmul 16384 0",
		"crc32_pclmul 16384 0", "ghash_clmulni_intel 16384 0",
		"aesni_intel 167936 0", "aes_x86_64 20480 1 aesni_intel",
		"lrw 16384 1 aesni_intel", "glue_helper 16384 1 aesni_intel",
		"ablk_helper 16384 1 aesni_intel", "cryptd 20480 3",
		"psmouse 131072 0", "e1000e 245760 0",
		"ptp 20480 1 e1000e", "pps_core 20480 1 ptp",
		"ahci 36864 2", "libahci 32768 1 ahci",
		"ext4 585728 2", "mbcache 16384 1 ext4",
		"jbd2 106496 1 ext4", "autofs4 40960 2",
	}
}

// KernelVersion returns the /proc/version line.
func (k *Kernel) KernelVersion() string {
	return "Linux version " + k.opts.KernelVersion +
		" (build@fleet) (gcc version 5.4.0 20160609 (Ubuntu 5.4.0-6ubuntu1~16.04.4)) " +
		"#1 SMP Mon Nov 14 10:02:06 UTC 2016"
}

// CPUInfo describes one logical CPU of /proc/cpuinfo.
type CPUInfo struct {
	Processor int
	Model     string
	MHz       float64
	CacheKB   int
	Cores     int
}

// CPUInfoSnapshot returns the per-CPU hardware description — static and
// fleet-wide identical, hence unrankable for co-residence.
func (k *Kernel) CPUInfoSnapshot() []CPUInfo {
	out := make([]CPUInfo, k.opts.Cores)
	for i := range out {
		out[i] = CPUInfo{
			Processor: i,
			Model:     k.opts.CPUModel,
			MHz:       k.opts.CPUMHz,
			CacheKB:   8192,
			Cores:     k.opts.Cores,
		}
	}
	return out
}

// VMStats is the global VM event accounting behind /proc/vmstat.
type VMStats struct {
	PgFaults  uint64
	PgAllocs  uint64
	FreePages uint64
}

// VMStatSnapshot returns the current VM counters.
func (k *Kernel) VMStatSnapshot() VMStats {
	return VMStats{
		PgFaults:  uint64(k.pgFaults),
		PgAllocs:  uint64(k.pgAllocs),
		FreePages: k.MeminfoSnapshot().FreeKB / 4,
	}
}

// DiskStats is the block-device IO accounting behind /proc/diskstats.
type DiskStats struct {
	SectorsRead    uint64
	SectorsWritten uint64
}

// DiskStatSnapshot returns the host disk counters.
func (k *Kernel) DiskStatSnapshot() DiskStats {
	return DiskStats{
		SectorsRead:    uint64(k.sectorsRead),
		SectorsWritten: uint64(k.sectorsWritten),
	}
}

// SoftnetSnapshot returns the per-CPU processed-packet counters behind
// /proc/net/softnet_stat.
func (k *Kernel) SoftnetSnapshot() []uint64 {
	out := make([]uint64, len(k.softnetPackets))
	for i, v := range k.softnetPackets {
		out[i] = uint64(v)
	}
	return out
}

// BuddyInfo returns per-order free block counts for the Normal zone,
// derived from the free page pool (a varying physical-memory channel).
func (k *Kernel) BuddyInfo() []uint64 {
	free := k.MeminfoSnapshot().FreeKB / 4
	out := make([]uint64, 11)
	remaining := free
	for order := 10; order >= 0; order-- {
		blockPages := uint64(1) << uint(order)
		// Most free memory sits in high orders on a healthy system.
		share := remaining * 6 / 10
		out[order] = share / blockPages
		remaining -= out[order] * blockPages
	}
	out[0] += remaining
	return out
}

// NetDevices returns the device list of the given NET namespace; passing the
// init namespace yields the physical host devices. This is the *correct*
// namespaced accessor.
func (k *Kernel) NetDevices(ns *NSSet) []NetDev {
	return append([]NetDev(nil), ns.NetDevs...)
}

// HostNetDevices returns init_net's devices regardless of the caller's
// namespace — the for_each_netdev_rcu(&init_net, …) bug of Case Study I.
func (k *Kernel) HostNetDevices() []NetDev {
	return append([]NetDev(nil), k.initNS.NetDevs...)
}
