package kernel

import (
	"fmt"
	"sort"

	"repro/internal/perfcount"
)

// Task is a schedulable entity — in this simulation one task stands for a
// process (or a tight group of threads with identical behaviour, such as the
// "4 copies of Prime" the paper runs per container).
type Task struct {
	// HostPID is the globally unique pid; NSPID is the pid inside the
	// task's PID namespace.
	HostPID int
	NSPID   int
	Name    string

	// NS is the namespace set the task runs in; CgroupPath is its cgroup
	// (also the perf accounting group of the power-based namespace).
	NS         *NSSet
	CgroupPath string

	// DemandCores is how many core-equivalents the task wants; Rates is
	// its microarchitectural activity at full speed. Pinned optionally
	// binds the demand to specific cores (the paper's taskset covert
	// channel uses this to heat one core).
	DemandCores float64
	Rates       perfcount.Rates
	Pinned      []int

	// RSSKB is resident memory charged against the host.
	RSSKB uint64

	// HasTimer marks the task as owning an armed hrtimer, which makes it
	// visible in /proc/timer_list — a signature-implant channel.
	HasTimer bool

	StartedAt float64

	// cg caches k.cgroups[CgroupPath] so the per-task accounting in Tick
	// needs no string-keyed map lookup. Spawn sets it; Cgroup/RemoveCgroup
	// keep it in sync with the cgroup table (nil when the cgroup has been
	// removed, matching the old lookup's miss behavior).
	cg *Cgroup
}

// FileLock is one entry of /proc/locks. The leak: the lock table is global,
// so a lock taken inside one container (with a recognizable inode number) is
// visible to every other container.
type FileLock struct {
	ID      int
	Type    string // "POSIX" | "FLOCK"
	Mode    string // "ADVISORY" | "MANDATORY"
	RW      string // "READ" | "WRITE"
	HostPID int
	Inode   uint64
}

// Spawn creates a task in the given namespace set and cgroup and returns it.
// The cgroup is created on demand. Spawn panics on a nil namespace set —
// every task must live somewhere.
func (k *Kernel) Spawn(name string, ns *NSSet, cgroupPath string, demand float64, rates perfcount.Rates) *Task {
	if ns == nil {
		panic("kernel: Spawn with nil namespace set")
	}
	if cgroupPath == "" {
		cgroupPath = "/"
	}
	k.nextPID++
	t := &Task{
		HostPID:     k.nextPID,
		Name:        name,
		NS:          ns,
		CgroupPath:  cgroupPath,
		DemandCores: demand,
		Rates:       rates,
		StartedAt:   k.now,
	}
	t.NSPID = ns.adoptPID(t.HostPID)
	k.tasks[t.HostPID] = t
	// taskList stays in ascending-pid order because nextPID only grows and
	// Exit removes in place.
	k.taskList = append(k.taskList, t)
	k.forksTotal++
	cg, ok := k.cgroups[cgroupPath]
	if !ok {
		cg = &Cgroup{Path: cgroupPath}
		k.cgroups[cgroupPath] = cg
		k.cgroupList = append(k.cgroupList, cg)
	}
	t.cg = cg
	// A new task changes the global task list, fork counters, and charged
	// memory (callers commonly set RSSKB/Pinned/HasTimer on the returned
	// task before the next read — the same mutation burst this bump covers).
	k.bump(MaskSched | MaskMem)
	return t
}

// Exit removes a task and its namespace pid mapping and releases its locks.
func (k *Kernel) Exit(hostPID int) {
	t, ok := k.tasks[hostPID]
	if !ok {
		return
	}
	t.NS.releasePID(hostPID)
	delete(k.tasks, hostPID)
	for i, lt := range k.taskList {
		if lt == t {
			k.taskList = append(k.taskList[:i], k.taskList[i+1:]...)
			break
		}
	}
	if cg := k.cgroups[t.CgroupPath]; cg != nil {
		kept := cg.locks[:0]
		for _, l := range cg.locks {
			if l.HostPID != hostPID {
				kept = append(kept, l)
			}
		}
		cg.locks = kept
	}
	k.bump(MaskSched | MaskMem)
}

// Task returns the task with the given host pid, or nil.
func (k *Kernel) Task(hostPID int) *Task { return k.tasks[hostPID] }

// Tasks returns all host tasks ordered by pid. This is the *global* view —
// what a handler without a PID-namespace check iterates (the sched_debug
// leak). Namespace-respecting consumers should use TasksInNS.
func (k *Kernel) Tasks() []*Task {
	out := make([]*Task, 0, len(k.tasks))
	for _, t := range k.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HostPID < out[j].HostPID })
	return out
}

// TasksInNS returns only the tasks visible in the given PID namespace,
// ordered by namespace pid — the correctly containerized view.
func (k *Kernel) TasksInNS(ns *NSSet) []*Task {
	var out []*Task
	for _, t := range k.tasks {
		if _, ok := ns.TranslatePID(t.HostPID); ok && t.NS.ID(PID) == ns.ID(PID) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NSPID < out[j].NSPID })
	return out
}

// NumTasks returns the number of live tasks.
func (k *Kernel) NumTasks() int { return len(k.tasks) }

// Cgroup is one node of the (flattened) cgroup hierarchies. A container is
// represented by one cgroup path shared across the cpuacct, perf_event, and
// net_prio controllers.
type Cgroup struct {
	Path string

	// CPUUsageNS is cpuacct.usage: cumulative nanoseconds of CPU time.
	CPUUsageNS float64

	// QuotaCores caps the cgroup's aggregate CPU demand (CFS bandwidth
	// control); 0 means unlimited. The power-budget enforcer adjusts it.
	QuotaCores float64

	// MemLimitKB is the cgroup memory limit (0 = unlimited); stage-3
	// statistics fixes present it as the container's MemTotal.
	MemLimitKB uint64

	// IfPrioMap holds net_prio.ifpriomap priority overrides keyed by
	// interface name (only meaningful for interfaces in the cgroup's own
	// NET namespace — but the buggy global handler ignores that).
	IfPrioMap map[string]int

	locks []FileLock
}

// Cgroup returns the cgroup at path, creating it if needed. Because it can
// mutate the cgroup table, it must only be called from the clock thread;
// read-side code (pseudo-file handlers) uses LookupCgroup instead.
func (k *Kernel) Cgroup(path string) *Cgroup {
	cg, ok := k.cgroups[path]
	if !ok {
		cg = &Cgroup{Path: path}
		k.cgroups[path] = cg
		k.cgroupList = append(k.cgroupList, cg)
		// A removed-then-recreated cgroup re-binds live tasks, matching
		// the per-tick map lookup this cache replaces.
		for _, t := range k.taskList {
			if t.CgroupPath == path {
				t.cg = cg
			}
		}
	}
	// Callers of this accessor mutate the returned cgroup (quotas, limits,
	// ifpriomap) even when it already exists, so conservatively mark the
	// scheduler/cgroup and network domains dirty: a false "dirty" only
	// costs the engine a redundant re-render, a false "clean" would break
	// byte identity. Read-side code uses LookupCgroup and never bumps.
	k.bump(MaskSched | MaskNet)
	return cg
}

// LookupCgroup returns the cgroup at path without creating it — the
// read-only accessor the pseudo-filesystem handlers use so that concurrent
// reads never write the cgroup table. A read of a never-created cgroup
// (possible only through a hand-built View) simply observes zero counters.
func (k *Kernel) LookupCgroup(path string) (*Cgroup, bool) {
	cg, ok := k.cgroups[path]
	return cg, ok
}

// Cgroups returns all cgroup paths in sorted order.
func (k *Kernel) Cgroups() []string {
	out := make([]string, 0, len(k.cgroups))
	for p := range k.cgroups {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// RemoveCgroup deletes a cgroup (when its container is destroyed).
func (k *Kernel) RemoveCgroup(path string) {
	if path == "/" {
		return
	}
	if cg, ok := k.cgroups[path]; ok {
		for i, c := range k.cgroupList {
			if c == cg {
				k.cgroupList = append(k.cgroupList[:i], k.cgroupList[i+1:]...)
				break
			}
		}
		for _, t := range k.taskList {
			if t.cg == cg {
				t.cg = nil
			}
		}
	}
	delete(k.cgroups, path)
	k.perf.RemoveGroup(path)
	k.bump(MaskSched | MaskNet)
}

// AddFileLock registers a file lock held by the task; it appears in the
// global /proc/locks table. Inode is attacker-controlled in the implant
// scenario (the inode of a file the attacker created).
func (k *Kernel) AddFileLock(t *Task, rw string, inode uint64) FileLock {
	k.nextLockID++
	l := FileLock{
		ID:      k.nextLockID,
		Type:    "POSIX",
		Mode:    "ADVISORY",
		RW:      rw,
		HostPID: t.HostPID,
		Inode:   inode,
	}
	cg := k.Cgroup(t.CgroupPath)
	cg.locks = append(cg.locks, l)
	k.bump(MaskSched)
	return l
}

// FileLocks returns the global lock table ordered by ID — again the
// namespace-oblivious view. System daemon locks (churned by the kernel
// tick) appear alongside tenant locks.
func (k *Kernel) FileLocks() []FileLock {
	out := append([]FileLock(nil), k.sysLocks...)
	for _, cg := range k.cgroups {
		out = append(out, cg.locks...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SystemLocks returns the locks held by system daemons outside any
// container cgroup.
func (k *Kernel) SystemLocks() []FileLock {
	return append([]FileLock(nil), k.sysLocks...)
}

// FileLocksInCgroup returns only the locks held by tasks of one cgroup —
// the namespaced view a stage-2 kernel fix would expose.
func (k *Kernel) FileLocksInCgroup(path string) []FileLock {
	cg, ok := k.cgroups[path]
	if !ok {
		return nil
	}
	out := append([]FileLock(nil), cg.locks...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CgroupRSSKB sums the resident memory of one cgroup's tasks.
func (k *Kernel) CgroupRSSKB(path string) uint64 {
	var sum uint64
	for _, t := range k.tasks {
		if t.CgroupPath == path {
			sum += t.RSSKB
		}
	}
	return sum
}

// CgroupDemandCores sums the CPU demand of one cgroup's tasks (pre-quota).
func (k *Kernel) CgroupDemandCores(path string) float64 {
	var sum float64
	for _, t := range k.tasks {
		if t.CgroupPath == path {
			sum += t.DemandCores
		}
	}
	return sum
}

// TimerOwnersInNS returns only timer-owning tasks visible in the given PID
// namespace — the stage-2 fixed view of /proc/timer_list.
func (k *Kernel) TimerOwnersInNS(ns *NSSet) []*Task {
	var out []*Task
	for _, t := range k.tasks {
		if t.HasTimer && t.NS.ID(PID) == ns.ID(PID) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HostPID < out[j].HostPID })
	return out
}

// TimerOwners returns every task that owns an armed timer, ordered by host
// pid. /proc/timer_list renders this global view, which is what makes the
// timer-name implant work across containers.
func (k *Kernel) TimerOwners() []*Task {
	var out []*Task
	for _, t := range k.tasks {
		if t.HasTimer {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HostPID < out[j].HostPID })
	return out
}

// String implements fmt.Stringer for debugging.
func (t *Task) String() string {
	return fmt.Sprintf("Task{%s pid=%d nspid=%d cg=%s demand=%.2f}",
		t.Name, t.HostPID, t.NSPID, t.CgroupPath, t.DemandCores)
}
