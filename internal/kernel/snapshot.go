package kernel

import (
	"repro/internal/fastrand"
	"repro/internal/perfcount"
	"repro/internal/power"
)

// Snapshot is a copy-on-write capture of one kernel's complete mutable
// state: every accumulator the tick pipeline advances, the task/cgroup/
// namespace tables, the component states (meter, governor, perf monitor),
// and — crucially — the positions of both RNG streams. Restoring a
// Snapshot rewinds the kernel to the captured instant so precisely that
// every subsequent tick, spawn, and pseudo-file render is byte-identical
// to a freshly built world driven to the same point: the jitter stream
// resumes mid-sequence, nextPID/nextNSID reissue the same identifiers,
// and the load-average memo reproduces the same decay factors.
//
// Restore is in-place: Task, Cgroup, and NSSet objects that existed at
// capture time keep their pointer identity (so views, mounts, and
// container handles held by callers stay valid), while objects created
// after the capture are dropped from the tables. Slices that later code
// mutates in place (locks, device lists, pid maps) are handed back as
// fresh copies on every Restore, so one Snapshot can be restored any
// number of times.
//
// Epoch counters are restored to their captured values. That rewinds the
// incremental engine's dirty-tracking clock, so any engine built over the
// kernel before a Restore must be discarded and rebuilt afterwards — the
// world pool in internal/experiments creates engines per checkout for
// exactly this reason.
type Snapshot struct {
	rng     fastrand.State
	uuidRNG fastrand.State

	meter power.MeterState
	freq  power.GovernorState
	perf  *perfcount.MonitorState

	now        float64
	uptimeBase float64
	bootID     string
	nextNSID   uint64
	nextPID    int

	nsSets  []*NSSet
	nsState []nsSnap

	tasks     []*Task
	taskState []taskSnap

	cgroups []*Cgroup
	cgState []cgSnap

	nextLockID int
	sysLocks   []FileLock
	sysLockSeq uint64

	cpu          []CPUTimes
	idleCoreSec  float64
	ctxtSwitches float64
	forksTotal   uint64
	load1        float64
	load5        float64
	load15       float64
	lastBusy     float64
	newidleCost  []uint64

	// SoA backing blocks (nil under ReferenceLayout, where the per-row
	// slices below carry the state instead).
	jitterRows []float64
	idleRows   []float64
	refRows    [][]float64

	memBaseUsedKB uint64
	cachedKB      float64
	numa          NUMAStats

	dentries     float64
	dentryUnused float64
	inodes       float64
	inodesFree   float64
	filesOpen    float64
	ext4Groups   []Ext4Group

	pgFaults       float64
	pgAllocs       float64
	sectorsRead    float64
	sectorsWritten float64

	entropyAvail float64

	schedRunNS  []float64
	schedWaitNS []float64
	timeslices  []uint64

	epochs Epochs

	decayDt  float64
	decayA1  float64
	decayA5  float64
	decayA15 float64
}

// taskSnap is one task's captured field values.
type taskSnap struct {
	t Task // value copy; Pinned re-copied on restore
}

// cgSnap is one cgroup's captured field values.
type cgSnap struct {
	cpuUsageNS float64
	quotaCores float64
	memLimitKB uint64
	ifPrioMap  map[string]int
	locks      []FileLock
}

// nsSnap is one namespace set's captured mutable state.
type nsSnap struct {
	ids        [nsTypeCount + 1]uint64
	hostname   string
	netDevs    []NetDev
	pidMap     map[int]int
	nextPID    int
	cgroupRoot string
	rootMapped bool
	createdAt  float64
	bootID     string
	shm        []ShmSegment
	nextShmID  int
}

// Snapshot captures the kernel's complete mutable state. The kernel must
// be quiescent (no tick or spawn in flight) — the same single-clock-thread
// contract every other mutating entry point has.
func (k *Kernel) Snapshot() *Snapshot {
	s := &Snapshot{
		rng:     k.rng.Save(),
		uuidRNG: k.uuidRNG.Save(),
		meter:   k.meter.Snapshot(),
		freq:    k.freq.Snapshot(),
		perf:    k.perf.Snapshot(),

		now:        k.now,
		uptimeBase: k.uptimeBase,
		bootID:     k.bootID,
		nextNSID:   k.nextNSID,
		nextPID:    k.nextPID,

		nextLockID: k.nextLockID,
		sysLocks:   append([]FileLock(nil), k.sysLocks...),
		sysLockSeq: k.sysLockSeq,

		cpu:          append([]CPUTimes(nil), k.cpu...),
		idleCoreSec:  k.idleCoreSec,
		ctxtSwitches: k.ctxtSwitches,
		forksTotal:   k.forksTotal,
		load1:        k.load1,
		load5:        k.load5,
		load15:       k.load15,
		lastBusy:     k.lastBusy,
		newidleCost:  append([]uint64(nil), k.newidleCost...),

		memBaseUsedKB: k.memBaseUsedKB,
		cachedKB:      k.cachedKB,
		numa:          k.numa,

		dentries:     k.dentries,
		dentryUnused: k.dentryUnused,
		inodes:       k.inodes,
		inodesFree:   k.inodesFree,
		filesOpen:    k.filesOpen,
		ext4Groups:   append([]Ext4Group(nil), k.ext4Groups...),

		pgFaults:       k.pgFaults,
		pgAllocs:       k.pgAllocs,
		sectorsRead:    k.sectorsRead,
		sectorsWritten: k.sectorsWritten,

		entropyAvail: k.entropyAvail,

		schedRunNS:  append([]float64(nil), k.schedRunNS...),
		schedWaitNS: append([]float64(nil), k.schedWaitNS...),
		timeslices:  append([]uint64(nil), k.timeslices...),

		epochs: k.Epochs(),

		decayDt:  k.decayDt,
		decayA1:  k.decayA1,
		decayA5:  k.decayA5,
		decayA15: k.decayA15,
	}

	// Per-CPU accumulator rows: two block copies under the SoA layout, one
	// copy per standalone row under ReferenceLayout.
	if k.jitterRows != nil {
		s.jitterRows = append([]float64(nil), k.jitterRows...)
		s.idleRows = append([]float64(nil), k.idleRows...)
	} else {
		for _, irq := range k.irqs {
			s.refRows = append(s.refRows, append([]float64(nil), irq.PerCPU...))
		}
		for _, sq := range k.softirqs {
			s.refRows = append(s.refRows, append([]float64(nil), sq.PerCPU...))
		}
		s.refRows = append(s.refRows, append([]float64(nil), k.softnetPackets...))
		for i := range k.idleStates {
			s.refRows = append(s.refRows, append([]float64(nil), k.idleStates[i].UsagePerCPU...))
			s.refRows = append(s.refRows, append([]float64(nil), k.idleStates[i].TimeUSPerCPU...))
		}
	}

	// Namespace sets: pointer identity plus per-set mutable state.
	s.nsSets = append([]*NSSet(nil), k.nsSets...)
	s.nsState = make([]nsSnap, len(k.nsSets))
	for i, ns := range k.nsSets {
		snap := nsSnap{
			ids:        ns.ids,
			hostname:   ns.Hostname,
			netDevs:    append([]NetDev(nil), ns.NetDevs...),
			nextPID:    ns.nextPID,
			cgroupRoot: ns.CgroupRoot,
			rootMapped: ns.RootMapped,
			createdAt:  ns.CreatedAt,
			bootID:     ns.BootID,
			shm:        append([]ShmSegment(nil), ns.shm...),
			nextShmID:  ns.nextShmID,
		}
		if ns.pidMap != nil {
			snap.pidMap = make(map[int]int, len(ns.pidMap))
			for h, n := range ns.pidMap {
				snap.pidMap[h] = n
			}
		}
		s.nsState[i] = snap
	}

	// Tasks: list order plus full value copies.
	s.tasks = append([]*Task(nil), k.taskList...)
	s.taskState = make([]taskSnap, len(k.taskList))
	for i, t := range k.taskList {
		s.taskState[i] = taskSnap{t: *t}
		s.taskState[i].t.Pinned = append([]int(nil), t.Pinned...)
	}

	// Cgroups: creation order plus value copies.
	s.cgroups = append([]*Cgroup(nil), k.cgroupList...)
	s.cgState = make([]cgSnap, len(k.cgroupList))
	for i, cg := range k.cgroupList {
		snap := cgSnap{
			cpuUsageNS: cg.CPUUsageNS,
			quotaCores: cg.QuotaCores,
			memLimitKB: cg.MemLimitKB,
			locks:      append([]FileLock(nil), cg.locks...),
		}
		if cg.IfPrioMap != nil {
			snap.ifPrioMap = make(map[string]int, len(cg.IfPrioMap))
			for dev, p := range cg.IfPrioMap {
				snap.ifPrioMap[dev] = p
			}
		}
		s.cgState[i] = snap
	}

	return s
}

// Restore rewinds the kernel to the captured state. See the Snapshot type
// comment for the identity and in-place semantics.
func (k *Kernel) Restore(s *Snapshot) {
	k.rng.Restore(s.rng)
	k.uuidMu.Lock()
	k.uuidRNG.Restore(s.uuidRNG)
	k.uuidMu.Unlock()
	k.meter.Restore(s.meter)
	k.freq.Restore(s.freq)
	k.perf.Restore(s.perf)

	k.now = s.now
	k.uptimeBase = s.uptimeBase
	k.bootID = s.bootID
	k.nextNSID = s.nextNSID
	k.nextPID = s.nextPID

	k.nextLockID = s.nextLockID
	k.sysLocks = append(k.sysLocks[:0:0], s.sysLocks...)
	k.sysLockSeq = s.sysLockSeq

	copy(k.cpu, s.cpu)
	k.idleCoreSec = s.idleCoreSec
	k.ctxtSwitches = s.ctxtSwitches
	k.forksTotal = s.forksTotal
	k.load1, k.load5, k.load15 = s.load1, s.load5, s.load15
	k.lastBusy = s.lastBusy
	copy(k.newidleCost, s.newidleCost)

	if k.jitterRows != nil {
		copy(k.jitterRows, s.jitterRows)
		copy(k.idleRows, s.idleRows)
	} else {
		r := 0
		for _, irq := range k.irqs {
			copy(irq.PerCPU, s.refRows[r])
			r++
		}
		for _, sq := range k.softirqs {
			copy(sq.PerCPU, s.refRows[r])
			r++
		}
		copy(k.softnetPackets, s.refRows[r])
		r++
		for i := range k.idleStates {
			copy(k.idleStates[i].UsagePerCPU, s.refRows[r])
			copy(k.idleStates[i].TimeUSPerCPU, s.refRows[r+1])
			r += 2
		}
	}

	k.memBaseUsedKB = s.memBaseUsedKB
	k.cachedKB = s.cachedKB
	k.numa = s.numa

	k.dentries = s.dentries
	k.dentryUnused = s.dentryUnused
	k.inodes = s.inodes
	k.inodesFree = s.inodesFree
	k.filesOpen = s.filesOpen
	copy(k.ext4Groups, s.ext4Groups)

	k.pgFaults = s.pgFaults
	k.pgAllocs = s.pgAllocs
	k.sectorsRead = s.sectorsRead
	k.sectorsWritten = s.sectorsWritten

	k.entropyAvail = s.entropyAvail

	copy(k.schedRunNS, s.schedRunNS)
	copy(k.schedWaitNS, s.schedWaitNS)
	copy(k.timeslices, s.timeslices)

	for sub := Subsystem(0); sub < NumSubsystems; sub++ {
		k.epochs[sub].Store(s.epochs[sub])
	}

	k.decayDt = s.decayDt
	k.decayA1 = s.decayA1
	k.decayA5 = s.decayA5
	k.decayA15 = s.decayA15

	// Namespace sets: restore captured sets in place, drop later ones.
	k.nsSets = append(k.nsSets[:0:0], s.nsSets...)
	for i, ns := range s.nsSets {
		snap := &s.nsState[i]
		ns.ids = snap.ids
		ns.Hostname = snap.hostname
		ns.NetDevs = append([]NetDev(nil), snap.netDevs...)
		if snap.pidMap != nil {
			ns.pidMap = make(map[int]int, len(snap.pidMap))
			for h, n := range snap.pidMap {
				ns.pidMap[h] = n
			}
		} else {
			ns.pidMap = nil
		}
		ns.nextPID = snap.nextPID
		ns.CgroupRoot = snap.cgroupRoot
		ns.RootMapped = snap.rootMapped
		ns.CreatedAt = snap.createdAt
		ns.BootID = snap.bootID
		ns.shm = append([]ShmSegment(nil), snap.shm...)
		ns.nextShmID = snap.nextShmID
	}

	// Cgroups first (tasks re-link to them below).
	k.cgroupList = append(k.cgroupList[:0:0], s.cgroups...)
	for p := range k.cgroups {
		delete(k.cgroups, p)
	}
	for i, cg := range s.cgroups {
		snap := &s.cgState[i]
		cg.CPUUsageNS = snap.cpuUsageNS
		cg.QuotaCores = snap.quotaCores
		cg.MemLimitKB = snap.memLimitKB
		if snap.ifPrioMap != nil {
			cg.IfPrioMap = make(map[string]int, len(snap.ifPrioMap))
			for dev, pr := range snap.ifPrioMap {
				cg.IfPrioMap[dev] = pr
			}
		} else {
			cg.IfPrioMap = nil
		}
		cg.locks = append([]FileLock(nil), snap.locks...)
		k.cgroups[cg.Path] = cg
	}
	k.rootCG = k.cgroups["/"]

	// Tasks: restore values into the captured pointers, rebuild the tables.
	k.taskList = append(k.taskList[:0:0], s.tasks...)
	for pid := range k.tasks {
		delete(k.tasks, pid)
	}
	for i, t := range s.tasks {
		saved := s.taskState[i].t
		*t = saved
		t.Pinned = append([]int(nil), saved.Pinned...)
		t.cg = k.cgroups[t.CgroupPath]
		k.tasks[t.HostPID] = t
	}
}
