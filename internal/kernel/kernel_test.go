package kernel

import (
	"math"
	"testing"

	"repro/internal/perfcount"
)

func newTestKernel(seed int64) *Kernel {
	return New(Options{Hostname: "node-a", Seed: seed})
}

// busyTask returns a demand/rate pair resembling one fully-busy core of a
// compute workload.
func busyTask() (float64, perfcount.Rates) {
	return 1, perfcount.Rates{
		Instructions: 3e9, Cycles: 3.4e9,
		CacheMisses: 5e6, CacheRefs: 1e8,
		BranchMisses: 1.5e7, BranchRefs: 6e8,
	}
}

func tick(k *Kernel, seconds int) {
	for i := 0; i < seconds; i++ {
		k.Tick(k.Now()+1, 1)
	}
}

func TestDefaultsApplied(t *testing.T) {
	k := New(Options{})
	o := k.Options()
	if o.Cores != 8 || o.MemTotalKB == 0 || o.KernelVersion == "" || o.CPUModel == "" {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestBootIDUniquePerKernelAndStable(t *testing.T) {
	k1 := newTestKernel(1)
	k2 := newTestKernel(2)
	if k1.BootID() == k2.BootID() {
		t.Fatal("different kernels must have different boot ids")
	}
	id := k1.BootID()
	tick(k1, 10)
	if k1.BootID() != id {
		t.Fatal("boot id must be static across a boot")
	}
	if len(id) != 36 {
		t.Fatalf("boot id %q not UUID-shaped", id)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (float64, uint64, int) {
		k := newTestKernel(42)
		d, r := busyTask()
		k.Spawn("load", k.InitNS(), "/", d, r)
		tick(k, 30)
		up, idle := k.Uptime()
		_ = up
		return idle, k.Meter().EnergyUJ(1), k.EntropyAvail()
	}
	i1, e1, en1 := run()
	i2, e2, en2 := run()
	if i1 != i2 || e1 != e2 || en1 != en2 {
		t.Fatalf("same seed diverged: (%g,%d,%d) vs (%g,%d,%d)", i1, e1, en1, i2, e2, en2)
	}
}

func TestUptimeAndIdleAccumulate(t *testing.T) {
	k := newTestKernel(3)
	up0, idle0 := k.Uptime()
	if up0 <= 0 || idle0 <= 0 {
		t.Fatalf("fresh kernel should carry pre-simulation age: up=%g idle=%g", up0, idle0)
	}
	tick(k, 100)
	up, idle := k.Uptime()
	if math.Abs(up-up0-100) > 1e-9 {
		t.Fatalf("uptime advanced %g, want 100", up-up0)
	}
	// Fully idle host: idle core-seconds gain ≈ cores × time.
	want := float64(k.Options().Cores) * 100
	if math.Abs(idle-idle0-want) > 1 {
		t.Fatalf("idle gain = %g, want ≈ %g", idle-idle0, want)
	}
	d, r := busyTask()
	k.Spawn("load", k.InitNS(), "/", 4*d, r.Times(4))
	tick(k, 100)
	_, idle2 := k.Uptime()
	gained := idle2 - idle
	wantGain := float64(k.Options().Cores-4) * 100
	if math.Abs(gained-wantGain) > 5 {
		t.Fatalf("idle gain with 4 busy cores = %g, want ≈ %g", gained, wantGain)
	}
}

func TestSchedulerOversubscriptionScales(t *testing.T) {
	k := New(Options{Cores: 4, Seed: 9})
	d, r := busyTask()
	// Demand 8 cores on a 4-core host → every task runs at half speed.
	t1 := k.Spawn("a", k.InitNS(), "/a", 4*d, r.Times(4))
	t2 := k.Spawn("b", k.InitNS(), "/b", 4*d, r.Times(4))
	_ = t1
	_ = t2
	tick(k, 10)
	a := k.Cgroup("/a").CPUUsageNS
	b := k.Cgroup("/b").CPUUsageNS
	// Each should have received ~2 cores × 10 s = 20e9 ns.
	if math.Abs(a-20e9) > 2e9 || math.Abs(b-20e9) > 2e9 {
		t.Fatalf("cpuacct a=%g b=%g, want ≈ 20e9 each", a, b)
	}
}

func TestPerfAccountingPerCgroup(t *testing.T) {
	k := newTestKernel(4)
	k.Perf().CreateGroup("/c1")
	d, r := busyTask()
	k.Spawn("w", k.InitNS(), "/c1", d, r)
	tick(k, 10)
	c, ok := k.Perf().Read("/c1")
	if !ok {
		t.Fatal("perf group missing")
	}
	if math.Abs(c.Instructions-3e10) > 1e9 {
		t.Fatalf("instructions = %g, want ≈ 3e10", c.Instructions)
	}
}

func TestNamespaceIDsDistinct(t *testing.T) {
	k := newTestKernel(5)
	ns := k.NewNSSet("cont-1", "/docker/c1")
	for typ := NSType(1); typ <= nsTypeCount; typ++ {
		if ns.ID(typ) == k.InitNS().ID(typ) {
			t.Fatalf("%v namespace shared with init", typ)
		}
		if ns.ID(typ) == 0 {
			t.Fatalf("%v namespace id is zero", typ)
		}
	}
	if ns.IsInit() || !k.InitNS().IsInit() {
		t.Fatal("IsInit misreports")
	}
}

func TestNSTypeString(t *testing.T) {
	names := map[NSType]string{MNT: "mnt", UTS: "uts", PID: "pid", NET: "net", IPC: "ipc", USER: "user", CGROUP: "cgroup"}
	for typ, want := range names {
		if typ.String() != want {
			t.Fatalf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if NSType(42).String() == "" {
		t.Fatal("unknown NSType should still format")
	}
}

func TestPIDNamespaceTranslation(t *testing.T) {
	k := newTestKernel(6)
	ns := k.NewNSSet("cont-1", "/docker/c1")
	d, r := busyTask()
	host := k.Spawn("host-proc", k.InitNS(), "/", d, r)
	t1 := k.Spawn("c1-init", ns, "/docker/c1", d, r)
	t2 := k.Spawn("c1-worker", ns, "/docker/c1", d, r)

	if t1.NSPID != 1 || t2.NSPID != 2 {
		t.Fatalf("ns pids = %d,%d want 1,2", t1.NSPID, t2.NSPID)
	}
	if t1.HostPID == t1.NSPID {
		t.Fatal("host pid should differ from ns pid for containers")
	}
	// Host task invisible inside the container's PID ns.
	if _, ok := ns.TranslatePID(host.HostPID); ok {
		t.Fatal("host pid must not be visible in container PID ns")
	}
	// Container tasks visible on host (identity mapping).
	if got, ok := k.InitNS().TranslatePID(t1.HostPID); !ok || got != t1.HostPID {
		t.Fatal("container pid must be visible on host")
	}

	vis := k.TasksInNS(ns)
	if len(vis) != 2 {
		t.Fatalf("TasksInNS = %d tasks, want 2", len(vis))
	}
	all := k.Tasks()
	if len(all) != 3 {
		t.Fatalf("Tasks = %d, want 3 (global view)", len(all))
	}
}

func TestExitReleasesPIDAndLocks(t *testing.T) {
	k := newTestKernel(7)
	ns := k.NewNSSet("c", "/c")
	d, r := busyTask()
	task := k.Spawn("w", ns, "/c", d, r)
	k.AddFileLock(task, "WRITE", 777)
	if len(k.FileLocks()) != 1 {
		t.Fatal("lock not registered")
	}
	k.Exit(task.HostPID)
	if k.Task(task.HostPID) != nil {
		t.Fatal("task still present after exit")
	}
	if _, ok := ns.TranslatePID(task.HostPID); ok {
		t.Fatal("pid mapping not released")
	}
	if len(k.FileLocks()) != 0 {
		t.Fatal("locks not released on exit")
	}
	k.Exit(999999) // unknown pid must be a no-op
}

func TestSpawnPanicsOnNilNS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := newTestKernel(8)
	d, r := busyTask()
	k.Spawn("bad", nil, "/", d, r)
}

func TestFileLockGlobalVisibility(t *testing.T) {
	k := newTestKernel(9)
	ns1 := k.NewNSSet("c1", "/c1")
	ns2 := k.NewNSSet("c2", "/c2")
	d, r := busyTask()
	t1 := k.Spawn("w1", ns1, "/c1", d, r)
	k.Spawn("w2", ns2, "/c2", d, r)
	lock := k.AddFileLock(t1, "WRITE", 424242)
	// The global table (what /proc/locks renders) shows c1's lock to c2.
	found := false
	for _, l := range k.FileLocks() {
		if l.Inode == 424242 && l.ID == lock.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("implanted lock not globally visible")
	}
}

func TestTimerOwnersGlobal(t *testing.T) {
	k := newTestKernel(10)
	ns := k.NewNSSet("c1", "/c1")
	d, r := busyTask()
	task := k.Spawn("sig-xyzzy", ns, "/c1", d, r)
	task.HasTimer = true
	owners := k.TimerOwners()
	if len(owners) != 1 || owners[0].Name != "sig-xyzzy" {
		t.Fatalf("timer owners = %v", owners)
	}
}

func TestMeminfoRespondsToRSS(t *testing.T) {
	k := newTestKernel(11)
	before := k.MeminfoSnapshot()
	d, r := busyTask()
	task := k.Spawn("hog", k.InitNS(), "/", d, r)
	task.RSSKB = 4 * 1024 * 1024 // 4 GiB
	after := k.MeminfoSnapshot()
	if before.FreeKB-after.FreeKB < 3*1024*1024 {
		t.Fatalf("free memory did not drop with RSS: %d -> %d", before.FreeKB, after.FreeKB)
	}
	if after.TotalKB != k.Options().MemTotalKB {
		t.Fatal("total must be stable")
	}
}

func TestZoneSnapshotConsistent(t *testing.T) {
	k := newTestKernel(12)
	zones := k.ZoneSnapshot()
	if len(zones) != 3 {
		t.Fatalf("zones = %d, want 3", len(zones))
	}
	var span uint64
	for _, z := range zones {
		if z.Free > z.Spanned || z.Managed > z.Spanned {
			t.Fatalf("zone %s inconsistent: %+v", z.Name, z)
		}
		span += z.Spanned
	}
	if span > k.Options().MemTotalKB/4 {
		t.Fatal("zones span more pages than physical memory")
	}
}

func TestLoadAvgTracksDemand(t *testing.T) {
	k := newTestKernel(13)
	d, r := busyTask()
	k.Spawn("l1", k.InitNS(), "/", 2*d, r)
	tick(k, 300)
	la := k.LoadAvgSnapshot()
	if math.Abs(la.Load1-2) > 0.2 {
		t.Fatalf("load1 = %g after 5 busy minutes, want ≈ 2", la.Load1)
	}
	if la.Load5 <= la.Load15 {
		t.Fatalf("load5 (%g) should lead load15 (%g) while ramping", la.Load5, la.Load15)
	}
	if la.Runnable != 1 {
		t.Fatalf("runnable = %d", la.Runnable)
	}
}

func TestStatCountersMonotone(t *testing.T) {
	k := newTestKernel(14)
	d, r := busyTask()
	k.Spawn("w", k.InitNS(), "/", d, r)
	tick(k, 5)
	s1 := k.StatSnapshot()
	tick(k, 5)
	s2 := k.StatSnapshot()
	if s2.IntrTotal <= s1.IntrTotal {
		t.Fatal("interrupt total must grow")
	}
	if s2.CtxtSwitches <= s1.CtxtSwitches {
		t.Fatal("context switches must grow")
	}
	if s2.BootTime != s1.BootTime {
		t.Fatal("btime must be constant")
	}
	var idle1, idle2 float64
	for i := range s1.PerCPU {
		idle1 += s1.PerCPU[i].Idle
		idle2 += s2.PerCPU[i].Idle
	}
	if idle2 <= idle1 {
		t.Fatal("idle ticks must accumulate on a mostly-idle host")
	}
}

func TestInterruptsScaleWithLoad(t *testing.T) {
	idleK := newTestKernel(15)
	tick(idleK, 60)
	busyK := newTestKernel(15)
	d, r := busyTask()
	busyK.Spawn("w", busyK.InitNS(), "/", 8*d, r.Times(8))
	tick(busyK, 60)

	sum := func(k *Kernel, name string) float64 {
		for _, irq := range k.Interrupts() {
			if irq.Name == name {
				var s float64
				for _, v := range irq.PerCPU {
					s += v
				}
				return s
			}
		}
		t.Fatalf("irq %s missing", name)
		return 0
	}
	if sum(busyK, "RES") < 2*sum(idleK, "RES") {
		t.Fatal("rescheduling IPIs should scale strongly with load")
	}
}

func TestIdleStatesAccumulateOnlyWhenIdle(t *testing.T) {
	k := newTestKernel(16)
	d, r := busyTask()
	k.Spawn("w", k.InitNS(), "/", 8*d, r.Times(8)) // fully busy
	tick(k, 30)
	st := k.IdleStateSnapshot()
	var total float64
	for _, s := range st {
		for _, v := range s.TimeUSPerCPU {
			total += v
		}
	}
	if total > 1e5 { // essentially zero residency while saturated
		t.Fatalf("busy host accumulated %g us of idle residency", total)
	}
}

func TestEntropyPoolBounded(t *testing.T) {
	k := newTestKernel(17)
	for i := 0; i < 2000; i++ {
		k.Tick(k.Now()+1, 1)
		e := k.EntropyAvail()
		if e < 180 || e > 4096 {
			t.Fatalf("entropy %d out of bounds", e)
		}
	}
}

func TestVFSCountersPositive(t *testing.T) {
	k := newTestKernel(18)
	tick(k, 10)
	v := k.VFSSnapshot()
	if v.Dentries == 0 || v.Inodes == 0 || v.FilesOpen == 0 || v.FilesMax == 0 {
		t.Fatalf("vfs counters zero: %+v", v)
	}
}

func TestNewidleCostWalksWithinBounds(t *testing.T) {
	k := newTestKernel(19)
	before := k.NewidleCost()
	tick(k, 50)
	after := k.NewidleCost()
	changed := false
	for i := range after {
		if after[i] != before[i] {
			changed = true
		}
		if after[i] < 5000 || after[i] > 120000 {
			t.Fatalf("newidle cost %d out of bounds", after[i])
		}
	}
	if !changed {
		t.Fatal("newidle costs never changed")
	}
}

func TestNetDeviceViews(t *testing.T) {
	k := newTestKernel(20)
	ns := k.NewNSSet("c1", "/c1")
	host := k.NetDevices(k.InitNS())
	cont := k.NetDevices(ns)
	leaked := k.HostNetDevices()
	if len(cont) != 2 {
		t.Fatalf("container devices = %v", cont)
	}
	if len(host) != 4 || len(leaked) != 4 {
		t.Fatalf("host devices = %v leaked = %v", host, leaked)
	}
	// The buggy accessor returns host devices regardless of caller ns —
	// that inequality IS the net_prio.ifpriomap leak.
	if len(leaked) == len(cont) {
		t.Fatal("leaked view should exceed the namespaced view")
	}
}

func TestUUIDsDiffer(t *testing.T) {
	k := newTestKernel(21)
	if k.GenUUID() == k.GenUUID() {
		t.Fatal("successive uuids must differ")
	}
}

func TestCgroupLifecycle(t *testing.T) {
	k := newTestKernel(22)
	cg := k.Cgroup("/docker/x")
	cg.IfPrioMap = map[string]int{"eth0": 3}
	if got := k.Cgroup("/docker/x"); got != cg {
		t.Fatal("Cgroup must return the same instance")
	}
	paths := k.Cgroups()
	if len(paths) != 2 { // "/" and "/docker/x"
		t.Fatalf("cgroups = %v", paths)
	}
	k.RemoveCgroup("/docker/x")
	if len(k.Cgroups()) != 1 {
		t.Fatal("cgroup not removed")
	}
	k.RemoveCgroup("/") // must be refused
	if len(k.Cgroups()) != 1 {
		t.Fatal("root cgroup must not be removable")
	}
}

func TestPinnedTaskHeatsItsCore(t *testing.T) {
	k := New(Options{Cores: 8, Seed: 23})
	d, r := busyTask()
	task := k.Spawn("hot", k.InitNS(), "/", d, r)
	task.Pinned = []int{2}
	tick(k, 180)
	hot := k.Meter().CoreTempC(2)
	cold := k.Meter().CoreTempC(5)
	if hot <= cold+1 {
		t.Fatalf("pinned core temp %g not above idle core %g", hot, cold)
	}
}

func TestCPUInfoStaticAndUniform(t *testing.T) {
	k1 := newTestKernel(24)
	k2 := newTestKernel(25)
	a, b := k1.CPUInfoSnapshot(), k2.CPUInfoSnapshot()
	if len(a) != k1.Options().Cores {
		t.Fatalf("cpuinfo rows = %d", len(a))
	}
	if a[0].Model != b[0].Model || a[0].MHz != b[0].MHz {
		t.Fatal("cpuinfo must be fleet-wide identical (U=false channel)")
	}
}

func TestModulesAndVersionFleetIdentical(t *testing.T) {
	k1, k2 := newTestKernel(26), newTestKernel(27)
	if k1.KernelVersion() != k2.KernelVersion() {
		t.Fatal("kernel version should be fleet-wide identical")
	}
	m1, m2 := k1.Modules(), k2.Modules()
	if len(m1) == 0 || len(m1) != len(m2) {
		t.Fatal("module lists differ")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("module lists differ")
		}
	}
}

func TestSchedStatAccumulatesWithLoad(t *testing.T) {
	k := newTestKernel(28)
	d, r := busyTask()
	k.Spawn("w", k.InitNS(), "/", 8*d, r.Times(8))
	tick(k, 10)
	ss := k.SchedStatSnapshot()
	var run uint64
	for _, c := range ss {
		run += c.RunNS
	}
	// 8 cores × 10 s ≈ 8e10 ns of run time.
	if run < 5e10 {
		t.Fatalf("run ns = %d, want ≥ 5e10", run)
	}
}

func TestNUMAAccumulates(t *testing.T) {
	k := newTestKernel(29)
	d, r := busyTask()
	k.Spawn("w", k.InitNS(), "/", d, r)
	tick(k, 10)
	n := k.NUMASnapshot()
	if n.Hit <= 0 || n.LocalNode != n.Hit {
		t.Fatalf("numa stats %+v", n)
	}
}

func TestTaskString(t *testing.T) {
	k := newTestKernel(30)
	d, r := busyTask()
	task := k.Spawn("w", k.InitNS(), "/", d, r)
	if task.String() == "" {
		t.Fatal("String empty")
	}
}

func TestVMAndDiskCountersAccumulate(t *testing.T) {
	k := newTestKernel(31)
	d, r := busyTask()
	k.Spawn("w", k.InitNS(), "/", 4*d, r.Times(4))
	tick(k, 10)
	vm1, dk1 := k.VMStatSnapshot(), k.DiskStatSnapshot()
	tick(k, 10)
	vm2, dk2 := k.VMStatSnapshot(), k.DiskStatSnapshot()
	if vm2.PgFaults <= vm1.PgFaults || vm2.PgAllocs <= vm1.PgAllocs {
		t.Fatalf("vmstat counters stalled: %+v -> %+v", vm1, vm2)
	}
	if dk2.SectorsRead <= dk1.SectorsRead || dk2.SectorsWritten <= dk1.SectorsWritten {
		t.Fatalf("diskstats stalled: %+v -> %+v", dk1, dk2)
	}
}

func TestSoftnetPerCPUAccumulates(t *testing.T) {
	k := newTestKernel(32)
	tick(k, 20)
	sn := k.SoftnetSnapshot()
	if len(sn) != k.Options().Cores {
		t.Fatalf("softnet rows = %d", len(sn))
	}
	for i, v := range sn {
		if v == 0 {
			t.Fatalf("cpu %d softnet counter zero", i)
		}
	}
}

func TestBuddyInfoConservesFreePages(t *testing.T) {
	k := newTestKernel(33)
	tick(k, 5)
	free := k.MeminfoSnapshot().FreeKB / 4
	var sum uint64
	for order, n := range k.BuddyInfo() {
		sum += n << uint(order)
	}
	if sum != free {
		t.Fatalf("buddy blocks cover %d pages, free pool is %d", sum, free)
	}
}
