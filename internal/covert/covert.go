// Package covert implements the cross-container covert channels the paper
// sketches in Section III-C: "an attacker can use taskset to bond a
// computing-intensive workload to a specific core, and check the CPU
// utilization, power consumption, or temperature from another container.
// Those entries could be exploited by advanced attackers as covert channels
// to transmit signals."
//
// A sender container modulates host state by running (bit 1) or not
// running (bit 0) a pinned compute workload for one symbol period; a
// co-resident receiver demodulates by sampling a leaked channel — the RAPL
// energy counter, a per-core DTS temperature, or /proc/stat utilization.
// A known preamble calibrates the decision threshold, in the spirit of the
// thermal covert channels of Bartolini/Masti et al. that the paper cites.
package covert

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/container"
	"repro/internal/workload"
)

// Signal selects the leaked channel the receiver demodulates.
type Signal int

// Receiver signal sources.
const (
	PowerSignal Signal = iota + 1 // RAPL energy_uj deltas
	TempSignal                    // per-core coretemp input
	UtilSignal                    // /proc/stat utilization
)

// String implements fmt.Stringer.
func (s Signal) String() string {
	switch s {
	case PowerSignal:
		return "power"
	case TempSignal:
		return "temperature"
	case UtilSignal:
		return "utilization"
	default:
		return fmt.Sprintf("Signal(%d)", int(s))
	}
}

// Config shapes a covert transmission.
type Config struct {
	// Signal is the receiver's source.
	Signal Signal
	// SymbolSeconds is the per-bit modulation period. Power and
	// utilization react within a second; temperature needs several
	// thermal time constants (≈20 s symbols).
	SymbolSeconds int
	// Core is the core the sender pins its load to (relevant for the
	// temperature channel, which reads that core's sensor).
	Core int
	// LoadCores is the modulation amplitude in cores of Prime.
	LoadCores float64
}

// DefaultConfig returns a fast power-channel configuration.
func DefaultConfig() Config {
	return Config{Signal: PowerSignal, SymbolSeconds: 2, Core: 2, LoadCores: 4}
}

// Link is an established covert channel between a sender container and a
// receiver's pseudo-file view, driven by a world-advancing step function.
type Link struct {
	cfg      Config
	sender   *container.Container
	receiver attack.Prober
	step     func() // advances the world by exactly one second
	source   attack.HostSignal
}

// NewLink builds the channel. step must advance simulated time by one
// second per call (e.g. func(){ dc.Clock.Advance(1) }).
func NewLink(cfg Config, sender *container.Container, receiver attack.Prober, step func()) (*Link, error) {
	if cfg.SymbolSeconds <= 0 {
		return nil, fmt.Errorf("covert: symbol period must be positive")
	}
	l := &Link{cfg: cfg, sender: sender, receiver: receiver, step: step}
	switch cfg.Signal {
	case PowerSignal:
		m, err := attack.NewPowerMonitor(receiver)
		if err != nil {
			return nil, fmt.Errorf("covert: power signal: %w", err)
		}
		l.source = m
	case UtilSignal:
		m, err := attack.NewUtilizationMonitor(receiver)
		if err != nil {
			return nil, fmt.Errorf("covert: utilization signal: %w", err)
		}
		l.source = m
	case TempSignal:
		l.source = tempSource{probe: receiver, core: cfg.Core}
	default:
		return nil, fmt.Errorf("covert: unknown signal %v", cfg.Signal)
	}
	return l, nil
}

// tempSource adapts the coretemp pseudo-file to attack.HostSignal.
type tempSource struct {
	probe attack.Prober
	core  int
}

// Sample reads the pinned core's temperature in °C.
func (t tempSource) Sample(float64) (float64, error) {
	path := fmt.Sprintf("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp%d_input", t.core+2)
	raw, err := t.probe.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("covert: read %s: %w", path, err)
	}
	milli, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil {
		return 0, fmt.Errorf("covert: parse temperature: %w", err)
	}
	return milli / 1000, nil
}

// preamble is the known calibration sequence prepended to every frame.
var preamble = []bool{true, false, true, false, true, false}

// Transmit sends the bits through the channel and returns what the
// receiver decoded. The sender modulates by starting/stopping a pinned
// Prime workload; the receiver averages the signal over each symbol and
// thresholds against levels learned from the preamble.
func (l *Link) Transmit(bits []bool) ([]bool, error) {
	frame := append(append([]bool(nil), preamble...), bits...)
	means := make([]float64, 0, len(frame))

	// Prime the differential sources (attack monitors report the baseline
	// step as ErrPrimed; simple sources return nil).
	if _, err := l.source.Sample(1); err != nil && !errors.Is(err, attack.ErrPrimed) {
		return nil, err
	}
	for _, bit := range frame {
		var task senderTask
		if bit {
			task = l.startLoad()
		}
		var sum float64
		for s := 0; s < l.cfg.SymbolSeconds; s++ {
			l.step()
			v, err := l.source.Sample(1)
			if err != nil {
				task.stop()
				return nil, err
			}
			sum += v
		}
		task.stop()
		means = append(means, sum/float64(l.cfg.SymbolSeconds))
		// Guard interval for slow (thermal) channels: let the signal
		// decay toward the idle level between symbols.
		if l.cfg.Signal == TempSignal {
			for s := 0; s < l.cfg.SymbolSeconds; s++ {
				l.step()
				if _, err := l.source.Sample(1); err != nil {
					return nil, err
				}
			}
		}
	}

	// Calibrate: average preamble levels for 1 and 0.
	var hi, lo float64
	var nHi, nLo int
	for i, bit := range preamble {
		if bit {
			hi += means[i]
			nHi++
		} else {
			lo += means[i]
			nLo++
		}
	}
	hi /= float64(nHi)
	lo /= float64(nLo)
	threshold := (hi + lo) / 2
	if hi <= lo {
		// No separation: channel is dead (cross-host or defended); decode
		// anyway — the caller measures the error rate.
		threshold = hi
	}

	out := make([]bool, 0, len(bits))
	for _, m := range means[len(preamble):] {
		out = append(out, m > threshold)
	}
	return out, nil
}

// senderTask wraps the optional running load of a 1-symbol; stop tears the
// sender's modulation workload down (the sender runs nothing else).
type senderTask struct {
	c *container.Container
}

func (l *Link) startLoad() senderTask {
	l.sender.RunPinned(workload.Prime, pinCores(l.cfg))
	return senderTask{c: l.sender}
}

func pinCores(cfg Config) []int {
	cores := make([]int, 0, int(cfg.LoadCores))
	n := int(cfg.LoadCores)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		cores = append(cores, cfg.Core+i)
	}
	return cores
}

func (s senderTask) stop() {
	if s.c == nil {
		return
	}
	s.c.StopAll()
}

// BitErrorRate compares sent and received bit strings.
func BitErrorRate(sent, received []bool) float64 {
	if len(sent) == 0 || len(sent) != len(received) {
		return 1
	}
	errs := 0
	for i := range sent {
		if sent[i] != received[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(sent))
}

// ThroughputBPS returns the channel's raw data rate for a config.
func ThroughputBPS(cfg Config) float64 {
	period := float64(cfg.SymbolSeconds)
	if cfg.Signal == TempSignal {
		period *= 2 // guard interval
	}
	return 1 / period
}

// coResSignature is the fixed probe pattern VerifyCoResidence transmits.
var coResSignature = []bool{true, true, false, true, false, false, true, false}

// VerifyCoResidence uses the covert channel itself as a co-residence test:
// if a known signature survives transmission (low bit error rate), the two
// containers share the signal's physical substrate. This is the check of
// last resort on clouds that mask every identifier channel but leave a
// performance or thermal signal readable.
func (l *Link) VerifyCoResidence() (bool, float64, error) {
	got, err := l.Transmit(coResSignature)
	if err != nil {
		return false, 1, err
	}
	ber := BitErrorRate(coResSignature, got)
	return ber < 0.2, ber, nil
}
