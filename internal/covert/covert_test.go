package covert

import (
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/container"
)

// world builds a quiet single-rack datacenter and returns co-resident
// sender/receiver plus a cross-host observer.
func world(t *testing.T, seed int64, defended bool) (step func(), sender, receiver, remote *container.Container) {
	t.Helper()
	dc := cloud.New(cloud.Config{
		Racks: 1, ServersPerRack: 2, Seed: seed, Defended: defended,
		Benign: cloud.BenignConfig{BaseUtil: 0.05, PeakUtil: 0.08, FlashCrowdPerDay: 0.0001},
	})
	s0 := dc.Racks[0].Servers[0]
	s1 := dc.Racks[0].Servers[1]
	sender = s0.Runtime.Create("sender")
	receiver = s0.Runtime.Create("receiver")
	remote = s1.Runtime.Create("remote")
	if defended {
		s0.PowerNS.Register(sender.CgroupPath)
		s0.PowerNS.Register(receiver.CgroupPath)
		s1.PowerNS.Register(remote.CgroupPath)
	}
	return func() { dc.Clock.Advance(1) }, sender, receiver, remote
}

func randomBits(n int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	return bits
}

func TestPowerChannelTransmits(t *testing.T) {
	step, sender, receiver, _ := world(t, 1, false)
	link, err := NewLink(DefaultConfig(), sender, receiver, step)
	if err != nil {
		t.Fatal(err)
	}
	sent := randomBits(32, 7)
	got, err := link.Transmit(sent)
	if err != nil {
		t.Fatal(err)
	}
	if ber := BitErrorRate(sent, got); ber > 0.05 {
		t.Fatalf("power channel BER = %.2f, want ≈ 0", ber)
	}
}

func TestUtilizationChannelTransmits(t *testing.T) {
	step, sender, receiver, _ := world(t, 2, false)
	cfg := DefaultConfig()
	cfg.Signal = UtilSignal
	link, err := NewLink(cfg, sender, receiver, step)
	if err != nil {
		t.Fatal(err)
	}
	sent := randomBits(32, 8)
	got, err := link.Transmit(sent)
	if err != nil {
		t.Fatal(err)
	}
	if ber := BitErrorRate(sent, got); ber > 0.05 {
		t.Fatalf("utilization channel BER = %.2f", ber)
	}
}

func TestTemperatureChannelTransmits(t *testing.T) {
	step, sender, receiver, _ := world(t, 3, false)
	cfg := Config{Signal: TempSignal, SymbolSeconds: 20, Core: 2, LoadCores: 2}
	link, err := NewLink(cfg, sender, receiver, step)
	if err != nil {
		t.Fatal(err)
	}
	sent := randomBits(16, 9)
	got, err := link.Transmit(sent)
	if err != nil {
		t.Fatal(err)
	}
	if ber := BitErrorRate(sent, got); ber > 0.15 {
		t.Fatalf("temperature channel BER = %.2f, want low", ber)
	}
}

func TestCrossHostChannelIsDead(t *testing.T) {
	step, sender, _, remote := world(t, 4, false)
	link, err := NewLink(DefaultConfig(), sender, remote, step)
	if err != nil {
		t.Fatal(err)
	}
	sent := randomBits(32, 10)
	got, err := link.Transmit(sent)
	if err != nil {
		t.Fatal(err)
	}
	// The remote receiver sees its own (unrelated) host: decoding must be
	// no better than chance-ish.
	if ber := BitErrorRate(sent, got); ber < 0.25 {
		t.Fatalf("cross-host BER = %.2f — channel should be dead", ber)
	}
}

func TestDefenseKillsPowerChannel(t *testing.T) {
	step, sender, receiver, _ := world(t, 5, true)
	link, err := NewLink(DefaultConfig(), sender, receiver, step)
	if err != nil {
		t.Fatal(err)
	}
	sent := randomBits(32, 11)
	got, err := link.Transmit(sent)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver's energy_uj is now its own idle counter: the sender's
	// modulation is invisible.
	if ber := BitErrorRate(sent, got); ber < 0.25 {
		t.Fatalf("defended power channel BER = %.2f — defense ineffective", ber)
	}
}

func TestNewLinkValidation(t *testing.T) {
	step, sender, receiver, _ := world(t, 6, false)
	if _, err := NewLink(Config{Signal: PowerSignal, SymbolSeconds: 0}, sender, receiver, step); err == nil {
		t.Fatal("zero symbol period accepted")
	}
	if _, err := NewLink(Config{Signal: Signal(99), SymbolSeconds: 1}, sender, receiver, step); err == nil {
		t.Fatal("unknown signal accepted")
	}
}

func TestBitErrorRate(t *testing.T) {
	if BitErrorRate(nil, nil) != 1 {
		t.Fatal("empty comparison should be 1")
	}
	if ber := BitErrorRate([]bool{true, false}, []bool{true, true}); ber != 0.5 {
		t.Fatalf("ber = %g", ber)
	}
	if ber := BitErrorRate([]bool{true}, []bool{true, false}); ber != 1 {
		t.Fatal("length mismatch should be 1")
	}
}

func TestThroughputAndSignalString(t *testing.T) {
	if ThroughputBPS(Config{Signal: PowerSignal, SymbolSeconds: 2}) != 0.5 {
		t.Fatal("power throughput wrong")
	}
	if ThroughputBPS(Config{Signal: TempSignal, SymbolSeconds: 20}) != 1.0/40 {
		t.Fatal("temp throughput must include guard interval")
	}
	for s, want := range map[Signal]string{PowerSignal: "power", TempSignal: "temperature", UtilSignal: "utilization"} {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
	if Signal(42).String() == "" {
		t.Fatal("unknown signal should format")
	}
}

func TestVerifyCoResidenceOverPowerChannel(t *testing.T) {
	step, sender, receiver, remote := world(t, 7, false)
	link, err := NewLink(DefaultConfig(), sender, receiver, step)
	if err != nil {
		t.Fatal(err)
	}
	same, ber, err := link.VerifyCoResidence()
	if err != nil || !same {
		t.Fatalf("co-resident pair not verified (ber %.2f, err %v)", ber, err)
	}
	crossLink, err := NewLink(DefaultConfig(), sender, remote, step)
	if err != nil {
		t.Fatal(err)
	}
	same, ber, err = crossLink.VerifyCoResidence()
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatalf("cross-host pair verified as co-resident (ber %.2f)", ber)
	}
}
