package attack

import "testing"

func FuzzParseCPULine(f *testing.F) {
	f.Add("cpu  1 2 3 4 5 6 7 0 0 0\n")
	f.Add("cpu  \n")
	f.Add("cpu  a b c d e f g\n")
	f.Add("cpu\ncpu  1 2 3 4 5 6 7\n")
	f.Fuzz(func(t *testing.T, s string) {
		busy, total, err := parseCPULine(s)
		if err == nil && busy > total {
			t.Fatalf("busy %g > total %g from %q", busy, total, s)
		}
	})
}
