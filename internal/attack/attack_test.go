package attack

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/stats"
	"repro/internal/workload"
)

func newDC(seed int64, servers int) *cloud.Datacenter {
	return cloud.New(cloud.Config{Racks: 1, ServersPerRack: servers, Seed: seed,
		BreakerRatedW: 1e9}) // effectively untrippable unless a test wants it
}

func TestPowerMonitorTracksHostPower(t *testing.T) {
	dc := newDC(1, 1)
	srv := dc.Racks[0].Servers[0]
	c := srv.Runtime.Create("spy")
	m, err := NewPowerMonitor(c)
	if err != nil {
		t.Fatal(err)
	}
	dc.Clock.Advance(1)
	if w, err := m.Sample(1); !errors.Is(err, ErrPrimed) || w != 0 {
		t.Fatalf("priming sample = %g err=%v, want 0, ErrPrimed", w, err)
	}
	// Idle phase.
	var idleW float64
	for i := 0; i < 30; i++ {
		dc.Clock.Advance(1)
		if idleW, err = m.Sample(1); err != nil {
			t.Fatal(err)
		}
	}
	// Busy phase: a co-tenant saturates the host.
	victim := srv.Runtime.Create("victim")
	victim.Run(workload.Prime, 8)
	var busyW float64
	for i := 0; i < 30; i++ {
		dc.Clock.Advance(1)
		if busyW, err = m.Sample(1); err != nil {
			t.Fatal(err)
		}
	}
	if busyW < idleW+15 {
		t.Fatalf("monitor missed the co-tenant surge: idle %.1f W busy %.1f W", idleW, busyW)
	}
	// Sanity: monitored power ≈ meter package power.
	truth := srv.Kernel.Meter().Power(2) + srv.Kernel.Meter().Power(3) // core+dram
	_ = truth
	if len(m.History()) < 50 {
		t.Fatal("history not recorded")
	}
}

func TestPowerMonitorFailsWithoutRAPL(t *testing.T) {
	p := cloud.CC4()
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 2, Provider: &p})
	c := dc.Racks[0].Servers[0].Runtime.Create("spy")
	if _, err := NewPowerMonitor(c); err == nil {
		t.Fatal("monitor should fail on a RAPL-less fleet")
	}
}

func TestIsCrest(t *testing.T) {
	m := &PowerMonitor{capacity: 100}
	for i := 0; i < 40; i++ {
		m.history = append(m.history, 100)
	}
	m.history = append(m.history, 150)
	if !m.IsCrest(90, 30) {
		t.Fatal("150 over a flat-100 history should be a crest")
	}
	m.history = append(m.history, 90)
	if m.IsCrest(90, 30) {
		t.Fatal("90 should not be a crest")
	}
	short := &PowerMonitor{capacity: 100, history: []float64{1, 2, 3}}
	if short.IsCrest(90, 30) {
		t.Fatal("crest must not fire before minSamples")
	}
}

func TestAggregateCoResident(t *testing.T) {
	dc := newDC(3, 4)
	res, err := AggregateCoResident(dc, "mallory", 3, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 3 {
		t.Fatalf("kept = %d", len(res.Kept))
	}
	if res.Launched < 3 {
		t.Fatalf("launched = %d, must include misses or at least the keeps", res.Launched)
	}
	// All kept containers really are on one server.
	for _, p := range res.Kept[1:] {
		if p.Server != res.Kept[0].Server {
			t.Fatal("orchestration kept a non-co-resident container")
		}
	}
	if len(res.Containers()) != 3 {
		t.Fatal("Containers() mismatch")
	}
}

func TestAggregateCoResidentRespectsBudget(t *testing.T) {
	dc := newDC(4, 8)
	// Demanding 8 co-residents with tiny launch budget must fail loudly.
	_, err := AggregateCoResident(dc, "m", 8, 1, 4)
	if err == nil {
		t.Fatal("expected budget exhaustion error")
	}
	if _, err := AggregateCoResident(dc, "m", 0, 1, 4); err == nil {
		t.Fatal("n=0 should be rejected")
	}
}

func TestSpreadAcrossRack(t *testing.T) {
	dc := cloud.New(cloud.Config{Racks: 2, ServersPerRack: 4, Seed: 5})
	res, err := SpreadAcrossRack(dc, "mallory", 3, 1, 3600, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Kept containers: all on the reference rack, all distinct hosts.
	rack := res.Kept[0].Server.Rack
	hosts := map[*cloud.Server]bool{}
	for _, p := range res.Kept {
		if p.Server.Rack != rack {
			t.Fatal("spread crossed a rack boundary")
		}
		if hosts[p.Server] {
			t.Fatal("spread reused a host")
		}
		hosts[p.Server] = true
	}
}

func TestRunContinuousRaisesPower(t *testing.T) {
	dc := newDC(6, 2)
	res, err := AggregateCoResident(dc, "m", 2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	rack := res.Kept[0].Server.Rack
	baseline := rack.Power()
	r := RunContinuous(dc, rack, res.Containers(), DefaultConfig(), 120)
	if r.PeakW < baseline+40 {
		t.Fatalf("continuous attack peak %.0f W barely above baseline %.0f W", r.PeakW, baseline)
	}
	if r.AttackCoreSeconds != 120*4*2 {
		t.Fatalf("cost accounting = %g core-seconds", r.AttackCoreSeconds)
	}
	if len(r.Series) != 120 {
		t.Fatalf("series length %d", len(r.Series))
	}
}

func TestRunPeriodicBurstCount(t *testing.T) {
	dc := newDC(7, 2)
	res, err := AggregateCoResident(dc, "m", 2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	r := RunPeriodic(dc, res.Kept[0].Server.Rack, res.Containers(), cfg, 3000, 300)
	// Every 300 s over 3000 s → ~10 bursts (paper: 9 in Fig. 3).
	if r.Trials < 8 || r.Trials > 11 {
		t.Fatalf("periodic trials = %d, want ≈ 10", r.Trials)
	}
	if r.AttackCoreSeconds <= 0 {
		t.Fatal("periodic attack must meter cost")
	}
}

func TestSynergisticBeatsPeriodicAtLowerCost(t *testing.T) {
	// The Fig. 3 headline: on identical worlds, synergistic achieves a
	// higher peak with fewer trials and lower metered cost.
	run := func(synergistic bool) Result {
		// 16-core servers: the burst adds on top of the benign load
		// without saturating the host, so timing shows in the peak.
		dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 4, Seed: 8,
			CoresPerServer: 16, BreakerRatedW: 1e9,
			Benign: cloud.BenignConfig{FlashCrowdPerDay: 48}})
		// Fast-forward to the evening demand ramp so the attack window
		// contains real benign crests to ride (like the paper's Fig. 3).
		dc.Clock.Run(16*3600, 30)
		agg, err := SpreadAcrossRack(dc, "m", 4, 4, 3600, 400)
		if err != nil {
			t.Fatal(err)
		}
		rack := agg.Kept[0].Server.Rack
		cfg := DefaultConfig()
		if synergistic {
			r, err := RunSynergistic(dc, rack, agg.Containers(), cfg, 3000)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		return RunPeriodic(dc, rack, agg.Containers(), cfg, 3000, 300)
	}
	syn := run(true)
	per := run(false)
	// Blind periodic bursts can tie the peak by luck (they cover ~20% of
	// the window) but can never beat crest-timed bursts; cost and trial
	// count must always favour the synergistic attack.
	if syn.PeakW < per.PeakW*0.99 {
		t.Fatalf("synergistic peak %.0f W below periodic %.0f W", syn.PeakW, per.PeakW)
	}
	if syn.Trials >= per.Trials {
		t.Fatalf("synergistic trials %d not below periodic %d", syn.Trials, per.Trials)
	}
	if syn.AttackCoreSeconds >= per.AttackCoreSeconds {
		t.Fatalf("synergistic cost %.0f not below periodic %.0f",
			syn.AttackCoreSeconds, per.AttackCoreSeconds)
	}
	// And the synergistic bursts really ride crests: its peak must sit in
	// the top tail of its own observed series.
	if p95 := stats.Percentile(syn.Series, 95); syn.PeakW < p95 {
		t.Fatalf("synergistic peak %.0f W below its own p95 %.0f W", syn.PeakW, p95)
	}
}

func TestSynergisticFailsWhenRAPLMasked(t *testing.T) {
	p := cloud.CC4()
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 9, Provider: &p})
	_, c, err := dc.Launch("m", "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSynergistic(dc, dc.Racks[0], []*container.Container{c}, DefaultConfig(), 60)
	if err == nil {
		t.Fatal("synergistic attack should fail without the RAPL channel")
	}
	if !strings.Contains(err.Error(), "RAPL") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestAttackCanTripBreaker(t *testing.T) {
	// With a tight breaker and an aggregated attack, the lights go out.
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 4, Seed: 10,
		BreakerRatedW: 520})
	agg, err := SpreadAcrossRack(dc, "m", 4, 8, 3600, 400)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CoresPerContainer = 8
	cfg.Profile = workload.GeneratePowerVirus(
		dc.Racks[0].Servers[0].Kernel.Meter().Config(),
		workload.DefaultVirusConstraints(), 200, 1)
	r := RunContinuous(dc, dc.Racks[0], agg.Containers(), cfg, 300)
	if !r.BreakerTripped {
		peak := stats.Summarize(r.Series)
		t.Fatalf("breaker never tripped (peak %.0f W of %.0f W rated)", peak.Max, 520.0)
	}
}
