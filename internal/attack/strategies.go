package attack

import (
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config shapes an attack campaign.
type Config struct {
	// Profile is the power-intensive workload (power virus).
	Profile workload.Profile
	// CoresPerContainer is how many cores each attack container burns
	// during a burst.
	CoresPerContainer float64
	// BurstSeconds is the spike length — long enough to register on the
	// breaker, short enough to stay ahead of rack-level capping (the
	// paper notes rack capping reacts on minute granularity).
	BurstSeconds float64
	// CooldownSeconds separates bursts of the synergistic strategy.
	CooldownSeconds float64
	// CrestPercentile is the synergistic trigger: burst when observed
	// host power exceeds this percentile of history. When TriggerNearMax
	// is nonzero it replaces the percentile trigger: burst only when the
	// current sample is within that fraction of the highest power ever
	// observed.
	CrestPercentile float64
	TriggerNearMax  float64
	// WarmupSeconds of pure observation before the synergistic attack
	// will fire.
	WarmupSeconds float64
}

// DefaultConfig mirrors the paper's experiment scale: each container fully
// busies its four allocated cores with Prime for one-second-resolution
// spikes.
func DefaultConfig() Config {
	return Config{
		Profile:           workload.Prime,
		CoresPerContainer: 4,
		BurstSeconds:      60,
		CooldownSeconds:   240,
		CrestPercentile:   90,
		WarmupSeconds:     300,
	}
}

// Result summarizes a campaign.
type Result struct {
	// Series is rack power sampled once per simulated second.
	Series []float64
	// PeakW is the highest rack power observed.
	PeakW float64
	// Trials is the number of bursts launched.
	Trials int
	// AttackCoreSeconds is the total metered CPU the attack consumed —
	// the cost proxy of Section IV-B (monitoring is free; bursts are not).
	AttackCoreSeconds float64
	// BreakerTripped reports a successful outage; TrippedAtS is the
	// campaign second it happened and CoreSecondsAtTrip the metered cost
	// spent up to that moment.
	BreakerTripped    bool
	TrippedAtS        float64
	CoreSecondsAtTrip float64
	// MonitorFaults counts sampling steps where a host signal failed even
	// after its internal retries and the campaign held the last known
	// value instead of aborting. Always 0 on a clean substrate.
	MonitorFaults int
}

// campaign drives the common loop: advance the datacenter clock one second
// at a time for duration seconds, calling decide each step; while bursting,
// the attack workload runs in every attacker container.
type campaign struct {
	dc         *cloud.Datacenter
	rack       *cloud.Rack
	cfg        Config
	containers []*container.Container

	bursting  bool
	burstEnds float64
	lastBurst float64
	res       Result
}

func newCampaign(dc *cloud.Datacenter, rack *cloud.Rack, containers []*container.Container, cfg Config) *campaign {
	return &campaign{dc: dc, rack: rack, cfg: cfg, containers: containers, lastBurst: -1e12}
}

func (c *campaign) startBurst(now float64) {
	if c.bursting {
		return
	}
	c.bursting = true
	c.burstEnds = now + c.cfg.BurstSeconds
	c.lastBurst = now
	c.res.Trials++
	for _, cont := range c.containers {
		cont.Run(c.cfg.Profile, c.cfg.CoresPerContainer)
	}
}

func (c *campaign) stopBurst() {
	if !c.bursting {
		return
	}
	c.bursting = false
	for _, cont := range c.containers {
		cont.StopAll()
	}
}

// step advances one second and records accounting, including the metered
// CPU charges the cloud bills for burst seconds (Section IV-B's cost
// argument).
func (c *campaign) step() {
	c.dc.Clock.Advance(1)
	if c.bursting {
		c.res.AttackCoreSeconds += c.cfg.CoresPerContainer * float64(len(c.containers))
		for _, cont := range c.containers {
			c.dc.Billing().ChargeCPU(cont.ID, c.cfg.CoresPerContainer)
		}
	}
	w := c.rack.Power()
	c.res.Series = append(c.res.Series, w)
	if w > c.res.PeakW {
		c.res.PeakW = w
	}
	if c.rack.Breaker.Tripped() && !c.res.BreakerTripped {
		c.res.BreakerTripped = true
		c.res.TrippedAtS = float64(len(c.res.Series))
		c.res.CoreSecondsAtTrip = c.res.AttackCoreSeconds
	}
}

// RunContinuous keeps the attack workload running for the whole duration —
// the maximal-cost baseline.
func RunContinuous(dc *cloud.Datacenter, rack *cloud.Rack, containers []*container.Container, cfg Config, duration float64) Result {
	c := newCampaign(dc, rack, containers, cfg)
	c.startBurst(dc.Clock.Now())
	for t := 0.0; t < duration; t++ {
		c.step()
	}
	c.stopBurst()
	c.res.Trials = 1
	return c.res
}

// RunPeriodic bursts blindly every interval seconds (Fig. 3's baseline:
// every 300 s).
func RunPeriodic(dc *cloud.Datacenter, rack *cloud.Rack, containers []*container.Container, cfg Config, duration, interval float64) Result {
	c := newCampaign(dc, rack, containers, cfg)
	for t := 0.0; t < duration; t++ {
		now := dc.Clock.Now()
		if c.bursting && now >= c.burstEnds {
			c.stopBurst()
		}
		if !c.bursting && now-c.lastBurst >= interval {
			c.startBurst(now)
		}
		c.step()
	}
	c.stopBurst()
	return c.res
}

// RunSynergistic monitors host power through the leaked RAPL channel of
// each attacker container's host and superimposes bursts on benign crests.
func RunSynergistic(dc *cloud.Datacenter, rack *cloud.Rack, containers []*container.Container, cfg Config, duration float64) (Result, error) {
	monitors, err := perHostSignals(containers, func(c *container.Container) (HostSignal, error) {
		m, err := NewPowerMonitor(c)
		if err != nil {
			return nil, fmt.Errorf("attack: synergistic strategy needs the RAPL channel: %w", err)
		}
		return m, nil
	})
	if err != nil {
		return Result{}, err
	}
	return runSynergistic(dc, rack, containers, cfg, duration, monitors)
}

// RunSynergisticUtil is the Section VII-A fallback: when RAPL is masked or
// absent, drive the same crest-riding strategy from the leaked CPU
// utilization of /proc/stat.
func RunSynergisticUtil(dc *cloud.Datacenter, rack *cloud.Rack, containers []*container.Container, cfg Config, duration float64) (Result, error) {
	monitors, err := perHostSignals(containers, func(c *container.Container) (HostSignal, error) {
		m, err := NewUtilizationMonitor(c)
		if err != nil {
			return nil, fmt.Errorf("attack: utilization fallback needs /proc/stat: %w", err)
		}
		return m, nil
	})
	if err != nil {
		return Result{}, err
	}
	return runSynergistic(dc, rack, containers, cfg, duration, monitors)
}

// perHostSignals builds one signal per distinct host. The attacker cannot
// see placement, so it groups its own containers by the leaked boot_id —
// using the very channel under study. A host whose monitor cannot be
// constructed (e.g. its RAPL path is flapping or dead) is skipped rather
// than aborting the campaign; the sweep fails only when *no* host is
// monitorable, since one working signal still carries the rack-level
// trend.
func perHostSignals(containers []*container.Container, mk func(*container.Container) (HostSignal, error)) ([]HostSignal, error) {
	seen := map[string]bool{}
	var monitors []HostSignal
	var firstErr error
	for _, cont := range containers {
		bootID, err := cont.ReadFile("/proc/sys/kernel/random/boot_id")
		if err == nil && seen[bootID] {
			continue
		}
		m, mkErr := mk(cont)
		if mkErr != nil {
			if firstErr == nil {
				firstErr = mkErr
			}
			continue
		}
		monitors = append(monitors, m)
		if err == nil {
			seen[bootID] = true
		}
	}
	if len(monitors) == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("attack: no containers to monitor")
		}
		return nil, firstErr
	}
	return monitors, nil
}

func runSynergistic(dc *cloud.Datacenter, rack *cloud.Rack, containers []*container.Container, cfg Config, duration float64, monitors []HostSignal) (Result, error) {
	c := newCampaign(dc, rack, containers, cfg)
	start := dc.Clock.Now()
	var sumHistory []float64
	// prevMax tracks max(sumHistory[:len-1]) incrementally: the near-max
	// trigger needs only the running maximum, and recomputing it by scanning
	// the whole history made the campaign loop O(t²). Power sums are
	// non-negative, so the running max is identical to the rescans it
	// replaces.
	var prevMax float64
	lastW := make([]float64, len(monitors))
	for t := 0.0; t < duration; t++ {
		now := dc.Clock.Now()
		// Sample every monitored host's power (free: a couple of file
		// reads per host) and aggregate. The rack peaks when the SUM of
		// server powers peaks, so the trigger watches the aggregate — the
		// system-wide visibility that the leaked RAPL channel grants. A
		// monitor that fails a step even after its internal retries holds
		// its last known value: one glitched read must not abort an
		// hours-long campaign, and the aggregate trend survives a
		// one-second hole in one host's signal.
		var sum float64
		for i, m := range monitors {
			w, err := m.Sample(1)
			switch {
			case err == nil:
				lastW[i] = w
			case errors.Is(err, ErrPrimed):
				lastW[i] = 0 // baseline step: no measurement yet
			default:
				c.res.MonitorFaults++ // hold lastW[i]
			}
			sum += lastW[i]
		}
		sumHistory = append(sumHistory, sum)
		crest := false
		if len(sumHistory) > 30 {
			if cfg.TriggerNearMax > 0 {
				crest = sum >= prevMax*cfg.TriggerNearMax
			} else {
				prev := sumHistory[:len(sumHistory)-1]
				crest = sum >= stats.Percentile(prev, cfg.CrestPercentile)
			}
		}
		if sum > prevMax {
			prevMax = sum
		}
		if c.bursting && now >= c.burstEnds {
			c.stopBurst()
		}
		warm := now-start >= cfg.WarmupSeconds
		cooled := now-c.lastBurst >= cfg.CooldownSeconds+cfg.BurstSeconds
		if !c.bursting && warm && cooled && crest {
			c.startBurst(now)
		}
		c.step()
	}
	c.stopBurst()
	return c.res, nil
}
