package attack

import (
	"errors"
	"testing"

	"repro/internal/cloud"
	"repro/internal/workload"
)

func TestUtilizationMonitorTracksLoad(t *testing.T) {
	dc := newDC(41, 1)
	srv := dc.Racks[0].Servers[0]
	spy := srv.Runtime.Create("spy")
	m, err := NewUtilizationMonitor(spy)
	if err != nil {
		t.Fatal(err)
	}
	dc.Clock.Advance(1)
	if v, err := m.Sample(1); !errors.Is(err, ErrPrimed) || v != 0 {
		t.Fatalf("priming sample = %g err=%v, want 0, ErrPrimed", v, err)
	}
	var idleU float64
	for i := 0; i < 20; i++ {
		dc.Clock.Advance(1)
		if idleU, err = m.Sample(1); err != nil {
			t.Fatal(err)
		}
	}
	victim := srv.Runtime.Create("victim")
	victim.Run(workload.Prime, 6)
	var busyU float64
	for i := 0; i < 20; i++ {
		dc.Clock.Advance(1)
		if busyU, err = m.Sample(1); err != nil {
			t.Fatal(err)
		}
	}
	if busyU < idleU+40 {
		t.Fatalf("utilization proxy missed the surge: idle %.1f%% busy %.1f%%", idleU, busyU)
	}
	if busyU > 100.5 {
		t.Fatalf("utilization %.1f%% exceeds 100%%", busyU)
	}
}

func TestUtilizationMonitorWorksWhereRAPLIsMasked(t *testing.T) {
	// CC4: no RAPL hardware — the power monitor fails, the fallback works.
	p := cloud.CC4()
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 42, Provider: &p})
	c := dc.Racks[0].Servers[0].Runtime.Create("spy")
	if _, err := NewPowerMonitor(c); err == nil {
		t.Fatal("power monitor should fail on CC4")
	}
	if _, err := NewUtilizationMonitor(c); err != nil {
		t.Fatalf("utilization fallback should work on CC4: %v", err)
	}
}

func TestUtilizationMonitorRequiresStat(t *testing.T) {
	// CC5 empties /proc/stat? No — it filters; craft a prober that denies.
	deny := proberFunc(func(string) (string, error) {
		return "", errSentinel
	})
	if _, err := NewUtilizationMonitor(deny); err == nil {
		t.Fatal("expected failure without /proc/stat")
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "denied" }

type proberFunc func(string) (string, error)

func (f proberFunc) ReadFile(p string) (string, error) { return f(p) }

func TestParseCPULine(t *testing.T) {
	busy, total, err := parseCPULine("cpu  100 0 50 800 20 10 20 0 0 0\ncpu0 1 2 3 4 5 6 7\n")
	if err != nil {
		t.Fatal(err)
	}
	if busy != 180 || total != 1000 {
		t.Fatalf("busy=%g total=%g", busy, total)
	}
	if _, _, err := parseCPULine("intr 42"); err == nil {
		t.Fatal("missing cpu line should error")
	}
	if _, _, err := parseCPULine("cpu  1 2 3"); err == nil {
		t.Fatal("short cpu line should error")
	}
	if _, _, err := parseCPULine("cpu  a b c d e f g"); err == nil {
		t.Fatal("non-numeric cpu line should error")
	}
}

func TestSynergisticUtilFallbackOnCC4(t *testing.T) {
	// End to end: on a RAPL-less cloud the utilization-driven synergistic
	// attack still finds and rides crests.
	p := cloud.CC4()
	dc := cloud.New(cloud.Config{
		Racks: 1, ServersPerRack: 4, CoresPerServer: 16, Seed: 43,
		Provider: &p, BreakerRatedW: 1e9,
		Benign: cloud.BenignConfig{FlashCrowdPerDay: 48, SharedFlash: true, FlashMinS: 60, FlashMaxS: 240},
	})
	dc.Clock.Run(16*3600, 30)
	agg, err := SpreadAcrossRack(dc, "m", 4, 4, 3600, 400)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TriggerNearMax = 0.95
	cfg.WarmupSeconds = 300
	r, err := RunSynergisticUtil(dc, agg.Kept[0].Server.Rack, agg.Containers(), cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trials == 0 {
		t.Fatal("utilization-driven attack never fired")
	}
	if r.PeakW <= 0 {
		t.Fatal("no power recorded")
	}
	// The RAPL-based variant must refuse on the same cloud.
	if _, err := RunSynergistic(dc, agg.Kept[0].Server.Rack, agg.Containers(), cfg, 10); err == nil {
		t.Fatal("RAPL variant should fail on CC4")
	}
}
