// Package attack implements Section IV: power attacks launched from inside
// tenant containers of a multi-tenancy container cloud.
//
// Three strategies are provided over the same attack workload:
//
//   - Continuous: run the power virus all the time (maximal effect, maximal
//     cost, trivially detectable);
//   - Periodic: burst blindly every fixed interval (the paper's baseline in
//     Fig. 3);
//   - Synergistic: monitor host power through the leaked RAPL channel at
//     near-zero cost and superimpose bursts exactly on benign power crests.
//
// The package also implements the attack orchestration of Section IV-C:
// aggregating controlled containers onto one host by repeated launch /
// co-residence-check / terminate, and onto one rack via boot-time
// proximity.
package attack

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/power"
	"repro/internal/pseudofs"
	"repro/internal/stats"
)

// Prober reads pseudo-files from inside a container (the attacker's only
// interface to the host).
type Prober interface {
	ReadFile(path string) (string, error)
}

// AppendProber is the optional zero-allocation extension of Prober: the
// file content is appended into a caller-supplied buffer instead of being
// allocated as a fresh string. container.Container implements it via
// pseudofs.Mount.AppendRead. The monitors detect it with a type assertion
// and reuse one scratch buffer across samples, so the per-second RAPL
// sampling loop — thousands of counter reads per campaign — stays off the
// garbage collector entirely. Probers that only implement Prober
// (chaos-wrapped flaky probers, test fakes) transparently fall back to the
// string path.
type AppendProber interface {
	AppendFile(dst []byte, path string) ([]byte, error)
}

const (
	energyPath   = "/sys/class/powercap/intel-rapl:0/energy_uj"
	maxRangePath = "/sys/class/powercap/intel-rapl:0/max_energy_range_uj"
)

// ErrPrimed is returned by the first Sample call of a monitor: the call
// establishes the baseline and produces no measurement. It used to return
// 0, nil — indistinguishable from a genuine 0 W sample, which poisoned any
// consumer averaging or thresholding the series.
var ErrPrimed = errors.New("attack: monitor primed; no sample yet")

// Fault-tolerance parameters shared by the monitors. The observation
// surface on a real cloud is flaky: reads hit transient EIO/EAGAIN, race
// writers (torn content), and the counters themselves reset across power
// events. Retries are bounded — the monitor runs inside a per-second
// sampling loop and must not stall it.
const (
	// sampleRetries bounds read attempts per sample; transient errors and
	// torn-read parse failures are retried, everything else returns
	// immediately.
	sampleRetries = 3
	// stableReadAttempts bounds the double-read agreement protocol for
	// counter reads: it needs two successful reads of the same value, with
	// transient errors, unparseable renders, and disagreeing values all
	// consuming attempts.
	stableReadAttempts = 5
	// glitchWindow is the trailing window whose median replaces a rejected
	// outlier sample.
	glitchWindow = 5
	// glitchMinHistory is how much history the rejection filter needs
	// before it trusts its notion of a plausible floor.
	glitchMinHistory = 8
	// wrapFactor bounds how far above the observed maximum a
	// wrap-classified sample may land before it is rejected as a disguised
	// counter reset (see implausibleWrap).
	wrapFactor = 4.0
)

// retryable reports whether a read error may succeed on immediate retry.
func retryable(err error) bool { return errors.Is(err, pseudofs.ErrTransient) }

// readUint reads path through p until two successful reads agree on the
// parsed value — double-read agreement. A flaky read can fail loudly
// (transient EIO/EAGAIN, retried) or lie silently: a torn render truncates
// the decimal digits and a stale render replays an old snapshot, and both
// still parse cleanly. A silently-wrong energy value is poison — one torn
// counter read becomes a phantom multi-kilowatt delta that inflates the
// synergistic trigger's observed maximum forever. Two independent reads
// agreeing on the same lie is vanishingly unlikely, while on a clean
// substrate the confirmation read is side-effect-free and always matches,
// so the protocol is a behavioral no-op there.
func readUint(p Prober, path string) (uint64, error) {
	return readUintScratch(p, nil, path)
}

// readUintScratch is readUint with an optional reusable scratch buffer.
// When p implements AppendProber and scratch is non-nil, each attempt
// renders into *scratch and parses the bytes in place — zero allocations
// per sample in steady state. The double-read agreement protocol is
// identical on both paths.
func readUintScratch(p Prober, scratch *[]byte, path string) (uint64, error) {
	ap, fast := p.(AppendProber)
	fast = fast && scratch != nil
	var seen [stableReadAttempts]uint64
	nseen := 0
	var lastErr error
	for attempt := 0; attempt < stableReadAttempts; attempt++ {
		var v uint64
		var perr error
		if fast {
			b, err := ap.AppendFile((*scratch)[:0], path)
			if b != nil {
				*scratch = b[:0] // keep any growth for the next attempt
			}
			if err != nil {
				if !retryable(err) {
					return 0, err
				}
				lastErr = err
				continue
			}
			v, perr = parseUintBytes(b)
		} else {
			raw, err := p.ReadFile(path)
			if err != nil {
				if !retryable(err) {
					return 0, err
				}
				lastErr = err
				continue
			}
			v, perr = strconv.ParseUint(strings.TrimSpace(raw), 10, 64)
		}
		if perr != nil {
			lastErr = perr // torn render: retry
			continue
		}
		for _, s := range seen[:nseen] {
			if s == v {
				return v, nil
			}
		}
		seen[nseen] = v
		nseen++
	}
	if lastErr == nil {
		lastErr = errors.New("reads would not settle on one value")
	}
	return 0, fmt.Errorf("attack: %s unreadable after %d attempts: %w", path, stableReadAttempts, lastErr)
}

// parseUintBytes parses a decimal uint64 from b, ignoring surrounding
// ASCII whitespace — strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
// without the string conversion. Like ParseUint it rejects empty input,
// non-digit bytes, and values overflowing uint64 (all of which the caller
// treats as a torn render and retries).
func parseUintBytes(b []byte) (uint64, error) {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\n' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for n := len(b); n > 0 && (b[n-1] == ' ' || b[n-1] == '\n' || b[n-1] == '\t' || b[n-1] == '\r'); n = len(b) {
		b = b[:n-1]
	}
	if len(b) == 0 {
		return 0, errors.New("attack: empty counter render")
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("attack: non-digit byte %q in counter render", c)
		}
		d := uint64(c - '0')
		if v > (1<<64-1-d)/10 {
			return 0, errors.New("attack: counter render overflows uint64")
		}
		v = v*10 + d
	}
	return v, nil
}

// PowerMonitor estimates whole-package host power from inside a container
// by differencing the leaked RAPL energy counter — Case Study II
// operationalized. Monitoring costs essentially no CPU, which is the
// attack-economics point of Section IV-B.
type PowerMonitor struct {
	probe    Prober
	maxRange uint64
	prev     uint64
	primed   bool
	history  []float64
	capacity int
	scratch  []byte // reusable render buffer for the AppendProber fast path

	// Sliding-window minimum over the >1 W samples of history, kept as a
	// monotonic min-queue of (absolute sample index, value) pairs with
	// values increasing front to back. rejectGlitch's idle-floor check
	// needs the lowest credible sample of the current window on every
	// clean sample; the queue answers in O(1) amortized where a rescan of
	// the 600-sample window made the sampling loop quadratic.
	floorAbs []int
	floorVal []float64
	histBase int // absolute index of history[0]
}

// NewPowerMonitor initializes the monitor, reading the counter wrap range.
// It fails if the RAPL channel is masked or absent — i.e. the defense (or
// provider hardening) is effective. Transient read failures are retried.
func NewPowerMonitor(p Prober) (*PowerMonitor, error) {
	maxRange, err := readUint(p, maxRangePath)
	if err != nil {
		return nil, fmt.Errorf("attack: RAPL channel unavailable: %w", err)
	}
	return &PowerMonitor{probe: p, maxRange: maxRange, capacity: 600}, nil
}

// Sample reads the energy counter and returns the average package power in
// Watts since the previous sample, dt seconds ago. The first call primes
// the counter and returns (0, ErrPrimed).
//
// The read path is hardened against a flaky observation surface: the
// counter is read to double-read agreement (transient errors, torn and
// stale renders all fail to produce two matching reads and are retried,
// bounded); counter resets and small regressions — which the naive wrap
// arithmetic would turn into a phantom near-maxRange burn or a fake 0 W
// lull — are detected via power.CounterDeltaKind and replaced by the
// trailing-window median; and physically impossible low samples (below
// half the observed floor) are rejected the same way once enough history
// exists.
func (m *PowerMonitor) Sample(dt float64) (float64, error) {
	cur, err := readUintScratch(m.probe, &m.scratch, energyPath)
	if err != nil {
		return 0, fmt.Errorf("attack: read energy_uj: %w", err)
	}
	if !m.primed {
		m.prev = cur
		m.primed = true
		return 0, ErrPrimed
	}
	delta, kind := power.CounterDeltaKind(m.prev, cur, m.maxRange)
	m.prev = cur
	watts := float64(delta) / 1e6 / dt
	glitch := kind == power.DeltaReset || kind == power.DeltaRegression
	if kind == power.DeltaWrapped && m.implausibleWrap(watts) {
		glitch = true
	}
	watts = m.rejectGlitch(watts, glitch)
	m.pushHistory(watts)
	return watts, nil
}

// pushHistory appends a (post-filter) sample, trims the window to
// capacity, and maintains the monotonic floor queue: a new >1 W sample
// evicts every queued value it undercuts (they can never be the window
// minimum again while it is alive).
func (m *PowerMonitor) pushHistory(watts float64) {
	if watts > 1 {
		abs := m.histBase + len(m.history)
		for n := len(m.floorVal); n > 0 && m.floorVal[n-1] >= watts; n = len(m.floorVal) {
			m.floorVal = m.floorVal[:n-1]
			m.floorAbs = m.floorAbs[:n-1]
		}
		m.floorVal = append(m.floorVal, watts)
		m.floorAbs = append(m.floorAbs, abs)
	}
	m.history = append(m.history, watts)
	if len(m.history) > m.capacity {
		m.histBase += len(m.history) - m.capacity
		m.history = m.history[len(m.history)-m.capacity:]
	}
}

// floor returns the lowest >1 W sample in the current history window, or 0
// when no such sample exists — exactly the value the old full-window scan
// computed. Queue entries that slid out of the window are dropped lazily.
func (m *PowerMonitor) floor() float64 {
	for len(m.floorAbs) > 0 && m.floorAbs[0] < m.histBase {
		m.floorAbs = m.floorAbs[1:]
		m.floorVal = m.floorVal[1:]
	}
	if len(m.floorVal) == 0 {
		return 0
	}
	return m.floorVal[0]
}

// rejectGlitch implements median-of-window outlier rejection. A sample is
// rejected when its delta arithmetic already flagged it (reset /
// regression), or when it is physically implausible: below 1 W, or below
// half the lowest credible (> 1 W) power ever observed — a host's idle
// floor never halves between two seconds. Rejected samples are replaced by
// the median of the trailing window so the history keeps its cadence
// without absorbing the outlier. With fewer than glitchMinHistory samples
// the filter only acts on arithmetic-flagged glitches (and only once a
// window exists); a clean substrate never triggers it at all.
func (m *PowerMonitor) rejectGlitch(watts float64, glitch bool) float64 {
	if len(m.history) < glitchWindow {
		return watts
	}
	if !glitch {
		if len(m.history) < glitchMinHistory {
			return watts
		}
		floor := m.floor()
		if watts >= 1 && (floor == 0 || watts >= 0.5*floor) {
			return watts
		}
	}
	return stats.Percentile(m.history[len(m.history)-glitchWindow:], 50)
}

// implausibleWrap rejects the one silent lie the delta arithmetic cannot
// see: a counter reset caught while the counter sat near its ceiling looks
// exactly like a wrap, with a delta of maxRange−prev — kilowatts of phantom
// burn that would inflate the near-max trigger's reference forever. A
// genuine wrap's delta is just ordinary consumption, indistinguishable from
// its neighbors, so any wrap-classified sample more than wrapFactor× the
// highest power ever observed is treated as a glitch. Clean substrates
// never trigger this: their wraps land inside the observed envelope.
func (m *PowerMonitor) implausibleWrap(watts float64) bool {
	if len(m.history) < glitchWindow {
		return false
	}
	var max float64
	for _, v := range m.history {
		if v > max {
			max = v
		}
	}
	return watts > wrapFactor*max
}

// History returns the observed power series (oldest first).
func (m *PowerMonitor) History() []float64 {
	return append([]float64(nil), m.history...)
}

// IsCrest reports whether the most recent sample sits above the given
// percentile of the observation history; it needs at least minSamples of
// history before it will ever fire.
func (m *PowerMonitor) IsCrest(percentile float64, minSamples int) bool {
	if len(m.history) < minSamples {
		return false
	}
	cur := m.history[len(m.history)-1]
	return cur >= stats.Percentile(m.history[:len(m.history)-1], percentile)
}

// IsNearMax reports whether the most recent sample is within frac of the
// highest power ever observed — a stricter trigger that waits for crests
// comparable to the best the attacker has seen, rather than local noise
// peaks.
func (m *PowerMonitor) IsNearMax(frac float64, minSamples int) bool {
	if len(m.history) < minSamples {
		return false
	}
	cur := m.history[len(m.history)-1]
	var max float64
	for _, v := range m.history[:len(m.history)-1] {
		if v > max {
			max = v
		}
	}
	return cur >= max*frac
}
