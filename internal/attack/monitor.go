// Package attack implements Section IV: power attacks launched from inside
// tenant containers of a multi-tenancy container cloud.
//
// Three strategies are provided over the same attack workload:
//
//   - Continuous: run the power virus all the time (maximal effect, maximal
//     cost, trivially detectable);
//   - Periodic: burst blindly every fixed interval (the paper's baseline in
//     Fig. 3);
//   - Synergistic: monitor host power through the leaked RAPL channel at
//     near-zero cost and superimpose bursts exactly on benign power crests.
//
// The package also implements the attack orchestration of Section IV-C:
// aggregating controlled containers onto one host by repeated launch /
// co-residence-check / terminate, and onto one rack via boot-time
// proximity.
package attack

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/power"
	"repro/internal/stats"
)

// Prober reads pseudo-files from inside a container (the attacker's only
// interface to the host).
type Prober interface {
	ReadFile(path string) (string, error)
}

const (
	energyPath   = "/sys/class/powercap/intel-rapl:0/energy_uj"
	maxRangePath = "/sys/class/powercap/intel-rapl:0/max_energy_range_uj"
)

// PowerMonitor estimates whole-package host power from inside a container
// by differencing the leaked RAPL energy counter — Case Study II
// operationalized. Monitoring costs essentially no CPU, which is the
// attack-economics point of Section IV-B.
type PowerMonitor struct {
	probe    Prober
	maxRange uint64
	prev     uint64
	primed   bool
	history  []float64
	capacity int
}

// NewPowerMonitor initializes the monitor, reading the counter wrap range.
// It fails if the RAPL channel is masked or absent — i.e. the defense (or
// provider hardening) is effective.
func NewPowerMonitor(p Prober) (*PowerMonitor, error) {
	raw, err := p.ReadFile(maxRangePath)
	if err != nil {
		return nil, fmt.Errorf("attack: RAPL channel unavailable: %w", err)
	}
	maxRange, err := strconv.ParseUint(strings.TrimSpace(raw), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("attack: parse max_energy_range_uj: %w", err)
	}
	return &PowerMonitor{probe: p, maxRange: maxRange, capacity: 600}, nil
}

// Sample reads the energy counter and returns the average package power in
// Watts since the previous sample, dt seconds ago. The first call primes
// the counter and returns 0.
func (m *PowerMonitor) Sample(dt float64) (float64, error) {
	raw, err := m.probe.ReadFile(energyPath)
	if err != nil {
		return 0, fmt.Errorf("attack: read energy_uj: %w", err)
	}
	cur, err := strconv.ParseUint(strings.TrimSpace(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("attack: parse energy_uj: %w", err)
	}
	if !m.primed {
		m.prev = cur
		m.primed = true
		return 0, nil
	}
	delta := power.CounterDelta(m.prev, cur, m.maxRange)
	m.prev = cur
	watts := float64(delta) / 1e6 / dt
	m.history = append(m.history, watts)
	if len(m.history) > m.capacity {
		m.history = m.history[len(m.history)-m.capacity:]
	}
	return watts, nil
}

// History returns the observed power series (oldest first).
func (m *PowerMonitor) History() []float64 {
	return append([]float64(nil), m.history...)
}

// IsCrest reports whether the most recent sample sits above the given
// percentile of the observation history; it needs at least minSamples of
// history before it will ever fire.
func (m *PowerMonitor) IsCrest(percentile float64, minSamples int) bool {
	if len(m.history) < minSamples {
		return false
	}
	cur := m.history[len(m.history)-1]
	return cur >= stats.Percentile(m.history[:len(m.history)-1], percentile)
}

// IsNearMax reports whether the most recent sample is within frac of the
// highest power ever observed — a stricter trigger that waits for crests
// comparable to the best the attacker has seen, rather than local noise
// peaks.
func (m *PowerMonitor) IsNearMax(frac float64, minSamples int) bool {
	if len(m.history) < minSamples {
		return false
	}
	cur := m.history[len(m.history)-1]
	var max float64
	for _, v := range m.history[:len(m.history)-1] {
		if v > max {
			max = v
		}
	}
	return cur >= max*frac
}
