package attack

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/workload"
)

func TestFreqMonitorTracksCoTenantLoad(t *testing.T) {
	dc := newDC(11, 1)
	srv := dc.Racks[0].Servers[0]
	c := srv.Runtime.Create("spy")
	cores := srv.Kernel.Options().Cores
	m, err := NewFreqMonitor(c, cores)
	if err != nil {
		t.Fatal(err)
	}
	dc.Clock.Advance(1)
	var idle float64
	for i := 0; i < 20; i++ {
		dc.Clock.Advance(1)
		if idle, err = m.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	victim := srv.Runtime.Create("victim")
	victim.Run(workload.Prime, 8)
	var busy float64
	for i := 0; i < 20; i++ {
		dc.Clock.Advance(1)
		if busy, err = m.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	if busy <= idle {
		t.Fatalf("governor must ramp under co-tenant load: idle %.0f kHz busy %.0f kHz", idle, busy)
	}
	if len(m.History()) != 40 {
		t.Fatalf("history length = %d, want 40", len(m.History()))
	}
	// The idle→busy step function is the victim's load signature: 20 idle
	// ticks then 20 busy ones must correlate with the frequency trace.
	sig := make([]float64, 40)
	for i := 20; i < 40; i++ {
		sig[i] = 1
	}
	if r := m.Correlate(sig); r < 0.5 {
		t.Fatalf("idle→busy signature must show in the trace: r=%.3f", r)
	}
}

func TestFreqMonitorCorrelatesVictimSignature(t *testing.T) {
	dc := newDC(12, 1)
	srv := dc.Racks[0].Servers[0]
	spy := srv.Runtime.Create("spy")
	m, err := NewFreqMonitor(spy, srv.Kernel.Options().Cores)
	if err != nil {
		t.Fatal(err)
	}
	victim := srv.Runtime.Create("victim")
	// Square-wave victim: 5 ticks busy, 5 idle, twice over.
	var sig []float64
	for phase := 0; phase < 4; phase++ {
		busy := phase%2 == 0
		if busy {
			victim.Run(workload.Prime, 8)
		} else {
			victim.StopAll()
		}
		for i := 0; i < 5; i++ {
			dc.Clock.Advance(1)
			if _, err := m.Sample(); err != nil {
				t.Fatal(err)
			}
			if busy {
				sig = append(sig, 1)
			} else {
				sig = append(sig, 0)
			}
		}
	}
	if r := m.Correlate(sig); r < 0.4 {
		t.Fatalf("square-wave victim signature must show in the frequency trace: r=%.3f", r)
	}
	if !m.MatchesLoad(sig, 0.4) {
		t.Fatal("MatchesLoad must accept at the measured correlation")
	}
	// An anti-correlated signature must not match.
	anti := make([]float64, len(sig))
	for i, v := range sig {
		anti[i] = 1 - v
	}
	if m.MatchesLoad(anti, 0.4) {
		t.Fatal("inverted signature must not match")
	}
}

func TestFreqMonitorCorrelateNeedsHistory(t *testing.T) {
	dc := newDC(13, 1)
	c := dc.Racks[0].Servers[0].Runtime.Create("spy")
	m, err := NewFreqMonitor(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Correlate([]float64{1, 0, 1}); r != 0 {
		t.Fatalf("correlation without history = %g, want 0", r)
	}
	if r := m.Correlate([]float64{1}); r != 0 {
		t.Fatalf("single-point signature = %g, want 0", r)
	}
}

func TestFreqMonitorFailsWhenChannelMasked(t *testing.T) {
	// CC4 denies /sys/devices/** — the frequency channel dies with the rest
	// of the sysfs surface.
	p := cloud.CC4()
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 14, Provider: &p})
	c := dc.Racks[0].Servers[0].Runtime.Create("spy", p.ExtraRules...)
	if _, err := NewFreqMonitor(c, 4); err == nil {
		t.Fatal("cpufreq is denied on CC4; constructor must fail")
	} else if !strings.Contains(err.Error(), "frequency channel unavailable") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestFreqMonitorSurvivesSandboxedRuntimes(t *testing.T) {
	// The matrix narrative: gVisor and Kata proxy procfs and kill the
	// classic channels, but cpufreq passes through — the frequency monitor
	// is the one attack constructor that still works inside the sandbox.
	for _, mk := range []func() cloud.ProviderProfile{cloud.GVisorTarget, cloud.KataTarget} {
		p := mk()
		dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 15, Provider: &p})
		srv := dc.Racks[0].Servers[0]
		c := srv.Runtime.Create("spy")
		m, err := NewFreqMonitor(c, srv.Kernel.Options().Cores)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		dc.Clock.Advance(1)
		if _, err := m.Sample(); err != nil {
			t.Fatalf("%s: sample: %v", p.Name, err)
		}
	}
}

func TestFreqMonitorAbsorbsChaos(t *testing.T) {
	// Torn/stale/EIO faults on the cpufreq files must be absorbed by the
	// double-read agreement protocol plus the envelope filter: every
	// accepted sample stays within [cpuinfo_min, cpuinfo_max].
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 16,
		Chaos: chaos.Spec{Rate: 0.05, Seed: 3}})
	srv := dc.Racks[0].Servers[0]
	c := srv.Runtime.Create("spy")
	m, err := NewFreqMonitor(c, srv.Kernel.Options().Cores)
	if err != nil {
		t.Fatal(err)
	}
	victim := srv.Runtime.Create("victim")
	victim.Run(workload.Prime, 8)
	minF, maxF := float64(m.minKHz), float64(m.maxKHz)
	got := 0
	for i := 0; i < 80; i++ {
		dc.Clock.Advance(1)
		v, err := m.Sample()
		if err != nil {
			continue // a burst can exhaust the retry budget; determinism keeps this rare
		}
		got++
		if v < minF || v > maxF {
			t.Fatalf("sample %d = %.0f kHz escaped the envelope [%.0f, %.0f]", i, v, minF, maxF)
		}
	}
	if got < 40 {
		t.Fatalf("chaos starved the monitor: only %d/80 samples accepted", got)
	}
}

// stubFreqProber serves fixed cpufreq contents with a scripted override for
// one path.
type stubFreqProber struct {
	values map[string]string
}

func (p *stubFreqProber) ReadFile(path string) (string, error) {
	if v, ok := p.values[path]; ok {
		return v, nil
	}
	return "", fmt.Errorf("stub: no %s", path)
}

func TestFreqMonitorRejectsOutOfEnvelopeValues(t *testing.T) {
	p := &stubFreqProber{values: map[string]string{
		freqMinPath:                 "800000\n",
		freqMaxPath:                 "3400000\n",
		fmt.Sprintf(freqPathFmt, 0): "2000000\n",
	}}
	m, err := NewFreqMonitor(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := m.Sample(); err != nil || v != 2000000 {
		t.Fatalf("clean sample = %g err=%v", v, err)
	}
	// A stale render replaying pre-governor state reads 0 — physically
	// impossible, so the monitor substitutes the last accepted value.
	p.values[fmt.Sprintf(freqPathFmt, 0)] = "0\n"
	if v, err := m.Sample(); err != nil || v != 2000000 {
		t.Fatalf("stale sample = %g err=%v, want last accepted 2000000", v, err)
	}
	// Before any history, the substitution floor is cpuinfo_min_freq.
	m2, err := NewFreqMonitor(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := m2.Sample(); err != nil || v != 800000 {
		t.Fatalf("primed stale sample = %g err=%v, want envelope floor 800000", v, err)
	}
}
