package attack

import (
	"fmt"

	"repro/internal/stats"
)

// The frequency channel — Dipta-style DVFS fingerprinting. Under the
// schedutil governor every core's P-state follows whatever load happens to
// run there, so /sys/.../cpufreq/scaling_cur_freq is a host-global activity
// sensor: a tenant sampling it sees its neighbours' bursts as frequency
// crests. The channel matters because sandboxed runtimes (gVisor, Kata)
// proxy procfs and kill every classic channel while typically passing
// cpufreq through — it is the one channel that survives the sandbox column
// of the runtime matrix.
const (
	freqPathFmt = "/sys/devices/system/cpu/cpu%d/cpufreq/scaling_cur_freq"
	freqMinPath = "/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_min_freq"
	freqMaxPath = "/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq"
)

// FreqMonitor observes host load from inside a container by sampling the
// per-core DVFS frequencies. Like PowerMonitor it is hardened against a
// flaky observation surface: every counter read goes through double-read
// agreement, and values outside the advertised hardware envelope
// (cpuinfo_min_freq..cpuinfo_max_freq) — the signature of a stale render
// replaying pre-governor state — are replaced by the core's last accepted
// value.
type FreqMonitor struct {
	probe   Prober
	paths   []string // per-core scaling_cur_freq, precomputed
	minKHz  uint64
	maxKHz  uint64
	last    []float64 // last accepted per-core sample, for glitch substitution
	history []float64 // mean-frequency trace, oldest first
	cap     int
	scratch []byte
}

// NewFreqMonitor initializes the monitor, reading the advertised frequency
// envelope. It fails if the cpufreq channel is masked or absent — on the
// hardened clouds that deny /sys/devices the frequency channel dies with
// the rest; in the sandboxes it is the only constructor that succeeds.
func NewFreqMonitor(p Prober, cores int) (*FreqMonitor, error) {
	if cores < 1 {
		cores = 1
	}
	minKHz, err := readUint(p, freqMinPath)
	if err != nil {
		return nil, fmt.Errorf("attack: frequency channel unavailable: %w", err)
	}
	maxKHz, err := readUint(p, freqMaxPath)
	if err != nil {
		return nil, fmt.Errorf("attack: frequency channel unavailable: %w", err)
	}
	paths := make([]string, cores)
	for i := range paths {
		paths[i] = fmt.Sprintf(freqPathFmt, i)
	}
	return &FreqMonitor{
		probe:  p,
		paths:  paths,
		minKHz: minKHz,
		maxKHz: maxKHz,
		last:   make([]float64, cores),
		cap:    600,
	}, nil
}

// Sample reads every core's scaling_cur_freq to double-read agreement and
// returns their mean in kHz, appending it to the trace history. A value
// outside [cpuinfo_min_freq, cpuinfo_max_freq] is physically impossible —
// the governor clamps to the envelope — so it is rejected and replaced by
// the core's previous accepted sample (the envelope floor before any
// history exists).
func (m *FreqMonitor) Sample() (float64, error) {
	var sum float64
	for c, path := range m.paths {
		v, err := readUintScratch(m.probe, &m.scratch, path)
		if err != nil {
			return 0, fmt.Errorf("attack: read cpufreq: %w", err)
		}
		f := float64(v)
		if v < m.minKHz || v > m.maxKHz {
			if m.last[c] > 0 {
				f = m.last[c]
			} else {
				f = float64(m.minKHz)
			}
		}
		m.last[c] = f
		sum += f
	}
	mean := sum / float64(len(m.paths))
	m.history = append(m.history, mean)
	if len(m.history) > m.cap {
		m.history = m.history[len(m.history)-m.cap:]
	}
	return mean, nil
}

// History returns the observed mean-frequency trace (oldest first).
func (m *FreqMonitor) History() []float64 {
	return append([]float64(nil), m.history...)
}

// Correlate scores how strongly the victim's load signature shows in the
// trailing window of the frequency trace — the Pearson correlation between
// the signature and the last len(signature) samples. Returns 0 until
// enough history exists.
func (m *FreqMonitor) Correlate(signature []float64) float64 {
	n := len(signature)
	if n < 2 || len(m.history) < n {
		return 0
	}
	return stats.Pearson(m.history[len(m.history)-n:], signature)
}

// MatchesLoad reports whether a known victim load signature is visible in
// the frequency trace at the given correlation threshold — the
// fingerprinting verdict: the victim (or a workload shaped like it) is
// running on this host.
func (m *FreqMonitor) MatchesLoad(signature []float64, threshold float64) bool {
	return m.Correlate(signature) >= threshold
}
