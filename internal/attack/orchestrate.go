package attack

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/coresidence"
)

// Placement records where an orchestrated container ended up (the attacker
// only ever learns the co-residence relation, never the server name — the
// Server pointer is carried for the harness's bookkeeping).
type Placement struct {
	Server    *cloud.Server
	Container *container.Container
}

// AggregationResult reports an orchestration campaign.
type AggregationResult struct {
	// Kept are the containers verified co-resident with the first one.
	Kept []Placement
	// Launched counts every instance created, kept or discarded —
	// "repeatedly create container instances and terminate instances that
	// are not on the same physical server" (Section IV-C).
	Launched int
}

// AggregateCoResident implements the Fig. 4 setup: launch instances until n
// of them sit on the same physical server, verifying each candidate against
// the first kept instance with the timer_list signature check and
// terminating misses.
func AggregateCoResident(dc *cloud.Datacenter, tenant string, n int, cores float64, maxLaunches int) (AggregationResult, error) {
	if n < 1 {
		return AggregationResult{}, fmt.Errorf("attack: need n ≥ 1, got %d", n)
	}
	var res AggregationResult
	for res.Launched < maxLaunches && len(res.Kept) < n {
		srv, c, err := dc.Launch(tenant, "agg", cores)
		if err != nil {
			return res, fmt.Errorf("attack: launch: %w", err)
		}
		res.Launched++
		if len(res.Kept) == 0 {
			res.Kept = append(res.Kept, Placement{Server: srv, Container: c})
			continue
		}
		sig := fmt.Sprintf("corez-%s-%d", tenant, res.Launched)
		v, err := coresidence.ByTimerSignature(c, res.Kept[0].Container, sig)
		if err != nil {
			return res, fmt.Errorf("attack: co-residence check: %w", err)
		}
		if v.CoResident {
			res.Kept = append(res.Kept, Placement{Server: srv, Container: c})
			continue
		}
		if err := dc.Terminate(srv, c); err != nil {
			return res, fmt.Errorf("attack: terminate miss: %w", err)
		}
	}
	if len(res.Kept) < n {
		return res, fmt.Errorf("attack: only aggregated %d/%d containers in %d launches",
			len(res.Kept), n, res.Launched)
	}
	return res, nil
}

// SpreadAcrossRack launches instances until one container sits on each of
// up to n *distinct* hosts that share a rack with the reference instance,
// using boot-time proximity (Section IV-C's uptime/btime heuristic) to stay
// within one breaker domain while maximizing per-host coverage for the
// synergistic attack.
func SpreadAcrossRack(dc *cloud.Datacenter, tenant string, n int, cores float64, bootWindow int64, maxLaunches int) (AggregationResult, error) {
	if n < 1 {
		return AggregationResult{}, fmt.Errorf("attack: need n ≥ 1, got %d", n)
	}
	var res AggregationResult
	bootIDs := map[string]bool{}
	for res.Launched < maxLaunches && len(res.Kept) < n {
		srv, c, err := dc.Launch(tenant, "spread", cores)
		if err != nil {
			return res, fmt.Errorf("attack: launch: %w", err)
		}
		res.Launched++
		// Retrying read: on a flaky observation surface a transient fault or
		// torn render here would abort the whole campaign over one probe.
		id, err := coresidence.ReadBootID(c)
		if err != nil {
			return res, fmt.Errorf("attack: boot_id probe: %w", err)
		}
		keep := false
		if len(res.Kept) == 0 {
			keep = true
		} else if !bootIDs[id] {
			// New host — but is it on the same rack (breaker)?
			v, err := coresidence.RackProximity(c, res.Kept[0].Container, bootWindow)
			if err != nil {
				return res, fmt.Errorf("attack: rack proximity: %w", err)
			}
			keep = v.CoResident
		}
		if keep {
			bootIDs[id] = true
			res.Kept = append(res.Kept, Placement{Server: srv, Container: c})
			continue
		}
		if err := dc.Terminate(srv, c); err != nil {
			return res, fmt.Errorf("attack: terminate miss: %w", err)
		}
	}
	if len(res.Kept) < n {
		return res, fmt.Errorf("attack: only spread to %d/%d hosts in %d launches",
			len(res.Kept), n, res.Launched)
	}
	return res, nil
}

// Containers extracts the kept containers.
func (r AggregationResult) Containers() []*container.Container {
	out := make([]*container.Container, len(r.Kept))
	for i, p := range r.Kept {
		out[i] = p.Container
	}
	return out
}
