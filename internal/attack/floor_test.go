package attack

import (
	"math/rand"
	"testing"
)

// TestFloorQueueMatchesFullScan drives pushHistory with an adversarial
// sample stream (idle floors, bursts, sub-1W glitch replacements, long
// descents and ascents) and checks after every push that the monotonic
// floor queue answers exactly what the old full-window scan computed:
// the minimum >1 W value of the trimmed history, 0 when none exists.
func TestFloorQueueMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := &PowerMonitor{capacity: 60} // small capacity → lots of eviction
	for i := 0; i < 5000; i++ {
		var w float64
		switch rng.Intn(5) {
		case 0:
			w = rng.Float64() // sub-1W: excluded from the floor
		case 1:
			w = 80 + rng.Float64()*200 // burst
		case 2:
			w = 40 - float64(i%700)*0.05 // slow descent through the floor
		default:
			w = 35 + rng.Float64()*10 // idle band
		}
		m.pushHistory(w)

		want := 0.0
		for _, v := range m.history {
			if v > 1 && (want == 0 || v < want) {
				want = v
			}
		}
		if got := m.floor(); got != want {
			t.Fatalf("push %d: floor() = %v, full scan = %v (len=%d base=%d)",
				i, got, want, len(m.history), m.histBase)
		}
	}
}
