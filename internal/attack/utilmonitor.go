package attack

import (
	"fmt"
	"strconv"
	"strings"
)

// Section VII-A: "if power data is not directly available, advanced
// attackers will try to approximate the power status based on the resource
// utilization information, such as the CPU and memory utilization, which is
// still available in the identified information leakages."
//
// UtilizationMonitor is that fallback: it estimates host activity from the
// leaked /proc/stat CPU accounting, producing a power-correlated signal on
// fleets where RAPL is masked or absent (CC4). The crest logic is shared
// with the RAPL monitor through the HostSignal interface.

// HostSignal is any per-host, per-second scalar the synergistic trigger can
// watch: true power from RAPL, or a utilization proxy.
type HostSignal interface {
	// Sample returns the signal averaged over the dt seconds since the
	// previous call; the first call primes internal state and returns 0.
	Sample(dt float64) (float64, error)
}

// UtilizationMonitor derives whole-host CPU utilization (0..1, scaled
// ×100 for readability) from consecutive /proc/stat snapshots.
type UtilizationMonitor struct {
	probe     Prober
	prevBusy  float64
	prevTotal float64
	primed    bool
}

// NewUtilizationMonitor validates that /proc/stat is readable and returns
// the monitor.
func NewUtilizationMonitor(p Prober) (*UtilizationMonitor, error) {
	content, err := p.ReadFile("/proc/stat")
	if err != nil {
		return nil, fmt.Errorf("attack: /proc/stat unavailable: %w", err)
	}
	if _, _, err := parseCPULine(content); err != nil {
		return nil, err
	}
	return &UtilizationMonitor{probe: p}, nil
}

// Sample implements HostSignal: percent CPU utilization since last call.
func (m *UtilizationMonitor) Sample(dt float64) (float64, error) {
	content, err := m.probe.ReadFile("/proc/stat")
	if err != nil {
		return 0, fmt.Errorf("attack: read /proc/stat: %w", err)
	}
	busy, total, err := parseCPULine(content)
	if err != nil {
		return 0, err
	}
	if !m.primed {
		m.prevBusy, m.prevTotal = busy, total
		m.primed = true
		return 0, nil
	}
	dBusy := busy - m.prevBusy
	dTotal := total - m.prevTotal
	m.prevBusy, m.prevTotal = busy, total
	if dTotal <= 0 {
		return 0, nil
	}
	return dBusy / dTotal * 100, nil
}

// parseCPULine extracts (busy, total) USER_HZ ticks from the aggregate
// "cpu " line of /proc/stat.
func parseCPULine(content string) (busy, total float64, err error) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)[1:]
		if len(fields) < 7 {
			return 0, 0, fmt.Errorf("attack: malformed cpu line %q", line)
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("attack: parse cpu field %q: %w", f, err)
			}
			vals[i] = v
		}
		// user nice system idle iowait irq softirq …
		for i, v := range vals {
			total += v
			if i != 3 && i != 4 { // idle, iowait
				busy += v
			}
		}
		return busy, total, nil
	}
	return 0, 0, fmt.Errorf("attack: no aggregate cpu line in /proc/stat")
}
