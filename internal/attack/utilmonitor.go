package attack

import (
	"fmt"
	"strconv"
	"strings"
)

// Section VII-A: "if power data is not directly available, advanced
// attackers will try to approximate the power status based on the resource
// utilization information, such as the CPU and memory utilization, which is
// still available in the identified information leakages."
//
// UtilizationMonitor is that fallback: it estimates host activity from the
// leaked /proc/stat CPU accounting, producing a power-correlated signal on
// fleets where RAPL is masked or absent (CC4). The crest logic is shared
// with the RAPL monitor through the HostSignal interface.

// HostSignal is any per-host, per-second scalar the synergistic trigger can
// watch: true power from RAPL, or a utilization proxy.
type HostSignal interface {
	// Sample returns the signal averaged over the dt seconds since the
	// previous call; the first call primes internal state and returns
	// (0, ErrPrimed).
	Sample(dt float64) (float64, error)
}

// UtilizationMonitor derives whole-host CPU utilization (0..1, scaled
// ×100 for readability) from consecutive /proc/stat snapshots.
type UtilizationMonitor struct {
	probe     Prober
	prevBusy  float64
	prevTotal float64
	primed    bool
	lastUtil  float64
}

// NewUtilizationMonitor validates that /proc/stat is readable and returns
// the monitor.
func NewUtilizationMonitor(p Prober) (*UtilizationMonitor, error) {
	content, err := p.ReadFile("/proc/stat")
	if err != nil {
		return nil, fmt.Errorf("attack: /proc/stat unavailable: %w", err)
	}
	if _, _, err := parseCPULine(content); err != nil {
		return nil, err
	}
	return &UtilizationMonitor{probe: p}, nil
}

// Sample implements HostSignal: percent CPU utilization since last call.
// Transient read errors and torn renders are retried (bounded); a stale
// snapshot (no tick progress, or ticks running backwards after a stale
// read) holds the previous utilization instead of fabricating a 0% lull.
func (m *UtilizationMonitor) Sample(dt float64) (float64, error) {
	busy, total, err := m.readCPULine()
	if err != nil {
		return 0, err
	}
	if !m.primed {
		m.prevBusy, m.prevTotal = busy, total
		m.primed = true
		return 0, ErrPrimed
	}
	dBusy := busy - m.prevBusy
	dTotal := total - m.prevTotal
	if dTotal <= 0 {
		// Stale or regressed snapshot: no new accounting to difference.
		// Keep prev so the next fresh snapshot yields a sane delta.
		return m.lastUtil, nil
	}
	m.prevBusy, m.prevTotal = busy, total
	util := dBusy / dTotal * 100
	if util < 0 {
		util = 0
	} else if util > 100 {
		util = 100
	}
	m.lastUtil = util
	return util, nil
}

// readCPULine reads and parses /proc/stat with bounded retries on
// transient failures and torn (unparseable) renders.
func (m *UtilizationMonitor) readCPULine() (busy, total float64, err error) {
	var lastErr error
	for attempt := 0; attempt < sampleRetries; attempt++ {
		content, rerr := m.probe.ReadFile("/proc/stat")
		if rerr != nil {
			if !retryable(rerr) {
				return 0, 0, fmt.Errorf("attack: read /proc/stat: %w", rerr)
			}
			lastErr = rerr
			continue
		}
		b, tot, perr := parseCPULine(content)
		if perr != nil {
			lastErr = perr // torn render: retry
			continue
		}
		return b, tot, nil
	}
	return 0, 0, fmt.Errorf("attack: /proc/stat unreadable after %d attempts: %w", sampleRetries, lastErr)
}

// parseCPULine extracts (busy, total) USER_HZ ticks from the aggregate
// "cpu " line of /proc/stat.
func parseCPULine(content string) (busy, total float64, err error) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)[1:]
		if len(fields) < 7 {
			return 0, 0, fmt.Errorf("attack: malformed cpu line %q", line)
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("attack: parse cpu field %q: %w", f, err)
			}
			vals[i] = v
		}
		// user nice system idle iowait irq softirq …
		for i, v := range vals {
			total += v
			if i != 3 && i != 4 { // idle, iowait
				busy += v
			}
		}
		return busy, total, nil
	}
	return 0, 0, fmt.Errorf("attack: no aggregate cpu line in /proc/stat")
}
