// Package engine is the epoch-aware incremental detection engine: the same
// cross-validation sweep as internal/core, but with dirty tracking so
// repeated and fleet-wide scans only re-render what changed.
//
// The paper's one-shot tool re-reads every pseudo-file on every pass, which
// is fine once but is the hot path of leaksd's recurring scans. The engine
// follows the snapshot/generation-counter design of procfs-scraping
// monitors: every kernel mutation bumps per-subsystem generation counters
// (kernel.Epochs), every pseudo-file declares which subsystems its render
// reads (pseudofs.Dep), and the engine caches per-path findings keyed by
// the path's combined source epoch (pseudofs.PathEpoch). A path is
// re-validated only when its source epoch moved; everything else is served
// from cache, byte-identical to what a cold scan would produce.
//
// Two cache layers:
//
//   - Finding cache, keyed (container mount, path, epoch): the full
//     cross-validation verdict for one path in one container context.
//   - Host render cache, keyed (path, epoch) with once-per-epoch
//     semantics: during a fleet pass over N containers, the host-side
//     content of each path is rendered exactly once and shared across all
//     N validations instead of being re-read per (host, container) pair.
//
// Byte-identity guarantee: at any epoch, Validate returns exactly what
// core.CrossValidate would return on the same mounts at the same instant.
// This rests on three invariants: (1) pseudo-file renders are pure for a
// fixed view while the clock is paused, (2) dependency tags are
// conservative — a mutation may dirty more paths than it changed but never
// fewer, and (3) volatile paths (random/uuid) are classified by the
// container quorum before the host read, so their content is never cached.
//
// Chaos bypass: a fault injector (internal/chaos) consumes per-read
// randomness, so skipping reads would change every subsequent fault
// decision. When the FS carries an injector the engine disables itself and
// delegates to the uncached sweep — chaos runs pay full cost by design.
//
// Concurrency: the engine is safe for concurrent use, but the determinism
// contract is the same as core's — run passes while the simulation clock
// is paused. Within a pass, per-path work fans out over internal/parallel
// and results keep path order, so output is byte-identical at any worker
// count.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/pseudofs"
)

// Engine is an incremental cross-validation engine over one host mount.
// Create with New; validate container mounts of the same FS against it.
type Engine struct {
	host *pseudofs.Mount
	fs   *pseudofs.FS

	mu       sync.Mutex
	findings map[findingKey]findingEntry
	hostc    map[string]*hostEntry

	// Counters (atomic: a pass fans out over many goroutines).
	passes         atomic.Uint64
	bypassedPasses atomic.Uint64
	findingHits    atomic.Uint64
	findingMisses  atomic.Uint64
	hostHits       atomic.Uint64
	hostRenders    atomic.Uint64
}

type findingKey struct {
	cont *pseudofs.Mount
	path string
}

type findingEntry struct {
	epoch uint64
	f     core.Finding
}

// hostEntry renders host content for one path exactly once per epoch.
type hostEntry struct {
	epoch   uint64
	once    sync.Once
	content string
	err     error
}

// New creates an engine over the given host-context mount. The mount
// should be dedicated to the engine (mounts are cheap; see
// cloud.Server.HostMount).
func New(host *pseudofs.Mount) *Engine {
	return &Engine{
		host:     host,
		fs:       host.FS(),
		findings: make(map[findingKey]findingEntry),
		hostc:    make(map[string]*hostEntry),
	}
}

// Host returns the engine's host-context mount.
func (e *Engine) Host() *pseudofs.Mount { return e.host }

// Validate is the incremental core.CrossValidate: findings for every path
// visible in the container mount, in path order, serving unchanged paths
// from cache. Output is byte-identical to a cold core.CrossValidate on
// (Host(), cont) at the same instant.
func (e *Engine) Validate(cont *pseudofs.Mount) []core.Finding {
	return e.ValidateWorkers(cont, 1)
}

// ValidateWorkers is Validate fanned out over a bounded worker pool
// (workers <= 0 selects GOMAXPROCS). Results keep path order, so output is
// byte-identical at any worker count.
func (e *Engine) ValidateWorkers(cont *pseudofs.Mount, workers int) []core.Finding {
	e.checkFS(cont)
	if e.fs.Faulty() {
		// Chaos bypass: cached (skipped) reads would desynchronize the
		// injector's per-read fault streams. Delegate to the uncached
		// sweep and leave every cache untouched.
		e.bypassedPasses.Add(1)
		return core.CrossValidateWorkers(e.host, cont, workers)
	}
	e.passes.Add(1)
	paths := cont.Paths()
	if parallel.Workers(workers) == 1 || len(paths) < 2 {
		out := make([]core.Finding, 0, len(paths))
		for _, p := range paths {
			out = append(out, e.validatePath(cont, p))
		}
		return out
	}
	out, _ := parallel.Map(workers, paths, func(_ int, p string) (core.Finding, error) {
		return e.validatePath(cont, p), nil
	})
	return out
}

// FleetValidate validates many container mounts in one batched pass,
// fanning the (container, path) pairs out over one worker pool. The host
// render cache guarantees each host-side read is performed at most once
// per pass and shared across all containers, instead of once per
// (host, container) pair as the naive loop would. Results are returned per
// container, in input order, each in path order — byte-identical to
// calling core.CrossValidate per container.
func (e *Engine) FleetValidate(conts []*pseudofs.Mount, workers int) [][]core.Finding {
	for _, c := range conts {
		e.checkFS(c)
	}
	if len(conts) == 0 {
		return nil
	}
	if e.fs.Faulty() {
		// Chaos bypass, in the exact order the serial per-container loop
		// would read (injector streams are order-sensitive).
		e.bypassedPasses.Add(1)
		out := make([][]core.Finding, len(conts))
		for i, c := range conts {
			out[i] = core.CrossValidateWorkers(e.host, c, workers)
		}
		return out
	}
	e.passes.Add(1)
	type pair struct {
		ci   int
		path string
	}
	var pairs []pair
	counts := make([]int, len(conts))
	for ci, c := range conts {
		ps := c.Paths()
		counts[ci] = len(ps)
		for _, p := range ps {
			pairs = append(pairs, pair{ci, p})
		}
	}
	var flat []core.Finding
	if parallel.Workers(workers) == 1 || len(pairs) < 2 {
		flat = make([]core.Finding, 0, len(pairs))
		for _, pr := range pairs {
			flat = append(flat, e.validatePath(conts[pr.ci], pr.path))
		}
	} else {
		flat, _ = parallel.Map(workers, pairs, func(_ int, pr pair) (core.Finding, error) {
			return e.validatePath(conts[pr.ci], pr.path), nil
		})
	}
	out := make([][]core.Finding, len(conts))
	off := 0
	for ci, n := range counts {
		out[ci] = flat[off : off+n : off+n]
		off += n
	}
	return out
}

// validatePath returns the finding for one (container, path), from cache
// when the path's source epoch is unchanged.
func (e *Engine) validatePath(cont *pseudofs.Mount, path string) core.Finding {
	epoch := e.fs.PathEpoch(path)
	key := findingKey{cont, path}

	e.mu.Lock()
	if ent, ok := e.findings[key]; ok && ent.epoch == epoch {
		e.mu.Unlock()
		e.findingHits.Add(1)
		return ent.f
	}
	e.mu.Unlock()

	e.findingMisses.Add(1)
	f := core.ValidatePath(e.hostRead(path, epoch), cont, path)

	e.mu.Lock()
	e.findings[key] = findingEntry{epoch: epoch, f: f}
	e.mu.Unlock()
	return f
}

// hostRead returns a core.HostRead that serves the host content of path
// from the per-epoch render cache, rendering at most once per epoch even
// when many container validations of a fleet pass request it concurrently.
func (e *Engine) hostRead(path string, epoch uint64) core.HostRead {
	return func(p string) (string, error) {
		// ValidatePath only reads its own path; guard anyway.
		if p != path {
			return core.HostReader(e.host)(p)
		}
		e.mu.Lock()
		ent, ok := e.hostc[p]
		if !ok || ent.epoch != epoch {
			ent = &hostEntry{epoch: epoch}
			e.hostc[p] = ent
		}
		e.mu.Unlock()
		hit := true
		ent.once.Do(func() {
			hit = false
			e.hostRenders.Add(1)
			ent.content, ent.err = core.HostReader(e.host)(p)
		})
		if hit {
			e.hostHits.Add(1)
		}
		return ent.content, ent.err
	}
}

// checkFS panics when a container mount belongs to a different FS than the
// engine's host mount — always a wiring bug: epochs of one kernel say
// nothing about another's renders.
func (e *Engine) checkFS(cont *pseudofs.Mount) {
	if cont.FS() != e.fs {
		panic(fmt.Sprintf("engine: container mount FS %p does not match host FS %p", cont.FS(), e.fs))
	}
}

// Reset drops every cache and zeroes no counters (stats are cumulative for
// the engine's lifetime). The next pass re-renders everything — the same
// effect as the first pass of a fresh engine.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.findings = make(map[findingKey]findingEntry)
	e.hostc = make(map[string]*hostEntry)
}

// Forget drops the cached findings of one container mount (call when a
// container is terminated); the shared host render cache is kept.
func (e *Engine) Forget(cont *pseudofs.Mount) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k := range e.findings {
		if k.cont == cont {
			delete(e.findings, k)
		}
	}
}
