package engine

import "repro/internal/kernel"

// Stats is a point-in-time snapshot of the engine's cache effectiveness
// and the kernel's current epochs — what /v1/engine serves.
type Stats struct {
	// Passes counts incremental validation passes; BypassedPasses counts
	// passes that ran uncached because a fault injector was installed.
	Passes         uint64 `json:"passes"`
	BypassedPasses uint64 `json:"bypassed_passes"`

	// FindingHits/FindingMisses count per-path verdicts served from cache
	// vs re-validated.
	FindingHits   uint64 `json:"finding_hits"`
	FindingMisses uint64 `json:"finding_misses"`

	// HostHits counts host-side reads shared from the per-epoch render
	// cache; HostRenders counts genuine host renders.
	HostHits    uint64 `json:"host_hits"`
	HostRenders uint64 `json:"host_renders"`

	// CachedFindings and CachedHostPaths are current cache sizes.
	CachedFindings  int `json:"cached_findings"`
	CachedHostPaths int `json:"cached_host_paths"`

	// Generation is the kernel's total mutation count; Epochs breaks it
	// down per dirty-tracking subsystem.
	Generation uint64            `json:"generation"`
	Epochs     map[string]uint64 `json:"epochs"`
}

// Stats returns a snapshot of the engine's counters and the underlying
// kernel's generation state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	nf, nh := len(e.findings), len(e.hostc)
	e.mu.Unlock()
	eps := e.fs.Kernel().Epochs()
	m := make(map[string]uint64, int(kernel.NumSubsystems))
	for s := kernel.Subsystem(0); s < kernel.NumSubsystems; s++ {
		m[s.String()] = eps[s]
	}
	return Stats{
		Passes:          e.passes.Load(),
		BypassedPasses:  e.bypassedPasses.Load(),
		FindingHits:     e.findingHits.Load(),
		FindingMisses:   e.findingMisses.Load(),
		HostHits:        e.hostHits.Load(),
		HostRenders:     e.hostRenders.Load(),
		CachedFindings:  nf,
		CachedHostPaths: nh,
		Generation:      eps.Combined(kernel.MaskAll),
		Epochs:          m,
	}
}

// Add returns the element-wise sum of two stats snapshots (cache sizes and
// generation state are taken from s when t is zero, otherwise summed /
// maxed as appropriate). Service code aggregates per-session engines with
// it.
func (s Stats) Add(t Stats) Stats {
	out := Stats{
		Passes:          s.Passes + t.Passes,
		BypassedPasses:  s.BypassedPasses + t.BypassedPasses,
		FindingHits:     s.FindingHits + t.FindingHits,
		FindingMisses:   s.FindingMisses + t.FindingMisses,
		HostHits:        s.HostHits + t.HostHits,
		HostRenders:     s.HostRenders + t.HostRenders,
		CachedFindings:  s.CachedFindings + t.CachedFindings,
		CachedHostPaths: s.CachedHostPaths + t.CachedHostPaths,
	}
	// Generations of different kernels are not comparable; report the max
	// so the field stays monotone for the common single-session case.
	out.Generation = s.Generation
	out.Epochs = s.Epochs
	if t.Generation > out.Generation {
		out.Generation = t.Generation
		out.Epochs = t.Epochs
	}
	return out
}
