package engine_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/perfcount"
	"repro/internal/pseudofs"
)

// world is a minimal testbed: one kernel, its pseudo tree, a Docker-style
// runtime, a host mount, and one probe container.
type world struct {
	k    *kernel.Kernel
	fs   *pseudofs.FS
	rt   *container.Runtime
	host *pseudofs.Mount
	cont *pseudofs.Mount
}

func buildWorld(t testing.TB, seed int64) *world {
	t.Helper()
	k := kernel.New(kernel.Options{Hostname: "engine-host", Seed: seed})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	probe := rt.Create("probe")
	k.Tick(10, 1)
	return &world{
		k:    k,
		fs:   fs,
		rt:   rt,
		host: pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{}),
		cont: probe.Mount(),
	}
}

func TestSecondPassServedEntirelyFromCache(t *testing.T) {
	w := buildWorld(t, 1)
	eng := engine.New(w.host)

	first := eng.Validate(w.cont)
	renders := w.fs.Renders()
	st := eng.Stats()
	if st.FindingMisses != uint64(len(first)) || st.FindingHits != 0 {
		t.Fatalf("first pass: misses=%d hits=%d, want %d/0", st.FindingMisses, st.FindingHits, len(first))
	}

	second := eng.Validate(w.cont)
	if got := w.fs.Renders(); got != renders {
		t.Errorf("second pass over unmutated kernel performed %d pseudo-file re-renders, want 0", got-renders)
	}
	st = eng.Stats()
	if st.FindingHits != uint64(len(first)) {
		t.Errorf("second pass: finding hits = %d, want %d", st.FindingHits, len(first))
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached second pass differs from first pass")
	}
}

func TestValidateMatchesColdScan(t *testing.T) {
	w := buildWorld(t, 2)
	eng := engine.New(w.host)
	got := eng.Validate(w.cont)
	want := core.CrossValidate(w.host, w.cont)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("engine first pass differs from cold core.CrossValidate")
	}
}

// TestByteIdentityProperty is the engine's hard guarantee: after ANY
// sequence of kernel mutations, an incremental pass returns exactly what a
// cold cross-validation returns at the same instant. Randomized but
// seeded — failures reproduce.
func TestByteIdentityProperty(t *testing.T) {
	w := buildWorld(t, 3)
	eng := engine.New(w.host)
	rnd := rand.New(rand.NewSource(0xbeef))
	var tasks []*kernel.Task

	steps := 40
	if testing.Short() {
		steps = 12
	}
	for step := 0; step < steps; step++ {
		// One random mutation (or none: epochs stand still, pure cache pass).
		switch rnd.Intn(7) {
		case 0:
			w.k.Tick(w.k.Now()+float64(1+rnd.Intn(3)), 1)
		case 1:
			tk := w.k.Spawn(fmt.Sprintf("w%d", step), w.k.InitNS(),
				fmt.Sprintf("/docker/c%d", rnd.Intn(4)), rnd.Float64(), perfcount.Rates{})
			tasks = append(tasks, tk)
		case 2:
			if len(tasks) > 0 {
				i := rnd.Intn(len(tasks))
				w.k.Exit(tasks[i].HostPID)
				tasks = append(tasks[:i], tasks[i+1:]...)
			}
		case 3:
			cg := w.k.Cgroup(fmt.Sprintf("/docker/c%d", rnd.Intn(4)))
			cg.QuotaCores = 1 + rnd.Float64()
		case 4:
			w.k.AddHostNetDev(fmt.Sprintf("veth%d", step))
		case 5:
			if len(tasks) > 0 {
				w.k.AddFileLock(tasks[rnd.Intn(len(tasks))], "WRITE", uint64(step))
			}
		case 6:
			// no mutation
		}

		workers := 1 + rnd.Intn(4)
		got := eng.ValidateWorkers(w.cont, workers)
		want := core.CrossValidateWorkers(w.host, w.cont, workers)
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("step %d: finding for %s diverged:\nengine: %+v\ncold:   %+v",
						step, want[i].Path, got[i], want[i])
				}
			}
			t.Fatalf("step %d: engine output diverged from cold scan", step)
		}
	}
	st := eng.Stats()
	if st.FindingHits == 0 || st.FindingMisses == 0 {
		t.Errorf("property run exercised no cache boundary: hits=%d misses=%d", st.FindingHits, st.FindingMisses)
	}
}

func TestFleetValidateSharesHostReads(t *testing.T) {
	k := kernel.New(kernel.Options{Hostname: "fleet-host", Seed: 4})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	const n = 4
	mounts := make([]*pseudofs.Mount, 0, n)
	for i := 0; i < n; i++ {
		mounts = append(mounts, rt.Create(fmt.Sprintf("tenant-%d", i)).Mount())
	}
	k.Tick(10, 1)
	host := pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{})

	eng := engine.New(host)
	all := eng.FleetValidate(mounts, 4)
	if len(all) != n {
		t.Fatalf("fleet pass returned %d result sets, want %d", len(all), n)
	}
	for i, m := range mounts {
		want := core.CrossValidate(host, m)
		if !reflect.DeepEqual(all[i], want) {
			t.Fatalf("container %d: fleet findings differ from cold per-container scan", i)
		}
	}
	st := eng.Stats()
	paths := uint64(len(mounts[0].Paths()))
	if st.HostRenders > paths {
		t.Errorf("fleet pass performed %d host renders for %d paths — sharing failed", st.HostRenders, paths)
	}
	if st.HostHits == 0 {
		t.Error("fleet pass recorded no shared host reads")
	}
}

func TestChaosBypassIsUncachedAndIdentical(t *testing.T) {
	spec := chaos.Spec{Rate: 0.05, Seed: 9}

	// Twin worlds, one armed per path under test: the engine on a faulty FS
	// must produce exactly what the uncached sweep produces.
	we := buildWorld(t, 5)
	chaos.Install(we.fs, spec, "engine-host")
	wc := buildWorld(t, 5)
	chaos.Install(wc.fs, spec, "engine-host")

	eng := engine.New(we.host)
	got := eng.ValidateWorkers(we.cont, 3)
	want := core.CrossValidateWorkers(wc.host, wc.cont, 3)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("chaos-armed engine pass differs from uncached twin-world sweep")
	}
	st := eng.Stats()
	if st.BypassedPasses != 1 || st.Passes != 0 {
		t.Errorf("chaos pass counters: bypassed=%d passes=%d, want 1/0", st.BypassedPasses, st.Passes)
	}
	if st.FindingHits+st.FindingMisses+st.HostRenders+st.HostHits != 0 {
		t.Errorf("chaos bypass touched the caches: %+v", st)
	}
}

func TestForgetAndReset(t *testing.T) {
	w := buildWorld(t, 6)
	eng := engine.New(w.host)
	before := eng.Validate(w.cont)

	eng.Forget(w.cont)
	if st := eng.Stats(); st.CachedFindings != 0 {
		t.Errorf("Forget left %d cached findings", st.CachedFindings)
	}
	eng.Reset()
	if st := eng.Stats(); st.CachedFindings != 0 || st.CachedHostPaths != 0 {
		t.Errorf("Reset left caches populated: %+v", st.CachedFindings)
	}
	after := eng.Validate(w.cont)
	if !reflect.DeepEqual(before, after) {
		t.Error("post-Reset pass differs from original pass")
	}
}

func TestMismatchedFSPanics(t *testing.T) {
	w1 := buildWorld(t, 7)
	w2 := buildWorld(t, 8)
	eng := engine.New(w1.host)
	defer func() {
		if recover() == nil {
			t.Error("validating a mount from another FS did not panic")
		}
	}()
	eng.Validate(w2.cont)
}

func TestStatsEpochsTrackKernel(t *testing.T) {
	w := buildWorld(t, 9)
	eng := engine.New(w.host)
	g1 := eng.Stats().Generation
	w.k.Tick(w.k.Now()+1, 1)
	st := eng.Stats()
	if st.Generation <= g1 {
		t.Errorf("stats generation did not advance on tick: %d -> %d", g1, st.Generation)
	}
	if len(st.Epochs) != int(kernel.NumSubsystems) {
		t.Errorf("stats epochs cover %d subsystems, want %d", len(st.Epochs), kernel.NumSubsystems)
	}
}
