package cluster

import "repro/internal/telemetry"

// Metrics is the cluster's telemetry bundle, registered under the
// leaksd_cluster_ prefix. cmd/leaksd registers it on the same registry as
// the scheduler's families so one /v1/metrics scrape covers both.
type Metrics struct {
	Registry *telemetry.Registry

	// WorkersKnown / WorkersLive gauge the configured worker set and the
	// subset currently passing heartbeats.
	WorkersKnown, WorkersLive *telemetry.GaugeVec
	// HeartbeatFailures counts failed liveness probes by worker.
	HeartbeatFailures *telemetry.CounterVec
	// Reassignments counts shards moved to a different worker after a
	// failure or a dead-worker bounce; Requeues counts every re-enqueue
	// (a retry on the same worker also requeues).
	Reassignments, Requeues *telemetry.CounterVec
	// ShardsTotal counts terminal shard outcomes by status (done / failed).
	ShardsTotal *telemetry.CounterVec
	// ShardSeconds is per-shard wall latency (successful attempts only).
	ShardSeconds *telemetry.HistogramVec
	// ScansTotal counts cluster fleet scans by outcome
	// (done / partial / failed).
	ScansTotal *telemetry.CounterVec
	// NetFaults counts injected inter-node link faults by kind when the
	// transport is chaos-wrapped.
	NetFaults *telemetry.CounterVec
}

// NewMetrics registers the cluster families on reg (fresh registry when
// nil).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Metrics{
		Registry: reg,
		WorkersKnown: reg.Gauge("leaksd_cluster_workers",
			"Workers in the cluster membership."),
		WorkersLive: reg.Gauge("leaksd_cluster_workers_live",
			"Workers currently passing heartbeats."),
		HeartbeatFailures: reg.Counter("leaksd_cluster_heartbeat_failures_total",
			"Failed worker liveness probes, by worker.", "worker"),
		Reassignments: reg.Counter("leaksd_cluster_reassignments_total",
			"Shards moved to a different worker after a failure."),
		Requeues: reg.Counter("leaksd_cluster_requeues_total",
			"Shard re-enqueues (every retry requeues; reassignments also move)."),
		ShardsTotal: reg.Counter("leaksd_cluster_shards_total",
			"Terminal shard outcomes, by status.", "status"),
		ShardSeconds: reg.Histogram("leaksd_cluster_shard_seconds",
			"Per-shard wall latency of successful attempts.", nil),
		ScansTotal: reg.Counter("leaksd_cluster_scans_total",
			"Cluster fleet scans, by outcome.", "outcome"),
		NetFaults: reg.Counter("leaksd_cluster_net_faults_total",
			"Injected inter-node link faults, by kind.", "kind"),
	}
}
