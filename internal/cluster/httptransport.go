package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPTransport reaches worker daemons over their /v1/cluster endpoints:
// POST {base}/v1/cluster/shards executes a shard, GET {base}/v1/cluster/ping
// probes liveness. Worker IDs are their base URLs (scheme optional;
// "host:port" gets "http://"), so the peer list handed to leaksd
// -role=coordinator doubles as the membership. Any transport-level failure
// or non-2xx status wraps ErrWorkerDown — to the coordinator an
// unreachable worker and a crashed one are the same thing.
type HTTPTransport struct {
	client *http.Client
	peers  map[string]string // workerID -> base URL
}

// NewHTTPTransport builds a transport over the peer base URLs. client may
// be nil (a default with a 2-minute overall timeout is used; per-call
// deadlines come from the coordinator's contexts).
func NewHTTPTransport(peers []string, client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	t := &HTTPTransport{client: client, peers: make(map[string]string, len(peers))}
	for _, p := range peers {
		t.peers[p] = normalizeBaseURL(p)
	}
	return t
}

// Workers returns the configured worker IDs (unsorted; NewRing sorts).
func (t *HTTPTransport) Workers() []string {
	out := make([]string, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	return out
}

// normalizeBaseURL accepts "host:port" and full URLs; trailing slashes are
// trimmed so path joins stay clean.
func normalizeBaseURL(p string) string {
	p = strings.TrimRight(p, "/")
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	return p
}

func (t *HTTPTransport) base(workerID string) (string, error) {
	b, ok := t.peers[workerID]
	if !ok {
		return "", fmt.Errorf("%w: %s (not a configured peer)", ErrWorkerDown, workerID)
	}
	return b, nil
}

// do runs one request and decodes a JSON body into out, folding every
// failure mode into ErrWorkerDown.
func (t *HTTPTransport) do(ctx context.Context, workerID, method, path string, body, out any) error {
	base, err := t.base(workerID)
	if err != nil {
		return err
	}
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: encode %s: %w", path, err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return fmt.Errorf("cluster: build %s: %w", path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrWorkerDown, workerID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w: %s: %s %s: %s", ErrWorkerDown, workerID, path,
			resp.Status, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("%w: %s: decode %s: %v", ErrWorkerDown, workerID, path, err)
		}
	}
	return nil
}

// ExecShard implements Transport.
func (t *HTTPTransport) ExecShard(ctx context.Context, workerID string, req *ShardRequest) (*ShardResult, error) {
	var res ShardResult
	if err := t.do(ctx, workerID, http.MethodPost, "/v1/cluster/shards", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Ping implements Transport.
func (t *HTTPTransport) Ping(ctx context.Context, workerID string) (*Heartbeat, error) {
	var hb Heartbeat
	if err := t.do(ctx, workerID, http.MethodGet, "/v1/cluster/ping", nil, &hb); err != nil {
		return nil, err
	}
	return &hb, nil
}
