package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/chaos"
)

// ErrLinkDropped is what a chaos-faulted link surfaces to the coordinator:
// either the request was lost in flight (the worker never saw it) or the
// reply was (the worker did the work, the coordinator cannot know). The
// two are indistinguishable to the sender — exactly why shard execution
// must be idempotent.
var ErrLinkDropped = errors.New("cluster: link dropped message")

// ChaosTransport wraps a Transport and perturbs its messages with faults
// drawn from a chaos.Net: delays, drops, duplicated deliveries, and
// one-way partition episodes. Fault streams are per link — "shard:<id>"
// for shard calls and "ping:<id>" for liveness probes — so a link's fault
// schedule is a pure function of (seed, link name, message count) and a
// chaos run replays exactly as long as each link's sends stay serialized,
// which the coordinator's per-worker dispatch loops and serial heartbeat
// sweep both guarantee.
type ChaosTransport struct {
	inner Transport
	net   *chaos.Net
	met   *Metrics
	// sleep is the delay injector (tests replace it to avoid wall time).
	sleep func(context.Context, time.Duration)
}

// WithChaos wraps inner with link-fault injection. met may be nil.
func WithChaos(inner Transport, net *chaos.Net, met *Metrics) *ChaosTransport {
	return &ChaosTransport{
		inner: inner,
		net:   net,
		met:   met,
		sleep: func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
			case <-t.C:
			}
		},
	}
}

// apply delivers one message under the link's next fault. deliver must be
// idempotent: Dup invokes it twice and keeps the second result (a
// retransmit arriving after the original).
func (t *ChaosTransport) apply(ctx context.Context, link string, deliver func() error) error {
	f := t.net.Next(link)
	if t.met != nil {
		t.met.NetFaults.With(f.String()).Inc()
	}
	if f.Delay > 0 {
		t.sleep(ctx, f.Delay)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if f.Drop {
		return fmt.Errorf("%w: %s (request lost)", ErrLinkDropped, link)
	}
	if err := deliver(); err != nil {
		return err
	}
	if f.Dup {
		// Duplicated retransmit: the remote executes twice; idempotence makes
		// the second result identical, and it is the one the sender keeps.
		if err := deliver(); err != nil {
			return err
		}
	}
	if f.DropReply {
		return fmt.Errorf("%w: %s (reply lost)", ErrLinkDropped, link)
	}
	return nil
}

// ExecShard implements Transport.
func (t *ChaosTransport) ExecShard(ctx context.Context, workerID string, req *ShardRequest) (*ShardResult, error) {
	var res *ShardResult
	err := t.apply(ctx, "shard:"+workerID, func() error {
		var derr error
		res, derr = t.inner.ExecShard(ctx, workerID, req)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Ping implements Transport.
func (t *ChaosTransport) Ping(ctx context.Context, workerID string) (*Heartbeat, error) {
	var hb *Heartbeat
	err := t.apply(ctx, "ping:"+workerID, func() error {
		var derr error
		hb, derr = t.inner.Ping(ctx, workerID)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return hb, nil
}
