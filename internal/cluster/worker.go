package cluster

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
)

// ShardRequest is one unit of partitioned fleet work: validate the listed
// fleet containers of the spec's world at the spec's tick. It carries the
// world *description*, never world state — the worker reconstructs (or
// delta-advances) its own deterministic replica.
type ShardRequest struct {
	// ScanID tags all shards of one coordinator scan (logs and status).
	ScanID string `json:"scan_id"`
	// Shard is the shard's index within its scan.
	Shard int `json:"shard"`
	// Spec describes the fleet world.
	Spec Spec `json:"spec"`
	// Containers are the fleet indices this shard validates.
	Containers []int `json:"containers"`
	// Workers bounds the worker-local engine fan-out for this shard
	// (0 = serial).
	Workers int `json:"workers,omitempty"`
}

// ShardResult is a shard's findings plus the convergence proof.
type ShardResult struct {
	WorkerID string `json:"worker_id"`
	Shard    int    `json:"shard"`
	// Generation is the replica kernel's total subsystem bump count at the
	// observation tick. Replicas of one spec at one tick always agree; the
	// coordinator rejects a shard whose generation diverges from the
	// scan's, because it would have been rendered against a different
	// world.
	Generation uint64 `json:"generation"`
	// Findings holds one finding slice per requested container, in request
	// order, each in path order — the same bytes the container's slice of a
	// single-node FleetValidate would hold.
	Findings [][]core.Finding `json:"findings"`
}

// Heartbeat is a worker's liveness reply.
type Heartbeat struct {
	WorkerID string `json:"worker_id"`
	// Shards counts shard executions since the worker started.
	Shards uint64 `json:"shards"`
	// Worlds counts cached fleet replicas (LocalWorlds only; 0 for shared).
	Worlds int `json:"worlds"`
}

// Worker executes shards against locally resolved fleet replicas. It is
// the same object whether it runs inside a leaksd -role=worker daemon
// (reached over HTTP) or inside an in-process cluster (reached directly).
// ExecShard is idempotent and safe for concurrent use: validation is a
// pure read of a frozen world, so duplicated deliveries — the chaos
// layer's Dup fault and a retried lost-reply — return identical bytes.
type Worker struct {
	id     string
	worlds Worlds
	shards atomic.Uint64
}

// NewWorker builds a worker with the given identity and world source.
func NewWorker(id string, worlds Worlds) *Worker {
	return &Worker{id: id, worlds: worlds}
}

// ID returns the worker's cluster identity.
func (w *Worker) ID() string { return w.id }

// ExecShard resolves the replica, advances it to the requested tick when
// behind (the epoch delta), and validates the shard's containers.
func (w *Worker) ExecShard(ctx context.Context, req *ShardRequest) (*ShardResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec := req.Spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fw, err := w.worlds.Fleet(spec)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	findings, gen, err := fw.Pass(spec.Tick, req.Containers, req.Workers)
	if err != nil {
		return nil, err
	}
	w.shards.Add(1)
	return &ShardResult{
		WorkerID:   w.id,
		Shard:      req.Shard,
		Generation: gen,
		Findings:   findings,
	}, nil
}

// Heartbeat reports liveness and counters.
func (w *Worker) Heartbeat() *Heartbeat {
	hb := &Heartbeat{WorkerID: w.id, Shards: w.shards.Load()}
	if lw, ok := w.worlds.(*LocalWorlds); ok {
		hb.Worlds = lw.Len()
	}
	return hb
}
