package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// killAfter wraps a transport and crashes the victim worker after its
// n-th successful shard — the mid-scan loss the acceptance criteria name.
type killAfter struct {
	inner  *InProc
	victim string
	left   atomic.Int32
}

func (k *killAfter) ExecShard(ctx context.Context, workerID string, req *ShardRequest) (*ShardResult, error) {
	res, err := k.inner.ExecShard(ctx, workerID, req)
	if err == nil && workerID == k.victim && k.left.Add(-1) == 0 {
		k.inner.Kill(k.victim)
	}
	return res, err
}

func (k *killAfter) Ping(ctx context.Context, workerID string) (*Heartbeat, error) {
	return k.inner.Ping(ctx, workerID)
}

// TestClusterKillWorkerMidScan is the headline acceptance test: a worker
// dies *during* the scan, after having already landed shards; its
// remaining shards requeue to other workers along the ring walk, and the
// merged result is still byte-identical to the single-node scan, with the
// reassignment visible in the coordinator's counters.
func TestClusterKillWorkerMidScan(t *testing.T) {
	spec := Spec{Provider: "local", Containers: 12}
	ref, _, err := SingleNode(spec, 0)
	if err != nil {
		t.Fatalf("single-node reference: %v", err)
	}

	workers := make([]*Worker, 3)
	ids := make([]string, 3)
	for i := range workers {
		ids[i] = fmt.Sprintf("worker-%d", i)
		workers[i] = NewWorker(ids[i], NewLocalWorlds(2))
	}
	inner := NewInProc(workers...)
	cfg := testConfig()
	cfg.ShardSize = 1 // many shards so the victim holds work when it dies
	// Pick the worker owning the most shards as the victim.
	probe := NewCoordinator(cfg, inner, ids, nil)
	owned := map[string]int{}
	for _, sh := range probe.partition(spec) {
		owned[sh.worker()]++
	}
	victim, most := "", 0
	for w, n := range owned {
		if n > most {
			victim, most = w, n
		}
	}
	if most < 2 {
		t.Fatalf("no worker owns two shards of %d — enlarge the fleet", spec.Containers)
	}

	tr := &killAfter{inner: inner, victim: victim}
	tr.left.Store(1) // die after the first landed shard
	coord := NewCoordinator(cfg, tr, ids, nil)
	res, err := coord.Scan(context.Background(), spec)
	if err != nil {
		t.Fatalf("cluster scan: %v", err)
	}
	if res.Partial {
		t.Fatalf("surviving workers could not absorb the victim's shards: %+v", res.Shards)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, ref); !bytes.Equal(got, want) {
		t.Fatal("merged result after mid-scan worker death diverges from single-node")
	}
	st := coord.Status()
	if st.Reassignments == 0 || st.Requeues == 0 {
		t.Fatalf("worker death left no trace in counters: %+v", st)
	}
	if coord.met.Reassignments.With().Value() == 0 {
		t.Fatal("leaksd_cluster_reassignments_total not incremented")
	}
	moved := 0
	for _, sh := range res.Shards {
		if sh.Reassigned > 0 {
			moved++
			if sh.Worker == victim {
				t.Fatalf("reassigned shard %d still credits the dead victim", sh.Shard)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no shard records a reassignment")
	}
}

// TestClusterChaosLinksByteIdentity runs a fleet scan through a
// fault-injected transport — drops, delays, duplications, one-way
// partitions — and requires the merged result to remain byte-identical to
// the single-node scan: idempotent shards plus bounded retries absorb
// every link fault.
func TestClusterChaosLinksByteIdentity(t *testing.T) {
	spec := Spec{Provider: "local", Containers: 10}
	ref, _, err := SingleNode(spec, 0)
	if err != nil {
		t.Fatalf("single-node reference: %v", err)
	}

	workers := make([]*Worker, 2)
	ids := make([]string, 2)
	for i := range workers {
		ids[i] = fmt.Sprintf("worker-%d", i)
		workers[i] = NewWorker(ids[i], NewLocalWorlds(2))
	}
	met := NewMetrics(nil)
	net := chaos.NewNet(chaos.NetSpec{Rate: 0.4, Seed: 1337}.Config())
	ct := WithChaos(NewInProc(workers...), net, met)
	ct.sleep = func(ctx context.Context, _ time.Duration) {} // no wall time in tests

	cfg := Config{
		ShardSize:    2,
		MaxAttempts:  12, // generous: the budget is the backstop, not the test
		RetryBackoff: time.Millisecond,
		RetryBudget:  time.Minute,
		Sleep:        instantSleep,
	}
	coord := NewCoordinator(cfg, ct, ids, met)
	res, err := coord.Scan(context.Background(), spec)
	if err != nil {
		t.Fatalf("chaos scan: %v", err)
	}
	if res.Partial {
		t.Fatalf("chaos scan degraded to partial despite bounded-retry headroom: %+v", res.Shards)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, ref); !bytes.Equal(got, want) {
		t.Fatal("chaos-scan result diverges from single-node — link faults leaked into findings")
	}
	faulted := 0.0
	for _, kind := range []string{"drop", "drop_reply", "dup", "delay"} {
		faulted += met.NetFaults.With(kind).Value()
	}
	if faulted == 0 {
		t.Fatal("rate-0.4 chaos run injected no faults — wrapper not in the path")
	}
}

// TestChaosTransportDupIsIdempotent: a duplicated delivery executes the
// shard twice; the worker's shard counter sees both, the caller sees one
// result with the same bytes.
func TestChaosTransportDupIsIdempotent(t *testing.T) {
	w := NewWorker("w0", NewLocalWorlds(0))
	met := NewMetrics(nil)
	net := chaos.NewNet(chaos.NetConfig{Seed: 1, DupRate: 1})
	ct := WithChaos(NewInProc(w), net, met)

	req := &ShardRequest{Spec: Spec{Containers: 2}, Containers: []int{0, 1}}
	res, err := ct.ExecShard(context.Background(), "w0", req)
	if err != nil {
		t.Fatalf("dup delivery: %v", err)
	}
	if hb := w.Heartbeat(); hb.Shards != 2 {
		t.Fatalf("worker executed %d shards, want 2 (original + retransmit)", hb.Shards)
	}
	again, err := ct.ExecShard(context.Background(), "w0", req)
	if err != nil {
		t.Fatalf("second dup delivery: %v", err)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, again.Findings); !bytes.Equal(got, want) {
		t.Fatal("duplicated executions returned different bytes — shard not idempotent")
	}
	if met.NetFaults.With("dup").Value() != 2 {
		t.Fatalf("dup faults counted %g, want 2", met.NetFaults.With("dup").Value())
	}
}

// TestChaosTransportDropSurfacesError: dropped requests and dropped
// replies both surface ErrLinkDropped, and a dropped reply still executes
// the shard remotely (the one-way partition hazard).
func TestChaosTransportDropSurfacesError(t *testing.T) {
	w := NewWorker("w0", NewLocalWorlds(0))
	req := &ShardRequest{Spec: Spec{Containers: 1}, Containers: []int{0}}

	drop := WithChaos(NewInProc(w), chaos.NewNet(chaos.NetConfig{Seed: 1, DropRate: 1}), nil)
	if _, err := drop.ExecShard(context.Background(), "w0", req); err == nil {
		t.Fatal("dropped request reported success")
	}
	if hb := w.Heartbeat(); hb.Shards != 0 {
		t.Fatal("dropped request still reached the worker")
	}

	// Find a seed whose first fault on this link is a lost *reply* (the
	// partition direction is part of the seeded schedule).
	var seed int64
	for s := int64(1); s < 200; s++ {
		n := chaos.NewNet(chaos.NetConfig{Seed: s, PartitionRate: 1, PartitionMsgs: 1})
		if n.Next("shard:w1").DropReply {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed under 200 opens a reply-direction partition — shares broken")
	}
	w2 := NewWorker("w1", NewLocalWorlds(0))
	lost := WithChaos(NewInProc(w2), chaos.NewNet(chaos.NetConfig{Seed: seed, PartitionRate: 1, PartitionMsgs: 1}), nil)
	if _, err := lost.ExecShard(context.Background(), "w1", req); err == nil {
		t.Fatal("lost reply reported success")
	}
	if hb := w2.Heartbeat(); hb.Shards != 1 {
		t.Fatalf("lost-reply delivery executed %d shards, want 1 — the work happened, the sender cannot know", hb.Shards)
	}
}
