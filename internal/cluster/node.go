package cluster

// Role is a leaksd process's position in a cluster.
type Role string

// Cluster roles. Standalone is the pre-cluster daemon: no peers, fleet
// scans run single-node in process.
const (
	RoleStandalone  Role = "standalone"
	RoleCoordinator Role = "coordinator"
	RoleWorker      Role = "worker"
)

// Node bundles a process's cluster identity for the HTTP surface: which
// role it plays and the role's machinery. The service layer asks the node
// what it can do; role-mismatched requests (a shard POSTed to a
// coordinator, a fleet scan POSTed to a worker) are rejected there.
type Node struct {
	role   Role
	worker *Worker
	coord  *Coordinator
}

// NewStandaloneNode describes a daemon outside any cluster.
func NewStandaloneNode() *Node { return &Node{role: RoleStandalone} }

// NewWorkerNode describes a worker daemon executing shards.
func NewWorkerNode(w *Worker) *Node { return &Node{role: RoleWorker, worker: w} }

// NewCoordinatorNode describes a coordinator daemon partitioning scans.
func NewCoordinatorNode(c *Coordinator) *Node { return &Node{role: RoleCoordinator, coord: c} }

// Role returns the node's role.
func (n *Node) Role() Role {
	if n == nil {
		return RoleStandalone
	}
	return n.role
}

// Worker returns the node's worker (nil unless RoleWorker).
func (n *Node) Worker() *Worker {
	if n == nil {
		return nil
	}
	return n.worker
}

// Coordinator returns the node's coordinator (nil unless RoleCoordinator).
func (n *Node) Coordinator() *Coordinator {
	if n == nil {
		return nil
	}
	return n.coord
}

// NodeStatus is the /v1/cluster envelope: the role always, the role's
// detail when the node has one.
type NodeStatus struct {
	Role Role `json:"role"`
	// Worker is the worker's own heartbeat (RoleWorker only).
	Worker *Heartbeat `json:"worker,omitempty"`
	// Cluster is the coordinator's fleet view (RoleCoordinator only).
	Cluster *Status `json:"cluster,omitempty"`
}

// Status snapshots the node for the HTTP surface.
func (n *Node) Status() NodeStatus {
	st := NodeStatus{Role: n.Role()}
	if w := n.Worker(); w != nil {
		st.Worker = w.Heartbeat()
	}
	if c := n.Coordinator(); c != nil {
		cs := c.Status()
		st.Cluster = &cs
	}
	return st
}
