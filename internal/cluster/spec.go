package cluster

import (
	"fmt"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pseudofs"
)

// DefaultTick is the canonical observation instant: 30 simulated seconds,
// the same warm-up every inspection entry point uses so dynamic channels
// carry real data.
const DefaultTick = 30

// DefaultSeed seeds fleet worlds when the spec leaves it zero.
const DefaultSeed int64 = 0x1ea4

// Spec describes one fleet scan: the deterministic world to build and the
// instant to scan it at. A Spec is the *entire* world description — no
// state ever crosses the wire beyond it, because every worker can
// reconstruct the identical world from (Provider, Seed, Containers) and
// advance it to Tick. Observation-surface chaos is deliberately absent:
// per-read fault streams are order-sensitive, so a partitioned scan under
// them would not be byte-identical to a single-node scan (the engine
// bypasses its caches under injection for the same reason). Cluster chaos
// lives on the links instead — see WithChaos.
type Spec struct {
	// Provider selects the masking/hardware profile ("" = "local", the
	// unhardened testbed; "lxc"-style and cc1…cc5 as in Table I).
	Provider string `json:"provider,omitempty"`
	// Seed builds the world (0 = DefaultSeed).
	Seed int64 `json:"seed,omitempty"`
	// Containers is the fleet size: tenant containers launched on the
	// world's single server, named tenant-00000 … tenant-NNNNN.
	Containers int `json:"containers"`
	// Tick is the observation instant in simulated seconds (0 = DefaultTick).
	// Recurring scans advance it monotonically; workers apply the delta to
	// their cached replica instead of rebuilding.
	Tick float64 `json:"tick,omitempty"`
}

// Normalize canonicalizes a spec so equal worlds compare equal.
func (s Spec) Normalize() Spec {
	if s.Provider == "" {
		s.Provider = cloud.LocalTestbed().Name
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Tick <= 0 {
		s.Tick = DefaultTick
	}
	return s
}

// Validate rejects malformed specs with client-facing errors.
func (s Spec) Validate() error {
	n := s.Normalize()
	if _, ok := providerProfile(n.Provider); !ok {
		return fmt.Errorf("unknown provider %q", n.Provider)
	}
	if n.Containers <= 0 {
		return fmt.Errorf("fleet needs at least 1 container, got %d", n.Containers)
	}
	return nil
}

// worldKey identifies a world replica: everything in the spec except the
// tick (replicas advance in place).
func (s Spec) worldKey() string {
	n := s.Normalize()
	return fmt.Sprintf("%s|%d|%d", n.Provider, n.Seed, n.Containers)
}

// ContainerName returns the deterministic name of fleet container i — the
// identity both the world builder and the partitioner hash, so the ring
// key of a container never depends on having the world in memory.
func ContainerName(i int) string { return fmt.Sprintf("tenant-%05d", i) }

// providerProfile resolves a Table I profile by name.
func providerProfile(name string) (cloud.ProviderProfile, bool) {
	all := append([]cloud.ProviderProfile{cloud.LocalTestbed(), cloud.LocalLXC()}, cloud.CommercialClouds()...)
	for _, p := range all {
		if p.Name == name {
			return p, true
		}
	}
	return cloud.ProviderProfile{}, false
}

// FleetWorld is one deterministic fleet replica: a single-server
// datacenter, Containers tenant containers, and an incremental engine over
// the host mount. Advancing and scanning are synchronized so a pass never
// observes a moving clock (the engine's determinism contract).
type FleetWorld struct {
	spec Spec // normalized

	mu     sync.RWMutex
	dc     *cloud.Datacenter
	srv    *cloud.Server
	mounts []*pseudofs.Mount
	eng    *engine.Engine
	tick   float64
}

// BuildFleetWorld constructs the replica the spec describes, advanced to
// spec.Tick. Identical specs build byte-identical worlds on every node.
func BuildFleetWorld(spec Spec) (*FleetWorld, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	prof, _ := providerProfile(spec.Provider)
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: spec.Seed, Provider: &prof})
	srv := dc.Racks[0].Servers[0]
	mounts := make([]*pseudofs.Mount, spec.Containers)
	for i := range mounts {
		c := srv.Runtime.Create(ContainerName(i), prof.ExtraRules...)
		mounts[i] = c.Mount()
	}
	dc.Clock.Run(spec.Tick, 1)
	return &FleetWorld{
		spec:   spec,
		dc:     dc,
		srv:    srv,
		mounts: mounts,
		eng:    engine.New(srv.HostMount()),
		tick:   spec.Tick,
	}, nil
}

// Spec returns the normalized spec the world was built from.
func (w *FleetWorld) Spec() Spec { return w.spec }

// Tick returns the replica's current observation instant.
func (w *FleetWorld) Tick() float64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.tick
}

// Stats exposes the replica engine's cache counters.
func (w *FleetWorld) Stats() engine.Stats { return w.eng.Stats() }

// Pass validates the selected containers (fleet indices) at the given
// tick, advancing the replica by the delta first when it is behind.
// Results are per selected container, in request order, each in path
// order — byte-identical to the same containers' slices of a single-node
// engine.FleetValidate over the whole fleet, because per-path validations
// are mutually independent and deterministic on the frozen world. The
// returned generation is the kernel's total subsystem bump count, the
// cross-replica convergence check: two replicas of one spec at one tick
// always report the same generation.
//
// Concurrent passes at the same tick share the read lock (and the engine's
// caches); a pass that must advance takes the write lock, so validation
// never overlaps a moving clock. A request behind the replica's tick is an
// error — deterministic worlds only move forward, and the coordinator
// never rewinds a scan.
func (w *FleetWorld) Pass(tick float64, containers []int, workers int) ([][]core.Finding, uint64, error) {
	if tick <= 0 {
		tick = w.spec.Tick
	}
	w.mu.RLock()
	for w.tick != tick {
		w.mu.RUnlock()
		if err := w.advance(tick); err != nil {
			return nil, 0, err
		}
		w.mu.RLock()
	}
	defer w.mu.RUnlock()

	sel := make([]*pseudofs.Mount, len(containers))
	for i, ci := range containers {
		if ci < 0 || ci >= len(w.mounts) {
			return nil, 0, fmt.Errorf("cluster: container index %d outside fleet of %d", ci, len(w.mounts))
		}
		sel[i] = w.mounts[ci]
	}
	findings := w.eng.FleetValidate(sel, workers)
	return findings, w.srv.Kernel.Generation(), nil
}

// advance moves the replica clock forward to tick under the write lock.
func (w *FleetWorld) advance(tick float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if tick < w.tick {
		return fmt.Errorf("cluster: replica at tick %g cannot rewind to %g", w.tick, tick)
	}
	if tick > w.tick {
		w.dc.Clock.Run(tick, 1)
		w.tick = tick
	}
	return nil
}

// Worlds resolves specs to fleet replicas. LocalWorlds builds and caches
// per-node replicas (the worker-daemon mode); SharedWorlds points every
// in-process worker at one world (the benchmark/scaling mode, where
// duplicating a 100k-container world per worker would swamp the
// measurement).
type Worlds interface {
	Fleet(spec Spec) (*FleetWorld, error)
}

// LocalWorlds caches replicas per spec identity, keeping at most cap of
// them (least-recently-used beyond; default 4 — fleet worlds are heavy).
type LocalWorlds struct {
	mu     sync.Mutex
	cap    int
	clock  uint64
	worlds map[string]*localWorld
}

type localWorld struct {
	once sync.Once
	w    *FleetWorld
	err  error
	last uint64
}

// NewLocalWorlds returns a replica cache (cap <= 0 selects 4).
func NewLocalWorlds(cap int) *LocalWorlds {
	if cap <= 0 {
		cap = 4
	}
	return &LocalWorlds{cap: cap, worlds: make(map[string]*localWorld)}
}

// Fleet resolves (building at most once per spec identity, concurrently
// safe) and advances happen inside Pass.
func (l *LocalWorlds) Fleet(spec Spec) (*FleetWorld, error) {
	spec = spec.Normalize()
	key := spec.worldKey()
	l.mu.Lock()
	lw, ok := l.worlds[key]
	if !ok {
		lw = &localWorld{}
		l.worlds[key] = lw
		l.evictLocked(key)
	}
	l.clock++
	lw.last = l.clock
	l.mu.Unlock()

	lw.once.Do(func() { lw.w, lw.err = BuildFleetWorld(spec) })
	if lw.err != nil {
		l.mu.Lock()
		delete(l.worlds, key) // do not cache a broken world
		l.mu.Unlock()
		return nil, lw.err
	}
	return lw.w, nil
}

// Len reports the number of cached replicas.
func (l *LocalWorlds) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.worlds)
}

// evictLocked drops least-recently-used replicas beyond cap, never the one
// just inserted. Callers hold l.mu.
func (l *LocalWorlds) evictLocked(keep string) {
	for len(l.worlds) > l.cap {
		oldest, key := ^uint64(0), ""
		for k, lw := range l.worlds {
			if k != keep && lw.last < oldest {
				oldest, key = lw.last, k
			}
		}
		if key == "" {
			return
		}
		delete(l.worlds, key)
	}
}

// SharedWorlds serves one pre-built world to every caller whose spec
// matches it, and rejects everything else — the in-process topology where
// N workers partition one host's fleet.
type SharedWorlds struct {
	w *FleetWorld
}

// NewSharedWorlds wraps an already-built world.
func NewSharedWorlds(w *FleetWorld) *SharedWorlds { return &SharedWorlds{w: w} }

// Fleet implements Worlds.
func (s *SharedWorlds) Fleet(spec Spec) (*FleetWorld, error) {
	if spec.Normalize().worldKey() != s.w.spec.worldKey() {
		return nil, fmt.Errorf("cluster: shared world is %q, request is %q",
			s.w.spec.worldKey(), spec.Normalize().worldKey())
	}
	return s.w, nil
}

// SingleNode is the uninterrupted single-node reference scan: one world,
// one engine.FleetValidate over the whole fleet. The differential suite
// pins every cluster topology against its output, and a standalone leaksd
// can serve fleet scans through it directly.
func SingleNode(spec Spec, workers int) ([][]core.Finding, uint64, error) {
	w, err := BuildFleetWorld(spec)
	if err != nil {
		return nil, 0, err
	}
	findings, gen, err := w.Pass(w.spec.Tick, allContainers(w.spec.Containers), workers)
	return findings, gen, err
}

// allContainers returns [0, n) — the identity selection.
func allContainers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
