package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config tunes the coordinator. Zero values select production defaults.
// The retry knobs mirror the scan scheduler's (service.Config): first
// retry waits RetryBackoff, each further retry doubles it, attempts are
// bounded by MaxAttempts, and — closing the gap the scheduler had until
// this PR — cumulative retry time is bounded by the deadline-aware
// RetryBudget, so a shard facing a permanently failing fleet terminates
// with a terminal status instead of retrying past its deadline.
type Config struct {
	// ShardSize bounds containers per shard; reassignment granularity is
	// one shard, so smaller shards move less work on a worker loss.
	// Default 32.
	ShardSize int
	// ShardWorkers bounds each shard's engine fan-out on its worker
	// (0 = serial; the cluster's parallelism is across workers).
	ShardWorkers int
	// MaxAttempts bounds execution attempts per shard (1 = no retries).
	// Default 4.
	MaxAttempts int
	// RetryBackoff is the first retry's delay; each further retry doubles
	// it. Default 25ms.
	RetryBackoff time.Duration
	// RetryBudget is the deadline-aware cap on one shard's cumulative
	// retry time, measured from its first attempt. Default 30s.
	RetryBudget time.Duration
	// ShardTimeout is the per-attempt deadline. Default 1m.
	ShardTimeout time.Duration
	// HeartbeatEvery is the liveness probe interval (Start). Default 2s.
	HeartbeatEvery time.Duration
	// DeadAfter marks a worker dead when its last successful beat is older
	// than this. Default 3×HeartbeatEvery.
	DeadAfter time.Duration
	// Replicas is the ring's virtual-node count per worker
	// (0 = DefaultReplicas).
	Replicas int
	// Now is the wall clock (tests inject a fake). Default time.Now.
	Now func() time.Time
	// Sleep waits between retries, honouring ctx. Default timer sleep.
	Sleep func(context.Context, time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.ShardSize <= 0 {
		c.ShardSize = 32
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 30 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = time.Minute
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * c.HeartbeatEvery
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return c
}

// ShardOutcome is a shard's terminal state within one scan.
type ShardOutcome string

// Shard terminal states.
const (
	ShardDone   ShardOutcome = "done"
	ShardFailed ShardOutcome = "failed"
)

// ShardStatus is the per-shard envelope entry of a fleet scan response:
// where the shard ran, how hard it was to land, and whether it landed.
type ShardStatus struct {
	Shard      int          `json:"shard"`
	Containers int          `json:"containers"`
	Worker     string       `json:"worker"` // last worker attempted
	Attempts   int          `json:"attempts"`
	Requeues   int          `json:"requeues"`
	Reassigned int          `json:"reassigned"`
	Status     ShardOutcome `json:"status"`
	Error      string       `json:"error,omitempty"`
}

// FleetResult is a merged cluster fleet scan. Findings are per fleet
// container in fleet order; containers of failed shards are nil and
// Partial is set — graceful degradation, never a silently truncated
// result.
type FleetResult struct {
	Spec       Spec             `json:"spec"`
	Findings   [][]core.Finding `json:"-"`
	Shards     []ShardStatus    `json:"shards"`
	Partial    bool             `json:"partial"`
	Generation uint64           `json:"generation"`
	Duration   time.Duration    `json:"-"`
}

// LeakingPerContainer counts Identical/Partial findings per container
// (-1 for containers of failed shards), the fleet summary the HTTP
// surface serves instead of raw findings.
func (r *FleetResult) LeakingPerContainer() []int {
	out := make([]int, len(r.Findings))
	for i, fs := range r.Findings {
		if fs == nil {
			out[i] = -1
			continue
		}
		for _, f := range fs {
			if f.Status == core.Identical || f.Status == core.Partial {
				out[i]++
			}
		}
	}
	return out
}

// WorkerStatus is one worker's view in the /v1/cluster envelope.
type WorkerStatus struct {
	ID    string `json:"id"`
	Alive bool   `json:"alive"`
	// LastBeatAgeSeconds is the age of the last successful probe
	// (-1 = never probed).
	LastBeatAgeSeconds float64 `json:"last_beat_age_seconds"`
	ShardsDone         uint64  `json:"shards_done"`
	Failures           uint64  `json:"failures"`
}

// Status is the coordinator's /v1/cluster envelope.
type Status struct {
	Workers       []WorkerStatus `json:"workers"`
	Scans         uint64         `json:"scans"`
	ShardsDone    uint64         `json:"shards_done"`
	ShardsFailed  uint64         `json:"shards_failed"`
	Requeues      uint64         `json:"requeues"`
	Reassignments uint64         `json:"reassignments"`
}

// workerState is the coordinator's liveness book-keeping for one worker.
type workerState struct {
	id         string
	alive      bool
	probed     bool
	lastBeat   time.Time
	shardsDone uint64
	failures   uint64
}

// Coordinator partitions fleet scans across workers, detects failures,
// requeues, and merges. Create with NewCoordinator; Start launches the
// heartbeat loop (optional — without it, death is detected by call
// failures alone and every routing decision still converges).
type Coordinator struct {
	cfg  Config
	tr   Transport
	ring *Ring
	met  *Metrics

	mu      sync.Mutex
	workers map[string]*workerState

	scanMu  sync.Mutex // serializes fleet scans: replica clocks only move forward
	scanSeq atomic.Uint64

	scans         atomic.Uint64
	shardsDone    atomic.Uint64
	shardsFailed  atomic.Uint64
	requeues      atomic.Uint64
	reassignments atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	hbWG     sync.WaitGroup
}

// NewCoordinator builds a coordinator over the worker IDs reachable
// through tr. Workers start presumed-alive (optimistic: the first failure
// or missed beat demotes them). met == nil registers metrics on a fresh
// registry.
func NewCoordinator(cfg Config, tr Transport, workerIDs []string, met *Metrics) *Coordinator {
	cfg = cfg.withDefaults()
	if met == nil {
		met = NewMetrics(nil)
	}
	c := &Coordinator{
		cfg:     cfg,
		tr:      tr,
		ring:    NewRing(workerIDs, cfg.Replicas),
		met:     met,
		workers: make(map[string]*workerState, len(workerIDs)),
		stop:    make(chan struct{}),
	}
	for _, id := range c.ring.Workers() {
		c.workers[id] = &workerState{id: id, alive: true}
	}
	met.WorkersKnown.With().Set(float64(len(c.workers)))
	met.WorkersLive.With().Set(float64(len(c.workers)))
	return c
}

// Start launches the heartbeat loop: every HeartbeatEvery, each worker is
// probed (serially per worker — per-link fault streams stay
// deterministic); a worker whose last successful beat is older than
// DeadAfter is marked dead and routed around until a probe succeeds again.
func (c *Coordinator) Start() {
	c.hbWG.Add(1)
	go func() {
		defer c.hbWG.Done()
		t := time.NewTicker(c.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Stop terminates the heartbeat loop. Idempotent.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.hbWG.Wait()
}

// probeAll pings every worker once and applies the deadline rule.
func (c *Coordinator) probeAll() {
	now := c.cfg.Now()
	for _, id := range c.ring.Workers() {
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatEvery)
		_, err := c.tr.Ping(ctx, id)
		cancel()
		c.mu.Lock()
		w := c.workers[id]
		if err == nil {
			w.probed = true
			w.lastBeat = now
			w.alive = true
		} else {
			w.failures++
			c.met.HeartbeatFailures.With(id).Inc()
			if !w.probed || now.Sub(w.lastBeat) > c.cfg.DeadAfter {
				w.alive = false
			}
		}
		c.mu.Unlock()
	}
	c.met.WorkersLive.With().Set(float64(len(c.liveWorkers())))
}

// liveWorkers snapshots the IDs currently considered alive.
func (c *Coordinator) liveWorkers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.workers))
	for id, w := range c.workers {
		if w.alive {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func (c *Coordinator) isAlive(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	return ok && w.alive
}

// markDown demotes a worker after a failed shard call. Unlike a missed
// heartbeat this is advisory — the next successful probe (or successful
// call) revives it — but it keeps requeued shards from bouncing straight
// back to a crashed worker between probes.
func (c *Coordinator) markDown(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.failures++
		w.alive = false
	}
	c.mu.Unlock()
	c.met.WorkersLive.With().Set(float64(len(c.liveWorkers())))
}

// markUp records a successful shard call.
func (c *Coordinator) markUp(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.shardsDone++
		if !w.alive {
			w.alive = true
		}
	}
	c.mu.Unlock()
}

// Status snapshots the coordinator for /v1/cluster.
func (c *Coordinator) Status() Status {
	now := c.cfg.Now()
	c.mu.Lock()
	ws := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		age := -1.0
		if w.probed {
			age = now.Sub(w.lastBeat).Seconds()
		}
		ws = append(ws, WorkerStatus{
			ID:                 w.id,
			Alive:              w.alive,
			LastBeatAgeSeconds: age,
			ShardsDone:         w.shardsDone,
			Failures:           w.failures,
		})
	}
	c.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	return Status{
		Workers:       ws,
		Scans:         c.scans.Load(),
		ShardsDone:    c.shardsDone.Load(),
		ShardsFailed:  c.shardsFailed.Load(),
		Requeues:      c.requeues.Load(),
		Reassignments: c.reassignments.Load(),
	}
}

// shardState is one shard's mutable dispatch state within a scan.
type shardState struct {
	idx        int
	containers []int
	seq        []string // deterministic failover order (ring walk)
	seqPos     int      // index into seq of the worker currently holding it
	attempts   int
	requeues   int
	reassigned int
	deadline   time.Time // retry-budget deadline, set at first attempt
	status     ShardOutcome
	err        error
	result     *ShardResult
}

// worker returns the shard's current worker.
func (sh *shardState) worker() string { return sh.seq[sh.seqPos%len(sh.seq)] }

// partition computes the scan's shard layout: containers hash onto the
// ring by (provider, mount name), per-worker batches keep fleet order, and
// each batch is chunked into shards of at most ShardSize. The layout is a
// pure function of (spec, worker set, ShardSize) — the differential suite
// exploits that to sweep layouts.
func (c *Coordinator) partition(spec Spec) []*shardState {
	spec = spec.Normalize()
	byWorker := make(map[string][]int)
	for i := 0; i < spec.Containers; i++ {
		key := spec.Provider + "|" + ContainerName(i)
		w := c.ring.Owner(key)
		byWorker[w] = append(byWorker[w], i)
	}
	workers := make([]string, 0, len(byWorker))
	for w := range byWorker {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	var shards []*shardState
	for _, w := range workers {
		batch := byWorker[w]
		for len(batch) > 0 {
			n := c.cfg.ShardSize
			if n > len(batch) {
				n = len(batch)
			}
			chunk := batch[:n]
			batch = batch[n:]
			// The shard inherits its first container's failover walk; all
			// its containers map to the same owner, so the walk starts at
			// that owner by construction.
			key := spec.Provider + "|" + ContainerName(chunk[0])
			shards = append(shards, &shardState{
				idx:        len(shards),
				containers: chunk,
				seq:        c.ring.Sequence(key),
			})
		}
	}
	return shards
}

// Scan runs one clustered fleet scan: partition, dispatch with failure
// detection and requeue, merge. The merged findings are byte-identical to
// SingleNode(spec, …) for every container whose shard landed; shards that
// exhausted their retry budget leave nil findings and set Partial. Scans
// are serialized (replica clocks move only forward); ctx cancels the scan
// (shards then terminate as failed with the ctx error).
func (c *Coordinator) Scan(ctx context.Context, spec Spec) (*FleetResult, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if len(c.ring.Workers()) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	c.scanMu.Lock()
	defer c.scanMu.Unlock()

	start := c.cfg.Now()
	scanID := fmt.Sprintf("fleet-%06d", c.scanSeq.Add(1))
	shards := c.partition(spec)

	run := &scanRun{
		c:      c,
		ctx:    ctx,
		spec:   spec,
		scanID: scanID,
		queues: make(map[string]chan *shardState, len(c.workers)),
		done:   make(chan struct{}),
	}
	run.pending.Add(len(shards))
	// A shard occupies exactly one queue at a time, so total capacity
	// len(shards) per queue makes every send non-blocking.
	for _, id := range c.ring.Workers() {
		run.queues[id] = make(chan *shardState, len(shards))
	}
	var loops sync.WaitGroup
	for _, id := range c.ring.Workers() {
		loops.Add(1)
		go func(id string) {
			defer loops.Done()
			run.workerLoop(id)
		}(id)
	}
	for _, sh := range shards {
		run.queues[sh.worker()] <- sh
	}
	go func() {
		run.pending.Wait()
		close(run.done)
	}()
	<-run.done
	loops.Wait()

	// Merge in fleet order; verify cross-replica convergence.
	res := &FleetResult{
		Spec:     spec,
		Findings: make([][]core.Finding, spec.Containers),
		Shards:   make([]ShardStatus, len(shards)),
		Duration: c.cfg.Now().Sub(start),
	}
	for _, sh := range shards {
		st := ShardStatus{
			Shard:      sh.idx,
			Containers: len(sh.containers),
			Worker:     sh.worker(),
			Attempts:   sh.attempts,
			Requeues:   sh.requeues,
			Reassigned: sh.reassigned,
			Status:     sh.status,
		}
		if sh.err != nil {
			st.Error = sh.err.Error()
		}
		res.Shards[sh.idx] = st
		if sh.status != ShardDone {
			res.Partial = true
			continue
		}
		if res.Generation == 0 {
			res.Generation = sh.result.Generation
		}
		for i, ci := range sh.containers {
			res.Findings[ci] = sh.result.Findings[i]
		}
	}
	c.scans.Add(1)
	outcome := "done"
	if res.Partial {
		outcome = "partial"
	}
	allFailed := true
	for _, st := range res.Shards {
		if st.Status == ShardDone {
			allFailed = false
			break
		}
	}
	if allFailed && len(res.Shards) > 0 {
		outcome = "failed"
	}
	c.met.ScansTotal.With(outcome).Inc()
	if allFailed && len(res.Shards) > 0 {
		return res, fmt.Errorf("cluster: scan %s: all %d shards failed, first: %v",
			scanID, len(res.Shards), res.Shards[0].Error)
	}
	return res, nil
}

// scanRun is the per-scan dispatch state.
type scanRun struct {
	c       *Coordinator
	ctx     context.Context
	spec    Spec
	scanID  string
	queues  map[string]chan *shardState
	pending sync.WaitGroup
	done    chan struct{}
	genMu   sync.Mutex
	gen     uint64 // first observed generation; later shards must match
}

// workerLoop serializes one worker's shard calls (per-link chaos streams
// stay deterministic) until the scan completes.
func (r *scanRun) workerLoop(id string) {
	for {
		select {
		case <-r.done:
			return
		case sh := <-r.queues[id]:
			r.dispatch(id, sh)
		}
	}
}

// dispatch runs one attempt of one shard on one worker and routes the
// outcome: success records it, failure retries through backoff /
// reassignment until the attempt or budget bound trips.
func (r *scanRun) dispatch(id string, sh *shardState) {
	c := r.c
	if err := r.ctx.Err(); err != nil {
		r.terminate(sh, ShardFailed, err)
		return
	}
	// A dead worker bounces the shard to the next live one without
	// spending an attempt — routing, not retrying.
	if !c.isAlive(id) {
		if r.advanceWorker(sh, false) {
			return
		}
		// No live worker anywhere: fall through and try anyway — the
		// attempt/budget bounds decide when to give up.
	}
	if sh.attempts == 0 {
		sh.deadline = c.cfg.Now().Add(c.cfg.RetryBudget)
	}
	sh.attempts++
	actx, cancel := context.WithTimeout(r.ctx, c.cfg.ShardTimeout)
	start := c.cfg.Now()
	res, err := c.tr.ExecShard(actx, sh.worker(), &ShardRequest{
		ScanID:     r.scanID,
		Shard:      sh.idx,
		Spec:       r.spec,
		Containers: sh.containers,
		Workers:    c.cfg.ShardWorkers,
	})
	cancel()
	if err == nil {
		err = r.verify(sh, res)
	}
	if err == nil {
		c.markUp(sh.worker())
		c.met.ShardSeconds.With().Observe(c.cfg.Now().Sub(start).Seconds())
		sh.result = res
		r.terminate(sh, ShardDone, nil)
		return
	}
	c.markDown(sh.worker())
	sh.err = err
	// Bounded retries: attempts, then the deadline-aware budget.
	if sh.attempts >= c.cfg.MaxAttempts {
		r.terminate(sh, ShardFailed,
			fmt.Errorf("cluster: shard %d failed after %d attempts: %w", sh.idx, sh.attempts, err))
		return
	}
	if c.cfg.Now().After(sh.deadline) {
		r.terminate(sh, ShardFailed,
			fmt.Errorf("cluster: shard %d retry budget %v exhausted after %d attempts: %w",
				sh.idx, c.cfg.RetryBudget, sh.attempts, err))
		return
	}
	// Exponential backoff: base, 2·base, 4·base, … (same ladder as the
	// scan scheduler's).
	if serr := c.cfg.Sleep(r.ctx, c.cfg.RetryBackoff<<(sh.attempts-1)); serr != nil {
		r.terminate(sh, ShardFailed, serr)
		return
	}
	r.advanceWorker(sh, true)
}

// verify cross-checks a shard result against the scan's convergence
// invariants: right shape, and the same replica generation every other
// shard reported.
func (r *scanRun) verify(sh *shardState, res *ShardResult) error {
	if res == nil || len(res.Findings) != len(sh.containers) {
		got := 0
		if res != nil {
			got = len(res.Findings)
		}
		return fmt.Errorf("cluster: shard %d returned %d container results, want %d", sh.idx, got, len(sh.containers))
	}
	r.genMu.Lock()
	defer r.genMu.Unlock()
	if r.gen == 0 {
		r.gen = res.Generation
		return nil
	}
	if res.Generation != r.gen {
		return fmt.Errorf("cluster: shard %d replica generation %d diverges from scan generation %d",
			sh.idx, res.Generation, r.gen)
	}
	return nil
}

// advanceWorker moves the shard to the next worker on its failover walk —
// preferring the next *live* one — and requeues it. countAttempt selects
// whether this is a retry (true) or a dead-worker bounce (false). Returns
// false when the walk found no live worker and the caller should attempt
// in place.
func (r *scanRun) advanceWorker(sh *shardState, countAttempt bool) bool {
	c := r.c
	from := sh.worker()
	next := -1
	for i := 1; i <= len(sh.seq); i++ {
		cand := sh.seq[(sh.seqPos+i)%len(sh.seq)]
		if c.isAlive(cand) {
			next = sh.seqPos + i
			break
		}
	}
	if next < 0 {
		if !countAttempt {
			return false // nobody alive; attempt in place
		}
		next = sh.seqPos + 1 // retry marches the walk even through the dead
	}
	sh.seqPos = next
	sh.requeues++
	c.requeues.Add(1)
	c.met.Requeues.With().Inc()
	if sh.worker() != from {
		sh.reassigned++
		c.reassignments.Add(1)
		c.met.Reassignments.With().Inc()
	}
	r.queues[sh.worker()] <- sh
	return true
}

// terminate records a shard's terminal state exactly once.
func (r *scanRun) terminate(sh *shardState, st ShardOutcome, err error) {
	sh.status = st
	if err != nil {
		sh.err = err
	}
	if st == ShardDone {
		sh.err = nil
		r.c.shardsDone.Add(1)
		r.c.met.ShardsTotal.With(string(ShardDone)).Inc()
	} else {
		r.c.shardsFailed.Add(1)
		r.c.met.ShardsTotal.With(string(ShardFailed)).Inc()
	}
	r.pending.Done()
}
