package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// instantSleep makes retry backoff free in tests.
func instantSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// testConfig is the fast-retry coordinator config most tests use.
func testConfig() Config {
	return Config{
		ShardSize:    4,
		MaxAttempts:  4,
		RetryBackoff: time.Millisecond,
		Sleep:        instantSleep,
	}
}

// newInProcCluster builds n workers, each with its own replica cache (the
// worker-daemon topology: every node reconstructs worlds independently),
// wired through an in-process transport.
func newInProcCluster(t testing.TB, n int, cfg Config) (*Coordinator, *InProc) {
	t.Helper()
	workers := make([]*Worker, n)
	ids := make([]string, n)
	for i := range workers {
		ids[i] = fmt.Sprintf("worker-%d", i)
		workers[i] = NewWorker(ids[i], NewLocalWorlds(2))
	}
	tr := NewInProc(workers...)
	return NewCoordinator(cfg, tr, ids, nil), tr
}

// mustJSON renders findings for byte-level comparison.
func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"w2", "w0", "w1"}, 0)
	b := NewRing([]string{"w1", "w2", "w0"}, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("local|%s", ContainerName(i))
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q depends on worker insertion order", key)
		}
		seq := a.Sequence(key)
		if len(seq) != 3 {
			t.Fatalf("sequence of %q covers %d workers, want 3", key, len(seq))
		}
		if seq[0] != a.Owner(key) {
			t.Fatalf("sequence of %q starts at %q, owner is %q", key, seq[0], a.Owner(key))
		}
		seen := map[string]bool{}
		for _, w := range seq {
			if seen[w] {
				t.Fatalf("sequence of %q repeats %q", key, w)
			}
			seen[w] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"w0", "w1", "w2", "w3"}, 0)
	counts := map[string]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		counts[r.Owner("local|"+ContainerName(i))]++
	}
	for w, c := range counts {
		if c < n/8 || c > n/2 {
			t.Fatalf("worker %s owns %d/%d keys — virtual nodes not balancing", w, c, n)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Containers: 4}).Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if err := (Spec{Containers: 0}).Validate(); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if err := (Spec{Provider: "nope", Containers: 4}).Validate(); err == nil {
		t.Fatal("unknown provider accepted")
	}
	n := Spec{}.Normalize()
	if n.Provider != "local" || n.Seed != DefaultSeed || n.Tick != DefaultTick {
		t.Fatalf("normalize gave %+v", n)
	}
}

// TestClusterMatchesSingleNode is the differential suite at the heart of
// the byte-identity contract: for every worker count and partition layout,
// the merged cluster result must serialize to exactly the bytes the
// single-node scan serializes to.
func TestClusterMatchesSingleNode(t *testing.T) {
	spec := Spec{Provider: "local", Containers: 10}
	ref, refGen, err := SingleNode(spec, 2)
	if err != nil {
		t.Fatalf("single-node reference: %v", err)
	}
	refJSON := mustJSON(t, ref)

	for _, workers := range []int{1, 2, 3, 5} {
		for _, shardSize := range []int{1, 3, 32} {
			t.Run(fmt.Sprintf("workers=%d/shard=%d", workers, shardSize), func(t *testing.T) {
				cfg := testConfig()
				cfg.ShardSize = shardSize
				coord, _ := newInProcCluster(t, workers, cfg)
				res, err := coord.Scan(context.Background(), spec)
				if err != nil {
					t.Fatalf("cluster scan: %v", err)
				}
				if res.Partial {
					t.Fatalf("healthy cluster produced partial result: %+v", res.Shards)
				}
				if got := mustJSON(t, res.Findings); !bytes.Equal(got, refJSON) {
					t.Fatalf("cluster result diverges from single-node\n got: %.200s\nwant: %.200s", got, refJSON)
				}
				if res.Generation != refGen {
					t.Fatalf("replica generation %d, single-node %d", res.Generation, refGen)
				}
				covered := 0
				for _, st := range res.Shards {
					covered += st.Containers
					if st.Status != ShardDone || st.Attempts != 1 {
						t.Fatalf("healthy shard %+v", st)
					}
				}
				if covered != spec.Containers {
					t.Fatalf("shards cover %d containers, want %d", covered, spec.Containers)
				}
			})
		}
	}
}

// TestClusterProviderDifferential sweeps a masked commercial profile —
// partitioning must not interact with provider masking rules.
func TestClusterProviderDifferential(t *testing.T) {
	spec := Spec{Provider: "cc1", Containers: 6, Seed: 7}
	ref, _, err := SingleNode(spec, 0)
	if err != nil {
		t.Fatalf("single-node reference: %v", err)
	}
	coord, _ := newInProcCluster(t, 3, testConfig())
	res, err := coord.Scan(context.Background(), spec)
	if err != nil {
		t.Fatalf("cluster scan: %v", err)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, ref); !bytes.Equal(got, want) {
		t.Fatal("cc1 cluster result diverges from single-node")
	}
}

// TestClusterEpochDelta re-scans the same fleet at later ticks: workers
// must delta-advance their cached replicas (not rebuild) and stay
// byte-identical to fresh single-node scans at each tick.
func TestClusterEpochDelta(t *testing.T) {
	coord, _ := newInProcCluster(t, 2, testConfig())
	var lastGen uint64
	for _, tick := range []float64{30, 34, 41} {
		spec := Spec{Provider: "local", Containers: 6, Tick: tick}
		ref, _, err := SingleNode(spec, 0)
		if err != nil {
			t.Fatalf("single-node at tick %g: %v", tick, err)
		}
		res, err := coord.Scan(context.Background(), spec)
		if err != nil {
			t.Fatalf("cluster scan at tick %g: %v", tick, err)
		}
		if got, want := mustJSON(t, res.Findings), mustJSON(t, ref); !bytes.Equal(got, want) {
			t.Fatalf("tick %g: cluster result diverges from single-node", tick)
		}
		if res.Generation <= lastGen {
			t.Fatalf("tick %g: generation %d did not advance past %d", tick, res.Generation, lastGen)
		}
		lastGen = res.Generation
	}
	// The replicas were advanced in place: each worker still caches at most
	// one world for this spec identity.
	st := coord.Status()
	for _, w := range st.Workers {
		if w.ShardsDone == 0 {
			t.Fatalf("worker %s executed no shards across three ticks", w.ID)
		}
	}
}

// TestClusterRewindRejected: deterministic worlds only move forward.
func TestClusterRewindRejected(t *testing.T) {
	coord, _ := newInProcCluster(t, 1, testConfig())
	if _, err := coord.Scan(context.Background(), Spec{Containers: 2, Tick: 40}); err != nil {
		t.Fatalf("scan at tick 40: %v", err)
	}
	res, err := coord.Scan(context.Background(), Spec{Containers: 2, Tick: 35})
	if err == nil {
		t.Fatal("rewind scan succeeded")
	}
	if res == nil || !res.Partial {
		t.Fatalf("rewind scan should degrade to a partial/failed result, got %+v", res)
	}
}

// TestClusterPermanentWorkerLoss kills one worker *before* the scan: its
// shards must reassign along the ring walk and the merged result must
// still be byte-identical and complete.
func TestClusterPermanentWorkerLoss(t *testing.T) {
	spec := Spec{Provider: "local", Containers: 8}
	ref, _, err := SingleNode(spec, 0)
	if err != nil {
		t.Fatalf("single-node reference: %v", err)
	}
	cfg := testConfig()
	cfg.ShardSize = 2
	coord, tr := newInProcCluster(t, 3, cfg)

	// Pick a victim that owns at least one shard.
	victim := ""
	for _, sh := range coord.partition(spec) {
		victim = sh.worker()
		break
	}
	tr.Kill(victim)

	res, err := coord.Scan(context.Background(), spec)
	if err != nil {
		t.Fatalf("cluster scan with dead worker: %v", err)
	}
	if res.Partial {
		t.Fatalf("two live workers could not absorb the fleet: %+v", res.Shards)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, ref); !bytes.Equal(got, want) {
		t.Fatal("result after reassignment diverges from single-node")
	}
	st := coord.Status()
	if st.Reassignments == 0 {
		t.Fatal("no reassignments recorded despite a dead owner")
	}
	for _, w := range st.Workers {
		if w.ID == victim && w.Alive {
			t.Fatalf("victim %s still marked alive", victim)
		}
	}
}

// TestClusterAllWorkersDead: bounded retries must terminate with failed
// shards and a scan-level error — graceful degradation, not a hang.
func TestClusterAllWorkersDead(t *testing.T) {
	cfg := testConfig()
	cfg.MaxAttempts = 2
	coord, tr := newInProcCluster(t, 2, cfg)
	tr.Kill("worker-0")
	tr.Kill("worker-1")

	done := make(chan struct{})
	var res *FleetResult
	var err error
	go func() {
		res, err = coord.Scan(context.Background(), Spec{Containers: 4})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("scan against a fully dead cluster hung")
	}
	if err == nil {
		t.Fatal("scan against a fully dead cluster reported success")
	}
	if res == nil || !res.Partial {
		t.Fatalf("expected partial result envelope, got %+v", res)
	}
	for _, st := range res.Shards {
		if st.Status != ShardFailed || st.Error == "" {
			t.Fatalf("shard should be terminally failed with an error, got %+v", st)
		}
		if st.Attempts > cfg.MaxAttempts {
			t.Fatalf("shard exceeded MaxAttempts: %+v", st)
		}
	}
}

// TestClusterRetryBudget: with a generous attempt bound, the
// deadline-aware retry budget is what terminates a shard facing a
// permanently failing worker.
func TestClusterRetryBudget(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	cfg := Config{
		ShardSize:    4,
		MaxAttempts:  100,
		RetryBackoff: 400 * time.Millisecond,
		RetryBudget:  time.Second,
		Now:          clock.Now,
		Sleep:        clock.Sleep,
	}
	tr := &failingTransport{err: errors.New("boom")}
	coord := NewCoordinator(cfg, tr, []string{"w0"}, nil)
	res, err := coord.Scan(context.Background(), Spec{Containers: 2})
	if err == nil {
		t.Fatal("permanently failing worker yielded success")
	}
	if !res.Partial {
		t.Fatal("result not marked partial")
	}
	st := res.Shards[0]
	if st.Status != ShardFailed {
		t.Fatalf("shard status %q, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "retry budget") {
		t.Fatalf("terminal error should cite the retry budget, got %q", st.Error)
	}
	if st.Attempts >= cfg.MaxAttempts {
		t.Fatalf("budget should trip before MaxAttempts, took %d attempts", st.Attempts)
	}
}

// TestHeartbeatFailureDetection drives the probe loop directly with a fake
// clock: a worker is declared dead only after its last good beat ages past
// DeadAfter, and a successful probe revives it.
func TestHeartbeatFailureDetection(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	cfg := testConfig()
	cfg.HeartbeatEvery = 2 * time.Second
	cfg.DeadAfter = 6 * time.Second
	cfg.Now = clock.Now
	coord, tr := newInProcCluster(t, 2, cfg)

	coord.probeAll()
	for _, w := range coord.Status().Workers {
		if !w.Alive || w.LastBeatAgeSeconds != 0 {
			t.Fatalf("after clean probe: %+v", w)
		}
	}

	tr.Kill("worker-1")
	clock.advance(2 * time.Second)
	coord.probeAll() // within grace: still alive
	if st := statusOf(t, coord, "worker-1"); !st.Alive {
		t.Fatal("worker-1 declared dead inside the DeadAfter grace window")
	}
	clock.advance(8 * time.Second)
	coord.probeAll() // past deadline: dead
	if st := statusOf(t, coord, "worker-1"); st.Alive {
		t.Fatal("worker-1 still alive after its beat aged past DeadAfter")
	}
	if st := statusOf(t, coord, "worker-0"); !st.Alive {
		t.Fatal("healthy worker-0 collaterally declared dead")
	}

	tr.Revive("worker-1")
	clock.advance(2 * time.Second)
	coord.probeAll()
	if st := statusOf(t, coord, "worker-1"); !st.Alive {
		t.Fatal("worker-1 not revived by a successful probe")
	}
}

// TestCoordinatorStartStop exercises the real ticker loop briefly.
func TestCoordinatorStartStop(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatEvery = 5 * time.Millisecond
	coord, _ := newInProcCluster(t, 2, cfg)
	coord.Start()
	time.Sleep(30 * time.Millisecond)
	coord.Stop()
	coord.Stop() // idempotent
	for _, w := range coord.Status().Workers {
		if w.LastBeatAgeSeconds < 0 {
			t.Fatalf("heartbeat loop never probed %s", w.ID)
		}
	}
}

// TestNodeStatus covers the role envelope the HTTP surface serves.
func TestNodeStatus(t *testing.T) {
	if st := NewStandaloneNode().Status(); st.Role != RoleStandalone || st.Worker != nil || st.Cluster != nil {
		t.Fatalf("standalone status %+v", st)
	}
	w := NewWorker("w0", NewLocalWorlds(0))
	if st := NewWorkerNode(w).Status(); st.Role != RoleWorker || st.Worker == nil || st.Worker.WorkerID != "w0" {
		t.Fatalf("worker status %+v", st)
	}
	coord, _ := newInProcCluster(t, 2, testConfig())
	if st := NewCoordinatorNode(coord).Status(); st.Role != RoleCoordinator || st.Cluster == nil || len(st.Cluster.Workers) != 2 {
		t.Fatalf("coordinator status %+v", st)
	}
	var nilNode *Node
	if nilNode.Role() != RoleStandalone {
		t.Fatal("nil node should read as standalone")
	}
}

// TestLocalWorldsEviction: the replica cache is bounded LRU.
func TestLocalWorldsEviction(t *testing.T) {
	lw := NewLocalWorlds(2)
	for i := 1; i <= 3; i++ {
		if _, err := lw.Fleet(Spec{Containers: i}); err != nil {
			t.Fatalf("fleet %d: %v", i, err)
		}
	}
	if got := lw.Len(); got != 2 {
		t.Fatalf("cache holds %d worlds, cap 2", got)
	}
}

// TestSharedWorldsMismatch: the shared topology rejects foreign specs.
func TestSharedWorldsMismatch(t *testing.T) {
	w, err := BuildFleetWorld(Spec{Containers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSharedWorlds(w)
	if _, err := sw.Fleet(Spec{Containers: 2}); err != nil {
		t.Fatalf("matching spec rejected: %v", err)
	}
	if _, err := sw.Fleet(Spec{Containers: 3}); err == nil {
		t.Fatal("foreign spec accepted by shared world")
	}
}

// TestWorkerExecShardErrors covers worker-side validation.
func TestWorkerExecShardErrors(t *testing.T) {
	w := NewWorker("w0", NewLocalWorlds(0))
	if _, err := w.ExecShard(context.Background(), &ShardRequest{Spec: Spec{Containers: 0}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := w.ExecShard(context.Background(), &ShardRequest{
		Spec: Spec{Containers: 2}, Containers: []int{5},
	}); err == nil {
		t.Fatal("out-of-range container index accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.ExecShard(ctx, &ShardRequest{Spec: Spec{Containers: 2}, Containers: []int{0}}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// fakeClock is a mutable wall clock whose Sleep advances time instead of
// waiting — retry budget tests run in microseconds of real time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.advance(d)
	return ctx.Err()
}

// failingTransport fails every call — the permanently dead fleet.
type failingTransport struct{ err error }

func (f *failingTransport) ExecShard(context.Context, string, *ShardRequest) (*ShardResult, error) {
	return nil, f.err
}

func (f *failingTransport) Ping(context.Context, string) (*Heartbeat, error) {
	return nil, f.err
}

func statusOf(t *testing.T, c *Coordinator, id string) WorkerStatus {
	t.Helper()
	for _, w := range c.Status().Workers {
		if w.ID == id {
			return w
		}
	}
	t.Fatalf("worker %s not in status", id)
	return WorkerStatus{}
}
