package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Transport carries coordinator→worker calls. Implementations must return
// an error (not hang forever) when the worker is unreachable; the
// coordinator layers per-attempt timeouts, retry budgets, and chaos
// injection on top.
type Transport interface {
	// ExecShard delivers a shard to the worker and returns its result.
	ExecShard(ctx context.Context, workerID string, req *ShardRequest) (*ShardResult, error)
	// Ping probes the worker for liveness.
	Ping(ctx context.Context, workerID string) (*Heartbeat, error)
}

// ErrWorkerDown is returned by transports when the target worker is
// unknown, killed, or unreachable.
var ErrWorkerDown = errors.New("cluster: worker down")

// InProc wires coordinator and workers in one process: calls are direct
// method invocations. Kill simulates a worker crash — subsequent calls
// fail with ErrWorkerDown — and Revive undoes it; both may race a scan,
// which is exactly what the mid-scan loss tests exercise.
type InProc struct {
	mu      sync.RWMutex
	workers map[string]*Worker
	dead    map[string]bool
}

// NewInProc builds an in-process transport over the given workers.
func NewInProc(workers ...*Worker) *InProc {
	t := &InProc{workers: make(map[string]*Worker), dead: make(map[string]bool)}
	for _, w := range workers {
		t.workers[w.ID()] = w
	}
	return t
}

// Kill makes the worker unreachable (simulated crash).
func (t *InProc) Kill(workerID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dead[workerID] = true
}

// Revive brings a killed worker back.
func (t *InProc) Revive(workerID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.dead, workerID)
}

func (t *InProc) worker(id string) (*Worker, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.dead[id] {
		return nil, fmt.Errorf("%w: %s (killed)", ErrWorkerDown, id)
	}
	w, ok := t.workers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s (unknown)", ErrWorkerDown, id)
	}
	return w, nil
}

// ExecShard implements Transport.
func (t *InProc) ExecShard(ctx context.Context, workerID string, req *ShardRequest) (*ShardResult, error) {
	w, err := t.worker(workerID)
	if err != nil {
		return nil, err
	}
	return w.ExecShard(ctx, req)
}

// Ping implements Transport.
func (t *InProc) Ping(_ context.Context, workerID string) (*Heartbeat, error) {
	w, err := t.worker(workerID)
	if err != nil {
		return nil, err
	}
	return w.Heartbeat(), nil
}
