// Package cluster turns leaksd's single-node fleet scans into a
// fault-tolerant coordinator/worker cluster. The paper's threat model is
// cloud scale — five commercial providers, thousands of co-resident
// containers per datacenter — and engine.FleetValidate batches a fleet
// pass on one node; this package partitions that pass across N worker
// daemons and keeps the engine's byte-identity guarantee across the
// partition boundary: the merged cluster result is byte-identical to the
// uninterrupted single-node scan, at every worker count, under every
// partition layout, and across worker loss mid-scan.
//
// The design rests on the substrate's determinism contract (ARCHITECTURE.md):
// a fleet world is a pure function of its Spec (provider, seed, container
// count, observation tick), so the coordinator never ships worlds — it
// ships the Spec plus the target tick, and each worker advances its own
// deterministic replica by the *delta* (internal/kernel generation
// counters confirm convergence: every shard result carries the replica's
// generation, and the coordinator rejects divergent shards). Within a
// replica, the incremental engine re-renders only the paths whose
// subsystem epochs moved, exactly as on a single node.
//
// Partitioning is consistent hashing on (container mount name, provider):
// each container hashes to a point on a ring of virtual worker nodes, the
// per-worker batches are chunked into bounded shards, and every shard
// carries a deterministic failover sequence (the ring walk from its hash
// point). Robustness is by construction:
//
//   - workers heartbeat; the coordinator marks a worker dead when its last
//     beat is older than the deadline (DeadAfter) and routes around it;
//   - a failed or timed-out shard call is requeued with exponential
//     backoff to the next live worker on its ring walk (a reassignment);
//   - retries are bounded by attempts *and* a deadline-aware retry budget,
//     so a permanently failing shard terminates instead of retrying
//     forever — the scan degrades gracefully to a partial result with
//     per-shard status in the response envelope;
//   - shard execution is idempotent (validating a frozen world is a pure
//     read), so duplicated deliveries and lost replies — the one-way
//     partition halves — are harmless.
//
// Inter-node links are fault-injected through chaos.Net (message drop,
// delay/jitter, duplication, one-way partitions) from seeded split RNG
// streams, so every failure scenario is deterministic and replayable; see
// WithChaos.
//
// Two transports: InProc wires coordinator and workers in one process
// (tests, benchmarks, and the scaling harness), HTTPTransport drives the
// /v1/cluster/shards and /v1/cluster/ping endpoints of remote leaksd
// worker daemons (leaksd -role=worker).
package cluster
