package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over worker IDs with virtual nodes.
// Container keys — "provider|mount-name" — hash onto the ring and belong
// to the first worker point clockwise; adding or removing one worker only
// moves the keys adjacent to its points, so recurring fleet scans keep
// most containers on the worker whose replica engine already has their
// findings cached. The walk order from a key's point doubles as the key's
// deterministic failover sequence.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	workers  []string
}

type ringPoint struct {
	hash   uint64
	worker string
}

// DefaultReplicas is the virtual-node count per worker: enough that a
// handful of workers split a fleet within a few percent of evenly.
const DefaultReplicas = 64

// NewRing builds a ring over the worker IDs (replicas <= 0 selects
// DefaultReplicas). Worker order does not matter; the ring is a pure
// function of the ID set.
func NewRing(workers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		replicas: replicas,
		points:   make([]ringPoint, 0, len(workers)*replicas),
		workers:  append([]string(nil), workers...),
	}
	sort.Strings(r.workers)
	for _, w := range r.workers {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", w, i)), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// Workers returns the ring's worker IDs in sorted order.
func (r *Ring) Workers() []string { return r.workers }

// Owner returns the worker owning the key (the first point clockwise from
// the key's hash).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].worker
}

// Sequence returns the key's deterministic failover order: every distinct
// worker in ring-walk order starting at the key's point. The first entry
// is Owner(key); a shard whose attempt on sequence[i] fails moves to
// sequence[i+1] (mod), so reassignment is as stable as ownership.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(r.workers))
	out := make([]string, 0, len(r.workers))
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < len(r.workers); i++ {
		w := r.points[(start+i)%len(r.points)].worker
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// search finds the index of the first point at or clockwise of the key.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// KeyHash exposes the ring's hash function for consumers that need
// placement decisions consistent with ring ownership without a full ring —
// the policy canary controller ranks a provider's containers by
// KeyHash("provider|name") to pick its k% canary set, so the same
// containers that would land together on a worker also enter a canary
// together, and the set is stable as the fleet grows.
func KeyHash(key string) uint64 { return ringHash(key) }

// ringHash is FNV-64a (the same family the chaos seed splitter uses)
// finished with a splitmix64-style avalanche. Raw FNV of short,
// similar strings — "w0#17", "local|tenant-00042" — clusters badly in the
// high bits, which is exactly where ring placement looks; the finalizer
// diffuses every input bit across the word, and stays dependency-free.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
