package perfcount

// MonitorState is a point-in-time capture of a Monitor for the world
// snapshot machinery. Groups created after the capture are dropped on
// Restore; groups that were removed in between are recreated with their
// exact accumulated counters (CreateGroup alone would zero them).
type MonitorState struct {
	groups        map[string]group // value copies: counters + enabled
	disabled      bool
	switchCost    float64
	interSwitches uint64
	intraSwitches uint64
}

// Snapshot captures the monitor's mutable state.
func (m *Monitor) Snapshot() *MonitorState {
	s := &MonitorState{
		groups:        make(map[string]group, len(m.groups)),
		disabled:      m.disabled,
		switchCost:    m.switchCost,
		interSwitches: m.InterSwitches,
		intraSwitches: m.IntraSwitches,
	}
	for name, g := range m.groups {
		s.groups[name] = *g
	}
	return s
}

// Restore rewinds the monitor to the captured state.
func (m *Monitor) Restore(s *MonitorState) {
	for name := range m.groups {
		if _, ok := s.groups[name]; !ok {
			delete(m.groups, name)
		}
	}
	for name, saved := range s.groups {
		g, ok := m.groups[name]
		if !ok {
			if m.groups == nil {
				m.groups = make(map[string]*group)
			}
			g = &group{}
			m.groups[name] = g
		}
		*g = saved
	}
	m.disabled = s.disabled
	m.switchCost = s.switchCost
	m.InterSwitches = s.interSwitches
	m.IntraSwitches = s.intraSwitches
}
