// Package perfcount models the Linux perf_event subsystem at the granularity
// the paper's defense needs: per-cgroup accounting of retired instructions,
// CPU cycles, cache misses/references, and branch misses/references.
//
// The power-based namespace (internal/powerns) creates one accounting group
// per container — the paper's "perf_event cgroup" with owner TASK_TOMBSTONE —
// and reads accumulated counters on every virtualized RAPL read. The
// UnixBench overhead reproduction (Table III) additionally uses this
// package's context-switch cost model: switching the CPU between tasks of
// *different* perf cgroups requires saving/restoring counter state, which is
// the mechanism the paper blames for the 61.5% pipe-based context-switch
// overhead at one parallel copy (inter-cgroup switches) collapsing to 1.6%
// at eight copies (mostly intra-cgroup switches).
package perfcount

import "fmt"

// Counters is a set of accumulated hardware event counts. Counts are held as
// float64 because the simulator integrates fractional expected counts over
// continuous time steps; consumers that expose them through pseudo-files
// truncate to integers at the presentation layer.
type Counters struct {
	Instructions float64 // retired instructions
	Cycles       float64 // unhalted core cycles
	CacheMisses  float64 // LLC misses
	CacheRefs    float64 // LLC references
	BranchMisses float64 // mispredicted branches
	BranchRefs   float64 // retired branches
}

// Add accumulates d into c.
func (c *Counters) Add(d Counters) {
	c.Instructions += d.Instructions
	c.Cycles += d.Cycles
	c.CacheMisses += d.CacheMisses
	c.CacheRefs += d.CacheRefs
	c.BranchMisses += d.BranchMisses
	c.BranchRefs += d.BranchRefs
}

// Sub returns c - prev, the delta between two snapshots of an accumulating
// counter set.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Instructions: c.Instructions - prev.Instructions,
		Cycles:       c.Cycles - prev.Cycles,
		CacheMisses:  c.CacheMisses - prev.CacheMisses,
		CacheRefs:    c.CacheRefs - prev.CacheRefs,
		BranchMisses: c.BranchMisses - prev.BranchMisses,
		BranchRefs:   c.BranchRefs - prev.BranchRefs,
	}
}

// CacheMissRate returns CM/C, the per-cycle cache miss rate the paper feeds
// into the core power model (Formula 2). It is 0 when no cycles elapsed.
func (c Counters) CacheMissRate() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.CacheMisses / c.Cycles
}

// BranchMissRate returns BM/C, the per-cycle branch miss rate of Formula 2.
func (c Counters) BranchMissRate() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.BranchMisses / c.Cycles
}

// Rates is a per-second event rate vector; it is the microarchitectural
// signature of a running workload.
type Rates struct {
	Instructions float64
	Cycles       float64
	CacheMisses  float64
	CacheRefs    float64
	BranchMisses float64
	BranchRefs   float64
}

// Scale converts rates into counts accumulated over dt seconds.
func (r Rates) Scale(dt float64) Counters {
	return Counters{
		Instructions: r.Instructions * dt,
		Cycles:       r.Cycles * dt,
		CacheMisses:  r.CacheMisses * dt,
		CacheRefs:    r.CacheRefs * dt,
		BranchMisses: r.BranchMisses * dt,
		BranchRefs:   r.BranchRefs * dt,
	}
}

// Plus returns the element-wise sum of two rate vectors, used to aggregate
// the activity of several tasks sharing a cgroup or host.
func (r Rates) Plus(o Rates) Rates {
	return Rates{
		Instructions: r.Instructions + o.Instructions,
		Cycles:       r.Cycles + o.Cycles,
		CacheMisses:  r.CacheMisses + o.CacheMisses,
		CacheRefs:    r.CacheRefs + o.CacheRefs,
		BranchMisses: r.BranchMisses + o.BranchMisses,
		BranchRefs:   r.BranchRefs + o.BranchRefs,
	}
}

// Times returns the rate vector scaled by k, used to model duty cycles and
// core-share throttling.
func (r Rates) Times(k float64) Rates {
	return Rates{
		Instructions: r.Instructions * k,
		Cycles:       r.Cycles * k,
		CacheMisses:  r.CacheMisses * k,
		CacheRefs:    r.CacheRefs * k,
		BranchMisses: r.BranchMisses * k,
		BranchRefs:   r.BranchRefs * k,
	}
}

// DefaultSwitchCost is the modeled CPU time, in seconds, of one
// inter-cgroup context switch while perf accounting is enabled: the kernel
// must disable, save, restore, and re-enable the event set. The value is
// calibrated so the UnixBench pipe-based context-switch benchmark reproduces
// the paper's Table III overhead shape.
const DefaultSwitchCost = 2.6e-6

// Monitor is the per-host perf_event accounting state. The zero value is an
// enabled monitor with no groups; use NewMonitor for an explicit constructor.
type Monitor struct {
	groups     map[string]*group
	disabled   bool
	switchCost float64

	// InterSwitches and IntraSwitches count observed context switches by
	// whether they crossed a perf-cgroup boundary; the Table III harness
	// reads them to report where overhead came from.
	InterSwitches uint64
	IntraSwitches uint64
}

type group struct {
	counters Counters
	enabled  bool
}

// NewMonitor returns an enabled Monitor with the default context-switch
// cost model.
func NewMonitor() *Monitor {
	return &Monitor{switchCost: DefaultSwitchCost}
}

// SetSwitchCost overrides the per-inter-cgroup-switch cost in seconds.
func (m *Monitor) SetSwitchCost(s float64) { m.switchCost = s }

// Disable turns off all accounting; Account becomes a no-op and context
// switches are free. This models the unmodified kernel of Table III's
// "Original" column.
func (m *Monitor) Disable() { m.disabled = true }

// Enable re-enables accounting.
func (m *Monitor) Enable() { m.disabled = false }

// Enabled reports whether accounting is active.
func (m *Monitor) Enabled() bool { return !m.disabled }

// CreateGroup registers a perf accounting group (one per container in the
// power-based namespace). Creating an existing group resets its counters,
// mirroring a namespace being torn down and recreated.
func (m *Monitor) CreateGroup(name string) {
	if m.groups == nil {
		m.groups = make(map[string]*group)
	}
	m.groups[name] = &group{enabled: true}
}

// RemoveGroup deletes a group and its accumulated counters.
func (m *Monitor) RemoveGroup(name string) {
	delete(m.groups, name)
}

// Account charges the event deltas to the named group. Unknown groups are
// ignored (the host may run tasks outside any power namespace), as is
// accounting while the monitor is disabled.
func (m *Monitor) Account(name string, d Counters) {
	if m.disabled {
		return
	}
	g, ok := m.groups[name]
	if !ok || !g.enabled {
		return
	}
	g.counters.Add(d)
}

// Read returns the accumulated counters of the named group. The boolean is
// false if the group does not exist.
func (m *Monitor) Read(name string) (Counters, bool) {
	g, ok := m.groups[name]
	if !ok {
		return Counters{}, false
	}
	return g.counters, true
}

// Groups returns the number of registered groups.
func (m *Monitor) Groups() int { return len(m.groups) }

// ContextSwitch records a context switch between tasks belonging to the two
// named groups and returns the modeled CPU time cost of the switch beyond a
// baseline switch. Intra-group switches and switches with accounting
// disabled cost nothing extra.
func (m *Monitor) ContextSwitch(from, to string) float64 {
	if m.disabled {
		return 0
	}
	if from == to {
		m.IntraSwitches++
		return 0
	}
	m.InterSwitches++
	return m.switchCost
}

// String summarizes the monitor for debugging.
func (m *Monitor) String() string {
	state := "enabled"
	if m.disabled {
		state = "disabled"
	}
	return fmt.Sprintf("perfcount.Monitor{%s, groups=%d, inter=%d, intra=%d}",
		state, len(m.groups), m.InterSwitches, m.IntraSwitches)
}
