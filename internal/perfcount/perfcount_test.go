package perfcount

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCountersAddSub(t *testing.T) {
	var c Counters
	c.Add(Counters{Instructions: 100, Cycles: 200, CacheMisses: 5, BranchMisses: 2})
	c.Add(Counters{Instructions: 50, Cycles: 100, CacheRefs: 10, BranchRefs: 20})
	if c.Instructions != 150 || c.Cycles != 300 || c.CacheMisses != 5 || c.CacheRefs != 10 {
		t.Fatalf("unexpected accumulation: %+v", c)
	}
	d := c.Sub(Counters{Instructions: 100, Cycles: 200})
	if d.Instructions != 50 || d.Cycles != 100 {
		t.Fatalf("unexpected delta: %+v", d)
	}
}

func TestMissRates(t *testing.T) {
	c := Counters{Cycles: 1000, CacheMisses: 10, BranchMisses: 5}
	if got := c.CacheMissRate(); got != 0.01 {
		t.Fatalf("cache miss rate = %g, want 0.01", got)
	}
	if got := c.BranchMissRate(); got != 0.005 {
		t.Fatalf("branch miss rate = %g, want 0.005", got)
	}
	var zero Counters
	if zero.CacheMissRate() != 0 || zero.BranchMissRate() != 0 {
		t.Fatal("zero-cycle rates must be 0")
	}
}

func TestRatesScalePlusTimes(t *testing.T) {
	r := Rates{Instructions: 1e9, Cycles: 2e9, CacheMisses: 1e6, CacheRefs: 1e7, BranchMisses: 1e5, BranchRefs: 1e8}
	c := r.Scale(0.5)
	if c.Instructions != 5e8 || c.Cycles != 1e9 || c.CacheMisses != 5e5 {
		t.Fatalf("scale: %+v", c)
	}
	sum := r.Plus(r)
	if sum.Instructions != 2e9 || sum.BranchRefs != 2e8 {
		t.Fatalf("plus: %+v", sum)
	}
	half := r.Times(0.5)
	if half.Cycles != 1e9 || half.CacheRefs != 5e6 {
		t.Fatalf("times: %+v", half)
	}
}

func TestScaleLinearity(t *testing.T) {
	// Property: Scale(a+b) == Scale(a) + Scale(b) for positive durations.
	f := func(ips, cyc float64, a, b uint8) bool {
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(math.Abs(v), 1e12)
		}
		r := Rates{Instructions: bound(ips), Cycles: bound(cyc)}
		da, db := float64(a)+0.5, float64(b)+0.5
		var whole Counters
		whole.Add(r.Scale(da))
		whole.Add(r.Scale(db))
		one := r.Scale(da + db)
		return math.Abs(whole.Instructions-one.Instructions) < 1e-6*(1+one.Instructions) &&
			math.Abs(whole.Cycles-one.Cycles) < 1e-6*(1+one.Cycles)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorGroupAccounting(t *testing.T) {
	m := NewMonitor()
	m.CreateGroup("c1")
	m.CreateGroup("c2")
	m.Account("c1", Counters{Instructions: 100})
	m.Account("c2", Counters{Instructions: 7})
	m.Account("ghost", Counters{Instructions: 999}) // unknown group ignored

	c1, ok := m.Read("c1")
	if !ok || c1.Instructions != 100 {
		t.Fatalf("c1 = %+v ok=%v", c1, ok)
	}
	c2, _ := m.Read("c2")
	if c2.Instructions != 7 {
		t.Fatalf("c2 = %+v", c2)
	}
	if _, ok := m.Read("ghost"); ok {
		t.Fatal("ghost group should not exist")
	}
	if m.Groups() != 2 {
		t.Fatalf("groups = %d, want 2", m.Groups())
	}
}

func TestMonitorDisableStopsAccounting(t *testing.T) {
	m := NewMonitor()
	m.CreateGroup("c1")
	m.Disable()
	if m.Enabled() {
		t.Fatal("monitor should be disabled")
	}
	m.Account("c1", Counters{Instructions: 100})
	c, _ := m.Read("c1")
	if c.Instructions != 0 {
		t.Fatal("disabled monitor must not account")
	}
	if cost := m.ContextSwitch("a", "b"); cost != 0 {
		t.Fatalf("disabled switch cost = %g, want 0", cost)
	}
	m.Enable()
	m.Account("c1", Counters{Instructions: 1})
	c, _ = m.Read("c1")
	if c.Instructions != 1 {
		t.Fatal("re-enabled monitor must account")
	}
}

func TestCreateGroupResetsCounters(t *testing.T) {
	m := NewMonitor()
	m.CreateGroup("c")
	m.Account("c", Counters{Cycles: 42})
	m.CreateGroup("c")
	c, _ := m.Read("c")
	if c.Cycles != 0 {
		t.Fatal("recreating a group must reset counters")
	}
}

func TestRemoveGroup(t *testing.T) {
	m := NewMonitor()
	m.CreateGroup("c")
	m.RemoveGroup("c")
	if _, ok := m.Read("c"); ok {
		t.Fatal("removed group should not be readable")
	}
	m.RemoveGroup("never-existed") // must not panic
}

func TestContextSwitchCostModel(t *testing.T) {
	m := NewMonitor()
	if cost := m.ContextSwitch("a", "a"); cost != 0 {
		t.Fatalf("intra-group switch cost = %g, want 0", cost)
	}
	if cost := m.ContextSwitch("a", "b"); cost != DefaultSwitchCost {
		t.Fatalf("inter-group switch cost = %g, want %g", cost, DefaultSwitchCost)
	}
	if m.InterSwitches != 1 || m.IntraSwitches != 1 {
		t.Fatalf("switch counters inter=%d intra=%d", m.InterSwitches, m.IntraSwitches)
	}
	m.SetSwitchCost(1e-3)
	if cost := m.ContextSwitch("a", "b"); cost != 1e-3 {
		t.Fatalf("overridden cost = %g", cost)
	}
}

func TestMonitorString(t *testing.T) {
	m := NewMonitor()
	m.CreateGroup("x")
	if s := m.String(); s == "" {
		t.Fatal("String should be non-empty")
	}
	m.Disable()
	if s := m.String(); s == "" {
		t.Fatal("String should be non-empty when disabled")
	}
}
