// Package loadgen is the deterministic load generator behind cmd/leaksload:
// it drives an http.Handler — leaksd's in-process handler or a proxy to a
// remote daemon — with a seeded, weighted endpoint mix at a target rate and
// reports latency quantiles, status counts, and throughput.
//
// Determinism is the design constraint, matching the rest of the
// repository: the endpoint sequence each worker issues is a pure function
// of (Seed, worker index) via internal/fastrand, so two runs against the
// same state make the same requests in the same order. Load generation is
// open-loop when RPS is set (requests are due on a fixed schedule and
// lateness is not forgiven — queueing delay shows up as latency, the
// honest way to measure a saturated server) and closed-loop when it is not
// (each worker fires as fast as the handler returns).
//
// The measurement loop is allocation-conscious so the generator does not
// drown the signal it measures: each worker reuses one http.Request per
// mix endpoint and one response writer whose header map persists across
// requests, the way a keep-alive connection's would.
package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/fastrand"
	"repro/internal/telemetry"
)

// Endpoint is one weighted entry of the request mix.
type Endpoint struct {
	// Path is the request target, e.g. "/v1/results?limit=50".
	Path string
	// Weight is the relative draw frequency (must be > 0).
	Weight int
}

// Config tunes one load run.
type Config struct {
	// Mix is the weighted endpoint set (required).
	Mix []Endpoint
	// Requests is the total request budget. 0 means run until Duration.
	Requests int
	// Duration bounds a run without a request budget (ignored when
	// Requests > 0).
	Duration time.Duration
	// RPS is the open-loop target rate across all workers (0 = closed
	// loop).
	RPS float64
	// Concurrency is the worker count (default 1).
	Concurrency int
	// Seed seeds the per-worker endpoint-mix streams (default 1).
	Seed int64
	// Revalidate sends each request with If-None-Match set to the ETag of
	// the worker's previous response from the same endpoint — the
	// steady-state poller shape that exercises the 304 path.
	Revalidate bool
	// Registry, when non-nil, receives the loadgen_request_seconds
	// histogram and loadgen_requests_total counters. Use a fresh registry
	// per run; families register once.
	Registry *telemetry.Registry
}

// Result summarizes one run.
type Result struct {
	Requests  int64
	Status200 int64
	Status304 int64
	// Other counts every remaining status (4xx/5xx — failures under a
	// correct mix).
	Other int64
	// Bytes is the summed response-body size.
	Bytes   int64
	Elapsed time.Duration
	// RPS is Requests / Elapsed.
	RPS float64
	// Latency quantiles over every request (handler wall time).
	P50, P90, P99, Max time.Duration
}

func (r Result) String() string {
	return fmt.Sprintf("%d requests in %v (%.0f req/s): 200=%d 304=%d other=%d p50=%v p90=%v p99=%v max=%v",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.RPS,
		r.Status200, r.Status304, r.Other, r.P50, r.P90, r.P99, r.Max)
}

// Run drives h with cfg's mix and returns the aggregate result. It stops
// when the request budget is spent, the duration elapses, or ctx is
// cancelled — whichever comes first.
func Run(ctx context.Context, h http.Handler, cfg Config) (Result, error) {
	if len(cfg.Mix) == 0 {
		return Result{}, fmt.Errorf("loadgen: empty endpoint mix")
	}
	total := 0
	for _, e := range cfg.Mix {
		if e.Weight <= 0 {
			return Result{}, fmt.Errorf("loadgen: endpoint %q has non-positive weight %d", e.Path, e.Weight)
		}
		total += e.Weight
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("loadgen: need Requests or Duration")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	var hist *telemetry.Histogram
	var c200, c304, cOther *telemetry.Counter
	if cfg.Registry != nil {
		hv := cfg.Registry.Histogram("loadgen_request_seconds",
			"Per-request handler latency.", telemetry.DefaultServingBuckets())
		cv := cfg.Registry.Counter("loadgen_requests_total",
			"Requests issued, by response status class.", "status")
		hist = hv.With()
		c200, c304, cOther = cv.With("200"), cv.With("304"), cv.With("other")
	}

	var (
		wg      sync.WaitGroup
		results = make([]workerResult, cfg.Concurrency)
	)
	deadline := time.Time{}
	if cfg.Requests <= 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runWorker(ctx, h, cfg, id, total, start, deadline,
				hist, c200, c304, cOther)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var out Result
	var samples []time.Duration
	for _, wr := range results {
		out.Requests += wr.requests
		out.Status200 += wr.s200
		out.Status304 += wr.s304
		out.Other += wr.other
		out.Bytes += wr.bytes
		samples = append(samples, wr.samples...)
	}
	out.Elapsed = elapsed
	if elapsed > 0 {
		out.RPS = float64(out.Requests) / elapsed.Seconds()
	}
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		out.P50 = quantile(samples, 0.50)
		out.P90 = quantile(samples, 0.90)
		out.P99 = quantile(samples, 0.99)
		out.Max = samples[len(samples)-1]
	}
	return out, ctx.Err()
}

// quantile reads the q-th quantile from sorted samples (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

type workerResult struct {
	requests, s200, s304, other, bytes int64
	samples                            []time.Duration
}

// runWorker issues worker id's slice of the request schedule: in budget
// mode the global requests k with k % Concurrency == id, in duration mode
// an unbounded local sequence. Open-loop pacing assigns global request k
// the due time start + k/RPS and never forgives lateness.
func runWorker(ctx context.Context, h http.Handler, cfg Config, id, totalWeight int,
	start time.Time, deadline time.Time,
	hist *telemetry.Histogram, c200, c304, cOther *telemetry.Counter) workerResult {

	rng := fastrand.New(cfg.Seed + int64(id)*1_000_003)
	// One reusable request per mix entry; the response writer's header map
	// persists across requests like a real connection's would.
	reqs := make([]*http.Request, len(cfg.Mix))
	for i, e := range cfg.Mix {
		reqs[i] = httptest.NewRequest(http.MethodGet, e.Path, nil)
	}
	lastETag := make([]string, len(cfg.Mix))
	w := &nullWriter{h: make(http.Header)}

	var wr workerResult
	if cfg.Requests > 0 {
		wr.samples = make([]time.Duration, 0, (cfg.Requests+cfg.Concurrency-1)/cfg.Concurrency)
	}
	for k := id; ; k += cfg.Concurrency {
		if cfg.Requests > 0 {
			if k >= cfg.Requests {
				return wr
			}
		} else if time.Now().After(deadline) {
			return wr
		}
		if ctx.Err() != nil {
			return wr
		}
		if cfg.RPS > 0 {
			due := start.Add(time.Duration(float64(k) / cfg.RPS * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}

		// Weighted endpoint draw — deterministic per (seed, worker).
		n := rng.Intn(totalWeight)
		ei := 0
		for n >= cfg.Mix[ei].Weight {
			n -= cfg.Mix[ei].Weight
			ei++
		}
		req := reqs[ei]
		if cfg.Revalidate {
			if lastETag[ei] != "" {
				req.Header["If-None-Match"] = []string{lastETag[ei]}
			} else {
				delete(req.Header, "If-None-Match")
			}
		}

		w.code = http.StatusOK
		w.n = 0
		t0 := time.Now()
		h.ServeHTTP(w, req)
		lat := time.Since(t0)

		wr.requests++
		wr.bytes += w.n
		wr.samples = append(wr.samples, lat)
		switch w.code {
		case http.StatusOK:
			wr.s200++
			if c200 != nil {
				c200.Inc()
			}
		case http.StatusNotModified:
			wr.s304++
			if c304 != nil {
				c304.Inc()
			}
		default:
			wr.other++
			if cOther != nil {
				cOther.Inc()
			}
		}
		if hist != nil {
			hist.Observe(lat.Seconds())
		}
		if cfg.Revalidate {
			if et := w.h.Get("Etag"); et != "" {
				lastETag[ei] = et
			}
		}
	}
}

// nullWriter counts body bytes and captures the status; its header map is
// reused across requests.
type nullWriter struct {
	h    http.Header
	code int
	n    int64
}

func (w *nullWriter) Header() http.Header  { return w.h }
func (w *nullWriter) WriteHeader(code int) { w.code = code }
func (w *nullWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
