package simclock

// ClockState is a point-in-time capture of a Clock for the world snapshot
// machinery. Ticker registrations are structural (rebuilt only when a world
// is rebuilt) and are not captured; the mutable state is the current time,
// the event sequence counter, and the pending event queue. *event values
// are immutable once pushed, so sharing them between the live queue and the
// capture is safe — Pop only drops references, never mutates an event.
type ClockState struct {
	now    float64
	seq    int
	events []*event
}

// Snapshot captures the clock's mutable state.
func (c *Clock) Snapshot() *ClockState {
	return &ClockState{
		now:    c.now,
		seq:    c.seq,
		events: append([]*event(nil), c.events...),
	}
}

// Restore rewinds the clock to the captured state. The restored queue is a
// fresh copy in the captured heap order (heap order is a property of the
// slice, so a copy of a valid heap is a valid heap).
func (c *Clock) Restore(s *ClockState) {
	c.now = s.now
	c.seq = s.seq
	c.events = append(c.events[:0:0], s.events...)
}
