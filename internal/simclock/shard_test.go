package simclock

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// phaseRecorder appends a tag to a shared, mutex-guarded log. The shard
// contract says shards never share state — this test deliberately violates
// that (with a lock) to observe execution structure.
type phaseRecorder struct {
	mu  *sync.Mutex
	log *[]string
	tag string
}

func (r phaseRecorder) Tick(now, dt float64) {
	r.mu.Lock()
	*r.log = append(*r.log, r.tag)
	r.mu.Unlock()
}

func newRecorded(workers int) (*Clock, *[]string) {
	c := New()
	c.SetWorkers(workers)
	var mu sync.Mutex
	log := []string{}
	c.OnTick(phaseRecorder{&mu, &log, "pre"})
	for s := 0; s < 3; s++ {
		c.OnShardTick(s, phaseRecorder{&mu, &log, fmt.Sprintf("s%d.a", s)})
		c.OnShardTick(s, phaseRecorder{&mu, &log, fmt.Sprintf("s%d.b", s)})
	}
	c.OnPostTick(phaseRecorder{&mu, &log, "post"})
	return c, &log
}

// TestShardPhaseStructure asserts the tick pipeline's phase ordering: the
// pre-phase ticker runs first, every shard ticker runs next (a before b
// within each shard), and the post-phase ticker runs last — at any worker
// count.
func TestShardPhaseStructure(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c, log := newRecorded(workers)
		c.Advance(1)
		got := *log
		if len(got) != 8 {
			t.Fatalf("workers=%d: %d ticks (%v), want 8", workers, len(got), got)
		}
		if got[0] != "pre" {
			t.Errorf("workers=%d: first tick %q, want pre", workers, got[0])
		}
		if got[7] != "post" {
			t.Errorf("workers=%d: last tick %q, want post", workers, got[7])
		}
		pos := map[string]int{}
		for i, tag := range got {
			pos[tag] = i
		}
		for s := 0; s < 3; s++ {
			a, b := fmt.Sprintf("s%d.a", s), fmt.Sprintf("s%d.b", s)
			if pos[a] >= pos[b] {
				t.Errorf("workers=%d: shard %d ran %q before %q", workers, s, b, a)
			}
		}
	}
}

// TestShardSerialOrderIsRegistrationOrder pins the serial schedule: with
// one worker the shards run in index order, so a single-worker clock is
// observationally identical to the pre-shard OnTick world.
func TestShardSerialOrderIsRegistrationOrder(t *testing.T) {
	c, log := newRecorded(1)
	c.Advance(1)
	want := "pre,s0.a,s0.b,s1.a,s1.b,s2.a,s2.b,post"
	if got := strings.Join(*log, ","); got != want {
		t.Fatalf("serial order %q, want %q", got, want)
	}
}

func TestOnShardTickPanicsOnNegativeShard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OnShardTick(-1, …) should panic")
		}
	}()
	New().OnShardTick(-1, TickerFunc(func(_, _ float64) {}))
}

// TestShardPanicPropagates asserts a panicking shard ticker surfaces to the
// Advance caller even when shards run on worker goroutines.
func TestShardPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := New()
		c.SetWorkers(workers)
		for s := 0; s < 4; s++ {
			s := s
			c.OnShardTick(s, TickerFunc(func(_, _ float64) {
				if s == 2 {
					panic("shard 2 exploded")
				}
			}))
		}
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("workers=%d: shard panic did not propagate", workers)
				}
			}()
			c.Advance(1)
		}()
	}
}

func TestSetWorkersResolvesZeroToAtLeastOne(t *testing.T) {
	c := New()
	c.SetWorkers(0)
	if c.Workers() < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0), want >= 1", c.Workers())
	}
}
