// Package simclock provides the deterministic simulated clock that drives
// the whole reproduction. Real time never leaks into the simulation: hosts,
// workloads, power models, attacks, and defenses all advance in lockstep via
// Clock.Advance, which makes every experiment in EXPERIMENTS.md exactly
// reproducible from its seed.
//
// The clock supports two cooperating mechanisms:
//
//   - Tickers: components registered with OnTick receive every time step and
//     integrate continuous state (energy counters, scheduler accounting).
//   - Events: one-shot callbacks scheduled at absolute simulated times
//     (attack launches, workload phase changes), dispatched in time order and,
//     for equal times, in scheduling order.
package simclock

import (
	"container/heap"
	"fmt"
)

// Ticker is implemented by components that integrate state over simulated
// time. Tick is called after the clock has advanced to now, with dt the size
// of the step just taken (dt > 0).
type Ticker interface {
	Tick(now, dt float64)
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(now, dt float64)

// Tick implements Ticker.
func (f TickerFunc) Tick(now, dt float64) { f(now, dt) }

type event struct {
	at  float64
	seq int
	fn  func(now float64)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Clock is a deterministic simulated clock. The zero value is ready to use
// and starts at time 0. Clock is not safe for concurrent use; the simulation
// is single-threaded by design so that runs are reproducible.
type Clock struct {
	now     float64
	tickers []Ticker
	events  eventQueue
	seq     int
}

// New returns a Clock starting at t=0 seconds.
func New() *Clock { return &Clock{} }

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// OnTick registers t to receive every subsequent time step. Tickers run in
// registration order.
func (c *Clock) OnTick(t Ticker) {
	c.tickers = append(c.tickers, t)
}

// At schedules fn to run when simulated time reaches at seconds. Scheduling
// in the past (at <= Now) fires on the next Advance. Events at the same time
// run in scheduling order, before tickers for the step that reaches them.
func (c *Clock) At(at float64, fn func(now float64)) {
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (c *Clock) After(d float64, fn func(now float64)) {
	if d < 0 {
		d = 0
	}
	c.At(c.now+d, fn)
}

// Advance moves simulated time forward by dt seconds, firing due events and
// then tickers once for the whole step. It panics on non-positive dt: a
// zero-length or backwards step is always a caller bug and would silently
// corrupt integrated quantities like energy counters.
func (c *Clock) Advance(dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("simclock: Advance(%g): step must be positive", dt))
	}
	target := c.now + dt
	for c.events.Len() > 0 && c.events[0].at <= target {
		e := heap.Pop(&c.events).(*event)
		if e.at > c.now {
			c.now = e.at
		}
		e.fn(c.now)
	}
	c.now = target
	for _, t := range c.tickers {
		t.Tick(c.now, dt)
	}
}

// Run advances the clock in uniform steps of dt until Now reaches until. The
// final step is truncated so the clock lands exactly on until.
func (c *Clock) Run(until, dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("simclock: Run with step %g: step must be positive", dt))
	}
	for c.now < until {
		step := dt
		if c.now+step > until {
			step = until - c.now
		}
		c.Advance(step)
	}
}

// Pending returns the number of not-yet-fired scheduled events, which tests
// use to assert that experiments drain their schedules.
func (c *Clock) Pending() int { return c.events.Len() }
