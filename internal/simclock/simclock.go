// Package simclock provides the deterministic simulated clock that drives
// the whole reproduction. Real time never leaks into the simulation: hosts,
// workloads, power models, attacks, and defenses all advance in lockstep via
// Clock.Advance, which makes every experiment in EXPERIMENTS.md exactly
// reproducible from its seed.
//
// The clock supports two cooperating mechanisms:
//
//   - Tickers: components registered with OnTick receive every time step and
//     integrate continuous state (energy counters, scheduler accounting).
//   - Events: one-shot callbacks scheduled at absolute simulated times
//     (attack launches, workload phase changes), dispatched in time order and,
//     for equal times, in scheduling order.
//
// # Sharded ticking
//
// A step optionally runs in three phases (see ARCHITECTURE.md, "tick
// pipeline"): serial pre-phase tickers (OnTick), then per-shard tickers
// (OnShardTick) — shards are mutually independent and may execute on worker
// goroutines when SetWorkers(n>1) — and finally serial post-phase tickers
// (OnPostTick). Within one shard, tickers still run strictly in
// registration order on a single goroutine.
//
// # Concurrency contract
//
// The phase split preserves the repo's byte-identity guarantee at any
// worker count because the parallelism never reorders observable work:
//
//   - every ticker runs exactly once per step with the same (now, dt);
//   - tickers registered on the same shard keep their registration order;
//   - tickers on different shards must not share mutable state (callers
//     guarantee this — in the cloud substrate a shard is one server, whose
//     scheduler/power/chaos state is disjoint from every other server's);
//   - pre- and post-phase tickers act as barriers: the pre-phase completes
//     before any shard starts, and every shard completes before the
//     post-phase begins, so cross-server readers (rack breakers) observe
//     all servers fully ticked, in a fixed serial order.
//
// Everything outside the shard phase — events, pre/post tickers, Advance
// itself — stays single-threaded, and with SetWorkers(1) (the default) the
// shard phase degrades to a plain serial loop in shard-index order.
package simclock

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// Ticker is implemented by components that integrate state over simulated
// time. Tick is called after the clock has advanced to now, with dt the size
// of the step just taken (dt > 0).
type Ticker interface {
	Tick(now, dt float64)
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func(now, dt float64)

// Tick implements Ticker.
func (f TickerFunc) Tick(now, dt float64) { f(now, dt) }

type event struct {
	at  float64
	seq int
	fn  func(now float64)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Clock is a deterministic simulated clock. The zero value is ready to use
// and starts at time 0. Clock is not safe for concurrent use: Advance, Run,
// At, and the registration methods must all be called from one goroutine.
// The only internal concurrency is the shard phase of a step (see the
// package comment's concurrency contract), and Advance joins all shard
// workers before returning, so callers always observe a quiescent clock.
type Clock struct {
	now     float64
	tickers []Ticker
	events  eventQueue
	seq     int

	// Shard phase state. shards[i] holds the tickers of shard i in
	// registration order; workers is the resolved worker count used to
	// fan shards out (1 = serial).
	shards  [][]Ticker
	post    []Ticker
	workers int
}

// New returns a Clock starting at t=0 seconds.
func New() *Clock { return &Clock{} }

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// OnTick registers t to receive every subsequent time step during the
// serial pre-phase. Pre-phase tickers run in registration order, before any
// shard ticker.
func (c *Clock) OnTick(t Ticker) {
	c.tickers = append(c.tickers, t)
}

// OnShardTick registers t on shard (a small non-negative index). All
// tickers of one shard run sequentially, in registration order, on a single
// goroutine; distinct shards may run concurrently when SetWorkers(n>1), so
// tickers on different shards must not share mutable state. The shard phase
// runs after every OnTick ticker and before every OnPostTick ticker.
func (c *Clock) OnShardTick(shard int, t Ticker) {
	if shard < 0 {
		panic(fmt.Sprintf("simclock: OnShardTick(%d): shard must be non-negative", shard))
	}
	for len(c.shards) <= shard {
		c.shards = append(c.shards, nil)
	}
	c.shards[shard] = append(c.shards[shard], t)
}

// OnPostTick registers t to run in the serial post-phase of every step,
// after all shards have completed. Post-phase tickers run in registration
// order and may safely read state written by any shard.
func (c *Clock) OnPostTick(t Ticker) {
	c.post = append(c.post, t)
}

// SetWorkers sets the worker count for the shard phase. n <= 0 resolves to
// GOMAXPROCS via the shared internal/parallel policy; n == 1 (the default)
// ticks shards serially in index order. The rendered output of a run is
// byte-identical at every worker count.
func (c *Clock) SetWorkers(n int) {
	c.workers = parallel.Workers(n)
}

// Workers reports the resolved shard-phase worker count (>= 1).
func (c *Clock) Workers() int {
	if c.workers < 1 {
		return 1
	}
	return c.workers
}

// At schedules fn to run when simulated time reaches at seconds. Scheduling
// in the past (at <= Now) fires on the next Advance. Events at the same time
// run in scheduling order, before tickers for the step that reaches them.
func (c *Clock) At(at float64, fn func(now float64)) {
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (c *Clock) After(d float64, fn func(now float64)) {
	if d < 0 {
		d = 0
	}
	c.At(c.now+d, fn)
}

// Advance moves simulated time forward by dt seconds, firing due events and
// then tickers once for the whole step. It panics on non-positive dt: a
// zero-length or backwards step is always a caller bug and would silently
// corrupt integrated quantities like energy counters.
func (c *Clock) Advance(dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("simclock: Advance(%g): step must be positive", dt))
	}
	target := c.now + dt
	for c.events.Len() > 0 && c.events[0].at <= target {
		e := heap.Pop(&c.events).(*event)
		if e.at > c.now {
			c.now = e.at
		}
		e.fn(c.now)
	}
	c.now = target
	// Phase 1: serial pre-phase (shared drivers, e.g. the flash-crowd
	// generator, whose RNG draws must happen once, in a fixed order).
	for _, t := range c.tickers {
		t.Tick(c.now, dt)
	}
	// Phase 2: shards. Each shard's tickers run in registration order on
	// one goroutine; shards are disjoint by contract, so fanning them out
	// cannot change any shard's computation.
	if len(c.shards) > 0 {
		if c.Workers() > 1 && len(c.shards) > 1 {
			c.tickShardsParallel(dt)
		} else {
			for _, shard := range c.shards {
				for _, t := range shard {
					t.Tick(c.now, dt)
				}
			}
		}
	}
	// Phase 3: serial post-phase (cross-shard readers, e.g. rack breakers
	// summing server power in fixed order).
	for _, t := range c.post {
		t.Tick(c.now, dt)
	}
}

// tickShardsParallel fans the shard phase out over c.workers goroutines
// using a work-stealing cursor, then joins them all before returning. It is
// deliberately hand-rolled instead of reusing parallel.ForEach: Advance is
// the innermost loop of every experiment (~10^5 calls per world), and the
// generic helper's per-call result slice would show up as per-tick garbage.
// A panic on any shard is captured and re-thrown on the caller's goroutine
// after all workers have stopped, mirroring internal/parallel's policy.
func (c *Clock) tickShardsParallel(dt float64) {
	w := c.workers
	if w > len(c.shards) {
		w = len(c.shards)
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		pmu    sync.Mutex
		pval   any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = r
					}
					pmu.Unlock()
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(c.shards) {
					return
				}
				for _, t := range c.shards[i] {
					t.Tick(c.now, dt)
				}
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}

// Run advances the clock in uniform steps of dt until Now reaches until. The
// final step is truncated so the clock lands exactly on until.
//
// When until is not an exact multiple of dt in floating point (e.g.
// Run(1.0, 0.1)), the accumulated sum of steps can undershoot until by a
// few ULPs, which would otherwise produce a final micro-step smaller than
// dt×1e-9 — physically meaningless, numerically hazardous for integrators
// dividing by dt, and historically the source of a denormal-width Advance.
// Run folds any residual smaller than that threshold into the preceding
// step instead: the last full step is stretched to land exactly on until.
// For horizons that ARE exact multiples of dt (every shipping experiment)
// this changes nothing, bit for bit.
func (c *Clock) Run(until, dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("simclock: Run with step %g: step must be positive", dt))
	}
	eps := dt * 1e-9
	for c.now < until {
		rem := until - c.now
		if rem <= dt || rem-dt < eps {
			// Final step (possibly stretched by a sub-epsilon residue that
			// the next iteration would otherwise turn into a denormal
			// micro-step): take it all and land exactly on until. The snap
			// below erases the ≤1-ULP rounding error of c.now += rem, which
			// would otherwise re-enter the loop with a ~1e-16 step.
			c.Advance(rem)
			c.now = until
			return
		}
		c.Advance(dt)
	}
}

// Pending returns the number of not-yet-fired scheduled events, which tests
// use to assert that experiments drain their schedules.
func (c *Clock) Pending() int { return c.events.Len() }
