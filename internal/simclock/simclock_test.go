package simclock

import (
	"math"
	"testing"
)

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(1.5)
	c.Advance(2.5)
	if c.Now() != 4 {
		t.Fatalf("Now = %g, want 4", c.Now())
	}
}

func TestAdvancePanicsOnNonPositiveStep(t *testing.T) {
	for _, dt := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Advance(%g) should panic", dt)
				}
			}()
			New().Advance(dt)
		}()
	}
}

func TestTickersSeeEveryStep(t *testing.T) {
	c := New()
	var total float64
	var calls int
	c.OnTick(TickerFunc(func(now, dt float64) {
		total += dt
		calls++
	}))
	c.Advance(1)
	c.Advance(0.25)
	c.Advance(3)
	if calls != 3 || total != 4.25 {
		t.Fatalf("calls=%d total=%g, want 3 and 4.25", calls, total)
	}
}

func TestTickersRunInRegistrationOrder(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.OnTick(TickerFunc(func(now, dt float64) { order = append(order, i) }))
	}
	c.Advance(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEventsFireInTimeThenSeqOrder(t *testing.T) {
	c := New()
	var fired []string
	c.At(2, func(float64) { fired = append(fired, "b1") })
	c.At(1, func(float64) { fired = append(fired, "a") })
	c.At(2, func(float64) { fired = append(fired, "b2") })
	c.Advance(5)
	want := []string{"a", "b1", "b2"}
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEventSeesItsScheduledTime(t *testing.T) {
	c := New()
	var at float64
	c.At(3, func(now float64) { at = now })
	c.Advance(10)
	if at != 3 {
		t.Fatalf("event ran at %g, want 3", at)
	}
}

func TestPastEventFiresOnNextAdvance(t *testing.T) {
	c := New()
	c.Advance(5)
	var ran bool
	c.At(1, func(float64) { ran = true })
	c.Advance(0.001)
	if !ran {
		t.Fatal("past event did not fire")
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	c := New()
	c.Advance(10)
	var at float64
	c.After(2, func(now float64) { at = now })
	c.After(-5, func(float64) {}) // clamps to now
	c.Advance(3)
	if at != 12 {
		t.Fatalf("After event ran at %g, want 12", at)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", c.Pending())
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	c := New()
	var times []float64
	var schedule func(now float64)
	schedule = func(now float64) {
		times = append(times, now)
		if now < 5 {
			c.At(now+1, schedule)
		}
	}
	c.At(1, schedule)
	c.Advance(10)
	if len(times) != 5 {
		t.Fatalf("chain fired %d times (%v), want 5", len(times), times)
	}
}

func TestRunLandsExactlyOnTarget(t *testing.T) {
	c := New()
	var steps []float64
	c.OnTick(TickerFunc(func(now, dt float64) { steps = append(steps, dt) }))
	c.Run(1.0, 0.3)
	if math.Abs(c.Now()-1.0) > 1e-12 {
		t.Fatalf("Now = %g, want exactly 1.0", c.Now())
	}
	if len(steps) != 4 {
		t.Fatalf("steps = %v, want 4 entries", steps)
	}
	if math.Abs(steps[3]-0.1) > 1e-9 {
		t.Fatalf("final truncated step = %g, want 0.1", steps[3])
	}
}

func TestRunNoDenormalFinalMicroStep(t *testing.T) {
	// 0.1 is not exactly representable in binary; ten accumulated steps
	// undershoot 1.0 by one ULP. The pre-fix Run then issued an eleventh
	// Advance of ~1.1e-16 s — a denormal-width step that integrators
	// dividing by dt amplified into garbage. Run must fold the residue
	// into the tenth step and land exactly on the horizon.
	c := New()
	var steps []float64
	c.OnTick(TickerFunc(func(now, dt float64) { steps = append(steps, dt) }))
	c.Run(1.0, 0.1)
	if c.Now() != 1.0 {
		t.Fatalf("Now = %.17g, want exactly 1.0", c.Now())
	}
	if len(steps) != 10 {
		t.Fatalf("Run(1.0, 0.1) issued %d steps (%v), want exactly 10", len(steps), steps)
	}
	for i, dt := range steps {
		if dt < 0.09 {
			t.Fatalf("step %d has width %.17g — denormal micro-step leaked through", i, dt)
		}
	}
}

func TestRunExactMultipleBitIdentical(t *testing.T) {
	// Horizons that are exact binary multiples of dt (every shipping
	// experiment: whole seconds at dt=1, minutes at dt=0.25, …) must see
	// N steps of exactly dt — the denormal guard may not perturb them.
	c := New()
	var steps []float64
	c.OnTick(TickerFunc(func(now, dt float64) { steps = append(steps, dt) }))
	c.Run(8, 0.25)
	if c.Now() != 8 {
		t.Fatalf("Now = %.17g, want exactly 8", c.Now())
	}
	if len(steps) != 32 {
		t.Fatalf("Run(8, 0.25) issued %d steps, want 32", len(steps))
	}
	for i, dt := range steps {
		if dt != 0.25 {
			t.Fatalf("step %d = %.17g, want exactly 0.25", i, dt)
		}
	}
}

func TestRunPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with zero step should panic")
		}
	}()
	New().Run(1, 0)
}

func TestPendingCountsUnfired(t *testing.T) {
	c := New()
	c.At(100, func(float64) {})
	c.At(200, func(float64) {})
	if c.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", c.Pending())
	}
	c.Advance(150)
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}
