package coresidence

import (
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/workload"
)

// twoHosts builds a 2-server datacenter and returns one container on each
// server plus a second container co-resident with the first.
func twoHosts(t *testing.T, seed int64) (dc *cloud.Datacenter, a1, a2, b *container.Container) {
	t.Helper()
	dc = cloud.New(cloud.Config{Racks: 1, ServersPerRack: 2, Seed: seed})
	s0 := dc.Racks[0].Servers[0]
	s1 := dc.Racks[0].Servers[1]
	a1 = s0.Runtime.Create("a1")
	a2 = s0.Runtime.Create("a2")
	b = s1.Runtime.Create("b")
	dc.Clock.Advance(1)
	return dc, a1, a2, b
}

func TestByBootID(t *testing.T) {
	_, a1, a2, b := twoHosts(t, 1)
	v, err := ByBootID(a1, a2)
	if err != nil || !v.CoResident {
		t.Fatalf("same-host boot_id: %+v err=%v", v, err)
	}
	v, err = ByBootID(a1, b)
	if err != nil || v.CoResident {
		t.Fatalf("cross-host boot_id: %+v err=%v", v, err)
	}
	if v.Evidence == "" || v.Channel == "" {
		t.Fatal("verdict must carry evidence")
	}
}

func TestByBootIDMaskedChannelErrors(t *testing.T) {
	p := cloud.CC5() // denies nothing under random/*, so craft our own
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 2, Provider: &p})
	s := dc.Racks[0].Servers[0]
	c := s.Runtime.Create("c")
	// CC5 leaves boot_id readable; force an error via a bogus prober.
	_, err := ByBootID(c, proberFunc(func(string) (string, error) {
		return "", strings.NewReader("").UnreadByte() // any non-nil error
	}))
	if err == nil {
		t.Fatal("expected error from failing probe")
	}
}

type proberFunc func(string) (string, error)

func (f proberFunc) ReadFile(p string) (string, error) { return f(p) }

func TestByTimerSignature(t *testing.T) {
	_, a1, a2, b := twoHosts(t, 3)
	v, err := ByTimerSignature(a1, a2, "sig-timer-777")
	if err != nil || !v.CoResident {
		t.Fatalf("same host: %+v err=%v", v, err)
	}
	v, err = ByTimerSignature(a1, b, "sig-timer-888")
	if err != nil || v.CoResident {
		t.Fatalf("cross host: %+v err=%v", v, err)
	}
}

func TestBySchedDebugSignature(t *testing.T) {
	_, a1, a2, b := twoHosts(t, 4)
	v, err := BySchedDebugSignature(a1, a2, "sig-sched-123")
	if err != nil || !v.CoResident {
		t.Fatalf("same host: %+v err=%v", v, err)
	}
	v, err = BySchedDebugSignature(a1, b, "sig-sched-456")
	if err != nil || v.CoResident {
		t.Fatalf("cross host: %+v err=%v", v, err)
	}
}

func TestByLockSignature(t *testing.T) {
	_, a1, a2, b := twoHosts(t, 5)
	v, err := ByLockSignature(a1, a2, 7654321)
	if err != nil || !v.CoResident {
		t.Fatalf("same host: %+v err=%v", v, err)
	}
	v, err = ByLockSignature(a1, b, 1234567)
	if err != nil || v.CoResident {
		t.Fatalf("cross host: %+v err=%v", v, err)
	}
}

func TestByUptime(t *testing.T) {
	_, a1, a2, b := twoHosts(t, 6)
	v, err := ByUptime(a1, a2, 0.5)
	if err != nil || !v.CoResident {
		t.Fatalf("same host: %+v err=%v", v, err)
	}
	// Different hosts in our sim share the sim clock (same up seconds), but
	// idle time diverges because benign load differs per server.
	v, err = ByUptime(a1, b, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if v.CoResident {
		t.Fatalf("cross host uptime matched: %+v", v)
	}
}

func TestParseUptime(t *testing.T) {
	u, err := ParseUptime("123.45 678.90\n")
	if err != nil || u.UpSeconds != 123.45 || u.IdleSeconds != 678.90 {
		t.Fatalf("%+v err=%v", u, err)
	}
	if _, err := ParseUptime("bogus"); err == nil {
		t.Fatal("malformed uptime should error")
	}
	if _, err := ParseUptime("x y"); err == nil {
		t.Fatal("non-numeric uptime should error")
	}
}

func TestMemFree(t *testing.T) {
	v, err := MemFree("MemTotal:  100 kB\nMemFree:   42 kB\n")
	if err != nil || v != 42 {
		t.Fatalf("v=%g err=%v", v, err)
	}
	if _, err := MemFree("nothing"); err == nil {
		t.Fatal("missing MemFree should error")
	}
}

func TestByMemFreeTrace(t *testing.T) {
	dc, a1, a2, b := twoHosts(t, 7)
	// Add memory churn so traces are non-constant.
	s0 := dc.Racks[0].Servers[0]
	c := s0.Runtime.Create("churn")
	c.Run(workload.StressM256, 2)

	step := func() { dc.Clock.Advance(1) }
	v, err := ByMemFreeTrace(a1, a2, step, 30)
	if err != nil || !v.CoResident {
		t.Fatalf("same host: %+v err=%v", v, err)
	}
	v, err = ByMemFreeTrace(a1, b, step, 30)
	if err != nil || v.CoResident {
		t.Fatalf("cross host: %+v err=%v", v, err)
	}
}

func TestBootTimeAndRackProximity(t *testing.T) {
	// Two racks: same-rack servers boot within minutes; cross-rack days.
	dc := cloud.New(cloud.Config{Racks: 2, ServersPerRack: 2, Seed: 8})
	r0s0 := dc.Racks[0].Servers[0].Runtime.Create("x")
	r0s1 := dc.Racks[0].Servers[1].Runtime.Create("y")
	r1s0 := dc.Racks[1].Servers[0].Runtime.Create("z")
	dc.Clock.Advance(1)

	v, err := RackProximity(r0s0, r0s1, 3600)
	if err != nil || !v.CoResident {
		t.Fatalf("same rack: %+v err=%v", v, err)
	}
	v, err = RackProximity(r0s0, r1s0, 3600)
	if err != nil || v.CoResident {
		t.Fatalf("cross rack: %+v err=%v", v, err)
	}
}

func TestBootTimeParse(t *testing.T) {
	bt, err := BootTime("cpu 1 2 3\nbtime 1478649600\nctxt 5\n")
	if err != nil || bt != 1478649600 {
		t.Fatalf("bt=%d err=%v", bt, err)
	}
	if _, err := BootTime("no btime here"); err == nil {
		t.Fatal("missing btime should error")
	}
	if _, err := BootTime("btime abc"); err == nil {
		t.Fatal("bad btime should error")
	}
}

func TestVerdictAgreementAcrossChannels(t *testing.T) {
	// All strong channels must agree on the same pair — the paper notes one
	// strong indicator suffices, so disagreement means a harness bug.
	_, a1, a2, b := twoHosts(t, 9)
	checks := func(x, y *container.Container) []bool {
		var out []bool
		if v, err := ByBootID(x, y); err == nil {
			out = append(out, v.CoResident)
		}
		if v, err := ByTimerSignature(x, y, "agr-"+x.ID+y.ID); err == nil {
			out = append(out, v.CoResident)
		}
		if v, err := ByUptime(x, y, 0.5); err == nil {
			out = append(out, v.CoResident)
		}
		return out
	}
	for _, same := range checks(a1, a2) {
		if !same {
			t.Fatal("same-host channels disagree")
		}
	}
	for _, same := range checks(a1, b) {
		if same {
			t.Fatal("cross-host channels disagree")
		}
	}
}

func TestVerifyAllMajority(t *testing.T) {
	_, a1, a2, b := twoHosts(t, 10)
	same, verdicts := VerifyAll(a1, a2, "va-same")
	if !same {
		t.Fatalf("same-host majority failed: %+v", verdicts)
	}
	if len(verdicts) < 4 {
		t.Fatalf("only %d channels ran on an open testbed", len(verdicts))
	}
	diff, verdicts := VerifyAll(a1, b, "va-diff")
	if diff {
		t.Fatalf("cross-host majority failed: %+v", verdicts)
	}
}

func TestVerifyAllDegradesOnHardenedCloud(t *testing.T) {
	// CC5 masks locks/uptime; the vote proceeds on what remains.
	p := cloud.CC5()
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 11, Provider: &p})
	_, a, err := dc.Launch("t", "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := dc.Launch("t", "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	dc.Clock.Advance(1)
	same, verdicts := VerifyAll(a, b, "va-cc5")
	if len(verdicts) == 0 {
		t.Fatal("every channel died on CC5 — too pessimistic")
	}
	if len(verdicts) >= 5 {
		t.Fatalf("CC5 should mask some channels, got %d verdicts", len(verdicts))
	}
	if !same {
		t.Fatalf("co-residents on CC5 not detected via surviving channels: %+v", verdicts)
	}
}

func TestHashSignatureDeterministicAndBounded(t *testing.T) {
	a, b := hashSignature("x"), hashSignature("x")
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if a < 100000000 || a >= 1000000000 {
		t.Fatalf("hash %d out of inode range", a)
	}
	if hashSignature("x") == hashSignature("y") {
		t.Fatal("trivial collision")
	}
}
