// Package coresidence implements Section III-C: verifying whether two
// container instances run on the same physical host using the leakage
// channels, with one method per channel class —
//
//   - unique static identifiers: compare /proc/sys/kernel/random/boot_id;
//   - implantable signatures: plant a crafted task name (timer_list /
//     sched_debug) or lock inode (/proc/locks) in one container and search
//     for it from the other;
//   - unique dynamic identifiers: compare /proc/uptime at the same instant;
//   - varying channels: correlate synchronized snapshot traces (e.g.
//     MemFree from /proc/meminfo sampled once per second for a minute).
//
// It also implements the rack-proximity heuristic of Section IV-C: servers
// with near-identical boot wall-clocks but different idle times were racked
// together and probably share a circuit breaker.
package coresidence

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pseudofs"
	"repro/internal/stats"
)

// Prober is the minimal capability needed to run read-only checks — any
// container instance (or host shell) that can read pseudo-files.
type Prober interface {
	ReadFile(path string) (string, error)
}

// readAttempts bounds the per-file retry budget of the verification reads.
// It covers a flapping mask (which denies a few consecutive reads before
// clearing) with attempts to spare for transient errors and torn renders.
const readAttempts = 6

// readParsed reads a pseudo-file until parse accepts its content,
// absorbing the faults of a flaky observation surface: transient errors
// (EIO/EAGAIN) are retried immediately; denied reads are retried a few
// times because a flapping mask clears after a handful of reads while a
// genuinely masked path stays denied and still errors out; and a parse
// failure — the signature of a torn render — is retried on fresh content.
// On a clean substrate the first read parses and none of this runs.
func readParsed[T any](p Prober, path string, parse func(string) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for i := 0; i < readAttempts; i++ {
		content, err := p.ReadFile(path)
		if err != nil {
			if !errors.Is(err, pseudofs.ErrTransient) && !errors.Is(err, pseudofs.ErrDenied) {
				return zero, err
			}
			lastErr = err
			continue
		}
		v, perr := parse(content)
		if perr != nil {
			lastErr = perr
			continue
		}
		return v, nil
	}
	return zero, lastErr
}

// readRetry is readParsed for content used verbatim.
func readRetry(p Prober, path string) (string, error) {
	return readParsed(p, path, func(s string) (string, error) { return s, nil })
}

// ReadBootID reads and validates the 36-character boot UUID, retrying
// faults and torn (truncated) renders. Exported because orchestration code
// groups containers by boot_id and a silently-truncated UUID would make
// one host look like two.
func ReadBootID(p Prober) (string, error) {
	return readParsed(p, "/proc/sys/kernel/random/boot_id", parseBootID)
}

func parseBootID(content string) (string, error) {
	id := strings.TrimSpace(content)
	if len(id) != 36 {
		return "", fmt.Errorf("coresidence: malformed boot_id %q", id)
	}
	return id, nil
}

// Verdict is the outcome of one co-residence check.
type Verdict struct {
	CoResident bool
	Channel    string
	// Evidence is a human-readable justification.
	Evidence string
}

// ByBootID compares the per-boot random UUID. Equal boot IDs prove the two
// instances share a kernel; it is the paper's most reliable single check.
func ByBootID(a, b Prober) (Verdict, error) {
	const path = "/proc/sys/kernel/random/boot_id"
	ida, err := ReadBootID(a)
	if err != nil {
		return Verdict{}, fmt.Errorf("coresidence: probe A: %w", err)
	}
	idb, err := ReadBootID(b)
	if err != nil {
		return Verdict{}, fmt.Errorf("coresidence: probe B: %w", err)
	}
	same := ida == idb
	return Verdict{
		CoResident: same,
		Channel:    path,
		Evidence:   fmt.Sprintf("boot_id A=%s B=%s", ida, idb),
	}, nil
}

// Implanter is a container we control that can plant signatures.
type Implanter interface {
	Prober
	PlantTimer(signature string)
	PlantLock(inode uint64)
}

// ByTimerSignature implants a uniquely-named timer task in the implanter
// and searches the prober's /proc/timer_list for it.
func ByTimerSignature(planter Implanter, observer Prober, signature string) (Verdict, error) {
	planter.PlantTimer(signature)
	content, err := readRetry(observer, "/proc/timer_list")
	if err != nil {
		return Verdict{}, fmt.Errorf("coresidence: read timer_list: %w", err)
	}
	found := strings.Contains(content, signature)
	return Verdict{
		CoResident: found,
		Channel:    "/proc/timer_list",
		Evidence:   fmt.Sprintf("signature %q found=%v", signature, found),
	}, nil
}

// BySchedDebugSignature searches /proc/sched_debug for an implanted task
// name (the implant itself is the same timer task).
func BySchedDebugSignature(planter Implanter, observer Prober, signature string) (Verdict, error) {
	planter.PlantTimer(signature)
	content, err := readRetry(observer, "/proc/sched_debug")
	if err != nil {
		return Verdict{}, fmt.Errorf("coresidence: read sched_debug: %w", err)
	}
	found := strings.Contains(content, signature)
	return Verdict{
		CoResident: found,
		Channel:    "/proc/sched_debug",
		Evidence:   fmt.Sprintf("signature %q found=%v", signature, found),
	}, nil
}

// ByLockSignature takes a POSIX lock with a chosen inode in the implanter
// and searches the prober's /proc/locks for that inode.
func ByLockSignature(planter Implanter, observer Prober, inode uint64) (Verdict, error) {
	planter.PlantLock(inode)
	content, err := readRetry(observer, "/proc/locks")
	if err != nil {
		return Verdict{}, fmt.Errorf("coresidence: read locks: %w", err)
	}
	needle := fmt.Sprintf("08:01:%d", inode)
	found := strings.Contains(content, needle)
	return Verdict{
		CoResident: found,
		Channel:    "/proc/locks",
		Evidence:   fmt.Sprintf("inode %d found=%v", inode, found),
	}, nil
}

// Uptime holds the two fields of /proc/uptime.
type Uptime struct {
	UpSeconds   float64
	IdleSeconds float64
}

// ParseUptime parses /proc/uptime content.
func ParseUptime(content string) (Uptime, error) {
	fields := strings.Fields(content)
	if len(fields) < 2 {
		return Uptime{}, fmt.Errorf("coresidence: malformed uptime %q", content)
	}
	up, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Uptime{}, fmt.Errorf("coresidence: parse uptime: %w", err)
	}
	idle, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return Uptime{}, fmt.Errorf("coresidence: parse idle: %w", err)
	}
	return Uptime{UpSeconds: up, IdleSeconds: idle}, nil
}

// ByUptime reads /proc/uptime from both instances at (nearly) the same
// moment; matching up and idle accumulators identify the same host. tol
// absorbs the skew between the two reads, in seconds.
func ByUptime(a, b Prober, tol float64) (Verdict, error) {
	ua, err := readUptime(a)
	if err != nil {
		return Verdict{}, err
	}
	ub, err := readUptime(b)
	if err != nil {
		return Verdict{}, err
	}
	dUp := abs(ua.UpSeconds - ub.UpSeconds)
	// The idle accumulator advances up to NCores seconds per second, so
	// give it a wider tolerance.
	dIdle := abs(ua.IdleSeconds - ub.IdleSeconds)
	same := dUp <= tol && dIdle <= tol*64
	return Verdict{
		CoResident: same,
		Channel:    "/proc/uptime",
		Evidence:   fmt.Sprintf("Δup=%.2fs Δidle=%.2fs", dUp, dIdle),
	}, nil
}

func readUptime(p Prober) (Uptime, error) {
	u, err := readParsed(p, "/proc/uptime", ParseUptime)
	if err != nil {
		return Uptime{}, fmt.Errorf("coresidence: read uptime: %w", err)
	}
	return u, nil
}

// MemFree extracts the MemFree value (KiB) from /proc/meminfo content.
func MemFree(content string) (float64, error) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "MemFree:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0, fmt.Errorf("coresidence: parse MemFree: %w", err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("coresidence: MemFree not found")
}

// ByMemFreeTrace records synchronized MemFree snapshots from both instances
// (advancing the world between samples via step) and declares co-residence
// when the two traces match exactly — the paper's 60-point trace-matching
// method for V-metric channels.
func ByMemFreeTrace(a, b Prober, step func(), n int) (Verdict, error) {
	if n < 2 {
		n = 2
	}
	ta := make([]float64, 0, n)
	tb := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		va, err := readParsed(a, "/proc/meminfo", MemFree)
		if err != nil {
			return Verdict{}, fmt.Errorf("coresidence: probe A: %w", err)
		}
		vb, err := readParsed(b, "/proc/meminfo", MemFree)
		if err != nil {
			return Verdict{}, fmt.Errorf("coresidence: probe B: %w", err)
		}
		ta = append(ta, va)
		tb = append(tb, vb)
		if i < n-1 {
			step()
		}
	}
	// Exact trace equality for same-host reads taken at the same instants;
	// correlation as supporting evidence.
	same := stats.MaxDelta(ta, tb) == 0
	return Verdict{
		CoResident: same,
		Channel:    "/proc/meminfo",
		Evidence: fmt.Sprintf("trace n=%d maxΔ=%.0f r=%.3f",
			n, stats.MaxDelta(ta, tb), stats.Pearson(ta, tb)),
	}, nil
}

// BootTime extracts btime (Unix seconds) from /proc/stat content.
func BootTime(content string) (int64, error) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "btime ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, "btime ")), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("coresidence: parse btime: %w", err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("coresidence: btime not found")
}

// RackProximity implements the Section IV-C heuristic: different hosts
// (different idle times) whose boot wall-clocks lie within window seconds
// were probably installed and powered on together — same rack, same
// breaker.
func RackProximity(a, b Prober, window int64) (Verdict, error) {
	ba, err := readParsed(a, "/proc/stat", BootTime)
	if err != nil {
		return Verdict{}, fmt.Errorf("coresidence: probe A: %w", err)
	}
	bb, err := readParsed(b, "/proc/stat", BootTime)
	if err != nil {
		return Verdict{}, fmt.Errorf("coresidence: probe B: %w", err)
	}
	d := ba - bb
	if d < 0 {
		d = -d
	}
	near := d <= window
	return Verdict{
		CoResident: near, // here: "co-racked", not same host
		Channel:    "/proc/stat (btime)",
		Evidence:   fmt.Sprintf("Δbtime=%ds window=%ds", d, window),
	}, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// VerifyAll runs every applicable co-residence check between the two
// instances and returns the per-channel verdicts plus the majority
// decision. Channels whose probes fail (masked on a hardened cloud) are
// skipped — exactly how an attacker degrades gracefully across providers.
func VerifyAll(a Implanter, b Prober, signature string) (coResident bool, verdicts []Verdict) {
	if v, err := ByBootID(a, b); err == nil {
		verdicts = append(verdicts, v)
	}
	if v, err := ByTimerSignature(a, b, signature+"-t"); err == nil {
		verdicts = append(verdicts, v)
	}
	if v, err := BySchedDebugSignature(a, b, signature+"-s"); err == nil {
		verdicts = append(verdicts, v)
	}
	if v, err := ByLockSignature(a, b, hashSignature(signature)); err == nil {
		verdicts = append(verdicts, v)
	}
	if v, err := ByUptime(a, b, 0.5); err == nil {
		verdicts = append(verdicts, v)
	}
	yes := 0
	for _, v := range verdicts {
		if v.CoResident {
			yes++
		}
	}
	return len(verdicts) > 0 && yes*2 > len(verdicts), verdicts
}

// hashSignature derives a deterministic inode number from a signature
// string (FNV-1a).
func hashSignature(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h%900000000 + 100000000
}
