package coresidence

import "testing"

// Fuzz targets guard the attacker-facing parsers against malformed
// pseudo-file content (a hardened cloud could serve arbitrary bytes). In
// normal `go test` runs only the seed corpus executes; use
// `go test -fuzz=FuzzParseUptime ./internal/coresidence` to explore.

func FuzzParseUptime(f *testing.F) {
	f.Add("123.45 678.90\n")
	f.Add("")
	f.Add("abc def")
	f.Add("1e308 -4")
	f.Fuzz(func(t *testing.T, s string) {
		u, err := ParseUptime(s)
		if err == nil && (u.UpSeconds != u.UpSeconds) { // NaN check
			t.Fatalf("NaN uptime from %q", s)
		}
	})
}

func FuzzMemFree(f *testing.F) {
	f.Add("MemFree: 42 kB\n")
	f.Add("MemFree:\n")
	f.Add("MemFree: x kB\n")
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = MemFree(s) // must not panic
	})
}

func FuzzBootTime(f *testing.F) {
	f.Add("btime 1478649600\n")
	f.Add("btime \n")
	f.Add("btime 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = BootTime(s) // must not panic
	})
}
