package coresidence

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/workload"
)

func TestByFreqTrace(t *testing.T) {
	dc, a1, a2, b := twoHosts(t, 21)
	// Load differentiates the hosts: an active tenant on server 0 drags its
	// governor away from server 1's idle frequencies.
	a1.Run(workload.Prime, 4)
	step := func() { dc.Clock.Advance(1) }
	v, err := ByFreqTrace(a1, a2, 4, step, 6)
	if err != nil || !v.CoResident {
		t.Fatalf("same-host freq trace: %+v err=%v", v, err)
	}
	if !strings.Contains(v.Evidence, "freq trace") || v.Channel == "" {
		t.Fatalf("verdict must carry evidence: %+v", v)
	}
	v, err = ByFreqTrace(a1, b, 4, step, 6)
	if err != nil || v.CoResident {
		t.Fatalf("cross-host freq trace: %+v err=%v", v, err)
	}
}

func TestByFreqTraceInsideSandbox(t *testing.T) {
	// The reason this channel exists: two tenants under gVisor still agree
	// on the host's frequency trace even though the proxied procfs masks
	// every classic co-residence channel.
	p := cloud.GVisorTarget()
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 2, Seed: 22, Provider: &p})
	s0 := dc.Racks[0].Servers[0]
	a1 := s0.Runtime.Create("a1")
	a2 := s0.Runtime.Create("a2")
	b := dc.Racks[0].Servers[1].Runtime.Create("b")
	a1.Run(workload.Prime, 4)
	dc.Clock.Advance(1)

	// The classic boot_id channel is dead inside the sandbox...
	if _, err := ByBootID(a1, a2); err == nil {
		t.Fatal("gVisor proxies procfs; boot_id must be unreadable")
	}
	// ...but the frequency trace still works.
	step := func() { dc.Clock.Advance(1) }
	v, err := ByFreqTrace(a1, a2, 4, step, 6)
	if err != nil || !v.CoResident {
		t.Fatalf("sandboxed same-host: %+v err=%v", v, err)
	}
	v, err = ByFreqTrace(a1, b, 4, step, 6)
	if err != nil || v.CoResident {
		t.Fatalf("sandboxed cross-host: %+v err=%v", v, err)
	}
}

func TestByFreqTraceDefaultsAndChaos(t *testing.T) {
	// cores<1 and n<2 snap to the minimum shape; readParsed's retry policy
	// absorbs torn/stale/EIO faults on the cpufreq files.
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: 23,
		Chaos: chaos.Spec{Rate: 0.02, Seed: 5}})
	s := dc.Racks[0].Servers[0]
	a1 := s.Runtime.Create("a1")
	a2 := s.Runtime.Create("a2")
	a1.Run(workload.Prime, 2)
	dc.Clock.Advance(1)
	v, err := ByFreqTrace(a1, a2, 0, func() { dc.Clock.Advance(1) }, 0)
	if err != nil {
		t.Fatalf("chaos-armed trace: %v", err)
	}
	if !v.CoResident {
		t.Fatalf("same-host verdict under chaos: %+v", v)
	}
}

func TestByFreqTracePropagatesProbeErrors(t *testing.T) {
	dc, a1, _, _ := twoHosts(t, 24)
	_ = dc
	broken := proberFunc(func(string) (string, error) {
		return "", strings.NewReader("").UnreadByte() // any non-nil error
	})
	if _, err := ByFreqTrace(a1, broken, 2, func() {}, 2); err == nil {
		t.Fatal("probe B failure must surface")
	}
	if _, err := ByFreqTrace(broken, a1, 2, func() {}, 2); err == nil {
		t.Fatal("probe A failure must surface")
	}
}
