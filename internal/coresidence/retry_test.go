package coresidence

// Tests for the fault-absorbing verification read path: the orchestration
// campaigns (AggregateCoResident, SpreadAcrossRack) abort entirely if one
// probe read fails, so readParsed's retry policy is what keeps them alive
// on a flaky observation surface.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/pseudofs"
)

// scriptProber serves a scripted sequence of (content, error) responses for
// one path, then repeats the last one.
type scriptProber struct {
	steps []func() (string, error)
	calls int
}

func (p *scriptProber) ReadFile(string) (string, error) {
	i := p.calls
	if i >= len(p.steps) {
		i = len(p.steps) - 1
	}
	p.calls++
	return p.steps[i]()
}

func ok(s string) func() (string, error) {
	return func() (string, error) { return s, nil }
}

func fail(err error) func() (string, error) {
	return func() (string, error) { return "", err }
}

var (
	transientErr = fmt.Errorf("%w: injected EIO", pseudofs.ErrTransient)
	deniedErr    = fmt.Errorf("%w: injected mask flap", pseudofs.ErrDenied)
)

const bootID = "01234567-89ab-cdef-0123-456789abcdef"

func TestReadBootIDRetriesTransientAndFlap(t *testing.T) {
	p := &scriptProber{steps: []func() (string, error){
		fail(transientErr), // EIO
		fail(deniedErr),    // flap read 1
		fail(deniedErr),    // flap read 2
		ok(bootID + "\n"),
	}}
	id, err := ReadBootID(p)
	if err != nil {
		t.Fatalf("ReadBootID: %v", err)
	}
	if id != bootID {
		t.Fatalf("id = %q", id)
	}
	if p.calls != 4 {
		t.Fatalf("calls = %d, want 4", p.calls)
	}
}

func TestReadBootIDRejectsTornRenderThenRecovers(t *testing.T) {
	// A torn render truncates the UUID; it parses as malformed and must be
	// retried, not returned — a truncated boot_id would make one host look
	// like two to the aggregation campaign.
	p := &scriptProber{steps: []func() (string, error){
		ok(bootID[:9]), // torn
		ok(bootID + "\n"),
	}}
	id, err := ReadBootID(p)
	if err != nil || id != bootID {
		t.Fatalf("got %q, %v", id, err)
	}
}

func TestReadParsedGivesUpAfterBudget(t *testing.T) {
	p := &scriptProber{steps: []func() (string, error){fail(transientErr)}}
	_, err := ReadBootID(p)
	if !errors.Is(err, pseudofs.ErrTransient) {
		t.Fatalf("err = %v, want wrapped ErrTransient", err)
	}
	if p.calls != readAttempts {
		t.Fatalf("calls = %d, want %d (bounded retry)", p.calls, readAttempts)
	}
}

func TestReadParsedDoesNotRetryHardErrors(t *testing.T) {
	// ErrNotExist means the channel is genuinely absent (masked-out
	// hardware); retrying it would just stall the campaign.
	hard := fmt.Errorf("%w: /proc/x", pseudofs.ErrNotExist)
	p := &scriptProber{steps: []func() (string, error){fail(hard)}}
	_, err := ReadBootID(p)
	if !errors.Is(err, pseudofs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if p.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on hard errors)", p.calls)
	}
}

func TestRackProximityRetriesStatReads(t *testing.T) {
	stat := "cpu  1 2 3\nbtime 1700000100\n"
	a := &scriptProber{steps: []func() (string, error){
		fail(transientErr),
		ok("cpu  1 2 3\nbti"), // torn before the btime line: parse fails, retried
		ok(stat),
	}}
	b := &scriptProber{steps: []func() (string, error){ok("btime 1700000150\n")}}
	v, err := RackProximity(a, b, 60)
	if err != nil {
		t.Fatalf("RackProximity: %v", err)
	}
	if !v.CoResident {
		t.Fatalf("Δbtime=50s within window=60s should be co-racked: %s", v.Evidence)
	}
}

func TestByUptimeRetriesTornRender(t *testing.T) {
	a := &scriptProber{steps: []func() (string, error){
		ok("1234."), // torn mid-float: single field fails ParseUptime
		ok("1234.56 9876.54\n"),
	}}
	b := &scriptProber{steps: []func() (string, error){ok("1234.60 9876.60\n")}}
	v, err := ByUptime(a, b, 0.5)
	if err != nil {
		t.Fatalf("ByUptime: %v", err)
	}
	if !v.CoResident {
		t.Fatalf("matching uptimes should verify: %s", v.Evidence)
	}
}

func TestParseBootIDRejectsTruncation(t *testing.T) {
	for _, bad := range []string{"", "abc", bootID[:35], bootID + "0"} {
		if _, err := parseBootID(bad); err == nil {
			t.Errorf("parseBootID(%q) accepted a malformed UUID", bad)
		}
	}
	got, err := parseBootID("  " + bootID + "\n")
	if err != nil || got != bootID {
		t.Errorf("parseBootID(padded) = %q, %v", got, err)
	}
	if !strings.Contains(bootID, "-") || len(bootID) != 36 {
		t.Fatal("test fixture is not RFC-4122 shaped")
	}
}
