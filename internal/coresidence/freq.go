package coresidence

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// parseKHz parses a cpufreq render (a single decimal kHz value).
func parseKHz(content string) (float64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(content), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("coresidence: parse cpufreq: %w", err)
	}
	return float64(v), nil
}

// meanFreq samples the mean scaling_cur_freq across the first cores cores.
func meanFreq(p Prober, cores int) (float64, error) {
	var sum float64
	for c := 0; c < cores; c++ {
		v, err := readParsed(p,
			fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpufreq/scaling_cur_freq", c), parseKHz)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(cores), nil
}

// ByFreqTrace records synchronized per-core DVFS frequency snapshots from
// both instances (advancing the world between samples via step) and
// declares co-residence when the traces match exactly — the trace-matching
// method of ByMemFreeTrace carried onto the frequency channel, which is
// the only varying channel left inside sandboxed runtimes whose proxied
// procfs masks the classic ones.
func ByFreqTrace(a, b Prober, cores int, step func(), n int) (Verdict, error) {
	if cores < 1 {
		cores = 1
	}
	if n < 2 {
		n = 2
	}
	ta := make([]float64, 0, n)
	tb := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		va, err := meanFreq(a, cores)
		if err != nil {
			return Verdict{}, fmt.Errorf("coresidence: probe A: %w", err)
		}
		vb, err := meanFreq(b, cores)
		if err != nil {
			return Verdict{}, fmt.Errorf("coresidence: probe B: %w", err)
		}
		ta = append(ta, va)
		tb = append(tb, vb)
		if i < n-1 {
			step()
		}
	}
	// Same host ⇒ both probes read the same governor state at the same
	// instants; correlation as supporting evidence.
	same := stats.MaxDelta(ta, tb) == 0
	return Verdict{
		CoResident: same,
		Channel:    "/sys/devices/system/cpu/*/cpufreq/scaling_cur_freq",
		Evidence: fmt.Sprintf("freq trace n=%d maxΔ=%.0f r=%.3f",
			n, stats.MaxDelta(ta, tb), stats.Pearson(ta, tb)),
	}, nil
}
