package workload

import (
	"math"
	"math/rand"

	"repro/internal/perfcount"
	"repro/internal/power"
)

// VirusConstraints bound the search space of the power-virus generator to
// microarchitecturally plausible programs: a real instruction stream cannot
// exceed the machine's retire width, and miss rates are bounded by the
// memory system.
type VirusConstraints struct {
	MaxIPC     float64 // retire-width bound
	MaxCMPerKI float64 // cache misses per kilo-instruction
	MaxBMPerKI float64 // branch misses per kilo-instruction
}

// DefaultVirusConstraints matches a Skylake-class core.
func DefaultVirusConstraints() VirusConstraints {
	return VirusConstraints{MaxIPC: 4, MaxCMPerKI: 40, MaxBMPerKI: 20}
}

// GeneratePowerVirus hill-climbs a workload mix that maximizes package
// power on the given meter configuration, in the spirit of the genetic
// search of SYMPO/MAMPO that the paper cites. It returns the best profile
// found after the given number of iterations. The search is deterministic
// for a fixed seed.
func GeneratePowerVirus(cfg power.Config, constraints VirusConstraints, iterations int, seed int64) Profile {
	rng := rand.New(rand.NewSource(seed))
	const hz = 3.4e9

	// A real pipeline cannot retire at full width while missing the LLC:
	// every miss stalls the ROB. Couple achievable IPC to the miss rates
	// the same way the SPEC profiles implicitly do (mcf: 36 misses/KI at
	// 0.45 IPC), so the search cannot wander into unphysical corners.
	achievableIPC := func(ipc, cm, bm float64) float64 {
		bound := constraints.MaxIPC / (1 + cm/8 + bm/40)
		return math.Min(ipc, bound)
	}

	eval := func(ipc, cm, bm float64) float64 {
		ipc = achievableIPC(ipc, cm, bm)
		m := power.New(cfg)
		r := perfcount.Rates{
			Instructions: hz * ipc,
			Cycles:       hz,
			CacheMisses:  hz * ipc * cm / 1000,
			BranchMisses: hz * ipc * bm / 1000,
		}
		m.Step(r, 1, nil)
		return m.Power(power.Package)
	}

	// Start from a stress-like midpoint.
	ipc, cm, bm := 1.5, 10.0, 2.0
	best := eval(ipc, cm, bm)
	for i := 0; i < iterations; i++ {
		nIPC := clamp(ipc+rng.NormFloat64()*0.3, 0.1, constraints.MaxIPC)
		nCM := clamp(cm+rng.NormFloat64()*3, 0, constraints.MaxCMPerKI)
		nBM := clamp(bm+rng.NormFloat64()*1.5, 0, constraints.MaxBMPerKI)
		if p := eval(nIPC, nCM, nBM); p > best {
			best, ipc, cm, bm = p, nIPC, nCM, nBM
		}
	}
	return prof("power-virus", achievableIPC(ipc, cm, bm), cm, bm, 128*1024)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
