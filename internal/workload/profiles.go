// Package workload defines the benchmark workloads the paper runs — as
// microarchitectural activity profiles rather than actual binaries. Each
// profile is a per-core rate vector (instructions, cycles, cache misses,
// branch misses per second) chosen so that the distinct slopes of Figs. 6–7
// emerge from the power model: compute-bound workloads retire many
// instructions with few misses; memory-bound ones the opposite.
//
// The package also models the UnixBench suite mechanistically for the
// Table III overhead reproduction and provides a hill-climbing power-virus
// generator in the spirit of SYMPO/MAMPO (Ganesan et al.), which the paper
// cites as the state of the art for power attacks.
package workload

import "repro/internal/perfcount"

// Profile is one workload's per-core activity signature at full speed on
// one 3.4 GHz core.
type Profile struct {
	Name string
	// Rates is the activity generated per fully-utilized core.
	Rates perfcount.Rates
	// RSSKBPerCore is resident memory per busy core.
	RSSKBPerCore uint64
}

// Scaled returns the demand and total rates for running the profile on n
// cores (the paper's "4 copies of Prime" is Scaled(4)).
func (p Profile) Scaled(n float64) (demand float64, rates perfcount.Rates) {
	return n, p.Rates.Times(n)
}

// prof builds a profile from IPC and per-kilo-instruction miss rates, which
// is how the architecture literature usually characterizes workloads.
func prof(name string, ipc, cmPKI, bmPKI float64, rssKB uint64) Profile {
	const hz = 3.4e9
	// One busy core always burns `hz` cycles per second; IPC sets how many
	// instructions retire in that cycle budget.
	cycles := hz
	instrPerSec := hz * ipc
	return Profile{
		Name: name,
		Rates: perfcount.Rates{
			Instructions: instrPerSec,
			Cycles:       cycles,
			CacheMisses:  instrPerSec * cmPKI / 1000,
			CacheRefs:    instrPerSec * cmPKI / 1000 * 12,
			BranchMisses: instrPerSec * bmPKI / 1000,
			BranchRefs:   instrPerSec * 0.2,
		},
		RSSKBPerCore: rssKB,
	}
}

// The four modeling benchmarks of Figs. 6–7: the paper fits its power model
// on an idle loop, Prime, 462.libquantum, and stress with different memory
// configurations.
var (
	// IdleLoop is a tight spin: maximal IPC, essentially no misses.
	IdleLoop = prof("idle-loop", 3.6, 0.005, 0.02, 2*1024)
	// Prime (Prime95) is compute/AVX heavy with a tiny footprint.
	Prime = prof("prime", 2.8, 0.02, 0.8, 32*1024)
	// Libquantum streams through large arrays: low IPC, huge miss rate.
	Libquantum = prof("462.libquantum", 0.9, 28, 2.5, 96*1024)
	// StressM64 is `stress` touching 64 MB strides; StressM256 a larger
	// working set (the "different memory configurations" of Fig. 6).
	StressM64  = prof("stress-m64", 1.4, 12, 1.2, 64*1024)
	StressM256 = prof("stress-m256", 1.1, 22, 1.4, 256*1024)
)

// ModelingSet returns the four benchmark families used to TRAIN the power
// model (Figs. 6–7).
func ModelingSet() []Profile {
	return []Profile{IdleLoop, Prime, Libquantum, StressM64, StressM256}
}

// SPECSubset returns the disjoint SPEC CPU2006 subset used to EVALUATE
// model accuracy (Fig. 8). Mixes span compute-bound (hmmer, h264ref)
// through memory-bound (mcf, omnetpp), so the evaluation exercises slopes
// the training set never saw exactly.
func SPECSubset() []Profile {
	return []Profile{
		prof("401.bzip2", 1.6, 4.2, 6.1, 850*1024),
		prof("403.gcc", 1.1, 9.8, 5.4, 900*1024),
		prof("429.mcf", 0.45, 36, 7.8, 1700*1024),
		prof("445.gobmk", 1.3, 1.1, 9.2, 28*1024),
		prof("456.hmmer", 2.3, 0.9, 1.4, 64*1024),
		prof("458.sjeng", 1.5, 0.8, 7.4, 180*1024),
		prof("464.h264ref", 2.1, 1.8, 2.9, 64*1024),
		prof("471.omnetpp", 0.6, 21, 5.6, 170*1024),
		prof("473.astar", 0.9, 12, 8.3, 330*1024),
		prof("483.xalancbmk", 0.8, 16, 4.9, 420*1024),
	}
}

// ByName finds a profile across the modeling set and SPEC subset; the
// boolean is false when unknown.
func ByName(name string) (Profile, bool) {
	for _, p := range ModelingSet() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range SPECSubset() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
