package workload_test

import (
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/power"
	"repro/internal/workload"
)

// fakeReader is an in-memory pseudo-fs stand-in: every known path reads
// successfully, optionally after a configurable number of failures (the
// transient-fault shape the capture retries must ride out). Safe for the
// concurrent captures CaptureAll fans out.
type fakeReader struct {
	mu        sync.Mutex
	paths     map[string]string
	failFirst int // failures before a path's first success
	attempts  map[string]int
}

func newFakeReader(paths []string) *fakeReader {
	m := make(map[string]string, len(paths))
	for _, p := range paths {
		m[p] = "content of " + p
	}
	return &fakeReader{paths: m, attempts: make(map[string]int)}
}

func (r *fakeReader) Read(path string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.paths[path]
	if !ok {
		return "", errors.New("no such file")
	}
	r.attempts[path]++
	if r.attempts[path] <= r.failFirst {
		return "", errors.New("transient fault")
	}
	return c, nil
}

// allIntents flattens a spec list into its deduped path universe.
func allIntents(specs []workload.TraceSpec) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range specs {
		for _, p := range s.Intents {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

func TestBenignSuiteShape(t *testing.T) {
	specs := workload.BenignSuite(7)
	if len(specs) != 13 { // power virus + 12 UnixBench micro-benchmarks
		t.Fatalf("BenignSuite: got %d specs, want 13", len(specs))
	}
	for _, s := range specs {
		if s.Name == "" {
			t.Fatal("spec with empty name")
		}
		if len(s.Intents) == 0 {
			t.Fatalf("spec %s has no intents", s.Name)
		}
		if !sort.StringsAreSorted(s.Intents) {
			t.Fatalf("spec %s intents not sorted: %v", s.Name, s.Intents)
		}
		for i := 1; i < len(s.Intents); i++ {
			if s.Intents[i] == s.Intents[i-1] {
				t.Fatalf("spec %s has duplicate intent %s", s.Name, s.Intents[i])
			}
		}
	}
	// The suite's intent derivation is pure: same seed, same specs.
	if !reflect.DeepEqual(specs, workload.BenignSuite(7)) {
		t.Fatal("BenignSuite not deterministic for a fixed seed")
	}
}

// TestCaptureDeterministicAcrossWorkers is the determinism contract the
// policy miner depends on: per-path read counts derive from a split hash
// of (seed, workload, path), never from a shared stream, so captures are
// byte-identical at any worker count.
func TestCaptureDeterministicAcrossWorkers(t *testing.T) {
	specs := workload.BenignSuite(7)
	r := newFakeReader(allIntents(specs))
	serial := workload.CaptureAll(r, specs, 7, 1)
	for _, workers := range []int{2, 8} {
		got := workload.CaptureAll(newFakeReader(allIntents(specs)), specs, 7, workers)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("capture differs at workers=%d", workers)
		}
	}
	// Stable across repeated runs too.
	if !reflect.DeepEqual(serial, workload.CaptureAll(newFakeReader(allIntents(specs)), specs, 7, 8)) {
		t.Fatal("capture not stable across runs")
	}
}

func TestCaptureSeedSensitivity(t *testing.T) {
	specs := workload.BenignSuite(7)
	paths := allIntents(specs)
	a := workload.CaptureAll(newFakeReader(paths), specs, 7, 1)
	b := workload.CaptureAll(newFakeReader(paths), specs, 8, 1)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical read-count jitter")
	}
	// Seeds change counts, never the path set: the intent list is a pure
	// function of the workload shape.
	for i := range a {
		if !reflect.DeepEqual(keys(a[i].Reads), keys(b[i].Reads)) {
			t.Fatalf("workload %s: path set differs across seeds", a[i].Workload)
		}
	}
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestCaptureRetriesTransientFaults(t *testing.T) {
	specs := []workload.TraceSpec{{Name: "w", Intents: []string{"/proc/stat"}}}
	// Two failures before first success: within the retry budget, so the
	// capture must record a clean read set.
	r := newFakeReader([]string{"/proc/stat"})
	r.failFirst = 2
	tr := workload.CaptureTrace(r, specs[0], 1)
	if len(tr.Failures) != 0 {
		t.Fatalf("transient faults within retry budget recorded as failures: %v", tr.Failures)
	}
	if tr.Reads["/proc/stat"] == 0 {
		t.Fatal("no successful reads recorded")
	}
}

func TestCapturePersistentFailure(t *testing.T) {
	r := newFakeReader(nil) // nothing readable
	tr := workload.CaptureTrace(r, workload.TraceSpec{Name: "w", Intents: []string{"/proc/stat"}}, 1)
	if len(tr.Reads) != 0 {
		t.Fatalf("unexpected successful reads: %v", tr.Reads)
	}
	if tr.Failures["/proc/stat"] == "" {
		t.Fatalf("persistent failure not recorded: %v", tr.Failures)
	}
}

func TestProfileAndBenchIntents(t *testing.T) {
	virus := workload.GeneratePowerVirus(
		power.DefaultConfig(), workload.DefaultVirusConstraints(), 48, 7)
	got := workload.ProfileIntents(virus)
	want := []string{"/proc/cpuinfo", "/proc/loadavg", "/proc/meminfo",
		"/proc/stat", "/proc/uptime", "/proc/version"}
	for _, p := range want {
		if !contains(got, p) {
			t.Fatalf("virus intents missing %s: %v", p, got)
		}
	}
	var sawIO, sawSpawn bool
	for _, b := range workload.UnixBenchSuite() {
		in := workload.BenchIntents(b)
		if b.IOBound && contains(in, "/proc/diskstats") {
			sawIO = true
		}
		if b.ExecsPerOp > 0 && contains(in, "/proc/sys/kernel/hostname") {
			sawSpawn = true
		}
	}
	if !sawIO {
		t.Fatal("no IO-bound benchmark carries the IO read footprint")
	}
	if !sawSpawn {
		t.Fatal("no exec-heavy benchmark carries the spawn read footprint")
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
