package workload

import "math"

// PerfCosts parameterizes the overhead mechanism of the power-based
// namespace that Table III measures: inter-cgroup context switches must
// save/restore the perf event set, and process creation/teardown must
// build/destroy a perf context.
type PerfCosts struct {
	// Enabled is false for the unmodified kernel ("Original" column).
	Enabled bool
	// SwitchCost is seconds per inter-cgroup context switch. The default
	// is calibrated from the paper's own measurement: a 61.5% slowdown of
	// pipe-based context switching implies ≈7 µs per toggled switch.
	SwitchCost float64
	// ProcCost is seconds per perf-context create/destroy (fork/exec).
	ProcCost float64
}

// DefaultPerfCosts returns the calibrated enabled-defense cost model.
func DefaultPerfCosts() PerfCosts {
	return PerfCosts{Enabled: true, SwitchCost: 7e-6, ProcCost: 1.1e-4}
}

// UnixBenchmark models one UnixBench micro-benchmark mechanistically: ops
// proceed at OpsPerSec per copy on the unmodified kernel; each op incurs
// SwitchesPerOp scheduler switches and ExecsPerOp process creations. What
// fraction of the switches cross a perf-cgroup boundary depends on host
// occupancy: a lone pipe ping-pong constantly bounces through the idle task
// (a different cgroup), while eight parallel copies almost always switch to
// a sibling in the same cgroup. IO-bound benchmarks instead switch to
// kernel writeback threads (root cgroup), which get busier as copies are
// added — which is why File Copy inverts the pipe benchmark's trend in
// Table III.
type UnixBenchmark struct {
	Name string
	// Index1 and Index8 are the unmodified-kernel UnixBench index scores
	// for 1 and 8 parallel copies (the paper's "Original" columns, used
	// as the calibration baseline).
	Index1, Index8 float64

	OpsPerSec     float64 // per copy, unmodified kernel
	SwitchesPerOp float64
	ExecsPerOp    float64
	IOBound       bool
}

// interSwitchFraction estimates the probability that a context switch
// crosses a perf-cgroup boundary, given how many benchmark copies run on an
// nCores host.
func (b UnixBenchmark) interSwitchFraction(copies, nCores int) float64 {
	if b.IOBound {
		// Switches go to root-cgroup kernel threads; writeback pressure
		// grows with parallel copies.
		f := 0.05 + 0.11*float64(copies-1)
		return math.Min(f, 0.9)
	}
	// CPU ping-pong: if spare cores exist, the partner sleeps and the CPU
	// drops to the idle task between messages (inter-cgroup); when the
	// host is saturated with same-cgroup copies, switches stay local.
	idle := float64(nCores-copies) / float64(nCores)
	if idle < 0.01 {
		idle = 0.01
	}
	return idle
}

// Slowdown returns the multiplicative per-op time factor (≥ 1) with the
// given cost model active for the given parallelism on an nCores host.
func (b UnixBenchmark) Slowdown(copies, nCores int, costs PerfCosts) float64 {
	if !costs.Enabled || b.OpsPerSec <= 0 {
		return 1
	}
	baseOpTime := 1 / b.OpsPerSec
	extra := b.SwitchesPerOp*b.interSwitchFraction(copies, nCores)*costs.SwitchCost +
		b.ExecsPerOp*costs.ProcCost
	return (baseOpTime + extra) / baseOpTime
}

// Index returns the benchmark's index score at the given parallelism under
// the cost model (score scales inversely with per-op time).
func (b UnixBenchmark) Index(copies, nCores int, costs PerfCosts) float64 {
	base := b.Index1
	if copies > 1 {
		base = b.Index8
	}
	return base / b.Slowdown(copies, nCores, costs)
}

// UnixBenchSuite returns the twelve UnixBench components of Table III with
// the paper's original-kernel index scores and mechanistic parameters.
func UnixBenchSuite() []UnixBenchmark {
	return []UnixBenchmark{
		{Name: "Dhrystone 2 using register variables", Index1: 3788.9, Index8: 19132.9,
			OpsPerSec: 3.2e7, SwitchesPerOp: 2e-5},
		{Name: "Double-Precision Whetstone", Index1: 926.8, Index8: 6630.7,
			OpsPerSec: 8.5e5, SwitchesPerOp: 6e-4},
		{Name: "Execl Throughput", Index1: 290.9, Index8: 7975.2,
			OpsPerSec: 1250, SwitchesPerOp: 4, ExecsPerOp: 0.55},
		{Name: "File Copy 1024 bufsize 2000 maxblocks", Index1: 3495.1, Index8: 3104.9,
			OpsPerSec: 5.5e5, SwitchesPerOp: 0.053, IOBound: true},
		{Name: "File Copy 256 bufsize 500 maxblocks", Index1: 2208.5, Index8: 1982.9,
			OpsPerSec: 3.4e5, SwitchesPerOp: 0.114, IOBound: true},
		{Name: "File Copy 4096 bufsize 8000 maxblocks", Index1: 5695.1, Index8: 6641.3,
			OpsPerSec: 9.5e5, SwitchesPerOp: 0.026, IOBound: true},
		{Name: "Pipe Throughput", Index1: 1899.4, Index8: 9507.2,
			OpsPerSec: 1.05e6, SwitchesPerOp: 0.002},
		{Name: "Pipe-based Context Switching", Index1: 653.0, Index8: 5266.7,
			OpsPerSec: 130000, SwitchesPerOp: 2},
		{Name: "Process Creation", Index1: 1416.5, Index8: 6618.5,
			OpsPerSec: 4200, SwitchesPerOp: 2, ExecsPerOp: 0.18},
		{Name: "Shell Scripts (1 concurrent)", Index1: 3660.4, Index8: 16909.7,
			OpsPerSec: 1800, SwitchesPerOp: 6, ExecsPerOp: 0.13},
		{Name: "Shell Scripts (8 concurrent)", Index1: 11621.0, Index8: 15721.1,
			OpsPerSec: 240, SwitchesPerOp: 45, ExecsPerOp: 1.0},
		{Name: "System Call Overhead", Index1: 1226.6, Index8: 5689.4,
			OpsPerSec: 2.4e6, SwitchesPerOp: 0.0008},
	}
}

// GeoMeanIndex computes the UnixBench "System Benchmarks Index Score": the
// geometric mean of the component indexes.
func GeoMeanIndex(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	var logSum float64
	for _, s := range scores {
		if s <= 0 {
			return 0
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(scores)))
}
