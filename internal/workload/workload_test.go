package workload

import (
	"math"
	"testing"

	"repro/internal/power"
)

func TestProfilesDistinctAndPlausible(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range append(ModelingSet(), SPECSubset()...) {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.Rates.Instructions <= 0 || p.Rates.Cycles <= 0 {
			t.Fatalf("%s has non-positive activity", p.Name)
		}
		ipc := p.Rates.Instructions / p.Rates.Cycles
		if ipc < 0.1 || ipc > 4.5 {
			t.Fatalf("%s IPC %g implausible", p.Name, ipc)
		}
		if p.Rates.CacheMisses > p.Rates.CacheRefs {
			t.Fatalf("%s misses exceed references", p.Name)
		}
	}
}

func TestComputeVsMemoryBoundCharacter(t *testing.T) {
	// Prime must retire more instructions than libquantum; libquantum must
	// miss cache far more. This divergence is what gives Figs. 6–7 their
	// distinct slopes.
	if Prime.Rates.Instructions <= Libquantum.Rates.Instructions {
		t.Fatal("prime should be instruction-heavy")
	}
	if Libquantum.Rates.CacheMisses <= 10*Prime.Rates.CacheMisses {
		t.Fatal("libquantum should be dramatically more miss-heavy")
	}
}

func TestScaled(t *testing.T) {
	d, r := Prime.Scaled(4)
	if d != 4 {
		t.Fatalf("demand = %g", d)
	}
	if math.Abs(r.Instructions-4*Prime.Rates.Instructions) > 1 {
		t.Fatal("rates not scaled")
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("prime"); !ok || p.Name != "prime" {
		t.Fatal("prime lookup failed")
	}
	if p, ok := ByName("401.bzip2"); !ok || p.Name != "401.bzip2" {
		t.Fatal("SPEC lookup failed")
	}
	if _, ok := ByName("no-such"); ok {
		t.Fatal("unknown lookup should fail")
	}
}

func TestSPECSubsetDisjointFromModelingSet(t *testing.T) {
	train := make(map[string]bool)
	for _, p := range ModelingSet() {
		train[p.Name] = true
	}
	for _, p := range SPECSubset() {
		if train[p.Name] {
			t.Fatalf("%s appears in both training and evaluation sets", p.Name)
		}
	}
}

func TestUnixBenchSlowdownDisabledIsIdentity(t *testing.T) {
	for _, b := range UnixBenchSuite() {
		if s := b.Slowdown(1, 8, PerfCosts{}); s != 1 {
			t.Fatalf("%s disabled slowdown = %g", b.Name, s)
		}
	}
}

func TestPipeCtxswOverheadShape(t *testing.T) {
	// The paper's headline Table III observation: pipe-based context
	// switching suffers hugely at 1 copy and barely at 8 copies.
	var pipe UnixBenchmark
	for _, b := range UnixBenchSuite() {
		if b.Name == "Pipe-based Context Switching" {
			pipe = b
		}
	}
	costs := DefaultPerfCosts()
	over1 := 1 - 1/pipe.Slowdown(1, 8, costs)
	over8 := 1 - 1/pipe.Slowdown(8, 8, costs)
	if over1 < 0.4 || over1 > 0.75 {
		t.Fatalf("1-copy pipe overhead = %.1f%%, want roughly 60%%", over1*100)
	}
	if over8 > 0.06 {
		t.Fatalf("8-copy pipe overhead = %.1f%%, want small", over8*100)
	}
	if over8 >= over1 {
		t.Fatal("8-copy overhead must collapse relative to 1 copy")
	}
}

func TestFileCopyOverheadInvertsTrend(t *testing.T) {
	costs := DefaultPerfCosts()
	for _, b := range UnixBenchSuite() {
		if !b.IOBound {
			continue
		}
		o1 := 1 - 1/b.Slowdown(1, 8, costs)
		o8 := 1 - 1/b.Slowdown(8, 8, costs)
		if o8 <= o1 {
			t.Fatalf("%s: IO-bound overhead should grow with copies (%.2f%% -> %.2f%%)",
				b.Name, o1*100, o8*100)
		}
		if o8 < 0.05 || o8 > 0.30 {
			t.Fatalf("%s: 8-copy overhead %.1f%% outside the paper's 12–18%% band (loosely)",
				b.Name, o8*100)
		}
	}
}

func TestCPUBoundBenchmarksNearZeroOverhead(t *testing.T) {
	costs := DefaultPerfCosts()
	for _, b := range UnixBenchSuite() {
		if b.Name != "Dhrystone 2 using register variables" && b.Name != "Double-Precision Whetstone" {
			continue
		}
		if o := 1 - 1/b.Slowdown(1, 8, costs); o > 0.02 {
			t.Fatalf("%s overhead %.2f%%, want ≈ 0", b.Name, o*100)
		}
	}
}

func TestIndexUsesRightBaseline(t *testing.T) {
	b := UnixBenchSuite()[0]
	if got := b.Index(1, 8, PerfCosts{}); got != b.Index1 {
		t.Fatalf("index(1) = %g", got)
	}
	if got := b.Index(8, 8, PerfCosts{}); got != b.Index8 {
		t.Fatalf("index(8) = %g", got)
	}
}

func TestGeoMeanIndex(t *testing.T) {
	if g := GeoMeanIndex([]float64{4, 9}); math.Abs(g-6) > 1e-9 {
		t.Fatalf("geomean = %g, want 6", g)
	}
	if GeoMeanIndex(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	if GeoMeanIndex([]float64{1, 0}) != 0 {
		t.Fatal("non-positive scores should yield 0")
	}
}

func TestOverallIndexOverheadBand(t *testing.T) {
	// The paper reports 9.66% (1 copy) and 7.03% (8 copies) overall
	// overhead; our mechanistic model should land in the same ballpark.
	costs := DefaultPerfCosts()
	overall := func(copies int) float64 {
		var orig, mod []float64
		for _, b := range UnixBenchSuite() {
			orig = append(orig, b.Index(copies, 8, PerfCosts{}))
			mod = append(mod, b.Index(copies, 8, costs))
		}
		return 1 - GeoMeanIndex(mod)/GeoMeanIndex(orig)
	}
	o1, o8 := overall(1), overall(8)
	if o1 < 0.04 || o1 > 0.18 {
		t.Fatalf("overall 1-copy overhead = %.2f%%, want high single digits", o1*100)
	}
	if o8 < 0.02 || o8 > 0.15 {
		t.Fatalf("overall 8-copy overhead = %.2f%%, want mid single digits", o8*100)
	}
}

func TestPowerVirusBeatsStress(t *testing.T) {
	cfg := power.DefaultConfig()
	virus := GeneratePowerVirus(cfg, DefaultVirusConstraints(), 300, 1)

	perPkgPower := func(p Profile) float64 {
		m := power.New(cfg)
		m.Step(p.Rates, 1, nil)
		return m.Power(power.Package)
	}
	vp := perPkgPower(virus)
	sp := perPkgPower(StressM64)
	if vp <= sp {
		t.Fatalf("virus power %g W not above stress %g W", vp, sp)
	}
	// Constraint respect.
	ipc := virus.Rates.Instructions / virus.Rates.Cycles
	if ipc > DefaultVirusConstraints().MaxIPC+1e-9 {
		t.Fatalf("virus IPC %g violates constraint", ipc)
	}
}

func TestPowerVirusDeterministic(t *testing.T) {
	cfg := power.DefaultConfig()
	a := GeneratePowerVirus(cfg, DefaultVirusConstraints(), 100, 7)
	b := GeneratePowerVirus(cfg, DefaultVirusConstraints(), 100, 7)
	if a.Rates != b.Rates {
		t.Fatal("same seed must give same virus")
	}
}
