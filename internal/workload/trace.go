package workload

import (
	"hash/fnv"
	"sort"

	"repro/internal/parallel"
	"repro/internal/power"
)

// Read-trace capture: the pseudo-file footprint of a benign workload run.
// Real tenants read procfs/sysfs around their compute — the libc startup
// path sizes the machine from /proc/cpuinfo and /proc/meminfo, benchmark
// harnesses sample /proc/stat and /proc/loadavg between iterations,
// NUMA-aware allocators consult per-node meminfo, and IO benchmarks poll
// the fd and filesystem tables. The policy miner (internal/policy) replays
// these read sets through container mounts to learn which pseudo-files
// benign tenants depend on: the set a synthesized masking policy must
// leave readable.
//
// Everything here is deterministic: the intent list is a pure function of
// the workload's shape, and per-path read counts derive from a split hash
// of (seed, workload, path) — no shared RNG stream — so captures are
// byte-identical at any worker count and stable across runs with the same
// seed. That is the determinism contract the miner depends on.

// Reader abstracts a pseudo-filesystem mount for trace capture. Both
// *pseudofs.Mount and any retrying wrapper satisfy it; the indirection
// keeps this package free of a pseudofs dependency (pseudofs's own tests
// import workload).
type Reader interface {
	Read(path string) (string, error)
}

// TraceSpec names one benign workload and the pseudo-file set a run of it
// touches.
type TraceSpec struct {
	Name    string
	Intents []string
}

// Trace is the per-path outcome of replaying one workload's read intents
// through a mount.
type Trace struct {
	// Workload is the spec name the trace was captured for.
	Workload string `json:"workload"`
	// Reads maps each successfully-read path to its read count.
	Reads map[string]int `json:"reads"`
	// Failures maps paths whose reads failed persistently to the error
	// observed (denied by policy, absent hardware, dead sensor).
	Failures map[string]string `json:"failures,omitempty"`
}

// Pseudo-file groups the intent derivation draws from. Paths must exist in
// the simulated tree (internal/pseudofs); several of them are Table I
// leakage channels — that overlap is the whole point: a policy that closes
// those channels by denial breaks these benign reads, so the synthesizer
// has to mask their content instead.
var (
	// startupReads is the libc/JVM startup footprint: every process sizes
	// the machine before it computes.
	startupReads = []string{"/proc/cpuinfo", "/proc/meminfo", "/proc/version"}
	// harnessReads is what a benchmark driver samples between runs.
	harnessReads = []string{"/proc/stat", "/proc/loadavg", "/proc/uptime"}
	// numaReads is the footprint of a NUMA-aware allocator.
	numaReads = []string{"/sys/devices/system/node/node0/meminfo", "/proc/vmstat"}
	// ioReads is the footprint of file-churning benchmarks: fd pressure,
	// mounted filesystems, block-device activity.
	ioReads = []string{"/proc/filesystems", "/proc/sys/fs/file-nr", "/proc/diskstats"}
	// spawnReads is what shell/exec-heavy workloads touch per process tree.
	spawnReads = []string{"/proc/sys/kernel/hostname", "/sys/devices/system/cpu/online"}
)

// ProfileIntents derives the deterministic pseudo-file read list of one
// benign run of p from the profile's microarchitectural shape: every run
// pays the startup and harness reads; memory-bound profiles (high cache
// misses per kilo-instruction) add the NUMA allocator's footprint.
func ProfileIntents(p Profile) []string {
	out := append([]string(nil), startupReads...)
	out = append(out, harnessReads...)
	if p.Rates.Instructions > 0 {
		cmPKI := p.Rates.CacheMisses / p.Rates.Instructions * 1000
		if cmPKI > 8 {
			out = append(out, numaReads...)
		}
	}
	return dedupeSorted(out)
}

// BenchIntents derives the read list of one UnixBench micro-benchmark:
// the harness footprint plus the IO table for file-churning benchmarks and
// the spawn footprint for exec-heavy ones.
func BenchIntents(b UnixBenchmark) []string {
	out := append([]string(nil), startupReads...)
	out = append(out, harnessReads...)
	if b.IOBound {
		out = append(out, ioReads...)
	}
	if b.ExecsPerOp > 0 {
		out = append(out, spawnReads...)
	}
	return dedupeSorted(out)
}

// BenignSuite returns the read-trace specs of the canonical benign tenant
// mix the policy miner replays: the seeded power-virus profile (the
// heaviest compute tenant a provider hosts) plus the twelve UnixBench
// micro-benchmarks. Deterministic for a fixed seed.
func BenignSuite(seed int64) []TraceSpec {
	virus := GeneratePowerVirus(power.DefaultConfig(), DefaultVirusConstraints(), 48, seed)
	specs := []TraceSpec{{Name: virus.Name, Intents: ProfileIntents(virus)}}
	for _, b := range UnixBenchSuite() {
		specs = append(specs, TraceSpec{Name: b.Name, Intents: BenchIntents(b)})
	}
	return specs
}

// captureRetries is how many extra attempts a failing read gets before the
// path is recorded as a failure — enough to outlast the transient-fault
// share of the chaos layer, mirroring core.CrossValidate's retry policy.
const captureRetries = 2

// CaptureTrace replays one workload's read intents through r. Each path is
// read a small seed-jittered number of times (a real harness samples
// /proc/stat a variable number of times per run); the count derives from a
// per-path hash split of (seed, workload, path), never from a shared
// stream, so the trace is identical no matter how many captures run
// concurrently. Failing reads are retried captureRetries extra times and
// recorded under Failures if they never succeed.
func CaptureTrace(r Reader, spec TraceSpec, seed int64) Trace {
	tr := Trace{Workload: spec.Name, Reads: make(map[string]int, len(spec.Intents))}
	for _, path := range spec.Intents {
		n := 1 + int(pathDraw(seed, spec.Name, path)%3)
		var lastErr error
		ok := 0
		for i := 0; i < n; i++ {
			var err error
			for attempt := 0; attempt <= captureRetries; attempt++ {
				if _, err = r.Read(path); err == nil {
					break
				}
			}
			if err != nil {
				lastErr = err
				continue
			}
			ok++
		}
		if ok > 0 {
			tr.Reads[path] = ok
		} else {
			if tr.Failures == nil {
				tr.Failures = make(map[string]string)
			}
			tr.Failures[path] = lastErr.Error()
		}
	}
	return tr
}

// CaptureAll replays every spec through r, fanning the captures out over a
// bounded worker pool. Results come back in spec order and each capture's
// randomness is split per (seed, workload, path), so the output is
// byte-identical at any worker count.
func CaptureAll(r Reader, specs []TraceSpec, seed int64, workers int) []Trace {
	out, _ := parallel.Map(workers, specs, func(_ int, spec TraceSpec) (Trace, error) {
		return CaptureTrace(r, spec, seed), nil
	})
	return out
}

// pathDraw is the split hash behind per-path read-count jitter: FNV-64a
// over (seed, workload, path) with a splitmix64-style finalizer, the same
// order-independence recipe the chaos layer and the cluster ring use.
func pathDraw(seed int64, workload, path string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(workload))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(path))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func dedupeSorted(paths []string) []string {
	sort.Strings(paths)
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out
}
