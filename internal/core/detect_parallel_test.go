package core

// Differential test for the parallel cross-validation path: fanning the
// per-path validations out over a worker pool must produce findings
// byte-identical to the serial reference loop, at any worker count, over
// the same live world. This is what the pseudo-file read-path audit buys
// (see ARCHITECTURE.md): with the clock paused, handlers are pure reads
// except the uuid draw (serialized on a dedicated RNG) — and uuid is
// classified Volatile regardless of the bytes drawn, so even that path
// renders identically.

import (
	"fmt"
	"testing"
)

func renderFindings(fs []Finding) string {
	s := ""
	for _, f := range fs {
		s += fmt.Sprintf("%s %s %.6f\n", f.Path, f.Status, f.Overlap)
	}
	return s
}

func TestCrossValidateWorkersMatchesSerial(t *testing.T) {
	k, r, c := newTestbed(t, 42)
	k.Tick(10, 10)
	host := hostMount(k, r)

	serial := renderFindings(CrossValidate(host, c.Mount()))
	if serial == "" {
		t.Fatal("serial cross-validation found nothing")
	}
	for _, w := range []int{1, 2, 8} {
		par := renderFindings(CrossValidateWorkers(host, c.Mount(), w))
		if par != serial {
			t.Fatalf("workers=%d findings differ from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				w, serial, par)
		}
	}
}

// TestCrossValidateWorkersRepeatable: running the parallel validator twice
// over the same paused world yields identical findings — concurrent reads
// must not mutate kernel state observable by a later pass.
func TestCrossValidateWorkersRepeatable(t *testing.T) {
	k, r, c := newTestbed(t, 7)
	k.Tick(5, 5)
	host := hostMount(k, r)
	first := renderFindings(CrossValidateWorkers(host, c.Mount(), 8))
	second := renderFindings(CrossValidateWorkers(host, c.Mount(), 8))
	if first != second {
		t.Fatalf("repeated parallel cross-validation diverged:\n--- first ---\n%s--- second ---\n%s",
			first, second)
	}
}
