package core

import (
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/kernel"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

func newTestbed(t *testing.T, seed int64) (*kernel.Kernel, *container.Runtime, *container.Container) {
	t.Helper()
	k := kernel.New(kernel.Options{Hostname: "node", Seed: seed})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	r := container.NewRuntime(k, fs, container.DockerProfile())
	c := r.Create("probe")
	return k, r, c
}

func hostMount(k *kernel.Kernel, r *container.Runtime) *pseudofs.Mount {
	return pseudofs.NewMount(r.FS(), pseudofs.HostView(k), pseudofs.Policy{})
}

func TestCrossValidateLocalTestbedFindsLeaks(t *testing.T) {
	k, r, c := newTestbed(t, 1)
	k.Tick(10, 10)
	findings := CrossValidate(hostMount(k, r), c.Mount())
	byPath := map[string]Finding{}
	for _, f := range findings {
		byPath[f.Path] = f
	}

	leaks := []string{
		"/proc/uptime", "/proc/version", "/proc/meminfo", "/proc/stat",
		"/proc/loadavg", "/proc/interrupts", "/proc/softirqs", "/proc/sched_debug",
		"/proc/timer_list", "/proc/zoneinfo", "/proc/modules", "/proc/cpuinfo",
		"/proc/schedstat", "/proc/sys/kernel/random/boot_id",
		"/sys/class/powercap/intel-rapl:0/energy_uj",
		"/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
	}
	for _, p := range leaks {
		if got := byPath[p].Status; got != Identical {
			t.Errorf("%s = %v, want identical (leak)", p, got)
		}
	}

	namespaced := []string{"/proc/sys/kernel/hostname", "/proc/self/cgroup"}
	for _, p := range namespaced {
		if got := byPath[p].Status; got != Namespaced {
			t.Errorf("%s = %v, want namespaced", p, got)
		}
	}

	if got := byPath["/proc/sys/kernel/random/uuid"].Status; got != Volatile {
		t.Errorf("uuid = %v, want volatile", got)
	}
	// Paths outside the tree are never validated.
	if got := byPath["/proc/kcore"].Status; got != Unknown {
		t.Errorf("kcore = %v, want unknown (not in tree)", got)
	}
}

func TestCrossValidateDetectsMasking(t *testing.T) {
	k, r, _ := newTestbed(t, 2)
	hardened := r.Create("hardened",
		pseudofs.Rule{Pattern: "/proc/timer_list", Do: pseudofs.Deny},
		pseudofs.Rule{Pattern: "/proc/sched_debug", Do: pseudofs.Empty},
	)
	findings := CrossValidate(hostMount(k, r), hardened.Mount())
	var timer, sched Finding
	for _, f := range findings {
		switch f.Path {
		case "/proc/timer_list":
			timer = f
		case "/proc/sched_debug":
			sched = f
		}
	}
	if timer.Status != Masked || sched.Status != Masked {
		t.Fatalf("timer=%v sched=%v, want masked", timer.Status, sched.Status)
	}
}

func TestCrossValidateDetectsPartial(t *testing.T) {
	k, r, _ := newTestbed(t, 3)
	k.Tick(5, 5)
	filtered := r.Create("filtered",
		pseudofs.Rule{Pattern: "/proc/meminfo", Do: pseudofs.Filter,
			Transform: func(s string) string {
				lines := strings.SplitN(s, "\n", 4)
				return strings.Join(lines[:3], "\n") + "\n"
			}},
	)
	findings := CrossValidate(hostMount(k, r), filtered.Mount())
	for _, f := range findings {
		if f.Path == "/proc/meminfo" {
			if f.Status != Partial {
				t.Fatalf("meminfo = %v (overlap %.2f), want partial", f.Status, f.Overlap)
			}
			return
		}
	}
	t.Fatal("meminfo not found")
}

func TestLineOverlap(t *testing.T) {
	if o := lineOverlap("a\nb\n", "a\nb\nc\n"); o != 1 {
		t.Fatalf("full overlap = %g", o)
	}
	if o := lineOverlap("a\nx\n", "a\nb\n"); o != 0.5 {
		t.Fatalf("half overlap = %g", o)
	}
	if o := lineOverlap("", "a\n"); o != 0 {
		t.Fatalf("empty overlap = %g", o)
	}
}

func TestFileStatusString(t *testing.T) {
	for s, want := range map[FileStatus]string{
		Identical: "identical", Namespaced: "namespaced", Partial: "partial",
		Masked: "masked", Absent: "absent", Volatile: "volatile",
		FileStatus(99): "unknown",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestAvailabilityGlyphs(t *testing.T) {
	if Available.String() != "●" || PartiallyAvailable.String() != "◐" || Unavailable.String() != "○" {
		t.Fatal("availability glyphs wrong")
	}
	if MDirect.String() != "●" || MIndirect.String() != "◐" || MNone.String() != "○" {
		t.Fatal("manipulation glyphs wrong")
	}
}

func TestRollUpLocalAllChannelsAvailable(t *testing.T) {
	k, r, c := newTestbed(t, 4)
	k.Tick(10, 10)
	reports := RollUp(TableIChannels(), CrossValidate(hostMount(k, r), c.Mount()))
	if len(reports) != 21 {
		t.Fatalf("reports = %d, want 21 Table I rows", len(reports))
	}
	for _, rep := range reports {
		if rep.Availability != Available {
			t.Errorf("%s = %v on the local testbed, want ● (files: %v)",
				rep.Channel.Name, rep.Availability, rep.Files)
		}
		if len(rep.Files) == 0 {
			t.Errorf("%s matched no files", rep.Channel.Name)
		}
	}
}

func TestAssessMeasuresVariationAndRanks(t *testing.T) {
	k, r, c := newTestbed(t, 5)
	c2 := r.Create("busy")
	c2.Run(workload.Prime, 2)

	now := 0.0
	advance := func() {
		now += 5
		k.Tick(now, 5)
	}
	advance()
	as := Assess(TableIIChannels(), c.Mount(), advance, 8)
	if len(as) != 29 {
		t.Fatalf("assessments = %d, want 29 Table II rows", len(as))
	}
	byName := map[string]Assessment{}
	for _, a := range as {
		byName[a.Channel.Name] = a
	}

	// V metric: boot_id static, uptime/meminfo/stat varying.
	if byName["/proc/sys/kernel/random/boot_id"].Varying {
		t.Error("boot_id must not vary")
	}
	for _, name := range []string{"/proc/uptime", "/proc/meminfo", "/proc/stat", "/proc/locks"} {
		if !byName[name].Varying {
			t.Errorf("%s should vary over time", name)
		}
	}
	if byName["/proc/version"].Varying || byName["/proc/cpuinfo"].Varying {
		t.Error("fleet-static channels must not vary")
	}

	// Rank order: static unique first, implantables next, then dynamic.
	if as[0].Channel.Name != "/proc/sys/kernel/random/boot_id" {
		t.Errorf("rank 1 = %s, want boot_id", as[0].Channel.Name)
	}
	if as[1].Channel.Name != "/sys/fs/cgroup/net_prio/net_prio.ifpriomap" {
		t.Errorf("rank 2 = %s, want ifpriomap", as[1].Channel.Name)
	}
	wantImplant := map[string]bool{"/proc/sched_debug": true, "/proc/timer_list": true, "/proc/locks": true}
	for i := 2; i <= 4; i++ {
		if !wantImplant[as[i].Channel.Name] {
			t.Errorf("rank %d = %s, want an implantable channel", i+1, as[i].Channel.Name)
		}
	}
	// The unrankable bottom: modules/cpuinfo/version with Rank 0.
	for _, name := range []string{"/proc/modules", "/proc/cpuinfo", "/proc/version"} {
		if byName[name].Rank != 0 {
			t.Errorf("%s rank = %d, want unranked (0)", name, byName[name].Rank)
		}
	}
	// Entropy: zoneinfo (dozens of fields) must beat entropy_avail (one).
	if byName["/proc/zoneinfo"].Entropy <= byName["/proc/sys/kernel/random/entropy_avail"].Entropy {
		t.Errorf("zoneinfo entropy %.1f should exceed entropy_avail %.1f",
			byName["/proc/zoneinfo"].Entropy, byName["/proc/sys/kernel/random/entropy_avail"].Entropy)
	}
}

func TestExtractNumbers(t *testing.T) {
	got := extractNumbers("MemTotal: 16342 kB\nload 0.52 x1.5")
	want := []float64{16342, 0.52, 1.5}
	if len(got) != len(want) {
		t.Fatalf("numbers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("numbers = %v, want %v", got, want)
		}
	}
	if n := extractNumbers("no digits"); len(n) != 0 {
		t.Fatalf("unexpected numbers %v", n)
	}
}

func TestDiscoverFiltersKnownChannels(t *testing.T) {
	channels := []Channel{{Name: "known", Paths: []string{"/proc/known*"}}}
	findings := []Finding{
		{Path: "/proc/known1", Status: Identical},
		{Path: "/proc/novel", Status: Identical},
		{Path: "/proc/alsonovel", Status: Partial},
		{Path: "/proc/fine", Status: Namespaced},
		{Path: "/proc/hidden", Status: Masked},
	}
	got := Discover(channels, findings)
	if len(got) != 2 {
		t.Fatalf("discovered = %v", got)
	}
	if got[0].Path != "/proc/novel" || got[1].Path != "/proc/alsonovel" {
		t.Fatalf("discovered = %v", got)
	}
}
