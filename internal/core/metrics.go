package core

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/pseudofs"
	"repro/internal/stats"
)

// Assessment is one Table II row: the channel's registry assessment plus
// the empirically measured variation flag and joint entropy.
type Assessment struct {
	Channel Channel
	// Varying is the measured V metric: does the channel's content change
	// over time?
	Varying bool
	// Entropy is the joint Shannon entropy (Formula 1) of the channel's
	// numeric fields across the sampling window, in bits. It orders the
	// U=false, V=true group.
	Entropy float64
	// Rank is the 1-based Table II position after sorting (ties share
	// order of appearance).
	Rank int
}

// Sampler advances the simulated world between samples (typically
// clock.Advance(dt)).
type Sampler func()

// Assess measures the V metric and channel entropy for each registry
// channel by snapshotting its files nSamples times through the mount,
// advancing the world between snapshots, then ranks everything in Table II
// order:
//
//  1. unique static identifiers (registry),
//  2. implantable channels (registry),
//  3. unique dynamic counters, by growth rate (registry),
//  4. non-unique varying channels, by measured entropy,
//  5. static fleet-wide channels, unranked at the bottom.
func Assess(channels []Channel, m *pseudofs.Mount, advance Sampler, nSamples int) []Assessment {
	if nSamples < 2 {
		nSamples = 2
	}
	paths := m.Paths()

	// Collect per-channel content samples over time.
	samples := make([][]string, len(channels)) // [channel][sample]
	for s := 0; s < nSamples; s++ {
		for ci, ch := range channels {
			var b strings.Builder
			for _, pat := range ch.Paths {
				for _, p := range paths {
					if !pseudofs.Match(pat, p) {
						continue
					}
					content, err := m.Read(p)
					if err != nil {
						continue
					}
					b.WriteString(content)
				}
			}
			samples[ci] = append(samples[ci], b.String())
		}
		if s < nSamples-1 {
			advance()
		}
	}

	out := make([]Assessment, len(channels))
	for ci, ch := range channels {
		a := Assessment{Channel: ch}
		for s := 1; s < len(samples[ci]); s++ {
			if samples[ci][s] != samples[ci][0] {
				a.Varying = true
				break
			}
		}
		if a.Varying {
			a.Entropy = channelEntropy(samples[ci])
		}
		out[ci] = a
	}

	rankAssessments(out)
	return out
}

// channelEntropy implements Formula (1): treat every numeric position in
// the file as an independent field X_i, estimate each field's entropy from
// its value distribution over the samples, and sum.
func channelEntropy(contentSamples []string) float64 {
	fields := make(map[int][]float64) // position → values over time
	for _, content := range contentSamples {
		for i, v := range extractNumbers(content) {
			fields[i] = append(fields[i], v)
		}
	}
	var h float64
	for _, vals := range fields {
		if len(vals) < 2 {
			continue
		}
		h += stats.EntropyFloat(vals, 16)
	}
	return h
}

// extractNumbers pulls every decimal number out of the content, in order.
func extractNumbers(content string) []float64 {
	var out []float64
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		if v, err := strconv.ParseFloat(content[start:end], 64); err == nil {
			out = append(out, v)
		}
		start = -1
	}
	for i := 0; i < len(content); i++ {
		c := content[i]
		isNum := c >= '0' && c <= '9' || c == '.'
		if isNum && start < 0 {
			start = i
		}
		if !isNum {
			flush(i)
		}
	}
	flush(len(content))
	return out
}

// rankAssessments orders in place and assigns Rank values.
func rankAssessments(as []Assessment) {
	group := func(a Assessment) int {
		switch a.Channel.Uniqueness {
		case UStatic:
			return 0
		case UImplant:
			return 1
		case UDynamic:
			return 2
		}
		if a.Varying {
			return 3
		}
		return 4
	}
	sort.SliceStable(as, func(i, j int) bool {
		gi, gj := group(as[i]), group(as[j])
		if gi != gj {
			return gi < gj
		}
		switch gi {
		case 2:
			return as[i].Channel.GrowthPerSec > as[j].Channel.GrowthPerSec
		case 3:
			return as[i].Entropy > as[j].Entropy
		default:
			return false // stable: keep registry order
		}
	})
	for i := range as {
		if group(as[i]) == 4 {
			as[i].Rank = 0 // unranked bottom group
			continue
		}
		as[i].Rank = i + 1
	}
}
