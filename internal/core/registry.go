// Package core implements the paper's primary contribution: the framework
// of Figure 1 for systematically discovering in-container information
// leakage channels and assessing their exploitability.
//
// It has three parts:
//
//   - the cross-validation detector (detect.go), which walks procfs/sysfs in
//     a host context and a container context, pairwise-diffs file contents,
//     and classifies each file as leaking, partially leaking, namespaced,
//     masked, or absent;
//   - the channel registry (this file), the analyst knowledge from Tables
//     I–II: which pseudo-files form a channel, what they leak, and the
//     uniqueness / variation / manipulation assessment;
//   - the metrics engine (metrics.go), which measures V empirically, scores
//     information capacity with the joint Shannon entropy of Formula (1),
//     and ranks channels for co-residence inference (Table II).
package core

// MLevel grades the manipulation metric M: whether a tenant can implant
// recognizable data into the channel.
type MLevel int

// Manipulation levels: None (○), Indirect (◐ — influence via workload, e.g.
// heating a pinned core), Direct (● — implant crafted data, e.g. a task
// name in timer_list).
const (
	MNone MLevel = iota
	MIndirect
	MDirect
)

// String renders the level the way Table II prints it.
func (m MLevel) String() string {
	switch m {
	case MDirect:
		return "●"
	case MIndirect:
		return "◐"
	default:
		return "○"
	}
}

// UClass describes how a uniquely-identifying channel identifies the host
// (Section III-C's three groups).
type UClass int

// Uniqueness classes, in Table II rank order.
const (
	UNone    UClass = iota // channel does not uniquely identify a host
	UStatic                // group 1: unique static identifier (boot_id)
	UImplant               // group 2: tenant can implant a unique signature
	UDynamic               // group 3: unique accumulating counters
)

// Channel is one leakage channel: a named family of pseudo-files plus the
// analyst assessment of Table I (vulnerability classes) and Table II
// (U/V/M) — everything except what must be *measured* (availability per
// cloud, variation, entropy), which the detector and metrics engine
// produce.
type Channel struct {
	// Name is the path (or path family) as Tables I–II print it.
	Name string
	// Paths are the concrete file patterns (pseudofs rule syntax).
	Paths []string
	// Info is the "Leakage Information" column of Table I.
	Info string

	// Table I vulnerability flags.
	CoRes, DoS, InfoLeak bool

	// Table II assessment.
	Uniqueness UClass
	Manipulate MLevel
	// GrowthPerSec orders UDynamic channels: a faster-growing counter has
	// less chance of cross-host collision.
	GrowthPerSec float64
}

// TableIChannels returns the 21 channel families of Table I, in the
// paper's row order.
func TableIChannels() []Channel {
	return []Channel{
		{Name: "/proc/locks", Paths: []string{"/proc/locks"},
			Info: "Files locked by the kernel", CoRes: true, InfoLeak: true,
			Uniqueness: UImplant, Manipulate: MDirect},
		{Name: "/proc/zoneinfo", Paths: []string{"/proc/zoneinfo"},
			Info: "Physical RAM information", CoRes: true, InfoLeak: true,
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/proc/modules", Paths: []string{"/proc/modules"},
			Info: "Loaded kernel modules information", InfoLeak: true,
			Uniqueness: UNone, Manipulate: MNone},
		{Name: "/proc/timer_list", Paths: []string{"/proc/timer_list"},
			Info: "Configured clocks and timers", CoRes: true, InfoLeak: true,
			Uniqueness: UImplant, Manipulate: MDirect},
		{Name: "/proc/sched_debug", Paths: []string{"/proc/sched_debug"},
			Info: "Task scheduler behavior", CoRes: true, InfoLeak: true,
			Uniqueness: UImplant, Manipulate: MDirect},
		{Name: "/proc/softirqs", Paths: []string{"/proc/softirqs"},
			Info: "Number of invoked softirq handler", CoRes: true, DoS: true, InfoLeak: true,
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 800},
		{Name: "/proc/uptime", Paths: []string{"/proc/uptime"},
			Info: "Up and idle time", CoRes: true, InfoLeak: true,
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 9},
		{Name: "/proc/version", Paths: []string{"/proc/version"},
			Info: "Kernel, gcc, distribution version", InfoLeak: true,
			Uniqueness: UNone, Manipulate: MNone},
		{Name: "/proc/stat", Paths: []string{"/proc/stat"},
			Info: "Kernel activities", CoRes: true, DoS: true, InfoLeak: true,
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 1200},
		{Name: "/proc/meminfo", Paths: []string{"/proc/meminfo"},
			Info: "Memory information", CoRes: true, DoS: true, InfoLeak: true,
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/proc/loadavg", Paths: []string{"/proc/loadavg"},
			Info: "CPU and IO utilization over time", CoRes: true, InfoLeak: true,
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/proc/interrupts", Paths: []string{"/proc/interrupts"},
			Info: "Number of interrupts per IRQ", CoRes: true, InfoLeak: true,
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 2400},
		{Name: "/proc/cpuinfo", Paths: []string{"/proc/cpuinfo"},
			Info: "CPU information", CoRes: true, InfoLeak: true,
			Uniqueness: UNone, Manipulate: MNone},
		{Name: "/proc/schedstat", Paths: []string{"/proc/schedstat"},
			Info: "Schedule statistics", CoRes: true, InfoLeak: true,
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 1000},
		{Name: "/proc/sys/fs/*", Paths: []string{
			"/proc/sys/fs/dentry-state", "/proc/sys/fs/inode-nr", "/proc/sys/fs/file-nr"},
			Info: "File system information", CoRes: true, InfoLeak: true,
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 40},
		{Name: "/proc/sys/kernel/random/*", Paths: []string{"/proc/sys/kernel/random/*"},
			Info: "Random number generation info", CoRes: true, InfoLeak: true,
			Uniqueness: UStatic, Manipulate: MNone},
		{Name: "/proc/sys/kernel/sched_domain/*", Paths: []string{
			"/proc/sys/kernel/sched_domain/cpu*/domain*/max_newidle_lb_cost"},
			Info: "Schedule domain info", CoRes: true, InfoLeak: true,
			Uniqueness: UNone, Manipulate: MNone},
		{Name: "/proc/fs/ext4/*", Paths: []string{"/proc/fs/ext4/sda1/mb_groups"},
			Info: "Ext4 file system info", CoRes: true, InfoLeak: true,
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/sys/fs/cgroup/net_prio/*", Paths: []string{
			"/sys/fs/cgroup/net_prio/net_prio.ifpriomap"},
			Info: "Priorities assigned to traffic", InfoLeak: true,
			Uniqueness: UStatic, Manipulate: MNone},
		{Name: "/sys/devices/*", Paths: []string{
			"/sys/devices/system/node/node0/numastat",
			"/sys/devices/system/node/node0/vmstat",
			"/sys/devices/system/node/node0/meminfo",
			"/sys/devices/system/cpu/cpu*/cpuidle/state*/usage",
			"/sys/devices/system/cpu/cpu*/cpuidle/state*/time",
			"/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp*_input"},
			Info: "System device information", CoRes: true, DoS: true, InfoLeak: true,
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 300},
		{Name: "/sys/class/*", Paths: []string{
			"/sys/class/powercap/intel-rapl:0/energy_uj",
			"/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/energy_uj",
			"/sys/class/powercap/intel-rapl:0/intel-rapl:0:1/energy_uj"},
			Info: "System device information", DoS: true, InfoLeak: true,
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 3e7},
	}
}

// FrequencyChannel is the DVFS side channel: per-core cpufreq readings
// follow host-wide load under the schedutil governor, so a tenant that
// samples scaling_cur_freq (or the P-state transition counters) observes
// its neighbours' activity even when every classic procfs channel is
// proxied away by a sandboxed runtime. It is not a Table I row — it
// extends the matrix past the paper's channel set.
func FrequencyChannel() Channel {
	return Channel{
		Name: "/sys/devices/system/cpu/*/cpufreq/*",
		Paths: []string{
			"/sys/devices/system/cpu/cpu*/cpufreq/scaling_cur_freq",
			"/sys/devices/system/cpu/cpu*/cpufreq/stats/total_trans",
		},
		Info:  "Per-core DVFS frequency and P-state transitions",
		CoRes: true, InfoLeak: true,
		Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 50,
	}
}

// MatrixChannels returns the channel set of the runtime-aware matrix: the
// 21 Table I families plus the frequency channel. Table1 keeps using
// TableIChannels so the paper's table stays byte-identical; the matrix
// sweep and discovery use this superset.
func MatrixChannels() []Channel {
	return append(TableIChannels(), FrequencyChannel())
}

// TableIIChannels returns the 29 fine-grained rows of Table II. Rows that
// coincide with a Table I family reuse its assessment at file granularity.
func TableIIChannels() []Channel {
	return []Channel{
		{Name: "/proc/sys/kernel/random/boot_id", Paths: []string{"/proc/sys/kernel/random/boot_id"},
			Uniqueness: UStatic, Manipulate: MNone},
		{Name: "/sys/fs/cgroup/net_prio/net_prio.ifpriomap", Paths: []string{"/sys/fs/cgroup/net_prio/net_prio.ifpriomap"},
			Uniqueness: UStatic, Manipulate: MNone},
		{Name: "/proc/sched_debug", Paths: []string{"/proc/sched_debug"},
			Uniqueness: UImplant, Manipulate: MDirect},
		{Name: "/proc/timer_list", Paths: []string{"/proc/timer_list"},
			Uniqueness: UImplant, Manipulate: MDirect},
		{Name: "/proc/locks", Paths: []string{"/proc/locks"},
			Uniqueness: UImplant, Manipulate: MDirect},
		{Name: "/proc/uptime", Paths: []string{"/proc/uptime"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 9},
		{Name: "/proc/stat", Paths: []string{"/proc/stat"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 1200},
		{Name: "/proc/schedstat", Paths: []string{"/proc/schedstat"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 1000},
		{Name: "/proc/softirqs", Paths: []string{"/proc/softirqs"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 800},
		{Name: "/proc/interrupts", Paths: []string{"/proc/interrupts"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 2400},
		{Name: "/sys/devices/system/node/node#/numastat", Paths: []string{"/sys/devices/system/node/node0/numastat"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 5000},
		{Name: "/sys/class/powercap/.../energy_uj", Paths: []string{
			"/sys/class/powercap/intel-rapl:0/energy_uj"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 3e7},
		{Name: "/sys/devices/system/.../usage", Paths: []string{"/sys/devices/system/cpu/cpu*/cpuidle/state*/usage"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 80},
		{Name: "/sys/devices/system/.../time", Paths: []string{"/sys/devices/system/cpu/cpu*/cpuidle/state*/time"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 120000},
		{Name: "/proc/sys/fs/dentry-state", Paths: []string{"/proc/sys/fs/dentry-state"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 42},
		{Name: "/proc/sys/fs/inode-nr", Paths: []string{"/proc/sys/fs/inode-nr"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 21},
		{Name: "/proc/sys/fs/file-nr", Paths: []string{"/proc/sys/fs/file-nr"},
			Uniqueness: UDynamic, Manipulate: MIndirect, GrowthPerSec: 10},
		{Name: "/proc/zoneinfo", Paths: []string{"/proc/zoneinfo"},
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/proc/meminfo", Paths: []string{"/proc/meminfo"},
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/proc/fs/ext4/sda#/mb_groups", Paths: []string{"/proc/fs/ext4/sda1/mb_groups"},
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/sys/devices/system/node/node#/vmstat", Paths: []string{"/sys/devices/system/node/node0/vmstat"},
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/sys/devices/system/node/node#/meminfo", Paths: []string{"/sys/devices/system/node/node0/meminfo"},
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/sys/devices/platform/.../temp#_input", Paths: []string{
			"/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp*_input"},
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/proc/loadavg", Paths: []string{"/proc/loadavg"},
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/proc/sys/kernel/random/entropy_avail", Paths: []string{"/proc/sys/kernel/random/entropy_avail"},
			Uniqueness: UNone, Manipulate: MIndirect},
		{Name: "/proc/sys/kernel/.../max_newidle_lb_cost", Paths: []string{
			"/proc/sys/kernel/sched_domain/cpu*/domain*/max_newidle_lb_cost"},
			Uniqueness: UNone, Manipulate: MNone},
		{Name: "/proc/modules", Paths: []string{"/proc/modules"},
			Uniqueness: UNone, Manipulate: MNone},
		{Name: "/proc/cpuinfo", Paths: []string{"/proc/cpuinfo"},
			Uniqueness: UNone, Manipulate: MNone},
		{Name: "/proc/version", Paths: []string{"/proc/version"},
			Uniqueness: UNone, Manipulate: MNone},
	}
}
