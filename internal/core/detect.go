package core

import (
	"errors"
	"strings"

	"repro/internal/parallel"
	"repro/internal/pseudofs"
)

// FileStatus classifies one pseudo-file after cross-validation.
type FileStatus int

// Cross-validation outcomes. Identical content in both contexts means the
// handler reached the same kernel data (case ② of Fig. 1 — a leak);
// Namespaced means the container got private data (case ①); Partial means
// the container content is a proper subset of host content (provider
// filtering, CC5-style); Masked means policy denied or emptied the read;
// Absent means the file does not exist in the container's tree; Volatile
// means the file changes on every read (e.g. random/uuid) so equality is
// undecidable by content diffing.
const (
	Unknown FileStatus = iota // zero value: path never validated
	Identical
	Namespaced
	Partial
	Masked
	Absent
	Volatile
)

// String implements fmt.Stringer.
func (s FileStatus) String() string {
	switch s {
	case Identical:
		return "identical"
	case Namespaced:
		return "namespaced"
	case Partial:
		return "partial"
	case Masked:
		return "masked"
	case Absent:
		return "absent"
	case Volatile:
		return "volatile"
	default:
		return "unknown"
	}
}

// Finding is the cross-validation result for one file path.
type Finding struct {
	Path   string
	Status FileStatus
	// Overlap is the fraction of container lines that also appear in the
	// host content (meaningful for Namespaced/Partial).
	Overlap float64
}

// CrossValidate implements the left half of Fig. 1: it recursively explores
// every pseudo-file reachable in the container context, reads each file in
// both the container and host contexts at the same instant, aligns by path,
// and pairwise-diffs the contents. This is the strictly serial reference
// path; CrossValidateWorkers fans the per-path validations out.
func CrossValidate(host, cont *pseudofs.Mount) []Finding {
	var out []Finding
	for _, path := range cont.Paths() {
		out = append(out, validateOne(host, cont, path))
	}
	return out
}

// CrossValidateWorkers is CrossValidate fanned out over a bounded worker
// pool (workers <= 0 selects GOMAXPROCS; 1 falls back to the serial loop).
//
// Safety rests on the pseudo-filesystem read-path audit: with the clock
// paused, every handler is a pure read except /proc/sys/kernel/random/uuid
// (its draw is serialized on a dedicated RNG inside the kernel) and a
// defended host's energy_uj / temp#_input (their lazy accounting update is
// serialized inside powerns and advances at most once per simulated
// instant). Per-path findings are mutually independent, and parallel.Map
// returns them in path order, so the result is byte-identical to the
// serial path at any worker count.
func CrossValidateWorkers(host, cont *pseudofs.Mount, workers int) []Finding {
	paths := cont.Paths()
	if parallel.Workers(workers) == 1 || len(paths) < 2 {
		return CrossValidate(host, cont)
	}
	out, _ := parallel.Map(workers, paths, func(_ int, path string) (Finding, error) {
		return validateOne(host, cont, path), nil
	})
	return out
}

// Quorum-read parameters: each path is read quorumReads times in the
// container context, and each of those reads retries transient failures
// (pseudofs.ErrTransient) up to readRetries extra attempts. Against a
// flaky observation surface, a single read is evidence of nothing: a
// transient glitch is indistinguishable from a dynamic channel, and one
// denied read is indistinguishable from a permanent mask. The quorum
// resolves both: majority content decides equality, a denied/ok mix marks
// a flapping mask, and only genuine per-read divergence (random/uuid) is
// left classified as Volatile.
const (
	quorumReads = 3
	readRetries = 2
)

// quorumResult summarizes quorumReads container reads of one path.
type quorumResult struct {
	content string // majority content among successful reads (first-seen tie-break)
	agree   int    // successful reads returning the majority content
	ok      int    // successful reads
	denied  int    // reads failing with ErrDenied
	absent  int    // reads failing with ErrNotExist
	failed  int    // reads failing persistently any other way
}

// readRetry reads path through m, retrying transient failures up to
// readRetries extra attempts. Non-transient errors return immediately.
func readRetry(m *pseudofs.Mount, path string) (string, error) {
	var (
		data string
		err  error
	)
	for attempt := 0; ; attempt++ {
		data, err = m.Read(path)
		if err == nil || attempt >= readRetries || !errors.Is(err, pseudofs.ErrTransient) {
			return data, err
		}
	}
}

// quorumRead performs the k-read protocol for one path.
func quorumRead(m *pseudofs.Mount, path string) quorumResult {
	var q quorumResult
	counts := make(map[string]int, quorumReads)
	order := make([]string, 0, quorumReads)
	for i := 0; i < quorumReads; i++ {
		data, err := readRetry(m, path)
		switch {
		case err == nil:
			q.ok++
			if counts[data] == 0 {
				order = append(order, data)
			}
			counts[data]++
		case errors.Is(err, pseudofs.ErrDenied):
			q.denied++
		case errors.Is(err, pseudofs.ErrNotExist):
			q.absent++
		default:
			q.failed++
		}
	}
	for _, c := range order {
		if counts[c] > q.agree {
			q.content, q.agree = c, counts[c]
		}
	}
	return q
}

// HostRead supplies host-context content for one path during validation.
// The default implementation is HostReader (a retrying read of the host
// mount); the incremental engine injects a caching reader instead so one
// host render is shared across every container of a fleet pass.
//
// Contract: a HostRead must be equivalent to HostReader(host) — same
// content, same error classification — whenever it is invoked. ValidatePath
// only consults it after the container quorum agreed on non-empty content,
// so implementations never see volatile paths (the quorum disagrees on
// those first).
type HostRead func(path string) (string, error)

// HostReader returns the plain HostRead over a host mount: one policied
// read with transient-failure retries.
func HostReader(host *pseudofs.Mount) HostRead {
	return func(path string) (string, error) { return readRetry(host, path) }
}

// ValidatePath cross-validates a single path: quorum-read it in the
// container context, and — only when the quorum agrees on non-empty
// content — compare against the host content supplied by hostRead. It is
// validateOne with the host read injected, exported for the incremental
// engine.
func ValidatePath(hostRead HostRead, cont *pseudofs.Mount, path string) Finding {
	f := Finding{Path: path}
	cq := quorumRead(cont, path)
	switch {
	case cq.ok == 0 && cq.denied > 0:
		f.Status = Masked
		return f
	case cq.ok == 0:
		// Absent, or persistently unreadable (a dead sensor path reads the
		// same as missing hardware from inside the container).
		f.Status = Absent
		return f
	}
	// Volatility: with at least two successful reads, no two agreeing means
	// the file genuinely changes between back-to-back reads (random/uuid) —
	// equality is undecidable by content diffing. A single transient glitch
	// no longer lands here: torn and stale reads are outvoted by the
	// majority, and failed reads were already retried.
	if cq.ok >= 2 && cq.agree < 2 {
		f.Status = Volatile
		return f
	}
	cData := cq.content
	if cData == "" {
		f.Status = Masked // bind-mounted empty file
		return f
	}
	hData, hErr := hostRead(path)
	if hErr != nil {
		// Readable in the container but not on the host can only be a
		// harness inconsistency; treat as namespaced.
		f.Status = Namespaced
		return f
	}
	// A denied/ok mix means the mask flapped mid-quorum: the channel is
	// readable but unreliably so. Degrade an identical match to Partial
	// instead of reporting a hard leak (or erroring out).
	flapped := cq.denied > 0
	if cData == hData {
		f.Overlap = 1
		if flapped {
			f.Status = Partial
		} else {
			f.Status = Identical
		}
		return f
	}
	f.Overlap = lineOverlap(cData, hData)
	if f.Overlap >= 0.99 {
		f.Status = Partial
	} else {
		f.Status = Namespaced
	}
	return f
}

// validateOne is the classic host-mount entry point used by the serial and
// worker-pool sweeps.
func validateOne(host, cont *pseudofs.Mount, path string) Finding {
	return ValidatePath(HostReader(host), cont, path)
}

// lineOverlap returns the fraction of non-empty container lines that appear
// verbatim in the host content.
func lineOverlap(cont, host string) float64 {
	hostLines := make(map[string]bool)
	for _, l := range strings.Split(host, "\n") {
		if l != "" {
			hostLines[l] = true
		}
	}
	var total, hit int
	for _, l := range strings.Split(cont, "\n") {
		if l == "" {
			continue
		}
		total++
		if hostLines[l] {
			hit++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// Availability is a channel's per-cloud availability in Table I.
type Availability int

// Channel availability: Available (●) — the channel leaks host data;
// PartiallyAvailable (◐) — filtered but still partially informative;
// Unavailable (○) — masked or hardware-absent.
const (
	Unavailable Availability = iota
	PartiallyAvailable
	Available
)

// String renders the availability glyph used in Table I.
func (a Availability) String() string {
	switch a {
	case Available:
		return "●"
	case PartiallyAvailable:
		return "◐"
	default:
		return "○"
	}
}

// ChannelReport is the per-channel roll-up of file findings.
type ChannelReport struct {
	Channel      Channel
	Availability Availability
	Files        []Finding
}

// Discover returns the findings that leak (Identical or Partial) but match
// no pattern of the given channel registry — the "new channel" output of a
// systematic sweep, which is what distinguishes the paper's cross-
// validation approach from auditing a fixed checklist.
func Discover(channels []Channel, findings []Finding) []Finding {
	known := func(path string) bool {
		for _, ch := range channels {
			for _, pat := range ch.Paths {
				if pseudofs.Match(pat, path) {
					return true
				}
			}
		}
		return false
	}
	var out []Finding
	for _, f := range findings {
		if f.Status != Identical && f.Status != Partial {
			continue
		}
		if !known(f.Path) {
			out = append(out, f)
		}
	}
	return out
}

// RollUp groups findings into registry channels and derives each channel's
// availability: Available if any member file reads identical to the host,
// PartiallyAvailable if the best member is a filtered subset (or volatile —
// still host kernel state), else Unavailable.
func RollUp(channels []Channel, findings []Finding) []ChannelReport {
	reports := make([]ChannelReport, 0, len(channels))
	for _, ch := range channels {
		rep := ChannelReport{Channel: ch}
		for _, f := range findings {
			for _, pat := range ch.Paths {
				if pseudofs.Match(pat, f.Path) {
					rep.Files = append(rep.Files, f)
					break
				}
			}
		}
		best := Unavailable
		for _, f := range rep.Files {
			switch f.Status {
			case Identical:
				best = Available
			case Partial, Volatile:
				if best < PartiallyAvailable {
					best = PartiallyAvailable
				}
			}
		}
		rep.Availability = best
		reports = append(reports, rep)
	}
	return reports
}
