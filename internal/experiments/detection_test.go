package experiments

import (
	"strings"
	"testing"
)

func TestDetectionFlagsLiveAttacker(t *testing.T) {
	r, err := Detection()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]struct {
		align, duty float64
		suspicious  bool
	}{}
	for _, s := range r.Scores {
		byName[s.Tenant] = struct {
			align, duty float64
			suspicious  bool
		}{s.CrestAlignment, s.BurstDuty, s.Suspicious}
	}
	m := byName["mallory"]
	if !m.suspicious {
		t.Fatalf("live attacker not flagged: %+v", m)
	}
	if byName["webshop"].suspicious {
		t.Fatalf("steady tenant flagged: %+v", byName["webshop"])
	}
	if byName["cron-worker"].suspicious {
		t.Fatalf("clock-driven tenant flagged: %+v", byName["cron-worker"])
	}
	if !strings.Contains(r.String(), "DETECTION") {
		t.Fatal("render incomplete")
	}
}
