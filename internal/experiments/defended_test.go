package experiments

import (
	"strings"
	"testing"
)

func TestDefendedAttackNeutralized(t *testing.T) {
	r, err := DefendedAttack()
	if err != nil {
		t.Fatal(err)
	}
	// Undefended: the pipeline works — distinct hosts found, crest-timed
	// bursts land.
	if r.UndefendedDistinctHosts != 4 {
		t.Fatalf("undefended orchestration found %d hosts, want 4", r.UndefendedDistinctHosts)
	}
	if r.Undefended.Trials == 0 {
		t.Fatal("undefended attack never fired")
	}
	// Defended: the attacker's power view is essentially flat…
	if r.DefendedSignalRangeW > 2 {
		t.Fatalf("defended signal range %.2f W — the surge is still visible", r.DefendedSignalRangeW)
	}
	// …and the orchestration is deceived: it believes it has hosts it
	// cannot verify (per-namespace boot ids), ending up with duplicates.
	if r.DefendedDistinctHosts >= r.DefendedClaimedHosts {
		t.Fatalf("defended orchestration was not deceived: %d claimed, %d real",
			r.DefendedClaimedHosts, r.DefendedDistinctHosts)
	}
	// Net effect: the defended peak cannot exceed the undefended one.
	if r.Defended.PeakW > r.Undefended.PeakW {
		t.Fatalf("defense made the attack stronger? %.0f vs %.0f W",
			r.Defended.PeakW, r.Undefended.PeakW)
	}
	if !strings.Contains(r.String(), "DEFENSE vs ATTACK") {
		t.Fatal("render incomplete")
	}
}
