package experiments

import (
	"errors"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cloud"
	"repro/internal/defense"
	"repro/internal/powerns"
	"repro/internal/texttable"
	"repro/internal/workload"
)

// DetectionResult is the provider-side analytics experiment: per-container
// power metering (the power namespace used purely as an observability tool,
// never installed into tenant views) feeds the crest-alignment scorer, and
// the synergistic attacker stands out from benign tenants.
type DetectionResult struct {
	Scores []defense.SuspicionScore
}

// detectionDebug exposes the raw traces for diagnostics.
func detectionDebug() (*DetectionResult, []float64, map[string][]float64, error) {
	return detectionImpl()
}

// Detection runs a 3000 s scenario on one busy host: a steady web tenant, a
// cron-style bursty tenant (bursts on a fixed grid), and a synergistic
// attacker bursting exactly on background crests via the leaked RAPL
// channel. The operator meters all three and scores them.
func Detection() (*DetectionResult, error) {
	r, _, _, err := detectionImpl()
	return r, err
}

func detectionImpl() (*DetectionResult, []float64, map[string][]float64, error) {
	model, _, err := powerns.Train(powerns.TrainOptions{Seed: 81})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: detection train: %w", err)
	}
	// Frequent sharp flash crowds: the attacker's rolling-percentile
	// trigger needs crest examples during its warmup to calibrate.
	dc := cloud.New(cloud.Config{
		Racks: 1, ServersPerRack: 1, CoresPerServer: 24, Seed: 82,
		BreakerRatedW: 1e9,
		Benign:        cloud.BenignConfig{FlashCrowdPerDay: 240, FlashMinS: 60, FlashMaxS: 180, SharedFlash: true},
	})
	srv := dc.Racks[0].Servers[0]
	dc.Clock.Run(16*3600, 30) // evening

	web := srv.Runtime.Create("webshop")
	cron := srv.Runtime.Create("cron-worker")
	mallory := srv.Runtime.Create("mallory")

	// Operator-side metering only: powerns is never Installed, so tenants
	// keep their (leaky) views and the attack still works.
	meterNS := powerns.New(srv.Kernel, model)
	for _, cg := range []string{web.CgroupPath, cron.CgroupPath, mallory.CgroupPath} {
		meterNS.Register(cg)
	}

	web.Run(workload.Prime, 3) // steady 3-core service

	mon, err := attack.NewPowerMonitor(mallory)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: detection monitor: %w", err)
	}

	const duration = 3000
	rack := make([]float64, 0, duration)
	traces := map[string][]float64{}
	prevE := map[string]float64{}
	for _, cg := range []string{web.CgroupPath, cron.CgroupPath, mallory.CgroupPath} {
		e, err := meterNS.Meter(cg)
		if err != nil {
			return nil, nil, nil, err
		}
		prevE[cg] = e
	}

	cronBusyUntil := -1.0
	malloryBusyUntil := -1.0
	lastMalloryBurst := -1e9
	for t := 0; t < duration; t++ {
		now := dc.Clock.Now()

		// Cron tenant: 60 s burst every 400 s, on its own schedule.
		if t%400 == 0 {
			cron.Run(workload.StressM64, 4)
			cronBusyUntil = now + 60
		}
		if cronBusyUntil > 0 && now >= cronBusyUntil {
			cron.StopAll()
			cronBusyUntil = -1
		}

		// Mallory: sample the leaked host power; burst 60 s on near-max
		// crests with a 240 s cooldown.
		w, err := mon.Sample(1)
		if err != nil && !errors.Is(err, attack.ErrPrimed) {
			return nil, nil, nil, err
		}
		if malloryBusyUntil > 0 && now >= malloryBusyUntil {
			mallory.StopAll()
			malloryBusyUntil = -1
		}
		if malloryBusyUntil < 0 && t > 600 && now-lastMalloryBurst > 300 &&
			mon.IsCrest(97, 60) && w > 0 {
			mallory.Run(workload.Prime, 4)
			malloryBusyUntil = now + 60
			lastMalloryBurst = now
		}

		dc.Clock.Advance(1)
		rack = append(rack, srv.Kernel.Meter().WallPower())
		for _, cg := range []string{web.CgroupPath, cron.CgroupPath, mallory.CgroupPath} {
			e, err := meterNS.Meter(cg)
			if err != nil {
				return nil, nil, nil, err
			}
			traces[cg] = append(traces[cg], (e-prevE[cg])/1e6)
			prevE[cg] = e
		}
	}

	scores, err := defense.ScoreTenants(rack, []defense.TenantTrace{
		{Tenant: "webshop", Watts: traces[web.CgroupPath]},
		{Tenant: "cron-worker", Watts: traces[cron.CgroupPath]},
		{Tenant: "mallory", Watts: traces[mallory.CgroupPath]},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	named := map[string][]float64{
		"webshop": traces[web.CgroupPath], "cron-worker": traces[cron.CgroupPath],
		"mallory": traces[mallory.CgroupPath],
	}
	return &DetectionResult{Scores: scores}, rack, named, nil
}

// String renders the suspicion table.
func (r *DetectionResult) String() string {
	tb := texttable.New("Tenant", "Crest alignment", "Burst duty", "Corr.", "Suspicious")
	for _, s := range r.Scores {
		flag := ""
		if s.Suspicious {
			flag = "⚠"
		}
		tb.Row(s.Tenant, fmt.Sprintf("%.2f", s.CrestAlignment),
			fmt.Sprintf("%.2f", s.BurstDuty), fmt.Sprintf("%+.2f", s.Correlation), flag)
	}
	return "ATTACK DETECTION (extension): operator-side crest-alignment scoring over\n" +
		"per-container power metering (the power namespace as pure observability)\n" + tb.String()
}
