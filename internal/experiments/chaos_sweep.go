package experiments

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/parallel"
	"repro/internal/texttable"
)

// Shape targets a fault rate must preserve to count as "held": the Table I
// availability matrix agrees with the clean baseline on at least this
// fraction of cells, the synergistic attack still matches or beats the
// periodic baseline's peak (within a 0.5% tie band), and the defense's
// modeling error stays under the paper's 5% bound.
const (
	sweepAgreeFloor = 0.90
	sweepXiCeil     = 0.05
	sweepTieBand    = 0.995
)

// ChaosCell is one fault rate's measurement across the three pipelines:
// detector (Table I agreement with the clean baseline), attack (synergistic
// vs periodic peak under faulty monitors), and defense (max ξ with faulty
// training and calibration counters).
type ChaosCell struct {
	Rate float64

	// Table1Agree is the fraction of Table I availability cells identical
	// to the chaos-free baseline. Providers whose inspection failed under
	// chaos count every cell as disagreement.
	Table1Agree float64

	// SynPeakW/PerPeakW are the Fig. 3 rack peaks; MonitorFaults counts
	// Sample errors the synergistic campaign absorbed by holding the last
	// good reading.
	SynPeakW, PerPeakW float64
	MonitorFaults      int

	// MaxXi is the Fig. 8 worst-case modeling error under perturbed
	// training and calibration streams.
	MaxXi float64

	// Errs records sub-experiment failures (captured, never fatal: the
	// sweep's job is to chart degradation, not to die of it).
	Errs []string
}

// Holds reports whether every shape target survived at this rate.
func (c *ChaosCell) Holds() bool {
	return len(c.Errs) == 0 &&
		c.Table1Agree >= sweepAgreeFloor &&
		c.MaxXi < sweepXiCeil &&
		c.SynPeakW >= c.PerPeakW*sweepTieBand
}

// ChaosSweepResult is the fault-rate grid.
type ChaosSweepResult struct {
	Seed  int64
	Cells []ChaosCell
	// HoldRate is the highest rate in the contiguous prefix of the grid at
	// which every shape target holds (0 when even the lowest rate breaks
	// something).
	HoldRate float64
}

// DefaultChaosRates is the standard sweep grid.
func DefaultChaosRates() []float64 { return []float64{0.01, 0.02, 0.05, 0.10, 0.20} }

// ChaosSweep measures how the paper's three pipelines degrade as the fault
// rate rises: each cell re-runs Table I, Fig. 3, and Fig. 8 under
// deterministic fault injection at that rate and checks the shape targets
// against a chaos-free baseline. Cells are share-nothing (every experiment
// builds its own worlds, and fault streams are salted per host/path), so
// they fan out across workers with byte-identical results at any count.
func ChaosSweep(rates []float64, seed int64, workers int) (*ChaosSweepResult, error) {
	return ChaosSweepCtx(context.Background(), rates, seed, workers)
}

// ChaosSweepCtx is ChaosSweep with cooperative cancellation: each grid cell
// re-runs three full pipelines, so this is the longest sweep in the
// repository, and a daemon shutdown must be able to abandon the
// not-yet-dispatched rates. A background context is byte-identical to
// ChaosSweep.
func ChaosSweepCtx(ctx context.Context, rates []float64, seed int64, workers int) (*ChaosSweepResult, error) {
	if len(rates) == 0 {
		rates = DefaultChaosRates()
	}
	base, err := Table1Seeded(ctx, chaos.Spec{}, 0, workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos sweep baseline: %w", err)
	}
	cells, err := parallel.MapCtx(ctx, workers, rates, func(_ context.Context, _ int, rate float64) (ChaosCell, error) {
		return chaosCell(chaos.Spec{Rate: rate, Seed: seed}, base), nil
	})
	if err != nil {
		return nil, err
	}
	res := &ChaosSweepResult{Seed: seed, Cells: cells}
	// Ordered reduction over the rate grid: HoldRate is a prefix property.
	for i := range cells {
		if !cells[i].Holds() {
			break
		}
		res.HoldRate = cells[i].Rate
	}
	return res, nil
}

// chaosCell runs one rate's three sub-experiments, folding failures into
// the cell instead of aborting the sweep. Inner experiments run single-
// worker; the sweep parallelizes across cells.
func chaosCell(spec chaos.Spec, base *Table1Result) ChaosCell {
	cell := ChaosCell{Rate: spec.Rate}

	if t1, err := Table1ChaosWorkers(spec, 1); err != nil {
		cell.Errs = append(cell.Errs, fmt.Sprintf("table1: %v", err))
	} else {
		cell.Table1Agree = table1Agreement(base, t1)
	}

	if f3, err := Fig3Chaos(spec); err != nil {
		cell.Errs = append(cell.Errs, fmt.Sprintf("fig3: %v", err))
	} else {
		cell.SynPeakW = f3.Synergistic.PeakW
		cell.PerPeakW = f3.Periodic.PeakW
		cell.MonitorFaults = f3.Synergistic.MonitorFaults
	}

	if f8, err := Fig8ChaosWorkers(spec, 1); err != nil {
		cell.Errs = append(cell.Errs, fmt.Sprintf("fig8: %v", err))
	} else {
		cell.MaxXi = f8.MaxXi
	}
	return cell
}

// table1Agreement is the fraction of availability cells on which two Table I
// runs agree. A provider that failed in either run contributes total
// disagreement for its column — a crashed inspection is the worst outcome.
func table1Agreement(base, got *Table1Result) float64 {
	total, match := 0, 0
	for i, b := range base.Inspections {
		if i >= len(got.Inspections) {
			total += len(b.Reports)
			continue
		}
		g := got.Inspections[i]
		if b.Err != nil || g.Err != nil || len(b.Reports) != len(g.Reports) {
			total += len(b.Reports)
			continue
		}
		for j := range b.Reports {
			total++
			if g.Reports[j].Availability == b.Reports[j].Availability {
				match++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}

// String renders the degradation grid.
func (r *ChaosSweepResult) String() string {
	tb := texttable.New("Fault rate", "Table I agree", "Syn peak W", "Per peak W", "Mon faults", "max ξ", "Targets")
	for i := range r.Cells {
		c := &r.Cells[i]
		status := "hold"
		if !c.Holds() {
			status = "degraded"
		}
		if len(c.Errs) > 0 {
			status = "✗"
		}
		tb.Row(fmt.Sprintf("%.2f", c.Rate),
			fmt.Sprintf("%.1f%%", c.Table1Agree*100),
			fmt.Sprintf("%.0f", c.SynPeakW),
			fmt.Sprintf("%.0f", c.PerPeakW),
			fmt.Sprintf("%d", c.MonitorFaults),
			fmt.Sprintf("%.4f", c.MaxXi),
			status)
	}
	s := fmt.Sprintf(
		"CHAOS SWEEP (seed %d): detector / attack / defense under injected faults\n"+
			"  targets: Table I agreement ≥ %.0f%%, synergistic ≥ periodic peak, max ξ < %.2f\n%s"+
			"  all targets hold up to fault rate %.2f; degradation beyond is graceful (no aborts)\n",
		r.Seed, sweepAgreeFloor*100, sweepXiCeil, tb.String(), r.HoldRate)
	for i := range r.Cells {
		for _, e := range r.Cells[i].Errs {
			s += fmt.Sprintf("  ✗ rate %.2f: %s\n", r.Cells[i].Rate, e)
		}
	}
	return s
}
