package experiments

// Differential determinism tests: every parallelized experiment must
// produce byte-identical rendered output at workers=1 (the serial
// reference loop) and workers=8 (oversubscribed fan-out). This is the
// enforcement arm of ARCHITECTURE.md's concurrency & determinism
// contract — if a future change introduces a shared RNG, an unordered
// reduction, or a racy pseudo-file handler, these tests are the tripwire.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/parallel"
)

// diffWorkers runs render at workers=1 and workers=8 and requires
// byte-identical output.
func diffWorkers(t *testing.T, name string, render func(workers int) (string, error)) {
	t.Helper()
	serial, err := render(1)
	if err != nil {
		t.Fatalf("%s workers=1: %v", name, err)
	}
	if serial == "" {
		t.Fatalf("%s workers=1 rendered empty output", name)
	}
	par, err := render(8)
	if err != nil {
		t.Fatalf("%s workers=8: %v", name, err)
	}
	if par != serial {
		t.Fatalf("%s output differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			name, serial, par)
	}
}

func TestTable1DeterministicAcrossWorkerCounts(t *testing.T) {
	diffWorkers(t, "Table1", func(w int) (string, error) {
		r, err := Table1Workers(w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
}

func TestFig3SweepDeterministicAcrossWorkerCounts(t *testing.T) {
	diffWorkers(t, "Fig3Sweep", func(w int) (string, error) {
		r, err := Fig3SweepWorkers(3, w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
}

func TestDiscoveryDeterministicAcrossWorkerCounts(t *testing.T) {
	diffWorkers(t, "Discovery", func(w int) (string, error) {
		r, err := DiscoveryWorkers(w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
}

func TestCovertSurveyDeterministicAcrossWorkerCounts(t *testing.T) {
	diffWorkers(t, "CovertSurvey", func(w int) (string, error) {
		r, err := CovertSurveyWorkers(w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
}

func TestFig8DeterministicAcrossWorkerCounts(t *testing.T) {
	diffWorkers(t, "Fig8", func(w int) (string, error) {
		r, err := Fig8Workers(w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
}

// TestInspectAllSurvivesProviderFailure is the partial-results contract:
// one broken provider profile must not kill the six-cloud Table I sweep.
func TestInspectAllSurvivesProviderFailure(t *testing.T) {
	profiles := append([]cloud.ProviderProfile{cloud.LocalTestbed()}, cloud.CommercialClouds()...)
	if len(profiles) < 3 {
		t.Fatalf("testbed has %d profiles, want >= 3", len(profiles))
	}
	broken := profiles[2].Name
	boom := errors.New("profile exploded")

	ins, err := inspectProfiles(context.Background(), profiles, 4, func(p cloud.ProviderProfile) (CloudInspection, error) {
		if p.Name == broken {
			return CloudInspection{}, boom
		}
		return InspectProvider(p)
	})
	if err != nil {
		t.Fatalf("partial failure must not be fatal: %v", err)
	}
	if len(ins) != len(profiles) {
		t.Fatalf("got %d inspections, want %d", len(ins), len(profiles))
	}
	for i, in := range ins {
		if in.Provider != profiles[i].Name {
			t.Errorf("ins[%d].Provider = %q, want %q (order must be preserved)", i, in.Provider, profiles[i].Name)
		}
		if in.Provider == broken {
			if !errors.Is(in.Err, boom) {
				t.Errorf("broken provider Err = %v, want wrapped boom", in.Err)
			}
			if len(in.Reports) != 0 {
				t.Errorf("broken provider has %d reports, want 0", len(in.Reports))
			}
			continue
		}
		if in.Err != nil || len(in.Reports) == 0 {
			t.Errorf("healthy provider %q: err=%v reports=%d", in.Provider, in.Err, len(in.Reports))
		}
	}

	// The table still renders, marks the failed provider, and reports -1
	// availability for it.
	tbl := &Table1Result{Inspections: ins}
	s := tbl.String()
	if !strings.Contains(s, "✗ "+broken+": inspection failed") {
		t.Errorf("rendered table lacks failure marker for %q:\n%s", broken, s)
	}
	if got := tbl.Available(broken); got != -1 {
		t.Errorf("Available(%q) = %d, want -1", broken, got)
	}
	if got := tbl.Available("local"); got <= 0 {
		t.Errorf("Available(local) = %d, want > 0", got)
	}

	// Diffing against a failed inspection is refused, not garbage.
	if _, err := DiffInspections(ins[2], ins[2]); err == nil {
		t.Error("DiffInspections over a failed inspection must error")
	}
}

// TestInspectAllAllFailed: when every provider fails, the sweep as a whole
// errors (there is no table worth rendering).
func TestInspectAllAllFailed(t *testing.T) {
	profiles := append([]cloud.ProviderProfile{cloud.LocalTestbed()}, cloud.CommercialClouds()...)
	boom := errors.New("fleet down")
	ins, err := inspectProfiles(context.Background(), profiles, 2, func(cloud.ProviderProfile) (CloudInspection, error) {
		return CloudInspection{}, boom
	})
	if err == nil {
		t.Fatal("all-failed sweep must return an error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if len(ins) != len(profiles) {
		t.Fatalf("even on total failure the per-provider slice is returned: got %d", len(ins))
	}
}

// TestInspectAllCapturesProviderPanic: a panicking provider inspection is
// folded into its Err field instead of crashing the sweep.
func TestInspectAllCapturesProviderPanic(t *testing.T) {
	profiles := append([]cloud.ProviderProfile{cloud.LocalTestbed()}, cloud.CommercialClouds()...)
	ins, err := inspectProfiles(context.Background(), profiles, 4, func(p cloud.ProviderProfile) (CloudInspection, error) {
		if p.Name == profiles[1].Name {
			panic("inspector bug")
		}
		return InspectProvider(p)
	})
	if err != nil {
		t.Fatalf("one panic must not be fatal: %v", err)
	}
	var pe *parallel.PanicError
	if !errors.As(ins[1].Err, &pe) {
		t.Fatalf("ins[1].Err = %v, want *parallel.PanicError", ins[1].Err)
	}
	if !strings.Contains(pe.Error(), "inspector bug") {
		t.Errorf("panic error %q lacks panic value", pe.Error())
	}
}
