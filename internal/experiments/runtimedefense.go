package experiments

import (
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/texttable"
)

// RuntimeDefenseResult scores a sandboxed container runtime as a defense
// layer: the matrix channel set inspected on the plain Docker testbed (the
// paper's baseline) and under the named runtime, side by side. The
// interesting split is channels the sandbox closes (the procfs-backed rows
// a proxied /proc masks wholesale) versus channels that pierce it — the
// DVFS frequency channel reads physical-core state no runtime-level proxy
// can virtualize away.
type RuntimeDefenseResult struct {
	Runtime  string
	Baseline CloudInspection // plain Docker testbed
	Sandbox  CloudInspection // the named runtime target
}

// RuntimeDefense scores the named runtime against the Docker baseline with
// default seed and no fault injection.
func RuntimeDefense(name string, workers int) (*RuntimeDefenseResult, error) {
	return RuntimeDefenseSeeded(name, chaos.Spec{}, 0, workers)
}

// RuntimeDefenseSeeded is RuntimeDefense with explicit chaos spec and
// datacenter seed (0 = DefaultInspectSeed). Both inspections run over the
// same seed so the baseline and sandbox columns observe the same world.
func RuntimeDefenseSeeded(name string, spec chaos.Spec, seed int64, workers int) (*RuntimeDefenseResult, error) {
	prof, ok := runtimeProfile(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown runtime %q (one of %v)", name, runtimeNames())
	}
	base, err := NewInspectSession(cloud.LocalTestbed(), spec, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: runtime defense baseline: %w", err)
	}
	defer base.Close()
	sb, err := NewInspectSession(prof, spec, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: runtime defense %s: %w", name, err)
	}
	defer sb.Close()
	return &RuntimeDefenseResult{
		Runtime:  name,
		Baseline: base.InspectChannels(core.MatrixChannels(), workers),
		Sandbox:  sb.InspectChannels(core.MatrixChannels(), workers),
	}, nil
}

// Closed counts channels leaking on the baseline (● or ◐) that the sandbox
// flips to ○; Pierced counts baseline-leaking channels that survive.
func (r *RuntimeDefenseResult) Closed() (closed, pierced, leaking int) {
	for i := range core.MatrixChannels() {
		if r.Baseline.Reports[i].Availability == core.Unavailable {
			continue
		}
		leaking++
		if r.Sandbox.Reports[i].Availability == core.Unavailable {
			closed++
		} else {
			pierced++
		}
	}
	return closed, pierced, leaking
}

// String renders the per-channel comparison plus the closure summary.
func (r *RuntimeDefenseResult) String() string {
	tb := texttable.New("Leakage Channels", "DOCKER", strings.ToUpper(r.Runtime), "Closed")
	channels := core.MatrixChannels()
	for i, ch := range channels {
		b := r.Baseline.Reports[i].Availability
		s := r.Sandbox.Reports[i].Availability
		mark := ""
		if b != core.Unavailable {
			if s == core.Unavailable {
				mark = "✓"
			} else {
				mark = "✗"
			}
		}
		tb.Row(ch.Name, b.String(), s.String(), mark)
	}
	closed, pierced, leaking := r.Closed()
	return fmt.Sprintf("RUNTIME DEFENSE: %s vs plain Docker\n%s%s closes %d/%d leaking channels; %d pierce the sandbox\n",
		r.Runtime, tb.String(), r.Runtime, closed, leaking, pierced)
}
