package experiments

import (
	"errors"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cloud"
)

// DefendedAttackResult compares the full synergistic attack pipeline on an
// undefended cloud versus a fleet running the stage-2 defense. This is the
// end-to-end closure of the paper's argument: the defense must break the
// attack, not just hide a file.
type DefendedAttackResult struct {
	Undefended attack.Result
	Defended   attack.Result

	// Orchestration quality: how many *actually distinct* hosts the
	// attacker's boot_id-driven spreading achieved, versus how many it
	// believed it had. On a defended fleet every container sees a private
	// boot_id, so the attacker cannot even tell its own containers apart.
	UndefendedDistinctHosts int
	DefendedDistinctHosts   int
	DefendedClaimedHosts    int

	// DefendedSignalRangeW is the spread (max−min) of the attacker's
	// monitored power signal on the defended cloud — near zero, because
	// the virtualized counter only shows the attacker's own idle draw.
	DefendedSignalRangeW float64
}

// DefendedAttack runs the comparison.
func DefendedAttack() (*DefendedAttackResult, error) {
	run := func(defended bool) (attack.Result, int, int, float64, error) {
		dc := cloud.New(cloud.Config{
			Racks: 1, ServersPerRack: 4, CoresPerServer: 16, Seed: 77,
			BreakerRatedW: 1e9, Defended: defended,
			Benign: cloud.BenignConfig{FlashCrowdPerDay: 48, FlashMinS: 60, FlashMaxS: 240, SharedFlash: true},
		})
		dc.Clock.Run(16*3600, 30)
		agg, err := attack.SpreadAcrossRack(dc, "mallory", 4, 4, 3600, 300)
		if err != nil {
			return attack.Result{}, 0, 0, 0, err
		}
		distinct := map[string]bool{}
		for _, p := range agg.Kept {
			distinct[p.Server.Name] = true
		}
		cfg := attack.DefaultConfig()
		cfg.TriggerNearMax = 0.95
		cfg.WarmupSeconds = 600
		cfg.CooldownSeconds = 240
		r, err := attack.RunSynergistic(dc, agg.Kept[0].Server.Rack, agg.Containers(), cfg, 2400)
		if err != nil {
			return attack.Result{}, 0, 0, 0, err
		}

		// Measure the monitor's view through one attacker container.
		mon, err := attack.NewPowerMonitor(agg.Containers()[0])
		if err != nil {
			return attack.Result{}, 0, 0, 0, err
		}
		var lo, hi float64
		for i := 0; i < 60; i++ {
			dc.Clock.Advance(1)
			w, err := mon.Sample(1)
			if err != nil && !errors.Is(err, attack.ErrPrimed) {
				return attack.Result{}, 0, 0, 0, err
			}
			if i == 1 {
				lo, hi = w, w
			} else if i > 1 {
				if w < lo {
					lo = w
				}
				if w > hi {
					hi = w
				}
			}
		}
		return r, len(distinct), len(agg.Kept), hi - lo, nil
	}

	u, uDistinct, _, _, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("experiments: undefended attack: %w", err)
	}
	d, dDistinct, dClaimed, sigRange, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("experiments: defended attack: %w", err)
	}
	return &DefendedAttackResult{
		Undefended:              u,
		Defended:                d,
		UndefendedDistinctHosts: uDistinct,
		DefendedDistinctHosts:   dDistinct,
		DefendedClaimedHosts:    dClaimed,
		DefendedSignalRangeW:    sigRange,
	}, nil
}

// String summarizes the neutralization.
func (r *DefendedAttackResult) String() string {
	return fmt.Sprintf(
		"DEFENSE vs ATTACK (end to end, identical worlds)\n"+
			"  undefended: peak %.0f W in %d crest-timed trials; orchestration found %d distinct hosts\n"+
			"  defended:   peak %.0f W in %d trials; attacker *believed* it had %d hosts but reached %d\n"+
			"  defended attacker's power signal range: %.2f W (its own idle draw — the host surge is invisible)\n",
		r.Undefended.PeakW, r.Undefended.Trials, r.UndefendedDistinctHosts,
		r.Defended.PeakW, r.Defended.Trials, r.DefendedClaimedHosts, r.DefendedDistinctHosts,
		r.DefendedSignalRangeW)
}
