package experiments

import (
	"strings"
	"testing"

	"repro/internal/covert"
)

func TestCovertSurveyShape(t *testing.T) {
	r, err := CovertSurvey()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(sig covert.Signal, h HostHardening) CovertRow {
		for _, row := range r.Rows {
			if row.Signal == sig && row.Hardening == h {
				return row
			}
		}
		t.Fatalf("row %v/%v missing", sig, h)
		return CovertRow{}
	}
	// Stock host: every channel works essentially error-free.
	for _, sig := range []covert.Signal{covert.PowerSignal, covert.UtilSignal, covert.TempSignal} {
		if row := get(sig, StockHost); row.BER > 0.05 {
			t.Errorf("stock %v BER = %.3f", sig, row.BER)
		}
	}
	// Defended host: the power namespace kills the RAPL channel, but
	// utilization and temperature survive (residual risk of VII-A/B).
	if row := get(covert.PowerSignal, DefendedHost); row.BER < 0.25 {
		t.Errorf("defended power channel BER = %.3f — defense ineffective", row.BER)
	}
	if row := get(covert.UtilSignal, DefendedHost); row.BER > 0.05 {
		t.Errorf("utilization channel unexpectedly closed at stage 2: BER %.3f", row.BER)
	}
	// Fully hardened (stage 3): utilization dies too; temperature remains.
	if row := get(covert.UtilSignal, FullyHardenedHost); row.BER < 0.25 {
		t.Errorf("stage-3 utilization channel BER = %.3f — statistics still leak", row.BER)
	}
	if row := get(covert.TempSignal, FullyHardenedHost); row.BER > 0.15 {
		t.Errorf("temperature channel closed early: BER %.3f (stage 3 does not touch coretemp)", row.BER)
	}
	// Thermal namespace: the last channel goes dark.
	if row := get(covert.TempSignal, ThermalHardenedHost); row.BER < 0.25 {
		t.Errorf("thermal namespace ineffective: temperature BER %.3f", row.BER)
	}
	if !strings.Contains(r.String(), "COVERT") {
		t.Fatal("render incomplete")
	}
}
