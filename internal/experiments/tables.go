// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns a structured result with a String
// renderer; the cmd/ binaries print them and the repository-level benchmarks
// run them under testing.B. All experiments are deterministic for a fixed
// seed.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/pseudofs"
	"repro/internal/texttable"
)

// glyph renders a Table I/II boolean.
func glyph(b bool) string {
	if b {
		return "●"
	}
	return "○"
}

// Table1Result is the reproduction of Table I.
type Table1Result struct {
	Inspections []CloudInspection
}

// Table1 runs the leakage detector against the local testbed and all five
// commercial cloud profiles at the default worker count.
func Table1() (*Table1Result, error) { return Table1Workers(0) }

// Table1Workers is Table1 with an explicit worker count: the six provider
// datacenters are share-nothing worlds inspected in parallel, and the
// rendered table is byte-identical at any worker count.
func Table1Workers(workers int) (*Table1Result, error) {
	return Table1ChaosWorkers(chaos.Spec{}, workers)
}

// Table1ChaosWorkers is Table1Workers under deterministic fault injection:
// every provider's pseudo-file reads, energy counters, and thermal sensors
// are perturbed at the spec's rate. The detector's quorum protocol keeps the
// availability matrix stable at realistic fault rates; the zero Spec is
// exactly Table1Workers.
func Table1ChaosWorkers(spec chaos.Spec, workers int) (*Table1Result, error) {
	return Table1Seeded(context.Background(), spec, 0, workers)
}

// Table1Seeded is the fully-threaded Table I entry point the service layer
// (cmd/leaksd) calls: datacenter seed selection for seed-varied scan
// campaigns (0 = DefaultInspectSeed) and context cancellation so a daemon
// shutdown aborts the six-provider fan-out. Background context + seed 0 is
// byte-identical to Table1ChaosWorkers.
func Table1Seeded(ctx context.Context, spec chaos.Spec, seed int64, workers int) (*Table1Result, error) {
	ins, err := InspectAllSeeded(ctx, spec, seed, workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: table 1: %w", err)
	}
	return &Table1Result{Inspections: ins}, nil
}

// String renders the availability matrix in the paper's row order. A
// provider whose inspection failed renders as "✗" in every row, with the
// error appended below the table — partial results beat no table when one
// of six clouds breaks.
func (r *Table1Result) String() string {
	headers := []string{"Leakage Channels", "Leakage Information", "Co-re", "DoS", "Leak"}
	for _, ins := range r.Inspections[1:] { // skip local in the matrix columns
		headers = append(headers, strings.ToUpper(ins.Provider))
	}
	tb := texttable.New(headers...)
	channels := core.TableIChannels()
	for i, ch := range channels {
		row := []string{ch.Name, ch.Info, glyph(ch.CoRes), glyph(ch.DoS), glyph(ch.InfoLeak)}
		for _, ins := range r.Inspections[1:] {
			if ins.Err != nil {
				row = append(row, "✗")
				continue
			}
			row = append(row, ins.Reports[i].Availability.String())
		}
		tb.Row(row...)
	}
	s := "TABLE I: LEAKAGE CHANNELS IN COMMERCIAL CONTAINER CLOUD SERVICES\n" + tb.String()
	for _, ins := range r.Inspections {
		if ins.Err != nil {
			s += fmt.Sprintf("✗ %s: inspection failed: %v\n", ins.Provider, ins.Err)
		}
	}
	return s
}

// Available counts ● channels for a provider by name ("local", "cc1", …).
// Failed providers (and unknown names) report -1.
func (r *Table1Result) Available(provider string) int {
	for _, ins := range r.Inspections {
		if ins.Provider != provider {
			continue
		}
		if ins.Err != nil {
			return -1
		}
		n := 0
		for _, rep := range ins.Reports {
			if rep.Availability == core.Available {
				n++
			}
		}
		return n
	}
	return -1
}

// Table2Result is the reproduction of Table II.
type Table2Result struct {
	Assessments []core.Assessment
}

// Table2 measures the U/V/M metrics and entropy ranking on the local
// testbed, with a busy co-tenant supplying background variation.
func Table2() (*Table2Result, error) {
	k := kernel.New(kernel.Options{Hostname: "rank-host", Seed: 2})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	probe := rt.Create("probe")
	busy := rt.Create("busy")
	if _, ok := profileByName("prime"); !ok {
		return nil, fmt.Errorf("experiments: prime profile missing")
	}
	p, _ := profileByName("prime")
	busy.Run(p, 2)

	advance := func() { k.Tick(k.Now()+5, 5) }
	advance()
	as := core.Assess(core.TableIIChannels(), probe.Mount(), advance, 12)
	return &Table2Result{Assessments: as}, nil
}

// String renders the U/V/M ranking.
func (r *Table2Result) String() string {
	tb := texttable.New("Leakage Channels", "U", "V", "M", "Entropy(bits)", "Rank")
	for _, a := range r.Assessments {
		rank := "—"
		if a.Rank > 0 {
			rank = fmt.Sprintf("%d", a.Rank)
		}
		ent := ""
		if a.Channel.Uniqueness == core.UNone && a.Varying {
			ent = fmt.Sprintf("%.1f", a.Entropy)
		}
		tb.Row(a.Channel.Name,
			glyph(a.Channel.Uniqueness != core.UNone),
			glyph(a.Varying),
			a.Channel.Manipulate.String(),
			ent, rank)
	}
	return fmt.Sprintf(
		"TABLE II: CHANNEL RANKING FOR CO-RESIDENCE INFERENCE (Spearman vs paper: %.2f)\n%s",
		r.RankAgreement(), tb.String())
}

// paperTableIIOrder is the row order of the paper's printed Table II (the
// 26 ranked channels; modules/cpuinfo/version are unranked).
var paperTableIIOrder = []string{
	"/proc/sys/kernel/random/boot_id",
	"/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
	"/proc/sched_debug",
	"/proc/timer_list",
	"/proc/locks",
	"/proc/uptime",
	"/proc/stat",
	"/proc/schedstat",
	"/proc/softirqs",
	"/proc/interrupts",
	"/sys/devices/system/node/node#/numastat",
	"/sys/class/powercap/.../energy_uj",
	"/sys/devices/system/.../usage",
	"/sys/devices/system/.../time",
	"/proc/sys/fs/dentry-state",
	"/proc/sys/fs/inode-nr",
	"/proc/sys/fs/file-nr",
	"/proc/zoneinfo",
	"/proc/meminfo",
	"/proc/fs/ext4/sda#/mb_groups",
	"/sys/devices/system/node/node#/vmstat",
	"/sys/devices/system/node/node#/meminfo",
	"/sys/devices/platform/.../temp#_input",
	"/proc/loadavg",
	"/proc/sys/kernel/random/entropy_avail",
	"/proc/sys/kernel/.../max_newidle_lb_cost",
}

// RankAgreement computes the Spearman rank correlation between this run's
// measured Table II ordering and the paper's printed order, over the 26
// ranked channels — the honest single-number fidelity metric for Table II.
func (r *Table2Result) RankAgreement() float64 {
	ourRank := map[string]int{}
	for i, a := range r.Assessments {
		ourRank[a.Channel.Name] = i + 1
	}
	n := len(paperTableIIOrder)
	var d2 float64
	for paperPos, name := range paperTableIIOrder {
		our, ok := ourRank[name]
		if !ok {
			return -2 // registry drift; callers treat as failure
		}
		d := float64(our - (paperPos + 1))
		d2 += d * d
	}
	nn := float64(n)
	return 1 - 6*d2/(nn*(nn*nn-1))
}
