package experiments

import (
	"fmt"

	"repro/internal/defense"
	"repro/internal/policy"
	"repro/internal/texttable"
)

// PolicyStages evaluates a stored mask policy offline against the defense
// stage grid: the policy's rules are applied to a probe container exactly
// like the stage-1 masking rules, so its residual leakage and collateral
// app damage land in the same table as "no defense", stage 1, and stage 2.
// Synthesized policies prefer empty-masking over denial wherever the mined
// benign surface needs a path, so they should match stage 1's closure with
// strictly less breakage.
func PolicyStages(pol policy.Policy) ([]StageOutcome, error) {
	rules, err := pol.PseudoRules()
	if err != nil {
		return nil, err
	}
	stages, err := AblationDefenseStages()
	if err != nil {
		return nil, err
	}
	k, fs, rt := stageWorld(34)
	return append(stages, StageOutcome{
		Name:            fmt.Sprintf("policy (%s)", pol.Name()),
		LeakingChannels: stageLeakCount(fs, k, rt, rules),
		BrokenApps:      len(defense.AssessImpact(rules, defense.CommonApps())),
	}), nil
}

// PolicyEvalFile loads a policy JSON file (the policy.Encode format that
// POST /v1/policies records) and renders the stage-grid comparison — the
// defensebench -policy entry point.
func PolicyEvalFile(path string) (string, error) {
	pol, err := policy.LoadFile(path)
	if err != nil {
		return "", err
	}
	outcomes, err := PolicyStages(pol)
	if err != nil {
		return "", err
	}
	tb := texttable.New("Defense", "Channels still ●", "Apps broken")
	for _, o := range outcomes {
		tb.Row(o.Name, fmt.Sprintf("%d / 21", o.LeakingChannels), fmt.Sprintf("%d / %d", o.BrokenApps, len(defense.CommonApps())))
	}
	return fmt.Sprintf("POLICY EVAL: %s (%d rules, provider %s) vs the defense stages\n%s",
		path, len(pol.Rules), pol.Provider, tb.String()), nil
}
