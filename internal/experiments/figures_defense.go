package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/container"
	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/powerns"
	"repro/internal/pseudofs"
	"repro/internal/stats"
	"repro/internal/texttable"
	"repro/internal/workload"
)

// FitLine is one benchmark's fitted energy relation (a line of Fig. 6/7).
type FitLine struct {
	Benchmark string
	Slope     float64
	Intercept float64
	R2        float64
	Points    int
}

// Fig6Result holds the per-benchmark core-energy-vs-instructions fits.
type Fig6Result struct {
	Lines []FitLine
}

// Fig6 reproduces the core power modeling relation: for each modeling
// benchmark, core energy per interval against retired instructions.
func Fig6() (*Fig6Result, error) {
	_, samples, err := powerns.Train(powerns.TrainOptions{Seed: 6})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 6: %w", err)
	}
	res := &Fig6Result{}
	for _, prof := range workload.ModelingSet() {
		var xs [][]float64
		var ys []float64
		for _, s := range samples {
			if s.Profile != prof.Name {
				continue
			}
			xs = append(xs, []float64{s.Counters.Instructions})
			ys = append(ys, s.ECoreJ)
		}
		m, err := stats.Fit(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig 6 fit %s: %w", prof.Name, err)
		}
		res.Lines = append(res.Lines, FitLine{
			Benchmark: prof.Name, Slope: m.Coef[0], Intercept: m.Intercept,
			R2: m.R2, Points: m.N,
		})
	}
	return res, nil
}

// String renders the fits.
func (r *Fig6Result) String() string {
	tb := texttable.New("Benchmark", "J/instr (slope)", "Intercept (J)", "R²", "Points")
	for _, l := range r.Lines {
		tb.Row(l.Benchmark, fmt.Sprintf("%.3g", l.Slope), fmt.Sprintf("%.2f", l.Intercept),
			fmt.Sprintf("%.4f", l.R2), fmt.Sprintf("%d", l.Points))
	}
	return "FIG 6: core energy is linear in retired instructions; slope depends on the benchmark\n" + tb.String()
}

// Fig7Result holds the DRAM-energy-vs-cache-miss fit across all benchmarks.
type Fig7Result struct {
	Line     FitLine
	PerBench []FitLine
}

// Fig7 reproduces the DRAM modeling relation.
func Fig7() (*Fig7Result, error) {
	_, samples, err := powerns.Train(powerns.TrainOptions{Seed: 7})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 7: %w", err)
	}
	var xs [][]float64
	var ys []float64
	for _, s := range samples {
		xs = append(xs, []float64{s.Counters.CacheMisses})
		ys = append(ys, s.EDRAMJ)
	}
	m, err := stats.Fit(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 7 fit: %w", err)
	}
	res := &Fig7Result{Line: FitLine{Benchmark: "all", Slope: m.Coef[0], Intercept: m.Intercept, R2: m.R2, Points: m.N}}
	for _, prof := range workload.ModelingSet() {
		var bx [][]float64
		var by []float64
		for _, s := range samples {
			if s.Profile != prof.Name {
				continue
			}
			bx = append(bx, []float64{s.Counters.CacheMisses})
			by = append(by, s.EDRAMJ)
		}
		bm, err := stats.Fit(bx, by)
		if err != nil {
			continue // near-zero-miss benchmarks (idle loop) are collinear
		}
		res.PerBench = append(res.PerBench, FitLine{Benchmark: prof.Name, Slope: bm.Coef[0], Intercept: bm.Intercept, R2: bm.R2, Points: bm.N})
	}
	return res, nil
}

// String renders the global fit.
func (r *Fig7Result) String() string {
	s := fmt.Sprintf("FIG 7: DRAM energy vs cache misses: slope %.3g J/miss, R² %.4f over %d points (one line fits all benchmarks)\n",
		r.Line.Slope, r.Line.R2, r.Line.Points)
	return s
}

// Fig8Row is one evaluation benchmark's modeling error.
type Fig8Row struct {
	Benchmark string
	Xi        float64
}

// Fig8Result is the model-accuracy evaluation on the SPEC subset.
type Fig8Result struct {
	Rows  []Fig8Row
	MaxXi float64
}

// Fig8 trains on the modeling set and evaluates the error ξ (Formula 4) on
// the disjoint SPEC subset, with the power namespace fully installed, at
// the default worker count.
func Fig8() (*Fig8Result, error) { return Fig8Workers(0) }

// Fig8Workers is Fig8 with an explicit worker count: the model is trained
// once and read-only thereafter; each benchmark's ξ measurement builds its
// own kernel, so the rows fan out in parallel. MaxXi is reduced over the
// ordered row slice, never in the workers, keeping the figure byte-identical
// at any worker count.
func Fig8Workers(workers int) (*Fig8Result, error) {
	return Fig8ChaosWorkers(chaos.Spec{}, workers)
}

// Fig8ChaosWorkers is Fig8Workers with fault injection on both halves of
// the defense pipeline: training reads its RAPL counters through a
// perturbed stream (glitch-sample rejection must keep the regression
// clean), and each ξ measurement's namespace calibrates against a perturbed
// raw source (reset/regression intervals fall back to pure model
// attribution). Ground-truth E_RAPL reads stay clean — ξ measures the
// defense's accuracy, not the evaluator's. The zero Spec is exactly
// Fig8Workers.
func Fig8ChaosWorkers(spec chaos.Spec, workers int) (*Fig8Result, error) {
	return Fig8Ctx(context.Background(), spec, workers)
}

// Fig8Ctx is Fig8ChaosWorkers with cooperative cancellation over the
// per-benchmark ξ fan-out. A background context is byte-identical to
// Fig8ChaosWorkers.
func Fig8Ctx(ctx context.Context, spec chaos.Spec, workers int) (*Fig8Result, error) {
	model, _, err := powerns.Train(powerns.TrainOptions{Seed: 8, Chaos: spec})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 8 train: %w", err)
	}
	rows, err := parallel.MapCtx(ctx, workers, workload.SPECSubset(), func(_ context.Context, _ int, prof workload.Profile) (Fig8Row, error) {
		xi, err := measureXiChaos(model, prof, true, spec)
		if err != nil {
			return Fig8Row{}, fmt.Errorf("experiments: fig 8 %s: %w", prof.Name, err)
		}
		return Fig8Row{Benchmark: prof.Name, Xi: xi}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Rows: rows}
	for _, row := range rows {
		if row.Xi > res.MaxXi {
			res.MaxXi = row.Xi
		}
	}
	return res, nil
}

// measureXi runs one benchmark in a namespaced container on a host that
// also runs system daemons (so the container's share is genuinely less than
// the whole package), and evaluates Formula 4:
//
//	ξ = |(E_RAPL − Δdiff) − M_container| / (E_RAPL − Δdiff),
//
// where Δdiff is the host's measured baseline (idle + daemons) energy.
func measureXi(model *powerns.Model, prof workload.Profile) (float64, error) {
	return measureXiChaos(model, prof, true, chaos.Spec{})
}

func measureXiCalibrated(model *powerns.Model, prof workload.Profile, calibrate bool) (float64, error) {
	return measureXiChaos(model, prof, calibrate, chaos.Spec{})
}

func measureXiChaos(model *powerns.Model, prof workload.Profile, calibrate bool, spec chaos.Spec) (float64, error) {
	k := kernel.New(kernel.Options{Hostname: "fig8", Seed: 88})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	c := rt.Create("bench")
	ns := powerns.New(k, model)
	ns.SetCalibration(calibrate)
	ns.Register(c.CgroupPath)
	ns.Install(fs)
	maxR := k.Meter().MaxEnergyRangeUJ()
	if spec.Enabled() {
		// Perturb the namespace's calibration source — the raw counter the
		// defense itself reads. The ground-truth reads below keep using the
		// clean meter: ξ scores the defense, not the scorer. Each benchmark
		// gets its own salted fault stream so the rows stay independent of
		// worker interleaving.
		ctr := chaos.NewCounters(spec.Config())
		ns.SetRawSource(chaos.WrapRawSource(k.Meter().EnergyUJ, ctr, "fig8/"+prof.Name, maxR))
	}

	// Background system activity outside any power namespace.
	daemons := workload.StressM64
	k.Spawn("system-daemons", k.InitNS(), "/", 0.4, daemons.Rates.Times(0.4))

	// Baseline window: measure Δdiff (J/s) before the workload starts.
	base0 := k.Meter().EnergyUJ(power.Package)
	for s := 0; s < 10; s++ {
		k.Tick(float64(s+1), 1)
	}
	base1 := k.Meter().EnergyUJ(power.Package)
	deltaDiff := float64(power.CounterDelta(base0, base1, maxR)) / 10 // µJ/s

	c.Run(prof, 4)
	k.Tick(11, 1) // settle one interval
	startRaw := k.Meter().EnergyUJ(power.Package)
	startCont, err := ns.Meter(c.CgroupPath)
	if err != nil {
		return 0, err
	}
	const window = 30
	for s := 0; s < window; s++ {
		k.Tick(float64(s+12), 1)
	}
	endCont, err := ns.Meter(c.CgroupPath)
	if err != nil {
		return 0, err
	}
	endRaw := k.Meter().EnergyUJ(power.Package)
	eRAPL := float64(power.CounterDelta(startRaw, endRaw, maxR))
	active := eRAPL - deltaDiff*window
	if active <= 0 {
		return 0, fmt.Errorf("no active energy consumed")
	}
	mCont := endCont - startCont
	// The container's attribution includes its idle-share; subtract the
	// same per-interval baseline share the formula's Δdiff convention
	// removes (the container's model intercept over the window).
	idleShare := (model.Core.Intercept + model.DRAM.Intercept + model.Lambda) * window * 1e6
	return math.Abs(active-(mCont-idleShare)) / active, nil
}

// String renders the per-benchmark errors.
func (r *Fig8Result) String() string {
	tb := texttable.New("Benchmark", "error ξ")
	for _, row := range r.Rows {
		tb.Row(row.Benchmark, fmt.Sprintf("%.4f", row.Xi))
	}
	return fmt.Sprintf("FIG 8: power-model accuracy on the SPEC subset (max ξ = %.4f; paper: all < 0.05)\n%s",
		r.MaxXi, tb.String())
}

// Fig9Result is the transparency experiment's three power traces.
type Fig9Result struct {
	// Seconds of simulated time per sample (1 s).
	HostW, BusyW, IdleW []float64
	// WorkloadStart is the sample index where container 1 starts 401.bzip2.
	WorkloadStart int
}

// Fig9 reproduces the security evaluation: container 1 runs 401.bzip2 from
// t=10 s while container 2 idles; with the power namespace enabled the idle
// container must not observe the surge.
func Fig9() (*Fig9Result, error) {
	model, _, err := powerns.Train(powerns.TrainOptions{Seed: 9})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 9 train: %w", err)
	}
	k := kernel.New(kernel.Options{Hostname: "fig9", Seed: 99})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	busy := rt.Create("container-1")
	idle := rt.Create("container-2")
	ns := powerns.New(k, model)
	ns.Register(busy.CgroupPath)
	ns.Register(idle.CgroupPath)
	ns.Install(fs)

	prof, ok := workload.ByName("401.bzip2")
	if !ok {
		return nil, fmt.Errorf("experiments: 401.bzip2 profile missing")
	}

	res := &Fig9Result{WorkloadStart: 10}
	prevBusy, _ := ns.Meter(busy.CgroupPath)
	prevIdle, _ := ns.Meter(idle.CgroupPath)
	prevRaw := k.Meter().EnergyUJ(power.Package)
	for s := 0; s < 60; s++ {
		if s == res.WorkloadStart {
			busy.Run(prof, 8)
		}
		k.Tick(float64(s+1), 1)
		curBusy, err := ns.Meter(busy.CgroupPath)
		if err != nil {
			return nil, err
		}
		curIdle, err := ns.Meter(idle.CgroupPath)
		if err != nil {
			return nil, err
		}
		curRaw := k.Meter().EnergyUJ(power.Package)
		res.BusyW = append(res.BusyW, (curBusy-prevBusy)/1e6)
		res.IdleW = append(res.IdleW, (curIdle-prevIdle)/1e6)
		res.HostW = append(res.HostW, float64(power.CounterDelta(prevRaw, curRaw, k.Meter().MaxEnergyRangeUJ()))/1e6)
		prevBusy, prevIdle, prevRaw = curBusy, curIdle, curRaw
	}
	return res, nil
}

// String summarizes the isolation.
func (r *Fig9Result) String() string {
	pre := stats.Summarize(r.HostW[:r.WorkloadStart])
	post := stats.Summarize(r.HostW[r.WorkloadStart+2:])
	idlePost := stats.Summarize(r.IdleW[r.WorkloadStart+2:])
	busyPost := stats.Summarize(r.BusyW[r.WorkloadStart+2:])
	return fmt.Sprintf(
		"FIG 9: transparency under the power namespace (401.bzip2 in container 1 from t=10 s)\n"+
			"  host power:        %.1f W idle → %.1f W busy\n"+
			"  container 1 view:  %.1f W (tracks its own workload)\n"+
			"  container 2 view:  %.1f W (flat — unaware of the host surge)\n",
		pre.Mean, post.Mean, busyPost.Mean, idlePost.Mean)
}

// Table3Row is one UnixBench benchmark's overhead pair.
type Table3Row struct {
	Benchmark          string
	Orig1, Mod1, Over1 float64
	Orig8, Mod8, Over8 float64
}

// Table3Result is the UnixBench overhead table.
type Table3Result struct {
	Rows []Table3Row
	// Index rows: the geometric-mean System Benchmarks Index Score.
	IndexOrig1, IndexMod1, IndexOver1 float64
	IndexOrig8, IndexMod8, IndexOver8 float64
}

// Table3 reproduces the performance evaluation: UnixBench component scores
// with the power-based namespace disabled ("Original") and enabled
// ("Modified") at 1 and 8 parallel copies on an 8-core host.
func Table3() *Table3Result {
	const nCores = 8
	off := workload.PerfCosts{}
	on := workload.DefaultPerfCosts()

	res := &Table3Result{}
	var o1, m1, o8, m8 []float64
	for _, b := range workload.UnixBenchSuite() {
		row := Table3Row{Benchmark: b.Name}
		row.Orig1 = b.Index(1, nCores, off)
		row.Mod1 = b.Index(1, nCores, on)
		row.Over1 = (row.Orig1 - row.Mod1) / row.Orig1 * 100
		row.Orig8 = b.Index(8, nCores, off)
		row.Mod8 = b.Index(8, nCores, on)
		row.Over8 = (row.Orig8 - row.Mod8) / row.Orig8 * 100
		res.Rows = append(res.Rows, row)
		o1 = append(o1, row.Orig1)
		m1 = append(m1, row.Mod1)
		o8 = append(o8, row.Orig8)
		m8 = append(m8, row.Mod8)
	}
	res.IndexOrig1 = workload.GeoMeanIndex(o1)
	res.IndexMod1 = workload.GeoMeanIndex(m1)
	res.IndexOver1 = (res.IndexOrig1 - res.IndexMod1) / res.IndexOrig1 * 100
	res.IndexOrig8 = workload.GeoMeanIndex(o8)
	res.IndexMod8 = workload.GeoMeanIndex(m8)
	res.IndexOver8 = (res.IndexOrig8 - res.IndexMod8) / res.IndexOrig8 * 100
	return res
}

// String renders Table III.
func (r *Table3Result) String() string {
	tb := texttable.New("Benchmarks", "Orig(1)", "Mod(1)", "Ovhd(1)", "Orig(8)", "Mod(8)", "Ovhd(8)")
	f := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	p := func(v float64) string { return fmt.Sprintf("%.2f%%", v) }
	for _, row := range r.Rows {
		tb.Row(row.Benchmark, f(row.Orig1), f(row.Mod1), p(row.Over1),
			f(row.Orig8), f(row.Mod8), p(row.Over8))
	}
	tb.Row("System Benchmarks Index Score",
		f(r.IndexOrig1), f(r.IndexMod1), p(r.IndexOver1),
		f(r.IndexOrig8), f(r.IndexMod8), p(r.IndexOver8))
	return "TABLE III: UNIXBENCH UNDER THE POWER-BASED NAMESPACE (paper: 9.66% / 7.03% overall)\n" + tb.String()
}
