package experiments

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/texttable"
	"repro/internal/workload"
)

// profileByName resolves a workload profile (thin wrapper so tables.go can
// stay free of the workload import details).
func profileByName(name string) (workload.Profile, bool) { return workload.ByName(name) }

// Fig2Result is the one-week power trace of eight servers (Fig. 2).
type Fig2Result struct {
	// Avg30s is the whole-week series averaged in 30 s windows (the
	// paper's top panel).
	Avg30s []float64
	// Zoom1s is a one-hour 1 s-resolution slice around the weekly peak
	// (the bottom panel).
	Zoom1s []float64
	// PeakW and MinW summarize the 30 s series; SwingPct is
	// (max-min)/max·100.
	PeakW, MinW, SwingPct float64
}

// Fig2 simulates eight servers under benign diurnal load for the given
// number of days (the paper uses 7) and reports the aggregate power trace.
func Fig2(days int) *Fig2Result {
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 8, Seed: 2026})
	rackPower := func() float64 { return dc.Racks[0].Power() }

	var oneSec []float64
	horizon := float64(days) * 24 * 3600
	// 1 s steps are the measurement resolution; to keep the experiment
	// fast we step at 5 s and sample, which leaves the 30 s averaging of
	// the paper intact (6 samples per window).
	for now := 5.0; now <= horizon; now += 5 {
		dc.Clock.Advance(5)
		oneSec = append(oneSec, rackPower())
	}
	avg30 := stats.WindowAverage(oneSec, 6)
	sum := stats.Summarize(avg30)

	// Zoom: one hour around the global 5 s-resolution peak.
	peakIdx := 0
	for i, v := range oneSec {
		if v > oneSec[peakIdx] {
			peakIdx = i
		}
	}
	lo := peakIdx - 360
	if lo < 0 {
		lo = 0
	}
	hi := peakIdx + 360
	if hi > len(oneSec) {
		hi = len(oneSec)
	}
	return &Fig2Result{
		Avg30s:   avg30,
		Zoom1s:   append([]float64(nil), oneSec[lo:hi]...),
		PeakW:    sum.Max,
		MinW:     sum.Min,
		SwingPct: (sum.Max - sum.Min) / sum.Max * 100,
	}
}

// String summarizes the trace the way the paper narrates Fig. 2, with a
// terminal sparkline standing in for the plotted panels.
func (r *Fig2Result) String() string {
	return fmt.Sprintf(
		"FIG 2: power of 8 servers (30 s averages): min %.0f W, peak %.0f W, swing %.1f%% (paper: 899→1199 W, 34.7%%)\n"+
			"  week   %s\n"+
			"  peak±30min %s\n",
		r.MinW, r.PeakW, r.SwingPct,
		texttable.Sparkline(r.Avg30s, 72), texttable.Sparkline(r.Zoom1s, 72))
}

// Fig3Result compares the synergistic attack against the periodic baseline
// on identical worlds (Fig. 3).
type Fig3Result struct {
	Synergistic     attack.Result
	Periodic        attack.Result
	BackgroundPeakW float64
}

// Fig3 runs both strategies for 3000 s (periodic interval 300 s, as in the
// paper) over a rack of eight 24-core servers during the evening ramp. The
// background includes datacenter-wide flash-crowd events — the sharp
// correlated crests the synergistic attack rides. One seeded run is
// reported, like the paper's single trace; Fig3Sweep gives the multi-seed
// statistics.
func Fig3() (*Fig3Result, error) {
	return fig3WithSeed(1362, chaos.Spec{})
}

// Fig3Chaos is Fig3 with every monitored host's observation surface armed
// with deterministic fault injection: the synergistic attacker's power
// monitors must ride flaky energy counters (resets, torn reads, transient
// errors) without losing the superimposition advantage. The zero Spec is
// exactly Fig3.
func Fig3Chaos(spec chaos.Spec) (*Fig3Result, error) {
	return fig3WithSeed(1362, spec)
}

func fig3WithSeed(seed int64, spec chaos.Spec) (*Fig3Result, error) {
	build := func() (*cloud.Datacenter, *cloud.Rack, []*container.Container, error) {
		// 24-core servers keep bursts below host saturation, so the
		// superimposition advantage is visible in the rack peak.
		dc := cloud.New(cloud.Config{
			Racks: 1, ServersPerRack: 8, CoresPerServer: 24, Seed: seed,
			BreakerRatedW: 1e9,
			Benign:        cloud.BenignConfig{FlashCrowdPerDay: 48, FlashMinS: 60, FlashMaxS: 240, SharedFlash: true},
			Chaos:         spec,
		})
		dc.Clock.Run(16*3600, 30) // reach the evening demand ramp
		agg, err := attack.SpreadAcrossRack(dc, "mallory", 6, 4, 3600, 600)
		if err != nil {
			return nil, nil, nil, err
		}
		return dc, agg.Kept[0].Server.Rack, agg.Containers(), nil
	}

	// The three campaigns need three copies of the same warmed-up world.
	// With snapshots enabled the trio shares one build: the world comes
	// from the snapshot pool (so repeated sweeps skip even the first
	// build) and is rewound between campaigns — the restore contract
	// makes each campaign byte-identical to running on a fresh build, and
	// the container handles stay valid across restores.
	w, key, err := checkoutWorld(inspectPoolKey("fig3", "", spec, seed),
		func() (*cloud.Datacenter, any, error) {
			dc, rack, cs, err := build()
			if err != nil {
				return nil, nil, err
			}
			return dc, fig3World{rack: rack, cs: cs}, nil
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 3 build: %w", err)
	}
	defer releaseWorld(key)
	dcS := w.dc
	rackS, csS := w.aux.(fig3World).rack, w.aux.(fig3World).cs
	snap := w.snap
	if snap == nil && SnapshotsEnabled() {
		snap = dcS.Snapshot()
	}
	reset := func() (*cloud.Datacenter, *cloud.Rack, []*container.Container, error) {
		if snap != nil {
			dcS.Restore(snap)
			snapshotRestores.Add(1)
			return dcS, rackS, csS, nil
		}
		return build()
	}
	// A selective trigger: learn the background for ten minutes, then
	// strike only when the aggregate of the monitored hosts is within 5%
	// of the highest power ever observed — the paper's synergistic attack
	// used two trials in 3000 s.
	cfg := attack.DefaultConfig()
	cfg.TriggerNearMax = 0.95
	cfg.WarmupSeconds = 600
	cfg.CooldownSeconds = 240
	syn, err := attack.RunSynergistic(dcS, rackS, csS, cfg, 3000)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 3 synergistic: %w", err)
	}

	dcP, rackP, csP, err := reset()
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 3 rebuild: %w", err)
	}
	per := attack.RunPeriodic(dcP, rackP, csP, attack.DefaultConfig(), 3000, 300)

	// Background-only reference for the same window.
	dcB, rackB, _, err := reset()
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 3 background: %w", err)
	}
	var bgPeak float64
	for t := 0; t < 3000; t++ {
		dcB.Clock.Advance(1)
		if w := rackB.Power(); w > bgPeak {
			bgPeak = w
		}
	}
	return &Fig3Result{Synergistic: syn, Periodic: per, BackgroundPeakW: bgPeak}, nil
}

// fig3World is the aux payload a Fig. 3 world carries through the
// snapshot pool: the monitored rack and the attacker containers.
type fig3World struct {
	rack *cloud.Rack
	cs   []*container.Container
}

// String reports the comparison the way the paper does, with sparklines of
// both campaigns' rack-power series.
func (r *Fig3Result) String() string {
	return fmt.Sprintf(
		"FIG 3: 8 servers under attack over 3000 s\n"+
			"  background-only peak: %.0f W\n"+
			"  synergistic: peak %.0f W in %d trials (%.0f attack core-seconds)\n"+
			"    %s\n"+
			"  periodic   : peak %.0f W in %d trials (%.0f attack core-seconds)\n"+
			"    %s\n"+
			"  (paper: synergistic 1359 W in 2 trials vs periodic ≤1280 W in 9)\n",
		r.BackgroundPeakW,
		r.Synergistic.PeakW, r.Synergistic.Trials, r.Synergistic.AttackCoreSeconds,
		texttable.Sparkline(r.Synergistic.Series, 72),
		r.Periodic.PeakW, r.Periodic.Trials, r.Periodic.AttackCoreSeconds,
		texttable.Sparkline(r.Periodic.Series, 72))
}

// Fig3SweepResult aggregates the strategy comparison across seeds — an
// extension beyond the paper's single run that shows the advantage is not
// one lucky draw.
type Fig3SweepResult struct {
	Seeds          int
	SynWins, Ties  int
	MeanPeakDeltaW float64 // synergistic − periodic
	MeanTrialRatio float64 // periodic / synergistic
	MeanCostRatio  float64 // periodic / synergistic core-seconds
}

// Fig3Sweep repeats Fig. 3 across n seeds at the default worker count.
func Fig3Sweep(n int) (*Fig3SweepResult, error) { return Fig3SweepWorkers(n, 0) }

// Fig3SweepWorkers is Fig3Sweep with an explicit worker count (the -j of
// cmd/powersim). Every seed builds its own trio of worlds with per-seed
// RNGs — share-nothing by construction — so the per-seed results are
// fanned out in parallel while the floating-point reduction below runs
// over the ordered result slice, keeping the statistics bit-identical to
// the serial loop at any worker count.
func Fig3SweepWorkers(n, workers int) (*Fig3SweepResult, error) {
	return Fig3SweepCtx(context.Background(), n, workers)
}

// Fig3SweepCtx is Fig3SweepWorkers with cooperative cancellation: a daemon
// shutdown stops dispatching seeds instead of orphaning the sweep. A
// background context is byte-identical to Fig3SweepWorkers.
func Fig3SweepCtx(ctx context.Context, n, workers int) (*Fig3SweepResult, error) {
	if n <= 0 {
		n = 5
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = 1360 + int64(i)
	}
	results, err := parallel.MapCtx(ctx, workers, seeds, func(_ context.Context, _ int, seed int64) (*Fig3Result, error) {
		return fig3WithSeed(seed, chaos.Spec{})
	})
	if err != nil {
		return nil, err
	}

	// Ordered reduction: accumulate in seed order, never in completion
	// order, so the sums are exactly those of the serial loop.
	res := &Fig3SweepResult{Seeds: n}
	var deltaSum, trialSum, costSum float64
	for _, r := range results {
		d := r.Synergistic.PeakW - r.Periodic.PeakW
		deltaSum += d
		tieBand := r.Periodic.PeakW * 0.005 // within 0.5% is a tie
		switch {
		case d > tieBand:
			res.SynWins++
		case d >= -tieBand:
			res.Ties++
		}
		if r.Synergistic.Trials > 0 {
			trialSum += float64(r.Periodic.Trials) / float64(r.Synergistic.Trials)
		}
		if r.Synergistic.AttackCoreSeconds > 0 {
			costSum += r.Periodic.AttackCoreSeconds / r.Synergistic.AttackCoreSeconds
		}
	}
	res.MeanPeakDeltaW = deltaSum / float64(n)
	res.MeanTrialRatio = trialSum / float64(n)
	res.MeanCostRatio = costSum / float64(n)
	return res, nil
}

// String summarizes the sweep.
func (r *Fig3SweepResult) String() string {
	return fmt.Sprintf(
		"FIG 3 (sweep over %d seeds): synergistic wins peak %d×, ties %d×; mean peak Δ %+.0f W; periodic uses %.1f× the trials and %.1f× the metered cost\n",
		r.Seeds, r.SynWins, r.Ties, r.MeanPeakDeltaW, r.MeanTrialRatio, r.MeanCostRatio)
}

// Fig4Result is the single-server co-resident aggregation experiment.
type Fig4Result struct {
	// StepWatts[i] is the server's power with i attack containers running
	// (i = 0..3).
	StepWatts []float64
	Launched  int
}

// Fig4 aggregates three containers onto one 16-core server via repeated
// launch/verify/terminate and turns them on one at a time, each running
// four copies of Prime.
func Fig4() (*Fig4Result, error) {
	dc := cloud.New(cloud.Config{
		Racks: 1, ServersPerRack: 4, CoresPerServer: 16, Seed: 230,
		Benign: cloud.BenignConfig{BaseUtil: 0.12, PeakUtil: 0.3},
	})
	agg, err := attack.AggregateCoResident(dc, "mallory", 3, 4, 300)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig 4: %w", err)
	}
	srv := agg.Kept[0].Server
	prime, _ := workload.ByName("prime")

	res := &Fig4Result{Launched: agg.Launched}
	settle := func() float64 {
		var w float64
		for i := 0; i < 60; i++ {
			dc.Clock.Advance(1)
			w += srv.Kernel.Meter().WallPower()
		}
		return w / 60
	}
	res.StepWatts = append(res.StepWatts, settle())
	for _, c := range agg.Containers() {
		c.Run(prime, 4)
		res.StepWatts = append(res.StepWatts, settle())
	}
	return res, nil
}

// String reports the per-container power staircase.
func (r *Fig4Result) String() string {
	s := fmt.Sprintf("FIG 4: single server, %d launches to aggregate 3 co-resident containers\n", r.Launched)
	for i, w := range r.StepWatts {
		s += fmt.Sprintf("  %d attack containers: %.0f W\n", i, w)
	}
	s += "  (paper: ≈+40 W per container, ~230 W with three)\n"
	return s
}
