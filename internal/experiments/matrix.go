package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/texttable"
)

// MatrixResult is the runtime-aware extension of Table I: the paper's 21
// channel families plus the DVFS frequency channel (rows) against the five
// commercial clouds plus four modern container runtimes (columns). The
// sandbox columns are the point — gVisor and Kata proxy procfs and kill
// every classic channel, but the frequency channel passes through, so the
// matrix shows exactly which hardening strategy closes which row.
type MatrixResult struct {
	Inspections []CloudInspection
}

// MatrixSweep runs the full matrix at the default worker count.
func MatrixSweep() (*MatrixResult, error) { return MatrixSweepWorkers(0) }

// MatrixSweepWorkers is MatrixSweep with an explicit worker count. Each
// target is a share-nothing world, so the result is byte-identical at any
// worker count.
func MatrixSweepWorkers(workers int) (*MatrixResult, error) {
	return MatrixSweepSeeded(context.Background(), chaos.Spec{}, 0, workers)
}

// MatrixSweepSeeded is the fully-threaded matrix entry point: chaos spec,
// datacenter seed (0 = DefaultInspectSeed), context cancellation. It runs
// as the first pass of fresh per-target sessions — all cache misses,
// byte-identical to what a persistent MatrixSession serves warm.
func MatrixSweepSeeded(ctx context.Context, spec chaos.Spec, seed int64, workers int) (*MatrixResult, error) {
	ins, err := inspectProfiles(ctx, cloud.MatrixTargets(), workers, func(p cloud.ProviderProfile) (CloudInspection, error) {
		s, err := NewInspectSession(p, spec, seed)
		if err != nil {
			return CloudInspection{}, err
		}
		defer s.Close()
		return s.InspectChannels(core.MatrixChannels(), 1), nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: matrix sweep: %w", err)
	}
	return &MatrixResult{Inspections: ins}, nil
}

// runtimeProfile resolves a sandboxed-runtime target by name.
func runtimeProfile(name string) (cloud.ProviderProfile, bool) {
	for _, p := range cloud.RuntimeTargets() {
		if p.Name == name {
			return p, true
		}
	}
	return cloud.ProviderProfile{}, false
}

// runtimeNames lists the sandboxed-runtime targets, in matrix column order.
func runtimeNames() []string {
	targets := cloud.RuntimeTargets()
	names := make([]string, len(targets))
	for i, p := range targets {
		names[i] = p.Name
	}
	return names
}

// InspectRuntimeChaosWorkers runs one sandboxed-runtime inspection over the
// matrix channel set — the CLI face of leaksd's runtime= inspect scans. The
// result is a one-column matrix, rendered by the same table as the full
// sweep.
func InspectRuntimeChaosWorkers(name string, spec chaos.Spec, workers int) (*MatrixResult, error) {
	p, ok := runtimeProfile(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown runtime %q (one of %v)", name, runtimeNames())
	}
	s, err := NewInspectSession(p, spec, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: runtime %s: %w", name, err)
	}
	defer s.Close()
	return &MatrixResult{Inspections: []CloudInspection{s.InspectChannels(core.MatrixChannels(), workers)}}, nil
}

// MatrixSession holds one persistent InspectSession per matrix target so
// repeated sweeps reuse every target's incremental engine cache: on an
// unadvanced world a warm Sweep re-renders nothing at all, where a cold
// MatrixSweep rebuilds nine datacenters and re-renders every path.
type MatrixSession struct {
	sessions []*InspectSession
}

// NewMatrixSession builds the nine target worlds (seed 0 =
// DefaultInspectSeed) and wraps each in an incremental engine.
func NewMatrixSession(spec chaos.Spec, seed int64) (*MatrixSession, error) {
	targets := cloud.MatrixTargets()
	ms := &MatrixSession{sessions: make([]*InspectSession, 0, len(targets))}
	for _, p := range targets {
		s, err := NewInspectSession(p, spec, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: matrix session %s: %w", p.Name, err)
		}
		ms.sessions = append(ms.sessions, s)
	}
	return ms, nil
}

// Sweep re-runs the matrix across the persistent sessions. The fan-out is
// share-nothing (one engine per target) and results come back in target
// order, so output is byte-identical at any worker count — warm or cold.
func (m *MatrixSession) Sweep(workers int) *MatrixResult {
	out, _ := parallel.MapSettleCtx(context.Background(), workers, m.sessions,
		func(_ context.Context, _ int, s *InspectSession) (CloudInspection, error) {
			return s.InspectChannels(core.MatrixChannels(), 1), nil
		})
	return &MatrixResult{Inspections: out}
}

// Advance drives every target world forward by the given number of
// 1-second ticks (dirty subsystems re-render on the next Sweep).
func (m *MatrixSession) Advance(ticks int) {
	for _, s := range m.sessions {
		s.Advance(ticks)
	}
}

// String renders the matrix like Table I, with the runtime columns after
// the cloud columns and the frequency channel as the last row. Failed
// targets render as "✗" per row with the error appended below.
func (r *MatrixResult) String() string {
	headers := []string{"Leakage Channels", "Leakage Information", "Co-re", "DoS", "Leak"}
	for _, ins := range r.Inspections {
		headers = append(headers, strings.ToUpper(ins.Provider))
	}
	tb := texttable.New(headers...)
	channels := core.MatrixChannels()
	for i, ch := range channels {
		row := []string{ch.Name, ch.Info, glyph(ch.CoRes), glyph(ch.DoS), glyph(ch.InfoLeak)}
		for _, ins := range r.Inspections {
			if ins.Err != nil {
				row = append(row, "✗")
				continue
			}
			row = append(row, ins.Reports[i].Availability.String())
		}
		tb.Row(row...)
	}
	s := "RUNTIME MATRIX: LEAKAGE CHANNELS ACROSS CLOUDS AND CONTAINER RUNTIMES\n" + tb.String()
	for _, ins := range r.Inspections {
		if ins.Err != nil {
			s += fmt.Sprintf("✗ %s: inspection failed: %v\n", ins.Provider, ins.Err)
		}
	}
	return s
}

// Narrow returns a copy of the result restricted to the named target
// columns, in the original column order — the renderer behind provider=
// and runtime= filters. Unknown names simply match nothing.
func (r *MatrixResult) Narrow(names ...string) *MatrixResult {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	out := &MatrixResult{}
	for _, ins := range r.Inspections {
		if keep[ins.Provider] {
			out.Inspections = append(out.Inspections, ins)
		}
	}
	return out
}

// Available counts ● channels for a target by name ("cc1", "gvisor", …).
// Failed targets (and unknown names) report -1.
func (r *MatrixResult) Available(name string) int {
	for _, ins := range r.Inspections {
		if ins.Provider != name {
			continue
		}
		if ins.Err != nil {
			return -1
		}
		n := 0
		for _, rep := range ins.Reports {
			if rep.Availability == core.Available {
				n++
			}
		}
		return n
	}
	return -1
}
