package experiments

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/texttable"
)

// DiscoveryResult lists leaking pseudo-files beyond the Table I registry —
// what a fresh systematic sweep surfaces that the paper's November 2016
// snapshot did not enumerate.
type DiscoveryResult struct {
	Findings []core.Finding
	// TotalLeaking counts all leaking files, registry-covered or not.
	TotalLeaking int
}

// Discovery runs the cross-validation detector on the local testbed at the
// default worker count and reports the leaking files that no Table I
// channel pattern covers.
func Discovery() (*DiscoveryResult, error) { return DiscoveryWorkers(0) }

// DiscoveryWorkers is Discovery with an explicit worker count: the
// per-path cross-validation reads are fanned out while the clock is
// paused, which is safe (read-only tree, audited handlers) and
// deterministic (findings return in path order).
func DiscoveryWorkers(workers int) (*DiscoveryResult, error) {
	return DiscoveryChaosWorkers(chaos.Spec{}, workers)
}

// DiscoveryChaosWorkers is DiscoveryWorkers with the testbed's observation
// surface armed with deterministic fault injection: the sweep must surface
// the same leaking files when reads are flaky, because a production scanner
// runs against hosts it does not control. The zero Spec is exactly
// DiscoveryWorkers.
func DiscoveryChaosWorkers(spec chaos.Spec, workers int) (*DiscoveryResult, error) {
	return DiscoverySeeded(context.Background(), spec, 0, workers)
}

// DefaultDiscoverySeed is the testbed seed every one-shot discovery sweep
// has used; seed 0 in DiscoverySeeded selects it.
const DefaultDiscoverySeed int64 = 0xd15c

// DiscoverySeeded is DiscoveryChaosWorkers with the testbed seed threaded
// through (0 = DefaultDiscoverySeed) and cooperative cancellation: the
// sweep is abandoned before the world is built when ctx is already done,
// so a shutting-down daemon never starts a doomed cross-validation pass.
// Background context + seed 0 is byte-identical to DiscoveryChaosWorkers.
//
// The sweep runs as the first pass of a fresh DiscoverySession (see
// session.go): all cache misses, byte-identical to the direct
// core.CrossValidateWorkers path it replaces.
func DiscoverySeeded(ctx context.Context, spec chaos.Spec, seed int64, workers int) (*DiscoveryResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := NewDiscoverySession(spec, seed)
	defer s.Close()
	return s.Discover(workers), nil
}

// String renders the discovery table.
func (r *DiscoveryResult) String() string {
	tb := texttable.New("Newly discovered leaking file", "Status")
	for _, f := range r.Findings {
		tb.Row(f.Path, f.Status.String())
	}
	return fmt.Sprintf(
		"DISCOVERY (extension): %d of %d leaking files fall outside the paper's Table I registry\n%s",
		len(r.Findings), r.TotalLeaking, tb.String())
}
