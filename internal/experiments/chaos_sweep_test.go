package experiments

// Chaos-enabled determinism and degradation tests. The chaos layer's whole
// value is reproducibility: a fault grid that renders differently at -j 1
// and -j 8, or across two runs with one seed, cannot be debugged against.
// These tests are the enforcement arm of that contract, mirroring
// determinism_test.go for the perturbed pipelines.

import (
	"strings"
	"testing"

	"repro/internal/chaos"
)

var testSpec = chaos.Spec{Rate: 0.05, Seed: 1}

func TestTable1ChaosDeterministicAcrossWorkerCounts(t *testing.T) {
	diffWorkers(t, "Table1Chaos", func(w int) (string, error) {
		r, err := Table1ChaosWorkers(testSpec, w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
}

func TestFig8ChaosDeterministicAcrossWorkerCounts(t *testing.T) {
	diffWorkers(t, "Fig8Chaos", func(w int) (string, error) {
		r, err := Fig8ChaosWorkers(testSpec, w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
}

func TestDiscoveryChaosDeterministicAcrossWorkerCounts(t *testing.T) {
	diffWorkers(t, "DiscoveryChaos", func(w int) (string, error) {
		r, err := DiscoveryChaosWorkers(testSpec, w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	})
}

// TestChaosVariantsZeroSpecMatchClean: the chaos-off behavioral
// equivalence contract at the API layer — a zero Spec must render byte-
// identically to the original entry points.
func TestChaosVariantsZeroSpecMatchClean(t *testing.T) {
	clean, err := Table1Workers(2)
	if err != nil {
		t.Fatalf("Table1Workers: %v", err)
	}
	zero, err := Table1ChaosWorkers(chaos.Spec{}, 2)
	if err != nil {
		t.Fatalf("Table1ChaosWorkers(zero): %v", err)
	}
	if clean.String() != zero.String() {
		t.Fatal("Table1ChaosWorkers with zero Spec diverges from Table1Workers")
	}
}

// TestFig3ChaosCompletesAndKeepsShape: under a moderate fault rate the
// synergistic campaign must complete, absorb monitor faults without
// aborting, and still at least tie the periodic baseline's peak — the
// paper's attack-economics claim must survive a flaky observation surface.
func TestFig3ChaosCompletesAndKeepsShape(t *testing.T) {
	r, err := Fig3Chaos(chaos.Spec{Rate: 0.02, Seed: 1})
	if err != nil {
		t.Fatalf("Fig3Chaos: %v", err)
	}
	if r.Synergistic.MonitorFaults == 0 {
		t.Error("chaos at 2% injected no monitor faults — the fault path is not exercised")
	}
	if r.Synergistic.PeakW < r.Periodic.PeakW*sweepTieBand {
		t.Errorf("synergistic peak %.0f W below periodic %.0f W under chaos",
			r.Synergistic.PeakW, r.Periodic.PeakW)
	}
}

// TestChaosSweepSmallGrid runs a one-cell grid end to end: deterministic
// across worker counts, no sub-experiment errors, and targets holding at
// the paper-scale 2% rate.
func TestChaosSweepSmallGrid(t *testing.T) {
	rates := []float64{0.02}
	render := func(w int) (string, error) {
		r, err := ChaosSweep(rates, 1, w)
		if err != nil {
			return "", err
		}
		return r.String(), nil
	}
	serial, err := render(1)
	if err != nil {
		t.Fatalf("ChaosSweep workers=1: %v", err)
	}
	par, err := render(8)
	if err != nil {
		t.Fatalf("ChaosSweep workers=8: %v", err)
	}
	if serial != par {
		t.Fatalf("ChaosSweep differs across worker counts:\n--- 1 ---\n%s\n--- 8 ---\n%s", serial, par)
	}

	r, err := ChaosSweep(rates, 1, 2)
	if err != nil {
		t.Fatalf("ChaosSweep: %v", err)
	}
	if len(r.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(r.Cells))
	}
	c := r.Cells[0]
	if len(c.Errs) != 0 {
		t.Fatalf("cell errors at rate 0.02: %v", c.Errs)
	}
	if !c.Holds() {
		t.Errorf("targets do not hold at rate 0.02: agree=%.3f maxξ=%.4f syn=%.0f per=%.0f",
			c.Table1Agree, c.MaxXi, c.SynPeakW, c.PerPeakW)
	}
	if r.HoldRate != 0.02 {
		t.Errorf("HoldRate = %v, want 0.02", r.HoldRate)
	}
	if !strings.Contains(serial, "hold") {
		t.Errorf("rendered sweep lacks hold status:\n%s", serial)
	}
}

// TestChaosCellFoldsFailures: a sub-experiment error must land in Errs and
// flip Holds, never abort the sweep — graceful degradation is itself a
// tested property.
func TestChaosCellFoldsFailures(t *testing.T) {
	var c ChaosCell
	c.Rate = 0.5
	c.Table1Agree = 1
	c.SynPeakW, c.PerPeakW = 100, 100
	c.MaxXi = 0.01
	if !c.Holds() {
		t.Fatal("healthy cell must hold")
	}
	c.Errs = append(c.Errs, "fig3: boom")
	if c.Holds() {
		t.Fatal("cell with errors must not hold")
	}
}
