package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Local testbed leaks everything; hardened clouds leak progressively
	// less; CC5 least.
	local := r.Available("local")
	if local != 21 {
		t.Fatalf("local ● = %d, want 21", local)
	}
	cc5 := r.Available("cc5")
	if cc5 >= local || cc5 > 12 {
		t.Fatalf("cc5 ● = %d, want well below local's %d", cc5, local)
	}
	for _, p := range []string{"cc1", "cc2", "cc3", "cc4"} {
		if n := r.Available(p); n <= cc5 || n >= 21 {
			t.Errorf("%s ● = %d, want between cc5 (%d) and local (21)", p, n, cc5)
		}
	}
	if r.Available("nope") != -1 {
		t.Fatal("unknown provider should be -1")
	}
	out := r.String()
	if !strings.Contains(out, "/proc/sched_debug") || !strings.Contains(out, "CC5") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Assessments) != 29 {
		t.Fatalf("rows = %d", len(r.Assessments))
	}
	// Top 2: the static unique identifiers.
	if r.Assessments[0].Channel.Name != "/proc/sys/kernel/random/boot_id" {
		t.Fatalf("rank 1 = %s", r.Assessments[0].Channel.Name)
	}
	// Bottom 3: the unrankable static channels.
	tail := r.Assessments[len(r.Assessments)-3:]
	for _, a := range tail {
		if a.Rank != 0 || a.Channel.Uniqueness != core.UNone || a.Varying {
			t.Errorf("tail row %s should be unranked static", a.Channel.Name)
		}
	}
	if !strings.Contains(r.String(), "Rank") {
		t.Fatal("render incomplete")
	}
}

func TestFig2ShapeMatchesPaper(t *testing.T) {
	r := Fig2(2) // two days is enough for the swing shape in tests
	if r.SwingPct < 20 {
		t.Fatalf("swing = %.1f%%, want ≥ 20%% (paper 34.7%%)", r.SwingPct)
	}
	if r.PeakW < 700 || r.PeakW > 1600 {
		t.Fatalf("peak = %.0f W, want near the paper's ~1199 W scale", r.PeakW)
	}
	if r.MinW < 500 || r.MinW >= r.PeakW {
		t.Fatalf("min = %.0f W implausible", r.MinW)
	}
	if len(r.Zoom1s) == 0 || len(r.Avg30s) == 0 {
		t.Fatal("series missing")
	}
	if !strings.Contains(r.String(), "FIG 2") {
		t.Fatal("render incomplete")
	}
}

func TestFig3ShapeMatchesPaper(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if r.Synergistic.PeakW <= r.BackgroundPeakW {
		t.Fatalf("synergistic peak %.0f W must exceed background %.0f W",
			r.Synergistic.PeakW, r.BackgroundPeakW)
	}
	if r.Synergistic.PeakW < r.Periodic.PeakW-1 {
		t.Fatalf("synergistic %.0f W below periodic %.0f W", r.Synergistic.PeakW, r.Periodic.PeakW)
	}
	if r.Synergistic.Trials >= r.Periodic.Trials {
		t.Fatalf("trials: syn %d vs per %d — synergistic must use fewer",
			r.Synergistic.Trials, r.Periodic.Trials)
	}
	if r.Synergistic.AttackCoreSeconds >= r.Periodic.AttackCoreSeconds {
		t.Fatal("synergistic must be cheaper")
	}
	if !strings.Contains(r.String(), "FIG 3") {
		t.Fatal("render incomplete")
	}
}

func TestFig3SweepShape(t *testing.T) {
	r, err := Fig3Sweep(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seeds != 3 {
		t.Fatalf("seeds = %d", r.Seeds)
	}
	// Across seeds: synergistic never loses by more than noise, and the
	// periodic baseline always spends several times the trials and cost.
	if r.SynWins+r.Ties < 2 {
		t.Fatalf("synergistic lost too often: wins=%d ties=%d", r.SynWins, r.Ties)
	}
	if r.MeanTrialRatio < 2 {
		t.Fatalf("trial ratio = %.1f, want periodic ≫ synergistic", r.MeanTrialRatio)
	}
	if r.MeanCostRatio < 2 {
		t.Fatalf("cost ratio = %.1f", r.MeanCostRatio)
	}
	if !strings.Contains(r.String(), "sweep") {
		t.Fatal("render incomplete")
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.StepWatts) != 4 {
		t.Fatalf("steps = %d", len(r.StepWatts))
	}
	// Each container adds roughly +40 W (paper's per-container increment).
	for i := 1; i < 4; i++ {
		inc := r.StepWatts[i] - r.StepWatts[i-1]
		if inc < 25 || inc > 60 {
			t.Errorf("container %d adds %.0f W, want ≈ 40 W", i, inc)
		}
	}
	total := r.StepWatts[3] - r.StepWatts[0]
	if total < 90 || total > 160 {
		t.Errorf("three containers add %.0f W, want ≈ 120 W", total)
	}
	if r.Launched < 3 {
		t.Error("aggregation bookkeeping broken")
	}
	if !strings.Contains(r.String(), "FIG 4") {
		t.Fatal("render incomplete")
	}
}

func TestFig6ShapeMatchesPaper(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	slopes := map[string]float64{}
	for _, l := range r.Lines {
		if l.R2 < 0.98 {
			t.Errorf("%s: R² = %.3f, want near-perfect linearity", l.Benchmark, l.R2)
		}
		slopes[l.Benchmark] = l.Slope
	}
	if slopes["462.libquantum"] <= slopes["prime"] {
		t.Error("memory-bound slope must exceed compute-bound slope")
	}
	if !strings.Contains(r.String(), "FIG 6") {
		t.Fatal("render incomplete")
	}
}

func TestFig7ShapeMatchesPaper(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if r.Line.R2 < 0.98 {
		t.Fatalf("global DRAM fit R² = %.3f", r.Line.R2)
	}
	if r.Line.Slope <= 0 {
		t.Fatal("DRAM energy slope must be positive")
	}
	if !strings.Contains(r.String(), "FIG 7") {
		t.Fatal("render incomplete")
	}
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d, want the 10 SPEC evaluation benchmarks", len(r.Rows))
	}
	if r.MaxXi > 0.05 {
		t.Fatalf("max ξ = %.4f, paper requires < 0.05", r.MaxXi)
	}
	if !strings.Contains(r.String(), "FIG 8") {
		t.Fatal("render incomplete")
	}
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	r, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// After the workload starts: host surges, container 1 follows,
	// container 2 stays near its idle share.
	hostPre := mean(r.HostW[:r.WorkloadStart])
	hostPost := mean(r.HostW[r.WorkloadStart+2:])
	busyPost := mean(r.BusyW[r.WorkloadStart+2:])
	idlePost := mean(r.IdleW[r.WorkloadStart+2:])
	if hostPost < hostPre+20 {
		t.Fatalf("host did not surge: %.1f → %.1f W", hostPre, hostPost)
	}
	if busyPost < hostPost*0.6 {
		t.Fatalf("busy container view %.1f W too far below host %.1f W", busyPost, hostPost)
	}
	if idlePost > busyPost*0.3 {
		t.Fatalf("idle container view %.1f W not isolated from busy %.1f W", idlePost, busyPost)
	}
	if !strings.Contains(r.String(), "FIG 9") {
		t.Fatal("render incomplete")
	}
}

func mean(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	r := Table3()
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]Table3Row{}
	for _, row := range r.Rows {
		byName[row.Benchmark] = row
	}
	pipe := byName["Pipe-based Context Switching"]
	if pipe.Over1 < 40 || pipe.Over1 > 75 {
		t.Fatalf("pipe ctxsw 1-copy overhead %.1f%%, paper 61.5%%", pipe.Over1)
	}
	if pipe.Over8 > 6 {
		t.Fatalf("pipe ctxsw 8-copy overhead %.1f%%, paper 1.6%%", pipe.Over8)
	}
	dhry := byName["Dhrystone 2 using register variables"]
	if dhry.Over1 > 2 || dhry.Over8 > 2 {
		t.Fatalf("dhrystone overhead %.2f%%/%.2f%%, want ≈ 0", dhry.Over1, dhry.Over8)
	}
	fc := byName["File Copy 256 bufsize 500 maxblocks"]
	if fc.Over8 < fc.Over1 {
		t.Fatal("file copy overhead must grow with copies")
	}
	if r.IndexOver1 < 3 || r.IndexOver1 > 18 {
		t.Fatalf("overall 1-copy overhead %.2f%%, paper 9.66%%", r.IndexOver1)
	}
	if r.IndexOver8 < 1 || r.IndexOver8 > 15 {
		t.Fatalf("overall 8-copy overhead %.2f%%, paper 7.03%%", r.IndexOver8)
	}
	if !strings.Contains(r.String(), "TABLE III") {
		t.Fatal("render incomplete")
	}
}

func TestAblationCalibrationHelps(t *testing.T) {
	r, err := AblationCalibration()
	if err != nil {
		t.Fatal(err)
	}
	var worstOn, worstOff float64
	for _, row := range r.Rows {
		if row.XiCalibrated > worstOn {
			worstOn = row.XiCalibrated
		}
		if row.XiUncalibrated > worstOff {
			worstOff = row.XiUncalibrated
		}
	}
	if worstOn > 0.05 {
		t.Fatalf("calibrated worst ξ = %.4f", worstOn)
	}
	if worstOff <= worstOn {
		t.Fatalf("calibration shows no benefit: %.4f vs %.4f", worstOn, worstOff)
	}
	if r.String() == "" {
		t.Fatal("render empty")
	}
}

func TestAblationModelFeatures(t *testing.T) {
	r, err := AblationModelFeatures()
	if err != nil {
		t.Fatal(err)
	}
	if r.NaiveR2 >= r.FullR2 || r.NaiveRMSE <= r.FullRMSE {
		t.Fatalf("naive model should fit worse: %+v", r)
	}
	if r.String() == "" {
		t.Fatal("render empty")
	}
}

func TestAblationCrestThreshold(t *testing.T) {
	points, err := AblationCrestThreshold()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	// Higher thresholds launch fewer (or equal) bursts.
	if points[0].Trials < points[len(points)-1].Trials {
		t.Fatalf("p%.0f trials %d < p%.0f trials %d — expected monotone-ish decrease",
			points[0].Percentile, points[0].Trials,
			points[len(points)-1].Percentile, points[len(points)-1].Trials)
	}
	if out := RenderCrestSweep(points); !strings.Contains(out, "p95") {
		t.Fatal("render incomplete")
	}
}

func TestAblationDefenseStages(t *testing.T) {
	outcomes, err := AblationDefenseStages()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	base, s1, s2 := outcomes[0], outcomes[1], outcomes[2]
	if base.LeakingChannels != 21 {
		t.Fatalf("baseline leaks %d, want 21", base.LeakingChannels)
	}
	if s1.LeakingChannels != 0 {
		t.Fatalf("stage 1 leaves %d channels ●", s1.LeakingChannels)
	}
	if s1.BrokenApps == 0 {
		t.Fatal("stage 1 must break apps (that is its cost)")
	}
	// Stage 2 closes exactly the channels with implemented namespace fixes
	// (the strongest co-residence indicators plus RAPL); the paper itself
	// notes the remaining resources are hard to partition.
	if s2.LeakingChannels >= base.LeakingChannels {
		t.Fatalf("stage 2 closed nothing (%d ●)", s2.LeakingChannels)
	}
	if s2.LeakingChannels > 15 {
		t.Fatalf("stage 2 leaves %d channels ●, want ≤ 15", s2.LeakingChannels)
	}
	if s2.BrokenApps != 0 {
		t.Fatal("stage 2 must not break apps")
	}
	if out := RenderStages(outcomes); !strings.Contains(out, "stage 2") {
		t.Fatal("render incomplete")
	}
}

func TestAblationStrategyCost(t *testing.T) {
	rows, err := AblationStrategyCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]StrategyCost{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	cont, per, syn := byName["continuous"], byName["periodic"], byName["synergistic"]
	// Peaks are within a few percent of each other (all strategies can
	// reach the crest); cost separates them decisively.
	if syn.PeakW < cont.PeakW*0.95 {
		t.Fatalf("synergistic peak %.0f W far below continuous %.0f W", syn.PeakW, cont.PeakW)
	}
	if !(syn.CoreSeconds < per.CoreSeconds && per.CoreSeconds < cont.CoreSeconds) {
		t.Fatalf("core-second ordering wrong: syn %.0f per %.0f cont %.0f",
			syn.CoreSeconds, per.CoreSeconds, cont.CoreSeconds)
	}
	if !(syn.BillUSD < per.BillUSD && per.BillUSD < cont.BillUSD) {
		t.Fatalf("bill ordering wrong: syn %.4f per %.4f cont %.4f",
			syn.BillUSD, per.BillUSD, cont.BillUSD)
	}
	if out := RenderStrategyCost(rows); !strings.Contains(out, "synergistic") {
		t.Fatal("render incomplete")
	}
}

func TestTable2RankAgreementWithPaper(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	rho := r.RankAgreement()
	if rho == -2 {
		t.Fatal("registry drift: a paper channel is missing")
	}
	// The measured ordering should strongly agree with the paper's: same
	// groups, minor within-group reshuffles.
	if rho < 0.8 {
		t.Fatalf("Spearman vs paper = %.3f, want ≥ 0.8", rho)
	}
}
