package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cloud"
	"repro/internal/covert"
	"repro/internal/defense"
	"repro/internal/parallel"
	"repro/internal/powerns"
	"repro/internal/texttable"
)

// HostHardening grades the defense deployed on the covert-channel host.
type HostHardening int

// Hardening levels for the survey.
const (
	StockHost           HostHardening = iota
	DefendedHost                      // stage 2 + power namespace
	FullyHardenedHost                 // + stage-3 statistics namespacing
	ThermalHardenedHost               // + thermal namespace (Section VII-B PoC)
)

// String implements fmt.Stringer.
func (h HostHardening) String() string {
	switch h {
	case DefendedHost:
		return "defended"
	case FullyHardenedHost:
		return "hardened+stats"
	case ThermalHardenedHost:
		return "hardened+thermal"
	default:
		return "stock"
	}
}

// CovertRow is one measured covert-channel configuration.
type CovertRow struct {
	Signal    covert.Signal
	Hardening HostHardening
	BitsSent  int
	BER       float64
	RateBPS   float64
}

// CovertSurveyResult measures the Section III-C covert channels: bit error
// rate and raw throughput for each leaked signal, across hardening levels.
// An extension beyond the paper, which only notes the possibility.
type CovertSurveyResult struct {
	Rows []CovertRow
}

// CovertSurvey runs the measurements at the default worker count.
func CovertSurvey() (*CovertSurveyResult, error) { return CovertSurveyWorkers(0) }

// CovertSurveyWorkers is CovertSurvey with an explicit worker count: the
// 4 hardening levels × 3 signals grid is 12 share-nothing worlds (each
// measurement builds its own single-server datacenter and drives its own
// clock), fanned out in parallel with rows kept in grid order.
func CovertSurveyWorkers(workers int) (*CovertSurveyResult, error) {
	return CovertSurveyCtx(context.Background(), workers)
}

// CovertSurveyCtx is CovertSurveyWorkers with cooperative cancellation over
// the 12-world grid. A background context is byte-identical to
// CovertSurveyWorkers.
func CovertSurveyCtx(ctx context.Context, workers int) (*CovertSurveyResult, error) {
	configs := []covert.Config{
		{Signal: covert.PowerSignal, SymbolSeconds: 2, Core: 2, LoadCores: 4},
		{Signal: covert.UtilSignal, SymbolSeconds: 2, Core: 2, LoadCores: 4},
		{Signal: covert.TempSignal, SymbolSeconds: 20, Core: 2, LoadCores: 2},
	}
	type cell struct {
		cfg       covert.Config
		hardening HostHardening
	}
	var grid []cell
	for _, hardening := range []HostHardening{StockHost, DefendedHost, FullyHardenedHost, ThermalHardenedHost} {
		for _, cfg := range configs {
			grid = append(grid, cell{cfg: cfg, hardening: hardening})
		}
	}
	rows, err := parallel.MapCtx(ctx, workers, grid, func(_ context.Context, _ int, c cell) (CovertRow, error) {
		ber, n, err := measureCovert(c.cfg, c.hardening)
		if err != nil {
			return CovertRow{}, fmt.Errorf("experiments: covert %v on %v: %w", c.cfg.Signal, c.hardening, err)
		}
		return CovertRow{
			Signal: c.cfg.Signal, Hardening: c.hardening,
			BitsSent: n, BER: ber, RateBPS: covert.ThroughputBPS(c.cfg),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &CovertSurveyResult{Rows: rows}, nil
}

func measureCovert(cfg covert.Config, hardening HostHardening) (float64, int, error) {
	dc := cloud.New(cloud.Config{
		Racks: 1, ServersPerRack: 1, Seed: 6502,
		Defended: hardening >= DefendedHost,
		Benign:   cloud.BenignConfig{BaseUtil: 0.05, PeakUtil: 0.08, FlashCrowdPerDay: 0.0001},
	})
	srv := dc.Racks[0].Servers[0]
	if hardening >= FullyHardenedHost {
		defense.ApplyStatisticsFixes(srv.FS)
	}
	if hardening >= ThermalHardenedHost {
		powerns.NewThermal(srv.PowerNS).InstallThermal(srv.FS)
	}
	sender := srv.Runtime.Create("sender")
	receiver := srv.Runtime.Create("receiver")
	if srv.PowerNS != nil {
		srv.PowerNS.Register(sender.CgroupPath)
		srv.PowerNS.Register(receiver.CgroupPath)
	}
	link, err := covert.NewLink(cfg, sender, receiver, func() { dc.Clock.Advance(1) })
	if err != nil {
		return 0, 0, err
	}
	const n = 48
	rng := rand.New(rand.NewSource(4811))
	sent := make([]bool, n)
	for i := range sent {
		sent[i] = rng.Intn(2) == 1
	}
	got, err := link.Transmit(sent)
	if err != nil {
		return 0, 0, err
	}
	return covert.BitErrorRate(sent, got), n, nil
}

// String renders the survey.
func (r *CovertSurveyResult) String() string {
	tb := texttable.New("Signal", "Host", "Bits", "BER", "Rate (b/s)")
	for _, row := range r.Rows {
		tb.Row(row.Signal.String(), row.Hardening.String(), fmt.Sprintf("%d", row.BitsSent),
			fmt.Sprintf("%.3f", row.BER), fmt.Sprintf("%.3f", row.RateBPS))
	}
	return "COVERT CHANNELS (extension): cross-container signalling over leaked channels\n" +
		tb.String() +
		"note: the power namespace kills the RAPL channel; stage-3 statistics namespacing\n" +
		"kills the utilization channel; the thermal-namespace PoC (applying the paper's own\n" +
		"modeling trick to the resource Section VII-B calls hard to partition) finally\n" +
		"closes temperature as well.\n"
}
