package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/powerns"
	"repro/internal/pseudofs"
	"repro/internal/texttable"
	"repro/internal/workload"
)

// AblationCalibrationResult compares modeling error with Formula 3's
// on-the-fly calibration on and off.
type AblationCalibrationResult struct {
	Rows []struct {
		Benchmark      string
		XiCalibrated   float64
		XiUncalibrated float64
	}
}

// AblationCalibration quantifies what the calibration step buys: the same
// trained model, evaluated on the SPEC subset with and without Formula 3,
// at the default worker count.
func AblationCalibration() (*AblationCalibrationResult, error) {
	return AblationCalibrationWorkers(0)
}

// AblationCalibrationWorkers fans the per-benchmark on/off measurement
// pairs out: each measureXiCalibrated call builds its own kernel and only
// reads the shared trained model (immutable after Train), so the rows are
// share-nothing and return in benchmark order.
func AblationCalibrationWorkers(workers int) (*AblationCalibrationResult, error) {
	model, _, err := powerns.Train(powerns.TrainOptions{Seed: 21})
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation calibration train: %w", err)
	}
	rows, err := parallel.Map(workers, workload.SPECSubset(), func(_ int, prof workload.Profile) (struct {
		Benchmark      string
		XiCalibrated   float64
		XiUncalibrated float64
	}, error) {
		var row struct {
			Benchmark      string
			XiCalibrated   float64
			XiUncalibrated float64
		}
		on, err := measureXiCalibrated(model, prof, true)
		if err != nil {
			return row, err
		}
		off, err := measureXiCalibrated(model, prof, false)
		if err != nil {
			return row, err
		}
		row.Benchmark, row.XiCalibrated, row.XiUncalibrated = prof.Name, on, off
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationCalibrationResult{Rows: rows}, nil
}

// String renders the comparison.
func (r *AblationCalibrationResult) String() string {
	tb := texttable.New("Benchmark", "ξ calibrated", "ξ uncalibrated")
	var worstOn, worstOff float64
	for _, row := range r.Rows {
		tb.Row(row.Benchmark, fmt.Sprintf("%.4f", row.XiCalibrated), fmt.Sprintf("%.4f", row.XiUncalibrated))
		if row.XiCalibrated > worstOn {
			worstOn = row.XiCalibrated
		}
		if row.XiUncalibrated > worstOff {
			worstOff = row.XiUncalibrated
		}
	}
	return fmt.Sprintf("ABLATION: on-the-fly calibration (Formula 3): worst ξ %.4f with vs %.4f without\n%s",
		worstOn, worstOff, tb.String())
}

// AblationFeaturesResult compares the full Formula 2 feature set against an
// instructions-only regression.
type AblationFeaturesResult struct {
	FullR2, NaiveR2     float64
	FullRMSE, NaiveRMSE float64
}

// AblationModelFeatures quantifies the value of the cache- and branch-miss
// terms the paper adds over naive instruction counting.
func AblationModelFeatures() (*AblationFeaturesResult, error) {
	full, _, err := powerns.Train(powerns.TrainOptions{Seed: 22})
	if err != nil {
		return nil, err
	}
	naive, _, err := powerns.Train(powerns.TrainOptions{Seed: 22, CoreFeatureMask: []bool{true, false, false}})
	if err != nil {
		return nil, err
	}
	return &AblationFeaturesResult{
		FullR2: full.Core.R2, NaiveR2: naive.Core.R2,
		FullRMSE: full.Core.RMSE, NaiveRMSE: naive.Core.RMSE,
	}, nil
}

// String renders the comparison.
func (r *AblationFeaturesResult) String() string {
	return fmt.Sprintf(
		"ABLATION: core-model features: full F(CM/C,BM/C)·I R²=%.4f RMSE=%.2f J vs instructions-only R²=%.4f RMSE=%.2f J\n",
		r.FullR2, r.FullRMSE, r.NaiveR2, r.NaiveRMSE)
}

// CrestPoint is one sweep point of the crest-threshold ablation.
type CrestPoint struct {
	Percentile  float64
	PeakW       float64
	Trials      int
	CoreSeconds float64
}

// AblationCrestThreshold sweeps the synergistic attack's crest percentile
// and reports the peak/cost trade-off, at the default worker count.
func AblationCrestThreshold() ([]CrestPoint, error) { return AblationCrestThresholdWorkers(0) }

// AblationCrestThresholdWorkers is the crest sweep with an explicit worker
// count: every percentile point rebuilds its own datacenter from the same
// seed (share-nothing worlds differing only in the attack threshold), so
// the points fan out in parallel and return in sweep order.
func AblationCrestThresholdWorkers(workers int) ([]CrestPoint, error) {
	return parallel.Map(workers, []float64{50, 70, 80, 90, 95, 99}, func(_ int, pct float64) (CrestPoint, error) {
		dc := cloud.New(cloud.Config{
			Racks: 1, ServersPerRack: 4, CoresPerServer: 16, Seed: 23,
			BreakerRatedW: 1e9,
			Benign:        cloud.BenignConfig{FlashCrowdPerDay: 48},
		})
		dc.Clock.Run(16*3600, 30)
		agg, err := attack.SpreadAcrossRack(dc, "m", 4, 4, 3600, 400)
		if err != nil {
			return CrestPoint{}, err
		}
		cfg := attack.DefaultConfig()
		cfg.CrestPercentile = pct
		r, err := attack.RunSynergistic(dc, agg.Kept[0].Server.Rack, agg.Containers(), cfg, 3000)
		if err != nil {
			return CrestPoint{}, err
		}
		return CrestPoint{Percentile: pct, PeakW: r.PeakW, Trials: r.Trials, CoreSeconds: r.AttackCoreSeconds}, nil
	})
}

// RenderCrestSweep renders the sweep.
func RenderCrestSweep(points []CrestPoint) string {
	tb := texttable.New("Crest percentile", "Peak (W)", "Trials", "Attack core-s")
	for _, p := range points {
		tb.Row(fmt.Sprintf("p%.0f", p.Percentile), fmt.Sprintf("%.0f", p.PeakW),
			fmt.Sprintf("%d", p.Trials), fmt.Sprintf("%.0f", p.CoreSeconds))
	}
	return "ABLATION: synergistic crest threshold sweep\n" + tb.String()
}

// StrategyCost is one attack strategy's peak-vs-cost point (Section IV-B's
// economics: maximize attack outcome per metered dollar).
type StrategyCost struct {
	Strategy    string
	PeakW       float64
	Trials      int
	CoreSeconds float64
	BillUSD     float64
}

// AblationStrategyCost compares continuous, periodic, and synergistic
// attacks on identical worlds, including the metered bill each accrues,
// at the default worker count.
func AblationStrategyCost() ([]StrategyCost, error) { return AblationStrategyCostWorkers(0) }

// AblationStrategyCostWorkers is the strategy comparison with an explicit
// worker count: each strategy drives its own same-seed world, so the three
// runs are share-nothing and fan out in parallel, rows in strategy order.
func AblationStrategyCostWorkers(workers int) ([]StrategyCost, error) {
	run := func(strategy string) (StrategyCost, error) {
		dc := cloud.New(cloud.Config{
			Racks: 1, ServersPerRack: 4, CoresPerServer: 16, Seed: 24,
			BreakerRatedW: 1e9,
			Benign:        cloud.BenignConfig{FlashCrowdPerDay: 48, FlashMinS: 60, FlashMaxS: 240, SharedFlash: true},
		})
		dc.Clock.Run(16*3600, 30)
		agg, err := attack.SpreadAcrossRack(dc, "mallory", 4, 4, 3600, 300)
		if err != nil {
			return StrategyCost{}, err
		}
		rack := agg.Kept[0].Server.Rack
		cfg := attack.DefaultConfig()
		var r attack.Result
		switch strategy {
		case "continuous":
			r = attack.RunContinuous(dc, rack, agg.Containers(), cfg, 3000)
		case "periodic":
			r = attack.RunPeriodic(dc, rack, agg.Containers(), cfg, 3000, 300)
		case "synergistic":
			cfg.TriggerNearMax = 0.95
			cfg.WarmupSeconds = 600
			cfg.CooldownSeconds = 240
			r, err = attack.RunSynergistic(dc, rack, agg.Containers(), cfg, 3000)
			if err != nil {
				return StrategyCost{}, err
			}
		}
		return StrategyCost{
			Strategy:    strategy,
			PeakW:       r.PeakW,
			Trials:      r.Trials,
			CoreSeconds: r.AttackCoreSeconds,
			BillUSD:     dc.Billing().TenantBill("mallory"),
		}, nil
	}
	return parallel.Map(workers, []string{"continuous", "periodic", "synergistic"}, func(_ int, s string) (StrategyCost, error) {
		sc, err := run(s)
		if err != nil {
			return StrategyCost{}, fmt.Errorf("experiments: strategy %s: %w", s, err)
		}
		return sc, nil
	})
}

// RenderStrategyCost renders the economics table.
func RenderStrategyCost(rows []StrategyCost) string {
	tb := texttable.New("Strategy", "Peak (W)", "Trials", "Attack core-s", "Bill ($)")
	for _, r := range rows {
		tb.Row(r.Strategy, fmt.Sprintf("%.0f", r.PeakW), fmt.Sprintf("%d", r.Trials),
			fmt.Sprintf("%.0f", r.CoreSeconds), fmt.Sprintf("%.4f", r.BillUSD))
	}
	return "ABLATION: attack-strategy economics (Section IV-B)\n" + tb.String()
}

// StageOutcome summarizes one defense configuration.
type StageOutcome struct {
	Name string
	// LeakingChannels counts Table I channels still ● after the defense.
	LeakingChannels int
	// BrokenApps counts legitimate apps losing at least one read.
	BrokenApps int
}

// AblationDefenseStages compares no defense, stage 1 only (masking), and
// stage 2 (namespacing): residual leakage vs application breakage.
func AblationDefenseStages() ([]StageOutcome, error) {
	var out []StageOutcome

	// Baseline.
	k0, fs0, rt0 := stageWorld(31)
	out = append(out, StageOutcome{Name: "no defense", LeakingChannels: stageLeakCount(fs0, k0, rt0, nil)})

	// Stage 1: masks from a fresh inspection.
	k1, fs1, rt1 := stageWorld(32)
	probe := rt1.Create("inspect")
	k1.Tick(5, 5)
	host := pseudofs.NewMount(fs1, pseudofs.HostView(k1), pseudofs.Policy{})
	reports := core.RollUp(core.TableIChannels(), core.CrossValidate(host, probe.Mount()))
	if err := rt1.Destroy(probe.ID); err != nil {
		return nil, err
	}
	rules := defense.MaskingRules(reports)
	out = append(out, StageOutcome{
		Name:            "stage 1 (masking)",
		LeakingChannels: stageLeakCount(fs1, k1, rt1, rules),
		BrokenApps:      len(defense.AssessImpact(rules, defense.CommonApps())),
	})

	// Stage 2: namespace fixes + power namespace, no masks.
	k2, fs2, rt2 := stageWorld(33)
	model, _, err := powerns.Train(powerns.TrainOptions{Seed: 33})
	if err != nil {
		return nil, err
	}
	defense.ApplyNamespaceFixes(fs2)
	ns := powerns.New(k2, model)
	ns.Install(fs2)
	out = append(out, StageOutcome{
		Name:            "stage 2 (namespacing)",
		LeakingChannels: stageLeakCount(fs2, k2, rt2, nil),
		BrokenApps:      0, // interfaces stay readable, now with private data
	})
	return out, nil
}

// stageWorld builds one isolated kernel/pseudofs/runtime triple for a
// defense-stage measurement; each stage gets its own seed so the rows are
// independent observations.
func stageWorld(seed int64) (*kernel.Kernel, *pseudofs.FS, *container.Runtime) {
	k := kernel.New(kernel.Options{Hostname: "stage", Seed: seed})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	return k, fs, container.NewRuntime(k, fs, container.DockerProfile())
}

// stageLeakCount counts Table I channels still fully available (●) to a
// probe container created with the given extra masking rules.
func stageLeakCount(fs *pseudofs.FS, k *kernel.Kernel, rt *container.Runtime, extra []pseudofs.Rule) int {
	probe := rt.Create("probe", extra...)
	defer func() { _ = rt.Destroy(probe.ID) }()
	k.Tick(k.Now()+5, 5)
	host := pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{})
	n := 0
	for _, rep := range core.RollUp(core.TableIChannels(), core.CrossValidate(host, probe.Mount())) {
		if rep.Availability == core.Available {
			n++
		}
	}
	return n
}

// RenderStages renders the stage comparison.
func RenderStages(outcomes []StageOutcome) string {
	tb := texttable.New("Defense", "Channels still ●", "Apps broken")
	for _, o := range outcomes {
		tb.Row(o.Name, fmt.Sprintf("%d / 21", o.LeakingChannels), fmt.Sprintf("%d / %d", o.BrokenApps, len(defense.CommonApps())))
	}
	return "ABLATION: two-stage defense — residual leakage vs collateral damage\n" + tb.String()
}
