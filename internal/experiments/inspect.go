package experiments

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/parallel"
)

// DefaultInspectSeed is the datacenter seed every one-shot inspection has
// used since the first PR (it is what makes `leakscan -table1` output a
// fixed artifact). Seed-varied scan campaigns — the service layer re-running
// Table I across many simulated datacenters — pass their own seed through
// InspectProviderSeeded; seed 0 everywhere means "use this default", so
// zero-valued requests reproduce the CLI bytes exactly.
const DefaultInspectSeed int64 = 0x1ea4

// CloudInspection is the result of checking one provider: per-channel
// availability, in Table I row order. A failed inspection carries its error
// in Err with empty Reports, so one broken profile does not kill a
// six-cloud sweep.
type CloudInspection struct {
	Provider string
	Reports  []core.ChannelReport
	// Err is non-nil when this provider's inspection failed; Reports is
	// then empty and renderers mark the provider as failed instead of
	// aborting the whole table.
	Err error
}

// InspectProvider implements the right half of Fig. 1 for one provider: it
// stands up a single-server cloud with that provider's profile, launches a
// tenant container, lets the world run briefly, and cross-validates the
// container view against the host view.
func InspectProvider(p cloud.ProviderProfile) (CloudInspection, error) {
	return InspectProviderChaos(p, chaos.Spec{})
}

// InspectProviderChaos is InspectProvider with the provider's observation
// surface armed with deterministic fault injection. The detector's quorum
// reads absorb transient faults; flapping masks degrade findings to partial
// rather than flipping availability outright. The zero Spec is exactly
// InspectProvider.
func InspectProviderChaos(p cloud.ProviderProfile, spec chaos.Spec) (CloudInspection, error) {
	return InspectProviderSeeded(p, spec, 0)
}

// InspectAll runs the inspection across the local testbed and all five
// commercial cloud profiles — the full Table I — using the default worker
// count (GOMAXPROCS).
func InspectAll() ([]CloudInspection, error) { return InspectAllWorkers(0) }

// InspectAllWorkers is InspectAll with an explicit worker count (the -j of
// cmd/leakscan). Each provider inspection builds its own datacenter from a
// fixed seed — share-nothing worlds — so the fan-out is deterministic: the
// result slice is always in profile order with identical content at any
// worker count.
//
// Provider failures are collected, not fatal: a failed provider appears in
// the result with Err set, and the returned error is non-nil only when
// every provider failed.
func InspectAllWorkers(workers int) ([]CloudInspection, error) {
	return InspectAllChaosWorkers(chaos.Spec{}, workers)
}

// InspectAllChaosWorkers is InspectAllWorkers with every provider's
// observation surface armed with the same fault-injection spec. Per-provider
// fault streams are salted by hostname inside the cloud, so results remain
// byte-identical at any worker count.
func InspectAllChaosWorkers(spec chaos.Spec, workers int) ([]CloudInspection, error) {
	return InspectAllSeeded(context.Background(), spec, 0, workers)
}

// InspectAllSeeded is the fully-threaded inspection sweep: every provider's
// datacenter is built from the given seed (0 = DefaultInspectSeed) and the
// fan-out honours ctx — cancelling it stops dispatching providers, so a
// leaksd shutdown aborts an in-flight six-cloud sweep instead of orphaning
// it. With a background context and seed 0 this is byte-identical to
// InspectAllChaosWorkers.
func InspectAllSeeded(ctx context.Context, spec chaos.Spec, seed int64, workers int) ([]CloudInspection, error) {
	profiles := append([]cloud.ProviderProfile{cloud.LocalTestbed()}, cloud.CommercialClouds()...)
	return inspectProfiles(ctx, profiles, workers, func(p cloud.ProviderProfile) (CloudInspection, error) {
		return InspectProviderSeeded(p, spec, seed)
	})
}

// inspectProfiles fans the per-provider inspections out and folds failures
// into the per-provider Err field (the injectable inspect hook keeps the
// partial-failure path testable without a breakable provider profile).
// Context cancellation aborts the sweep with ctx's error.
func inspectProfiles(
	ctx context.Context,
	profiles []cloud.ProviderProfile,
	workers int,
	inspect func(cloud.ProviderProfile) (CloudInspection, error),
) ([]CloudInspection, error) {
	out, errs := parallel.MapSettleCtx(ctx, workers, profiles, func(_ context.Context, _ int, p cloud.ProviderProfile) (CloudInspection, error) {
		return inspect(p)
	})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	failed := 0
	for i := range out {
		if errs[i] != nil {
			out[i] = CloudInspection{Provider: profiles[i].Name, Err: errs[i]}
			failed++
		}
	}
	if failed == len(profiles) {
		return out, fmt.Errorf("experiments: all %d provider inspections failed, first: %w",
			failed, parallel.FirstError(errs))
	}
	return out, nil
}

// PostureChange records one channel whose availability moved between two
// inspections of the same provider — how an operator (or researcher
// re-running the paper's study) tracks masking-posture drift over time.
type PostureChange struct {
	Channel string
	From    core.Availability
	To      core.Availability
}

// DiffInspections compares two inspections channel by channel. It errors if
// the inspections cover different channel sets or either inspection failed.
func DiffInspections(old, new CloudInspection) ([]PostureChange, error) {
	if old.Err != nil || new.Err != nil {
		return nil, fmt.Errorf("experiments: cannot diff failed inspections (%v, %v)", old.Err, new.Err)
	}
	if len(old.Reports) != len(new.Reports) {
		return nil, fmt.Errorf("experiments: inspections cover %d vs %d channels",
			len(old.Reports), len(new.Reports))
	}
	var out []PostureChange
	for i, o := range old.Reports {
		n := new.Reports[i]
		if o.Channel.Name != n.Channel.Name {
			return nil, fmt.Errorf("experiments: channel order mismatch at %d: %s vs %s",
				i, o.Channel.Name, n.Channel.Name)
		}
		if o.Availability != n.Availability {
			out = append(out, PostureChange{
				Channel: o.Channel.Name,
				From:    o.Availability,
				To:      n.Availability,
			})
		}
	}
	return out, nil
}
