package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/core"
)

// CloudInspection is the result of checking one provider: per-channel
// availability, in Table I row order.
type CloudInspection struct {
	Provider string
	Reports  []core.ChannelReport
}

// InspectProvider implements the right half of Fig. 1 for one provider: it
// stands up a single-server cloud with that provider's profile, launches a
// tenant container, lets the world run briefly, and cross-validates the
// container view against the host view.
func InspectProvider(p cloud.ProviderProfile) (CloudInspection, error) {
	dc := cloud.New(cloud.Config{
		Racks:          1,
		ServersPerRack: 1,
		Seed:           0x1ea4,
		Provider:       &p,
	})
	srv, c, err := dc.Launch("inspector", "probe", 1)
	if err != nil {
		return CloudInspection{}, err
	}
	// Let counters accumulate so dynamic channels carry real data.
	dc.Clock.Run(30, 1)

	findings := core.CrossValidate(srv.HostMount(), c.Mount())
	return CloudInspection{
		Provider: p.Name,
		Reports:  core.RollUp(core.TableIChannels(), findings),
	}, nil
}

// InspectAll runs the inspection across the local testbed and all five
// commercial cloud profiles — the full Table I.
func InspectAll() ([]CloudInspection, error) {
	profiles := append([]cloud.ProviderProfile{cloud.LocalTestbed()}, cloud.CommercialClouds()...)
	out := make([]CloudInspection, 0, len(profiles))
	for _, p := range profiles {
		ins, err := InspectProvider(p)
		if err != nil {
			return nil, err
		}
		out = append(out, ins)
	}
	return out, nil
}

// PostureChange records one channel whose availability moved between two
// inspections of the same provider — how an operator (or researcher
// re-running the paper's study) tracks masking-posture drift over time.
type PostureChange struct {
	Channel string
	From    core.Availability
	To      core.Availability
}

// DiffInspections compares two inspections channel by channel. It errors if
// the inspections cover different channel sets.
func DiffInspections(old, new CloudInspection) ([]PostureChange, error) {
	if len(old.Reports) != len(new.Reports) {
		return nil, fmt.Errorf("experiments: inspections cover %d vs %d channels",
			len(old.Reports), len(new.Reports))
	}
	var out []PostureChange
	for i, o := range old.Reports {
		n := new.Reports[i]
		if o.Channel.Name != n.Channel.Name {
			return nil, fmt.Errorf("experiments: channel order mismatch at %d: %s vs %s",
				i, o.Channel.Name, n.Channel.Name)
		}
		if o.Availability != n.Availability {
			out = append(out, PostureChange{
				Channel: o.Channel.Name,
				From:    o.Availability,
				To:      n.Availability,
			})
		}
	}
	return out, nil
}
