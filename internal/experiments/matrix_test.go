package experiments

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
)

func TestMatrixSweepByteIdenticalAcrossWorkers(t *testing.T) {
	serial, err := MatrixSweepWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel8, err := MatrixSweepWorkers(8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel8.String() {
		t.Fatal("matrix sweep must be byte-identical at any worker count")
	}
}

func TestMatrixSandboxColumnsMaskClassicChannelsOnly(t *testing.T) {
	r, err := MatrixSweepWorkers(4)
	if err != nil {
		t.Fatal(err)
	}
	classic := len(core.TableIChannels())
	freqRow := classic // the frequency channel is the appended last row
	byName := make(map[string][]core.ChannelReport)
	for _, ins := range r.Inspections {
		if ins.Err != nil {
			t.Fatalf("%s: %v", ins.Provider, ins.Err)
		}
		byName[ins.Provider] = ins.Reports
	}

	// gVisor and Kata proxy procfs: every classic channel must be dead
	// (Masked or hardware-Absent roll up to Unavailable), while the
	// passed-through frequency channel stays fully available.
	for _, sandbox := range []string{"gvisor", "kata"} {
		reps, ok := byName[sandbox]
		if !ok {
			t.Fatalf("%s column missing from the matrix", sandbox)
		}
		for i := 0; i < classic; i++ {
			if reps[i].Availability != core.Unavailable {
				t.Errorf("%s: classic channel %s = %s, want ○",
					sandbox, reps[i].Channel.Name, reps[i].Availability)
			}
		}
		if reps[freqRow].Availability != core.Available {
			t.Errorf("%s: frequency channel = %s, want ● (it pierces the sandbox)",
				sandbox, reps[freqRow].Availability)
		}
	}

	// The hardened clouds deny /sys/devices wholesale, so the frequency
	// channel dies there — sandboxing and sysfs-denial close different rows.
	for _, cc := range []string{"cc4", "cc5"} {
		if got := byName[cc][freqRow].Availability; got != core.Unavailable {
			t.Errorf("%s: frequency channel = %s, want ○ (denies /sys/devices)", cc, got)
		}
	}

	// Rootless and podman mask only their slice of the classic channels;
	// plenty must survive (they are not sandboxes).
	for _, rt := range []string{"rootless", "podman"} {
		if n := r.Available(rt); n < 10 {
			t.Errorf("%s: only %d channels available — these runtimes do not proxy procfs", rt, n)
		}
	}
}

func TestMatrixSessionWarmSweepMatchesCold(t *testing.T) {
	cold, err := MatrixSweepWorkers(4)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMatrixSession(chaos.Spec{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := ms.Sweep(4)
	if first.String() != cold.String() {
		t.Fatal("a session's first sweep must equal the cold sweep")
	}
	warm := ms.Sweep(1)
	if warm.String() != cold.String() {
		t.Fatal("a warm sweep (pure cache hits) must stay byte-identical")
	}
	// Session reuse must actually win: the second sweep is served from the
	// per-target engine caches, not re-validated from scratch.
	for _, s := range ms.sessions {
		if s.EngineStats().FindingHits == 0 {
			t.Fatal("warm sweep re-validated a target instead of hitting the engine cache")
		}
	}
	ms.Advance(3)
	advanced := ms.Sweep(4)
	if advanced.String() == "" {
		t.Fatal("advanced sweep rendered nothing")
	}
}

func TestMatrixNarrowAndAvailable(t *testing.T) {
	r, err := MatrixSweepWorkers(4)
	if err != nil {
		t.Fatal(err)
	}
	n := r.Narrow("gvisor", "no-such-target")
	if len(n.Inspections) != 1 || n.Inspections[0].Provider != "gvisor" {
		t.Fatalf("Narrow kept %d columns", len(n.Inspections))
	}
	if !strings.Contains(n.String(), "GVISOR") {
		t.Fatal("narrowed render lost its column header")
	}
	if r.Available("no-such-target") != -1 {
		t.Fatal("unknown targets must report -1")
	}
	if got := r.Available("gvisor"); got != 1 {
		t.Fatalf("gvisor availability = %d, want exactly the frequency channel", got)
	}
}

func TestInspectRuntimeChaosWorkers(t *testing.T) {
	r, err := InspectRuntimeChaosWorkers("kata", chaos.Spec{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Inspections) != 1 || r.Inspections[0].Provider != "kata" {
		t.Fatalf("want one kata column, got %+v", r.Inspections)
	}
	if !strings.Contains(r.String(), "KATA") {
		t.Fatal("render lost the KATA header")
	}
	if _, err := InspectRuntimeChaosWorkers("firecracker", chaos.Spec{}, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown runtime") {
		t.Fatalf("unknown runtime error = %v", err)
	}
}

func TestRuntimeDefenseScoresSandbox(t *testing.T) {
	r, err := RuntimeDefense("gvisor", 4)
	if err != nil {
		t.Fatal(err)
	}
	closed, pierced, leaking := r.Closed()
	if leaking == 0 || closed == 0 {
		t.Fatalf("degenerate score: closed=%d pierced=%d leaking=%d", closed, pierced, leaking)
	}
	if pierced != 1 {
		t.Fatalf("exactly the frequency channel pierces gVisor, got %d survivors", pierced)
	}
	if closed+pierced != leaking {
		t.Fatal("closed + pierced must cover every leaking channel")
	}
	out := r.String()
	for _, want := range []string{"RUNTIME DEFENSE: gvisor", "DOCKER", "GVISOR", "pierce the sandbox"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := RuntimeDefense("lxd", 0); err == nil {
		t.Fatal("unknown runtime must error")
	}
}
