package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/cloud"
)

// This file is the experiment layer's world-snapshot plumbing. Building a
// datacenter is the dominant cost of the cold paths — the Fig. 3 trio
// drives 1920 warmup ticks per world, an inspect session 30 — and the
// seed loops rebuild the *same* world many times per run. With
// cloud.WorldState the layer builds each distinct world once, captures it
// at the post-warmup instant, and rewinds instead of rebuilding. The
// restore contract (byte-identical continuation, see cloud.WorldState) is
// what keeps every golden unchanged.

var (
	// snapshotsEnabled gates every restore-instead-of-rebuild path; the
	// -snapshots=false escape hatch on the CLIs clears it.
	snapshotsEnabled atomic.Bool

	// snapshotRestores counts world restores that replaced a full rebuild
	// (exported to leaksd as leaksd_engine_snapshot_restores_total).
	snapshotRestores atomic.Uint64
)

func init() { snapshotsEnabled.Store(true) }

// SetSnapshots toggles the world snapshot/restore fast path globally.
// Disabled, every seed loop and session rebuilds its worlds from scratch —
// the output is byte-identical either way; only the time differs.
func SetSnapshots(on bool) { snapshotsEnabled.Store(on) }

// SnapshotsEnabled reports whether the snapshot fast path is active.
func SnapshotsEnabled() bool { return snapshotsEnabled.Load() }

// SnapshotRestores returns the number of world restores that replaced a
// rebuild since process start.
func SnapshotRestores() uint64 { return snapshotRestores.Load() }

// pooledWorld is one cached world plus its post-warmup capture. aux
// carries whatever build products the caller needs back alongside the
// datacenter (probe container, rack under attack, …) — the restore
// contract keeps those handles valid across rewinds. inUse guards the
// window between checkout and release: a concurrent checkout of the same
// key builds a throwaway world instead of sharing.
type pooledWorld struct {
	dc    *cloud.Datacenter
	aux   any
	snap  *cloud.WorldState
	inUse bool
}

var (
	worldPoolMu sync.Mutex
	worldPool   = make(map[string]*pooledWorld)
)

// worldPoolCap bounds how many distinct session worlds stay resident; keys
// beyond the cap build uncached (correct, just not accelerated).
const worldPoolCap = 32

func inspectPoolKey(kind, provider string, spec chaos.Spec, seed int64) string {
	return fmt.Sprintf("%s|%s|%g|%d|%d", kind, provider, spec.Rate, spec.Seed, seed)
}

// checkoutWorld returns a warmed-up world for key: a pooled one rewound
// to its post-warmup capture when available, otherwise a freshly built
// one (registered in the pool on first build). The second result is the
// pool key to release when done — empty when the world is unpooled.
func checkoutWorld(key string, build func() (*cloud.Datacenter, any, error)) (*pooledWorld, string, error) {
	if !SnapshotsEnabled() {
		dc, aux, err := build()
		if err != nil {
			return nil, "", err
		}
		return &pooledWorld{dc: dc, aux: aux}, "", nil
	}
	worldPoolMu.Lock()
	w, ok := worldPool[key]
	if ok && !w.inUse {
		w.inUse = true
		worldPoolMu.Unlock()
		w.dc.Restore(w.snap)
		snapshotRestores.Add(1)
		return w, key, nil
	}
	worldPoolMu.Unlock()

	dc, aux, err := build()
	if err != nil {
		return nil, "", err
	}
	w = &pooledWorld{dc: dc, aux: aux, inUse: true}

	worldPoolMu.Lock()
	defer worldPoolMu.Unlock()
	if _, exists := worldPool[key]; exists || len(worldPool) >= worldPoolCap {
		// The key is taken (a concurrent first build won) or the pool is
		// full: hand the world out unpooled.
		return w, "", nil
	}
	w.snap = dc.Snapshot()
	worldPool[key] = w
	return w, key, nil
}

// releaseWorld returns a pooled world to the pool. The caller must not
// touch the world afterwards; the next checkout rewinds it.
func releaseWorld(key string) {
	if key == "" {
		return
	}
	worldPoolMu.Lock()
	if w, ok := worldPool[key]; ok {
		w.inUse = false
	}
	worldPoolMu.Unlock()
}
