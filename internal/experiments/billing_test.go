package experiments

import (
	"strings"
	"testing"
)

func TestPowerBillingSeparatesTenants(t *testing.T) {
	r, err := PowerBilling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]BillingRow{}
	for _, row := range r.Rows {
		byName[row.Tenant] = row
	}
	batch := byName["batch-compute"]
	scan := byName["analytics-scan"]
	idle := byName["mostly-idle"]

	// Equal CPU reservations → near-equal core-hours for the two busy
	// tenants, so CPU billing cannot tell them apart…
	if d := batch.CoreHours - scan.CoreHours; d > 0.2 || d < -0.2 {
		t.Fatalf("busy tenants' core-hours differ: %.2f vs %.2f", batch.CoreHours, scan.CoreHours)
	}
	// …but their energy differs measurably (compute-bound vs memory-bound).
	if batch.EnergyWh <= scan.EnergyWh*1.05 {
		t.Fatalf("energy should separate them: batch %.1f Wh vs scan %.1f Wh",
			batch.EnergyWh, scan.EnergyWh)
	}
	// Power billing therefore charges batch more than scan; CPU billing
	// charges them the same.
	if batch.PowerBillUSD <= scan.PowerBillUSD {
		t.Fatal("power billing failed to separate tenants")
	}
	// The idle tenant is cheap under both models.
	if idle.PowerBillUSD >= scan.PowerBillUSD || idle.CPUBillUSD >= scan.CPUBillUSD {
		t.Fatalf("idle tenant overcharged: %+v", idle)
	}
	if !strings.Contains(r.String(), "BILLING") {
		t.Fatal("render incomplete")
	}
}
