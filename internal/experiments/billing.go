package experiments

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/kernel"
	"repro/internal/powerns"
	"repro/internal/pseudofs"
	"repro/internal/texttable"
	"repro/internal/workload"
)

// BillingRow compares one tenant under CPU-time billing versus the
// power-aware billing the paper proposes ("it is possible for container
// cloud administrators to design a finer-grained billing model based on
// this power-based namespace").
type BillingRow struct {
	Tenant    string
	Workload  string
	CoreHours float64
	EnergyWh  float64
	// CPUBillUSD uses the classic metered core-hour rate; PowerBillUSD
	// prices attributed energy instead.
	CPUBillUSD   float64
	PowerBillUSD float64
}

// PowerBillingResult is the comparison across tenants.
type PowerBillingResult struct {
	Rows []BillingRow
}

// Rates for the comparison: the classic $/core-hour against a $/kWh chosen
// so an average-intensity tenant pays the same under both models.
const (
	cpuRateUSDPerCoreHour = 0.0145
	powerRateUSDPerKWh    = 1.20
)

// PowerBilling runs three tenants with equal CPU reservations but very
// different microarchitectural intensity for an hour, metering both ways.
func PowerBilling() (*PowerBillingResult, error) {
	model, _, err := powerns.Train(powerns.TrainOptions{Seed: 71})
	if err != nil {
		return nil, fmt.Errorf("experiments: billing train: %w", err)
	}
	k := kernel.New(kernel.Options{Hostname: "billing", Seed: 72, Cores: 16})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	rt := container.NewRuntime(k, fs, container.DockerProfile())
	ns := powerns.New(k, model)
	ns.Install(fs)

	type tenant struct {
		name string
		prof workload.Profile
		c    *container.Container
	}
	tenants := []tenant{
		{name: "batch-compute", prof: workload.Prime},
		{name: "analytics-scan", prof: workload.Libquantum},
		{name: "mostly-idle", prof: workload.IdleLoop},
	}
	for i := range tenants {
		tenants[i].c = rt.Create(tenants[i].name)
		ns.Register(tenants[i].c.CgroupPath)
		cores := 4.0
		if tenants[i].name == "mostly-idle" {
			cores = 0.2 // bursts rarely
		}
		tenants[i].c.Run(tenants[i].prof, cores)
	}

	const hour = 3600
	for s := 0; s < hour; s += 5 {
		k.Tick(float64(s+5), 5)
	}

	res := &PowerBillingResult{}
	for _, t := range tenants {
		usedNS := k.Cgroup(t.c.CgroupPath).CPUUsageNS
		coreHours := usedNS / 1e9 / 3600
		energyUJ, err := ns.Meter(t.c.CgroupPath)
		if err != nil {
			return nil, err
		}
		energyWh := energyUJ / 1e6 / 3600
		res.Rows = append(res.Rows, BillingRow{
			Tenant:       t.name,
			Workload:     t.prof.Name,
			CoreHours:    coreHours,
			EnergyWh:     energyWh,
			CPUBillUSD:   coreHours * cpuRateUSDPerCoreHour,
			PowerBillUSD: energyWh / 1000 * powerRateUSDPerKWh,
		})
	}
	return res, nil
}

// String renders the billing comparison.
func (r *PowerBillingResult) String() string {
	tb := texttable.New("Tenant", "Workload", "Core-hours", "Energy (Wh)", "CPU bill ($)", "Power bill ($)")
	for _, row := range r.Rows {
		tb.Row(row.Tenant, row.Workload,
			fmt.Sprintf("%.2f", row.CoreHours), fmt.Sprintf("%.1f", row.EnergyWh),
			fmt.Sprintf("%.4f", row.CPUBillUSD), fmt.Sprintf("%.4f", row.PowerBillUSD))
	}
	return "POWER-AWARE BILLING (extension): equal CPU time, different energy — the\n" +
		"finer-grained billing model the paper proposes on top of the power namespace\n" +
		tb.String()
}
