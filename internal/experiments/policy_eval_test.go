package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/policy"
)

// TestPolicyEvalFile synthesizes a CC1 policy, writes it in the stored
// JSON format, and replays it through the defensebench -policy path: the
// rendered grid must carry the policy row next to the defense stages, and
// the empty-masking synthesis must not break more apps than stage 1's
// deny-only masking.
func TestPolicyEvalFile(t *testing.T) {
	pol, _, err := policy.Generate(cloud.CC1(), 0, policy.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	raw, err := pol.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	path := filepath.Join(t.TempDir(), "cc1.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write policy: %v", err)
	}

	out, err := PolicyEvalFile(path)
	if err != nil {
		t.Fatalf("PolicyEvalFile: %v", err)
	}
	for _, want := range []string{"POLICY EVAL:", "no defense", "stage 1 (masking)", "stage 2 (namespacing)", "policy (synthesized/cc1)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	outcomes, err := PolicyStages(pol)
	if err != nil {
		t.Fatalf("PolicyStages: %v", err)
	}
	if len(outcomes) != 4 {
		t.Fatalf("outcomes = %d rows; want 4", len(outcomes))
	}
	stage1, polRow := outcomes[1], outcomes[3]
	if polRow.LeakingChannels >= outcomes[0].LeakingChannels {
		t.Fatalf("policy closes nothing: %+v vs baseline %+v", polRow, outcomes[0])
	}
	if polRow.BrokenApps > stage1.BrokenApps {
		t.Fatalf("policy breaks more apps (%d) than stage 1 masking (%d)", polRow.BrokenApps, stage1.BrokenApps)
	}
}

// TestPolicyEvalFileErrors covers the offline loader's failure modes.
func TestPolicyEvalFileErrors(t *testing.T) {
	if _, err := PolicyEvalFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"provider":"cc1","rules":[{"pattern":"","action":"deny"}]}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := PolicyEvalFile(bad); err == nil {
		t.Fatal("empty-pattern rule accepted")
	}
}
