package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDiscoveryFindsBeyondRegistryChannels(t *testing.T) {
	r, err := Discovery()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]core.FileStatus{}
	for _, f := range r.Findings {
		found[f.Path] = f.Status
	}
	// The detector must surface the global channels we planted beyond
	// Table I, without registry hints.
	for _, want := range []string{
		"/proc/vmstat", "/proc/diskstats", "/proc/buddyinfo",
		"/proc/net/softnet_stat", "/proc/partitions", "/proc/swaps",
	} {
		if found[want] != core.Identical {
			t.Errorf("%s not discovered (status %v)", want, found[want])
		}
	}
	// And it must NOT re-report registry-covered channels.
	for _, covered := range []string{"/proc/uptime", "/proc/meminfo", "/proc/sched_debug"} {
		if _, dup := found[covered]; dup {
			t.Errorf("%s is registry-covered but re-reported", covered)
		}
	}
	if r.TotalLeaking <= len(r.Findings) {
		t.Fatalf("total leaking (%d) should exceed the novel subset (%d)",
			r.TotalLeaking, len(r.Findings))
	}
	if !strings.Contains(r.String(), "DISCOVERY") {
		t.Fatal("render incomplete")
	}
}
