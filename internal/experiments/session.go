package experiments

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pseudofs"
)

// This file is the experiment layer's hookup to the incremental detection
// engine (internal/engine). A session owns a persistent simulated world —
// the same one the corresponding one-shot entry point would build — plus
// an engine over its host mount, so repeated scans only re-render paths
// whose kernel subsystems moved. The one-shot entry points
// (InspectProviderSeeded, DiscoverySeeded) are now thin wrappers that
// create a session and run its first pass: a first pass misses every cache
// by construction, so their output is byte-identical to the historical
// direct core.CrossValidate path.

// InspectSession is a persistent Table-I inspection world for one provider
// profile: a single-server cloud, one probe container, and an incremental
// engine over the host mount. The world is advanced to the canonical
// 30-tick observation instant at creation and stays frozen unless Advance
// is called, so every Inspect of an unadvanced session returns identical
// bytes — the later ones from cache.
type InspectSession struct {
	provider string
	dc       *cloud.Datacenter
	srv      *cloud.Server
	cont     *pseudofs.Mount
	eng      *engine.Engine
	poolKey  string
}

// NewInspectSession builds the world InspectProviderSeeded would build
// (seed 0 = DefaultInspectSeed) and wraps it in an incremental engine.
// When snapshots are enabled (the default) the warmed-up world comes from
// a per-(provider, chaos, seed) pool: the first session for a key builds
// and captures it, later ones rewind the capture instead of re-running
// cloud.New and the warmup ticks. Call Close when done with the session
// so the world returns to the pool.
func NewInspectSession(p cloud.ProviderProfile, spec chaos.Spec, seed int64) (*InspectSession, error) {
	if seed == 0 {
		seed = DefaultInspectSeed
	}
	w, key, err := checkoutWorld(inspectPoolKey("inspect", p.Name, spec, seed),
		func() (*cloud.Datacenter, any, error) {
			dc := cloud.New(cloud.Config{
				Racks:          1,
				ServersPerRack: 1,
				Seed:           seed,
				Provider:       &p,
				Chaos:          spec,
			})
			srv, c, err := dc.Launch("inspector", "probe", 1)
			if err != nil {
				return nil, nil, err
			}
			// Let counters accumulate so dynamic channels carry real data.
			dc.Clock.Run(30, 1)
			return dc, sessionWorld{srv: srv, cont: c}, nil
		})
	if err != nil {
		return nil, err
	}
	sw := w.aux.(sessionWorld)
	// The engine is built per session, never pooled: a restore rewinds the
	// kernel's epoch clocks, so a cached engine's validity checks would be
	// confused by time appearing to run backwards.
	return &InspectSession{
		provider: p.Name,
		dc:       w.dc,
		srv:      sw.srv,
		cont:     sw.cont.Mount(),
		eng:      engine.New(sw.srv.HostMount()),
		poolKey:  key,
	}, nil
}

// sessionWorld is the aux payload a session world carries through the
// snapshot pool: the single server and the probe container.
type sessionWorld struct {
	srv  *cloud.Server
	cont *container.Container
}

// Close returns the session's world to the snapshot pool. The session must
// not be used afterwards. Closing is optional — an unreturned world is
// simply rebuilt by the next session for its key.
func (s *InspectSession) Close() { releaseWorld(s.poolKey) }

// Provider returns the profile name the session inspects.
func (s *InspectSession) Provider() string { return s.provider }

// Inspect cross-validates the probe container against the host and rolls
// the findings up into Table I channels. Repeated calls on an unadvanced
// world serve every path from the engine cache with zero re-renders;
// output is byte-identical to a cold scan in all cases.
func (s *InspectSession) Inspect(workers int) CloudInspection {
	return s.InspectChannels(core.TableIChannels(), workers)
}

// InspectChannels is Inspect against an arbitrary channel registry. The
// cross-validation pass (and therefore the engine cache) is channel-set
// independent — RollUp is pure post-processing over the findings — so one
// session can serve Table I and the runtime matrix without re-rendering.
func (s *InspectSession) InspectChannels(channels []core.Channel, workers int) CloudInspection {
	findings := s.eng.ValidateWorkers(s.cont, workers)
	return CloudInspection{
		Provider: s.provider,
		Reports:  core.RollUp(channels, findings),
	}
}

// Advance drives the session's world forward by the given number of
// 1-second ticks. Dirty subsystems are re-rendered on the next Inspect.
func (s *InspectSession) Advance(ticks int) {
	s.dc.Clock.Run(s.dc.Clock.Now()+float64(ticks), 1)
}

// EngineStats exposes the session engine's cache counters.
func (s *InspectSession) EngineStats() engine.Stats { return s.eng.Stats() }

// InspectProviderSeeded is InspectProviderChaos with the datacenter seed
// threaded through: each seed builds a different simulated world (different
// boot ids, task mixes, counter baselines), so a scan campaign across seeds
// measures how stable a provider's leakage posture is across hosts rather
// than re-measuring one frozen world. Seed 0 selects DefaultInspectSeed,
// keeping the historical byte-identical output for every existing caller.
//
// It runs as the first pass of a fresh InspectSession: all cache misses,
// byte-identical to the direct serial cross-validation it replaces.
func InspectProviderSeeded(p cloud.ProviderProfile, spec chaos.Spec, seed int64) (CloudInspection, error) {
	s, err := NewInspectSession(p, spec, seed)
	if err != nil {
		return CloudInspection{}, err
	}
	defer s.Close()
	return s.Inspect(1), nil
}

// DiscoverySession is the persistent testbed world behind discovery
// sweeps, with an incremental engine over the host mount.
type DiscoverySession struct {
	dc      *cloud.Datacenter
	srv     *cloud.Server
	cont    *pseudofs.Mount
	eng     *engine.Engine
	poolKey string
}

// NewDiscoverySession builds the world DiscoverySeeded would build
// (seed 0 = DefaultDiscoverySeed) and wraps it in an incremental engine.
// Like NewInspectSession, the warmed-up world is pooled per (chaos, seed)
// when snapshots are enabled; call Close to return it.
func NewDiscoverySession(spec chaos.Spec, seed int64) *DiscoverySession {
	if seed == 0 {
		seed = DefaultDiscoverySeed
	}
	w, key, _ := checkoutWorld(inspectPoolKey("discover", "", spec, seed),
		func() (*cloud.Datacenter, any, error) {
			dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: seed, Chaos: spec})
			srv := dc.Racks[0].Servers[0]
			probe := srv.Runtime.Create("probe")
			dc.Clock.Run(30, 1)
			return dc, sessionWorld{srv: srv, cont: probe}, nil
		})
	sw := w.aux.(sessionWorld)
	return &DiscoverySession{
		dc:      w.dc,
		srv:     sw.srv,
		cont:    sw.cont.Mount(),
		eng:     engine.New(sw.srv.HostMount()),
		poolKey: key,
	}
}

// Close returns the session's world to the snapshot pool; the session must
// not be used afterwards.
func (s *DiscoverySession) Close() { releaseWorld(s.poolKey) }

// Discover runs the systematic sweep and reports leaking files outside the
// known-channel registry (the matrix set: Table I plus the frequency
// channel, so the cpufreq files do not flood the report as undocumented
// discoveries). Repeated calls on the frozen world are served from the
// engine cache, byte-identical to a cold sweep.
func (s *DiscoverySession) Discover(workers int) *DiscoveryResult {
	findings := s.eng.ValidateWorkers(s.cont, workers)
	res := &DiscoveryResult{
		Findings: core.Discover(core.MatrixChannels(), findings),
	}
	for _, f := range findings {
		if f.Status == core.Identical || f.Status == core.Partial {
			res.TotalLeaking++
		}
	}
	return res
}

// EngineStats exposes the session engine's cache counters.
func (s *DiscoverySession) EngineStats() engine.Stats { return s.eng.Stats() }

// FleetScanResult is the outcome of a batched multi-container validation:
// one host, many tenant containers, validated in a single engine fleet
// pass that renders each host-side file once and shares it across every
// container instead of re-reading per (host, container) pair.
type FleetScanResult struct {
	Containers int
	// LeakingPerContainer counts Identical/Partial findings per container,
	// in launch order (identical masking policies make these equal in the
	// common case — the point is the shared host reads, not the spread).
	LeakingPerContainer []int
	// Stats is the engine's counter snapshot after the pass; HostHits is
	// the number of host renders saved by sharing.
	Stats engine.Stats
}

// FleetScanSeeded launches n tenant containers on a single testbed server
// (seed 0 = DefaultInspectSeed) and cross-validates all of them in one
// batched engine pass. With n containers and P host paths, the naive loop
// performs up to n×P host reads; the fleet pass performs at most P host
// renders and n×P−P shared hits. Honours ctx before building the world.
func FleetScanSeeded(ctx context.Context, spec chaos.Spec, seed int64, n, workers int) (*FleetScanResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("experiments: fleet scan needs at least 1 container, got %d", n)
	}
	if seed == 0 {
		seed = DefaultInspectSeed
	}
	dc := cloud.New(cloud.Config{Racks: 1, ServersPerRack: 1, Seed: seed, Chaos: spec})
	srv := dc.Racks[0].Servers[0]
	mounts := make([]*pseudofs.Mount, 0, n)
	for i := 0; i < n; i++ {
		c := srv.Runtime.Create(fmt.Sprintf("tenant-%02d", i))
		mounts = append(mounts, c.Mount())
	}
	dc.Clock.Run(30, 1)

	eng := engine.New(srv.HostMount())
	all := eng.FleetValidate(mounts, workers)
	res := &FleetScanResult{
		Containers:          n,
		LeakingPerContainer: make([]int, n),
		Stats:               eng.Stats(),
	}
	for i, findings := range all {
		for _, f := range findings {
			if f.Status == core.Identical || f.Status == core.Partial {
				res.LeakingPerContainer[i]++
			}
		}
	}
	return res, nil
}

// String renders the fleet scan summary.
func (r *FleetScanResult) String() string {
	return fmt.Sprintf(
		"FLEET SCAN: %d containers validated in one batched pass\n"+
			"  leaking files per container: %v\n"+
			"  host renders: %d (shared hits: %d, finding misses: %d)\n",
		r.Containers, r.LeakingPerContainer,
		r.Stats.HostRenders, r.Stats.HostHits, r.Stats.FindingMisses)
}
