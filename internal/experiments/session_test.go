package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/cloud"
)

func TestInspectSessionFirstPassMatchesOneShot(t *testing.T) {
	p := cloud.LocalTestbed()
	want, err := InspectProviderSeeded(p, chaos.Spec{}, 0)
	if err != nil {
		t.Fatalf("one-shot inspection: %v", err)
	}

	s, err := NewInspectSession(p, chaos.Spec{}, 0)
	if err != nil {
		t.Fatalf("NewInspectSession: %v", err)
	}
	got := s.Inspect(1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("session first pass differs from one-shot InspectProviderSeeded")
	}
	if s.Provider() != p.Name {
		t.Errorf("session provider = %q, want %q", s.Provider(), p.Name)
	}
}

func TestInspectSessionRepeatIsCached(t *testing.T) {
	s, err := NewInspectSession(cloud.LocalTestbed(), chaos.Spec{}, 0)
	if err != nil {
		t.Fatalf("NewInspectSession: %v", err)
	}
	first := s.Inspect(2)
	misses := s.EngineStats().FindingMisses

	second := s.Inspect(2)
	st := s.EngineStats()
	if st.FindingMisses != misses {
		t.Errorf("repeat inspect on frozen world re-validated %d paths, want 0", st.FindingMisses-misses)
	}
	if st.FindingHits == 0 {
		t.Error("repeat inspect recorded no cache hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("repeat inspect differs from first pass")
	}
}

// TestInspectSessionAdvanceByteIdentity: advancing a session and
// re-inspecting (incremental: only dirty subsystems re-validate) must be
// byte-identical to a fresh session driven to the same instant and
// inspected cold.
func TestInspectSessionAdvanceByteIdentity(t *testing.T) {
	p := cloud.LocalTestbed()
	inc, err := NewInspectSession(p, chaos.Spec{}, 0)
	if err != nil {
		t.Fatalf("NewInspectSession: %v", err)
	}
	_ = inc.Inspect(1) // warm the caches at t=30
	inc.Advance(7)
	got := inc.Inspect(1)

	cold, err := NewInspectSession(p, chaos.Spec{}, 0)
	if err != nil {
		t.Fatalf("NewInspectSession (cold): %v", err)
	}
	cold.Advance(7)
	want := cold.Inspect(1)

	if !reflect.DeepEqual(got, want) {
		t.Fatal("incremental post-advance inspection differs from cold inspection at the same instant")
	}
	if hits := inc.EngineStats().FindingHits; hits == 0 {
		t.Error("post-advance inspection reused nothing — dirty tracking is not narrowing work")
	}
}

func TestDiscoverySessionMatchesOneShot(t *testing.T) {
	want, err := Discovery()
	if err != nil {
		t.Fatalf("one-shot discovery: %v", err)
	}
	s := NewDiscoverySession(chaos.Spec{}, 0)
	got := s.Discover(1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("discovery session first pass differs from one-shot Discovery")
	}
	misses := s.EngineStats().FindingMisses
	again := s.Discover(1)
	if s.EngineStats().FindingMisses != misses {
		t.Error("repeat discovery on frozen world re-validated paths")
	}
	if !reflect.DeepEqual(got, again) {
		t.Error("repeat discovery differs from first pass")
	}
}

func TestFleetScanSharesHostReads(t *testing.T) {
	const n = 5
	r, err := FleetScanSeeded(context.Background(), chaos.Spec{}, 0, n, 4)
	if err != nil {
		t.Fatalf("FleetScanSeeded: %v", err)
	}
	if r.Containers != n || len(r.LeakingPerContainer) != n {
		t.Fatalf("fleet result shape: %+v", r)
	}
	for i := 1; i < n; i++ {
		if r.LeakingPerContainer[i] != r.LeakingPerContainer[0] {
			t.Errorf("container %d leak count %d != container 0's %d (identical policies)",
				i, r.LeakingPerContainer[i], r.LeakingPerContainer[0])
		}
	}
	if r.LeakingPerContainer[0] == 0 {
		t.Error("fleet scan found no leaking files on the undefended testbed")
	}
	if r.Stats.HostHits == 0 {
		t.Error("fleet scan shared no host reads across containers")
	}
	if r.Stats.HostRenders >= r.Stats.HostRenders+r.Stats.HostHits {
		t.Error("impossible counter state") // keeps the fields honest under refactors
	}

	if _, err := FleetScanSeeded(context.Background(), chaos.Spec{}, 0, 0, 1); err == nil {
		t.Error("fleet scan accepted 0 containers")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FleetScanSeeded(ctx, chaos.Spec{}, 0, 1, 1); err == nil {
		t.Error("fleet scan ignored a cancelled context")
	}
}
