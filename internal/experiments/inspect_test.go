package experiments

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
)

func TestInspectProviderCC1MasksSchedDebug(t *testing.T) {
	ins, err := InspectProvider(cloud.CC1())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]core.Availability{}
	for _, rep := range ins.Reports {
		got[rep.Channel.Name] = rep.Availability
	}
	if got["/proc/sched_debug"] != core.Unavailable {
		t.Fatalf("CC1 sched_debug = %v, want ○", got["/proc/sched_debug"])
	}
	if got["/proc/timer_list"] != core.Available {
		t.Fatalf("CC1 timer_list = %v, want ●", got["/proc/timer_list"])
	}
}

func TestInspectProviderCC4NoRAPL(t *testing.T) {
	ins, err := InspectProvider(cloud.CC4())
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range ins.Reports {
		switch rep.Channel.Name {
		case "/sys/class/*", "/sys/devices/*":
			if rep.Availability != core.Unavailable {
				t.Errorf("CC4 %s = %v, want ○", rep.Channel.Name, rep.Availability)
			}
		case "/proc/version":
			if rep.Availability != core.Available {
				t.Errorf("CC4 version = %v, want ●", rep.Availability)
			}
		}
	}
}

func TestInspectProviderCC5Partial(t *testing.T) {
	ins, err := InspectProvider(cloud.CC5())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]core.Availability{}
	for _, rep := range ins.Reports {
		got[rep.Channel.Name] = rep.Availability
	}
	if got["/proc/meminfo"] != core.PartiallyAvailable {
		t.Fatalf("CC5 meminfo = %v, want ◐", got["/proc/meminfo"])
	}
	if got["/proc/stat"] != core.PartiallyAvailable {
		t.Fatalf("CC5 stat = %v, want ◐", got["/proc/stat"])
	}
	if got["/proc/uptime"] != core.Unavailable {
		t.Fatalf("CC5 uptime = %v, want ○", got["/proc/uptime"])
	}
	if got["/proc/modules"] != core.Available {
		t.Fatalf("CC5 modules = %v, want ●", got["/proc/modules"])
	}
}

func TestInspectAllCoversSixEnvironments(t *testing.T) {
	all, err := InspectAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 { // local + CC1..CC5
		t.Fatalf("inspections = %d", len(all))
	}
	// The local testbed must leak strictly more channels than CC5.
	count := func(ins CloudInspection) int {
		n := 0
		for _, rep := range ins.Reports {
			if rep.Availability == core.Available {
				n++
			}
		}
		return n
	}
	if count(all[0]) <= count(all[5]) {
		t.Fatalf("local (%d ●) should leak more than cc5 (%d ●)", count(all[0]), count(all[5]))
	}
}

func TestDiffInspectionsDetectsPostureChange(t *testing.T) {
	before, err := InspectProvider(cloud.LocalTestbed())
	if err != nil {
		t.Fatal(err)
	}
	after, err := InspectProvider(cloud.CC1())
	if err != nil {
		t.Fatal(err)
	}
	changes, err := DiffInspections(before, after)
	if err != nil {
		t.Fatal(err)
	}
	// CC1 = local + sched_debug masked: exactly one posture change.
	if len(changes) != 1 || changes[0].Channel != "/proc/sched_debug" {
		t.Fatalf("changes = %+v", changes)
	}
	if changes[0].From != core.Available || changes[0].To != core.Unavailable {
		t.Fatalf("direction wrong: %+v", changes[0])
	}
	// Identity diff is empty.
	same, err := DiffInspections(before, before)
	if err != nil || len(same) != 0 {
		t.Fatalf("self-diff = %v err=%v", same, err)
	}
	// Mismatched shapes error.
	short := before
	short.Reports = short.Reports[:5]
	if _, err := DiffInspections(short, after); err == nil {
		t.Fatal("shape mismatch should error")
	}
}
