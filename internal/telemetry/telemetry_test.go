package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scans_total", "scans", "job")
	c.With("table1").Inc()
	c.With("table1").Add(2)
	c.With("fig3").Inc()
	if got := c.With("table1").Value(); got != 3 {
		t.Fatalf("table1 = %v, want 3", got)
	}
	if got := c.With("fig3").Value(); got != 1 {
		t.Fatalf("fig3 = %v, want 1", got)
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add must panic")
		}
	}()
	c.With().Add(-1)
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Gauge("dup", "h")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", "depth")
	g.With().Set(4)
	g.With().Add(-1)
	if got := g.With().Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBucketsAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("scan_seconds", "latency", []float64{0.1, 1, 10}, "job")
	hh := h.With("table1")
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		hh.Observe(v)
	}
	if hh.Count() != 5 {
		t.Fatalf("count = %d, want 5", hh.Count())
	}
	if math.Abs(hh.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", hh.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE scan_seconds histogram",
		`scan_seconds_bucket{job="table1",le="0.1"} 1`,
		`scan_seconds_bucket{job="table1",le="1"} 3`,
		`scan_seconds_bucket{job="table1",le="10"} 4`,
		`scan_seconds_bucket{job="table1",le="+Inf"} 5`,
		`scan_seconds_sum{job="table1"} 56.05`,
		`scan_seconds_count{job="table1"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestRenderDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("zz_last", "z")
	c := r.Counter("aa_first", "a", "k")
	c.With("b").Inc()
	c.With("a").Inc()
	g.With().Set(1)

	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("two renders of the same state differ")
	}
	out := b1.String()
	if strings.Index(out, "aa_first") > strings.Index(out, "zz_last") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	if strings.Index(out, `aa_first{k="a"}`) > strings.Index(out, `aa_first{k="b"}`) {
		t.Errorf("children not sorted by label value:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc", "h", "path")
	c.With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc{path="a\"b\\c\n"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h", "w")
	h := r.Histogram("h", "h", []float64{1, 2}, "w")
	g := r.Gauge("g", "h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lbl := string(rune('a' + i%2))
			for j := 0; j < 1000; j++ {
				c.With(lbl).Inc()
				h.With(lbl).Observe(float64(j % 3))
				g.With().Add(1)
				var b strings.Builder
				if j%100 == 0 {
					_ = r.WritePrometheus(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.With("a").Value() + c.With("b").Value(); got != 8000 {
		t.Fatalf("total = %v, want 8000", got)
	}
	if got := g.With().Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
}
