// Package telemetry is a dependency-free metrics registry for the service
// layer: counters, gauges, and fixed-bucket histograms, each optionally
// labeled, rendered in the Prometheus text exposition format (version
// 0.0.4) by WritePrometheus. cmd/leaksd uses it to instrument scan
// latency, queue depth, cache hit rate, chaos-induced retries, and
// per-channel leakage verdict counts without pulling a client library
// into a repository whose contract is "stdlib only".
//
// Design notes:
//
//   - Metric families are created once (typically at service start) and
//     are safe for concurrent use afterwards; creating the same family
//     twice panics, because two call sites disagreeing on a metric's type
//     or labels is a programming error, not a runtime condition.
//   - Labeled children are created lazily on first With(...) and cached;
//     With on a hot path is a map lookup under RLock.
//   - Rendering sorts families by name and children by label value, so
//     /metrics output is deterministic — scrape diffs in tests compare
//     bytes, same as every other artifact in this repository.
//   - Values are float64 behind a mutex rather than atomics: every
//     metric here is touched at scan granularity (milliseconds to
//     minutes), so contention is irrelevant and the simple invariant
//     ("the mutex guards everything") is worth more than nanoseconds.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry holds metric families and renders them.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with its labeled children.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child // key: joined label values
}

// child is one (label values) instance of a family.
type child struct {
	labelValues []string

	mu    sync.Mutex
	value float64  // counter / gauge
	count uint64   // histogram observations
	sum   float64  // histogram sum
	bkts  []uint64 // cumulative-at-render, stored per-bucket here
}

// register installs a new family, panicking on redefinition.
func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
}

func (f *family) child(labelValues []string) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), labelValues...)}
	if f.kind == kindHistogram {
		c.bkts = make([]uint64, len(f.buckets))
	}
	f.children[key] = c
	return c
}

// CounterVec is a family of monotonically increasing counters.
type CounterVec struct{ f *family }

// Counter registers a counter family. With no label names the family has a
// single implicit child reachable via With().
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter,
		labelNames: labelNames, children: make(map[string]*child)}
	r.register(f)
	return &CounterVec{f: f}
}

// With resolves the child for the given label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{c: v.f.child(labelValues)}
}

// Counter is one counter instance.
type Counter struct{ c *child }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (must be >= 0; negative deltas panic — counters are
// monotone by definition, and silently accepting a decrement would make
// rate() queries lie).
func (c *Counter) Add(delta float64) {
	if delta < 0 || math.IsNaN(delta) {
		panic(fmt.Sprintf("telemetry: counter decremented by %v", delta))
	}
	c.c.mu.Lock()
	c.c.value += delta
	c.c.mu.Unlock()
}

// Value reads the current count (tests and admission-control logic).
func (c *Counter) Value() float64 {
	c.c.mu.Lock()
	defer c.c.mu.Unlock()
	return c.c.value
}

// GaugeVec is a family of gauges.
type GaugeVec struct{ f *family }

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: kindGauge,
		labelNames: labelNames, children: make(map[string]*child)}
	r.register(f)
	return &GaugeVec{f: f}
}

// With resolves the child for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{c: v.f.child(labelValues)}
}

// Gauge is one gauge instance.
type Gauge struct{ c *child }

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.c.mu.Lock()
	g.c.value = v
	g.c.mu.Unlock()
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	g.c.mu.Lock()
	g.c.value += delta
	g.c.mu.Unlock()
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	g.c.mu.Lock()
	defer g.c.mu.Unlock()
	return g.c.value
}

// HistogramVec is a family of fixed-bucket histograms.
type HistogramVec struct{ f *family }

// Histogram registers a histogram family with the given upper bucket
// bounds (must be sorted ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending at %d", name, i))
		}
	}
	f := &family{name: name, help: help, kind: kindHistogram,
		labelNames: labelNames, buckets: append([]float64(nil), buckets...),
		children: make(map[string]*child)}
	r.register(f)
	return &HistogramVec{f: f}
}

// DefaultLatencyBuckets spans the scan-latency range this repository
// actually produces: sub-millisecond cache hits up to multi-minute chaos
// sweeps.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
}

// DefaultServingBuckets spans the HTTP serving-latency range: a /v1
// response-cache hit lands in single-digit microseconds, a cold render in
// the tens-to-hundreds, and anything past a millisecond is contention.
// DefaultLatencyBuckets starts where this one ends — scan compute and
// request serving live three orders of magnitude apart.
func DefaultServingBuckets() []float64 {
	return []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 5e-3, 2.5e-2, 0.1, 1}
}

// With resolves the child for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, c: v.f.child(labelValues)}
}

// Histogram is one histogram instance.
type Histogram struct {
	f *family
	c *child
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	h.c.count++
	h.c.sum += v
	for i, ub := range h.f.buckets {
		if v <= ub {
			h.c.bkts[i]++
			break
		}
	}
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.c.count
}

// Sum reads the sum of observations.
func (h *Histogram) Sum() float64 {
	h.c.mu.Lock()
	defer h.c.mu.Unlock()
	return h.c.sum
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelString renders {k="v",...} for the given names/values plus extras.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv(v)
}

// strconv formats with minimal digits (strconv.FormatFloat 'g').
func strconv(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and children by label values, so two renders of
// the same state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
		return err
	}
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()

	for _, c := range children {
		c.mu.Lock()
		switch f.kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labelNames, c.labelValues, "", ""), formatValue(c.value))
		case kindHistogram:
			var cum uint64
			for i, ub := range f.buckets {
				cum += c.bkts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, c.labelValues, "le", formatValue(ub)), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labelNames, c.labelValues, "le", "+Inf"), c.count)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labelNames, c.labelValues, "", ""), formatValue(c.sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labelNames, c.labelValues, "", ""), c.count)
		}
		c.mu.Unlock()
	}
	return nil
}
