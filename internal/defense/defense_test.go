package defense

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/powerns"
	"repro/internal/pseudofs"
	"repro/internal/workload"
)

func localTestbed(t *testing.T, seed int64) (*kernel.Kernel, *pseudofs.FS, *container.Runtime) {
	t.Helper()
	k := kernel.New(kernel.Options{Hostname: "host", Seed: seed})
	fs := pseudofs.Build(k, pseudofs.DefaultHardware())
	return k, fs, container.NewRuntime(k, fs, container.DockerProfile())
}

func inspect(t *testing.T, k *kernel.Kernel, fs *pseudofs.FS, rt *container.Runtime) []core.ChannelReport {
	t.Helper()
	probe := rt.Create("probe")
	k.Tick(k.Now()+5, 5)
	host := pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{})
	reports := core.RollUp(core.TableIChannels(), core.CrossValidate(host, probe.Mount()))
	if err := rt.Destroy(probe.ID); err != nil {
		t.Fatal(err)
	}
	return reports
}

func TestMaskingRulesCoverLeaks(t *testing.T) {
	k, fs, rt := localTestbed(t, 1)
	rules := MaskingRules(inspect(t, k, fs, rt))
	if len(rules) < 20 {
		t.Fatalf("only %d masking rules for a fully leaky testbed", len(rules))
	}
	// A container created with the stage-1 policy cannot read any channel.
	hardened := rt.Create("hardened", rules...)
	for _, path := range []string{
		"/proc/uptime", "/proc/meminfo", "/proc/timer_list",
		"/sys/class/powercap/intel-rapl:0/energy_uj",
	} {
		if _, err := hardened.ReadFile(path); !errors.Is(err, pseudofs.ErrDenied) {
			t.Errorf("%s still readable under stage 1: %v", path, err)
		}
	}
}

func TestStage1CollateralDamage(t *testing.T) {
	k, fs, rt := localTestbed(t, 2)
	rules := MaskingRules(inspect(t, k, fs, rt))
	impacts := AssessImpact(rules, CommonApps())
	if len(impacts) < 5 {
		t.Fatalf("stage 1 should break most pseudo-file consumers, got %d", len(impacts))
	}
	for _, imp := range impacts {
		if len(imp.BrokenReads) == 0 || imp.TotalReads == 0 {
			t.Fatalf("empty impact: %+v", imp)
		}
	}
}

func TestAssessImpactNoRules(t *testing.T) {
	if got := AssessImpact(nil, CommonApps()); len(got) != 0 {
		t.Fatalf("no rules should break nothing, got %v", got)
	}
}

func TestNamespaceFixesCloseChannels(t *testing.T) {
	k, fs, rt := localTestbed(t, 3)
	ApplyNamespaceFixes(fs)

	a := rt.Create("a")
	b := rt.Create("b")
	k.Tick(1, 1)

	// Implants no longer cross the boundary.
	a.ImplantTimerSignature("post-fix-sig")
	if got, _ := b.ReadFile("/proc/timer_list"); strings.Contains(got, "post-fix-sig") {
		t.Fatal("timer_list still leaks implants after stage 2")
	}
	if got, _ := a.ReadFile("/proc/timer_list"); !strings.Contains(got, "post-fix-sig") {
		t.Fatal("owner lost sight of its own timer")
	}
	a.ImplantLockSignature(987123)
	if got, _ := b.ReadFile("/proc/locks"); strings.Contains(got, "987123") {
		t.Fatal("locks still leak implants after stage 2")
	}
	if got, _ := a.ReadFile("/proc/locks"); !strings.Contains(got, "987123") {
		t.Fatal("owner lost sight of its own lock")
	}

	// sched_debug shows only own-namespace tasks.
	if got, _ := b.ReadFile("/proc/sched_debug"); strings.Contains(got, "a-init") {
		t.Fatal("sched_debug still shows foreign tasks")
	}

	// boot_id differs per container now.
	ba, _ := a.ReadFile("/proc/sys/kernel/random/boot_id")
	bb, _ := b.ReadFile("/proc/sys/kernel/random/boot_id")
	if ba == bb {
		t.Fatal("boot_id still shared after stage 2")
	}
	// Host keeps the real boot id.
	host := pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{})
	hb, _ := host.Read("/proc/sys/kernel/random/boot_id")
	if strings.TrimSpace(hb) != k.BootID() {
		t.Fatal("host boot_id changed")
	}

	// ifpriomap shows only the container's own devices.
	if got, _ := a.ReadFile("/sys/fs/cgroup/net_prio/net_prio.ifpriomap"); strings.Contains(got, "docker0") {
		t.Fatalf("ifpriomap still lists host devices:\n%s", got)
	}

	// uptime is container-relative.
	k.Tick(11, 10)
	up, _ := a.ReadFile("/proc/uptime")
	if !strings.HasPrefix(up, "11.00 ") {
		t.Fatalf("container uptime = %q, want 11.00 …", up)
	}
	hup, _ := host.Read("/proc/uptime")
	if hup == up {
		t.Fatal("host uptime should differ from container uptime")
	}
}

func TestDetectorConfirmsStage2(t *testing.T) {
	// After stage 2, the fixed channels must no longer read Identical.
	k, fs, rt := localTestbed(t, 4)
	ApplyNamespaceFixes(fs)
	probe := rt.Create("probe")
	k.Tick(5, 5)
	host := pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{})
	findings := core.CrossValidate(host, probe.Mount())
	fixed := map[string]bool{
		"/proc/sched_debug": true, "/proc/timer_list": true, "/proc/locks": true,
		"/proc/uptime": true, "/proc/sys/kernel/random/boot_id": true,
		"/sys/fs/cgroup/net_prio/net_prio.ifpriomap": true,
	}
	for _, f := range findings {
		if fixed[f.Path] && f.Status == core.Identical {
			t.Errorf("%s still identical after stage 2", f.Path)
		}
	}
}

func TestDeployFullPipeline(t *testing.T) {
	k, fs, rt := localTestbed(t, 5)
	reports := inspect(t, k, fs, rt)
	model, _, err := powerns.Train(powerns.TrainOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	d := Deploy(fs, reports, model)
	if len(d.Stage1) == 0 {
		t.Fatal("no stage-1 rules generated")
	}
	if d.PowerNS == nil {
		t.Fatal("power namespace not installed")
	}
	// RAPL is virtualized: an unregistered container reads zero.
	c := rt.Create("tenant")
	k.Tick(k.Now()+1, 1)
	raw, err := c.ReadFile("/sys/class/powercap/intel-rapl:0/energy_uj")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(raw) != "0" {
		t.Fatalf("unregistered tenant reads %q", raw)
	}
	d.PowerNS.Register(c.CgroupPath)
	if d.PowerNS.Registered() != 1 {
		t.Fatal("registration failed")
	}
}

func TestStage3NamespacesStatistics(t *testing.T) {
	k, fs, rt := localTestbed(t, 6)
	ApplyStatisticsFixes(fs)
	spy := rt.Create("spy")
	busy := rt.Create("busy")
	busy.Run(workload.Prime, 6)
	k.Tick(10, 10)

	// The idle spy's loadavg shows its own (zero) demand, not the host's.
	la, err := spy.ReadFile("/proc/loadavg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(la, "0.00 0.00 0.00") {
		t.Fatalf("spy loadavg leaks host demand: %q", la)
	}
	// The busy container sees its own demand.
	lb, _ := busy.ReadFile("/proc/loadavg")
	if strings.HasPrefix(lb, "0.00") {
		t.Fatalf("busy container loadavg empty: %q", lb)
	}

	// meminfo reflects the cgroup limit, not the host's 16 GiB.
	k.Cgroup(spy.CgroupPath).MemLimitKB = 1024 * 1024
	mi, _ := spy.ReadFile("/proc/meminfo")
	if !strings.Contains(mi, "MemTotal:        1048576 kB") {
		t.Fatalf("spy meminfo not cgroup-limited:\n%s", mi)
	}
	if strings.Contains(mi, "16777216") {
		t.Fatal("host total leaked through stage-3 meminfo")
	}

	// The host view is unchanged in character.
	host := pseudofs.NewMount(fs, pseudofs.HostView(k), pseudofs.Policy{})
	hm, _ := host.Read("/proc/meminfo")
	if !strings.Contains(hm, "16777216") {
		t.Fatal("host meminfo lost its physical total")
	}

	// /proc/stat: the spy's CPU time is near zero while the host's busy
	// ticks accumulate.
	ss, _ := spy.ReadFile("/proc/stat")
	var user int64
	if _, err := fmt.Sscanf(ss, "cpu  %d", &user); err != nil {
		t.Fatalf("stat parse: %v (%q)", err, ss)
	}
	if user > 100 {
		t.Fatalf("spy sees %d busy ticks — host activity leaked", user)
	}
}

func TestStage3BlindsUtilizationMonitor(t *testing.T) {
	// The Section VII-A mitigation closes the utilization fallback: a spy
	// watching /proc/stat no longer sees co-tenant surges.
	k, fs, rt := localTestbed(t, 7)
	ApplyStatisticsFixes(fs)
	spy := rt.Create("spy")
	victim := rt.Create("victim")

	readBusy := func() float64 {
		ss, err := spy.ReadFile("/proc/stat")
		if err != nil {
			t.Fatal(err)
		}
		var user int64
		if _, err := fmt.Sscanf(ss, "cpu  %d", &user); err != nil {
			t.Fatal(err)
		}
		return float64(user)
	}
	for i := 0; i < 10; i++ {
		k.Tick(k.Now()+1, 1)
	}
	before := readBusy()
	victim.Run(workload.Prime, 8)
	for i := 0; i < 30; i++ {
		k.Tick(k.Now()+1, 1)
	}
	after := readBusy()
	if after-before > 50 {
		t.Fatalf("spy's stat advanced %v ticks during the victim's surge", after-before)
	}
}
