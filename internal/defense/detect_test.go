package defense

import (
	"math/rand"
	"testing"
)

// synthTraces builds a rack of benign tenants plus one synergistic
// attacker whose rare burst runs start inside background flash events.
func synthTraces(n int, seed int64) ([]float64, []TenantTrace) {
	rng := rand.New(rand.NewSource(seed))
	benign1 := make([]float64, n)
	benign2 := make([]float64, n)
	attacker := make([]float64, n)
	steady := make([]float64, n)
	rack := make([]float64, n)

	// Background: noisy plateau + flash events of 20 intervals every ~150.
	flash := make([]float64, n)
	for start := 100; start+20 < n; start += 150 {
		for i := start; i < start+20; i++ {
			flash[i] = 60
		}
	}
	for i := 0; i < n; i++ {
		benign1[i] = 40 + 10*rng.Float64() + flash[i]
		benign2[i] = 30 + 10*rng.Float64()
		steady[i] = 55 + 2*rng.Float64() // flat cron-style worker
	}
	// Attacker: 5-interval bursts starting 3 intervals into each flash
	// (it watched the crest form), ~10% duty overall.
	for start := 100; start+20 < n; start += 150 {
		for i := start + 3; i < start+8; i++ {
			attacker[i] = 80
		}
	}
	for i := 0; i < n; i++ {
		attacker[i] += 12 // idle floor
		rack[i] = benign1[i] + benign2[i] + steady[i] + attacker[i]
	}
	return rack, []TenantTrace{
		{Tenant: "benign-web", Watts: benign1},
		{Tenant: "benign-batch", Watts: benign2},
		{Tenant: "steady-worker", Watts: steady},
		{Tenant: "mallory", Watts: attacker},
	}
}

func TestScoreTenantsFlagsSynergisticAttacker(t *testing.T) {
	rack, tenants := synthTraces(600, 1)
	scores, err := ScoreTenants(rack, tenants)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SuspicionScore{}
	for _, s := range scores {
		byName[s.Tenant] = s
	}
	m := byName["mallory"]
	if !m.Suspicious {
		t.Fatalf("attacker not flagged: %+v", m)
	}
	if m.CrestAlignment < 0.7 || m.BurstDuty > 0.3 {
		t.Fatalf("attacker indicators off: %+v", m)
	}
	for _, name := range []string{"benign-web", "benign-batch", "steady-worker"} {
		if byName[name].Suspicious {
			t.Fatalf("benign tenant %s flagged: %+v", name, byName[name])
		}
	}
	// Ranking puts the attacker first.
	if scores[0].Tenant != "mallory" {
		t.Fatalf("ranking wrong: %v first", scores[0].Tenant)
	}
}

func TestScoreTenantsValidation(t *testing.T) {
	if _, err := ScoreTenants(nil, nil); err == nil {
		t.Fatal("empty rack should error")
	}
	if _, err := ScoreTenants([]float64{1, 2}, []TenantTrace{{Tenant: "x", Watts: []float64{1}}}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestScoreTenantsFlatTenantNotFlagged(t *testing.T) {
	rack := []float64{100, 120, 110, 130, 90, 140}
	flat := TenantTrace{Tenant: "idle", Watts: []float64{5, 5, 5, 5, 5, 5}}
	scores, err := ScoreTenants(rack, []TenantTrace{flat})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Suspicious || scores[0].BurstDuty != 0 {
		t.Fatalf("flat tenant misflagged: %+v", scores[0])
	}
}
