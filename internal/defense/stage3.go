package defense

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
	"repro/internal/pseudofs"
)

// Stage 3 implements what the paper's discussion proposes as future work:
// "It would be better to make system-wide performance statistics
// unavailable to container tenants" (Section VII-A). Instead of masking the
// files — which breaks monitoring agents, JVMs, and sysconf — the handlers
// are replaced with per-cgroup views: the same interfaces, now answering
// from the container's own accounting.
//
// After stage 3, the utilization-proxy attack (attack.RunSynergisticUtil)
// and the utilization covert channel go blind, leaving temperature as the
// only surviving side signal — the resource the paper concedes is genuinely
// hard to partition.

// DefaultMemLimitKB is assumed for containers without an explicit cgroup
// memory limit when rendering the namespaced meminfo (4 GiB).
const DefaultMemLimitKB = 4 * 1024 * 1024

// ApplyStatisticsFixes replaces the host-global performance-statistics
// handlers with per-cgroup implementations.
func ApplyStatisticsFixes(fs *pseudofs.FS) {
	k := fs.Kernel()

	nsOf := func(v pseudofs.View) *kernel.NSSet {
		if v.NS == nil {
			return k.InitNS()
		}
		return v.NS
	}

	// /proc/stat: per-cgroup CPU accounting. The container sees exactly
	// its quota's worth of CPUs, its own cpuacct-derived busy time, and a
	// btime matching its own (namespaced) boot.
	// The stage-3 handlers run only on defended hosts outside the
	// measurement hot loop, so they keep their fmt-based renderers behind
	// the StringHandler compat shim rather than the append fast path.
	fs.Replace("/proc/stat", pseudofs.StringHandler(func(v pseudofs.View) (string, error) {
		ns := nsOf(v)
		if ns.IsInit() {
			return renderHostStat(k), nil
		}
		cg := k.Cgroup(v.CgroupPath)
		cores := float64(k.Options().Cores)
		if cg.QuotaCores > 0 && cg.QuotaCores < cores {
			cores = cg.QuotaCores
		}
		elapsed := k.Now() - ns.CreatedAt
		busyTicks := cg.CPUUsageNS / 1e9 * 100
		totalTicks := elapsed * cores * 100
		idleTicks := totalTicks - busyTicks
		if idleTicks < 0 {
			idleTicks = 0
		}
		var b strings.Builder
		fmt.Fprintf(&b, "cpu  %d 0 %d %d 0 0 0 0 0 0\n",
			int64(busyTicks*0.92), int64(busyTicks*0.08), int64(idleTicks))
		n := int(cores + 0.999)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "cpu%d %d 0 %d %d 0 0 0 0 0 0\n", i,
				int64(busyTicks*0.92/float64(n)), int64(busyTicks*0.08/float64(n)),
				int64(idleTicks/float64(n)))
		}
		fmt.Fprintf(&b, "intr %d\n", int64(busyTicks*12))
		fmt.Fprintf(&b, "ctxt %d\n", int64(busyTicks*9))
		fmt.Fprintf(&b, "btime %d\n", k.Options().WallClockNow+int64(ns.CreatedAt))
		fmt.Fprintf(&b, "processes %d\n", len(k.TasksInNS(ns))+2)
		fmt.Fprintf(&b, "procs_running 1\nprocs_blocked 0\n")
		return b.String(), nil
	}))

	// /proc/meminfo: the cgroup limit is the container's world.
	fs.Replace("/proc/meminfo", pseudofs.StringHandler(func(v pseudofs.View) (string, error) {
		ns := nsOf(v)
		if ns.IsInit() {
			return renderHostMeminfo(k), nil
		}
		cg := k.Cgroup(v.CgroupPath)
		limit := cg.MemLimitKB
		if limit == 0 {
			limit = DefaultMemLimitKB
		}
		used := k.CgroupRSSKB(v.CgroupPath)
		if used > limit {
			used = limit
		}
		free := limit - used
		var b strings.Builder
		row := func(name string, kb uint64) {
			fmt.Fprintf(&b, "%-16s%8d kB\n", name+":", kb)
		}
		row("MemTotal", limit)
		row("MemFree", free)
		row("MemAvailable", free)
		row("Buffers", 0)
		row("Cached", used/8)
		row("Active", used*6/10)
		row("Inactive", used*3/10)
		row("SwapTotal", 0)
		row("SwapFree", 0)
		row("Dirty", 0)
		return b.String(), nil
	}))

	// /proc/loadavg: the container's own run queue.
	fs.Replace("/proc/loadavg", pseudofs.StringHandler(func(v pseudofs.View) (string, error) {
		ns := nsOf(v)
		if ns.IsInit() {
			la := k.LoadAvgSnapshot()
			return fmt.Sprintf("%.2f %.2f %.2f %d/%d %d\n",
				la.Load1, la.Load5, la.Load15, la.Runnable, la.Total, la.LastPID), nil
		}
		demand := k.CgroupDemandCores(v.CgroupPath)
		tasks := k.TasksInNS(ns)
		running := 0
		maxPID := 1
		for _, t := range tasks {
			if t.DemandCores > 0 {
				running++
			}
			if t.NSPID > maxPID {
				maxPID = t.NSPID
			}
		}
		return fmt.Sprintf("%.2f %.2f %.2f %d/%d %d\n",
			demand, demand, demand, running, len(tasks), maxPID), nil
	}))
}

// renderHostStat re-renders the global /proc/stat for the init view (the
// original handler is being replaced wholesale, so the host path must be
// regenerated here).
func renderHostStat(k *kernel.Kernel) string {
	s := k.StatSnapshot()
	var b strings.Builder
	var tot [7]float64
	for _, c := range s.PerCPU {
		tot[0] += c.User
		tot[1] += c.Nice
		tot[2] += c.System
		tot[3] += c.Idle
		tot[4] += c.IOWait
		tot[5] += c.IRQ
		tot[6] += c.SoftIRQ
	}
	fmt.Fprintf(&b, "cpu  %d %d %d %d %d %d %d 0 0 0\n",
		int64(tot[0]), int64(tot[1]), int64(tot[2]), int64(tot[3]),
		int64(tot[4]), int64(tot[5]), int64(tot[6]))
	for i, c := range s.PerCPU {
		fmt.Fprintf(&b, "cpu%d %d %d %d %d %d %d %d 0 0 0\n", i,
			int64(c.User), int64(c.Nice), int64(c.System), int64(c.Idle),
			int64(c.IOWait), int64(c.IRQ), int64(c.SoftIRQ))
	}
	fmt.Fprintf(&b, "intr %d\nctxt %d\nbtime %d\nprocesses %d\nprocs_running %d\nprocs_blocked 0\n",
		s.IntrTotal, s.CtxtSwitches, s.BootTime, s.Processes, s.ProcsRunning)
	return b.String()
}

// renderHostMeminfo re-renders the global /proc/meminfo for the init view.
func renderHostMeminfo(k *kernel.Kernel) string {
	mi := k.MeminfoSnapshot()
	var b strings.Builder
	row := func(name string, kb uint64) {
		fmt.Fprintf(&b, "%-16s%8d kB\n", name+":", kb)
	}
	row("MemTotal", mi.TotalKB)
	row("MemFree", mi.FreeKB)
	row("MemAvailable", mi.AvailableKB)
	row("Buffers", mi.BuffersKB)
	row("Cached", mi.CachedKB)
	row("Active", mi.ActiveKB)
	row("Inactive", mi.InactiveKB)
	row("SwapTotal", mi.SwapTotalKB)
	row("SwapFree", mi.SwapFreeKB)
	row("Dirty", mi.DirtyKB)
	return b.String()
}
