// Package defense implements the paper's two-stage defense mechanism
// (Section V-A):
//
//   - Stage 1 — channel masking: generate AppArmor-style deny rules for
//     every channel the detector found leaking, as the immediate fix cloud
//     operators can deploy today. The stage also assesses collateral
//     damage: legitimate applications that read the masked files break.
//   - Stage 2 — namespace fixes: retrofit the leaky pseudo-file handlers
//     with namespace-aware implementations (fixing the missing context
//     checks of Case Study I and friends), and install the power-based
//     namespace (internal/powerns) for the RAPL channel.
//
// Stage 1 is quick but restrictive; stage 2 is the fundamental fix. The
// ablation bench compares residual leakage and application breakage of the
// two stages.
package defense

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/powerns"
	"repro/internal/pseudofs"
)

// MaskingRules generates the stage-1 deny policy: one rule per channel the
// inspection found Available or PartiallyAvailable.
func MaskingRules(reports []core.ChannelReport) []pseudofs.Rule {
	var rules []pseudofs.Rule
	for _, rep := range reports {
		if rep.Availability == core.Unavailable {
			continue
		}
		for _, pat := range rep.Channel.Paths {
			rules = append(rules, pseudofs.Rule{Pattern: pat, Do: pseudofs.Deny})
		}
	}
	return rules
}

// AppProfile describes a legitimate containerized application by the
// pseudo-files it reads — monitoring agents, JVMs sizing their heaps from
// /proc/meminfo, schedulers reading loadavg, and so on.
type AppProfile struct {
	Name  string
	Reads []string
}

// CommonApps is a survey of pseudo-file consumers used to estimate the
// stage-1 collateral damage the paper warns about ("masking … may add
// restrictions for the functionality of containerized applications").
func CommonApps() []AppProfile {
	return []AppProfile{
		{Name: "jvm-heap-sizing", Reads: []string{"/proc/meminfo", "/proc/cpuinfo"}},
		{Name: "node-exporter", Reads: []string{"/proc/stat", "/proc/meminfo", "/proc/loadavg", "/proc/interrupts"}},
		{Name: "top", Reads: []string{"/proc/stat", "/proc/meminfo", "/proc/uptime", "/proc/loadavg"}},
		{Name: "numactl", Reads: []string{"/sys/devices/system/node/node0/meminfo"}},
		{Name: "powertop", Reads: []string{"/sys/class/powercap/intel-rapl:0/energy_uj", "/proc/interrupts"}},
		{Name: "irqbalance", Reads: []string{"/proc/interrupts"}},
		{Name: "glibc-sysconf", Reads: []string{"/proc/cpuinfo", "/proc/meminfo"}},
		{Name: "uptime-cli", Reads: []string{"/proc/uptime", "/proc/loadavg"}},
	}
}

// Impact is one application's breakage under a masking policy.
type Impact struct {
	App         string
	BrokenReads []string
	TotalReads  int
}

// AssessImpact reports which application reads a stage-1 policy would
// break.
func AssessImpact(rules []pseudofs.Rule, apps []AppProfile) []Impact {
	policy := pseudofs.Policy{Rules: rules}
	var out []Impact
	for _, app := range apps {
		imp := Impact{App: app.Name, TotalReads: len(app.Reads)}
		for _, path := range app.Reads {
			if r, ok := policy.Lookup(path); ok && r.Do == pseudofs.Deny {
				imp.BrokenReads = append(imp.BrokenReads, path)
			}
		}
		if len(imp.BrokenReads) > 0 {
			out = append(out, imp)
		}
	}
	return out
}

// ApplyNamespaceFixes retrofits the stage-2 fixes onto a host's pseudo
// filesystem: every handler that leaked through a missing namespace check
// is replaced by a namespace-aware implementation. The RAPL channel is
// fixed separately by installing a powerns.Namespace (see Install).
func ApplyNamespaceFixes(fs *pseudofs.FS) {
	k := fs.Kernel()

	nsOf := func(v pseudofs.View) *kernel.NSSet {
		if v.NS == nil {
			return k.InitNS()
		}
		return v.NS
	}

	// Fixed handlers append into the caller's buffer like every built-in
	// handler (see pseudofs.Handler); defended hosts stay on the
	// zero-allocation render path.

	// Case Study I fix: iterate the reader's NET namespace, not init_net.
	fs.Replace("/sys/fs/cgroup/net_prio/net_prio.ifpriomap", func(b []byte, v pseudofs.View) ([]byte, error) {
		cg := k.Cgroup(v.CgroupPath)
		for _, dev := range k.NetDevices(nsOf(v)) {
			prio := 0
			if cg.IfPrioMap != nil {
				prio = cg.IfPrioMap[dev.Name]
			}
			b = append(b, dev.Name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(prio), 10)
			b = append(b, '\n')
		}
		return b, nil
	})

	// sched_debug: only tasks of the reader's PID namespace.
	fs.Replace("/proc/sched_debug", func(b []byte, v pseudofs.View) ([]byte, error) {
		b = append(b, "Sched Debug Version: v0.11, 4.7.0-repro (namespaced)\n"...)
		b = append(b, "\nrunnable tasks:\n"...)
		for _, t := range k.TasksInNS(nsOf(v)) {
			if t.DemandCores > 0 {
				b = append(b, 'R')
			} else {
				b = append(b, ' ')
			}
			b = append(b, ' ')
			b = appendPad(b, 15, t.Name)
			b = append(b, ' ')
			b = appendPadInt(b, 5, int64(t.NSPID))
			b = append(b, '\n')
		}
		return b, nil
	})

	// timer_list: only timers owned inside the reader's PID namespace. The
	// init view additionally shows the kernel's own tick timers (our
	// kernel does not model kernel threads as tasks, so these rows stand
	// in for them).
	fs.Replace("/proc/timer_list", func(b []byte, v pseudofs.View) ([]byte, error) {
		ns := nsOf(v)
		b = append(b, "Timer List Version: v0.8 (namespaced)\n"...)
		i := 0
		if ns.IsInit() {
			for cpu := 0; cpu < k.Options().Cores; cpu++ {
				b = append(b, " #"...)
				b = strconv.AppendInt(b, int64(i), 10)
				b = append(b, ": tick_sched_timer, swapper/"...)
				b = strconv.AppendInt(b, int64(cpu), 10)
				b = append(b, "/0\n"...)
				i++
			}
		}
		for _, t := range k.TimerOwnersInNS(ns) {
			b = append(b, " #"...)
			b = strconv.AppendInt(b, int64(i), 10)
			b = append(b, ": hrtimer_wakeup, "...)
			b = append(b, t.Name...)
			b = append(b, '/')
			b = strconv.AppendInt(b, int64(t.NSPID), 10)
			b = append(b, '\n')
			i++
		}
		return b, nil
	})

	// locks: only the reader's cgroup's locks; the init view also keeps
	// the system daemons' locks.
	fs.Replace("/proc/locks", func(b []byte, v pseudofs.View) ([]byte, error) {
		locks := k.FileLocksInCgroup(v.CgroupPath)
		if nsOf(v).IsInit() {
			locks = append(locks, k.SystemLocks()...)
		}
		for _, l := range locks {
			b = strconv.AppendInt(b, int64(l.ID), 10)
			b = append(b, ": "...)
			b = append(b, l.Type...)
			b = append(b, "  "...)
			b = append(b, l.Mode...)
			b = append(b, "  "...)
			b = append(b, l.RW...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(l.HostPID), 10)
			b = append(b, " 08:01:"...)
			b = strconv.AppendUint(b, l.Inode, 10)
			b = append(b, " 0 EOF\n"...)
		}
		return b, nil
	})

	// uptime: container-relative uptime; idle scaled to the container's
	// share (approximated as elapsed time, since per-cgroup idle is not
	// defined).
	fs.Replace("/proc/uptime", func(b []byte, v pseudofs.View) ([]byte, error) {
		ns := nsOf(v)
		up, idle := 0.0, 0.0
		if ns.IsInit() {
			up, idle = k.Uptime()
		} else {
			up = k.Now() - ns.CreatedAt
			cg := k.Cgroup(v.CgroupPath)
			used := cg.CPUUsageNS / 1e9
			idle = up*float64(k.Options().Cores) - used
			if idle < 0 {
				idle = 0
			}
		}
		b = strconv.AppendFloat(b, up, 'f', 2, 64)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, idle, 'f', 2, 64)
		return append(b, '\n'), nil
	})

	// boot_id: per-namespace identifier.
	fs.Replace("/proc/sys/kernel/random/boot_id", func(b []byte, v pseudofs.View) ([]byte, error) {
		ns := nsOf(v)
		if ns.IsInit() || ns.BootID == "" {
			b = append(b, k.BootID()...)
		} else {
			b = append(b, ns.BootID...)
		}
		return append(b, '\n'), nil
	})
}

// appendPad appends s right-aligned in a width-rune field (fmt's %*s).
func appendPad(b []byte, width int, s string) []byte {
	for n := width - len(s); n > 0; n-- {
		b = append(b, ' ')
	}
	return append(b, s...)
}

// appendPadInt appends v right-aligned in a width-rune field (fmt's %*d).
func appendPadInt(b []byte, width int, v int64) []byte {
	var tmp [24]byte
	s := strconv.AppendInt(tmp[:0], v, 10)
	for n := width - len(s); n > 0; n-- {
		b = append(b, ' ')
	}
	return append(b, s...)
}

// TwoStage bundles a full deployment of the defense on one host.
type TwoStage struct {
	// Stage1 is the generated masking policy (informational once stage 2
	// is applied; operators may deploy it alone first).
	Stage1 []pseudofs.Rule
	// PowerNS is the installed power-based namespace.
	PowerNS *powerns.Namespace
}

// Deploy runs the full pipeline on a host: inspect → generate stage-1
// masks → apply stage-2 namespace fixes → install the power namespace with
// the given trained model. Containers must still be registered with
// PowerNS as they are created.
func Deploy(fs *pseudofs.FS, reports []core.ChannelReport, model *powerns.Model) *TwoStage {
	d := &TwoStage{Stage1: MaskingRules(reports)}
	ApplyNamespaceFixes(fs)
	d.PowerNS = powerns.New(fs.Kernel(), model)
	d.PowerNS.Install(fs)
	return d
}
