package defense

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Section IV-B notes that a continuously-running power attack "has obvious
// patterns and could be easily detected by cloud providers" — which is
// precisely why the synergistic attacker bursts rarely. This file gives the
// provider the counter-tool: with the power-based namespace metering every
// container, the operator can score tenants on how suspiciously their
// power consumption aligns with rack-level crests. A benign tenant's load
// is driven by its own users; only an attacker *targets* the moments the
// rack is already hot.

// TenantTrace is a per-interval power series for one container, aligned
// with the rack series (one sample per interval for both).
type TenantTrace struct {
	Tenant string
	Watts  []float64
}

// SuspicionScore summarizes one tenant's attack indicators.
type SuspicionScore struct {
	Tenant string
	// CrestAlignment is the fraction of the tenant's burst *runs* that
	// start while the rest of the rack sits above its 80th percentile
	// (measured just before the burst, where the attacker cannot suppress
	// it).
	CrestAlignment float64
	// BurstDuty is the fraction of intervals the tenant runs hot — tiny
	// for a synergistic attacker, high for benign steady loads.
	BurstDuty float64
	// Correlation is Pearson between the tenant's power and the rest of
	// the rack's power.
	Correlation float64
	// Suspicious combines the indicators: rare bursts that always land on
	// foreign crests.
	Suspicious bool
}

// ScoreTenants analyses aligned traces: rack is the total rack power per
// interval, tenants the per-container attributions (from powerns metering).
func ScoreTenants(rack []float64, tenants []TenantTrace) ([]SuspicionScore, error) {
	n := len(rack)
	if n == 0 {
		return nil, fmt.Errorf("defense: empty rack trace")
	}
	var out []SuspicionScore
	for _, tr := range tenants {
		if len(tr.Watts) != n {
			return nil, fmt.Errorf("defense: tenant %s trace length %d != rack %d",
				tr.Tenant, len(tr.Watts), n)
		}
		// Rack power with this tenant's own contribution removed: the
		// background the tenant would have to be *watching* to align with.
		others := make([]float64, n)
		for i := range others {
			others[i] = rack[i] - tr.Watts[i]
		}
		crest := stats.Percentile(others, 80)

		// Hot intervals, grouped into runs. The alignment judgment uses
		// the background level just BEFORE each run starts: on a saturated
		// host a burst steals cores from the very crest it rides, so
		// `rack − tenant` during the burst underestimates the background
		// (the attacker literally suppresses its own evidence). The
		// pre-burst samples are unsuppressed.
		s := stats.Summarize(tr.Watts)
		hotThreshold := s.Min + (s.Max-s.Min)*0.5
		var hot int
		type span struct{ start, end int }
		var spans []span
		inRun := false
		for i, w := range tr.Watts {
			isHot := s.Max > s.Min && w > hotThreshold
			if isHot {
				hot++
				if !inRun {
					spans = append(spans, span{start: i, end: i})
					inRun = true
				} else {
					spans[len(spans)-1].end = i
				}
			} else {
				inRun = false
			}
		}
		// Judge each run by the unsuppressed background on either side: a
		// burst triggered on a rising crest edge has its evidence after
		// the run; one triggered mid-crest has it before.
		var runs, alignedRuns int
		for _, sp := range spans {
			runs++
			edge := 0.0
			for b := 1; b <= 3; b++ {
				if j := sp.start - b; j >= 0 && others[j] > edge {
					edge = others[j]
				}
				if j := sp.end + b; j < n && others[j] > edge {
					edge = others[j]
				}
			}
			if edge >= crest {
				alignedRuns++
			}
		}
		score := SuspicionScore{
			Tenant:      tr.Tenant,
			Correlation: stats.Pearson(tr.Watts, others),
		}
		if hot > 0 {
			score.BurstDuty = float64(hot) / float64(n)
		}
		if runs > 0 {
			score.CrestAlignment = float64(alignedRuns) / float64(runs)
		}
		// A synergistic attacker: rare bursts (< 30% duty) that almost
		// always start on foreign crests (> 70% of runs, ≥ 3.5× the 20%
		// base rate of the p80 threshold).
		score.Suspicious = score.BurstDuty > 0 && score.BurstDuty < 0.3 &&
			score.CrestAlignment > 0.7 && runs >= 2
		out = append(out, score)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].CrestAlignment > out[j].CrestAlignment
	})
	return out, nil
}
