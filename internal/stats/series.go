package stats

import (
	"math"
	"sort"
)

// Summary describes a batch of float64 observations.
type Summary struct {
	N              int
	Min, Max, Mean float64
	Std            float64
}

// Summarize computes a Summary of vs. An empty input yields the zero Summary.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vs), Min: vs[0], Max: vs[0]}
	var sum float64
	for _, v := range vs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range vs {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	return s
}

// Percentile returns the p-th percentile (0..100) of vs using linear
// interpolation between order statistics. An empty input returns 0.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WindowAverage reduces vs into consecutive windows of the given size,
// averaging each window; a final partial window is averaged over its actual
// length. It reproduces the paper's "average the power data with a 30-second
// interval" processing of Fig. 2.
func WindowAverage(vs []float64, window int) []float64 {
	if window <= 1 {
		return append([]float64(nil), vs...)
	}
	out := make([]float64, 0, (len(vs)+window-1)/window)
	for i := 0; i < len(vs); i += window {
		end := i + window
		if end > len(vs) {
			end = len(vs)
		}
		var sum float64
		for _, v := range vs[i:end] {
			sum += v
		}
		out = append(out, sum/float64(end-i))
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of the paired samples,
// or 0 when either side has no variance. The co-residence detector uses it to
// match synchronized snapshot traces of channels like /proc/meminfo.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	var meanA, meanB float64
	for i := 0; i < n; i++ {
		meanA += a[i]
		meanB += b[i]
	}
	meanA /= float64(n)
	meanB /= float64(n)
	var cov, varA, varB float64
	for i := 0; i < n; i++ {
		da, db := a[i]-meanA, b[i]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}

// MaxDelta returns the largest absolute pairwise difference between the two
// equally-indexed series; it is math.Inf(1) if lengths differ. Trace matching
// uses it as an exact-match criterion for accumulating counters.
func MaxDelta(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
