package stats

import "math"

// Entropy computes the Shannon entropy, in bits, of the empirical
// distribution of the given discrete samples.
func Entropy[T comparable](samples []T) float64 {
	if len(samples) == 0 {
		return 0
	}
	counts := make(map[T]int, len(samples))
	for _, s := range samples {
		counts[s]++
	}
	n := float64(len(samples))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// JointEntropy implements the paper's Formula (1): a channel C with
// independent data fields X_1..X_n has capacity
//
//	H[C] = Σ_i ( -Σ_j p(x_ij) · log p(x_ij) ),
//
// i.e. the sum of the per-field Shannon entropies. fields[i] holds the
// observed samples of field i.
func JointEntropy(fields [][]string) float64 {
	var h float64
	for _, f := range fields {
		h += Entropy(f)
	}
	return h
}

// EntropyFloat buckets float samples into the given number of equal-width
// bins between the observed min and max, then returns the Shannon entropy of
// the binned distribution. It is used to estimate the information content of
// continuously-valued channel fields such as power or memory counters.
func EntropyFloat(samples []float64, bins int) float64 {
	if len(samples) == 0 || bins <= 0 {
		return 0
	}
	lo, hi := samples[0], samples[0]
	for _, v := range samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return 0
	}
	binned := make([]int, 0, len(samples))
	w := (hi - lo) / float64(bins)
	for _, v := range samples {
		b := int((v - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		binned = append(binned, b)
	}
	return Entropy(binned)
}
