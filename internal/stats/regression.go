// Package stats provides the statistical machinery shared across the
// reproduction: ordinary least squares regression (used by the power-based
// namespace to fit the per-container energy model of Formula 2), Shannon and
// joint entropy (used to rank leakage channels for Table II), and time-series
// summaries (used by the synergistic power attack's crest detector and by the
// figure harnesses).
//
// Everything here is deterministic and allocation-conscious; the simulator
// calls into this package on hot paths (every RAPL read models and calibrates
// energy).
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a regression's normal-equation matrix cannot
// be solved, typically because predictors are collinear or there are fewer
// observations than coefficients.
var ErrSingular = errors.New("stats: singular design matrix")

// Model is a fitted ordinary least squares linear model
//
//	y ≈ Intercept + Σ_j Coef[j] · x_j.
type Model struct {
	// Intercept is the constant term (α, γ, λ in the paper's Formula 2).
	Intercept float64
	// Coef holds one coefficient per predictor column.
	Coef []float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// RMSE is the root mean squared training error.
	RMSE float64
	// N is the number of observations the model was fitted on.
	N int
}

// Fit computes an ordinary least squares fit of y on the predictor rows in x
// using the normal equations. Each x[i] must have the same length; an
// intercept column is added internally. Fit returns ErrSingular when the
// system cannot be solved.
func Fit(x [][]float64, y []float64) (*Model, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: need matching non-empty x (%d) and y (%d)", len(x), len(y))
	}
	p := len(x[0])
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("stats: row %d has %d predictors, want %d", i, len(row), p)
		}
	}
	if n < p+1 {
		return nil, fmt.Errorf("stats: %d observations cannot identify %d coefficients: %w", n, p+1, ErrSingular)
	}

	// Build the (p+1)x(p+1) normal-equation system XtX·b = Xty with an
	// implicit leading intercept column of ones.
	dim := p + 1
	xtx := make([][]float64, dim)
	for i := range xtx {
		xtx[i] = make([]float64, dim)
	}
	xty := make([]float64, dim)
	for i := 0; i < n; i++ {
		// Row vector with intercept: (1, x[i][0], ..., x[i][p-1]).
		for a := 0; a < dim; a++ {
			va := 1.0
			if a > 0 {
				va = x[i][a-1]
			}
			xty[a] += va * y[i]
			for b := a; b < dim; b++ {
				vb := 1.0
				if b > 0 {
					vb = x[i][b-1]
				}
				xtx[a][b] += va * vb
			}
		}
	}
	// Mirror the upper triangle.
	for a := 1; a < dim; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}

	beta, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}

	m := &Model{Intercept: beta[0], Coef: beta[1:], N: n}
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		pred := m.Predict(x[i])
		d := y[i] - pred
		ssRes += d * d
		t := y[i] - meanY
		ssTot += t * t
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else {
		m.R2 = 1
	}
	m.RMSE = math.Sqrt(ssRes / float64(n))
	return m, nil
}

// Predict evaluates the fitted model at the predictor vector xs. Predict
// panics if xs does not match the fitted dimensionality; that is always a
// programming error in the caller.
func (m *Model) Predict(xs []float64) float64 {
	if len(xs) != len(m.Coef) {
		panic(fmt.Sprintf("stats: predict with %d predictors on a %d-coefficient model", len(xs), len(m.Coef)))
	}
	v := m.Intercept
	for j, c := range m.Coef {
		v += c * xs[j]
	}
	return v
}

// solve performs Gaussian elimination with partial pivoting on a·x = b.
// It mutates its arguments.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

// LinearFit is a convenience wrapper fitting y = slope·x + intercept for a
// single predictor, as used for the DRAM model (Formula 2, M_dram = β·CM + γ)
// and the Fig. 6/7 linearity checks.
func LinearFit(x, y []float64) (slope, intercept, r2 float64, err error) {
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = []float64{v}
	}
	m, err := Fit(rows, y)
	if err != nil {
		return 0, 0, 0, err
	}
	return m.Coef[0], m.Intercept, m.R2, nil
}
