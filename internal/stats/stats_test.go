package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestFitRecoversExactLinearModel(t *testing.T) {
	// y = 3 + 2a - 5b, noiseless.
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{a, b})
			y = append(y, 3+2*a-5*b)
		}
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	almost(t, m.Intercept, 3, 1e-9, "intercept")
	almost(t, m.Coef[0], 2, 1e-9, "coef a")
	almost(t, m.Coef[1], -5, 1e-9, "coef b")
	almost(t, m.R2, 1, 1e-9, "R2")
	almost(t, m.RMSE, 0, 1e-9, "RMSE")
}

func TestFitWithNoiseHasHighR2(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 1.5+4*a+0.5*b+rng.NormFloat64()*0.1)
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	almost(t, m.Coef[0], 4, 0.05, "coef a")
	almost(t, m.Coef[1], 0.5, 0.05, "coef b")
	if m.R2 < 0.99 {
		t.Fatalf("R2 = %g, want > 0.99", m.R2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("Fit(nil) should fail")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if _, err := Fit([][]float64{{1, 2}, {1, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("underdetermined system should fail")
	}
	// Collinear predictors: second column = 2 * first.
	var x [][]float64
	var y []float64
	for i := 0.0; i < 10; i++ {
		x = append(x, []float64{i, 2 * i})
		y = append(y, i)
	}
	if _, err := Fit(x, y); err == nil {
		t.Fatal("collinear predictors should fail")
	}
}

func TestFitRaggedRows(t *testing.T) {
	_, err := Fit([][]float64{{1, 2}, {3}}, []float64{1, 2})
	if err == nil {
		t.Fatal("ragged predictor rows should fail")
	}
}

func TestPredictPanicsOnDimensionMismatch(t *testing.T) {
	m := &Model{Coef: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestLinearFit(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	slope, intercept, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatalf("LinearFit: %v", err)
	}
	almost(t, slope, 2, 1e-9, "slope")
	almost(t, intercept, 1, 1e-9, "intercept")
	almost(t, r2, 1, 1e-9, "r2")
}

func TestEntropyUniform(t *testing.T) {
	// 4 equally likely symbols → 2 bits.
	s := []string{"a", "b", "c", "d", "a", "b", "c", "d"}
	almost(t, Entropy(s), 2, 1e-9, "entropy")
}

func TestEntropyDegenerate(t *testing.T) {
	almost(t, Entropy([]int{5, 5, 5}), 0, 1e-12, "constant entropy")
	almost(t, Entropy([]int(nil)), 0, 1e-12, "empty entropy")
}

func TestJointEntropySumsFields(t *testing.T) {
	f1 := []string{"a", "b", "a", "b"} // 1 bit
	f2 := []string{"x", "x", "x", "x"} // 0 bits
	f3 := []string{"1", "2", "3", "4"} // 2 bits
	almost(t, JointEntropy([][]string{f1, f2, f3}), 3, 1e-9, "joint entropy")
}

func TestEntropyFloatBinning(t *testing.T) {
	if h := EntropyFloat([]float64{1, 1, 1}, 8); h != 0 {
		t.Fatalf("constant series entropy = %g, want 0", h)
	}
	// Two clearly separated clusters, equal mass → 1 bit with enough bins.
	vs := []float64{0, 0.01, 0.02, 10, 10.01, 10.02}
	almost(t, EntropyFloat(vs, 4), 1, 1e-9, "two-cluster entropy")
	if h := EntropyFloat(nil, 4); h != 0 {
		t.Fatalf("empty entropy = %g", h)
	}
}

func TestEntropyNonNegativeAndBounded(t *testing.T) {
	// Property: 0 <= H <= log2(len(samples)) for any byte slice.
	f := func(data []byte) bool {
		if len(data) == 0 {
			return Entropy(data) == 0
		}
		h := Entropy(data)
		return h >= 0 && h <= math.Log2(float64(len(data)))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	almost(t, s.Mean, 5, 1e-9, "mean")
	almost(t, s.Std, 2, 1e-9, "std")
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Fatalf("summary %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	almost(t, Percentile(vs, 0), 1, 1e-9, "p0")
	almost(t, Percentile(vs, 100), 10, 1e-9, "p100")
	almost(t, Percentile(vs, 50), 5.5, 1e-9, "p50")
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vs := []float64{3, 1, 2}
	Percentile(vs, 50)
	if vs[0] != 3 || vs[1] != 1 || vs[2] != 2 {
		t.Fatalf("input mutated: %v", vs)
	}
}

func TestWindowAverage(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5}
	got := WindowAverage(vs, 2)
	want := []float64{1.5, 3.5, 5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		almost(t, got[i], want[i], 1e-9, "window avg")
	}
	// window <= 1 copies.
	same := WindowAverage(vs, 1)
	if &same[0] == &vs[0] {
		t.Fatal("WindowAverage(…, 1) must copy, not alias")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	almost(t, Pearson(a, []float64{2, 4, 6, 8}), 1, 1e-9, "perfect positive")
	almost(t, Pearson(a, []float64{8, 6, 4, 2}), -1, 1e-9, "perfect negative")
	if Pearson(a, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("no-variance series should give 0")
	}
	if Pearson(a, a[:2]) != 0 {
		t.Fatal("length mismatch should give 0")
	}
}

func TestMaxDelta(t *testing.T) {
	almost(t, MaxDelta([]float64{1, 2}, []float64{1.5, 1}), 1, 1e-9, "max delta")
	if !math.IsInf(MaxDelta([]float64{1}, []float64{1, 2}), 1) {
		t.Fatal("length mismatch should be +Inf")
	}
}

func TestWindowAveragePreservesMass(t *testing.T) {
	// Property: sum(window means × window lengths) == sum(values).
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				vs = append(vs, v)
			}
		}
		out := WindowAverage(vs, 3)
		var total float64
		for i, m := range out {
			n := 3
			if rem := len(vs) - i*3; rem < 3 {
				n = rem
			}
			total += m * float64(n)
		}
		var want float64
		for _, v := range vs {
			want += v
		}
		return math.Abs(total-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
