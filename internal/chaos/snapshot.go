package chaos

import (
	"repro/internal/fastrand"
	"repro/internal/pseudofs"
)

// Snapshot/Restore support for the world snapshot machinery
// (kernel.Snapshot / cloud.Datacenter.Snapshot): fault streams are part of
// world state, so a restored world must replay the exact same faults a
// freshly built one would see. Each per-path / per-key / per-core stream
// captures its RNG position plus latched state. Streams born *after* a
// snapshot are dropped on restore; they are lazily recreated with identical
// seeds on first use, because every stream seed derives from
// Split(seed, kind, name) alone — never from creation order.

// pathSnap is the captured state of one path's fault stream.
type pathSnap struct {
	rng      fastrand.State
	sticky   bool
	flapLeft int
	last     string
	haveLast bool
}

// InjectorState is a point-in-time capture of an Injector.
type InjectorState struct {
	paths map[string]pathSnap
}

// Snapshot captures every live path stream.
func (in *Injector) Snapshot() *InjectorState {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := &InjectorState{paths: make(map[string]pathSnap, len(in.paths))}
	for p, st := range in.paths {
		s.paths[p] = pathSnap{
			rng: st.rng.Save(), sticky: st.sticky, flapLeft: st.flapLeft,
			last: st.last, haveLast: st.haveLast,
		}
	}
	return s
}

// Restore rewinds the injector to the captured state.
func (in *Injector) Restore(s *InjectorState) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for p := range in.paths {
		if _, ok := s.paths[p]; !ok {
			delete(in.paths, p)
		}
	}
	for p, snap := range s.paths {
		st, ok := in.paths[p]
		if !ok {
			st = &pathState{rng: fastrand.New(0)}
			in.paths[p] = st
		}
		st.rng.Restore(snap.rng)
		st.sticky, st.flapLeft = snap.sticky, snap.flapLeft
		st.last, st.haveLast = snap.last, snap.haveLast
	}
}

// ctrSnap is the captured state of one counter key's fault stream.
type ctrSnap struct {
	rng  fastrand.State
	base uint64
}

// CountersState is a point-in-time capture of a Counters perturber.
type CountersState struct {
	keys map[string]ctrSnap
}

// Snapshot captures every live counter stream.
func (c *Counters) Snapshot() *CountersState {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &CountersState{keys: make(map[string]ctrSnap, len(c.keys))}
	for k, st := range c.keys {
		s.keys[k] = ctrSnap{rng: st.rng.Save(), base: st.base}
	}
	return s
}

// Restore rewinds the perturber to the captured state.
func (c *Counters) Restore(s *CountersState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.keys {
		if _, ok := s.keys[k]; !ok {
			delete(c.keys, k)
		}
	}
	for k, snap := range s.keys {
		st, ok := c.keys[k]
		if !ok {
			st = &counterState{rng: fastrand.New(0)}
			c.keys[k] = st
		}
		st.rng.Restore(snap.rng)
		st.base = snap.base
	}
}

// dtsSnap is the captured state of one core sensor's fault stream.
type dtsSnap struct {
	rng  fastrand.State
	last float64
	have bool
}

// ThermalState is a point-in-time capture of a Thermal wrapper.
type ThermalState struct {
	cores map[int]dtsSnap
}

// Snapshot captures every live sensor stream.
func (t *Thermal) Snapshot() *ThermalState {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &ThermalState{cores: make(map[int]dtsSnap, len(t.cores))}
	for c, st := range t.cores {
		s.cores[c] = dtsSnap{rng: st.rng.Save(), last: st.last, have: st.have}
	}
	return s
}

// Restore rewinds the wrapper to the captured state.
func (t *Thermal) Restore(s *ThermalState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range t.cores {
		if _, ok := s.cores[c]; !ok {
			delete(t.cores, c)
		}
	}
	for c, snap := range s.cores {
		st, ok := t.cores[c]
		if !ok {
			st = &dtsState{rng: fastrand.New(0)}
			t.cores[c] = st
		}
		st.rng.Restore(snap.rng)
		st.last, st.have = snap.last, snap.have
	}
}

// Ctr exposes the counter perturber behind an Energy wrapper so the world
// snapshot can capture it (the wrapper itself is stateless).
func (e *Energy) Ctr() *Counters { return e.ctr }

// Inner returns the wrapped provider, so snapshotting code can walk a
// provider stack (chaos over powerns over raw).
func (e *Energy) Inner() pseudofs.EnergyProvider { return e.inner }

// Inner returns the wrapped thermal provider.
func (t *Thermal) Inner() pseudofs.ThermalProvider { return t.inner }
