package chaos

import (
	"testing"
	"time"
)

// faultTrace draws n faults from one link and renders them comparably.
func faultTrace(n *Net, link string, count int) []string {
	out := make([]string, count)
	for i := range out {
		f := n.Next(link)
		out[i] = f.String() + "/" + f.Delay.String()
	}
	return out
}

// TestNetSameSeedSameSchedule: the determinism contract — two Nets with
// the same config draw identical fault sequences on every link.
func TestNetSameSeedSameSchedule(t *testing.T) {
	cfg := NetSpec{Rate: 0.5, Seed: 42}.Config()
	a, b := NewNet(cfg), NewNet(cfg)
	for _, link := range []string{"shard:w0", "shard:w1", "ping:w0"} {
		ta, tb := faultTrace(a, link, 300), faultTrace(b, link, 300)
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("link %s message %d: %s vs %s — schedule not seed-deterministic", link, i, ta[i], tb[i])
			}
		}
	}
}

// TestNetSeedChangesSchedule: different seeds must not replay the same
// schedule (the whole point of the seed knob).
func TestNetSeedChangesSchedule(t *testing.T) {
	a := NewNet(NetSpec{Rate: 0.5, Seed: 1}.Config())
	b := NewNet(NetSpec{Rate: 0.5, Seed: 2}.Config())
	ta, tb := faultTrace(a, "shard:w0", 200), faultTrace(b, "shard:w0", 200)
	same := 0
	for i := range ta {
		if ta[i] == tb[i] {
			same++
		}
	}
	if same == len(ta) {
		t.Fatal("seeds 1 and 2 produced identical 200-message schedules")
	}
}

// TestNetLinkIndependence: a link's stream depends only on its own message
// count, never on traffic interleaved on other links — the property that
// makes cluster chaos runs replayable.
func TestNetLinkIndependence(t *testing.T) {
	cfg := NetSpec{Rate: 0.6, Seed: 7}.Config()
	solo := NewNet(cfg)
	noisy := NewNet(cfg)
	want := faultTrace(solo, "shard:w0", 100)
	got := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		// Interleave heavy unrelated traffic between every draw.
		noisy.Next("shard:w1")
		noisy.Next("ping:w0")
		noisy.Next("ping:w1")
		f := noisy.Next("shard:w0")
		got = append(got, f.String()+"/"+f.Delay.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d: %s vs %s — cross-link traffic perturbed the stream", i, got[i], want[i])
		}
	}
}

// TestNetPartitionEpisode: a partition silences PartitionMsgs consecutive
// messages in one direction.
func TestNetPartitionEpisode(t *testing.T) {
	n := NewNet(NetConfig{Seed: 3, PartitionRate: 1, PartitionMsgs: 3})
	first := n.Next("link")
	if !first.Drop && !first.DropReply {
		t.Fatalf("partition opener should silence, got %s", first)
	}
	dir := first.String()
	for i := 0; i < 2; i++ {
		f := n.Next("link")
		if f.String() != dir {
			t.Fatalf("episode message %d: %s, want %s (one-way, consecutive)", i+2, f, dir)
		}
	}
}

// TestNetZeroSpecClean: the zero spec injects nothing.
func TestNetZeroSpecClean(t *testing.T) {
	if (NetSpec{}).Enabled() {
		t.Fatal("zero NetSpec claims to be enabled")
	}
	n := NewNet(NetSpec{}.Config())
	for i := 0; i < 100; i++ {
		if f := n.Next("link"); f.Faulted() {
			t.Fatalf("zero spec injected %s", f)
		}
	}
}

// TestNetRateShares: the per-kind rates partition the overall rate.
func TestNetRateShares(t *testing.T) {
	cfg := NetSpec{Rate: 0.4, Seed: 1}.Config()
	total := cfg.DropRate + cfg.DelayRate + cfg.DupRate + cfg.PartitionRate
	if diff := total - 0.4; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("kind rates sum to %g, want 0.4", total)
	}
	if cfg.PartitionMsgs <= 0 || cfg.MaxDelay <= 0 {
		t.Fatalf("derived config missing episode/delay bounds: %+v", cfg)
	}
}

// TestNetDelayBounded: injected delays stay within (0, MaxDelay].
func TestNetDelayBounded(t *testing.T) {
	n := NewNet(NetConfig{Seed: 9, DelayRate: 1, MaxDelay: 5 * time.Millisecond})
	for i := 0; i < 200; i++ {
		f := n.Next("link")
		if f.Delay <= 0 || f.Delay > 5*time.Millisecond {
			t.Fatalf("delay %v outside (0, 5ms]", f.Delay)
		}
	}
}
