package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file extends the fault taxonomy from the observation surface to the
// *inter-node* links of a leaksd cluster (internal/cluster). The paper's
// detection framework runs on one host; at fleet scale the coordinator and
// its workers talk over a network that drops, delays, duplicates, and
// half-partitions — the failure modes every distributed scan must survive.
// Like every other injector in this package, link faults are drawn from
// seeded split RNG streams: each link's fault sequence depends only on
// (seed, link name) and on how many messages that link has carried, never
// on cross-link interleaving, so a cluster chaos run is deterministic and
// replayable as long as each link's sends are serialized (which the
// cluster coordinator's per-worker dispatch loops guarantee).

// NetSpec is the link-chaos knob pair, mirroring Spec: one overall message
// fault rate and one seed. The zero NetSpec injects nothing.
type NetSpec struct {
	// Rate is the probability in [0,1] that any given message is perturbed.
	Rate float64
	// Seed selects the fault streams. Same (Rate, Seed) ⇒ same fault
	// schedule on every link.
	Seed int64
}

// Enabled reports whether the spec injects anything.
func (s NetSpec) Enabled() bool { return s.Rate > 0 }

// String renders the spec for logs and experiment headers.
func (s NetSpec) String() string {
	if !s.Enabled() {
		return "net chaos off"
	}
	return fmt.Sprintf("net chaos rate=%g seed=%d", s.Rate, s.Seed)
}

// NetConfig expands a NetSpec into per-fault-kind rates; tests that need a
// single isolated fault kind construct one directly.
type NetConfig struct {
	Seed int64

	DropRate      float64       // request lost in flight
	DelayRate     float64       // request delivered after jitter
	DupRate       float64       // request delivered twice
	PartitionRate float64       // one-way partition episode starts
	PartitionMsgs int           // messages silenced per partition episode
	MaxDelay      time.Duration // jitter upper bound (uniform in (0, MaxDelay])
}

// Config derives the per-kind rates from the overall rate: 35% of faulted
// messages are dropped, 35% delayed, 15% duplicated, and 15% open a
// one-way partition episode that silences the next few messages in one
// direction.
func (s NetSpec) Config() NetConfig {
	r := s.Rate
	return NetConfig{
		Seed:          s.Seed,
		DropRate:      0.35 * r,
		DelayRate:     0.35 * r,
		DupRate:       0.15 * r,
		PartitionRate: 0.15 * r,
		PartitionMsgs: 3,
		MaxDelay:      20 * time.Millisecond,
	}
}

// NetFault is the fate of one message, decided before delivery.
type NetFault struct {
	// Delay is applied before the delivery attempt (zero = none).
	Delay time.Duration
	// Drop loses the request in flight: the remote never sees it.
	Drop bool
	// DropReply delivers the request but loses the response — the remote
	// did the work, the sender cannot know. This is the dangerous half of a
	// one-way partition: retries must be idempotent.
	DropReply bool
	// Dup delivers the request twice (duplicated retransmit).
	Dup bool
}

// Faulted reports whether the message is perturbed at all.
func (f NetFault) Faulted() bool { return f.Drop || f.DropReply || f.Dup || f.Delay > 0 }

// String names the fault for telemetry labels ("clean", "drop", "dup",
// "delay", "drop_reply").
func (f NetFault) String() string {
	switch {
	case f.Drop:
		return "drop"
	case f.DropReply:
		return "drop_reply"
	case f.Dup:
		return "dup"
	case f.Delay > 0:
		return "delay"
	default:
		return "clean"
	}
}

// linkState is one link's fault stream: its RNG plus the partition episode
// latch.
type linkState struct {
	rng *rand.Rand
	// partLeft counts remaining silenced messages in the current one-way
	// partition episode; partReply selects which direction is silenced
	// (false: requests are lost; true: replies are lost).
	partLeft  int
	partReply bool
}

// Net draws per-message link faults. Safe for concurrent use across links;
// a single link's fault sequence is deterministic as long as that link's
// messages are serialized (one in flight at a time), which is how the
// cluster coordinator dispatches.
type Net struct {
	cfg   NetConfig
	mu    sync.Mutex
	links map[string]*linkState
}

// NewNet returns a link-fault source drawing from cfg.
func NewNet(cfg NetConfig) *Net {
	return &Net{cfg: cfg, links: make(map[string]*linkState)}
}

// Next decides the fate of the next message on the named link. Link names
// identify independent streams — the cluster uses one per (kind, worker)
// pair, e.g. "shard:worker-1" and "ping:worker-1", so heartbeat traffic
// cannot perturb shard-call fault sequences.
func (n *Net) Next(link string) NetFault {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.links[link]
	if !ok {
		st = &linkState{rng: rand.New(rand.NewSource(Split(n.cfg.Seed, "net", link)))}
		n.links[link] = st
	}
	if st.partLeft > 0 {
		st.partLeft--
		if st.partReply {
			return NetFault{DropReply: true}
		}
		return NetFault{Drop: true}
	}
	// One roll decides the message's fate via a subtractive threshold walk,
	// the same scheme Injector.Read uses for pseudo-file faults.
	p := st.rng.Float64()
	if p -= n.cfg.DropRate; p < 0 {
		return NetFault{Drop: true}
	}
	if p -= n.cfg.DelayRate; p < 0 {
		if n.cfg.MaxDelay <= 0 {
			return NetFault{}
		}
		return NetFault{Delay: time.Duration(1 + st.rng.Int63n(int64(n.cfg.MaxDelay)))}
	}
	if p -= n.cfg.DupRate; p < 0 {
		return NetFault{Dup: true}
	}
	if p -= n.cfg.PartitionRate; p < 0 {
		st.partReply = st.rng.Float64() < 0.5
		st.partLeft = n.cfg.PartitionMsgs - 1
		if st.partReply {
			return NetFault{DropReply: true}
		}
		return NetFault{Drop: true}
	}
	return NetFault{}
}
