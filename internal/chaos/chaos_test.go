package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/pseudofs"
)

// trace drains n fate decisions for one path from a fresh injector and
// records them as compact strings.
func trace(in *Injector, path string, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		content, err := in.Read(path, func() (string, error) {
			return fmt.Sprintf("render-%d", i), nil
		})
		switch {
		case err != nil:
			out = append(out, "err:"+err.Error())
		default:
			out = append(out, "ok:"+content)
		}
	}
	return out
}

func testConfig(seed int64) Config {
	return Spec{Rate: 0.2, Seed: seed}.Config()
}

// TestPerPathStreamsIndependentOfInterleaving is the determinism keystone:
// a path's fault sequence depends only on (seed, path) and its own read
// count, never on reads of other paths — so any worker-count scheduling of
// per-path work items observes identical faults.
func TestPerPathStreamsIndependentOfInterleaving(t *testing.T) {
	const n = 400
	paths := []string{"/proc/stat", "/proc/meminfo", "/sys/x/energy_uj"}

	// Reference: each path drained alone on its own injector.
	want := map[string][]string{}
	for _, p := range paths {
		want[p] = trace(NewInjector(testConfig(7)), p, n)
	}

	// Same seed, one shared injector, reads interleaved round-robin.
	in := NewInjector(testConfig(7))
	got := map[string][]string{}
	for i := 0; i < n; i++ {
		for _, p := range paths {
			j := len(got[p])
			content, err := in.Read(p, func() (string, error) {
				return fmt.Sprintf("render-%d", j), nil
			})
			if err != nil {
				got[p] = append(got[p], "err:"+err.Error())
			} else {
				got[p] = append(got[p], "ok:"+content)
			}
		}
	}
	for _, p := range paths {
		for i := range want[p] {
			if got[p][i] != want[p][i] {
				t.Fatalf("path %s read %d: interleaved %q != isolated %q", p, i, got[p][i], want[p][i])
			}
		}
	}
}

// TestSameSeedSameFaults: identical (config, path) reproduce identical
// fault sequences; a different seed diverges.
func TestSameSeedSameFaults(t *testing.T) {
	a := trace(NewInjector(testConfig(3)), "/proc/stat", 300)
	b := trace(NewInjector(testConfig(3)), "/proc/stat", 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: same seed diverged: %q vs %q", i, a[i], b[i])
		}
	}
	c := trace(NewInjector(testConfig(4)), "/proc/stat", 300)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestFaultTaxonomyObserved: at a healthy rate every fault kind appears,
// with transient errors classifiable via pseudofs sentinels.
func TestFaultTaxonomyObserved(t *testing.T) {
	in := NewInjector(testConfig(11))
	var transient, denied, torn, stale int
	prev := ""
	for i := 0; i < 3000; i++ {
		full := fmt.Sprintf("render-%06d", i)
		content, err := in.Read("/proc/meminfo", func() (string, error) { return full, nil })
		switch {
		case errors.Is(err, pseudofs.ErrTransient):
			transient++
		case errors.Is(err, pseudofs.ErrDenied):
			denied++
		case err != nil:
			t.Fatalf("read %d: unexpected error class: %v", i, err)
		case content == full:
			// clean
		case strings.HasPrefix(full, content):
			torn++
		case content == prev || len(content) == len(full):
			stale++
		default:
			t.Fatalf("read %d: content %q is neither clean, torn prefix, nor stale", i, content)
		}
		if err == nil && content == full {
			prev = full
		}
	}
	if transient == 0 || denied == 0 || torn == 0 || stale == 0 {
		t.Fatalf("fault kinds missing in 3000 reads: transient=%d denied=%d torn=%d stale=%d",
			transient, denied, torn, stale)
	}
}

// TestStickyFaultLatches: once a path goes sticky-EIO it never recovers.
func TestStickyFaultLatches(t *testing.T) {
	cfg := Config{Seed: 1, EIORate: 0.5, StickyFrac: 1} // every EIO latches
	in := NewInjector(cfg)
	stuckAt := -1
	for i := 0; i < 50; i++ {
		_, err := in.Read("/proc/stat", func() (string, error) { return "x", nil })
		if err != nil {
			stuckAt = i
			break
		}
	}
	if stuckAt < 0 {
		t.Fatal("no EIO in 50 reads at rate 0.5")
	}
	for i := 0; i < 20; i++ {
		_, err := in.Read("/proc/stat", func() (string, error) { return "x", nil })
		if !errors.Is(err, pseudofs.ErrTransient) || !strings.Contains(err.Error(), "sticky") {
			t.Fatalf("post-latch read %d: err = %v, want sticky EIO", i, err)
		}
	}
	// Other paths are unaffected.
	if _, err := in.Read("/proc/uptime", func() (string, error) { return "y", nil }); err != nil && strings.Contains(err.Error(), "sticky") {
		t.Fatalf("sticky state leaked across paths: %v", err)
	}
}

// TestFlapDeniesExactlyFlapReads: a flap episode denies FlapReads
// consecutive reads, then the path recovers.
func TestFlapDeniesExactlyFlapReads(t *testing.T) {
	cfg := Config{Seed: 9, FlapRate: 1, FlapReads: 3} // first roll always flaps
	in := NewInjector(cfg)
	for i := 0; i < 3; i++ {
		_, err := in.Read("/proc/locks", func() (string, error) { return "x", nil })
		if !errors.Is(err, pseudofs.ErrDenied) {
			t.Fatalf("flap read %d: err = %v, want ErrDenied", i, err)
		}
	}
	// FlapRate=1 restarts an episode on every post-episode roll, so drop the
	// rate to observe recovery.
	in.cfg.FlapRate = 0
	content, err := in.Read("/proc/locks", func() (string, error) { return "back", nil })
	if err != nil || content != "back" {
		t.Fatalf("post-flap read: %q, %v; want clean recovery", content, err)
	}
}

// TestCounterResetAndQuantization: Observe re-bases the counter at an
// injected reset (observed value restarts near zero) and floors to the
// quantum; between resets it is monotone for a monotone raw counter.
func TestCounterResetAndQuantization(t *testing.T) {
	const q = 1000
	c := NewCounters(Config{Seed: 5, ResetRate: 0.05, JitterUJ: q})
	const maxR = uint64(1 << 40)
	var prev uint64
	resets := 0
	for i := 1; i <= 2000; i++ {
		raw := uint64(i) * 123_457 // monotone raw counter
		v := c.Observe("host/energy/package", raw, maxR)
		if v%q != 0 {
			t.Fatalf("step %d: observed %d not floored to quantum %d", i, v, q)
		}
		if v < prev {
			resets++
			if v > prev/2 {
				t.Fatalf("step %d: regression %d -> %d is not a reset-to-near-zero", i, prev, v)
			}
		}
		prev = v
	}
	if resets == 0 {
		t.Fatal("no injected resets in 2000 observations at rate 0.05")
	}
}

// TestCounterZeroConfigIsQuantizedIdentity: with ResetRate 0 and no
// quantum, Observe is the identity — the chaos-off contract at the
// counter layer.
func TestCounterZeroConfigIsQuantizedIdentity(t *testing.T) {
	c := NewCounters(Config{Seed: 1})
	for i := 0; i < 100; i++ {
		raw := uint64(i) * 999
		if got := c.Observe("k", raw, 1<<40); got != raw {
			t.Fatalf("Observe(%d) = %d with zero config", raw, got)
		}
	}
}

// TestCounterKeysIndependent: two keys' reset streams are split — the
// sequence for one key is identical whether or not the other is observed.
func TestCounterKeysIndependent(t *testing.T) {
	cfg := Config{Seed: 2, ResetRate: 0.2}
	solo := NewCounters(cfg)
	var want []uint64
	for i := 0; i < 500; i++ {
		want = append(want, solo.Observe("a", uint64(i)*1000, 1<<40))
	}
	both := NewCounters(cfg)
	for i := 0; i < 500; i++ {
		both.Observe("b", uint64(i)*777, 1<<40) // interloper
		if got := both.Observe("a", uint64(i)*1000, 1<<40); got != want[i] {
			t.Fatalf("step %d: key a diverged with key b interleaved: %d != %d", i, got, want[i])
		}
	}
}

// TestSplitStability: Split is a pure function and distinct names give
// distinct seeds (FNV-64a collision over a handful of names would be a
// red flag).
func TestSplitStability(t *testing.T) {
	if Split(1, "fs", "/proc/stat") != Split(1, "fs", "/proc/stat") {
		t.Fatal("Split not deterministic")
	}
	seen := map[int64]string{}
	for _, name := range []string{"/proc/stat", "/proc/meminfo", "/proc/uptime", "a", "b", ""} {
		s := Split(42, "fs", name)
		if other, dup := seen[s]; dup {
			t.Fatalf("Split collision: %q and %q -> %d", name, other, s)
		}
		seen[s] = name
	}
	if Split(1, "fs", "x") == Split(2, "fs", "x") {
		t.Fatal("Split ignores seed")
	}
	if Split(1, "fs", "x") == Split(1, "ctr", "x") {
		t.Fatal("Split ignores kind")
	}
}

// TestSpecZeroDisabled: the zero Spec must disable everything — Install
// returns nil and leaves the FS untouched.
func TestSpecZeroDisabled(t *testing.T) {
	var s Spec
	if s.Enabled() {
		t.Fatal("zero Spec reports enabled")
	}
	if s.String() != "chaos off" {
		t.Fatalf("zero Spec renders %q", s.String())
	}
	if inj := Install(nil, s, "host"); inj != nil {
		t.Fatal("Install with zero Spec must be a no-op (nil injector)")
	}
}

// TestInjectorConcurrentReadsRace exercises the injector under parallel
// readers of distinct paths (run with -race); per-path sequences must
// still match the isolated reference.
func TestInjectorConcurrentReadsRace(t *testing.T) {
	const n = 300
	paths := []string{"/a", "/b", "/c", "/d"}
	want := map[string][]string{}
	for _, p := range paths {
		want[p] = trace(NewInjector(testConfig(13)), p, n)
	}
	in := NewInjector(testConfig(13))
	var wg sync.WaitGroup
	errs := make(chan error, len(paths))
	for _, p := range paths {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			got := trace(in, p, n)
			for i := range got {
				if got[i] != want[p][i] {
					errs <- fmt.Errorf("path %s read %d: %q != %q", p, i, got[i], want[p][i])
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestConfigSharesSumBelowRate: the per-kind shares must sum to ≤ 1× the
// overall rate or the subtractive threshold walk would double-count.
func TestConfigSharesSumBelowRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		r := rng.Float64()
		c := Spec{Rate: r, Seed: 1}.Config()
		sum := c.EIORate + c.EAgainRate + c.TornRate + c.StaleRate + c.FlapRate
		if sum > r+1e-12 {
			t.Fatalf("rate %g: per-read fault shares sum to %g > rate", r, sum)
		}
	}
}
