// Package chaos is a deterministic, seeded fault-injection layer for the
// simulated observation surface. The paper's systems run against real
// procfs/sysfs on commercial clouds, where reads race, sensors glitch, RAPL
// counters reset across power events, and providers flip AppArmor masks
// under a live tenant. The clean simulated substrate never does any of
// that, so every consumer (the cross-validation detector, the attack
// monitors, the powerns calibration loop) would be silently brittle in the
// field. This package injects that hostility on purpose — and, unlike the
// field, reproducibly.
//
// Faults are drawn from per-path (and per-counter-key) split RNGs: each
// path's fault stream depends only on (seed, path) and on how many times
// that path has been read, never on cross-path interleaving. Because the
// experiment harnesses validate each path/key inside a single work item,
// fault sequences — and therefore rendered reports — are byte-identical at
// any worker count, preserving the determinism contract of
// ARCHITECTURE.md.
//
// The fault taxonomy, modeled on field failure modes of /proc and /sys:
//
//   - transient EIO / EAGAIN: the read fails this once; retry may succeed.
//     Both wrap pseudofs.ErrTransient so consumers classify them with
//     errors.Is without importing this package.
//   - sticky EIO: a small fraction of EIO faults latch — the path fails
//     forever after, like a dead sensor node.
//   - torn read: the reader races a writer and sees a truncated render.
//   - stale read: a cached previous render is served instead of fresh
//     content.
//   - mask flap: the path turns denied (wrapping pseudofs.ErrDenied) for a
//     few consecutive reads, like a provider rolling out an AppArmor
//     profile under a live tenant.
//   - counter reset: an energy counter restarts from zero mid-run (power
//     event, PMU re-init).
//   - quantization: counters are floored to a quantum, modeling coarse
//     field-sampled readings; monotone, so it never fabricates
//     regressions.
//   - DTS quantization + stuck sensor: temperatures floor to 1 °C and
//     occasionally repeat their previous reading.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/fastrand"
	"repro/internal/power"
	"repro/internal/pseudofs"
)

// Spec is the user-facing knob pair: one overall fault rate and one seed.
// The zero Spec disables injection entirely (and is what every default
// code path uses — chaos off must be a zero-cost no-op).
type Spec struct {
	// Rate is the overall fault intensity in [0,1]: the probability that
	// any given pseudo-file read is perturbed. Individual fault kinds get
	// fixed shares of it (see Config).
	Rate float64
	// Seed selects the fault stream. Same (Rate, Seed) ⇒ same faults,
	// byte-identical reports, at any worker count.
	Seed int64
}

// Enabled reports whether the spec injects anything.
func (s Spec) Enabled() bool { return s.Rate > 0 }

// String renders the spec for experiment headers.
func (s Spec) String() string {
	if !s.Enabled() {
		return "chaos off"
	}
	return fmt.Sprintf("chaos rate=%g seed=%d", s.Rate, s.Seed)
}

// Config expands a Spec into per-fault-kind rates. The shares are fixed so
// that a single -chaos flag spans the whole taxonomy; tests that need a
// single isolated fault kind construct a Config directly.
type Config struct {
	Seed int64

	EIORate    float64 // transient EIO per read
	EAgainRate float64 // transient EAGAIN per read
	TornRate   float64 // truncated render per read
	StaleRate  float64 // previous render served per read
	FlapRate   float64 // mask-flap episode starts per read
	FlapReads  int     // consecutive denied reads per flap episode
	StickyFrac float64 // fraction of EIO faults that latch forever

	ResetRate float64 // counter reset per observation
	JitterUJ  uint64  // counter quantization quantum, µJ (0 = none)
}

// Config derives the per-kind rates from the single overall rate: 30% of
// faulted reads are EIO, 15% EAGAIN, 10% torn, 20% stale, 5% flap starts,
// and counters independently reset on 10% · Rate of observations.
func (s Spec) Config() Config {
	r := s.Rate
	return Config{
		Seed:       s.Seed,
		EIORate:    0.30 * r,
		EAgainRate: 0.15 * r,
		TornRate:   0.10 * r,
		StaleRate:  0.20 * r,
		FlapRate:   0.05 * r,
		FlapReads:  3,
		StickyFrac: 0.01,
		ResetRate:  0.10 * r,
		JitterUJ:   50_000, // 50 mJ — ~0.05% of a one-second 100 W delta
	}
}

// Injected error values. Both transient kinds wrap pseudofs.ErrTransient;
// flap errors wrap pseudofs.ErrDenied so a flapped path is
// indistinguishable from a genuinely masked one on a single read — which
// is exactly the ambiguity the detector's quorum protocol exists to
// resolve.
var (
	ErrIO    = fmt.Errorf("%w: injected EIO", pseudofs.ErrTransient)
	ErrAgain = fmt.Errorf("%w: injected EAGAIN", pseudofs.ErrTransient)
	errFlap  = fmt.Errorf("%w: injected mask flap", pseudofs.ErrDenied)
)

// Split derives a child seed from (seed, kind, name) via FNV-64a. Every
// independent fault stream — one per path, per counter key, per host —
// gets its own Split seed, which is what makes fault sequences independent
// of cross-stream interleaving.
func Split(seed int64, kind, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, kind, name)
	return int64(h.Sum64())
}

// pathState is the per-path fault stream: its RNG plus latched state.
type pathState struct {
	rng      *fastrand.Rand
	sticky   bool   // latched EIO
	flapLeft int    // remaining denied reads in the current flap episode
	last     string // previous full render, for stale reads
	haveLast bool
}

// Injector perturbs Mount reads. It implements pseudofs.Injector. Safe for
// concurrent use; per-path fault sequences do not depend on how reads of
// *different* paths interleave.
type Injector struct {
	cfg   Config
	mu    sync.Mutex
	paths map[string]*pathState
}

// NewInjector returns an injector drawing faults from cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, paths: make(map[string]*pathState)}
}

func (in *Injector) state(path string) *pathState {
	st, ok := in.paths[path]
	if !ok {
		st = &pathState{rng: fastrand.New(Split(in.cfg.Seed, "fs", path))}
		in.paths[path] = st
	}
	return st
}

// Read implements pseudofs.Injector: it decides this read's fate from the
// path's own fault stream, then either fails, serves stale/torn content,
// or performs the genuine read (caching the render for future stale
// serves).
func (in *Injector) Read(path string, read func() (string, error)) (string, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.state(path)

	if st.sticky {
		return "", fmt.Errorf("%w (sticky): %s", ErrIO, path)
	}
	if st.flapLeft > 0 {
		st.flapLeft--
		return "", fmt.Errorf("%w: %s", errFlap, path)
	}

	// One roll decides the read's fate via a subtractive threshold walk.
	p := st.rng.Float64()
	if p -= in.cfg.EIORate; p < 0 {
		if st.rng.Float64() < in.cfg.StickyFrac {
			st.sticky = true
		}
		return "", fmt.Errorf("%w: %s", ErrIO, path)
	}
	if p -= in.cfg.EAgainRate; p < 0 {
		return "", fmt.Errorf("%w: %s", ErrAgain, path)
	}
	if p -= in.cfg.FlapRate; p < 0 {
		st.flapLeft = in.cfg.FlapReads - 1
		return "", fmt.Errorf("%w: %s", errFlap, path)
	}
	if p -= in.cfg.StaleRate; p < 0 {
		if st.haveLast {
			return st.last, nil
		}
		// Nothing cached yet: degrade to a clean read.
		return st.clean(read)
	}
	if p -= in.cfg.TornRate; p < 0 {
		content, err := read()
		if err != nil {
			return content, err
		}
		// Cache the *full* render (the file's true content did not
		// change; only this read was torn), return a truncated prefix.
		st.last, st.haveLast = content, true
		if len(content) > 1 {
			cut := 1 + st.rng.Intn(len(content)-1)
			return content[:cut], nil
		}
		return content, nil
	}
	return st.clean(read)
}

// clean performs the genuine read and caches a successful render.
func (st *pathState) clean(read func() (string, error)) (string, error) {
	content, err := read()
	if err != nil {
		return content, err
	}
	st.last, st.haveLast = content, true
	return content, nil
}

// counterState is one counter key's fault stream: its RNG plus the base
// the (virtual) counter restarted from at its most recent injected reset.
type counterState struct {
	rng  *fastrand.Rand
	base uint64
}

// Counters perturbs wrapping energy-counter observations: injected
// resets-to-zero plus floor quantization. Keys identify independent
// counters ("<host>/energy/package", a training-kernel domain, …); each
// key's stream is interleaving-independent, like Injector paths.
type Counters struct {
	cfg  Config
	mu   sync.Mutex
	keys map[string]*counterState
}

// NewCounters returns a counter perturber drawing from cfg.
func NewCounters(cfg Config) *Counters {
	return &Counters{cfg: cfg, keys: make(map[string]*counterState)}
}

// Observe maps a raw counter reading to the perturbed reading a consumer
// sees. An injected reset moves the base to the current raw value, so the
// observed counter restarts from zero — exactly the cur << prev transition
// power.CounterDeltaKind classifies as DeltaReset. Between resets the
// observed value advances monotonically (modulo genuine wraps), floored to
// the configured quantum.
func (c *Counters) Observe(key string, raw, maxRange uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.keys[key]
	if !ok {
		st = &counterState{rng: fastrand.New(Split(c.cfg.Seed, "ctr", key))}
		c.keys[key] = st
	}
	if st.rng.Float64() < c.cfg.ResetRate {
		st.base = raw // the counter restarts from zero, here, now
	}
	v := raw
	if maxRange > 0 {
		v = (raw + maxRange - st.base%maxRange) % maxRange
	} else if raw >= st.base {
		v = raw - st.base
	}
	if q := c.cfg.JitterUJ; q > 0 {
		v -= v % q
	}
	return v
}

// Energy wraps an EnergyProvider with counter chaos. It stacks on top of
// whatever provider is installed — raw host counters or the defended
// powerns provider — so faults perturb exactly what a tenant would read.
type Energy struct {
	inner    pseudofs.EnergyProvider
	ctr      *Counters
	salt     string
	maxRange uint64
}

// NewEnergy wraps inner; salt namespaces this host's counter keys.
func NewEnergy(inner pseudofs.EnergyProvider, ctr *Counters, salt string, maxRange uint64) *Energy {
	return &Energy{inner: inner, ctr: ctr, salt: salt, maxRange: maxRange}
}

// EnergyUJ implements pseudofs.EnergyProvider.
func (e *Energy) EnergyUJ(v pseudofs.View, d power.Domain) (uint64, error) {
	raw, err := e.inner.EnergyUJ(v, d)
	if err != nil {
		return 0, err
	}
	return e.ctr.Observe(e.salt+"/energy/"+d.String(), raw, e.maxRange), nil
}

// dtsState is one core sensor's fault stream.
type dtsState struct {
	rng  *fastrand.Rand
	last float64
	have bool
}

// Thermal wraps a ThermalProvider with sensor chaos: 1 °C floor
// quantization (real DTS resolution) and occasional stuck readings that
// repeat the previous value. Streams are per-core so read interleavings
// across cores cannot perturb each other.
type Thermal struct {
	inner pseudofs.ThermalProvider
	cfg   Config
	salt  string
	mu    sync.Mutex
	cores map[int]*dtsState
}

// NewThermal wraps inner; salt namespaces this host's sensor streams.
func NewThermal(inner pseudofs.ThermalProvider, cfg Config, salt string) *Thermal {
	return &Thermal{inner: inner, cfg: cfg, salt: salt, cores: make(map[int]*dtsState)}
}

// CoreTempC implements pseudofs.ThermalProvider.
func (t *Thermal) CoreTempC(v pseudofs.View, core int) (float64, error) {
	cur, err := t.inner.CoreTempC(v, core)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.cores[core]
	if !ok {
		seed := Split(t.cfg.Seed, "dts", fmt.Sprintf("%s/%d", t.salt, core))
		st = &dtsState{rng: fastrand.New(seed)}
		t.cores[core] = st
	}
	if st.have && st.rng.Float64() < t.cfg.ResetRate {
		return st.last, nil // stuck sensor: repeat the previous reading
	}
	q := math.Floor(cur) // 1 °C DTS quantization
	st.last, st.have = q, true
	return q, nil
}

// WrapRawSource wraps a raw per-domain counter source (e.g. the powerns
// calibration loop's direct meter reads) with counter chaos, keyed under
// salt.
func WrapRawSource(read func(power.Domain) uint64, ctr *Counters, salt string, maxRange uint64) func(power.Domain) uint64 {
	return func(d power.Domain) uint64 {
		return ctr.Observe(salt+"/"+d.String(), read(d), maxRange)
	}
}

// Install arms one host's pseudo-filesystem with the full fault taxonomy:
// a read injector plus chaotic energy and thermal providers stacked on the
// currently installed ones. hostSalt (typically the hostname) decorrelates
// fault streams across hosts sharing a seed. A disabled spec is a no-op.
// Call Install *after* any defended provider (powerns) is installed so the
// faults perturb what the tenant actually reads.
func Install(fs *pseudofs.FS, spec Spec, hostSalt string) *Injector {
	if !spec.Enabled() {
		return nil
	}
	cfg := spec.Config()
	cfg.Seed = Split(cfg.Seed, "host", hostSalt)
	inj := NewInjector(cfg)
	fs.SetInjector(inj)
	ctr := NewCounters(cfg)
	maxR := fs.Kernel().Meter().MaxEnergyRangeUJ()
	fs.SetEnergyProvider(NewEnergy(fs.EnergyProvider(), ctr, hostSalt, maxR))
	fs.SetThermalProvider(NewThermal(fs.ThermalProvider(), cfg, hostSalt))
	return inj
}
