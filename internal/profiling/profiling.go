// Package profiling wires the standard -cpuprofile/-memprofile flag pair
// into the repo's commands, the way `go test` exposes them. The hot paths
// this repo optimizes (the shard tick phase, the append-render path, the
// attacker sampling loop) were found and verified with exactly these
// profiles; `make profile` runs Fig. 3 under them and prints the top-10.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered on a FlagSet.
type Flags struct {
	cpuPath *string
	memPath *string
	cpuFile *os.File
}

// Register adds -cpuprofile and -memprofile to fs and returns the handle
// used to start/stop collection around the command's work.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpuPath: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		memPath: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling if -cpuprofile was given. It must be paired
// with Stop (defer it immediately).
func (f *Flags) Start() error {
	if *f.cpuPath == "" {
		return nil
	}
	out, err := os.Create(*f.cpuPath)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(out); err != nil {
		out.Close()
		return fmt.Errorf("profiling: start CPU profile: %w", err)
	}
	f.cpuFile = out
	return nil
}

// Stop ends CPU profiling and, if -memprofile was given, garbage-collects
// once (so the heap profile reflects live objects, not retired garbage —
// the allocs space is recorded regardless) and writes the heap profile.
// Errors are reported, not fatal: a failed profile write must not turn a
// successful experiment run into a failure.
func (f *Flags) Stop(errw func(format string, args ...any)) {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			errw("profiling: close CPU profile: %v\n", err)
		}
		f.cpuFile = nil
	}
	if *f.memPath != "" {
		out, err := os.Create(*f.memPath)
		if err != nil {
			errw("profiling: %v\n", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(out); err != nil {
			errw("profiling: write heap profile: %v\n", err)
		}
		if err := out.Close(); err != nil {
			errw("profiling: close heap profile: %v\n", err)
		}
	}
}
