package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkTable1LeakScan-8   	       1	13600000 ns/op	  123456 B/op	     789 allocs/op
BenchmarkFig3Sweep-8        	       1	4450000000 ns/op	0.0312 xi/op
BenchmarkNoSuffix 	       2	500 ns/op
PASS
ok  	repro	18.201s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if rep.Pkg != "repro" || !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("metadata = %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %+v; want 3", rep.Results)
	}
	r0 := rep.Results[0]
	if r0.Name != "BenchmarkTable1LeakScan" || r0.Procs != 8 || r0.Iterations != 1 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.NsPerOp != 13600000 || r0.Extra["B/op"] != 123456 || r0.Extra["allocs/op"] != 789 {
		t.Fatalf("r0 metrics = %+v", r0)
	}
	if r1 := rep.Results[1]; r1.Extra["xi/op"] != 0.0312 {
		t.Fatalf("custom metric lost: %+v", r1)
	}
	if r2 := rep.Results[2]; r2.Name != "BenchmarkNoSuffix" || r2.Procs != 0 {
		t.Fatalf("suffix-less name mangled: %+v", r2)
	}
}

func TestParseRejectsEmptyRuns(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok repro 0.01s\n")); err == nil {
		t.Fatal("empty bench run accepted; want an error")
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var errb bytes.Buffer
	if code := run([]string{"-o", out}, strings.NewReader(sample), &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, raw)
	}
	if len(rep.Results) != 3 || rep.GoVersion == "" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunBadFlag(t *testing.T) {
	var errb bytes.Buffer
	if code := run([]string{"-nope"}, strings.NewReader(sample), &errb); code != 2 {
		t.Fatalf("exit = %d; want 2", code)
	}
}
