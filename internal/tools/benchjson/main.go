// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark report, so CI can archive machine-readable
// numbers next to the human-readable README table.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x . | go run ./internal/tools/benchjson -o BENCH_PR3.json
//
// Lines that are not benchmark results (the goos/goarch/pkg preamble,
// PASS/ok trailers) are captured as metadata or skipped; a run with zero
// benchmark lines is an error, because an empty report silently archived
// is worse than a failed CI step.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line in structured form.
type Result struct {
	// Name is the benchmark's name with the -P GOMAXPROCS suffix split off
	// (BenchmarkTable1LeakScan-8 → BenchmarkTable1LeakScan, procs 8).
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	// Extra holds every additional "<value> <unit>" pair on the line
	// (B/op, allocs/op, and any custom ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the whole document written to -o.
type Report struct {
	GoVersion string   `json:"go_version"`
	Goos      string   `json:"goos"`
	Goarch    string   `json:"goarch"`
	Pkg       string   `json:"pkg,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Results   []Result `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

func run(args []string, stdin io.Reader, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, err := parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return 0
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// parse consumes `go test -bench` output and builds the report.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{
		GoVersion: runtime.Version(),
		Goos:      runtime.GOOS,
		Goarch:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

// parseBenchLine splits "BenchmarkFoo-8  3  123 ns/op  45 B/op ..." into a
// Result. Returns ok == false for lines that merely start with the word
// Benchmark (e.g. a wrapped name with no fields).
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	res := Result{Name: fields[0], Extra: map[string]float64{}}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	// The remainder is "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			res.NsPerOp = v
		} else {
			res.Extra[fields[i+1]] = v
		}
	}
	if len(res.Extra) == 0 {
		res.Extra = nil
	}
	return res, true
}
