// Command benchguard is the CI benchmark-regression gate: it reads fresh
// `go test -bench -benchmem` text from stdin, extracts each gated
// benchmark's metric, and compares it against the committed JSON baseline
// (the BENCH_PR8.json archived by `make bench-json`). A gate fails when
// the fresh value exceeds baseline × (1 + max-regress).
//
// Gates are declared with the repeatable -gate flag, "bench:metric:frac":
//
//	{ go test -run '^$' -bench '^BenchmarkFig3Sweep$' -benchtime=1x -benchmem . &&
//	  go test -run '^$' -bench '^BenchmarkV1ResultsHit$' -benchtime=200000x -benchmem . ; } |
//	  go run ./internal/tools/benchguard -baseline BENCH_PR8.json \
//	    -gate 'BenchmarkFig3Sweep:allocs/op:0.10' \
//	    -gate 'BenchmarkV1ResultsHit:allocs/op:0' \
//	    -gate 'BenchmarkServingLoad:p99-ns:0.50'
//
// A frac of 0 is the strictest gate: any increase over baseline fails —
// the shape of a zero-allocation contract. The legacy single-gate flags
// (-bench/-metric/-max-regress) remain as shorthand for one -gate.
//
// Improvements (fresh < baseline) always pass — the gate is one-sided, so
// it never blocks a PR for being faster; refresh the baseline with
// `make bench-json` when an optimization lands.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// report mirrors the subset of internal/tools/benchjson's schema the guard
// needs.
type report struct {
	Results []struct {
		Name    string             `json:"name"`
		NsPerOp float64            `json:"ns_per_op"`
		Extra   map[string]float64 `json:"extra"`
	} `json:"results"`
}

// gate is one benchmark/metric regression bound.
type gate struct {
	bench, metric string
	maxRegress    float64
}

// gateFlags collects repeated -gate values.
type gateFlags []gate

func (g *gateFlags) String() string {
	parts := make([]string, len(*g))
	for i, x := range *g {
		parts[i] = fmt.Sprintf("%s:%s:%g", x.bench, x.metric, x.maxRegress)
	}
	return strings.Join(parts, ",")
}

// Set parses "bench:metric:frac". The metric may itself contain no colon
// (allocs/op, ns/op, p99-ns all qualify), so splitting on the first and
// last colon is unambiguous.
func (g *gateFlags) Set(s string) error {
	first := strings.Index(s, ":")
	last := strings.LastIndex(s, ":")
	if first < 0 || first == last {
		return fmt.Errorf("gate %q: want bench:metric:max-regress", s)
	}
	frac, err := strconv.ParseFloat(s[last+1:], 64)
	if err != nil || frac < 0 {
		return fmt.Errorf("gate %q: max-regress must be a non-negative number", s)
	}
	*g = append(*g, gate{bench: s[:first], metric: s[first+1 : last], maxRegress: frac})
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "committed benchjson report to guard against")
	var gates gateFlags
	fs.Var(&gates, "gate", `repeatable gate "bench:metric:max-regress" (e.g. "BenchmarkV1ResultsHit:allocs/op:0")`)
	bench := fs.String("bench", "", "legacy single-gate benchmark name (without the -P procs suffix)")
	metric := fs.String("metric", "allocs/op", `legacy single-gate metric ("ns/op" or an extra unit like "allocs/op")`)
	maxRegress := fs.Float64("max-regress", 0.10, "legacy single-gate allowed fractional regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "benchguard: %v\n", err)
		return 1
	}
	if *bench != "" {
		gates = append(gates, gate{bench: *bench, metric: *metric, maxRegress: *maxRegress})
	}
	if *baselinePath == "" || len(gates) == 0 {
		return fail(fmt.Errorf("-baseline and at least one -gate (or -bench) are required"))
	}

	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		return fail(err)
	}
	fresh, err := parseBenchOutput(stdin)
	if err != nil {
		return fail(err)
	}

	code := 0
	for _, g := range gates {
		bm, ok := baseline[g.bench]
		if !ok {
			return fail(fmt.Errorf("%s: no result named %s", *baselinePath, g.bench))
		}
		base, ok := bm[g.metric]
		if !ok {
			return fail(fmt.Errorf("%s: %s has no %q metric", *baselinePath, g.bench, g.metric))
		}
		freshV, ok := fresh[g.bench][g.metric]
		if !ok {
			return fail(fmt.Errorf("stdin has no %s for %s (did you pass -benchmem and run the benchmark?)", g.metric, g.bench))
		}
		limit := base * (1 + g.maxRegress)
		verdict := "ok"
		if freshV > limit {
			verdict = "REGRESSION"
			code = 1
			fmt.Fprintf(stderr, "benchguard: %s %s regressed to %.0f over the committed baseline %.0f (max +%.0f%%)\n",
				g.bench, g.metric, freshV, base, g.maxRegress*100)
		}
		fmt.Fprintf(stdout, "benchguard %s %s: baseline=%.0f fresh=%.0f limit=%.0f (+%.0f%%) → %s\n",
			g.bench, g.metric, base, freshV, limit, g.maxRegress*100, verdict)
	}
	return code
}

// loadBaseline indexes the committed JSON report as bench → metric → value.
func loadBaseline(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		m := map[string]float64{"ns/op": r.NsPerOp}
		for k, v := range r.Extra {
			m[k] = v
		}
		out[r.Name] = m
	}
	return out, nil
}

// parseBenchOutput scans `go test -bench` text into bench → metric →
// value (benchmark names lose their -P GOMAXPROCS suffix).
func parseBenchOutput(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		m := out[name]
		if m == nil {
			m = make(map[string]float64)
			out[name] = m
		}
		// fields: name iterations v1 unit1 v2 unit2 …
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q %s: %w", fields[i], fields[i+1], err)
			}
			m[fields[i+1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
