// Command benchguard is the CI allocation-regression gate: it reads fresh
// `go test -bench -benchmem` text from stdin, finds one benchmark's value
// for one metric, and compares it against the committed JSON baseline
// (the BENCH_PR5.json archived by `make bench-json`). If the fresh value
// exceeds baseline × (1 + -max-regress) the gate fails.
//
// Usage (see `make bench-guard`):
//
//	go test -run '^$' -bench '^BenchmarkFig3Sweep$' -benchtime=1x -benchmem . |
//	  go run ./internal/tools/benchguard -baseline BENCH_PR5.json \
//	    -bench BenchmarkFig3Sweep -metric allocs/op -max-regress 0.10
//
// Improvements (fresh < baseline) always pass — the gate is one-sided, so
// it never blocks a PR for being faster; refresh the baseline with
// `make bench-json` when an optimization lands.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// report mirrors the subset of internal/tools/benchjson's schema the guard
// needs.
type report struct {
	Results []struct {
		Name    string             `json:"name"`
		NsPerOp float64            `json:"ns_per_op"`
		Extra   map[string]float64 `json:"extra"`
	} `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "committed benchjson report to guard against")
	bench := fs.String("bench", "", "benchmark name (without the -P procs suffix)")
	metric := fs.String("metric", "allocs/op", `metric to compare ("ns/op" or an extra unit like "allocs/op")`)
	maxRegress := fs.Float64("max-regress", 0.10, "allowed fractional regression over baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "benchguard: %v\n", err)
		return 1
	}
	if *baselinePath == "" || *bench == "" {
		return fail(fmt.Errorf("-baseline and -bench are required"))
	}

	base, err := baselineValue(*baselinePath, *bench, *metric)
	if err != nil {
		return fail(err)
	}
	fresh, err := freshValue(stdin, *bench, *metric)
	if err != nil {
		return fail(err)
	}

	limit := base * (1 + *maxRegress)
	verdict := "ok"
	code := 0
	if fresh > limit {
		verdict = "REGRESSION"
		code = 1
	}
	fmt.Fprintf(stdout, "benchguard %s %s: baseline=%.0f fresh=%.0f limit=%.0f (+%.0f%%) → %s\n",
		*bench, *metric, base, fresh, limit, *maxRegress*100, verdict)
	if code != 0 {
		fmt.Fprintf(stderr, "benchguard: %s %s regressed %.1f%% over the committed baseline (max %.0f%%)\n",
			*bench, *metric, (fresh/base-1)*100, *maxRegress*100)
	}
	return code
}

// baselineValue pulls the metric for bench out of the committed JSON
// report.
func baselineValue(path, bench, metric string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, r := range rep.Results {
		if r.Name != bench {
			continue
		}
		if metric == "ns/op" {
			return r.NsPerOp, nil
		}
		if v, ok := r.Extra[metric]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("%s: %s has no %q metric", path, bench, metric)
	}
	return 0, fmt.Errorf("%s: no result named %s", path, bench)
}

// freshValue scans `go test -bench` text for the benchmark's line (its
// name carries the -P GOMAXPROCS suffix) and extracts the metric's value.
func freshValue(r io.Reader, bench, metric string) (float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		if name != bench {
			continue
		}
		// fields: name iterations v1 unit1 v2 unit2 …
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == metric {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, fmt.Errorf("parse %q %s: %w", fields[i], metric, err)
				}
				return v, nil
			}
		}
		return 0, fmt.Errorf("benchmark line for %s has no %q column (did you pass -benchmem?)", bench, metric)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("no benchmark line for %s on stdin", bench)
}
