package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "results": [
    {"name": "BenchmarkFig3Sweep", "ns_per_op": 4000000000,
     "extra": {"B/op": 294644440, "allocs/op": 1000000}}
  ]
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGuard(t *testing.T, path, benchLine string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run([]string{
		"-baseline", path, "-bench", "BenchmarkFig3Sweep",
		"-metric", "allocs/op", "-max-regress", "0.10",
	}, strings.NewReader(benchLine), &out, &errb)
	return code, out.String(), errb.String()
}

func TestGuardPassesWithinBudget(t *testing.T) {
	path := writeBaseline(t)
	code, out, _ := runGuard(t, path,
		"BenchmarkFig3Sweep-8   1  3900000000 ns/op  290000000 B/op  1050000 allocs/op\nPASS\n")
	if code != 0 {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("verdict missing from %q", out)
	}
}

func TestGuardPassesOnImprovement(t *testing.T) {
	path := writeBaseline(t)
	code, _, _ := runGuard(t, path,
		"BenchmarkFig3Sweep-8   1  3900000000 ns/op  290000000 B/op  400000 allocs/op\n")
	if code != 0 {
		t.Fatalf("improvement must pass, code=%d", code)
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	path := writeBaseline(t)
	code, out, errs := runGuard(t, path,
		"BenchmarkFig3Sweep-8   1  3900000000 ns/op  290000000 B/op  1200000 allocs/op\n")
	if code != 1 {
		t.Fatalf("20%% regression must fail, code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(errs, "regressed") {
		t.Fatalf("diagnostics missing: out=%q err=%q", out, errs)
	}
}

func TestGuardRejectsMissingMetricColumn(t *testing.T) {
	path := writeBaseline(t)
	code, _, errs := runGuard(t, path,
		"BenchmarkFig3Sweep-8   1  3900000000 ns/op\n")
	if code != 1 || !strings.Contains(errs, "-benchmem") {
		t.Fatalf("missing -benchmem hint: code=%d err=%q", code, errs)
	}
}

func TestGuardRejectsUnknownBenchmark(t *testing.T) {
	path := writeBaseline(t)
	var out, errb strings.Builder
	code := run([]string{"-baseline", path, "-bench", "BenchmarkNope"},
		strings.NewReader("BenchmarkFig3Sweep-8 1 1 ns/op 1 B/op 1 allocs/op\n"), &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "no result named") {
		t.Fatalf("code=%d err=%q", code, errb.String())
	}
}
