package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "results": [
    {"name": "BenchmarkFig3Sweep", "ns_per_op": 4000000000,
     "extra": {"B/op": 294644440, "allocs/op": 1000000}}
  ]
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGuard(t *testing.T, path, benchLine string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run([]string{
		"-baseline", path, "-bench", "BenchmarkFig3Sweep",
		"-metric", "allocs/op", "-max-regress", "0.10",
	}, strings.NewReader(benchLine), &out, &errb)
	return code, out.String(), errb.String()
}

func TestGuardPassesWithinBudget(t *testing.T) {
	path := writeBaseline(t)
	code, out, _ := runGuard(t, path,
		"BenchmarkFig3Sweep-8   1  3900000000 ns/op  290000000 B/op  1050000 allocs/op\nPASS\n")
	if code != 0 {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("verdict missing from %q", out)
	}
}

func TestGuardPassesOnImprovement(t *testing.T) {
	path := writeBaseline(t)
	code, _, _ := runGuard(t, path,
		"BenchmarkFig3Sweep-8   1  3900000000 ns/op  290000000 B/op  400000 allocs/op\n")
	if code != 0 {
		t.Fatalf("improvement must pass, code=%d", code)
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	path := writeBaseline(t)
	code, out, errs := runGuard(t, path,
		"BenchmarkFig3Sweep-8   1  3900000000 ns/op  290000000 B/op  1200000 allocs/op\n")
	if code != 1 {
		t.Fatalf("20%% regression must fail, code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(errs, "regressed") {
		t.Fatalf("diagnostics missing: out=%q err=%q", out, errs)
	}
}

func TestGuardRejectsMissingMetricColumn(t *testing.T) {
	path := writeBaseline(t)
	code, _, errs := runGuard(t, path,
		"BenchmarkFig3Sweep-8   1  3900000000 ns/op\n")
	if code != 1 || !strings.Contains(errs, "-benchmem") {
		t.Fatalf("missing -benchmem hint: code=%d err=%q", code, errs)
	}
}

func TestGuardRejectsUnknownBenchmark(t *testing.T) {
	path := writeBaseline(t)
	var out, errb strings.Builder
	code := run([]string{"-baseline", path, "-bench", "BenchmarkNope"},
		strings.NewReader("BenchmarkFig3Sweep-8 1 1 ns/op 1 B/op 1 allocs/op\n"), &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "no result named") {
		t.Fatalf("code=%d err=%q", code, errb.String())
	}
}

const multiBaselineJSON = `{
  "results": [
    {"name": "BenchmarkFig3Sweep", "ns_per_op": 4000000000,
     "extra": {"allocs/op": 1000000}},
    {"name": "BenchmarkV1ResultsHit", "ns_per_op": 300,
     "extra": {"allocs/op": 0}},
    {"name": "BenchmarkServingLoad", "ns_per_op": 500,
     "extra": {"p99-ns": 900, "req/s": 2000000}}
  ]
}`

func writeMultiBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(multiBaselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const multiFresh = "BenchmarkFig3Sweep-8   1  3900000000 ns/op  1050000 allocs/op\n" +
	"BenchmarkV1ResultsHit-8   200000  310 ns/op  0 B/op  0 allocs/op\n" +
	"BenchmarkServingLoad-8   200000  510 ns/op  950 p99-ns  1900000 req/s  0 allocs/op\n" +
	"PASS\n"

// TestGuardMultiGate: several -gate flags evaluate against one stdin pass.
func TestGuardMultiGate(t *testing.T) {
	path := writeMultiBaseline(t)
	var out, errb strings.Builder
	code := run([]string{
		"-baseline", path,
		"-gate", "BenchmarkFig3Sweep:allocs/op:0.10",
		"-gate", "BenchmarkV1ResultsHit:allocs/op:0",
		"-gate", "BenchmarkServingLoad:p99-ns:0.50",
	}, strings.NewReader(multiFresh), &out, &errb)
	if code != 0 {
		t.Fatalf("code=%d out=%q err=%q", code, out.String(), errb.String())
	}
	if got := strings.Count(out.String(), "→ ok"); got != 3 {
		t.Fatalf("want 3 ok verdicts, got %d in %q", got, out.String())
	}
}

// TestGuardZeroAllocGateFails: a max-regress of 0 on a 0-alloc baseline
// fails on the first allocation.
func TestGuardZeroAllocGateFails(t *testing.T) {
	path := writeMultiBaseline(t)
	fresh := strings.Replace(multiFresh, "310 ns/op  0 B/op  0 allocs/op", "310 ns/op  16 B/op  1 allocs/op", 1)
	var out, errb strings.Builder
	code := run([]string{
		"-baseline", path,
		"-gate", "BenchmarkV1ResultsHit:allocs/op:0",
	}, strings.NewReader(fresh), &out, &errb)
	if code != 1 || !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("1-alloc regression must fail: code=%d out=%q", code, out.String())
	}
}

// TestGuardBadGateSyntax: malformed -gate values are flag errors.
func TestGuardBadGateSyntax(t *testing.T) {
	for _, bad := range []string{"NoColons", "OnlyOne:colon", "A:B:notanumber", "A:B:-0.5"} {
		var out, errb strings.Builder
		code := run([]string{"-baseline", "x.json", "-gate", bad},
			strings.NewReader(""), &out, &errb)
		if code != 2 {
			t.Errorf("gate %q: code=%d, want 2 (flag parse error)", bad, code)
		}
	}
}
