package pseudofs

import (
	"strings"
	"testing"
	"testing/quick"
)

// sanitizeSegment maps arbitrary fuzz input into a path segment without
// separators or wildcards.
func sanitizeSegment(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}

func TestPropertyExactPatternMatchesItself(t *testing.T) {
	f := func(a, b, c string) bool {
		path := "/" + sanitizeSegment(a) + "/" + sanitizeSegment(b) + "/" + sanitizeSegment(c)
		return matchPattern(path, path)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubtreePatternMatchesDescendants(t *testing.T) {
	f := func(root, child, grandchild string) bool {
		base := "/" + sanitizeSegment(root)
		pat := base + "/**"
		return matchPattern(pat, base) &&
			matchPattern(pat, base+"/"+sanitizeSegment(child)) &&
			matchPattern(pat, base+"/"+sanitizeSegment(child)+"/"+sanitizeSegment(grandchild)) &&
			!matchPattern(pat, base+"sibling")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStarMatchesAnySegment(t *testing.T) {
	f := func(a, b string) bool {
		pat := "/proc/" + sanitizeSegment(a) + "/*"
		path := "/proc/" + sanitizeSegment(a) + "/" + sanitizeSegment(b)
		return matchPattern(pat, path) && !matchPattern(pat, path+"/deeper")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDenyRuleAlwaysDenies(t *testing.T) {
	// For any path built from fuzz segments, a policy whose first rule
	// denies the whole tree must deny every lookup.
	pol := Policy{Rules: []Rule{{Pattern: "/proc/**", Do: Deny}}}
	f := func(a, b string) bool {
		path := "/proc/" + sanitizeSegment(a) + "/" + sanitizeSegment(b)
		r, ok := pol.Lookup(path)
		return ok && r.Do == Deny
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFirstMatchShadowsLaterRules(t *testing.T) {
	f := func(a string) bool {
		seg := sanitizeSegment(a)
		pol := Policy{Rules: []Rule{
			{Pattern: "/x/" + seg, Do: Allow},
			{Pattern: "/x/**", Do: Deny},
		}}
		r1, ok1 := pol.Lookup("/x/" + seg)
		r2, ok2 := pol.Lookup("/x/" + seg + "0")
		return ok1 && r1.Do == Allow && ok2 && r2.Do == Deny
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
