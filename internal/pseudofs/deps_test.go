package pseudofs

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/perfcount"
)

func depsWorld(t *testing.T) (*kernel.Kernel, *FS, *Mount) {
	t.Helper()
	k := kernel.New(kernel.Options{Hostname: "dep-host", Seed: 21})
	fs := Build(k, DefaultHardware())
	host := NewMount(fs, HostView(k), Policy{})
	return k, fs, host
}

// TestDepCoverage pins the dependency table to the built tree: every
// registered path must carry an explicit tag. A path falling through to
// the depend-on-everything default would silently re-render on every
// mutation — correct but defeating the incremental engine, and usually a
// sign a new pseudo-file was added without declaring its dependencies.
func TestDepCoverage(t *testing.T) {
	_, fs, host := depsWorld(t)
	for _, p := range host.Paths() {
		d := fs.Dep(p)
		if d.Mask == kernel.MaskAll && !d.Volatile {
			t.Errorf("path %s has no dependency tag (falls through to depend-on-everything)", p)
		}
	}
}

func TestPathEpochMovesWithSubsystem(t *testing.T) {
	k, fs, _ := depsWorld(t)

	static := fs.PathEpoch("/proc/version")
	stat := fs.PathEpoch("/proc/stat")
	boot := fs.PathEpoch("/proc/sys/kernel/random/boot_id")

	k.Tick(k.Now()+1, 1) // bumps sched|mem|net|power, not ns

	if got := fs.PathEpoch("/proc/version"); got != static {
		t.Errorf("/proc/version epoch moved on tick: %d -> %d", static, got)
	}
	if got := fs.PathEpoch("/proc/stat"); got <= stat {
		t.Errorf("/proc/stat epoch did not move on tick: %d -> %d", stat, got)
	}
	if got := fs.PathEpoch("/proc/sys/kernel/random/boot_id"); got != boot {
		t.Errorf("boot_id epoch moved on tick: %d -> %d", boot, got)
	}

	k.NewNSSet("tenant", "/docker/t") // bumps ns
	if got := fs.PathEpoch("/proc/sys/kernel/random/boot_id"); got <= boot {
		t.Errorf("boot_id epoch did not move on namespace creation: %d -> %d", boot, got)
	}
}

// TestPathEpochConservative: a path's content must never change while its
// epoch stands still. Render every path, mutate the kernel through every
// out-of-tick mutation path, and re-render: any path whose bytes changed
// must have a moved epoch. (The converse — epochs moving for unchanged
// bytes — is allowed: tags are conservative.)
func TestPathEpochConservative(t *testing.T) {
	k, fs, host := depsWorld(t)
	k.Tick(5, 1)

	type snap struct {
		content string
		err     bool
		epoch   uint64
	}
	take := func() map[string]snap {
		out := make(map[string]snap)
		for _, p := range host.Paths() {
			if fs.Dep(p).Volatile {
				continue // changes every read by design
			}
			c, err := host.Read(p)
			out[p] = snap{content: c, err: err != nil, epoch: fs.PathEpoch(p)}
		}
		return out
	}

	before := take()
	// Every out-of-tick mutation source, plus a tick.
	ns := k.NewNSSet("tenant-x", "/docker/tx")
	tk := k.Spawn("w", ns, "/docker/tx", 1, perfcount.Rates{})
	k.Cgroup("/docker/tx").QuotaCores = 2
	k.AddHostNetDev("veth-x")
	k.AddFileLock(tk, "WRITE", 7)
	k.Tick(k.Now()+3, 1)
	k.Exit(tk.HostPID)
	k.RemoveHostNetDev("veth-x")
	after := take()

	for p, b := range before {
		a := after[p]
		if a.content != b.content || a.err != b.err {
			if a.epoch == b.epoch {
				t.Errorf("%s: content changed but epoch stayed at %d", p, b.epoch)
			}
		}
	}
}

func TestPathEpochMovesOnReplaceAndProviderSwap(t *testing.T) {
	_, fs, _ := depsWorld(t)

	const path = "/proc/uptime"
	before := fs.PathEpoch(path)
	other := fs.PathEpoch("/proc/stat")
	fs.Replace(path, StringHandler(func(v View) (string, error) { return "0.00 0.00\n", nil }))
	if got := fs.PathEpoch(path); got <= before {
		t.Errorf("Replace did not move %s epoch: %d -> %d", path, before, got)
	}
	if got := fs.PathEpoch("/proc/stat"); got != other {
		t.Errorf("Replace of %s moved unrelated /proc/stat epoch: %d -> %d", path, other, got)
	}

	// Provider swaps are FS-wide: every path epoch moves.
	before = fs.PathEpoch("/sys/class/powercap/intel-rapl:0/energy_uj")
	static := fs.PathEpoch("/proc/version")
	fs.SetEnergyProvider(fs.EnergyProvider())
	if got := fs.PathEpoch("/sys/class/powercap/intel-rapl:0/energy_uj"); got <= before {
		t.Errorf("SetEnergyProvider did not move energy_uj epoch: %d -> %d", before, got)
	}
	if got := fs.PathEpoch("/proc/version"); got <= static {
		t.Errorf("SetEnergyProvider did not move FS-wide epochs: %d -> %d", static, got)
	}
}

func TestFSEpochAndFaulty(t *testing.T) {
	k, fs, _ := depsWorld(t)
	if fs.Faulty() {
		t.Fatal("fresh FS reports Faulty")
	}
	before := fs.Epoch()
	k.Tick(k.Now()+1, 1)
	if got := fs.Epoch(); got <= before {
		t.Errorf("FS epoch did not move on tick: %d -> %d", before, got)
	}
}
