// Package pseudofs simulates the memory-based pseudo file systems (procfs
// and sysfs) that the paper identifies as the main user-kernel interface
// left behind by container adaptation.
//
// A FS is a flat map from absolute paths to handler functions. Each handler
// receives the reading View — which namespace set and cgroup the reader
// belongs to — and renders file content from live kernel state. Handlers
// written against the *global* kernel accessors reproduce Linux 4.7's
// missing-namespace-check bugs (the leakage channels of Table I); handlers
// written against the NS-aware accessors model correctly containerized
// files.
//
// Mount combines an FS with a View and a masking Policy, modeling both what
// container runtimes mount read-only into every container and the
// AppArmor-style access restrictions that cloud providers layer on top
// (stage 1 of the paper's defense).
package pseudofs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/kernel"
	"repro/internal/power"
)

// Read errors.
var (
	// ErrNotExist is returned for paths with no file, including files
	// hidden by hardware availability (e.g. RAPL on pre-Sandy-Bridge
	// hosts).
	ErrNotExist = errors.New("pseudofs: no such file")
	// ErrDenied is returned when a masking policy denies the read — the
	// EACCES a tenant sees under an AppArmor deny rule.
	ErrDenied = errors.New("pseudofs: permission denied")
	// ErrTransient marks a read failure that may succeed on retry — the
	// EIO/EAGAIN class of errors real procfs/sysfs reads hit under load.
	// Fault injectors (internal/chaos) wrap their transient errors in it
	// so consumers can distinguish "retry" from "give up" with errors.Is
	// without importing the injector.
	ErrTransient = errors.New("pseudofs: transient read error")
)

// View identifies the execution context performing a read: its namespace
// set and the cgroup its tasks are charged to. The zero View is not valid;
// use HostView or a container's view.
type View struct {
	NS         *kernel.NSSet
	CgroupPath string
}

// IsHost reports whether the view is the host's init context.
func (v View) IsHost() bool { return v.NS == nil || v.NS.IsInit() }

// HostView returns the init-namespace view of the kernel.
func HostView(k *kernel.Kernel) View {
	return View{NS: k.InitNS(), CgroupPath: "/"}
}

// Handler renders one pseudo-file for a given reader.
type Handler func(v View) (string, error)

// EnergyProvider supplies the content of the RAPL energy_uj files. The
// default provider returns the host meter's counters to every reader — the
// leak of Case Study II. The power-based namespace (internal/powerns)
// installs a per-container provider to close it.
type EnergyProvider interface {
	EnergyUJ(v View, d power.Domain) (uint64, error)
}

// ThermalProvider supplies the coretemp temp#_input readings. The default
// returns the physical DTS values to every reader; a thermal namespace
// (the Section VII-B resource the paper calls hard to partition) can
// virtualize them per container.
type ThermalProvider interface {
	// CoreTempC returns the temperature of the given core as seen by the
	// view; core == -1 requests the package (max-of-cores) sensor.
	CoreTempC(v View, core int) (float64, error)
}

// Injector intercepts Mount reads, letting a fault-injection layer
// (internal/chaos) perturb them: fail transiently, tear content, serve a
// stale render, or flap a path between readable and denied. The read
// callback performs the genuine policied read; an injector decides whether
// to invoke it, replace its result, or fail outright. A nil injector on the
// FS is the common case and costs one nil check per read.
type Injector interface {
	Read(path string, read func() (string, error)) (string, error)
}

// FS is one host's pseudo-filesystem tree (both /proc and /sys). Build it
// with Build; read through a Mount.
type FS struct {
	k        *kernel.Kernel
	files    map[string]Handler
	energy   EnergyProvider
	thermal  ThermalProvider
	injector Injector
}

// rawEnergy is the leaky default EnergyProvider.
type rawEnergy struct{ meter *power.Meter }

func (r rawEnergy) EnergyUJ(_ View, d power.Domain) (uint64, error) {
	return r.meter.EnergyUJ(d), nil
}

// rawThermal is the leaky default ThermalProvider: physical sensors for
// everyone.
type rawThermal struct {
	meter *power.Meter
	cores int
}

func (r rawThermal) CoreTempC(_ View, core int) (float64, error) {
	if core < 0 {
		var max float64
		for c := 0; c < r.cores; c++ {
			if t := r.meter.CoreTempC(c); t > max {
				max = t
			}
		}
		return max, nil
	}
	return r.meter.CoreTempC(core), nil
}

// Hardware describes which optional sensor hardware the host has; Table I's
// per-cloud differences partly come from hosts lacking RAPL or DTS support.
type Hardware struct {
	HasRAPL     bool
	HasCoretemp bool
}

// DefaultHardware is a modern host with every sensor the paper uses.
func DefaultHardware() Hardware { return Hardware{HasRAPL: true, HasCoretemp: true} }

// Build constructs the full /proc and /sys tree over the kernel.
func Build(k *kernel.Kernel, hw Hardware) *FS {
	fs := &FS{
		k:       k,
		files:   make(map[string]Handler, 128),
		energy:  rawEnergy{meter: k.Meter()},
		thermal: rawThermal{meter: k.Meter(), cores: k.Options().Cores},
	}
	fs.buildProc()
	fs.buildSys(hw)
	return fs
}

// SetEnergyProvider swaps the RAPL read path; the power-based namespace
// calls this to virtualize energy_uj without changing the interface paths.
func (fs *FS) SetEnergyProvider(p EnergyProvider) { fs.energy = p }

// SetThermalProvider swaps the coretemp read path for a thermal namespace.
func (fs *FS) SetThermalProvider(p ThermalProvider) { fs.thermal = p }

// EnergyProvider returns the currently installed RAPL read path. Chaos
// wrappers use it to stack on top of whatever (raw or defended) provider
// is in force.
func (fs *FS) EnergyProvider() EnergyProvider { return fs.energy }

// ThermalProvider returns the currently installed coretemp read path.
func (fs *FS) ThermalProvider() ThermalProvider { return fs.thermal }

// SetInjector installs a read-path fault injector on every Mount of this
// FS; nil removes it. Install it before handing mounts to consumers — the
// injector is consulted on every subsequent Mount.Read.
func (fs *FS) SetInjector(i Injector) { fs.injector = i }

// Kernel returns the kernel this FS renders.
func (fs *FS) Kernel() *kernel.Kernel { return fs.k }

// add registers a file handler; it panics on duplicates, which are always
// builder bugs.
func (fs *FS) add(path string, h Handler) {
	if _, dup := fs.files[path]; dup {
		panic(fmt.Sprintf("pseudofs: duplicate file %s", path))
	}
	fs.files[path] = h
}

// Replace swaps the handler of an existing file — how stage-2 namespace
// fixes retrofit leaky handlers with namespace-aware ones without changing
// paths. It panics if the file does not exist (a fix for a non-existent
// channel is always a bug).
func (fs *FS) Replace(path string, h Handler) {
	if _, ok := fs.files[path]; !ok {
		panic(fmt.Sprintf("pseudofs: Replace of unknown file %s", path))
	}
	fs.files[path] = h
}

// static registers a file whose content ignores the reader entirely.
func (fs *FS) static(path, content string) {
	fs.add(path, func(View) (string, error) { return content, nil })
}

// Paths returns every file path in sorted order.
func (fs *FS) Paths() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// readFile renders a file for a view, without masking.
func (fs *FS) readFile(path string, v View) (string, error) {
	h, ok := fs.files[path]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return h(v)
}

// Action is what a masking rule does to a matched path.
type Action int

// Masking actions. Deny models an AppArmor read denial; Empty models
// bind-mounting an empty file over the channel (content hidden, read
// succeeds); Filter rewrites content through the rule's Transform (how the
// paper's CC5 shows tenants only their own cores and memory — the ◐
// entries of Table I); Allow short-circuits later rules.
const (
	Allow Action = iota
	Deny
	Empty
	Filter
)

// Rule matches paths against a pattern. Patterns are absolute paths where a
// '*' matches within one path segment and a trailing "/**" matches the whole
// subtree.
type Rule struct {
	Pattern string
	Do      Action
	// Transform rewrites matched content when Do == Filter; a nil
	// Transform filters to empty.
	Transform func(content string) string
}

// Policy is an ordered rule list; the first matching rule wins and the
// default is Allow.
type Policy struct {
	Name  string
	Rules []Rule
}

// Lookup returns the first matching rule for a path; ok is false when no
// rule matches (default Allow).
func (p Policy) Lookup(path string) (Rule, bool) {
	for _, r := range p.Rules {
		if matchPattern(r.Pattern, path) {
			return r, true
		}
	}
	return Rule{}, false
}

// Match reports whether path matches the rule pattern language ('*' within
// a segment, trailing "/**" for subtrees). The leakage detector uses it to
// map concrete file paths onto registry channels.
func Match(pattern, path string) bool { return matchPattern(pattern, path) }

// matchPattern implements the limited glob language of Rule.
func matchPattern(pattern, path string) bool {
	if sub, ok := strings.CutSuffix(pattern, "/**"); ok {
		return path == sub || strings.HasPrefix(path, sub+"/")
	}
	ps := strings.Split(pattern, "/")
	xs := strings.Split(path, "/")
	if len(ps) != len(xs) {
		return false
	}
	for i := range ps {
		if !matchSegment(ps[i], xs[i]) {
			return false
		}
	}
	return true
}

func matchSegment(pat, seg string) bool {
	// Only '*' wildcards, possibly several per segment.
	parts := strings.Split(pat, "*")
	if len(parts) == 1 {
		return pat == seg
	}
	if !strings.HasPrefix(seg, parts[0]) {
		return false
	}
	seg = seg[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(seg, parts[i])
		if idx < 0 {
			return false
		}
		seg = seg[idx+len(parts[i]):]
	}
	return strings.HasSuffix(seg, parts[len(parts)-1])
}

// Mount is a read-only pseudo-filesystem mount inside one execution
// context: an FS, the reader's View, and the masking Policy in force.
type Mount struct {
	fs     *FS
	view   View
	policy Policy
}

// NewMount mounts fs for the given view under the given policy.
func NewMount(fs *FS, v View, p Policy) *Mount {
	return &Mount{fs: fs, view: v, policy: p}
}

// View returns the mount's reader context.
func (m *Mount) View() View { return m.view }

// Read returns the file content as the mount's view sees it, applying the
// masking policy first. When the FS carries a fault injector, the read is
// routed through it; with no injector the path is byte-identical to the
// direct policied read.
func (m *Mount) Read(path string) (string, error) {
	if inj := m.fs.injector; inj != nil {
		return inj.Read(path, func() (string, error) { return m.readPolicied(path) })
	}
	return m.readPolicied(path)
}

// readPolicied is the genuine read: masking policy first, then the handler.
func (m *Mount) readPolicied(path string) (string, error) {
	rule, matched := m.policy.Lookup(path)
	if matched {
		switch rule.Do {
		case Deny:
			return "", fmt.Errorf("%w: %s", ErrDenied, path)
		case Empty:
			return "", nil
		case Filter:
			content, err := m.fs.readFile(path, m.view)
			if err != nil {
				return "", err
			}
			if rule.Transform == nil {
				return "", nil
			}
			return rule.Transform(content), nil
		}
	}
	return m.fs.readFile(path, m.view)
}

// Paths lists every path present in the underlying FS. Denied files remain
// visible (AppArmor denies reads, not stats), so the detector can tell
// "masked" apart from "absent hardware".
func (m *Mount) Paths() []string { return m.fs.Paths() }
