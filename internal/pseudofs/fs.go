// Package pseudofs simulates the memory-based pseudo file systems (procfs
// and sysfs) that the paper identifies as the main user-kernel interface
// left behind by container adaptation.
//
// A FS is a flat map from absolute paths to handler functions. Each handler
// receives the reading View — which namespace set and cgroup the reader
// belongs to — and renders file content from live kernel state. Handlers
// written against the *global* kernel accessors reproduce Linux 4.7's
// missing-namespace-check bugs (the leakage channels of Table I); handlers
// written against the NS-aware accessors model correctly containerized
// files.
//
// Mount combines an FS with a View and a masking Policy, modeling both what
// container runtimes mount read-only into every container and the
// AppArmor-style access restrictions that cloud providers layer on top
// (stage 1 of the paper's defense).
package pseudofs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/power"
)

// Read errors.
var (
	// ErrNotExist is returned for paths with no file, including files
	// hidden by hardware availability (e.g. RAPL on pre-Sandy-Bridge
	// hosts).
	ErrNotExist = errors.New("pseudofs: no such file")
	// ErrDenied is returned when a masking policy denies the read — the
	// EACCES a tenant sees under an AppArmor deny rule.
	ErrDenied = errors.New("pseudofs: permission denied")
	// ErrTransient marks a read failure that may succeed on retry — the
	// EIO/EAGAIN class of errors real procfs/sysfs reads hit under load.
	// Fault injectors (internal/chaos) wrap their transient errors in it
	// so consumers can distinguish "retry" from "give up" with errors.Is
	// without importing the injector.
	ErrTransient = errors.New("pseudofs: transient read error")
)

// View identifies the execution context performing a read: its namespace
// set and the cgroup its tasks are charged to. The zero View is not valid;
// use HostView or a container's view.
type View struct {
	NS         *kernel.NSSet
	CgroupPath string
}

// IsHost reports whether the view is the host's init context.
func (v View) IsHost() bool { return v.NS == nil || v.NS.IsInit() }

// HostView returns the init-namespace view of the kernel.
func HostView(k *kernel.Kernel) View {
	return View{NS: k.InitNS(), CgroupPath: "/"}
}

// Handler renders one pseudo-file for a given reader by appending the
// content to dst and returning the extended buffer. The append style keeps
// the hot sampling paths (energy counters, cpuacct, per-CPU tables)
// allocation-free: callers own the buffer, handlers never retain it, and
// the scalar helpers in render.go replace the historical fmt.Sprintf
// formatting byte for byte. On error, handlers return dst with any partial
// content unspecified — callers must discard it.
type Handler func(dst []byte, v View) ([]byte, error)

// StringHandler adapts a legacy string-returning renderer to the append
// Handler signature. It keeps one allocation per render (the string), so
// use it only off the hot path — e.g. defense fixes built around
// namespace-aware accessors that were written before the append migration.
func StringHandler(h func(v View) (string, error)) Handler {
	return func(dst []byte, v View) ([]byte, error) {
		s, err := h(v)
		if err != nil {
			return dst, err
		}
		return append(dst, s...), nil
	}
}

// EnergyProvider supplies the content of the RAPL energy_uj files. The
// default provider returns the host meter's counters to every reader — the
// leak of Case Study II. The power-based namespace (internal/powerns)
// installs a per-container provider to close it.
type EnergyProvider interface {
	EnergyUJ(v View, d power.Domain) (uint64, error)
}

// ThermalProvider supplies the coretemp temp#_input readings. The default
// returns the physical DTS values to every reader; a thermal namespace
// (the Section VII-B resource the paper calls hard to partition) can
// virtualize them per container.
type ThermalProvider interface {
	// CoreTempC returns the temperature of the given core as seen by the
	// view; core == -1 requests the package (max-of-cores) sensor.
	CoreTempC(v View, core int) (float64, error)
}

// Injector intercepts Mount reads, letting a fault-injection layer
// (internal/chaos) perturb them: fail transiently, tear content, serve a
// stale render, or flap a path between readable and denied. The read
// callback performs the genuine policied read; an injector decides whether
// to invoke it, replace its result, or fail outright. A nil injector on the
// FS is the common case and costs one nil check per read.
type Injector interface {
	Read(path string, read func() (string, error)) (string, error)
}

// FS is one host's pseudo-filesystem tree (both /proc and /sys). Build it
// with Build; read through a Mount.
type FS struct {
	k        *kernel.Kernel
	files    map[string]Handler
	energy   EnergyProvider
	thermal  ThermalProvider
	injector Injector

	// Source-epoch bookkeeping for the incremental scan engine (deps.go).
	// fsGen counts FS-wide render-path changes (provider/injector swaps);
	// replaceGen counts per-path handler replacements; totalReplaceGen is
	// the sum of replaceGen. All mutations happen at setup/defense-install
	// time on the clock thread, never during concurrent scans.
	fsGen           uint64
	replaceGen      map[string]uint64
	totalReplaceGen uint64

	// deps and sortedPaths are precomputed at Build time: the file set is
	// sealed once Build returns (Replace swaps handlers in place, never
	// adds paths), so the dependency-table scan and the path sort run once
	// per FS instead of once per lookup on the recurring-scan hot path.
	deps        map[string]Dep
	sortedPaths []string

	// renders counts handler invocations (genuine pseudo-file renders).
	// The incremental engine's "zero re-renders on an unmutated kernel"
	// guarantee is asserted against this counter, not inferred.
	renders atomic.Uint64
}

// rawEnergy is the leaky default EnergyProvider.
type rawEnergy struct{ meter *power.Meter }

func (r rawEnergy) EnergyUJ(_ View, d power.Domain) (uint64, error) {
	return r.meter.EnergyUJ(d), nil
}

// rawThermal is the leaky default ThermalProvider: physical sensors for
// everyone.
type rawThermal struct {
	meter *power.Meter
	cores int
}

func (r rawThermal) CoreTempC(_ View, core int) (float64, error) {
	if core < 0 {
		var max float64
		for c := 0; c < r.cores; c++ {
			if t := r.meter.CoreTempC(c); t > max {
				max = t
			}
		}
		return max, nil
	}
	return r.meter.CoreTempC(core), nil
}

// Hardware describes which optional sensor hardware the host has; Table I's
// per-cloud differences partly come from hosts lacking RAPL or DTS support.
type Hardware struct {
	HasRAPL     bool
	HasCoretemp bool
}

// DefaultHardware is a modern host with every sensor the paper uses.
func DefaultHardware() Hardware { return Hardware{HasRAPL: true, HasCoretemp: true} }

// Build constructs the full /proc and /sys tree over the kernel.
func Build(k *kernel.Kernel, hw Hardware) *FS {
	fs := &FS{
		k:          k,
		files:      make(map[string]Handler, 128),
		energy:     rawEnergy{meter: k.Meter()},
		thermal:    rawThermal{meter: k.Meter(), cores: k.Options().Cores},
		replaceGen: make(map[string]uint64),
	}
	fs.buildProc()
	fs.buildSys(hw)
	fs.seal()
	return fs
}

// seal freezes the file set: precomputes the sorted path list and every
// path's dependency tag. Build is the only caller; after it returns, paths
// are never added or removed (Replace swaps handlers in place).
func (fs *FS) seal() {
	fs.sortedPaths = make([]string, 0, len(fs.files))
	fs.deps = make(map[string]Dep, len(fs.files))
	for p := range fs.files {
		fs.sortedPaths = append(fs.sortedPaths, p)
		fs.deps[p] = fs.lookupDep(p)
	}
	sort.Strings(fs.sortedPaths)
}

// SetEnergyProvider swaps the RAPL read path; the power-based namespace
// calls this to virtualize energy_uj without changing the interface paths.
// The swap bumps the FS-wide render generation so cached renders of the
// affected paths are invalidated.
func (fs *FS) SetEnergyProvider(p EnergyProvider) {
	fs.energy = p
	fs.fsGen++
}

// SetThermalProvider swaps the coretemp read path for a thermal namespace.
func (fs *FS) SetThermalProvider(p ThermalProvider) {
	fs.thermal = p
	fs.fsGen++
}

// EnergyProvider returns the currently installed RAPL read path. Chaos
// wrappers use it to stack on top of whatever (raw or defended) provider
// is in force.
func (fs *FS) EnergyProvider() EnergyProvider { return fs.energy }

// ThermalProvider returns the currently installed coretemp read path.
func (fs *FS) ThermalProvider() ThermalProvider { return fs.thermal }

// Injector returns the currently installed fault injector (nil when none).
// The world snapshot machinery uses it to find and rewind a chaos layer.
func (fs *FS) Injector() Injector { return fs.injector }

// SetInjector installs a read-path fault injector on every Mount of this
// FS; nil removes it. Install it before handing mounts to consumers — the
// injector is consulted on every subsequent Mount.Read.
func (fs *FS) SetInjector(i Injector) {
	fs.injector = i
	fs.fsGen++
}

// Kernel returns the kernel this FS renders.
func (fs *FS) Kernel() *kernel.Kernel { return fs.k }

// add registers a file handler; it panics on duplicates, which are always
// builder bugs.
func (fs *FS) add(path string, h Handler) {
	if _, dup := fs.files[path]; dup {
		panic(fmt.Sprintf("pseudofs: duplicate file %s", path))
	}
	fs.files[path] = h
}

// Replace swaps the handler of an existing file — how stage-2 namespace
// fixes retrofit leaky handlers with namespace-aware ones without changing
// paths. It panics if the file does not exist (a fix for a non-existent
// channel is always a bug).
func (fs *FS) Replace(path string, h Handler) {
	if _, ok := fs.files[path]; !ok {
		panic(fmt.Sprintf("pseudofs: Replace of unknown file %s", path))
	}
	fs.files[path] = h
	// Handler identity changed: advance the path's render generation so
	// the incremental engine never serves a pre-fix render post-fix.
	fs.replaceGen[path]++
	fs.totalReplaceGen++
}

// static registers a file whose content ignores the reader entirely.
func (fs *FS) static(path, content string) {
	fs.add(path, func(dst []byte, _ View) ([]byte, error) {
		return append(dst, content...), nil
	})
}

// Paths returns every file path in sorted order. The order is computed
// once at Build time (the file set is sealed); callers get a fresh copy so
// they may mutate the slice freely.
func (fs *FS) Paths() []string {
	if fs.sortedPaths != nil {
		out := make([]string, len(fs.sortedPaths))
		copy(out, fs.sortedPaths)
		return out
	}
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// appendFile renders a file for a view into dst, without masking.
func (fs *FS) appendFile(dst []byte, path string, v View) ([]byte, error) {
	h, ok := fs.files[path]
	if !ok {
		return dst, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	fs.renders.Add(1)
	return h(dst, v)
}

// Renders returns the cumulative number of handler invocations (genuine
// renders) performed by this FS. Policy-denied and absent reads do not
// render and are not counted.
func (fs *FS) Renders() uint64 { return fs.renders.Load() }

// Action is what a masking rule does to a matched path.
type Action int

// Masking actions. Deny models an AppArmor read denial; Empty models
// bind-mounting an empty file over the channel (content hidden, read
// succeeds); Filter rewrites content through the rule's Transform (how the
// paper's CC5 shows tenants only their own cores and memory — the ◐
// entries of Table I); Allow short-circuits later rules.
const (
	Allow Action = iota
	Deny
	Empty
	Filter
)

// Rule matches paths against a pattern. Patterns are absolute paths where a
// '*' matches within one path segment and a trailing "/**" matches the whole
// subtree.
type Rule struct {
	Pattern string
	Do      Action
	// Transform rewrites matched content when Do == Filter; a nil
	// Transform filters to empty.
	Transform func(content string) string
}

// Policy is an ordered rule list; the first matching rule wins and the
// default is Allow.
type Policy struct {
	Name  string
	Rules []Rule
}

// Lookup returns the first matching rule for a path; ok is false when no
// rule matches (default Allow).
func (p Policy) Lookup(path string) (Rule, bool) {
	for _, r := range p.Rules {
		if matchPattern(r.Pattern, path) {
			return r, true
		}
	}
	return Rule{}, false
}

// Match reports whether path matches the rule pattern language ('*' within
// a segment, trailing "/**" for subtrees). The leakage detector uses it to
// map concrete file paths onto registry channels.
func Match(pattern, path string) bool { return matchPattern(pattern, path) }

// matchPattern implements the limited glob language of Rule. It walks both
// strings segment by segment without allocating: pattern matching sits on
// the hot path of every policy check, dependency lookup, and channel
// roll-up, so the naive strings.Split formulation dominated recurring-scan
// profiles.
func matchPattern(pattern, path string) bool {
	if sub, ok := strings.CutSuffix(pattern, "/**"); ok {
		return path == sub ||
			(len(path) > len(sub) && path[len(sub)] == '/' && strings.HasPrefix(path, sub))
	}
	for {
		pi := strings.IndexByte(pattern, '/')
		xi := strings.IndexByte(path, '/')
		if (pi < 0) != (xi < 0) {
			return false // different segment counts
		}
		if pi < 0 {
			return matchSegment(pattern, path)
		}
		if !matchSegment(pattern[:pi], path[:xi]) {
			return false
		}
		pattern, path = pattern[pi+1:], path[xi+1:]
	}
}

// matchSegment matches one path segment against one pattern segment. Only
// '*' wildcards, possibly several per segment: the literal before the first
// star anchors as a prefix, the literal after the last star as a suffix,
// and literals between stars match greedily left to right.
func matchSegment(pat, seg string) bool {
	star := strings.IndexByte(pat, '*')
	if star < 0 {
		return pat == seg
	}
	if !strings.HasPrefix(seg, pat[:star]) {
		return false
	}
	seg, pat = seg[star:], pat[star+1:]
	for {
		next := strings.IndexByte(pat, '*')
		if next < 0 {
			return strings.HasSuffix(seg, pat)
		}
		idx := strings.Index(seg, pat[:next])
		if idx < 0 {
			return false
		}
		seg, pat = seg[idx+next:], pat[next+1:]
	}
}

// Mount is a read-only pseudo-filesystem mount inside one execution
// context: an FS, the reader's View, and the masking Policy in force.
type Mount struct {
	fs     *FS
	view   View
	policy Policy
	// ruleIdx caches the policy decision per registered path: the index of
	// the first matching rule, or -1 for "no rule matches" (default Allow).
	// A Mount's policy is immutable after construction (ApplyPolicy builds a
	// new Mount) and the FS path set is sealed at Build time, so the cache
	// is precomputed once here and read concurrently without locks. Paths
	// outside the sealed set fall back to the linear Lookup, preserving the
	// exact first-match semantics.
	ruleIdx map[string]int16
}

// NewMount mounts fs for the given view under the given policy.
func NewMount(fs *FS, v View, p Policy) *Mount {
	m := &Mount{fs: fs, view: v, policy: p}
	if len(p.Rules) > 0 && fs.sortedPaths != nil {
		m.ruleIdx = make(map[string]int16, len(fs.sortedPaths))
		for _, path := range fs.sortedPaths {
			idx := int16(-1)
			for i, r := range p.Rules {
				if matchPattern(r.Pattern, path) {
					idx = int16(i)
					break
				}
			}
			m.ruleIdx[path] = idx
		}
	}
	return m
}

// lookupRule is Policy.Lookup accelerated by the per-mount decision cache;
// policy checks sit on the hot path of every power/thermal sample (the
// stable-read loop in attack.PowerMonitor issues several per tick).
func (m *Mount) lookupRule(path string) (Rule, bool) {
	if idx, ok := m.ruleIdx[path]; ok {
		if idx < 0 {
			return Rule{}, false
		}
		return m.policy.Rules[idx], true
	}
	return m.policy.Lookup(path)
}

// View returns the mount's reader context.
func (m *Mount) View() View { return m.view }

// FS returns the filesystem behind the mount; the incremental engine uses
// it for source-epoch queries (PathEpoch) and the chaos bypass (Faulty).
func (m *Mount) FS() *FS { return m.fs }

// Read returns the file content as the mount's view sees it, applying the
// masking policy first. When the FS carries a fault injector, the read is
// routed through it; with no injector the path is byte-identical to the
// direct policied read.
//
// Read is the string-compat API: it renders through the append path into a
// pooled buffer and pays exactly one allocation (the returned string).
// Allocation-sensitive samplers should use AppendRead instead.
func (m *Mount) Read(path string) (string, error) {
	if inj := m.fs.injector; inj != nil {
		return inj.Read(path, func() (string, error) { return m.readPolicied(path) })
	}
	return m.readPolicied(path)
}

// AppendRead appends the file content, as the mount's view sees it, to dst
// and returns the extended buffer. With no fault injector installed the
// whole read is allocation-free; with an injector the content is routed
// through the (string-based) injector first, since injectors may rewrite
// it. On error the returned buffer is dst unchanged.
func (m *Mount) AppendRead(dst []byte, path string) ([]byte, error) {
	if inj := m.fs.injector; inj != nil {
		s, err := inj.Read(path, func() (string, error) { return m.readPolicied(path) })
		if err != nil {
			return dst, err
		}
		return append(dst, s...), nil
	}
	return m.appendPolicied(dst, path)
}

// readPolicied is the string form of the genuine read, used by the compat
// Read API and as the injector callback. It borrows a pooled buffer so the
// only allocation is the returned string itself.
func (m *Mount) readPolicied(path string) (string, error) {
	bp := bufPool.Get().(*[]byte)
	b, err := m.appendPolicied((*bp)[:0], path)
	s := string(b)
	*bp = b[:0]
	bufPool.Put(bp)
	if err != nil {
		return "", err
	}
	return s, nil
}

// appendPolicied is the genuine read: masking policy first, then the
// handler, appended to dst.
func (m *Mount) appendPolicied(dst []byte, path string) ([]byte, error) {
	rule, matched := m.lookupRule(path)
	if matched {
		switch rule.Do {
		case Deny:
			return dst, fmt.Errorf("%w: %s", ErrDenied, path)
		case Empty:
			return dst, nil
		case Filter:
			// Filter rules keep their string Transform signature; render
			// into a scratch buffer and transform the resulting string.
			bp := bufPool.Get().(*[]byte)
			b, err := m.fs.appendFile((*bp)[:0], path, m.view)
			content := string(b)
			*bp = b[:0]
			bufPool.Put(bp)
			if err != nil {
				return dst, err
			}
			if rule.Transform == nil {
				return dst, nil
			}
			return append(dst, rule.Transform(content)...), nil
		}
	}
	return m.fs.appendFile(dst, path, m.view)
}

// Paths lists every path present in the underlying FS. Denied files remain
// visible (AppArmor denies reads, not stats), so the detector can tell
// "masked" apart from "absent hardware".
func (m *Mount) Paths() []string { return m.fs.Paths() }
