package pseudofs

import (
	"fmt"
	"strings"

	"repro/internal/kernel"
)

// buildProc wires the /proc tree. Handlers flagged "GLOBAL" read
// kernel-wide state with no namespace check — those are the leakage
// channels; handlers flagged "NAMESPACED" consult the reader's View and
// model correctly containerized files.
func (fs *FS) buildProc() {
	k := fs.k

	// --- GLOBAL channels (Table I) -------------------------------------

	// /proc/uptime: host uptime and aggregate idle time, regardless of
	// when the container started.
	fs.add("/proc/uptime", func(View) (string, error) {
		up, idle := k.Uptime()
		return fmt.Sprintf("%.2f %.2f\n", up, idle), nil
	})

	// /proc/version: host kernel build string.
	fs.add("/proc/version", func(View) (string, error) {
		return k.KernelVersion() + "\n", nil
	})

	// /proc/loadavg: host-wide run queue.
	fs.add("/proc/loadavg", func(View) (string, error) {
		la := k.LoadAvgSnapshot()
		return fmt.Sprintf("%.2f %.2f %.2f %d/%d %d\n",
			la.Load1, la.Load5, la.Load15, la.Runnable, la.Total, la.LastPID), nil
	})

	// /proc/meminfo: physical host memory, not the cgroup limit.
	fs.add("/proc/meminfo", func(View) (string, error) {
		mi := k.MeminfoSnapshot()
		var b strings.Builder
		row := func(name string, kb uint64) {
			fmt.Fprintf(&b, "%-16s%8d kB\n", name+":", kb)
		}
		row("MemTotal", mi.TotalKB)
		row("MemFree", mi.FreeKB)
		row("MemAvailable", mi.AvailableKB)
		row("Buffers", mi.BuffersKB)
		row("Cached", mi.CachedKB)
		row("Active", mi.ActiveKB)
		row("Inactive", mi.InactiveKB)
		row("SwapTotal", mi.SwapTotalKB)
		row("SwapFree", mi.SwapFreeKB)
		row("Dirty", mi.DirtyKB)
		return b.String(), nil
	})

	// /proc/zoneinfo: physical RAM zone watermarks.
	fs.add("/proc/zoneinfo", func(View) (string, error) {
		var b strings.Builder
		for _, z := range k.ZoneSnapshot() {
			fmt.Fprintf(&b, "Node 0, zone %8s\n", z.Name)
			fmt.Fprintf(&b, "  pages free     %d\n", z.Free)
			fmt.Fprintf(&b, "        min      %d\n", z.Min)
			fmt.Fprintf(&b, "        low      %d\n", z.Low)
			fmt.Fprintf(&b, "        high     %d\n", z.High)
			fmt.Fprintf(&b, "        spanned  %d\n", z.Spanned)
			fmt.Fprintf(&b, "        present  %d\n", z.Present)
			fmt.Fprintf(&b, "        managed  %d\n", z.Managed)
		}
		return b.String(), nil
	})

	// /proc/stat: kernel activity since boot.
	fs.add("/proc/stat", func(View) (string, error) {
		s := k.StatSnapshot()
		var b strings.Builder
		var tot [7]float64
		for _, c := range s.PerCPU {
			tot[0] += c.User
			tot[1] += c.Nice
			tot[2] += c.System
			tot[3] += c.Idle
			tot[4] += c.IOWait
			tot[5] += c.IRQ
			tot[6] += c.SoftIRQ
		}
		fmt.Fprintf(&b, "cpu  %d %d %d %d %d %d %d 0 0 0\n",
			int64(tot[0]), int64(tot[1]), int64(tot[2]), int64(tot[3]),
			int64(tot[4]), int64(tot[5]), int64(tot[6]))
		for i, c := range s.PerCPU {
			fmt.Fprintf(&b, "cpu%d %d %d %d %d %d %d %d 0 0 0\n", i,
				int64(c.User), int64(c.Nice), int64(c.System), int64(c.Idle),
				int64(c.IOWait), int64(c.IRQ), int64(c.SoftIRQ))
		}
		fmt.Fprintf(&b, "intr %d\n", s.IntrTotal)
		fmt.Fprintf(&b, "ctxt %d\n", s.CtxtSwitches)
		fmt.Fprintf(&b, "btime %d\n", s.BootTime)
		fmt.Fprintf(&b, "processes %d\n", s.Processes)
		fmt.Fprintf(&b, "procs_running %d\n", s.ProcsRunning)
		fmt.Fprintf(&b, "procs_blocked 0\n")
		return b.String(), nil
	})

	// /proc/cpuinfo: physical CPU description.
	fs.add("/proc/cpuinfo", func(View) (string, error) {
		var b strings.Builder
		for _, c := range k.CPUInfoSnapshot() {
			fmt.Fprintf(&b, "processor\t: %d\n", c.Processor)
			fmt.Fprintf(&b, "vendor_id\t: GenuineIntel\n")
			fmt.Fprintf(&b, "model name\t: %s\n", c.Model)
			fmt.Fprintf(&b, "cpu MHz\t\t: %.3f\n", c.MHz)
			fmt.Fprintf(&b, "cache size\t: %d KB\n", c.CacheKB)
			fmt.Fprintf(&b, "cpu cores\t: %d\n\n", c.Cores)
		}
		return b.String(), nil
	})

	// /proc/interrupts: per-IRQ counters for the whole host.
	fs.add("/proc/interrupts", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("           ")
		for i := 0; i < k.Options().Cores; i++ {
			fmt.Fprintf(&b, "%12s", fmt.Sprintf("CPU%d", i))
		}
		b.WriteByte('\n')
		for _, irq := range k.Interrupts() {
			fmt.Fprintf(&b, "%4s:", irq.Name)
			for _, v := range irq.PerCPU {
				fmt.Fprintf(&b, "%12d", int64(v))
			}
			fmt.Fprintf(&b, "   %s\n", irq.Desc)
		}
		return b.String(), nil
	})

	// /proc/softirqs: softirq handler invocation counts.
	fs.add("/proc/softirqs", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("           ")
		for i := 0; i < k.Options().Cores; i++ {
			fmt.Fprintf(&b, "%12s", fmt.Sprintf("CPU%d", i))
		}
		b.WriteByte('\n')
		for _, s := range k.SoftIRQs() {
			fmt.Fprintf(&b, "%8s:", s.Name)
			for _, v := range s.PerCPU {
				fmt.Fprintf(&b, "%12d", int64(v))
			}
			b.WriteByte('\n')
		}
		return b.String(), nil
	})

	// /proc/schedstat: scheduler statistics per cpu.
	fs.add("/proc/schedstat", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("version 15\n")
		fmt.Fprintf(&b, "timestamp %d\n", int64(k.Now()*250))
		for i, c := range k.SchedStatSnapshot() {
			fmt.Fprintf(&b, "cpu%d 0 0 0 0 0 0 %d %d %d\n", i, c.RunNS, c.WaitNS, c.Timeslices)
		}
		return b.String(), nil
	})

	// /proc/sched_debug: dumps EVERY task on the host with its name — the
	// paper's favourite signature-implant channel.
	fs.add("/proc/sched_debug", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("Sched Debug Version: v0.11, 4.7.0-repro\n")
		fmt.Fprintf(&b, "ktime : %.6f\n", k.Now()*1000)
		b.WriteString("\nrunnable tasks:\n")
		b.WriteString("            task   PID         tree-key  switches  prio\n")
		b.WriteString("-----------------------------------------------------\n")
		for _, t := range k.Tasks() {
			state := " "
			if t.DemandCores > 0 {
				state = "R"
			}
			fmt.Fprintf(&b, "%s %15s %5d %16.6f %9d   120\n",
				state, t.Name, t.HostPID, k.Now()*100, int64(k.Now()*50))
		}
		return b.String(), nil
	})

	// /proc/timer_list: armed timers with their owning task names.
	fs.add("/proc/timer_list", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("Timer List Version: v0.8\n")
		fmt.Fprintf(&b, "HRTIMER_MAX_CLOCK_BASES: 4\nnow at %d nsecs\n\n", int64(k.Now()*1e9))
		for i, t := range k.TimerOwners() {
			fmt.Fprintf(&b, " #%d: <0000000000000000>, hrtimer_wakeup, S:01, futex_wait_queue_me, %s/%d\n",
				i, t.Name, t.HostPID)
			fmt.Fprintf(&b, " # expires at %d-%d nsecs [in %d to %d nsecs]\n",
				int64(k.Now()*1e9), int64(k.Now()*1e9)+50000, 1000000, 1050000)
		}
		return b.String(), nil
	})

	// /proc/locks: the global file-lock table.
	fs.add("/proc/locks", func(View) (string, error) {
		var b strings.Builder
		for _, l := range k.FileLocks() {
			fmt.Fprintf(&b, "%d: %s  %s  %s %d 08:01:%d 0 EOF\n",
				l.ID, l.Type, l.Mode, l.RW, l.HostPID, l.Inode)
		}
		return b.String(), nil
	})

	// /proc/modules: loaded kernel modules.
	fs.add("/proc/modules", func(View) (string, error) {
		var b strings.Builder
		for _, m := range k.Modules() {
			b.WriteString(m)
			b.WriteString(" - Live 0x0000000000000000\n")
		}
		return b.String(), nil
	})

	// /proc/sys/fs/*: VFS object counts.
	fs.add("/proc/sys/fs/dentry-state", func(View) (string, error) {
		v := k.VFSSnapshot()
		return fmt.Sprintf("%d\t%d\t45\t0\t0\t0\n", v.Dentries, v.DentryUnused), nil
	})
	fs.add("/proc/sys/fs/inode-nr", func(View) (string, error) {
		v := k.VFSSnapshot()
		return fmt.Sprintf("%d\t%d\n", v.Inodes, v.InodesFree), nil
	})
	fs.add("/proc/sys/fs/file-nr", func(View) (string, error) {
		v := k.VFSSnapshot()
		return fmt.Sprintf("%d\t0\t%d\n", v.FilesOpen, v.FilesMax), nil
	})

	// /proc/sys/kernel/random/*.
	fs.add("/proc/sys/kernel/random/boot_id", func(View) (string, error) {
		return k.BootID() + "\n", nil
	})
	fs.add("/proc/sys/kernel/random/entropy_avail", func(View) (string, error) {
		return fmt.Sprintf("%d\n", k.EntropyAvail()), nil
	})
	fs.add("/proc/sys/kernel/random/uuid", func(View) (string, error) {
		return k.GenUUID() + "\n", nil
	})

	// /proc/sys/kernel/sched_domain/cpu#/domain0/max_newidle_lb_cost.
	for i := 0; i < k.Options().Cores; i++ {
		cpu := i
		fs.add(fmt.Sprintf("/proc/sys/kernel/sched_domain/cpu%d/domain0/max_newidle_lb_cost", i),
			func(View) (string, error) {
				return fmt.Sprintf("%d\n", k.NewidleCost()[cpu]), nil
			})
	}

	// /proc/fs/ext4/sda1/mb_groups: allocator state of the host disk.
	fs.add("/proc/fs/ext4/sda1/mb_groups", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("#group: free  frags first [ 2^0   2^1   2^2   2^3   2^4   2^5   2^6 ]\n")
		for i, g := range k.Ext4GroupSnapshot() {
			fmt.Fprintf(&b, "#%d    : %d  %d  %d  [ %d  %d  %d  %d  %d  %d  %d ]\n",
				i, g.Free, g.Frags, g.First,
				g.Free%7, g.Free%11, g.Free%13, g.Free%17, g.Free%19, g.Free%23, g.Free/64)
		}
		return b.String(), nil
	})

	// --- NAMESPACED files (correct behaviour, for contrast) -------------

	// /proc/self/cgroup. The CGROUP namespace exists in kernel 4.7 but the
	// runtimes of the era did not unshare it, so a container sees its full
	// host-side cgroup path (e.g. /docker/<id>) — different from the
	// host's root path, and itself a mild identity leak.
	fs.add("/proc/self/cgroup", func(v View) (string, error) {
		path := v.CgroupPath
		var b strings.Builder
		for i, ctrl := range []string{"perf_event", "net_cls,net_prio", "cpuset", "cpu,cpuacct", "memory"} {
			fmt.Fprintf(&b, "%d:%s:%s\n", 11-i, ctrl, path)
		}
		return b.String(), nil
	})

	// /proc/sys/kernel/hostname respects the UTS namespace.
	fs.add("/proc/sys/kernel/hostname", func(v View) (string, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		return ns.Hostname + "\n", nil
	})

	// /proc/net/dev respects the NET namespace: containers see their veth
	// pair only.
	fs.add("/proc/net/dev", func(v View) (string, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		var b strings.Builder
		b.WriteString("Inter-|   Receive                |  Transmit\n")
		b.WriteString(" face |bytes    packets errs drop|bytes    packets errs drop\n")
		for _, d := range k.NetDevices(ns) {
			fmt.Fprintf(&b, "%6s: %8d %8d    0    0 %8d %8d    0    0\n",
				d.Name, int64(k.Now()*1000), int64(k.Now()*10), int64(k.Now()*800), int64(k.Now()*8))
		}
		return b.String(), nil
	})

	// /proc/sysvipc/shm respects the IPC namespace — the positive control
	// showing what a *completed* container adaptation looks like.
	fs.add("/proc/sysvipc/shm", func(v View) (string, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		var b strings.Builder
		b.WriteString("       key      shmid perms                  size  cpid  lpid nattch   uid   gid\n")
		for _, seg := range ns.ShmSegments() {
			fmt.Fprintf(&b, "%10d %10d  1600 %21d %5d %5d      2  1000  1000\n",
				seg.Key, seg.ID, seg.SizeKB*1024, seg.CPid, seg.CPid)
		}
		return b.String(), nil
	})

	// /proc/self/ns/*: the namespace identifiers themselves — different
	// per container by construction.
	for _, nt := range []kernelNSType{
		{"mnt", 1}, {"uts", 2}, {"pid", 3}, {"net", 4}, {"ipc", 5}, {"user", 6}, {"cgroup", 7},
	} {
		nt := nt
		fs.add("/proc/self/ns/"+nt.name, func(v View) (string, error) {
			ns := v.NS
			if ns == nil {
				ns = k.InitNS()
			}
			return fmt.Sprintf("%s:[%d]\n", nt.name, ns.ID(nt.typ())), nil
		})
	}

	// /proc/filesystems: identical everywhere by design (not a leak worth
	// ranking, but the detector must still classify it).
	fs.static("/proc/filesystems",
		"nodev\tsysfs\nnodev\tproc\nnodev\ttmpfs\nnodev\tdevtmpfs\n\text4\n\text3\n")

	// --- GLOBAL channels beyond Table I --------------------------------
	// The paper's study was systematic but a snapshot; these additional
	// namespace-oblivious files exist in real kernels too, and the
	// detector discovers them without registry help (leakscan -discover).

	// /proc/vmstat: global VM event counters.
	fs.add("/proc/vmstat", func(View) (string, error) {
		v := k.VMStatSnapshot()
		return fmt.Sprintf("nr_free_pages %d\npgfault %d\npgalloc_normal %d\npgmajfault %d\n",
			v.FreePages, v.PgFaults, v.PgAllocs, v.PgFaults/150), nil
	})

	// /proc/diskstats: host block-device IO counters.
	fs.add("/proc/diskstats", func(View) (string, error) {
		d := k.DiskStatSnapshot()
		return fmt.Sprintf("   8       0 sda %d 120 %d 340 %d 88 %d 410 0 500 750\n   8       1 sda1 %d 118 %d 338 %d 86 %d 402 0 495 740\n",
			d.SectorsRead/8, d.SectorsRead, d.SectorsWritten/10, d.SectorsWritten,
			d.SectorsRead/8-2, d.SectorsRead-16, d.SectorsWritten/10-2, d.SectorsWritten-20), nil
	})

	// /proc/buddyinfo: physical-memory fragmentation per order.
	fs.add("/proc/buddyinfo", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("Node 0, zone   Normal ")
		for _, n := range k.BuddyInfo() {
			fmt.Fprintf(&b, "%7d", n)
		}
		b.WriteByte('\n')
		return b.String(), nil
	})

	// /proc/net/softnet_stat: per-CPU packet processing — global despite
	// living under /proc/net (it is per-CPU, not per-namespace, state).
	fs.add("/proc/net/softnet_stat", func(View) (string, error) {
		var b strings.Builder
		for _, n := range k.SoftnetSnapshot() {
			fmt.Fprintf(&b, "%08x 00000000 00000000 00000000 00000000 00000000 00000000 00000000 00000000 00000000\n", n)
		}
		return b.String(), nil
	})

	// /proc/partitions and /proc/swaps: fleet-static host disk layout.
	fs.static("/proc/partitions",
		"major minor  #blocks  name\n\n   8        0  250059096 sda\n   8        1  248006656 sda1\n   8        2    2052440 sda2\n")
	fs.static("/proc/swaps",
		"Filename\t\t\t\tType\t\tSize\tUsed\tPriority\n/dev/sda2\t\t\t\tpartition\t2052436\t0\t-1\n")
}

// kernelNSType pairs a /proc/self/ns entry name with its kernel.NSType
// value (MNT=1 … CGROUP=7).
type kernelNSType struct {
	name string
	raw  int
}

func (n kernelNSType) typ() kernel.NSType { return kernel.NSType(n.raw) }
