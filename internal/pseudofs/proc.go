package pseudofs

import (
	"fmt"

	"repro/internal/kernel"
)

// buildProc wires the /proc tree. Handlers flagged "GLOBAL" read
// kernel-wide state with no namespace check — those are the leakage
// channels; handlers flagged "NAMESPACED" consult the reader's View and
// model correctly containerized files.
//
// Handlers append into the caller's buffer (see Handler and render.go);
// every formatting helper reproduces the historical fmt verb bit for bit,
// which the render-property test asserts per registered path.
func (fs *FS) buildProc() {
	k := fs.k

	// --- GLOBAL channels (Table I) -------------------------------------

	// /proc/uptime: host uptime and aggregate idle time, regardless of
	// when the container started.
	fs.add("/proc/uptime", func(b []byte, _ View) ([]byte, error) {
		up, idle := k.Uptime()
		b = apFloat(b, up, 2)
		b = append(b, ' ')
		b = apFloat(b, idle, 2)
		return append(b, '\n'), nil
	})

	// /proc/version: host kernel build string.
	fs.add("/proc/version", func(b []byte, _ View) ([]byte, error) {
		b = append(b, k.KernelVersion()...)
		return append(b, '\n'), nil
	})

	// /proc/loadavg: host-wide run queue.
	fs.add("/proc/loadavg", func(b []byte, _ View) ([]byte, error) {
		la := k.LoadAvgSnapshot()
		b = apFloat(b, la.Load1, 2)
		b = append(b, ' ')
		b = apFloat(b, la.Load5, 2)
		b = append(b, ' ')
		b = apFloat(b, la.Load15, 2)
		b = append(b, ' ')
		b = apInt(b, int64(la.Runnable))
		b = append(b, '/')
		b = apInt(b, int64(la.Total))
		b = append(b, ' ')
		b = apInt(b, int64(la.LastPID))
		return append(b, '\n'), nil
	})

	// /proc/meminfo: physical host memory, not the cgroup limit.
	fs.add("/proc/meminfo", func(b []byte, _ View) ([]byte, error) {
		mi := k.MeminfoSnapshot()
		row := func(b []byte, name string, kb uint64) []byte {
			b = append(b, name...)
			b = append(b, ':')
			b = apSpaces(b, 16-len(name)-1) // %-16s over name+":"
			b = apPadUint(b, 8, kb)
			return append(b, " kB\n"...)
		}
		b = row(b, "MemTotal", mi.TotalKB)
		b = row(b, "MemFree", mi.FreeKB)
		b = row(b, "MemAvailable", mi.AvailableKB)
		b = row(b, "Buffers", mi.BuffersKB)
		b = row(b, "Cached", mi.CachedKB)
		b = row(b, "Active", mi.ActiveKB)
		b = row(b, "Inactive", mi.InactiveKB)
		b = row(b, "SwapTotal", mi.SwapTotalKB)
		b = row(b, "SwapFree", mi.SwapFreeKB)
		b = row(b, "Dirty", mi.DirtyKB)
		return b, nil
	})

	// /proc/zoneinfo: physical RAM zone watermarks.
	fs.add("/proc/zoneinfo", func(b []byte, _ View) ([]byte, error) {
		zrow := func(b []byte, label string, v uint64) []byte {
			b = append(b, label...)
			b = apUint(b, v)
			return append(b, '\n')
		}
		for _, z := range k.ZoneSnapshot() {
			b = append(b, "Node 0, zone "...)
			b = apPadStr(b, 8, z.Name)
			b = append(b, '\n')
			b = zrow(b, "  pages free     ", z.Free)
			b = zrow(b, "        min      ", z.Min)
			b = zrow(b, "        low      ", z.Low)
			b = zrow(b, "        high     ", z.High)
			b = zrow(b, "        spanned  ", z.Spanned)
			b = zrow(b, "        present  ", z.Present)
			b = zrow(b, "        managed  ", z.Managed)
		}
		return b, nil
	})

	// /proc/stat: kernel activity since boot.
	fs.add("/proc/stat", func(b []byte, _ View) ([]byte, error) {
		s := k.StatSnapshot()
		var tot [7]float64
		for _, c := range s.PerCPU {
			tot[0] += c.User
			tot[1] += c.Nice
			tot[2] += c.System
			tot[3] += c.Idle
			tot[4] += c.IOWait
			tot[5] += c.IRQ
			tot[6] += c.SoftIRQ
		}
		b = append(b, "cpu  "...)
		for i, v := range tot {
			if i > 0 {
				b = append(b, ' ')
			}
			b = apInt(b, int64(v))
		}
		b = append(b, " 0 0 0\n"...)
		for i, c := range s.PerCPU {
			b = append(b, "cpu"...)
			b = apInt(b, int64(i))
			b = append(b, ' ')
			b = apInt(b, int64(c.User))
			b = append(b, ' ')
			b = apInt(b, int64(c.Nice))
			b = append(b, ' ')
			b = apInt(b, int64(c.System))
			b = append(b, ' ')
			b = apInt(b, int64(c.Idle))
			b = append(b, ' ')
			b = apInt(b, int64(c.IOWait))
			b = append(b, ' ')
			b = apInt(b, int64(c.IRQ))
			b = append(b, ' ')
			b = apInt(b, int64(c.SoftIRQ))
			b = append(b, " 0 0 0\n"...)
		}
		b = append(b, "intr "...)
		b = apUint(b, s.IntrTotal)
		b = append(b, "\nctxt "...)
		b = apUint(b, s.CtxtSwitches)
		b = append(b, "\nbtime "...)
		b = apInt(b, s.BootTime)
		b = append(b, "\nprocesses "...)
		b = apUint(b, s.Processes)
		b = append(b, "\nprocs_running "...)
		b = apInt(b, int64(s.ProcsRunning))
		b = append(b, "\nprocs_blocked 0\n"...)
		return b, nil
	})

	// /proc/cpuinfo: physical CPU description.
	fs.add("/proc/cpuinfo", func(b []byte, _ View) ([]byte, error) {
		for _, c := range k.CPUInfoSnapshot() {
			b = append(b, "processor\t: "...)
			b = apInt(b, int64(c.Processor))
			b = append(b, "\nvendor_id\t: GenuineIntel\nmodel name\t: "...)
			b = append(b, c.Model...)
			b = append(b, "\ncpu MHz\t\t: "...)
			b = apFloat(b, c.MHz, 3)
			b = append(b, "\ncache size\t: "...)
			b = apInt(b, int64(c.CacheKB))
			b = append(b, " KB\ncpu cores\t: "...)
			b = apInt(b, int64(c.Cores))
			b = append(b, "\n\n"...)
		}
		return b, nil
	})

	// /proc/interrupts: per-IRQ counters for the whole host.
	fs.add("/proc/interrupts", func(b []byte, _ View) ([]byte, error) {
		b = append(b, "           "...)
		for i := 0; i < k.Options().Cores; i++ {
			b = apCPULabel(b, 12, i)
		}
		b = append(b, '\n')
		for _, irq := range k.Interrupts() {
			b = apPadStr(b, 4, irq.Name)
			b = append(b, ':')
			for _, v := range irq.PerCPU {
				b = apPadInt(b, 12, int64(v))
			}
			b = append(b, "   "...)
			b = append(b, irq.Desc...)
			b = append(b, '\n')
		}
		return b, nil
	})

	// /proc/softirqs: softirq handler invocation counts.
	fs.add("/proc/softirqs", func(b []byte, _ View) ([]byte, error) {
		b = append(b, "           "...)
		for i := 0; i < k.Options().Cores; i++ {
			b = apCPULabel(b, 12, i)
		}
		b = append(b, '\n')
		for _, s := range k.SoftIRQs() {
			b = apPadStr(b, 8, s.Name)
			b = append(b, ':')
			for _, v := range s.PerCPU {
				b = apPadInt(b, 12, int64(v))
			}
			b = append(b, '\n')
		}
		return b, nil
	})

	// /proc/schedstat: scheduler statistics per cpu.
	fs.add("/proc/schedstat", func(b []byte, _ View) ([]byte, error) {
		b = append(b, "version 15\ntimestamp "...)
		b = apInt(b, int64(k.Now()*250))
		b = append(b, '\n')
		for i, c := range k.SchedStatSnapshot() {
			b = append(b, "cpu"...)
			b = apInt(b, int64(i))
			b = append(b, " 0 0 0 0 0 0 "...)
			b = apUint(b, c.RunNS)
			b = append(b, ' ')
			b = apUint(b, c.WaitNS)
			b = append(b, ' ')
			b = apUint(b, c.Timeslices)
			b = append(b, '\n')
		}
		return b, nil
	})

	// /proc/sched_debug: dumps EVERY task on the host with its name — the
	// paper's favourite signature-implant channel.
	fs.add("/proc/sched_debug", func(b []byte, _ View) ([]byte, error) {
		b = append(b, "Sched Debug Version: v0.11, 4.7.0-repro\nktime : "...)
		b = apFloat(b, k.Now()*1000, 6)
		b = append(b, "\n\nrunnable tasks:\n"...)
		b = append(b, "            task   PID         tree-key  switches  prio\n"...)
		b = append(b, "-----------------------------------------------------\n"...)
		for _, t := range k.Tasks() {
			if t.DemandCores > 0 {
				b = append(b, 'R')
			} else {
				b = append(b, ' ')
			}
			b = append(b, ' ')
			b = apPadStr(b, 15, t.Name)
			b = append(b, ' ')
			b = apPadInt(b, 5, int64(t.HostPID))
			b = append(b, ' ')
			b = apPadFloat(b, 16, 6, k.Now()*100)
			b = append(b, ' ')
			b = apPadInt(b, 9, int64(k.Now()*50))
			b = append(b, "   120\n"...)
		}
		return b, nil
	})

	// /proc/timer_list: armed timers with their owning task names.
	fs.add("/proc/timer_list", func(b []byte, _ View) ([]byte, error) {
		b = append(b, "Timer List Version: v0.8\nHRTIMER_MAX_CLOCK_BASES: 4\nnow at "...)
		b = apInt(b, int64(k.Now()*1e9))
		b = append(b, " nsecs\n\n"...)
		for i, t := range k.TimerOwners() {
			b = append(b, " #"...)
			b = apInt(b, int64(i))
			b = append(b, ": <0000000000000000>, hrtimer_wakeup, S:01, futex_wait_queue_me, "...)
			b = append(b, t.Name...)
			b = append(b, '/')
			b = apInt(b, int64(t.HostPID))
			b = append(b, "\n # expires at "...)
			b = apInt(b, int64(k.Now()*1e9))
			b = append(b, '-')
			b = apInt(b, int64(k.Now()*1e9)+50000)
			b = append(b, " nsecs [in 1000000 to 1050000 nsecs]\n"...)
		}
		return b, nil
	})

	// /proc/locks: the global file-lock table.
	fs.add("/proc/locks", func(b []byte, _ View) ([]byte, error) {
		for _, l := range k.FileLocks() {
			b = apInt(b, int64(l.ID))
			b = append(b, ": "...)
			b = append(b, l.Type...)
			b = append(b, "  "...)
			b = append(b, l.Mode...)
			b = append(b, "  "...)
			b = append(b, l.RW...)
			b = append(b, ' ')
			b = apInt(b, int64(l.HostPID))
			b = append(b, " 08:01:"...)
			b = apUint(b, l.Inode)
			b = append(b, " 0 EOF\n"...)
		}
		return b, nil
	})

	// /proc/modules: loaded kernel modules.
	fs.add("/proc/modules", func(b []byte, _ View) ([]byte, error) {
		for _, m := range k.Modules() {
			b = append(b, m...)
			b = append(b, " - Live 0x0000000000000000\n"...)
		}
		return b, nil
	})

	// /proc/sys/fs/*: VFS object counts.
	fs.add("/proc/sys/fs/dentry-state", func(b []byte, _ View) ([]byte, error) {
		v := k.VFSSnapshot()
		b = apUint(b, v.Dentries)
		b = append(b, '\t')
		b = apUint(b, v.DentryUnused)
		b = append(b, "\t45\t0\t0\t0\n"...)
		return b, nil
	})
	fs.add("/proc/sys/fs/inode-nr", func(b []byte, _ View) ([]byte, error) {
		v := k.VFSSnapshot()
		b = apUint(b, v.Inodes)
		b = append(b, '\t')
		b = apUint(b, v.InodesFree)
		return append(b, '\n'), nil
	})
	fs.add("/proc/sys/fs/file-nr", func(b []byte, _ View) ([]byte, error) {
		v := k.VFSSnapshot()
		b = apUint(b, v.FilesOpen)
		b = append(b, "\t0\t"...)
		b = apUint(b, v.FilesMax)
		return append(b, '\n'), nil
	})

	// /proc/sys/kernel/random/*.
	fs.add("/proc/sys/kernel/random/boot_id", func(b []byte, _ View) ([]byte, error) {
		b = append(b, k.BootID()...)
		return append(b, '\n'), nil
	})
	fs.add("/proc/sys/kernel/random/entropy_avail", func(b []byte, _ View) ([]byte, error) {
		b = apInt(b, int64(k.EntropyAvail()))
		return append(b, '\n'), nil
	})
	fs.add("/proc/sys/kernel/random/uuid", func(b []byte, _ View) ([]byte, error) {
		b = append(b, k.GenUUID()...)
		return append(b, '\n'), nil
	})

	// /proc/sys/kernel/sched_domain/cpu#/domain0/max_newidle_lb_cost.
	for i := 0; i < k.Options().Cores; i++ {
		cpu := i
		fs.add(fmt.Sprintf("/proc/sys/kernel/sched_domain/cpu%d/domain0/max_newidle_lb_cost", i),
			func(b []byte, _ View) ([]byte, error) {
				b = apUint(b, k.NewidleCost()[cpu])
				return append(b, '\n'), nil
			})
	}

	// /proc/fs/ext4/sda1/mb_groups: allocator state of the host disk.
	fs.add("/proc/fs/ext4/sda1/mb_groups", func(b []byte, _ View) ([]byte, error) {
		b = append(b, "#group: free  frags first [ 2^0   2^1   2^2   2^3   2^4   2^5   2^6 ]\n"...)
		for i, g := range k.Ext4GroupSnapshot() {
			b = append(b, '#')
			b = apInt(b, int64(i))
			b = append(b, "    : "...)
			b = apInt(b, int64(g.Free))
			b = append(b, "  "...)
			b = apInt(b, int64(g.Frags))
			b = append(b, "  "...)
			b = apInt(b, int64(g.First))
			b = append(b, "  [ "...)
			for j, v := range [7]int{g.Free % 7, g.Free % 11, g.Free % 13, g.Free % 17, g.Free % 19, g.Free % 23, g.Free / 64} {
				if j > 0 {
					b = append(b, "  "...)
				}
				b = apInt(b, int64(v))
			}
			b = append(b, " ]\n"...)
		}
		return b, nil
	})

	// --- NAMESPACED files (correct behaviour, for contrast) -------------

	// /proc/self/cgroup. The CGROUP namespace exists in kernel 4.7 but the
	// runtimes of the era did not unshare it, so a container sees its full
	// host-side cgroup path (e.g. /docker/<id>) — different from the
	// host's root path, and itself a mild identity leak.
	fs.add("/proc/self/cgroup", func(b []byte, v View) ([]byte, error) {
		path := v.CgroupPath
		for i, ctrl := range [...]string{"perf_event", "net_cls,net_prio", "cpuset", "cpu,cpuacct", "memory"} {
			b = apInt(b, int64(11-i))
			b = append(b, ':')
			b = append(b, ctrl...)
			b = append(b, ':')
			b = append(b, path...)
			b = append(b, '\n')
		}
		return b, nil
	})

	// /proc/sys/kernel/hostname respects the UTS namespace.
	fs.add("/proc/sys/kernel/hostname", func(b []byte, v View) ([]byte, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		b = append(b, ns.Hostname...)
		return append(b, '\n'), nil
	})

	// /proc/net/dev respects the NET namespace: containers see their veth
	// pair only.
	fs.add("/proc/net/dev", func(b []byte, v View) ([]byte, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		b = append(b, "Inter-|   Receive                |  Transmit\n"...)
		b = append(b, " face |bytes    packets errs drop|bytes    packets errs drop\n"...)
		for _, d := range k.NetDevices(ns) {
			b = apPadStr(b, 6, d.Name)
			b = append(b, ": "...)
			b = apPadInt(b, 8, int64(k.Now()*1000))
			b = append(b, ' ')
			b = apPadInt(b, 8, int64(k.Now()*10))
			b = append(b, "    0    0 "...)
			b = apPadInt(b, 8, int64(k.Now()*800))
			b = append(b, ' ')
			b = apPadInt(b, 8, int64(k.Now()*8))
			b = append(b, "    0    0\n"...)
		}
		return b, nil
	})

	// /proc/sysvipc/shm respects the IPC namespace — the positive control
	// showing what a *completed* container adaptation looks like.
	fs.add("/proc/sysvipc/shm", func(b []byte, v View) ([]byte, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		b = append(b, "       key      shmid perms                  size  cpid  lpid nattch   uid   gid\n"...)
		for _, seg := range ns.ShmSegments() {
			b = apPadInt(b, 10, int64(seg.Key))
			b = append(b, ' ')
			b = apPadInt(b, 10, int64(seg.ID))
			b = append(b, "  1600 "...)
			b = apPadInt(b, 21, int64(seg.SizeKB)*1024)
			b = append(b, ' ')
			b = apPadInt(b, 5, int64(seg.CPid))
			b = append(b, ' ')
			b = apPadInt(b, 5, int64(seg.CPid))
			b = append(b, "      2  1000  1000\n"...)
		}
		return b, nil
	})

	// /proc/self/ns/*: the namespace identifiers themselves — different
	// per container by construction.
	for _, nt := range []kernelNSType{
		{"mnt", 1}, {"uts", 2}, {"pid", 3}, {"net", 4}, {"ipc", 5}, {"user", 6}, {"cgroup", 7},
	} {
		nt := nt
		fs.add("/proc/self/ns/"+nt.name, func(b []byte, v View) ([]byte, error) {
			ns := v.NS
			if ns == nil {
				ns = k.InitNS()
			}
			b = append(b, nt.name...)
			b = append(b, ":["...)
			b = apUint(b, ns.ID(nt.typ()))
			b = append(b, "]\n"...)
			return b, nil
		})
	}

	// /proc/filesystems: identical everywhere by design (not a leak worth
	// ranking, but the detector must still classify it).
	fs.static("/proc/filesystems",
		"nodev\tsysfs\nnodev\tproc\nnodev\ttmpfs\nnodev\tdevtmpfs\n\text4\n\text3\n")

	// --- GLOBAL channels beyond Table I --------------------------------
	// The paper's study was systematic but a snapshot; these additional
	// namespace-oblivious files exist in real kernels too, and the
	// detector discovers them without registry help (leakscan -discover).

	// /proc/vmstat: global VM event counters.
	fs.add("/proc/vmstat", func(b []byte, _ View) ([]byte, error) {
		v := k.VMStatSnapshot()
		b = append(b, "nr_free_pages "...)
		b = apUint(b, v.FreePages)
		b = append(b, "\npgfault "...)
		b = apUint(b, v.PgFaults)
		b = append(b, "\npgalloc_normal "...)
		b = apUint(b, v.PgAllocs)
		b = append(b, "\npgmajfault "...)
		b = apUint(b, v.PgFaults/150)
		return append(b, '\n'), nil
	})

	// /proc/diskstats: host block-device IO counters.
	fs.add("/proc/diskstats", func(b []byte, _ View) ([]byte, error) {
		d := k.DiskStatSnapshot()
		b = append(b, "   8       0 sda "...)
		b = apUint(b, d.SectorsRead/8)
		b = append(b, " 120 "...)
		b = apUint(b, d.SectorsRead)
		b = append(b, " 340 "...)
		b = apUint(b, d.SectorsWritten/10)
		b = append(b, " 88 "...)
		b = apUint(b, d.SectorsWritten)
		b = append(b, " 410 0 500 750\n   8       1 sda1 "...)
		b = apUint(b, d.SectorsRead/8-2)
		b = append(b, " 118 "...)
		b = apUint(b, d.SectorsRead-16)
		b = append(b, " 338 "...)
		b = apUint(b, d.SectorsWritten/10-2)
		b = append(b, " 86 "...)
		b = apUint(b, d.SectorsWritten-20)
		b = append(b, " 402 0 495 740\n"...)
		return b, nil
	})

	// /proc/buddyinfo: physical-memory fragmentation per order.
	fs.add("/proc/buddyinfo", func(b []byte, _ View) ([]byte, error) {
		b = append(b, "Node 0, zone   Normal "...)
		for _, n := range k.BuddyInfo() {
			b = apPadUint(b, 7, n)
		}
		return append(b, '\n'), nil
	})

	// /proc/net/softnet_stat: per-CPU packet processing — global despite
	// living under /proc/net (it is per-CPU, not per-namespace, state).
	fs.add("/proc/net/softnet_stat", func(b []byte, _ View) ([]byte, error) {
		for _, n := range k.SoftnetSnapshot() {
			b = apHex08(b, n)
			b = append(b, " 00000000 00000000 00000000 00000000 00000000 00000000 00000000 00000000 00000000\n"...)
		}
		return b, nil
	})

	// /proc/partitions and /proc/swaps: fleet-static host disk layout.
	fs.static("/proc/partitions",
		"major minor  #blocks  name\n\n   8        0  250059096 sda\n   8        1  248006656 sda1\n   8        2    2052440 sda2\n")
	fs.static("/proc/swaps",
		"Filename\t\t\t\tType\t\tSize\tUsed\tPriority\n/dev/sda2\t\t\t\tpartition\t2052436\t0\t-1\n")
}

// kernelNSType pairs a /proc/self/ns entry name with its kernel.NSType
// value (MNT=1 … CGROUP=7).
type kernelNSType struct {
	name string
	raw  int
}

func (n kernelNSType) typ() kernel.NSType { return kernel.NSType(n.raw) }
