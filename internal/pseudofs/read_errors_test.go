package pseudofs

// Mount.Read error-path and injector-hook tests: the read path is the
// attack surface every consumer retries against, so its error taxonomy
// (ErrNotExist / ErrDenied / ErrTransient wrapping) and the injector
// routing contract are pinned here.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestReadMissingPathReturnsErrNotExist(t *testing.T) {
	k, fs := newHost(1)
	m := NewMount(fs, HostView(k), Policy{})
	_, err := m.Read("/proc/no/such/file")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestReadDeniedPathReturnsErrDenied(t *testing.T) {
	k, fs := newHost(1)
	pol := Policy{Name: "deny-stat", Rules: []Rule{{Pattern: "/proc/stat", Do: Deny}}}
	m := NewMount(fs, HostView(k), pol)
	_, err := m.Read("/proc/stat")
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if !strings.Contains(err.Error(), "/proc/stat") {
		t.Fatalf("denied error %q does not name the path", err)
	}
	// Other paths remain readable under the same policy.
	if _, err := m.Read("/proc/uptime"); err != nil {
		t.Fatalf("unrelated path denied: %v", err)
	}
}

func TestReadEmptyRuleSucceedsWithNoContent(t *testing.T) {
	k, fs := newHost(1)
	pol := Policy{Rules: []Rule{{Pattern: "/proc/meminfo", Do: Empty}}}
	m := NewMount(fs, HostView(k), pol)
	s, err := m.Read("/proc/meminfo")
	if err != nil || s != "" {
		t.Fatalf("Empty rule: content=%q err=%v, want \"\", nil", s, err)
	}
}

func TestReadFilterRuleTransformsContent(t *testing.T) {
	k, fs := newHost(1)
	pol := Policy{Rules: []Rule{{
		Pattern:   "/proc/uptime",
		Do:        Filter,
		Transform: func(string) string { return "0.00 0.00\n" },
	}}}
	m := NewMount(fs, HostView(k), pol)
	s, err := m.Read("/proc/uptime")
	if err != nil || s != "0.00 0.00\n" {
		t.Fatalf("Filter rule: content=%q err=%v", s, err)
	}
	// Nil Transform filters to empty.
	pol2 := Policy{Rules: []Rule{{Pattern: "/proc/uptime", Do: Filter}}}
	s, err = NewMount(fs, HostView(k), pol2).Read("/proc/uptime")
	if err != nil || s != "" {
		t.Fatalf("nil-Transform Filter: content=%q err=%v", s, err)
	}
}

// recordingInjector logs the paths it is consulted for and can rewrite or
// fail reads on demand.
type recordingInjector struct {
	calls   []string
	rewrite func(path string, read func() (string, error)) (string, error)
}

func (r *recordingInjector) Read(path string, read func() (string, error)) (string, error) {
	r.calls = append(r.calls, path)
	if r.rewrite != nil {
		return r.rewrite(path, read)
	}
	return read()
}

func TestInjectorConsultedOnEveryRead(t *testing.T) {
	k, fs := newHost(1)
	inj := &recordingInjector{}
	fs.SetInjector(inj)
	m := NewMount(fs, HostView(k), Policy{})
	want := mustReadDirect(t, fs, k, "/proc/stat")
	got, err := m.Read("/proc/stat")
	if err != nil {
		t.Fatalf("Read through pass-through injector: %v", err)
	}
	if got != want {
		t.Fatalf("pass-through injector changed content:\n%q\n%q", got, want)
	}
	if len(inj.calls) != 1 || inj.calls[0] != "/proc/stat" {
		t.Fatalf("injector calls = %v, want exactly [/proc/stat]", inj.calls)
	}
	// Removing the injector restores the direct path.
	fs.SetInjector(nil)
	if _, err := m.Read("/proc/stat"); err != nil {
		t.Fatalf("read after SetInjector(nil): %v", err)
	}
	if len(inj.calls) != 1 {
		t.Fatalf("removed injector still consulted: %v", inj.calls)
	}
}

// mustReadDirect reads without any injector installed for a reference
// render.
func mustReadDirect(t *testing.T, fs *FS, k interface{ Now() float64 }, path string) string {
	t.Helper()
	_ = k
	saved := fs.injector
	fs.injector = nil
	defer func() { fs.injector = saved }()
	m := NewMount(fs, View{NS: fs.k.InitNS(), CgroupPath: "/"}, Policy{})
	s, err := m.Read(path)
	if err != nil {
		t.Fatalf("direct read %s: %v", path, err)
	}
	return s
}

func TestInjectorSeesPoliciedRead(t *testing.T) {
	// The injector wraps the *policied* read: a denied path stays denied
	// inside the injector callback, so faults can never bypass masking.
	k, fs := newHost(1)
	var inner error
	fs.SetInjector(&recordingInjector{rewrite: func(_ string, read func() (string, error)) (string, error) {
		_, inner = read()
		return "", inner
	}})
	pol := Policy{Rules: []Rule{{Pattern: "/proc/stat", Do: Deny}}}
	m := NewMount(fs, HostView(k), pol)
	if _, err := m.Read("/proc/stat"); !errors.Is(err, ErrDenied) {
		t.Fatalf("outer err = %v, want ErrDenied", err)
	}
	if !errors.Is(inner, ErrDenied) {
		t.Fatalf("injector's genuine read err = %v, want ErrDenied", inner)
	}
}

func TestInjectorFaultsAreClassifiable(t *testing.T) {
	// An injector failing with a wrapped ErrTransient must be recognizable
	// through Mount.Read with errors.Is — the contract every retry loop in
	// the tree depends on.
	k, fs := newHost(1)
	fault := fmt.Errorf("%w: injected EIO: /proc/stat", ErrTransient)
	fs.SetInjector(&recordingInjector{rewrite: func(string, func() (string, error)) (string, error) {
		return "", fault
	}})
	m := NewMount(fs, HostView(k), Policy{})
	_, err := m.Read("/proc/stat")
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want wrapped ErrTransient", err)
	}
	if errors.Is(err, ErrDenied) || errors.Is(err, ErrNotExist) {
		t.Fatalf("transient fault also matches unrelated sentinels: %v", err)
	}
}

func TestNoInjectorPathIdentity(t *testing.T) {
	// With no injector, repeated reads at a paused clock are byte-identical
	// — the substrate is clean by default, which is what makes chaos-off
	// behavioral equivalence provable.
	k, fs := newHost(42)
	m := NewMount(fs, HostView(k), Policy{})
	first := mustRead(t, m, "/proc/meminfo")
	for i := 0; i < 5; i++ {
		if got := mustRead(t, m, "/proc/meminfo"); got != first {
			t.Fatalf("read %d differs with no injector and a paused clock", i)
		}
	}
}
