package pseudofs

// FSState is a point-in-time capture of an FS's mutable surface for the
// world snapshot machinery. The file *set* is sealed at Build time, but
// handlers can be swapped (Replace), providers and injectors installed, and
// the render/generation counters advance; all of that must rewind so a
// restored world is indistinguishable from a freshly built one, including
// to the incremental engine's epoch checks.
type FSState struct {
	files           map[string]Handler
	energy          EnergyProvider
	thermal         ThermalProvider
	injector        Injector
	fsGen           uint64
	replaceGen      map[string]uint64
	totalReplaceGen uint64
	renders         uint64
}

// Snapshot captures the FS's mutable state.
func (fs *FS) Snapshot() *FSState {
	s := &FSState{
		files:           make(map[string]Handler, len(fs.files)),
		energy:          fs.energy,
		thermal:         fs.thermal,
		injector:        fs.injector,
		fsGen:           fs.fsGen,
		replaceGen:      make(map[string]uint64, len(fs.replaceGen)),
		totalReplaceGen: fs.totalReplaceGen,
		renders:         fs.renders.Load(),
	}
	for p, h := range fs.files {
		s.files[p] = h
	}
	for p, g := range fs.replaceGen {
		s.replaceGen[p] = g
	}
	return s
}

// Restore rewinds the FS to the captured state.
func (fs *FS) Restore(s *FSState) {
	for p, h := range s.files {
		fs.files[p] = h
	}
	fs.energy = s.energy
	fs.thermal = s.thermal
	fs.injector = s.injector
	fs.fsGen = s.fsGen
	for p := range fs.replaceGen {
		if _, ok := s.replaceGen[p]; !ok {
			delete(fs.replaceGen, p)
		}
	}
	for p, g := range s.replaceGen {
		fs.replaceGen[p] = g
	}
	fs.totalReplaceGen = s.totalReplaceGen
	fs.renders.Store(s.renders)
}
