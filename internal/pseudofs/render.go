package pseudofs

import (
	"strconv"
	"sync"
)

// This file holds the zero-allocation append formatting helpers behind the
// pseudo-file handlers. Each helper reproduces one fmt verb bit for bit
// (the repo's byte-identity contract is asserted per path by the
// render-property test), but appends into a caller-supplied buffer instead
// of allocating: the attacker monitor samples hot counters like energy_uj
// thousands of times per campaign, and fmt.Sprintf garbage used to
// dominate the allocation profile.

// bufPool recycles render buffers for the string-compat read path
// (Mount.Read) and for Filter-rule intermediate renders.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// apInt appends v like %d.
func apInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

// apUint appends v like %d for unsigned values.
func apUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }

// apSpaces appends n spaces (no-op for n <= 0).
func apSpaces(b []byte, n int) []byte {
	for ; n > 0; n-- {
		b = append(b, ' ')
	}
	return b
}

// apPadInt appends v like %*d: right-aligned in a field of width runes.
func apPadInt(b []byte, width int, v int64) []byte {
	var tmp [24]byte
	s := strconv.AppendInt(tmp[:0], v, 10)
	b = apSpaces(b, width-len(s))
	return append(b, s...)
}

// apPadUint appends v like %*d for unsigned values.
func apPadUint(b []byte, width int, v uint64) []byte {
	var tmp [24]byte
	s := strconv.AppendUint(tmp[:0], v, 10)
	b = apSpaces(b, width-len(s))
	return append(b, s...)
}

// apPadStr appends s like %*s: right-aligned in a field of width runes.
func apPadStr(b []byte, width int, s string) []byte {
	b = apSpaces(b, width-len(s))
	return append(b, s...)
}

// apStrPadRight appends s like %-*s: left-aligned, space-padded to width.
func apStrPadRight(b []byte, width int, s string) []byte {
	b = append(b, s...)
	return apSpaces(b, width-len(s))
}

// apFloat appends v like %.*f.
func apFloat(b []byte, v float64, prec int) []byte {
	return strconv.AppendFloat(b, v, 'f', prec, 64)
}

// apPadFloat appends v like %*.*f: fixed precision, right-aligned.
func apPadFloat(b []byte, width, prec int, v float64) []byte {
	var tmp [40]byte
	s := strconv.AppendFloat(tmp[:0], v, 'f', prec, 64)
	b = apSpaces(b, width-len(s))
	return append(b, s...)
}

// apHex08 appends v like %08x.
func apHex08(b []byte, v uint64) []byte {
	var tmp [16]byte
	s := strconv.AppendUint(tmp[:0], v, 16)
	for n := 8 - len(s); n > 0; n-- {
		b = append(b, '0')
	}
	return append(b, s...)
}

// apCPULabel appends "CPU<i>" right-aligned in a field of width runes —
// the /proc/interrupts and /proc/softirqs header cells.
func apCPULabel(b []byte, width, i int) []byte {
	var tmp [16]byte
	s := append(tmp[:0], "CPU"...)
	s = strconv.AppendInt(s, int64(i), 10)
	b = apSpaces(b, width-len(s))
	return append(b, s...)
}
