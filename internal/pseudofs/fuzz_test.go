package pseudofs

import "testing"

func FuzzMatchPattern(f *testing.F) {
	f.Add("/proc/**", "/proc/a/b")
	f.Add("/proc/*/x", "/proc/1/x")
	f.Add("/a/*b*/c", "/a/xbyz/c")
	f.Add("", "")
	f.Add("/**", "/")
	f.Fuzz(func(t *testing.T, pattern, path string) {
		_ = matchPattern(pattern, path) // must not panic on any input
	})
}
