package pseudofs

// Property suite for the struct-of-arrays tick layout: a kernel using the
// SoA backing blocks (the default) must render every registered /proc and
// /sys path byte-identically to a kernel built with Options.ReferenceLayout
// — the pre-SoA per-row slices — when both are driven through the same
// spawn/tick history. The two kernels share nothing; any divergence in RNG
// draw order, accumulator update order, or float formatting between the
// layouts shows up as a named path with the first differing bytes.
//
// Unlike the append-render property above, /proc/sys/kernel/random/uuid is
// NOT excluded here: both kernels read it in lockstep, so it doubles as a
// check that the layouts consume the uuid RNG stream identically.

import (
	"testing"

	"repro/internal/kernel"
)

// layoutWorld builds one kernel with the requested layout and drives it
// through populateWorld's canonical mutation history.
func layoutWorld(ref bool) (*kernel.Kernel, *FS, View, View) {
	k := kernel.New(kernel.Options{Hostname: "node-prop", Seed: 0x51ea, ReferenceLayout: ref})
	fs := Build(k, DefaultHardware())
	cont := populateWorld(k)
	return k, fs, HostView(k), cont
}

func TestSoARendersMatchReferenceLayout(t *testing.T) {
	soaK, soaFS, soaHost, soaCont := layoutWorld(false)
	refK, refFS, refHost, refCont := layoutWorld(true)

	soaPaths := soaFS.Paths()
	refPaths := refFS.Paths()
	if len(soaPaths) != len(refPaths) {
		t.Fatalf("path registries differ: SoA has %d paths, reference %d", len(soaPaths), len(refPaths))
	}
	for i := range soaPaths {
		if soaPaths[i] != refPaths[i] {
			t.Fatalf("path registries differ at %d: %q vs %q", i, soaPaths[i], refPaths[i])
		}
	}

	compareAll := func(round string) {
		t.Helper()
		views := []struct {
			name     string
			soa, ref View
		}{
			{"host", soaHost, refHost},
			{"container", soaCont, refCont},
		}
		checked := 0
		for _, vc := range views {
			mS := NewMount(soaFS, vc.soa, Policy{})
			mR := NewMount(refFS, vc.ref, Policy{})
			for _, path := range soaPaths {
				got, gerr := mS.AppendRead(nil, path)
				want, werr := mR.AppendRead(nil, path)
				if (gerr == nil) != (werr == nil) {
					t.Errorf("%s [%s %s]: error mismatch: soa=%v ref=%v", path, vc.name, round, gerr, werr)
					continue
				}
				if string(got) != string(want) {
					t.Errorf("%s [%s %s]: SoA render diverges from reference layout\n soa: %q\n ref: %q",
						path, vc.name, round, firstDiff(string(got), string(want)),
						firstDiff(string(want), string(got)))
					continue
				}
				checked++
			}
		}
		if checked < 100 {
			t.Fatalf("property covered only %d path×view renders in round %s — registration broken?",
				checked, round)
		}
	}

	compareAll("warm")

	// Keep driving both worlds with irregular steps: accumulated SoA block
	// state and per-row reference state must stay in lockstep over time, not
	// just at the first observation instant.
	for i := 0; i < 13; i++ {
		dt := 0.73 + float64(i%3)*0.31
		soaK.Tick(soaK.Now()+dt, dt)
		refK.Tick(refK.Now()+dt, dt)
	}
	compareAll("advanced")
}
