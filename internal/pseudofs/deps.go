package pseudofs

import "repro/internal/kernel"

// Dep declares what a pseudo-file's rendering depends on, in terms of the
// kernel's dirty-tracking subsystems (kernel.Subsystem). The incremental
// scan engine (internal/engine) uses it to decide whether a cached render
// is still valid: a path's content for a fixed view is guaranteed
// unchanged while the combined epoch of its dependency mask is unchanged.
//
// Tags are deliberately conservative: they may include subsystems the
// handler does not read (costing a redundant re-render) but must never
// omit one it does (which would let the engine serve a stale render and
// break byte identity). Paths with no table entry default to depending on
// everything.
type Dep struct {
	// Mask selects the kernel subsystems whose mutation can change this
	// path's content for a fixed view. The zero mask means the content is
	// immutable for the life of the FS (static files).
	Mask kernel.SubsystemMask

	// Volatile marks files whose content changes on every read regardless
	// of kernel state (/proc/sys/kernel/random/uuid). Their *content* is
	// uncacheable, but their cross-validation classification is still
	// deterministic, so the engine may cache the Finding while never
	// caching bytes.
	Volatile bool
}

// depRule is one row of the dependency table; Pattern uses the same glob
// language as Policy rules ('*' within a segment, trailing "/**" for
// subtrees).
type depRule struct {
	Pattern string
	Dep     Dep
}

// depTable maps the built tree to dependency tags. Exact paths are listed
// before patterns only for readability — lookup tries exact match first,
// then first matching pattern. The grouping mirrors the kernel's Tick
// commentary: anything mutated during a tick is covered by the tick's
// sched|mem|net|power bump, so the tags here only need to be exact about
// the out-of-tick mutation paths (Spawn/Exit, cgroup churn, namespace and
// device churn).
var depTable = []depRule{
	// Immutable host facts.
	{"/proc/version", Dep{}},
	{"/proc/cpuinfo", Dep{}},
	{"/proc/modules", Dep{}},
	{"/proc/filesystems", Dep{}},
	{"/proc/partitions", Dep{}},
	{"/proc/swaps", Dep{}},
	{"/sys/devices/system/cpu/online", Dep{}},
	{"/sys/devices/system/cpu/cpu*/cpuidle/state*/name", Dep{}},

	// Truly volatile: a fresh UUID on every read.
	{"/proc/sys/kernel/random/uuid", Dep{Volatile: true}},

	// Identity files fixed at namespace creation (host boot id, per-ns
	// boot ids, ns inode numbers, cgroup membership, UTS hostname, SysV
	// IPC segments).
	{"/proc/sys/kernel/random/boot_id", Dep{Mask: kernel.MaskNS}},
	{"/proc/self/ns/*", Dep{Mask: kernel.MaskNS}},
	{"/proc/self/cgroup", Dep{Mask: kernel.MaskNS | kernel.MaskSched}},
	{"/proc/sys/kernel/hostname", Dep{Mask: kernel.MaskNS}},
	{"/proc/sysvipc/shm", Dep{Mask: kernel.MaskNS}},

	// Scheduler / task / interrupt / lock accounting.
	{"/proc/uptime", Dep{Mask: kernel.MaskSched | kernel.MaskNS}},
	{"/proc/loadavg", Dep{Mask: kernel.MaskSched}},
	{"/proc/stat", Dep{Mask: kernel.MaskSched}},
	{"/proc/interrupts", Dep{Mask: kernel.MaskSched}},
	{"/proc/softirqs", Dep{Mask: kernel.MaskSched}},
	{"/proc/schedstat", Dep{Mask: kernel.MaskSched}},
	{"/proc/sched_debug", Dep{Mask: kernel.MaskSched}},
	{"/proc/timer_list", Dep{Mask: kernel.MaskSched}},
	{"/proc/locks", Dep{Mask: kernel.MaskSched}},
	{"/proc/sys/kernel/sched_domain/**", Dep{Mask: kernel.MaskSched}},
	{"/sys/fs/cgroup/cpuacct/cpuacct.usage", Dep{Mask: kernel.MaskSched}},

	// Memory / VFS / VM / block accounting.
	{"/proc/meminfo", Dep{Mask: kernel.MaskMem | kernel.MaskSched}},
	{"/proc/zoneinfo", Dep{Mask: kernel.MaskMem}},
	{"/proc/vmstat", Dep{Mask: kernel.MaskMem}},
	{"/proc/diskstats", Dep{Mask: kernel.MaskMem}},
	{"/proc/buddyinfo", Dep{Mask: kernel.MaskMem}},
	{"/proc/sys/fs/dentry-state", Dep{Mask: kernel.MaskMem}},
	{"/proc/sys/fs/inode-nr", Dep{Mask: kernel.MaskMem}},
	{"/proc/sys/fs/file-nr", Dep{Mask: kernel.MaskMem}},
	{"/proc/fs/ext4/sda1/mb_groups", Dep{Mask: kernel.MaskMem}},
	{"/proc/sys/kernel/random/entropy_avail", Dep{Mask: kernel.MaskMem}},
	{"/sys/devices/system/node/*/numastat", Dep{Mask: kernel.MaskMem}},
	{"/sys/devices/system/node/*/vmstat", Dep{Mask: kernel.MaskMem}},
	{"/sys/devices/system/node/*/meminfo", Dep{Mask: kernel.MaskMem | kernel.MaskSched}},

	// Network accounting and device lists.
	{"/proc/net/dev", Dep{Mask: kernel.MaskNet | kernel.MaskNS}},
	{"/proc/net/softnet_stat", Dep{Mask: kernel.MaskNet}},
	{"/sys/fs/cgroup/net_prio/net_prio.ifpriomap", Dep{Mask: kernel.MaskNet | kernel.MaskSched | kernel.MaskNS}},

	// Power and thermal sensors (cpuidle residency is integrated by the
	// scheduler tick alongside power, so tag both). The energy_uj rules
	// must precede the static powercap catch-all: RAPL domains nest
	// (intel-rapl:0/intel-rapl:0:0), so both depths are listed.
	// Defended providers (powerns) attribute per-cgroup energy/heat, so
	// the sensors also pick up the scheduler domain.
	{"/sys/class/powercap/intel-rapl:0/energy_uj", Dep{Mask: kernel.MaskPower | kernel.MaskSched}},
	{"/sys/class/powercap/intel-rapl:0/*/energy_uj", Dep{Mask: kernel.MaskPower | kernel.MaskSched}},
	{"/sys/class/powercap/**", Dep{}}, // name, max_energy_range_uj: static
	{"/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp*_input", Dep{Mask: kernel.MaskPower | kernel.MaskSched}},
	{"/sys/devices/system/cpu/cpu*/cpuidle/state*/usage", Dep{Mask: kernel.MaskSched | kernel.MaskPower}},
	{"/sys/devices/system/cpu/cpu*/cpuidle/state*/time", Dep{Mask: kernel.MaskSched | kernel.MaskPower}},

	// DVFS: the governor steps inside the scheduler tick, following load
	// under the meter's power cap, so the dynamic cpufreq reads carry both
	// subsystems. The dynamic rules must precede the static catch-alls
	// (range/driver/governor files never change). A "/**" suffix cannot
	// carry a wildcard in its prefix, so the statics use segment globs.
	{"/sys/devices/system/cpu/cpu*/cpufreq/scaling_cur_freq", Dep{Mask: kernel.MaskSched | kernel.MaskPower}},
	{"/sys/devices/system/cpu/cpu*/cpufreq/stats/total_trans", Dep{Mask: kernel.MaskSched | kernel.MaskPower}},
	{"/sys/devices/system/cpu/cpu*/cpufreq/*", Dep{}},
}

// depAll is the conservative default for paths the table does not know:
// depend on everything, never volatile.
var depAll = Dep{Mask: kernel.MaskAll}

// Dep returns the dependency tag for a path. Unknown paths conservatively
// depend on every subsystem. Tags for the FS's own files are precomputed
// at Build time (the file set is sealed), so the common lookup is one map
// read; only paths outside the tree fall back to the table scan.
func (fs *FS) Dep(path string) Dep {
	if d, ok := fs.deps[path]; ok {
		return d
	}
	return fs.lookupDep(path)
}

// lookupDep scans the dependency table; seal caches its results per path.
func (fs *FS) lookupDep(path string) Dep {
	for _, r := range depTable {
		if r.Pattern == path || matchPattern(r.Pattern, path) {
			return r.Dep
		}
	}
	return depAll
}

// PathEpoch returns the source epoch of a path: a monotone counter that is
// guaranteed to move whenever the path's rendered content (for any fixed
// view) may have changed. It folds together the kernel epochs selected by
// the path's dependency mask, the FS-wide provider/injector generation,
// and the path's handler-replacement generation — each addend is monotone
// non-decreasing, so equal sums imply every component is unchanged.
func (fs *FS) PathEpoch(path string) uint64 {
	return fs.k.Epochs().Combined(fs.Dep(path).Mask) + fs.fsGen + fs.replaceGen[path]
}

// Epoch returns the FS-wide source epoch: moves whenever anything at all
// may have changed (any kernel subsystem, provider swap, or handler
// replacement).
func (fs *FS) Epoch() uint64 {
	return fs.k.Epochs().Combined(kernel.MaskAll) + fs.fsGen + fs.totalReplaceGen
}

// Faulty reports whether a fault injector is installed. Injectors consume
// per-read randomness, so any layer that skips or reorders reads (the
// incremental engine's caches) must bypass itself while Faulty is true to
// preserve the chaos determinism contract.
func (fs *FS) Faulty() bool { return fs.injector != nil }
