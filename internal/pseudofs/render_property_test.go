package pseudofs

// This file pins the zero-allocation render migration: every registered
// path's append-style handler must produce output byte-identical to the
// pre-migration fmt/strings.Builder handler it replaced. The oracle below
// IS the old implementation — the handler bodies of the string-returning
// buildProc/buildSys, preserved verbatim (fs.add → add) at the commit that
// introduced the append path. If a future edit to a handler drifts by even
// one byte of padding, this test names the path and shows the first
// divergence.
//
// /proc/sys/kernel/random/uuid is excluded by design: it draws from the
// kernel's uuid RNG stream on every read, so two renders are *supposed* to
// differ and there is no stable oracle for it.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/power"
	"repro/internal/workload"
)

// preRenderOracle rebuilds the pre-migration string-rendering handler set
// for fs's kernel and the given hardware profile.
func preRenderOracle(fs *FS, hw Hardware) map[string]func(View) (string, error) {
	k := fs.k
	o := make(map[string]func(View) (string, error))
	add := func(p string, h func(View) (string, error)) { o[p] = h }
	static := func(p, content string) {
		add(p, func(View) (string, error) { return content, nil })
	}

	// --- /proc (old buildProc, verbatim) -------------------------------

	add("/proc/uptime", func(View) (string, error) {
		up, idle := k.Uptime()
		return fmt.Sprintf("%.2f %.2f\n", up, idle), nil
	})
	add("/proc/version", func(View) (string, error) {
		return k.KernelVersion() + "\n", nil
	})
	add("/proc/loadavg", func(View) (string, error) {
		la := k.LoadAvgSnapshot()
		return fmt.Sprintf("%.2f %.2f %.2f %d/%d %d\n",
			la.Load1, la.Load5, la.Load15, la.Runnable, la.Total, la.LastPID), nil
	})
	add("/proc/meminfo", func(View) (string, error) {
		mi := k.MeminfoSnapshot()
		var b strings.Builder
		row := func(name string, kb uint64) {
			fmt.Fprintf(&b, "%-16s%8d kB\n", name+":", kb)
		}
		row("MemTotal", mi.TotalKB)
		row("MemFree", mi.FreeKB)
		row("MemAvailable", mi.AvailableKB)
		row("Buffers", mi.BuffersKB)
		row("Cached", mi.CachedKB)
		row("Active", mi.ActiveKB)
		row("Inactive", mi.InactiveKB)
		row("SwapTotal", mi.SwapTotalKB)
		row("SwapFree", mi.SwapFreeKB)
		row("Dirty", mi.DirtyKB)
		return b.String(), nil
	})
	add("/proc/zoneinfo", func(View) (string, error) {
		var b strings.Builder
		for _, z := range k.ZoneSnapshot() {
			fmt.Fprintf(&b, "Node 0, zone %8s\n", z.Name)
			fmt.Fprintf(&b, "  pages free     %d\n", z.Free)
			fmt.Fprintf(&b, "        min      %d\n", z.Min)
			fmt.Fprintf(&b, "        low      %d\n", z.Low)
			fmt.Fprintf(&b, "        high     %d\n", z.High)
			fmt.Fprintf(&b, "        spanned  %d\n", z.Spanned)
			fmt.Fprintf(&b, "        present  %d\n", z.Present)
			fmt.Fprintf(&b, "        managed  %d\n", z.Managed)
		}
		return b.String(), nil
	})
	add("/proc/stat", func(View) (string, error) {
		s := k.StatSnapshot()
		var b strings.Builder
		var tot [7]float64
		for _, c := range s.PerCPU {
			tot[0] += c.User
			tot[1] += c.Nice
			tot[2] += c.System
			tot[3] += c.Idle
			tot[4] += c.IOWait
			tot[5] += c.IRQ
			tot[6] += c.SoftIRQ
		}
		fmt.Fprintf(&b, "cpu  %d %d %d %d %d %d %d 0 0 0\n",
			int64(tot[0]), int64(tot[1]), int64(tot[2]), int64(tot[3]),
			int64(tot[4]), int64(tot[5]), int64(tot[6]))
		for i, c := range s.PerCPU {
			fmt.Fprintf(&b, "cpu%d %d %d %d %d %d %d %d 0 0 0\n", i,
				int64(c.User), int64(c.Nice), int64(c.System), int64(c.Idle),
				int64(c.IOWait), int64(c.IRQ), int64(c.SoftIRQ))
		}
		fmt.Fprintf(&b, "intr %d\n", s.IntrTotal)
		fmt.Fprintf(&b, "ctxt %d\n", s.CtxtSwitches)
		fmt.Fprintf(&b, "btime %d\n", s.BootTime)
		fmt.Fprintf(&b, "processes %d\n", s.Processes)
		fmt.Fprintf(&b, "procs_running %d\n", s.ProcsRunning)
		fmt.Fprintf(&b, "procs_blocked 0\n")
		return b.String(), nil
	})
	add("/proc/cpuinfo", func(View) (string, error) {
		var b strings.Builder
		for _, c := range k.CPUInfoSnapshot() {
			fmt.Fprintf(&b, "processor\t: %d\n", c.Processor)
			fmt.Fprintf(&b, "vendor_id\t: GenuineIntel\n")
			fmt.Fprintf(&b, "model name\t: %s\n", c.Model)
			fmt.Fprintf(&b, "cpu MHz\t\t: %.3f\n", c.MHz)
			fmt.Fprintf(&b, "cache size\t: %d KB\n", c.CacheKB)
			fmt.Fprintf(&b, "cpu cores\t: %d\n\n", c.Cores)
		}
		return b.String(), nil
	})
	add("/proc/interrupts", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("           ")
		for i := 0; i < k.Options().Cores; i++ {
			fmt.Fprintf(&b, "%12s", fmt.Sprintf("CPU%d", i))
		}
		b.WriteByte('\n')
		for _, irq := range k.Interrupts() {
			fmt.Fprintf(&b, "%4s:", irq.Name)
			for _, v := range irq.PerCPU {
				fmt.Fprintf(&b, "%12d", int64(v))
			}
			fmt.Fprintf(&b, "   %s\n", irq.Desc)
		}
		return b.String(), nil
	})
	add("/proc/softirqs", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("           ")
		for i := 0; i < k.Options().Cores; i++ {
			fmt.Fprintf(&b, "%12s", fmt.Sprintf("CPU%d", i))
		}
		b.WriteByte('\n')
		for _, s := range k.SoftIRQs() {
			fmt.Fprintf(&b, "%8s:", s.Name)
			for _, v := range s.PerCPU {
				fmt.Fprintf(&b, "%12d", int64(v))
			}
			b.WriteByte('\n')
		}
		return b.String(), nil
	})
	add("/proc/schedstat", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("version 15\n")
		fmt.Fprintf(&b, "timestamp %d\n", int64(k.Now()*250))
		for i, c := range k.SchedStatSnapshot() {
			fmt.Fprintf(&b, "cpu%d 0 0 0 0 0 0 %d %d %d\n", i, c.RunNS, c.WaitNS, c.Timeslices)
		}
		return b.String(), nil
	})
	add("/proc/sched_debug", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("Sched Debug Version: v0.11, 4.7.0-repro\n")
		fmt.Fprintf(&b, "ktime : %.6f\n", k.Now()*1000)
		b.WriteString("\nrunnable tasks:\n")
		b.WriteString("            task   PID         tree-key  switches  prio\n")
		b.WriteString("-----------------------------------------------------\n")
		for _, t := range k.Tasks() {
			state := " "
			if t.DemandCores > 0 {
				state = "R"
			}
			fmt.Fprintf(&b, "%s %15s %5d %16.6f %9d   120\n",
				state, t.Name, t.HostPID, k.Now()*100, int64(k.Now()*50))
		}
		return b.String(), nil
	})
	add("/proc/timer_list", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("Timer List Version: v0.8\n")
		fmt.Fprintf(&b, "HRTIMER_MAX_CLOCK_BASES: 4\nnow at %d nsecs\n\n", int64(k.Now()*1e9))
		for i, t := range k.TimerOwners() {
			fmt.Fprintf(&b, " #%d: <0000000000000000>, hrtimer_wakeup, S:01, futex_wait_queue_me, %s/%d\n",
				i, t.Name, t.HostPID)
			fmt.Fprintf(&b, " # expires at %d-%d nsecs [in %d to %d nsecs]\n",
				int64(k.Now()*1e9), int64(k.Now()*1e9)+50000, 1000000, 1050000)
		}
		return b.String(), nil
	})
	add("/proc/locks", func(View) (string, error) {
		var b strings.Builder
		for _, l := range k.FileLocks() {
			fmt.Fprintf(&b, "%d: %s  %s  %s %d 08:01:%d 0 EOF\n",
				l.ID, l.Type, l.Mode, l.RW, l.HostPID, l.Inode)
		}
		return b.String(), nil
	})
	add("/proc/modules", func(View) (string, error) {
		var b strings.Builder
		for _, m := range k.Modules() {
			b.WriteString(m)
			b.WriteString(" - Live 0x0000000000000000\n")
		}
		return b.String(), nil
	})
	add("/proc/sys/fs/dentry-state", func(View) (string, error) {
		v := k.VFSSnapshot()
		return fmt.Sprintf("%d\t%d\t45\t0\t0\t0\n", v.Dentries, v.DentryUnused), nil
	})
	add("/proc/sys/fs/inode-nr", func(View) (string, error) {
		v := k.VFSSnapshot()
		return fmt.Sprintf("%d\t%d\n", v.Inodes, v.InodesFree), nil
	})
	add("/proc/sys/fs/file-nr", func(View) (string, error) {
		v := k.VFSSnapshot()
		return fmt.Sprintf("%d\t0\t%d\n", v.FilesOpen, v.FilesMax), nil
	})
	add("/proc/sys/kernel/random/boot_id", func(View) (string, error) {
		return k.BootID() + "\n", nil
	})
	add("/proc/sys/kernel/random/entropy_avail", func(View) (string, error) {
		return fmt.Sprintf("%d\n", k.EntropyAvail()), nil
	})
	// /proc/sys/kernel/random/uuid: no oracle (volatile by design).
	for i := 0; i < k.Options().Cores; i++ {
		cpu := i
		add(fmt.Sprintf("/proc/sys/kernel/sched_domain/cpu%d/domain0/max_newidle_lb_cost", i),
			func(View) (string, error) {
				return fmt.Sprintf("%d\n", k.NewidleCost()[cpu]), nil
			})
	}
	add("/proc/fs/ext4/sda1/mb_groups", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("#group: free  frags first [ 2^0   2^1   2^2   2^3   2^4   2^5   2^6 ]\n")
		for i, g := range k.Ext4GroupSnapshot() {
			fmt.Fprintf(&b, "#%d    : %d  %d  %d  [ %d  %d  %d  %d  %d  %d  %d ]\n",
				i, g.Free, g.Frags, g.First,
				g.Free%7, g.Free%11, g.Free%13, g.Free%17, g.Free%19, g.Free%23, g.Free/64)
		}
		return b.String(), nil
	})
	add("/proc/self/cgroup", func(v View) (string, error) {
		path := v.CgroupPath
		var b strings.Builder
		for i, ctrl := range []string{"perf_event", "net_cls,net_prio", "cpuset", "cpu,cpuacct", "memory"} {
			fmt.Fprintf(&b, "%d:%s:%s\n", 11-i, ctrl, path)
		}
		return b.String(), nil
	})
	add("/proc/sys/kernel/hostname", func(v View) (string, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		return ns.Hostname + "\n", nil
	})
	add("/proc/net/dev", func(v View) (string, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		var b strings.Builder
		b.WriteString("Inter-|   Receive                |  Transmit\n")
		b.WriteString(" face |bytes    packets errs drop|bytes    packets errs drop\n")
		for _, d := range k.NetDevices(ns) {
			fmt.Fprintf(&b, "%6s: %8d %8d    0    0 %8d %8d    0    0\n",
				d.Name, int64(k.Now()*1000), int64(k.Now()*10), int64(k.Now()*800), int64(k.Now()*8))
		}
		return b.String(), nil
	})
	add("/proc/sysvipc/shm", func(v View) (string, error) {
		ns := v.NS
		if ns == nil {
			ns = k.InitNS()
		}
		var b strings.Builder
		b.WriteString("       key      shmid perms                  size  cpid  lpid nattch   uid   gid\n")
		for _, seg := range ns.ShmSegments() {
			fmt.Fprintf(&b, "%10d %10d  1600 %21d %5d %5d      2  1000  1000\n",
				seg.Key, seg.ID, seg.SizeKB*1024, seg.CPid, seg.CPid)
		}
		return b.String(), nil
	})
	for _, nt := range []kernelNSType{
		{"mnt", 1}, {"uts", 2}, {"pid", 3}, {"net", 4}, {"ipc", 5}, {"user", 6}, {"cgroup", 7},
	} {
		nt := nt
		add("/proc/self/ns/"+nt.name, func(v View) (string, error) {
			ns := v.NS
			if ns == nil {
				ns = k.InitNS()
			}
			return fmt.Sprintf("%s:[%d]\n", nt.name, ns.ID(nt.typ())), nil
		})
	}
	static("/proc/filesystems",
		"nodev\tsysfs\nnodev\tproc\nnodev\ttmpfs\nnodev\tdevtmpfs\n\text4\n\text3\n")
	add("/proc/vmstat", func(View) (string, error) {
		v := k.VMStatSnapshot()
		return fmt.Sprintf("nr_free_pages %d\npgfault %d\npgalloc_normal %d\npgmajfault %d\n",
			v.FreePages, v.PgFaults, v.PgAllocs, v.PgFaults/150), nil
	})
	add("/proc/diskstats", func(View) (string, error) {
		d := k.DiskStatSnapshot()
		return fmt.Sprintf("   8       0 sda %d 120 %d 340 %d 88 %d 410 0 500 750\n   8       1 sda1 %d 118 %d 338 %d 86 %d 402 0 495 740\n",
			d.SectorsRead/8, d.SectorsRead, d.SectorsWritten/10, d.SectorsWritten,
			d.SectorsRead/8-2, d.SectorsRead-16, d.SectorsWritten/10-2, d.SectorsWritten-20), nil
	})
	add("/proc/buddyinfo", func(View) (string, error) {
		var b strings.Builder
		b.WriteString("Node 0, zone   Normal ")
		for _, n := range k.BuddyInfo() {
			fmt.Fprintf(&b, "%7d", n)
		}
		b.WriteByte('\n')
		return b.String(), nil
	})
	add("/proc/net/softnet_stat", func(View) (string, error) {
		var b strings.Builder
		for _, n := range k.SoftnetSnapshot() {
			fmt.Fprintf(&b, "%08x 00000000 00000000 00000000 00000000 00000000 00000000 00000000 00000000 00000000\n", n)
		}
		return b.String(), nil
	})
	static("/proc/partitions",
		"major minor  #blocks  name\n\n   8        0  250059096 sda\n   8        1  248006656 sda1\n   8        2    2052440 sda2\n")
	static("/proc/swaps",
		"Filename\t\t\t\tType\t\tSize\tUsed\tPriority\n/dev/sda2\t\t\t\tpartition\t2052436\t0\t-1\n")

	// --- /sys (old buildSys, verbatim) ---------------------------------

	add("/sys/fs/cgroup/net_prio/net_prio.ifpriomap", func(v View) (string, error) {
		cg, _ := k.LookupCgroup(v.CgroupPath)
		var b strings.Builder
		for _, dev := range k.HostNetDevices() {
			prio := 0
			if cg != nil && cg.IfPrioMap != nil {
				prio = cg.IfPrioMap[dev.Name]
			}
			fmt.Fprintf(&b, "%s %d\n", dev.Name, prio)
		}
		return b.String(), nil
	})
	add("/sys/fs/cgroup/cpuacct/cpuacct.usage", func(v View) (string, error) {
		var usage int64
		if cg, ok := k.LookupCgroup(v.CgroupPath); ok {
			usage = int64(cg.CPUUsageNS)
		}
		return fmt.Sprintf("%d\n", usage), nil
	})
	add("/sys/devices/system/node/node0/numastat", func(View) (string, error) {
		n := k.NUMASnapshot()
		return fmt.Sprintf("numa_hit %d\nnuma_miss %d\nnuma_foreign %d\ninterleave_hit %d\nlocal_node %d\nother_node %d\n",
			int64(n.Hit), int64(n.Miss), int64(n.Foreign), int64(n.InterleaveHit),
			int64(n.LocalNode), int64(n.OtherNode)), nil
	})
	add("/sys/devices/system/node/node0/vmstat", func(View) (string, error) {
		mi := k.MeminfoSnapshot()
		n := k.NUMASnapshot()
		return fmt.Sprintf("nr_free_pages %d\nnr_alloc_batch 63\nnr_inactive_anon %d\nnr_active_anon %d\nnuma_hit %d\nnuma_local %d\n",
			mi.FreeKB/4, mi.InactiveKB/4, mi.ActiveKB/4, int64(n.Hit), int64(n.LocalNode)), nil
	})
	add("/sys/devices/system/node/node0/meminfo", func(View) (string, error) {
		mi := k.MeminfoSnapshot()
		return fmt.Sprintf("Node 0 MemTotal:       %d kB\nNode 0 MemFree:        %d kB\nNode 0 MemUsed:        %d kB\nNode 0 Active:         %d kB\nNode 0 Inactive:       %d kB\n",
			mi.TotalKB, mi.FreeKB, mi.TotalKB-mi.FreeKB, mi.ActiveKB, mi.InactiveKB), nil
	})
	states := k.IdleStateSnapshot()
	for cpu := 0; cpu < k.Options().Cores; cpu++ {
		for si := range states {
			cpu, si := cpu, si
			base := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpuidle/state%d", cpu, si)
			static(base+"/name", states[si].Name+"\n")
			add(base+"/usage", func(View) (string, error) {
				st := k.IdleStateSnapshot()
				return fmt.Sprintf("%d\n", int64(st[si].UsagePerCPU[cpu])), nil
			})
			add(base+"/time", func(View) (string, error) {
				st := k.IdleStateSnapshot()
				return fmt.Sprintf("%d\n", int64(st[si].TimeUSPerCPU[cpu])), nil
			})
		}
	}
	gov := k.Freq()
	for cpu := 0; cpu < k.Options().Cores; cpu++ {
		cpu := cpu
		base := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpufreq", cpu)
		add(base+"/scaling_cur_freq", func(View) (string, error) {
			return fmt.Sprintf("%d\n", k.Freq().CurKHz(cpu)), nil
		})
		add(base+"/stats/total_trans", func(View) (string, error) {
			return fmt.Sprintf("%d\n", k.Freq().Transitions(cpu)), nil
		})
		static(base+"/scaling_governor", gov.Name()+"\n")
		static(base+"/scaling_available_governors", "performance powersave "+gov.Name()+"\n")
		static(base+"/scaling_driver", "acpi-cpufreq\n")
		static(base+"/scaling_min_freq", fmt.Sprintf("%d\n", gov.MinKHz()))
		static(base+"/scaling_max_freq", fmt.Sprintf("%d\n", gov.MaxKHz()))
		static(base+"/cpuinfo_min_freq", fmt.Sprintf("%d\n", gov.MinKHz()))
		static(base+"/cpuinfo_max_freq", fmt.Sprintf("%d\n", gov.MaxKHz()))
	}
	if hw.HasCoretemp {
		add("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp1_input", func(v View) (string, error) {
			t, err := fs.thermal.CoreTempC(v, -1)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d\n", int64(t*1000)), nil
		})
		for c := 0; c < k.Options().Cores; c++ {
			c := c
			add(fmt.Sprintf("/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp%d_input", c+2),
				func(v View) (string, error) {
					t, err := fs.thermal.CoreTempC(v, c)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("%d\n", int64(t*1000)), nil
				})
		}
	}
	if hw.HasRAPL {
		domains := []struct {
			dir  string
			name string
			dom  power.Domain
		}{
			{"/sys/class/powercap/intel-rapl:0", "package-0", power.Package},
			{"/sys/class/powercap/intel-rapl:0/intel-rapl:0:0", "core", power.Core},
			{"/sys/class/powercap/intel-rapl:0/intel-rapl:0:1", "dram", power.DRAM},
		}
		for _, d := range domains {
			d := d
			static(d.dir+"/name", d.name+"\n")
			add(d.dir+"/energy_uj", func(v View) (string, error) {
				uj, err := fs.energy.EnergyUJ(v, d.dom)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%d\n", uj), nil
			})
			static(d.dir+"/max_energy_range_uj",
				fmt.Sprintf("%d\n", k.Meter().MaxEnergyRangeUJ()))
		}
	}
	static("/sys/devices/system/cpu/online", fmt.Sprintf("0-%d\n", k.Options().Cores-1))

	return o
}

// populateWorld gives the kernel non-trivial dynamic state so the table
// renderers (locks, timers, sched_debug, shm, net devices) have rows to
// format, then advances time to a non-round instant so the float formats
// exercise real fractional digits.
func populateWorld(k *kernel.Kernel) View {
	cg := "/docker/prop-c1"
	ns := k.NewNSSet("prop-c1", cg)
	k.Cgroup(cg) // materialize like the container runtime does
	k.AddHostNetDev("veth00prop")

	init := k.Spawn("prop-init", ns, cg, 0, workload.IdleLoop.Rates.Times(0))
	w := k.Spawn("prop-worker", ns, cg, 1.5, workload.Prime.Rates)
	w.HasTimer = true
	host := k.Spawn("host-daemon", k.InitNS(), "/", 0.5, workload.IdleLoop.Rates)
	host.HasTimer = true
	k.AddFileLock(init, "WRITE", 7788001)
	k.AddFileLock(host, "READ", 9900113)

	for i := 0; i < 7; i++ {
		k.Tick(float64(i+1)*1.37, 1.37)
	}
	return View{NS: ns, CgroupPath: cg}
}

// TestAppendRenderMatchesPrePRStringHandlers renders every registered path
// through the append fast path and through the Read string path, for both
// the host view and a container view, and requires each to be
// byte-identical to the pre-migration fmt-based oracle.
func TestAppendRenderMatchesPrePRStringHandlers(t *testing.T) {
	hw := DefaultHardware()
	k := kernel.New(kernel.Options{Hostname: "node-prop", Seed: 0x51ea})
	fs := Build(k, hw)
	contView := populateWorld(k)
	oracle := preRenderOracle(fs, hw)

	views := []struct {
		name string
		v    View
	}{
		{"host", HostView(k)},
		{"container", contView},
	}
	checked := 0
	for _, vc := range views {
		m := NewMount(fs, vc.v, Policy{})
		for _, path := range fs.Paths() {
			if path == "/proc/sys/kernel/random/uuid" {
				continue // volatile: draws a fresh value per read
			}
			ref, ok := oracle[path]
			if !ok {
				t.Errorf("%s: registered path has no pre-migration oracle", path)
				continue
			}
			want, werr := ref(vc.v)
			got, gerr := m.AppendRead(nil, path)
			if (werr == nil) != (gerr == nil) {
				t.Errorf("%s [%s]: error mismatch: oracle=%v append=%v", path, vc.name, werr, gerr)
				continue
			}
			if werr != nil {
				continue
			}
			if string(got) != want {
				t.Errorf("%s [%s]: append render diverges from pre-migration render\n got: %q\nwant: %q",
					path, vc.name, firstDiff(string(got), want), firstDiff(want, string(got)))
				continue
			}
			// The string-compat path must agree too (it renders through
			// the same handler via the pooled buffer).
			if s, err := m.Read(path); err != nil || s != want {
				t.Errorf("%s [%s]: Read diverges from AppendRead (err=%v)", path, vc.name, err)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("property covered only %d path×view renders — registration broken?", checked)
	}
}

// firstDiff trims s to a window around the first byte where s and other
// diverge, keeping failure messages readable for multi-KB tables.
func firstDiff(s, other string) string {
	i := 0
	for i < len(s) && i < len(other) && s[i] == other[i] {
		i++
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	hi := i + 80
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
